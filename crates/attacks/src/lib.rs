//! # emmark-attacks
//!
//! The paper's §5.3 threat suite against watermarked quantized models:
//!
//! * [`overwrite`] — blind parameter overwriting (Figure 2(a));
//! * [`rewatermark`] — EmMark-style re-insertion with adversary
//!   parameters and quantized-model activations (Figure 2(b));
//! * [`forging`] — counterfeit ownership claims, the naive delta check
//!   they fool, and the full reproduction-based verification that
//!   rejects them;
//! * [`harness`] — strength sweeps producing the (PPL, accuracy, WER)
//!   triples the figures plot.
//!
//! The paper argues (§3, §5.3) that pruning and fine-tuning are not
//! viable removal attacks on embedded quantized models. Both arguments
//! are made *executable* here rather than asserted: [`pruning`]
//! implements magnitude pruning and measures the quality collapse the
//! paper predicts, and QLoRA-style adapter fine-tuning lives in
//! [`emmark_quant::qlora`], where the frozen integer weights provably
//! never move.
//!
//! # Examples
//!
//! ```
//! use emmark_attacks::overwrite::{overwrite_attack, OverwriteConfig};
//! use emmark_nanolm::{config::ModelConfig, TransformerModel};
//! use emmark_quant::rtn::quantize_linear_rtn;
//! use emmark_quant::{ActQuant, Granularity, QuantizedModel};
//!
//! let model = TransformerModel::new(ModelConfig::tiny_test());
//! let mut deployed = QuantizedModel::quantize_with(&model, "rtn", |_, lin| {
//!     quantize_linear_rtn(lin, 4, Granularity::Grouped { group_size: 8 }, ActQuant::None)
//! });
//! let touched = overwrite_attack(&mut deployed, &OverwriteConfig { per_layer: 16, seed: 1 });
//! assert_eq!(touched, 16 * deployed.layer_count());
//! ```

pub mod adaptive;
pub mod adversary;
pub mod finetune;
pub mod forging;
pub mod harness;
pub mod overwrite;
pub mod pruning;
pub mod requant;
pub mod rewatermark;

pub use adversary::{AdversaryConfig, AdversaryStage};
pub use harness::{
    adaptive_sweep, finetune_sweep, overwrite_sweep, requant_matrix, rewatermark_sweep,
    AttackPoint, RequantPoint,
};
