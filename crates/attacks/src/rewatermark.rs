//! Re-watermark attack (§5.3, Figure 2(b)).
//!
//! The adversary knows EmMark's algorithm but not the owner's secrets.
//! They run the same scoring pipeline with their own coefficients and
//! seed — and, crucially, with activation statistics measured through
//! the *quantized* model (the paper sets α = 1, β = 1.5, seed 22, and
//! notes "the activation for scoring S_r is obtained from the quantized
//! LLM instead of the full-precision one"). They then bump their own
//! chosen cells, hoping to land on and corrupt the owner's bits.

use crate::adversary::{AdversaryConfig, AdversaryStage};
use emmark_core::scoring::{candidate_pool, score_layer, ScoreCoefficients};
use emmark_nanolm::model::ActivationStats;
use emmark_quant::QuantizedModel;
use emmark_tensor::rng::Xoshiro256;

/// Re-watermark attack configuration. Defaults are the paper's
/// adversary parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RewatermarkConfig {
    /// Adversary's α.
    pub alpha: f64,
    /// Adversary's β.
    pub beta: f64,
    /// Adversary's selection seed.
    pub seed: u64,
    /// Cells perturbed per layer (the Figure 2(b) sweep variable).
    pub per_layer: usize,
    /// Adversary's candidate-pool ratio.
    pub pool_ratio: usize,
}

impl Default for RewatermarkConfig {
    fn default() -> Self {
        Self {
            alpha: 1.0,
            beta: 1.5,
            seed: 22,
            per_layer: 8,
            pool_ratio: 50,
        }
    }
}

/// Runs the attack in place using `adversary_stats` (activation
/// statistics the adversary measured through the deployed quantized
/// model). Returns the number of cells perturbed.
///
/// # Panics
///
/// Panics if the stats do not cover the model's layers.
pub fn rewatermark_attack(
    model: &mut QuantizedModel,
    adversary_stats: &ActivationStats,
    cfg: &RewatermarkConfig,
) -> usize {
    assert_eq!(
        adversary_stats.layer_count(),
        model.layer_count(),
        "adversary stats do not cover the model"
    );
    let coeffs = ScoreCoefficients {
        alpha: cfg.alpha,
        beta: cfg.beta,
    };
    let mut sm = AdversaryConfig::new(cfg.seed).seed_sequence(AdversaryStage::Rewatermark);
    let mut touched = 0usize;
    for (l, layer) in model.layers.iter_mut().enumerate() {
        let layer_seed = sm.next_u64();
        let scores = score_layer(layer, &adversary_stats.per_layer[l].mean_abs, &coeffs);
        // The adversary clamps their ambitions to what the layer offers.
        let finite = scores.iter().filter(|s| s.is_finite()).count();
        let k = cfg.per_layer.min(finite);
        if k == 0 {
            continue;
        }
        let pool_size = (cfg.pool_ratio * k).min(finite);
        let pool = candidate_pool(&scores, pool_size).expect("pool_size clamped to available");
        let mut rng = Xoshiro256::seed_from_u64(layer_seed);
        let picks = rng.sample_without_replacement(pool.len(), k);
        for p in picks {
            let f = pool[p];
            // EmMark-style insertion never clips (pool excludes clamped
            // cells), so the plain bump is safe. Rademacher direction.
            let bit = if rng.rademacher() == 1 { 1 } else { -1 };
            layer.bump_q_flat(f, bit);
            touched += 1;
        }
    }
    touched
}

#[cfg(test)]
mod tests {
    use super::*;
    use emmark_core::watermark::{OwnerSecrets, WatermarkConfig};
    use emmark_nanolm::config::ModelConfig;
    use emmark_nanolm::TransformerModel;
    use emmark_quant::awq::{awq, AwqConfig};

    fn setup() -> OwnerSecrets {
        let mut model = TransformerModel::new(ModelConfig::tiny_test());
        let calib: Vec<Vec<u32>> = (0..4u32)
            .map(|s| (0..16u32).map(|i| (i * 7 + s * 3) % 31).collect())
            .collect();
        let stats = model.collect_activation_stats(&calib);
        let qm = awq(&model, &stats, &AwqConfig::default());
        let cfg = WatermarkConfig {
            bits_per_layer: 4,
            pool_ratio: 10,
            ..Default::default()
        };
        OwnerSecrets::new(qm, stats, cfg, 4242)
    }

    fn adversary_calib() -> Vec<Vec<u32>> {
        (0..3u32)
            .map(|s| (0..16u32).map(|i| (i * 11 + s * 5) % 31).collect())
            .collect()
    }

    #[test]
    fn attack_perturbs_requested_cells() {
        let secrets = setup();
        let deployed = secrets.watermark_for_deployment().expect("insert");
        let mut attacked = deployed.clone();
        let adv_stats = deployed.collect_activation_stats(&adversary_calib());
        let cfg = RewatermarkConfig {
            per_layer: 6,
            ..Default::default()
        };
        let touched = rewatermark_attack(&mut attacked, &adv_stats, &cfg);
        assert_eq!(touched, 6 * deployed.layer_count());
        assert!(!attacked.same_weights(&deployed));
    }

    #[test]
    fn owner_watermark_survives_moderate_rewatermarking() {
        let secrets = setup();
        let deployed = secrets.watermark_for_deployment().expect("insert");
        let mut attacked = deployed.clone();
        let adv_stats = deployed.collect_activation_stats(&adversary_calib());
        rewatermark_attack(
            &mut attacked,
            &adv_stats,
            &RewatermarkConfig {
                per_layer: 8,
                ..Default::default()
            },
        );
        let report = secrets.verify(&attacked).expect("extract");
        // The adversary's pool overlaps the owner's only partially; most
        // owner bits survive.
        assert!(report.wer() >= 70.0, "wer {}", report.wer());
        assert!(report.proves_ownership(-6.0));
    }

    #[test]
    fn attack_never_wraps_cells() {
        let secrets = setup();
        let deployed = secrets.watermark_for_deployment().expect("insert");
        let mut attacked = deployed.clone();
        let adv_stats = deployed.collect_activation_stats(&adversary_calib());
        rewatermark_attack(
            &mut attacked,
            &adv_stats,
            &RewatermarkConfig {
                per_layer: 12,
                ..Default::default()
            },
        );
        for (a, b) in attacked.layers.iter().zip(&deployed.layers) {
            for f in 0..a.len() {
                let d = (a.q_at_flat(f) as i16 - b.q_at_flat(f) as i16).abs();
                assert!(d <= 1, "re-watermarking must not wrap (delta {d})");
            }
        }
    }

    #[test]
    fn oversized_attack_clamps_gracefully() {
        let secrets = setup();
        let deployed = secrets.watermark_for_deployment().expect("insert");
        let mut attacked = deployed.clone();
        let adv_stats = deployed.collect_activation_stats(&adversary_calib());
        let touched = rewatermark_attack(
            &mut attacked,
            &adv_stats,
            &RewatermarkConfig {
                per_layer: 1_000_000,
                ..Default::default()
            },
        );
        let capacity: usize = deployed.layers.iter().map(|l| l.len()).sum();
        assert!(touched <= capacity);
        assert!(touched > 0);
    }
}
