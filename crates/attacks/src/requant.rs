//! Scheme-conversion / re-quantization attacks.
//!
//! The adversary holds a stamped quantized artifact and nothing else —
//! no full-precision weights, no owner secrets. They rebuild a
//! full-precision surrogate ([`QuantizedModel::surrogate_model`]:
//! dequantized effective weights plus the never-quantized embeddings
//! and norms), collect their own activation statistics through it, and
//! run any public quantizer over the result. The question the matrix
//! answers per (source, target) pair: do the owner's exact `ΔW == b`
//! deltas survive the round trip?
//!
//! Two regimes with sharply different answers:
//!
//! * **Same-grid round trip** ([`roundtrip_same_grid`]): re-rounding
//!   every cell on its *own* stored scale is the identity —
//!   `round((q·s)/s) = q` exactly, because two f32 roundings perturb
//!   `q·s/s` by at most a few ULP, far inside the 0.5 rounding margin.
//!   The watermark is preserved bit-for-bit. This is the cheap
//!   invariant the conversion matrix builds on, proptested per scheme.
//! * **Cross-scheme conversion** ([`requantize`]): the target quantizer
//!   derives a *new* scale grid from the adversary's surrogate and
//!   calibration, so integer values are re-expressed in different units
//!   and the exact-delta check (Eq. 6) finds noise. The watermark does
//!   not survive — but neither does the artifact: the adversary now
//!   ships a model with two quantization noise floors stacked, and the
//!   fidelity cost is part of the frontier the harness records.

use emmark_nanolm::TransformerModel;
use emmark_quant::awq::{awq, AwqConfig};
use emmark_quant::gptq::{gptq, GptqConfig};
use emmark_quant::llm_int8::{llm_int8, OutlierCriterion};
use emmark_quant::rtn::quantize_linear_rtn;
use emmark_quant::smoothquant::{smoothquant, SmoothQuantConfig};
use emmark_quant::{ActQuant, Granularity, QuantizedModel};

/// A re-quantization target: one of the five matrix schemes plus
/// grouped RTN-INT4, which makes the INT8↔INT4 conversion pairs
/// expressible in both directions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequantScheme {
    /// Round-to-nearest INT8, per-output-channel scales.
    RtnInt8,
    /// Round-to-nearest INT4, grouped scales.
    RtnInt4,
    /// AWQ INT4 (activation-aware scale migration).
    AwqInt4,
    /// GPTQ INT4 (Hessian-guided rounding).
    GptqInt4,
    /// SmoothQuant W8A8.
    SmoothquantInt8,
    /// LLM.int8() with outlier rows.
    LlmInt8,
}

impl RequantScheme {
    /// Every target, matrix order: the five deployment schemes first,
    /// grouped RTN-INT4 last.
    pub const ALL: [RequantScheme; 6] = [
        RequantScheme::RtnInt8,
        RequantScheme::AwqInt4,
        RequantScheme::GptqInt4,
        RequantScheme::SmoothquantInt8,
        RequantScheme::LlmInt8,
        RequantScheme::RtnInt4,
    ];

    /// Integer bit width of this scheme's grids. Conversions that cross
    /// bit widths re-express every cell in a different unit system and
    /// are the matrix's watermark-destroying regime.
    pub fn bits(self) -> u8 {
        match self {
            Self::RtnInt8 | Self::SmoothquantInt8 | Self::LlmInt8 => 8,
            Self::RtnInt4 | Self::AwqInt4 | Self::GptqInt4 => 4,
        }
    }

    /// The scheme label the produced model carries.
    pub fn name(self) -> &'static str {
        match self {
            Self::RtnInt8 => "rtn-int8",
            Self::RtnInt4 => "rtn-int4",
            Self::AwqInt4 => "awq-int4",
            Self::GptqInt4 => "gptq-int4",
            Self::SmoothquantInt8 => "smoothquant-int8",
            Self::LlmInt8 => "llm-int8",
        }
    }

    /// Quantizes a full-precision model with this scheme at the
    /// defaults the matrix uses. Stats-driven schemes measure their
    /// activation statistics through `model` on `calibration` — for an
    /// attack, that model is the adversary's surrogate, so the stats
    /// already carry the source scheme's quantization error.
    pub fn quantize(
        self,
        model: &mut TransformerModel,
        calibration: &[Vec<u32>],
    ) -> QuantizedModel {
        match self {
            Self::RtnInt8 => QuantizedModel::quantize_with(model, "rtn-int8", |_, lin| {
                quantize_linear_rtn(lin, 8, Granularity::PerOutChannel, ActQuant::None)
            }),
            Self::RtnInt4 => QuantizedModel::quantize_with(model, "rtn-int4", |_, lin| {
                quantize_linear_rtn(
                    lin,
                    4,
                    Granularity::Grouped { group_size: 8 },
                    ActQuant::None,
                )
            }),
            Self::AwqInt4 => {
                let stats = model.collect_activation_stats(calibration);
                awq(model, &stats, &AwqConfig::default())
            }
            Self::GptqInt4 => gptq(model, calibration, &GptqConfig::default()),
            Self::SmoothquantInt8 => {
                let stats = model.collect_activation_stats(calibration);
                smoothquant(model, &stats, &SmoothQuantConfig::default())
            }
            Self::LlmInt8 => {
                let stats = model.collect_activation_stats(calibration);
                llm_int8(model, &stats, OutlierCriterion::Quantile(0.9))
            }
        }
    }
}

/// The scheme-conversion attack: rebuild a full-precision surrogate
/// from the stamped artifact and re-quantize it with `target` on the
/// adversary's `calibration`. Fully deterministic — every quantizer is,
/// and the surrogate is a pure function of the stamped grids.
pub fn requantize(
    stamped: &QuantizedModel,
    target: RequantScheme,
    calibration: &[Vec<u32>],
) -> QuantizedModel {
    let mut surrogate = stamped.surrogate_model();
    target.quantize(&mut surrogate, calibration)
}

/// The same-scheme identity round trip: dequantize and re-round every
/// cell on its own stored scale, preserving all scale metadata. Outlier
/// rows (full-precision storage) and zero-scale cells pass through
/// untouched.
pub fn roundtrip_same_grid(model: &QuantizedModel) -> QuantizedModel {
    let mut out = model.clone();
    for layer in &mut out.layers {
        let qmax = layer.qmax() as f32;
        let out_f = layer.out_features();
        let mut q = layer.q_values().to_vec();
        for i in 0..layer.in_features() {
            if layer.is_outlier_row(i) {
                continue;
            }
            for j in 0..out_f {
                let s = layer.scale_at(i, j);
                if s == 0.0 {
                    continue;
                }
                let f = i * out_f + j;
                q[f] = ((q[f] as f32 * s) / s).round().clamp(-qmax, qmax) as i8;
            }
        }
        *layer = layer.with_grid(q);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use emmark_nanolm::config::ModelConfig;
    use emmark_nanolm::model::LogitsModel;
    use emmark_nanolm::TransformerModel;

    fn calib() -> Vec<Vec<u32>> {
        (0..3u32)
            .map(|s| (0..16u32).map(|i| (i * 7 + s * 3) % 31).collect())
            .collect()
    }

    #[test]
    fn roundtrip_same_grid_is_the_identity() {
        let model = TransformerModel::new(ModelConfig::tiny_test());
        for target in RequantScheme::ALL {
            let mut fp = model.clone();
            let qm = target.quantize(&mut fp, &calib());
            let rt = roundtrip_same_grid(&qm);
            assert!(
                rt.same_weights(&qm),
                "{}: same-grid round trip must be exact",
                target.name()
            );
        }
    }

    #[test]
    fn surrogate_requantize_runs_every_scheme_pair() {
        let model = TransformerModel::new(ModelConfig::tiny_test());
        let mut fp = model.clone();
        let source = RequantScheme::AwqInt4.quantize(&mut fp, &calib());
        for target in RequantScheme::ALL {
            let converted = requantize(&source, target, &calib());
            assert_eq!(converted.layer_count(), source.layer_count());
            assert_eq!(converted.scheme, target.name());
            let logits = converted.logits(&[1, 2, 3, 4]);
            assert!(
                logits.iter().all(|v| v.is_finite()),
                "{}: conversion produced non-finite logits",
                target.name()
            );
        }
    }

    #[test]
    fn requantize_is_deterministic() {
        let model = TransformerModel::new(ModelConfig::tiny_test());
        let mut fp = model.clone();
        let source = RequantScheme::RtnInt8.quantize(&mut fp, &calib());
        let a = requantize(&source, RequantScheme::GptqInt4, &calib());
        let b = requantize(&source, RequantScheme::GptqInt4, &calib());
        assert!(a.same_weights(&b));
    }
}
