//! Adaptive location-targeting attack.
//!
//! EmMark's scoring rule (Eqs. 2–4) is public; only the owner's
//! activation profile, selection seed, and signature are secret. The
//! adaptive adversary runs the *same* rule — [`score_layer`] with the
//! published default coefficients, over activation statistics measured
//! through the deployed quantized model — and perturbs the `top_k`
//! best-scoring cells per layer, the cells most likely to hold
//! watermark bits. `top_k` and the perturbation magnitude are the
//! budget knobs: the owner only sampled `bits_per_layer` cells from a
//! `pool_ratio`-times-larger candidate pool, so the attacker must cover
//! a growing prefix of their own estimated ranking (which is itself
//! skewed by quantized-model stats) to hit them.
//!
//! Determinism is structural: the targeted set is the score ranking's
//! prefix (nested in `top_k`), and each cell's perturbation direction
//! comes from [`AdversaryConfig::cell_coin`] — a pure function of
//! (seed, layer, cell), independent of draw order. Larger budgets
//! therefore perturb a strict superset of smaller ones, making "owner
//! WER is non-increasing in `top_k`" an exact invariant the matrix
//! asserts rather than a statistical tendency.

use crate::adversary::{AdversaryConfig, AdversaryStage};
use emmark_core::scoring::{candidate_pool, score_layer, ScoreCoefficients};
use emmark_nanolm::model::ActivationStats;
use emmark_quant::QuantizedModel;

/// Adaptive attack configuration. Defaults mirror what the attacker
/// actually knows: the owner's published default coefficients
/// (α = β = 0.5) and a ±1 perturbation — the same magnitude the
/// watermark itself uses, the largest step that does not obviously
/// degrade the artifact.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptiveConfig {
    /// Attacker's α (the public default — the attacker knows the rule).
    pub alpha: f64,
    /// Attacker's β.
    pub beta: f64,
    /// Cells targeted per layer (the primary sweep variable).
    pub top_k: usize,
    /// Perturbation magnitude in quantization levels (≥ 1).
    pub magnitude: i8,
    /// Adversary base seed ([`AdversaryStage::Adaptive`] directions).
    pub seed: u64,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        let defaults = ScoreCoefficients::default();
        Self {
            alpha: defaults.alpha,
            beta: defaults.beta,
            top_k: 4,
            magnitude: 1,
            seed: 41,
        }
    }
}

/// Runs the attack in place using `adversary_stats` (measured through
/// the deployed quantized model). Perturbations clamp at the symmetric
/// range — the attacker avoids the wrap-around quality cliff. Returns
/// the number of cells perturbed.
///
/// # Panics
///
/// Panics if the stats do not cover the model or `magnitude < 1`.
pub fn adaptive_attack(
    model: &mut QuantizedModel,
    adversary_stats: &ActivationStats,
    cfg: &AdaptiveConfig,
) -> usize {
    assert_eq!(
        adversary_stats.layer_count(),
        model.layer_count(),
        "adversary stats do not cover the model"
    );
    assert!(cfg.magnitude >= 1, "perturbation magnitude must be >= 1");
    let adv = AdversaryConfig::new(cfg.seed);
    let coeffs = ScoreCoefficients {
        alpha: cfg.alpha,
        beta: cfg.beta,
    };
    let mut touched = 0usize;
    for (l, layer) in model.layers.iter_mut().enumerate() {
        let scores = score_layer(layer, &adversary_stats.per_layer[l].mean_abs, &coeffs);
        let finite = scores.iter().filter(|s| s.is_finite()).count();
        let k = cfg.top_k.min(finite);
        if k == 0 {
            continue;
        }
        // The k best-scoring cells — the attacker's estimate of the
        // owner's most attractive insertion sites.
        let targets = candidate_pool(&scores, k).expect("k clamped to finite count");
        let qmax = layer.qmax() as i16;
        for f in targets {
            let sign: i16 = if adv.cell_coin(AdversaryStage::Adaptive, l, f) & 1 == 1 {
                1
            } else {
                -1
            };
            let v = (layer.q_at_flat(f) as i16 + sign * cfg.magnitude as i16).clamp(-qmax, qmax);
            if v != layer.q_at_flat(f) as i16 {
                layer.set_q_flat(f, v as i8);
                touched += 1;
            }
        }
    }
    touched
}

#[cfg(test)]
mod tests {
    use super::*;
    use emmark_core::watermark::{OwnerSecrets, WatermarkConfig};
    use emmark_nanolm::config::ModelConfig;
    use emmark_nanolm::TransformerModel;
    use emmark_quant::awq::{awq, AwqConfig};

    fn setup() -> OwnerSecrets {
        let mut model = TransformerModel::new(ModelConfig::tiny_test());
        let calib: Vec<Vec<u32>> = (0..4u32)
            .map(|s| (0..16u32).map(|i| (i * 7 + s * 3) % 31).collect())
            .collect();
        let stats = model.collect_activation_stats(&calib);
        let qm = awq(&model, &stats, &AwqConfig::default());
        let cfg = WatermarkConfig {
            bits_per_layer: 4,
            pool_ratio: 10,
            ..Default::default()
        };
        OwnerSecrets::new(qm, stats, cfg, 4242)
    }

    fn adversary_calib() -> Vec<Vec<u32>> {
        (0..3u32)
            .map(|s| (0..16u32).map(|i| (i * 11 + s * 5) % 31).collect())
            .collect()
    }

    #[test]
    fn attack_perturbs_top_k_cells_per_layer() {
        let secrets = setup();
        let deployed = secrets.watermark_for_deployment().expect("insert");
        let adv_stats = deployed.collect_activation_stats(&adversary_calib());
        let mut attacked = deployed.clone();
        let touched = adaptive_attack(
            &mut attacked,
            &adv_stats,
            &AdaptiveConfig {
                top_k: 3,
                ..Default::default()
            },
        );
        // ±1 on a non-clamped cell always changes it.
        assert_eq!(touched, 3 * deployed.layer_count());
        assert!(!attacked.same_weights(&deployed));
    }

    #[test]
    fn larger_budgets_perturb_supersets() {
        let secrets = setup();
        let deployed = secrets.watermark_for_deployment().expect("insert");
        let adv_stats = deployed.collect_activation_stats(&adversary_calib());
        let mut small = deployed.clone();
        adaptive_attack(
            &mut small,
            &adv_stats,
            &AdaptiveConfig {
                top_k: 2,
                ..Default::default()
            },
        );
        let mut large = deployed.clone();
        adaptive_attack(
            &mut large,
            &adv_stats,
            &AdaptiveConfig {
                top_k: 6,
                ..Default::default()
            },
        );
        // Every cell the small budget moved, the large budget moved to
        // the same value (nested targets, order-free directions).
        for (l, (s, d)) in small.layers.iter().zip(&deployed.layers).enumerate() {
            for f in 0..s.len() {
                if s.q_at_flat(f) != d.q_at_flat(f) {
                    assert_eq!(
                        large.layers[l].q_at_flat(f),
                        s.q_at_flat(f),
                        "layer {l} cell {f}: budgets must nest"
                    );
                }
            }
        }
    }

    #[test]
    fn attack_is_deterministic_per_seed() {
        let secrets = setup();
        let deployed = secrets.watermark_for_deployment().expect("insert");
        let adv_stats = deployed.collect_activation_stats(&adversary_calib());
        let cfg = AdaptiveConfig {
            top_k: 4,
            ..Default::default()
        };
        let mut a = deployed.clone();
        adaptive_attack(&mut a, &adv_stats, &cfg);
        let mut b = deployed.clone();
        adaptive_attack(&mut b, &adv_stats, &cfg);
        assert!(a.same_weights(&b));
    }

    #[test]
    fn owner_watermark_survives_small_budgets() {
        let secrets = setup();
        let deployed = secrets.watermark_for_deployment().expect("insert");
        let adv_stats = deployed.collect_activation_stats(&adversary_calib());
        let mut attacked = deployed.clone();
        adaptive_attack(
            &mut attacked,
            &adv_stats,
            &AdaptiveConfig {
                top_k: 1,
                ..Default::default()
            },
        );
        let report = secrets.verify(&attacked).expect("extract");
        // With bits_per_layer = 4 sampled from a 40-cell pool, a 1-cell
        // budget cannot erase the signal.
        assert!(report.proves_ownership(-6.0), "wer {}", report.wer());
    }

    #[test]
    fn magnitude_clamps_at_the_symmetric_range() {
        let secrets = setup();
        let deployed = secrets.watermark_for_deployment().expect("insert");
        let adv_stats = deployed.collect_activation_stats(&adversary_calib());
        let mut attacked = deployed.clone();
        adaptive_attack(
            &mut attacked,
            &adv_stats,
            &AdaptiveConfig {
                top_k: 8,
                magnitude: 100,
                ..Default::default()
            },
        );
        for layer in &attacked.layers {
            let qmax = layer.qmax();
            for f in 0..layer.len() {
                let v = layer.q_at_flat(f);
                assert!((-qmax..=qmax).contains(&v), "cell {f} wrapped: {v}");
            }
        }
    }
}
