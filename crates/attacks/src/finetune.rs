//! Fine-tuning attacks on a stamped quantized model.
//!
//! The paper's §3 argument — QLoRA-style tuning "does not change
//! quantized weights" — holds only while the adapter is served
//! *separately*. A removal adversary wants one clean artifact, so they
//! must either merge the adapter back into the integer grids
//! ([`qlora_finetune_attack`] → [`QloraModel::merged_base`]) or
//! full-parameter-tune a dequantized surrogate and re-quantize
//! ([`full_finetune_attack`]). Both paths re-round weights and are
//! where watermark bits are genuinely at risk, so both are swept:
//! step count and learning rate are the budget knobs, and the existing
//! serve-the-adapter case is the zero-merge point of the same frontier.

use crate::adversary::{AdversaryConfig, AdversaryStage};
use crate::requant::RequantScheme;
use emmark_nanolm::train::{finetune, TrainConfig};
use emmark_quant::qlora::QloraModel;
use emmark_quant::QuantizedModel;

/// QLoRA fine-tuning attack configuration. Defaults are the benign
/// regime of `tests/qlora_finetune.rs` (rank 8, 200 steps, lr 5e-3).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FinetuneConfig {
    /// Adapter rank.
    pub rank: usize,
    /// Adapter training steps (the primary sweep variable).
    pub steps: u64,
    /// Token window per step.
    pub window: usize,
    /// Adam learning rate (the secondary sweep variable).
    pub lr: f32,
    /// Adversary base seed ([`AdversaryStage::FinetuneAdapter`] and
    /// [`AdversaryStage::FinetuneSchedule`] derive from it).
    pub seed: u64,
}

impl Default for FinetuneConfig {
    fn default() -> Self {
        Self {
            rank: 8,
            steps: 200,
            window: 16,
            lr: 5e-3,
            seed: 9,
        }
    }
}

/// LoRA/QLoRA fine-tuning attack end to end: wrap the stamped model
/// with a head adapter, tune it on `stream`, merge the adapter into the
/// integer grids, and return the single merged artifact the adversary
/// would ship. At `steps == 0` the adapter is a zero-init no-op and the
/// merge is the identity — the sweep's clean point.
pub fn qlora_finetune_attack(
    deployed: &QuantizedModel,
    stream: &[u32],
    cfg: &FinetuneConfig,
) -> QuantizedModel {
    let adv = AdversaryConfig::new(cfg.seed);
    let mut qlora = QloraModel::new(
        deployed.clone(),
        cfg.rank,
        adv.stage_seed(AdversaryStage::FinetuneAdapter),
    );
    if cfg.steps > 0 {
        qlora.finetune(
            stream,
            cfg.steps,
            cfg.window,
            cfg.lr,
            adv.stage_seed(AdversaryStage::FinetuneSchedule),
        );
    }
    qlora.merged_base()
}

/// Full-parameter fine-tuning attack: rebuild the full-precision
/// surrogate, continue training *every* weight on `stream`, and
/// re-quantize with `target` (typically the source scheme) on the
/// adversary's calibration. The strongest fine-tuning adversary the
/// harness fields — every watermark cell has a gradient path.
pub fn full_finetune_attack(
    deployed: &QuantizedModel,
    stream: &[u32],
    train_cfg: &TrainConfig,
    target: RequantScheme,
    calibration: &[Vec<u32>],
) -> QuantizedModel {
    let mut surrogate = deployed.surrogate_model();
    if train_cfg.steps > 0 {
        finetune(&mut surrogate, stream, train_cfg, 0);
    }
    target.quantize(&mut surrogate, calibration)
}

#[cfg(test)]
mod tests {
    use super::*;
    use emmark_nanolm::config::ModelConfig;
    use emmark_nanolm::corpus::Grammar;
    use emmark_nanolm::TransformerModel;

    fn stamped_rtn() -> QuantizedModel {
        let mut cfg = ModelConfig::tiny_test();
        cfg.vocab_size = Grammar::synalpaca(7).vocab_size();
        let mut model = TransformerModel::new(cfg);
        RequantScheme::RtnInt8.quantize(&mut model, &[vec![1, 2, 3, 4, 5, 6, 7, 8]])
    }

    #[test]
    fn zero_step_attack_is_the_identity() {
        let deployed = stamped_rtn();
        let stream = Grammar::synalpaca(7).generate(500);
        let attacked = qlora_finetune_attack(
            &deployed,
            &stream,
            &FinetuneConfig {
                steps: 0,
                ..Default::default()
            },
        );
        assert!(attacked.same_weights(&deployed));
    }

    #[test]
    fn attack_is_deterministic_and_seed_sensitive() {
        let deployed = stamped_rtn();
        let stream = Grammar::synalpaca(7).generate(800);
        let cfg = FinetuneConfig {
            steps: 20,
            ..Default::default()
        };
        let a = qlora_finetune_attack(&deployed, &stream, &cfg);
        let b = qlora_finetune_attack(&deployed, &stream, &cfg);
        assert!(a.same_weights(&b), "same adversary, same artifact");
        let c = qlora_finetune_attack(&deployed, &stream, &FinetuneConfig { seed: 10, ..cfg });
        // A different base seed re-derives both adapter init and
        // schedule; the merged grids need not match.
        let _ = c; // grids may or may not differ at tiny lr; determinism is the contract
    }

    #[test]
    fn merge_touches_only_the_head_layer() {
        let deployed = stamped_rtn();
        let stream = Grammar::synalpaca(7).generate(800);
        let attacked = qlora_finetune_attack(
            &deployed,
            &stream,
            &FinetuneConfig {
                steps: 30,
                lr: 5e-2,
                ..Default::default()
            },
        );
        let n = deployed.layer_count();
        for l in 0..n - 1 {
            assert_eq!(
                deployed.layers[l].q_values(),
                attacked.layers[l].q_values(),
                "layer {l}: only the head can change under a head adapter"
            );
        }
    }

    #[test]
    fn full_finetune_produces_a_runnable_artifact() {
        use emmark_nanolm::model::LogitsModel;
        let deployed = stamped_rtn();
        let stream = Grammar::synalpaca(7).generate(800);
        let attacked = full_finetune_attack(
            &deployed,
            &stream,
            &TrainConfig {
                steps: 5,
                batch_size: 2,
                seq_len: 8,
                ..Default::default()
            },
            RequantScheme::RtnInt8,
            &[vec![1, 2, 3, 4, 5, 6, 7, 8]],
        );
        assert_eq!(attacked.layer_count(), deployed.layer_count());
        assert!(attacked.logits(&[1, 2, 3]).iter().all(|v| v.is_finite()));
    }
}
