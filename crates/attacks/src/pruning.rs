//! Pruning attack — included to *demonstrate the paper's exclusion*.
//!
//! §3 and §5.3 argue that pruning attacks "cannot be applied to
//! embedded LLM" because the model is already compressed: zeroing
//! quantized weights collapses quality long before it removes enough
//! watermark bits. This module implements magnitude pruning on the
//! integer grids so the claim is measured rather than asserted — the
//! sweep shows quality falling off a cliff while the surviving bits
//! still carry an overwhelming Eq. 8 ownership signal.

use emmark_quant::QuantizedModel;

/// Magnitude-prunes each quantized layer in place: the `fraction`
/// smallest-|q| nonzero cells of every layer are zeroed. Returns the
/// number of cells zeroed.
///
/// # Panics
///
/// Panics if `fraction` is outside `[0, 1]`.
pub fn prune_attack(model: &mut QuantizedModel, fraction: f64) -> usize {
    assert!(
        (0.0..=1.0).contains(&fraction),
        "fraction must be in [0, 1]"
    );
    let mut zeroed = 0usize;
    for layer in &mut model.layers {
        let mut nonzero: Vec<(i8, usize)> = (0..layer.len())
            .filter(|&f| layer.q_at_flat(f) != 0 && !layer.is_outlier_flat(f))
            .map(|f| (layer.q_at_flat(f).unsigned_abs() as i8, f))
            .collect();
        nonzero.sort_unstable_by_key(|&(mag, f)| (mag, f));
        let k = ((nonzero.len() as f64) * fraction).floor() as usize;
        for &(_, f) in nonzero.iter().take(k) {
            layer.set_q_flat(f, 0);
            zeroed += 1;
        }
    }
    zeroed
}

#[cfg(test)]
mod tests {
    use super::*;
    use emmark_core::watermark::{OwnerSecrets, WatermarkConfig};
    use emmark_nanolm::config::ModelConfig;
    use emmark_nanolm::model::LogitsModel;
    use emmark_nanolm::TransformerModel;
    use emmark_quant::awq::{awq, AwqConfig};

    fn setup() -> (OwnerSecrets, QuantizedModel) {
        let mut model = TransformerModel::new(ModelConfig::tiny_test());
        let calib: Vec<Vec<u32>> = (0..4u32)
            .map(|s| (0..16u32).map(|i| (i * 7 + s) % 31).collect())
            .collect();
        let stats = model.collect_activation_stats(&calib);
        let qm = awq(&model, &stats, &AwqConfig::default());
        let cfg = WatermarkConfig {
            bits_per_layer: 4,
            pool_ratio: 10,
            ..Default::default()
        };
        let secrets = OwnerSecrets::new(qm, stats, cfg, 404);
        let deployed = secrets.watermark_for_deployment().expect("insert");
        (secrets, deployed)
    }

    #[test]
    fn pruning_zeroes_the_requested_fraction() {
        let (_, deployed) = setup();
        let mut pruned = deployed.clone();
        let nonzero_before: usize = deployed
            .layers
            .iter()
            .map(|l| (0..l.len()).filter(|&f| l.q_at_flat(f) != 0).count())
            .sum();
        let zeroed = prune_attack(&mut pruned, 0.5);
        assert!(zeroed > nonzero_before / 3, "{zeroed} of {nonzero_before}");
        assert!(!pruned.same_weights(&deployed));
    }

    #[test]
    fn pruning_damages_the_model_severely() {
        let (_, deployed) = setup();
        let tokens: Vec<u32> = (0..20u32).map(|i| (i * 3 + 2) % 31).collect();
        let base = deployed.logits(&tokens);
        let mut pruned = deployed.clone();
        prune_attack(&mut pruned, 0.6);
        let damaged = pruned.logits(&tokens);
        let rel = base.sub(&damaged).frobenius_norm() / base.frobenius_norm().max(1e-12);
        assert!(
            rel > 0.2,
            "60% pruning must visibly damage logits (rel {rel})"
        );
        // Outputs may be garbage but the runtime stays numerically sane.
        assert!(damaged.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn ownership_signal_outlives_moderate_pruning() {
        let (secrets, deployed) = setup();
        let mut pruned = deployed.clone();
        prune_attack(&mut pruned, 0.25);
        let report = secrets.verify(&pruned).expect("extract");
        // Magnitude pruning removes small-|q| cells first; EmMark's S_q
        // term preferred large-|q| cells, so most bits survive a
        // quality-destroying 25% prune.
        assert!(report.wer() > 60.0, "wer {}", report.wer());
        assert!(
            report.proves_ownership(-6.0),
            "p = 10^{}",
            report.log10_p_chance()
        );
    }

    #[test]
    fn zero_fraction_is_a_no_op() {
        let (_, deployed) = setup();
        let mut pruned = deployed.clone();
        assert_eq!(prune_attack(&mut pruned, 0.0), 0);
        assert!(pruned.same_weights(&deployed));
    }

    #[test]
    #[should_panic(expected = "fraction must be in [0, 1]")]
    fn invalid_fraction_panics() {
        let (_, deployed) = setup();
        let mut pruned = deployed.clone();
        let _ = prune_attack(&mut pruned, 1.5);
    }
}
