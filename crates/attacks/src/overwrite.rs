//! Parameter overwriting attack (§5.3, Figure 2(a)).
//!
//! The adversary "removes the watermark by randomly adding one bit to
//! the parameter weights in the watermarked model" — a blind bump of `k`
//! random cells per quantized layer. Arithmetic wraps at the storage
//! width, as it would on device.

use crate::adversary::{AdversaryConfig, AdversaryStage};
use emmark_quant::QuantizedModel;
use emmark_tensor::rng::Xoshiro256;

/// Overwriting attack configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OverwriteConfig {
    /// Cells overwritten per quantized layer (clamped to the layer size).
    pub per_layer: usize,
    /// Attack randomness seed (the adversary's, unrelated to the owner's).
    pub seed: u64,
}

/// Applies the attack in place; returns the number of cells actually
/// bumped.
pub fn overwrite_attack(model: &mut QuantizedModel, cfg: &OverwriteConfig) -> usize {
    let mut sm = AdversaryConfig::new(cfg.seed).seed_sequence(AdversaryStage::Overwrite);
    let mut touched = 0usize;
    for layer in &mut model.layers {
        let mut rng = Xoshiro256::seed_from_u64(sm.next_u64());
        let k = cfg.per_layer.min(layer.len());
        for f in rng.sample_without_replacement(layer.len(), k) {
            // "Adding one bit": +1, hardware wrap semantics.
            layer.bump_q_flat_wrapping(f, 1);
            touched += 1;
        }
    }
    touched
}

#[cfg(test)]
mod tests {
    use super::*;
    use emmark_nanolm::config::ModelConfig;
    use emmark_nanolm::TransformerModel;
    use emmark_quant::rtn::quantize_linear_rtn;
    use emmark_quant::{ActQuant, Granularity};

    fn quantized_tiny() -> QuantizedModel {
        let model = TransformerModel::new(ModelConfig::tiny_test());
        QuantizedModel::quantize_with(&model, "rtn", |_, lin| {
            quantize_linear_rtn(
                lin,
                4,
                Granularity::Grouped { group_size: 8 },
                ActQuant::None,
            )
        })
    }

    #[test]
    fn attack_touches_exactly_k_cells_per_layer() {
        let original = quantized_tiny();
        let mut attacked = original.clone();
        let touched = overwrite_attack(
            &mut attacked,
            &OverwriteConfig {
                per_layer: 10,
                seed: 1,
            },
        );
        assert_eq!(touched, 10 * original.layer_count());
        let mut changed = 0;
        for (a, b) in attacked.layers.iter().zip(&original.layers) {
            for f in 0..a.len() {
                if a.q_at_flat(f) != b.q_at_flat(f) {
                    changed += 1;
                }
            }
        }
        assert_eq!(changed, touched);
    }

    #[test]
    fn oversized_attack_clamps_to_layer_size() {
        let original = quantized_tiny();
        let mut attacked = original.clone();
        let huge = 1_000_000;
        let touched = overwrite_attack(
            &mut attacked,
            &OverwriteConfig {
                per_layer: huge,
                seed: 2,
            },
        );
        let cells: usize = original.layers.iter().map(|l| l.len()).sum();
        assert_eq!(touched, cells);
    }

    #[test]
    fn attack_is_deterministic_per_seed() {
        let original = quantized_tiny();
        let mut a = original.clone();
        let mut b = original.clone();
        overwrite_attack(
            &mut a,
            &OverwriteConfig {
                per_layer: 20,
                seed: 7,
            },
        );
        overwrite_attack(
            &mut b,
            &OverwriteConfig {
                per_layer: 20,
                seed: 7,
            },
        );
        assert!(a.same_weights(&b));
        let mut c = original.clone();
        overwrite_attack(
            &mut c,
            &OverwriteConfig {
                per_layer: 20,
                seed: 8,
            },
        );
        assert!(!a.same_weights(&c));
    }

    #[test]
    fn stronger_attacks_damage_quality_more() {
        use emmark_nanolm::model::LogitsModel;
        let original = quantized_tiny();
        let tokens: Vec<u32> = (0..24u32).map(|i| (i * 5 + 2) % 31).collect();
        let base = original.logits(&tokens);
        let mut errs = Vec::new();
        for k in [5usize, 50, 200] {
            let mut attacked = original.clone();
            overwrite_attack(
                &mut attacked,
                &OverwriteConfig {
                    per_layer: k,
                    seed: 3,
                },
            );
            errs.push(base.sub(&attacked.logits(&tokens)).frobenius_norm());
        }
        assert!(
            errs[0] < errs[2],
            "damage should grow with strength: {errs:?}"
        );
    }
}
