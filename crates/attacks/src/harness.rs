//! Attack sweep harness: runs an attack at increasing strengths and
//! measures the Figure 2 triple (PPL, zero-shot accuracy, WER) at every
//! point.

use crate::overwrite::{overwrite_attack, OverwriteConfig};
use crate::rewatermark::{rewatermark_attack, RewatermarkConfig};
use emmark_core::watermark::OwnerSecrets;
use emmark_eval::report::{evaluate_quality, EvalConfig};
use emmark_nanolm::corpus::Corpus;
use emmark_quant::QuantizedModel;
use serde::{Deserialize, Serialize};

/// One point of an attack sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AttackPoint {
    /// Attack strength (cells perturbed per layer).
    pub strength: usize,
    /// Perplexity of the attacked model.
    pub ppl: f64,
    /// Zero-shot accuracy (%) of the attacked model.
    pub zero_shot_acc: f64,
    /// Owner's watermark extraction rate (%) after the attack.
    pub wer: f64,
}

/// Sweeps the parameter-overwriting attack over `strengths`
/// (Figure 2(a): 0, 100, …, 500 in the paper).
pub fn overwrite_sweep(
    secrets: &OwnerSecrets,
    deployed: &QuantizedModel,
    corpus: &Corpus,
    eval_cfg: &EvalConfig,
    strengths: &[usize],
    attack_seed: u64,
) -> Vec<AttackPoint> {
    strengths
        .iter()
        .map(|&strength| {
            let mut attacked = deployed.clone();
            if strength > 0 {
                overwrite_attack(
                    &mut attacked,
                    &OverwriteConfig {
                        per_layer: strength,
                        seed: attack_seed,
                    },
                );
            }
            measure(secrets, &attacked, corpus, eval_cfg, strength)
        })
        .collect()
}

/// Sweeps the re-watermark attack over `strengths` (Figure 2(b): 0,
/// 100, …, 300 in the paper). The adversary's activation statistics are
/// measured once through the deployed quantized model.
pub fn rewatermark_sweep(
    secrets: &OwnerSecrets,
    deployed: &QuantizedModel,
    corpus: &Corpus,
    eval_cfg: &EvalConfig,
    strengths: &[usize],
    adversary_calibration: &[Vec<u32>],
) -> Vec<AttackPoint> {
    let adv_stats = deployed.collect_activation_stats(adversary_calibration);
    strengths
        .iter()
        .map(|&strength| {
            let mut attacked = deployed.clone();
            if strength > 0 {
                rewatermark_attack(
                    &mut attacked,
                    &adv_stats,
                    &RewatermarkConfig {
                        per_layer: strength,
                        ..Default::default()
                    },
                );
            }
            measure(secrets, &attacked, corpus, eval_cfg, strength)
        })
        .collect()
}

fn measure(
    secrets: &OwnerSecrets,
    attacked: &QuantizedModel,
    corpus: &Corpus,
    eval_cfg: &EvalConfig,
    strength: usize,
) -> AttackPoint {
    let quality = evaluate_quality(attacked, corpus, eval_cfg);
    let wer = secrets.verify(attacked).map(|r| r.wer()).unwrap_or(0.0);
    AttackPoint {
        strength,
        ppl: quality.ppl,
        zero_shot_acc: quality.zero_shot_acc,
        wer,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use emmark_core::watermark::WatermarkConfig;
    use emmark_nanolm::config::ModelConfig;
    use emmark_nanolm::corpus::Grammar;
    use emmark_nanolm::train::{train, TrainConfig};
    use emmark_nanolm::TransformerModel;
    use emmark_quant::awq::{awq, AwqConfig};

    fn setup() -> (OwnerSecrets, QuantizedModel, Corpus) {
        let corpus = Corpus::sample(Grammar::synwiki(15), 6000, 400, 800);
        let mut cfg = ModelConfig::tiny_test();
        cfg.vocab_size = corpus.grammar.vocab_size();
        let mut model = TransformerModel::new(cfg);
        train(
            &mut model,
            &corpus,
            &TrainConfig {
                steps: 80,
                batch_size: 6,
                seq_len: 16,
                ..TrainConfig::default()
            },
        );
        let calib: Vec<Vec<u32>> = corpus
            .valid
            .chunks(16)
            .take(6)
            .map(|c| c.to_vec())
            .collect();
        let stats = model.collect_activation_stats(&calib);
        let qm = awq(&model, &stats, &AwqConfig::default());
        let wm_cfg = WatermarkConfig {
            bits_per_layer: 4,
            pool_ratio: 10,
            ..Default::default()
        };
        let secrets = OwnerSecrets::new(qm, stats, wm_cfg, 5150);
        let deployed = secrets.watermark_for_deployment().expect("insert");
        (secrets, deployed, corpus)
    }

    #[test]
    fn overwrite_sweep_shows_the_figure_2a_shape() {
        let (secrets, deployed, corpus) = setup();
        let eval_cfg = EvalConfig {
            task_items: 12,
            ppl_tokens: 300,
            ..EvalConfig::tiny_test()
        };
        // Strengths sized to the tiny 256-cell test layers: the paper's
        // 100–500-per-layer sweep on multi-million-cell layers maps to
        // single-digit percentages of cells, i.e. tens of cells here.
        let points = overwrite_sweep(&secrets, &deployed, &corpus, &eval_cfg, &[0, 8, 32], 77);
        assert_eq!(points.len(), 3);
        // Zero-strength point: untouched model, full WER.
        assert_eq!(points[0].wer, 100.0);
        // Damage grows with strength…
        assert!(points[2].ppl > points[0].ppl, "{points:?}");
        // …while WER stays high.
        assert!(points[2].wer > 80.0, "{points:?}");
    }

    #[test]
    fn rewatermark_sweep_keeps_owner_wer_high() {
        let (secrets, deployed, corpus) = setup();
        let eval_cfg = EvalConfig {
            task_items: 12,
            ppl_tokens: 300,
            ..EvalConfig::tiny_test()
        };
        let calib: Vec<Vec<u32>> = corpus
            .valid
            .chunks(16)
            .skip(6)
            .take(4)
            .map(|c| c.to_vec())
            .collect();
        let points =
            rewatermark_sweep(&secrets, &deployed, &corpus, &eval_cfg, &[0, 8, 24], &calib);
        assert_eq!(points[0].wer, 100.0);
        assert!(points[2].wer > 60.0, "{points:?}");
    }
}
