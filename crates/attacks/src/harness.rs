//! Attack sweep harness: runs an attack at increasing strengths and
//! measures the Figure 2 triple (PPL, zero-shot accuracy, WER) at every
//! point. Every attack family the paper discusses — overwriting,
//! re-watermarking, pruning (§5.3's exclusion argument), and forging —
//! drives through this one API, so a regression matrix can sweep them
//! uniformly across quantization schemes.

use crate::adaptive::{adaptive_attack, AdaptiveConfig};
use crate::finetune::{qlora_finetune_attack, FinetuneConfig};
use crate::forging::{forge_counterfeit_claim, naive_delta_check, validate_claim, ClaimVerdict};
use crate::overwrite::{overwrite_attack, OverwriteConfig};
use crate::pruning::prune_attack;
use crate::requant::{requantize, RequantScheme};
use crate::rewatermark::{rewatermark_attack, RewatermarkConfig};
use emmark_core::telemetry::{self, Telemetry};
use emmark_core::watermark::OwnerSecrets;
use emmark_eval::report::{evaluate_quality, EvalConfig};
use emmark_nanolm::corpus::Corpus;
use emmark_quant::QuantizedModel;
use serde::{Deserialize, Serialize};

/// One point of an attack sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AttackPoint {
    /// Attack strength (cells perturbed per layer).
    pub strength: usize,
    /// Perplexity of the attacked model.
    pub ppl: f64,
    /// Zero-shot accuracy (%) of the attacked model.
    pub zero_shot_acc: f64,
    /// Owner's watermark extraction rate (%) after the attack.
    pub wer: f64,
}

/// Sweeps the parameter-overwriting attack over `strengths`
/// (Figure 2(a): 0, 100, …, 500 in the paper).
pub fn overwrite_sweep(
    secrets: &OwnerSecrets,
    deployed: &QuantizedModel,
    corpus: &Corpus,
    eval_cfg: &EvalConfig,
    strengths: &[usize],
    attack_seed: u64,
) -> Vec<AttackPoint> {
    strengths
        .iter()
        .map(|&strength| {
            let mut attacked = deployed.clone();
            if strength > 0 {
                overwrite_attack(
                    &mut attacked,
                    &OverwriteConfig {
                        per_layer: strength,
                        seed: attack_seed,
                    },
                );
            }
            measure(secrets, &attacked, corpus, eval_cfg, strength)
        })
        .collect()
}

/// Sweeps the re-watermark attack over `strengths` (Figure 2(b): 0,
/// 100, …, 300 in the paper). The adversary's activation statistics are
/// measured once through the deployed quantized model; `adversary`
/// carries the rest of their parameters (α, β, seed, pool ratio — the
/// paper's adversary is [`RewatermarkConfig::default`]) with its
/// `per_layer` overridden by each sweep strength.
pub fn rewatermark_sweep(
    secrets: &OwnerSecrets,
    deployed: &QuantizedModel,
    corpus: &Corpus,
    eval_cfg: &EvalConfig,
    strengths: &[usize],
    adversary_calibration: &[Vec<u32>],
    adversary: &RewatermarkConfig,
) -> Vec<AttackPoint> {
    let adv_stats = deployed.collect_activation_stats(adversary_calibration);
    strengths
        .iter()
        .map(|&strength| {
            let mut attacked = deployed.clone();
            if strength > 0 {
                rewatermark_attack(
                    &mut attacked,
                    &adv_stats,
                    &RewatermarkConfig {
                        per_layer: strength,
                        ..*adversary
                    },
                );
            }
            measure(secrets, &attacked, corpus, eval_cfg, strength)
        })
        .collect()
}

/// Sweeps the magnitude-pruning attack over `fractions` of cells zeroed
/// per layer (§5.3: the paper *excludes* pruning as impractical on
/// already-compressed models; the sweep measures that claim). Each
/// point's `strength` reports the pruned fraction in percent.
///
/// # Panics
///
/// Panics if a fraction is outside `[0, 1]` (see
/// [`prune_attack`]).
pub fn pruning_sweep(
    secrets: &OwnerSecrets,
    deployed: &QuantizedModel,
    corpus: &Corpus,
    eval_cfg: &EvalConfig,
    fractions: &[f64],
) -> Vec<AttackPoint> {
    fractions
        .iter()
        .map(|&fraction| {
            let mut attacked = deployed.clone();
            prune_attack(&mut attacked, fraction);
            measure(
                secrets,
                &attacked,
                corpus,
                eval_cfg,
                (fraction * 100.0).round() as usize,
            )
        })
        .collect()
}

/// Outcome of the §5.3 forging check: what a naive Eq. 6 verifier and
/// the full reproduction-based protocol each say about a counterfeit
/// claim over the deployed model.
#[derive(Debug, Clone, PartialEq)]
pub struct ForgingOutcome {
    /// WER the counterfeit scores under the naive delta-only check —
    /// near 100 by construction (the vulnerability).
    pub naive_wer: f64,
    /// Verdict of the full protocol (stats + location reproduction) on
    /// the counterfeit, filed without a full-precision model.
    pub verdict: ClaimVerdict,
}

impl ForgingOutcome {
    /// Whether the system behaves as the paper claims: the naive check
    /// is fooled, the reproduction-based protocol is not.
    pub fn forgery_rejected(&self) -> bool {
        !self.verdict.accepted
    }
}

/// Runs the forging attack end to end: counterfeit a claim over
/// `deployed` (declaring `deployed − b` at `bits_per_layer` random
/// cells per layer as "the original"), score it with the naive delta
/// check, then put it through the full reproduction-based validation —
/// without a full-precision model, as a real adversary would file it.
pub fn forging_check(
    deployed: &QuantizedModel,
    adversary_calibration: &[Vec<u32>],
    bits_per_layer: usize,
    seed: u64,
    wer_threshold: f64,
) -> ForgingOutcome {
    let claim = forge_counterfeit_claim(deployed, adversary_calibration, bits_per_layer, seed);
    let naive_wer = naive_delta_check(&claim, deployed);
    let verdict = validate_claim(&claim, deployed, None, adversary_calibration, wer_threshold);
    ForgingOutcome { naive_wer, verdict }
}

/// Sweeps the QLoRA fine-tuning attack over adapter step counts: tune a
/// head adapter on `stream` (the adversary's task data), merge it into
/// the integer grids, re-verify. Each point's `strength` is the step
/// count; `adversary` fixes rank, window, learning rate, and seed. The
/// zero-step point is the identity merge — the sweep's clean anchor.
pub fn finetune_sweep(
    secrets: &OwnerSecrets,
    deployed: &QuantizedModel,
    corpus: &Corpus,
    eval_cfg: &EvalConfig,
    stream: &[u32],
    step_grid: &[u64],
    adversary: &FinetuneConfig,
) -> Vec<AttackPoint> {
    step_grid
        .iter()
        .map(|&steps| {
            let attacked = qlora_finetune_attack(
                deployed,
                stream,
                &FinetuneConfig {
                    steps,
                    ..*adversary
                },
            );
            measure(secrets, &attacked, corpus, eval_cfg, steps as usize)
        })
        .collect()
}

/// One cell of the scheme-conversion matrix: the stamped artifact
/// re-quantized through `target`, with quality, WER, and the Eq. 8
/// p-value of what survived.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RequantPoint {
    /// Target scheme label.
    pub target: String,
    /// Perplexity of the converted model.
    pub ppl: f64,
    /// Zero-shot accuracy (%) of the converted model.
    pub zero_shot_acc: f64,
    /// Owner's WER (%) against the converted grids.
    pub wer: f64,
    /// `log10` of the Eq. 8 chance probability of the surviving match
    /// count (more negative = stronger residual proof).
    pub log10_p: f64,
}

/// Runs the scheme-conversion attack into every `target`: rebuild the
/// adversary's full-precision surrogate from `deployed`, re-quantize it
/// per target on the adversary's `calibration`, and measure what the
/// owner can still extract. One row of the robustness-frontier table
/// per target.
pub fn requant_matrix(
    secrets: &OwnerSecrets,
    deployed: &QuantizedModel,
    corpus: &Corpus,
    eval_cfg: &EvalConfig,
    calibration: &[Vec<u32>],
    targets: &[RequantScheme],
) -> Vec<RequantPoint> {
    targets
        .iter()
        .map(|&target| {
            let point_span = telemetry::Span::enter(&telemetry::ATTACK_POINT_NS);
            let attacked = requantize(deployed, target, calibration);
            let quality = evaluate_quality(&attacked, corpus, eval_cfg);
            let extract_span = telemetry::Span::enter(&telemetry::ATTACK_EXTRACT_NS);
            let (wer, log10_p) = secrets
                .verify(&attacked)
                .map(|r| (r.wer(), r.log10_p_chance()))
                .unwrap_or((0.0, 0.0));
            drop(extract_span);
            if Telemetry::enabled() {
                telemetry::ATTACK_POINTS.incr();
            }
            drop(point_span);
            RequantPoint {
                target: target.name().to_string(),
                ppl: quality.ppl,
                zero_shot_acc: quality.zero_shot_acc,
                wer,
                log10_p,
            }
        })
        .collect()
}

/// Sweeps the adaptive location-targeting attack over per-layer budgets
/// `ks`: the attacker scores every layer with the public rule (through
/// quantized-model activation statistics measured once on
/// `adversary_calibration`) and perturbs the `k` best-scoring cells.
/// Each point's `strength` is `k`. Because targets are ranking prefixes
/// and directions are order-free, WER is non-increasing across the
/// sweep — callers may assert it.
pub fn adaptive_sweep(
    secrets: &OwnerSecrets,
    deployed: &QuantizedModel,
    corpus: &Corpus,
    eval_cfg: &EvalConfig,
    adversary_calibration: &[Vec<u32>],
    ks: &[usize],
    adversary: &AdaptiveConfig,
) -> Vec<AttackPoint> {
    let adv_stats = deployed.collect_activation_stats(adversary_calibration);
    ks.iter()
        .map(|&k| {
            let mut attacked = deployed.clone();
            if k > 0 {
                adaptive_attack(
                    &mut attacked,
                    &adv_stats,
                    &AdaptiveConfig {
                        top_k: k,
                        ..*adversary
                    },
                );
            }
            measure(secrets, &attacked, corpus, eval_cfg, k)
        })
        .collect()
}

fn measure(
    secrets: &OwnerSecrets,
    attacked: &QuantizedModel,
    corpus: &Corpus,
    eval_cfg: &EvalConfig,
    strength: usize,
) -> AttackPoint {
    let point_span = telemetry::Span::enter(&telemetry::ATTACK_POINT_NS);
    let quality = evaluate_quality(attacked, corpus, eval_cfg);
    let extract_span = telemetry::Span::enter(&telemetry::ATTACK_EXTRACT_NS);
    let wer = secrets.verify(attacked).map(|r| r.wer()).unwrap_or(0.0);
    drop(extract_span);
    if Telemetry::enabled() {
        telemetry::ATTACK_POINTS.incr();
    }
    drop(point_span);
    AttackPoint {
        strength,
        ppl: quality.ppl,
        zero_shot_acc: quality.zero_shot_acc,
        wer,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use emmark_core::watermark::WatermarkConfig;
    use emmark_nanolm::config::ModelConfig;
    use emmark_nanolm::corpus::Grammar;
    use emmark_nanolm::train::{train, TrainConfig};
    use emmark_nanolm::TransformerModel;
    use emmark_quant::awq::{awq, AwqConfig};

    fn setup() -> (OwnerSecrets, QuantizedModel, Corpus) {
        let corpus = Corpus::sample(Grammar::synwiki(15), 6000, 400, 800);
        let mut cfg = ModelConfig::tiny_test();
        cfg.vocab_size = corpus.grammar.vocab_size();
        let mut model = TransformerModel::new(cfg);
        train(
            &mut model,
            &corpus,
            &TrainConfig {
                steps: 80,
                batch_size: 6,
                seq_len: 16,
                ..TrainConfig::default()
            },
        );
        let calib: Vec<Vec<u32>> = corpus
            .valid
            .chunks(16)
            .take(6)
            .map(|c| c.to_vec())
            .collect();
        let stats = model.collect_activation_stats(&calib);
        let qm = awq(&model, &stats, &AwqConfig::default());
        let wm_cfg = WatermarkConfig {
            bits_per_layer: 4,
            pool_ratio: 10,
            ..Default::default()
        };
        let secrets = OwnerSecrets::new(qm, stats, wm_cfg, 5150);
        let deployed = secrets.watermark_for_deployment().expect("insert");
        (secrets, deployed, corpus)
    }

    #[test]
    fn overwrite_sweep_shows_the_figure_2a_shape() {
        let (secrets, deployed, corpus) = setup();
        let eval_cfg = EvalConfig {
            task_items: 12,
            ppl_tokens: 300,
            ..EvalConfig::tiny_test()
        };
        // Strengths sized to the tiny 256-cell test layers: the paper's
        // 100–500-per-layer sweep on multi-million-cell layers maps to
        // single-digit percentages of cells, i.e. tens of cells here.
        let points = overwrite_sweep(&secrets, &deployed, &corpus, &eval_cfg, &[0, 8, 32], 77);
        assert_eq!(points.len(), 3);
        // Zero-strength point: untouched model, full WER.
        assert_eq!(points[0].wer, 100.0);
        // Damage grows with strength…
        assert!(points[2].ppl > points[0].ppl, "{points:?}");
        // …while WER stays high.
        assert!(points[2].wer > 80.0, "{points:?}");
    }

    #[test]
    fn pruning_sweep_kills_quality_before_the_ownership_signal() {
        let (secrets, deployed, corpus) = setup();
        let eval_cfg = EvalConfig {
            task_items: 12,
            ppl_tokens: 300,
            ..EvalConfig::tiny_test()
        };
        let points = pruning_sweep(&secrets, &deployed, &corpus, &eval_cfg, &[0.0, 0.25]);
        assert_eq!(points.len(), 2);
        assert_eq!(points[0].strength, 0);
        assert_eq!(points[1].strength, 25);
        // Zero-fraction point: untouched model, full WER.
        assert_eq!(points[0].wer, 100.0);
        // Quality collapses (§5.3's exclusion argument)…
        assert!(points[1].ppl > points[0].ppl, "{points:?}");
        // …but the Eq. 8 signal survives.
        assert!(points[1].wer > 60.0, "{points:?}");
    }

    #[test]
    fn forging_check_fools_the_naive_verifier_but_not_the_protocol() {
        let (secrets, deployed, _) = setup();
        let calib: Vec<Vec<u32>> = (0..3u32)
            .map(|s| (0..16u32).map(|i| (i * 11 + s * 5) % 31).collect())
            .collect();
        let outcome = forging_check(&deployed, &calib, 4, 666, 90.0);
        assert!(outcome.naive_wer > 95.0, "naive wer {}", outcome.naive_wer);
        assert!(outcome.forgery_rejected());
        assert!(!outcome.verdict.stats_reproducible);
        // Sanity: the owner's real watermark still extracts perfectly
        // from the model the forger claimed.
        assert_eq!(secrets.verify(&deployed).expect("verify").wer(), 100.0);
    }

    #[test]
    fn rewatermark_sweep_keeps_owner_wer_high() {
        let (secrets, deployed, corpus) = setup();
        let eval_cfg = EvalConfig {
            task_items: 12,
            ppl_tokens: 300,
            ..EvalConfig::tiny_test()
        };
        let calib: Vec<Vec<u32>> = corpus
            .valid
            .chunks(16)
            .skip(6)
            .take(4)
            .map(|c| c.to_vec())
            .collect();
        let points = rewatermark_sweep(
            &secrets,
            &deployed,
            &corpus,
            &eval_cfg,
            &[0, 8, 24],
            &calib,
            &RewatermarkConfig::default(),
        );
        assert_eq!(points[0].wer, 100.0);
        assert!(points[2].wer > 60.0, "{points:?}");
    }
}
