//! Centralized adversary randomness.
//!
//! Every attack family is a *deterministic* adversary: the regression
//! matrix pins one seed per family and asserts against exactly that
//! opponent. Before this module, each family re-derived its working RNG
//! from its own scattered `seed ^ MAGIC` expression; the magic numbers
//! now live in one place, keyed by [`AdversaryStage`], so determinism —
//! and stream independence between stages sharing one base seed — is
//! enforced in one place.
//!
//! The stage tweaks reproduce the historical per-family constants
//! bit-for-bit, so every pinned attack outcome in the test suite is
//! unchanged by the refactor.

use emmark_tensor::rng::{SplitMix64, Xoshiro256};

/// A named randomness stage of some attack. Stages sharing a base seed
/// draw from provably distinct streams (distinct XOR tweaks into
/// SplitMix64, whose outputs decorrelate single-bit input differences).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdversaryStage {
    /// Blind cell selection of the overwriting attack.
    Overwrite,
    /// Cell selection + bit directions of the re-watermark attack.
    Rewatermark,
    /// The forged signature of a counterfeit claim.
    ForgeSignature,
    /// The asserted cells of a counterfeit claim.
    ForgeCells,
    /// Perturbation directions of the adaptive location-targeting
    /// attack.
    Adaptive,
    /// LoRA adapter initialization of the fine-tuning attack.
    FinetuneAdapter,
    /// Window sampling schedule of the fine-tuning attack.
    FinetuneSchedule,
    /// Calibration-stream generation of the re-quantization attack.
    Requant,
}

impl AdversaryStage {
    /// The stage's XOR tweak into the base seed. The first four values
    /// are the historical per-family magic numbers (kept bit-identical
    /// so pinned matrix outcomes survive the centralization); the rest
    /// are fresh constants for the PR-8 families.
    fn tweak(self) -> u64 {
        match self {
            Self::Overwrite => 0x0133_7A77,
            Self::Rewatermark => 0xADE5_0B11,
            Self::ForgeSignature => 0xFA_CE,
            Self::ForgeCells => 0xF0_4641,
            Self::Adaptive => 0xADA7_711E,
            Self::FinetuneAdapter => 0xF1E7_ADA7,
            Self::FinetuneSchedule => 0xF1E7_5C8D,
            Self::Requant => 0x2E5A_A47E,
        }
    }
}

/// One adversary identity: a base seed from which every stage of every
/// attack family derives its randomness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdversaryConfig {
    /// The adversary's base seed.
    pub seed: u64,
}

impl AdversaryConfig {
    /// An adversary with the given base seed.
    pub fn new(seed: u64) -> Self {
        Self { seed }
    }

    /// The derived seed of one stage.
    pub fn stage_seed(&self, stage: AdversaryStage) -> u64 {
        self.seed ^ stage.tweak()
    }

    /// A [`SplitMix64`] seed sequencer for a stage — the idiom every
    /// per-layer attack uses: one sequencer per stage, one
    /// [`Xoshiro256`] per layer off its stream, so layer sub-streams
    /// stay independent regardless of how many draws a layer consumes.
    pub fn seed_sequence(&self, stage: AdversaryStage) -> SplitMix64 {
        SplitMix64::new(self.stage_seed(stage))
    }

    /// A working RNG for a stage that needs a single stream.
    pub fn rng(&self, stage: AdversaryStage) -> Xoshiro256 {
        Xoshiro256::seed_from_u64(self.stage_seed(stage))
    }

    /// A deterministic per-cell coin for a stage: depends only on
    /// `(seed, stage, layer, cell)`, never on draw order. Attack sweeps
    /// that grow a target set with strength stay *nested* under this
    /// coin — cell `f`'s perturbation direction is the same whether it
    /// was the 1st or the 40th pick — which is what makes "WER is
    /// non-increasing in attack strength" a deterministic invariant
    /// rather than a statistical tendency.
    pub fn cell_coin(&self, stage: AdversaryStage, layer: usize, cell: usize) -> u64 {
        let mut sm = SplitMix64::new(
            self.stage_seed(stage)
                ^ (layer as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
                ^ (cell as u64).wrapping_mul(0xD1B5_4A32_D192_ED03),
        );
        sm.next_u64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn historical_tweaks_are_preserved() {
        let adv = AdversaryConfig::new(7);
        assert_eq!(adv.stage_seed(AdversaryStage::Overwrite), 7 ^ 0x0133_7A77);
        assert_eq!(adv.stage_seed(AdversaryStage::Rewatermark), 7 ^ 0xADE5_0B11);
        assert_eq!(adv.stage_seed(AdversaryStage::ForgeSignature), 7 ^ 0xFA_CE);
        assert_eq!(adv.stage_seed(AdversaryStage::ForgeCells), 7 ^ 0xF0_4641);
    }

    #[test]
    fn stages_draw_distinct_streams_from_one_seed() {
        let adv = AdversaryConfig::new(123);
        let mut seen = Vec::new();
        for stage in [
            AdversaryStage::Overwrite,
            AdversaryStage::Rewatermark,
            AdversaryStage::ForgeSignature,
            AdversaryStage::ForgeCells,
            AdversaryStage::Adaptive,
            AdversaryStage::FinetuneAdapter,
            AdversaryStage::FinetuneSchedule,
            AdversaryStage::Requant,
        ] {
            let first = adv.seed_sequence(stage).next_u64();
            assert!(!seen.contains(&first), "stage streams must differ");
            seen.push(first);
        }
    }

    #[test]
    fn cell_coin_is_order_free_and_cell_dependent() {
        let adv = AdversaryConfig::new(9);
        let a = adv.cell_coin(AdversaryStage::Adaptive, 3, 17);
        let b = adv.cell_coin(AdversaryStage::Adaptive, 3, 17);
        assert_eq!(a, b, "coin must not depend on draw order");
        assert_ne!(a, adv.cell_coin(AdversaryStage::Adaptive, 3, 18));
        assert_ne!(a, adv.cell_coin(AdversaryStage::Adaptive, 4, 17));
        assert_ne!(a, adv.cell_coin(AdversaryStage::Overwrite, 3, 17));
    }

    #[test]
    fn seed_sequence_matches_manual_derivation() {
        let adv = AdversaryConfig::new(10);
        let mut ours = adv.seed_sequence(AdversaryStage::Overwrite);
        let mut manual = SplitMix64::new(10 ^ 0x0133_7A77);
        for _ in 0..4 {
            assert_eq!(ours.next_u64(), manual.next_u64());
        }
    }
}
