//! Forging attacks (§5.3): the adversary does not remove the owner's
//! watermark — they fabricate one of their own and claim the model.
//!
//! Setting (i): counterfeit a location set `L_a` and a fake signature by
//! declaring a doctored "original" (`deployed − b` at chosen cells).
//! The naive delta check (Eq. 6) cannot tell this apart from a real
//! claim — which is precisely why the paper's verification *requires
//! reproduction*: locations must re-derive from the claimed original
//! weights, activation profile, and hyperparameters, and the activation
//! profile must come from the claimant's full-precision model. The
//! adversary has no full-precision model, so their claimed `A_f` cannot
//! be reproduced and the claim dies.
//!
//! Setting (ii): re-watermark the deployed model and claim it — handled
//! in [`crate::rewatermark`]; the owner's bits survive, so priority plus
//! reproduction still decides for the owner.

use crate::adversary::{AdversaryConfig, AdversaryStage};
use emmark_core::signature::Signature;
use emmark_core::watermark::{locate_watermark, Locations, OwnerSecrets, WatermarkConfig};
use emmark_nanolm::model::ActivationStats;
use emmark_nanolm::TransformerModel;
use emmark_quant::QuantizedModel;
use emmark_tensor::rng::Xoshiro256;

/// An ownership claim as presented to a verifier: the claimed original
/// weights, activation profile, signature, hyperparameters, and the
/// *asserted* watermark locations `L`.
#[derive(Debug, Clone)]
pub struct OwnershipClaim {
    /// Claimed pre-watermark quantized model.
    pub original: QuantizedModel,
    /// Claimed full-precision activation profile.
    pub stats: ActivationStats,
    /// Claimed signature.
    pub signature: Signature,
    /// Claimed insertion hyperparameters.
    pub config: WatermarkConfig,
    /// Asserted locations. An honest claim derives these from the secret
    /// material; a counterfeit simply asserts convenient cells.
    pub locations: Locations,
}

impl OwnershipClaim {
    /// The honest claim a real owner files: locations derived from the
    /// secrets.
    ///
    /// # Errors
    ///
    /// Propagates location-derivation errors.
    pub fn from_secrets(secrets: &OwnerSecrets) -> Result<Self, emmark_core::WatermarkError> {
        let locations = locate_watermark(&secrets.original, &secrets.stats, &secrets.config)?;
        Ok(Self {
            original: secrets.original.clone(),
            stats: secrets.stats.clone(),
            signature: secrets.signature.clone(),
            config: secrets.config,
            locations,
        })
    }
}

/// Counterfeits a claim over `deployed` (forging setting (i)): pick
/// random cells, declare `deployed − b` there as "the original", and
/// present activation statistics measured through the quantized model
/// as "A_f".
pub fn forge_counterfeit_claim(
    deployed: &QuantizedModel,
    adversary_calibration: &[Vec<u32>],
    bits_per_layer: usize,
    seed: u64,
) -> OwnershipClaim {
    let n = deployed.layer_count();
    let adv = AdversaryConfig::new(seed);
    let signature = Signature::generate(
        bits_per_layer * n,
        adv.stage_seed(AdversaryStage::ForgeSignature),
    );
    let mut fake_original = deployed.clone();
    let mut locations: Locations = Vec::with_capacity(n);
    let mut sm = adv.seed_sequence(AdversaryStage::ForgeCells);
    for (l, layer) in fake_original.layers.iter_mut().enumerate() {
        let mut rng = Xoshiro256::seed_from_u64(sm.next_u64());
        let bits = signature.layer_bits(l, n);
        // Choose cells where subtracting b stays in range, making the
        // forged "original" internally consistent.
        let mut chosen = Vec::new();
        let mut guard = 0;
        while chosen.len() < bits_per_layer && guard < layer.len() * 4 {
            guard += 1;
            let f = rng.below(layer.len());
            if chosen.contains(&f) {
                continue;
            }
            let b = bits[chosen.len()];
            let target = layer.q_at_flat(f) as i16 - b as i16;
            if target.unsigned_abs() as i16 <= layer.qmax() as i16 {
                layer.set_q_flat(f, target as i8);
                chosen.push(f);
            }
        }
        locations.push(chosen);
    }
    let stats = deployed.collect_activation_stats(adversary_calibration);
    OwnershipClaim {
        original: fake_original,
        stats,
        signature,
        config: WatermarkConfig {
            bits_per_layer,
            ..Default::default()
        },
        locations,
    }
}

/// The naive Eq. 6 delta check a careless verifier might run: diff the
/// suspect against the claimed original at the *asserted* locations.
/// The counterfeit passes this by construction — which is the paper's
/// argument for mandatory location reproduction.
///
/// # Panics
///
/// Panics if the suspect's shape does not match the claim.
pub fn naive_delta_check(claim: &OwnershipClaim, suspect: &QuantizedModel) -> f64 {
    let n = claim.original.layer_count();
    assert_eq!(suspect.layer_count(), n, "layer count mismatch");
    let mut matched = 0usize;
    let mut total = 0usize;
    for (l, locs) in claim.locations.iter().enumerate() {
        let bits = claim.signature.layer_bits(l, n);
        for (&f, &b) in locs.iter().zip(bits) {
            let delta = suspect.layers[l].q_at_flat(f) as i16
                - claim.original.layers[l].q_at_flat(f) as i16;
            if delta == b as i16 {
                matched += 1;
            }
            total += 1;
        }
    }
    if total == 0 {
        0.0
    } else {
        100.0 * matched as f64 / total as f64
    }
}

/// Verdict of the full verification protocol.
#[derive(Debug, Clone, PartialEq)]
pub struct ClaimVerdict {
    /// WER of the claimed signature at the *reproduced* locations.
    pub wer_at_reproduced_locations: f64,
    /// Whether the claimed activation profile matches one recomputed
    /// from the claimant's full-precision model.
    pub stats_reproducible: bool,
    /// Whether the asserted locations re-derive from the claimed
    /// original, profile, and hyperparameters.
    pub locations_reproducible: bool,
    /// Overall acceptance.
    pub accepted: bool,
}

/// Maximum relative deviation tolerated between claimed and recomputed
/// mean-absolute activations.
const STATS_TOLERANCE: f32 = 0.02;

/// The paper's full verification: the claimant must hand over their
/// full-precision model; the verifier recomputes `A_f` from it on the
/// agreed calibration data, re-derives the locations from the claimed
/// material, and only then checks deltas. A claimant without the real
/// full-precision model cannot pass the reproduction steps.
pub fn validate_claim(
    claim: &OwnershipClaim,
    suspect: &QuantizedModel,
    claimed_fp_model: Option<&mut TransformerModel>,
    calibration: &[Vec<u32>],
    wer_threshold: f64,
) -> ClaimVerdict {
    let stats_reproducible = match claimed_fp_model {
        None => false, // no full-precision model, no reproduction
        Some(fp) => {
            let recomputed = fp.collect_activation_stats(calibration);
            recomputed.layer_count() == claim.stats.layer_count()
                && recomputed
                    .per_layer
                    .iter()
                    .zip(&claim.stats.per_layer)
                    .all(|(a, b)| {
                        a.mean_abs.len() == b.mean_abs.len()
                            && a.mean_abs
                                .iter()
                                .zip(&b.mean_abs)
                                .all(|(x, y)| (x - y).abs() <= STATS_TOLERANCE * x.abs().max(1e-6))
                    })
        }
    };
    let locations_reproducible =
        match locate_watermark(&claim.original, &claim.stats, &claim.config) {
            Ok(derived) => derived == claim.locations,
            Err(_) => false,
        };
    let wer = if stats_reproducible && locations_reproducible {
        naive_delta_check(claim, suspect)
    } else {
        0.0
    };
    ClaimVerdict {
        wer_at_reproduced_locations: wer,
        stats_reproducible,
        locations_reproducible,
        accepted: stats_reproducible && locations_reproducible && wer >= wer_threshold,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use emmark_core::watermark::OwnerSecrets;
    use emmark_nanolm::config::ModelConfig;
    use emmark_quant::awq::{awq, AwqConfig};

    fn calibration() -> Vec<Vec<u32>> {
        (0..4u32)
            .map(|s| (0..16u32).map(|i| (i * 7 + s * 3) % 31).collect())
            .collect()
    }

    fn owner_setup() -> (OwnerSecrets, TransformerModel) {
        let mut model = TransformerModel::new(ModelConfig::tiny_test());
        let stats = model.collect_activation_stats(&calibration());
        let qm = awq(&model, &stats, &AwqConfig::default());
        let cfg = WatermarkConfig {
            bits_per_layer: 4,
            pool_ratio: 10,
            ..Default::default()
        };
        (OwnerSecrets::new(qm, stats, cfg, 31337), model)
    }

    #[test]
    fn counterfeit_passes_the_naive_check() {
        let (secrets, _) = owner_setup();
        let deployed = secrets.watermark_for_deployment().expect("insert");
        let claim = forge_counterfeit_claim(&deployed, &calibration(), 4, 666);
        let naive = naive_delta_check(&claim, &deployed);
        // This is the vulnerability of delta-only verification: the
        // forged claim looks perfect.
        assert!(naive > 95.0, "naive wer {naive}");
    }

    #[test]
    fn counterfeit_locations_do_not_rederive() {
        let (secrets, _) = owner_setup();
        let deployed = secrets.watermark_for_deployment().expect("insert");
        let mut claim = forge_counterfeit_claim(&deployed, &calibration(), 4, 670);
        // Even granting the adversary a pool-sized config, the randomly
        // asserted cells are not what EmMark scoring derives.
        claim.config = WatermarkConfig {
            bits_per_layer: 4,
            pool_ratio: 10,
            ..Default::default()
        };
        let derived = locate_watermark(&claim.original, &claim.stats, &claim.config)
            .expect("derivable with small pool");
        assert_ne!(derived, claim.locations);
    }

    #[test]
    fn counterfeit_fails_full_validation_without_fp_model() {
        let (secrets, _) = owner_setup();
        let deployed = secrets.watermark_for_deployment().expect("insert");
        let claim = forge_counterfeit_claim(&deployed, &calibration(), 4, 667);
        let verdict = validate_claim(&claim, &deployed, None, &calibration(), 90.0);
        assert!(!verdict.accepted);
        assert!(!verdict.stats_reproducible);
    }

    #[test]
    fn counterfeit_fails_even_with_an_unrelated_fp_model() {
        let (secrets, _) = owner_setup();
        let deployed = secrets.watermark_for_deployment().expect("insert");
        let claim = forge_counterfeit_claim(&deployed, &calibration(), 4, 668);
        // Adversary grabs some other full-precision model and tries to
        // pass it off as the source.
        let mut other_cfg = ModelConfig::tiny_test();
        other_cfg.init_seed = 999;
        let mut other_fp = TransformerModel::new(other_cfg);
        let verdict = validate_claim(&claim, &deployed, Some(&mut other_fp), &calibration(), 90.0);
        assert!(
            !verdict.stats_reproducible,
            "unrelated fp model must not reproduce the claimed stats"
        );
        assert!(!verdict.accepted);
    }

    #[test]
    fn true_owner_passes_full_validation() {
        let (secrets, mut fp_model) = owner_setup();
        let deployed = secrets.watermark_for_deployment().expect("insert");
        let claim = OwnershipClaim::from_secrets(&secrets).expect("claim");
        let verdict = validate_claim(&claim, &deployed, Some(&mut fp_model), &calibration(), 90.0);
        assert!(verdict.stats_reproducible, "owner's stats must reproduce");
        assert!(
            verdict.locations_reproducible,
            "owner's locations must re-derive"
        );
        assert_eq!(verdict.wer_at_reproduced_locations, 100.0);
        assert!(verdict.accepted);
    }

    #[test]
    fn forged_original_differs_from_deployed_by_construction() {
        let (secrets, _) = owner_setup();
        let deployed = secrets.watermark_for_deployment().expect("insert");
        let claim = forge_counterfeit_claim(&deployed, &calibration(), 4, 669);
        assert!(!claim.original.same_weights(&deployed));
    }
}
