//! # emmark-bench
//!
//! Shared harness for the benchmark suite that regenerates every table
//! and figure of the EmMark paper (see `benches/`). Each bench binary
//! prints the paper-style rows into the `cargo bench` output and times
//! the core operation it exercises with Criterion.
//!
//! Model sizes, watermark densities, and sweep axes are scaled per
//! DESIGN.md §4; `EMMARK_TRAIN_STEPS` shrinks training for smoke runs.

pub mod alloc;

use emmark_eval::report::EvalConfig;
use emmark_nanolm::corpus::Corpus;
use emmark_nanolm::families::{train_spec, ModelSpec, TrainEffort};
use emmark_nanolm::model::ActivationStats;
use emmark_nanolm::TransformerModel;
use emmark_quant::awq::{awq, AwqConfig};
use emmark_quant::QuantizedModel;

/// A trained full-precision model with everything the experiments need.
#[derive(Debug, Clone)]
pub struct Prepared {
    /// The spec it was built from.
    pub spec: ModelSpec,
    /// Trained full-precision model.
    pub fp: TransformerModel,
    /// Its corpus (train/valid/test).
    pub corpus: Corpus,
    /// Calibration sequences (drawn from the validation split).
    pub calibration: Vec<Vec<u32>>,
    /// Full-precision activation profile `A_f`.
    pub stats: ActivationStats,
}

/// Corpus seed shared by all experiments.
pub const CORPUS_SEED: u64 = 2024;

/// Trains a spec and captures its activation profile.
pub fn prepare(spec: &ModelSpec, effort: TrainEffort) -> Prepared {
    let trained = train_spec(spec, effort, CORPUS_SEED);
    let mut fp = trained.model;
    let calibration: Vec<Vec<u32>> = trained
        .corpus
        .valid
        .chunks(24)
        .take(16)
        .map(|c| c.to_vec())
        .collect();
    let stats = fp.collect_activation_stats(&calibration);
    Prepared {
        spec: spec.clone(),
        fp,
        corpus: trained.corpus,
        calibration,
        stats,
    }
}

/// The robustness/ablation target: the Sim-OPT-2.7b stand-in (the paper
/// uses OPT-2.7B quantized by AWQ for §5.3 and §5.4).
pub fn prepare_target() -> Prepared {
    let spec = emmark_nanolm::families::sim_opt_grid()
        .into_iter()
        .find(|s| s.label == "2.7b")
        .expect("grid contains 2.7b");
    prepare(&spec, TrainEffort::bench_from_env())
}

/// AWQ INT4 quantization of a prepared model (the paper's INT4 scheme).
pub fn awq_int4(prepared: &Prepared) -> QuantizedModel {
    awq(&prepared.fp, &prepared.stats, &AwqConfig::default())
}

/// Evaluation sizing for bench runs: large enough for stable two-decimal
/// reporting, small enough to keep `cargo bench` tractable.
pub fn bench_eval_cfg() -> EvalConfig {
    EvalConfig {
        ppl_tokens: 1200,
        window: 32,
        task_items: 30,
        seed: 1234,
    }
}

/// Prints a standard experiment header.
pub fn print_header(id: &str, what: &str) {
    println!();
    println!("==============================================================");
    println!("{id}: {what}");
    println!("==============================================================");
}

/// Formats a signed delta with the paper's convention.
pub fn fmt_delta(delta: f64) -> String {
    if delta.abs() < 5e-4 {
        "0".to_string()
    } else {
        format!("{delta:+.2}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use emmark_nanolm::families::sim_opt_grid;

    #[test]
    fn prepare_builds_consistent_bundle() {
        let spec = &sim_opt_grid()[0];
        let p = prepare(
            spec,
            TrainEffort {
                steps: 5,
                batch_size: 2,
            },
        );
        assert_eq!(p.stats.layer_count(), p.fp.cfg.quant_layer_count());
        assert!(!p.calibration.is_empty());
        let qm = awq_int4(&p);
        assert_eq!(qm.layer_count(), p.fp.cfg.quant_layer_count());
    }

    #[test]
    fn fmt_delta_matches_paper_convention() {
        assert_eq!(fmt_delta(0.0001), "0");
        assert_eq!(fmt_delta(2.29), "+2.29");
        assert_eq!(fmt_delta(-0.13), "-0.13");
    }
}
