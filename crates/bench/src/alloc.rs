//! A byte-counting global allocator for peak-resident-memory gates.
//!
//! The streaming-pipeline and efficiency benches register
//! [`TrackingAllocator`] as their `#[global_allocator]` and read the
//! live/peak heap counters around each measured phase — the same
//! numbers a resident-set probe would give, but deterministic,
//! per-phase, and immune to allocator/OS page accounting noise.
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: emmark_bench::alloc::TrackingAllocator = TrackingAllocator;
//!
//! let baseline = alloc::current_bytes();
//! alloc::reset_peak();
//! run_phase();
//! let peak_delta = alloc::peak_bytes() - baseline;
//! ```

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

static CURRENT: AtomicUsize = AtomicUsize::new(0);
static PEAK: AtomicUsize = AtomicUsize::new(0);

/// Wraps the system allocator, tracking live and peak heap bytes.
pub struct TrackingAllocator;

fn on_alloc(size: usize) {
    let live = CURRENT.fetch_add(size, Ordering::Relaxed) + size;
    PEAK.fetch_max(live, Ordering::Relaxed);
}

fn on_dealloc(size: usize) {
    CURRENT.fetch_sub(size, Ordering::Relaxed);
}

// SAFETY: delegates every operation to `System`; the atomic counters
// never allocate.
unsafe impl GlobalAlloc for TrackingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = unsafe { System.alloc(layout) };
        if !p.is_null() {
            on_alloc(layout.size());
        }
        p
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let p = unsafe { System.alloc_zeroed(layout) };
        if !p.is_null() {
            on_alloc(layout.size());
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) };
        on_dealloc(layout.size());
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = unsafe { System.realloc(ptr, layout, new_size) };
        if !p.is_null() {
            on_dealloc(layout.size());
            on_alloc(new_size);
        }
        p
    }
}

/// Live heap bytes right now.
pub fn current_bytes() -> usize {
    CURRENT.load(Ordering::Relaxed)
}

/// High-water mark of live heap bytes since the last [`reset_peak`].
pub fn peak_bytes() -> usize {
    PEAK.load(Ordering::Relaxed)
}

/// Rewinds the high-water mark to the current live byte count — call
/// at the start of a measured phase.
pub fn reset_peak() {
    PEAK.store(CURRENT.load(Ordering::Relaxed), Ordering::Relaxed);
}

/// Formats a byte count for bench output (`x.x KiB` / `x.x MiB`).
pub fn fmt_bytes(bytes: usize) -> String {
    if bytes >= 1 << 20 {
        format!("{:.2} MiB", bytes as f64 / (1 << 20) as f64)
    } else {
        format!("{:.1} KiB", bytes as f64 / 1024.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The allocator is not registered in unit tests (that would affect
    // the whole test binary); the counter helpers are still exercised.
    #[test]
    fn counters_move_monotonically() {
        on_alloc(1000);
        assert!(peak_bytes() >= 1000);
        on_dealloc(1000);
        reset_peak();
        assert_eq!(peak_bytes(), current_bytes());
    }

    #[test]
    fn fmt_bytes_picks_sensible_units() {
        assert_eq!(fmt_bytes(1536), "1.5 KiB");
        assert_eq!(fmt_bytes(3 << 20), "3.00 MiB");
    }
}
