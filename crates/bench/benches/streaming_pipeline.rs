//! **Streaming pipeline** — constant-memory watermark stamping over the
//! unified `LayerStore` abstraction.
//!
//! Compares the buffered write path (clone the model, insert the
//! watermark in place, `encode_model` to a resident artifact buffer)
//! with the streaming pipeline
//! ([`emmark_core::watermark::stream_watermark`] via
//! [`OwnerSecrets::watermark_into`]): `score → insert → encode` with
//! one layer resident at a time, records flowing straight to the
//! output. Both paths write to `io::sink()` so the measurement isolates
//! pipeline memory from disk noise.
//!
//! PR 7 also measures the pipeline against its own past: the serial
//! scalar-scoring baseline ([`stream_watermark_reference`], the exact
//! pre-kernel pipeline) versus the current chunked-kernel,
//! load/compute-overlapped [`stream_watermark`].
//!
//! Acceptance gates, pinned on the largest Sim-OPT grid point
//! (sim-opt-30b, AWQ INT4):
//!
//! * **byte identity** — the streamed artifact equals the buffered one
//!   *and* the serial scalar baseline's;
//! * **peak memory** — the streaming path's peak heap delta is at
//!   least 4x smaller than buffered (tracking allocator), and no
//!   larger than the serial baseline's (overlap must not cost memory);
//! * **throughput** — the streaming path is no slower than the
//!   buffered path (5% tolerance for timer noise), and at least 1.5x
//!   the end-to-end stamp throughput of the pre-kernel baseline.

use criterion::Criterion;
use emmark_bench::alloc::{self, TrackingAllocator};
use emmark_bench::{awq_int4, prepare, print_header};
use emmark_core::deploy::encode_model;
use emmark_core::watermark::{stream_watermark_reference, OwnerSecrets, WatermarkConfig};
use emmark_core::ArtifactSink;
use emmark_nanolm::families::{sim_opt_grid, TrainEffort};
use std::io::Write;
use std::time::{Duration, Instant};

#[global_allocator]
static ALLOC: TrackingAllocator = TrackingAllocator;

const REPS: usize = 5;

/// Runs `f` `REPS` times, returning (min wall time, max peak heap
/// delta) across the repetitions.
fn measure(mut f: impl FnMut()) -> (Duration, usize) {
    let mut best_time = Duration::MAX;
    let mut worst_peak = 0usize;
    for _ in 0..REPS {
        let baseline = alloc::current_bytes();
        alloc::reset_peak();
        let start = Instant::now();
        f();
        best_time = best_time.min(start.elapsed());
        worst_peak = worst_peak.max(alloc::peak_bytes().saturating_sub(baseline));
    }
    (best_time, worst_peak)
}

fn main() {
    print_header(
        "STREAMING",
        "constant-memory stamp pipeline vs the buffered write path",
    );
    let spec = sim_opt_grid().into_iter().last().expect("grid non-empty"); // sim-opt-30b
    println!("target: {} (largest grid model), AWQ INT4", spec.name());
    let prepared = prepare(&spec, TrainEffort::bench_from_env());
    let quantized = awq_int4(&prepared);
    let cfg = WatermarkConfig {
        bits_per_layer: 8,
        pool_ratio: 20,
        ..Default::default()
    };
    let secrets = OwnerSecrets::new(quantized, prepared.stats.clone(), cfg, 0x57AB1E);

    // Byte identity first: the two paths must produce the same artifact.
    let buffered_bytes = {
        let deployed = secrets.watermark_for_deployment().expect("insert");
        encode_model(&deployed).to_vec()
    };
    let mut streamed_bytes = Vec::with_capacity(buffered_bytes.len());
    secrets
        .watermark_into(&mut streamed_bytes)
        .expect("streaming stamp");
    assert_eq!(
        streamed_bytes, buffered_bytes,
        "streaming pipeline must be byte-identical to the buffered path"
    );
    // The pre-kernel serial baseline produces the same bytes: neither
    // the chunked kernels nor the load/compute overlap may change
    // selection or output.
    let mut reference_bytes = Vec::with_capacity(buffered_bytes.len());
    stream_watermark_reference(
        &secrets.original,
        &secrets.stats,
        &secrets.signature,
        &secrets.config,
        &mut ArtifactSink::new(&mut reference_bytes),
    )
    .expect("reference stamp");
    assert_eq!(
        reference_bytes, buffered_bytes,
        "serial scalar baseline must be byte-identical to the buffered path"
    );
    let artifact_len = buffered_bytes.len();
    drop(buffered_bytes);
    drop(streamed_bytes);
    drop(reference_bytes);

    let (buffered_time, buffered_peak) = measure(|| {
        let deployed = secrets.watermark_for_deployment().expect("insert");
        let bytes = encode_model(&deployed);
        std::io::sink().write_all(&bytes).expect("sink");
    });
    let (streaming_time, streaming_peak) = measure(|| {
        secrets.watermark_into(std::io::sink()).expect("stream");
    });
    let (reference_time, reference_peak) = measure(|| {
        stream_watermark_reference(
            &secrets.original,
            &secrets.stats,
            &secrets.signature,
            &secrets.config,
            &mut ArtifactSink::new(std::io::sink()),
        )
        .expect("reference stamp");
    });

    let mem_ratio = buffered_peak as f64 / streaming_peak.max(1) as f64;
    let speed_ratio = buffered_time.as_secs_f64() / streaming_time.as_secs_f64();
    let stamp_ratio = reference_time.as_secs_f64() / streaming_time.as_secs_f64();
    println!(
        "\nartifact: {} ({} layers, {} watermark bits)",
        alloc::fmt_bytes(artifact_len),
        secrets.original.layer_count(),
        secrets.signature.len()
    );
    println!("{:<44} {:>12} {:>14}", "path", "wall time", "peak heap Δ");
    println!(
        "{:<44} {:>9.1} ms {:>14}",
        "buffered (clone + insert + encode_model)",
        buffered_time.as_secs_f64() * 1e3,
        alloc::fmt_bytes(buffered_peak)
    );
    println!(
        "{:<44} {:>9.1} ms {:>14}",
        "serial scalar baseline (pre-kernel pipeline)",
        reference_time.as_secs_f64() * 1e3,
        alloc::fmt_bytes(reference_peak)
    );
    println!(
        "{:<44} {:>9.1} ms {:>14}",
        "streaming (kernels + overlapped sweeps)",
        streaming_time.as_secs_f64() * 1e3,
        alloc::fmt_bytes(streaming_peak)
    );
    println!(
        "\npeak-memory reduction {mem_ratio:.1}x, throughput {speed_ratio:.2}x buffered, \
         {stamp_ratio:.2}x the pre-kernel stamp (byte-identical output)"
    );

    assert!(
        mem_ratio >= 4.0,
        "streaming pipeline must cut peak memory at least 4x on the largest grid point \
         (got {mem_ratio:.2}x: buffered {buffered_peak} B, streaming {streaming_peak} B)"
    );
    assert!(
        streaming_time.as_secs_f64() <= buffered_time.as_secs_f64() * 1.05,
        "streaming pipeline must hold throughput parity (streaming {:.1} ms vs buffered {:.1} ms)",
        streaming_time.as_secs_f64() * 1e3,
        buffered_time.as_secs_f64() * 1e3
    );
    assert!(
        stamp_ratio >= 1.5,
        "kernels + overlap must deliver at least 1.5x end-to-end stamp throughput over the \
         pre-kernel baseline (got {stamp_ratio:.2}x: baseline {:.1} ms, streaming {:.1} ms)",
        reference_time.as_secs_f64() * 1e3,
        streaming_time.as_secs_f64() * 1e3
    );
    assert!(
        streaming_peak <= reference_peak.max(1) * 11 / 10,
        "load/compute overlap must not grow peak memory beyond the serial pipeline's \
         (streaming {streaming_peak} B, serial {reference_peak} B)"
    );

    let mut criterion = Criterion::default().sample_size(10).configure_from_args();
    criterion.bench_function("streaming/buffered_stamp_30b", |b| {
        b.iter(|| {
            let deployed = secrets.watermark_for_deployment().expect("insert");
            encode_model(&deployed)
        })
    });
    criterion.bench_function("streaming/stream_stamp_30b", |b| {
        b.iter(|| secrets.watermark_into(std::io::sink()).expect("stream"))
    });
    criterion.final_summary();
}
