//! **Ablation (beyond the paper)** — candidate-pool ratio
//! `|B_c|·n/|B|`: the paper fixes it at 50 (small models) / 60 (large)
//! without ablating. The ratio trades secrecy against score quality:
//! a tiny pool concentrates bits on the best-scored cells (quality) but
//! shrinks the adversary's search space; a huge pool dilutes scores.
//! This sweep measures fidelity and WER-under-attack across ratios.

use criterion::Criterion;
use emmark_attacks::overwrite::{overwrite_attack, OverwriteConfig};
use emmark_bench::{awq_int4, bench_eval_cfg, prepare_target, print_header};
use emmark_core::watermark::{locate_watermark, OwnerSecrets, WatermarkConfig};
use emmark_eval::report::evaluate_quality;

fn main() {
    print_header("ABLATION", "candidate-pool ratio (paper fixes 50/60)");
    let prepared = prepare_target();
    let original = awq_int4(&prepared);
    let eval_cfg = bench_eval_cfg();
    let base = evaluate_quality(&original, &prepared.corpus, &eval_cfg);
    println!(
        "target {} AWQ-INT4 | no-WM PPL {:.2}, acc {:.2}%",
        prepared.spec.name(),
        base.ppl,
        base.zero_shot_acc
    );

    let bits = 16usize;
    println!(
        "\n{:>7} {:>10} {:>18} {:>10} {:>22}",
        "ratio", "PPL", "zero-shot acc (%)", "WER (%)", "WER after 100/layer (%)"
    );
    for ratio in [2usize, 5, 10, 20, 50] {
        let cfg = WatermarkConfig {
            bits_per_layer: bits,
            pool_ratio: ratio,
            ..Default::default()
        };
        let secrets = OwnerSecrets::new(original.clone(), prepared.stats.clone(), cfg, 99);
        match secrets.watermark_for_deployment() {
            Ok(deployed) => {
                let quality = evaluate_quality(&deployed, &prepared.corpus, &eval_cfg);
                let clean = secrets.verify(&deployed).expect("extract");
                let mut attacked = deployed.clone();
                overwrite_attack(
                    &mut attacked,
                    &OverwriteConfig {
                        per_layer: 100,
                        seed: 5,
                    },
                );
                let under_attack = secrets.verify(&attacked).expect("extract");
                println!(
                    "{ratio:>7} {:>10.2} {:>18.2} {:>10.1} {:>22.1}",
                    quality.ppl,
                    quality.zero_shot_acc,
                    clean.wer(),
                    under_attack.wer()
                );
            }
            Err(err) => println!("{ratio:>7}  insertion refused: {err}"),
        }
    }
    println!("\nreading: fidelity is flat in the ratio (scores, not the pool, do the");
    println!("work); robustness under blind overwriting is ratio-independent, so the");
    println!("ratio is purely a secrecy parameter — consistent with the paper's fixed 50/60.");

    // Criterion: location derivation across ratios (the O(pool) step).
    let mut criterion = Criterion::default().sample_size(10).configure_from_args();
    for ratio in [5usize, 50] {
        let cfg = WatermarkConfig {
            bits_per_layer: bits,
            pool_ratio: ratio,
            ..Default::default()
        };
        criterion.bench_function(&format!("ablation/locate_ratio_{ratio}"), |b| {
            b.iter(|| locate_watermark(&original, &prepared.stats, &cfg).expect("locate"))
        });
    }
    criterion.final_summary();
}
