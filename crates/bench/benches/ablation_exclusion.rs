//! **Ablation (beyond the paper)** — the min/max-level exclusion rule.
//!
//! Eq. 3's footnote ("W_i in the minimum and maximum quantization level
//! is set to 0 before scoring") is the one line that keeps Eq. 5 from
//! ever clipping or wrapping. This ablation compares standard EmMark
//! against a naive variant with the exclusion disabled: bits that land
//! on clamped cells wrap in two's complement, destroying those bits
//! (WER < 100%) and flipping block-maximal weights (quality damage) —
//! the same failure mode that makes RandomWM degrade at INT4.

use criterion::Criterion;
use emmark_bench::{awq_int4, bench_eval_cfg, prepare_target, print_header};
use emmark_core::scoring::robustness_scores;
use emmark_core::signature::Signature;
use emmark_core::watermark::{OwnerSecrets, WatermarkConfig};
use emmark_eval::report::evaluate_quality;
use emmark_quant::QuantizedModel;
use emmark_tensor::rng::{SplitMix64, Xoshiro256};

/// EmMark scoring *without* the clamp/zero exclusion: every cell gets a
/// finite score, so clamped cells can be selected; insertion then uses
/// wrapping arithmetic (what a naive implementation would ship).
fn naive_insert(
    model: &mut QuantizedModel,
    stats: &emmark_nanolm::model::ActivationStats,
    signature: &Signature,
    bits_per_layer: usize,
    pool_ratio: usize,
    seed: u64,
) -> (usize, usize) {
    let n = model.layer_count();
    let mut sm = SplitMix64::new(seed);
    let mut wrapped = 0usize;
    let mut inserted = 0usize;
    for (l, layer) in model.layers.iter_mut().enumerate() {
        let layer_seed = sm.next_u64();
        let s_r = robustness_scores(&stats.per_layer[l].mean_abs);
        let out = layer.out_features();
        let scores: Vec<f64> = (0..layer.len())
            .map(|f| {
                let q = layer.q_at_flat(f) as f64;
                // No exclusion: |q|=0 just gets a big-but-finite score.
                let s_q = 1.0 / q.abs().max(0.5);
                let r = s_r[f / out];
                0.5 * s_q + 0.5 * if r.is_finite() { r } else { 1e6 }
            })
            .collect();
        let pool_size = (pool_ratio * bits_per_layer).min(scores.len());
        let mut indexed: Vec<(f64, usize)> =
            scores.iter().enumerate().map(|(i, &s)| (s, i)).collect();
        indexed.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite").then(a.1.cmp(&b.1)));
        indexed.truncate(pool_size);
        let pool: Vec<usize> = indexed.into_iter().map(|(_, i)| i).collect();
        let mut rng = Xoshiro256::seed_from_u64(layer_seed);
        let picks = rng.sample_without_replacement(pool.len(), bits_per_layer.min(pool.len()));
        let bits = signature.layer_bits(l, n);
        for (&p, &b) in picks.iter().zip(bits) {
            let f = pool[p];
            let before = layer.q_at_flat(f);
            layer.bump_q_flat_wrapping(f, b);
            let delta = layer.q_at_flat(f) as i16 - before as i16;
            if delta != b as i16 {
                wrapped += 1;
            }
            inserted += 1;
        }
    }
    (inserted, wrapped)
}

fn main() {
    print_header("ABLATION", "min/max-level exclusion rule (Eq. 3 footnote)");
    let prepared = prepare_target();
    let original = awq_int4(&prepared);
    let eval_cfg = bench_eval_cfg();
    let base = evaluate_quality(&original, &prepared.corpus, &eval_cfg);
    println!(
        "target {} AWQ-INT4 | no-WM PPL {:.2}, acc {:.2}%",
        prepared.spec.name(),
        base.ppl,
        base.zero_shot_acc
    );

    let bits = 16usize;
    let pool_ratio = 20usize;

    // Standard EmMark (with exclusion).
    let cfg = WatermarkConfig {
        bits_per_layer: bits,
        pool_ratio,
        ..Default::default()
    };
    let secrets = OwnerSecrets::new(original.clone(), prepared.stats.clone(), cfg, 111);
    let deployed = secrets.watermark_for_deployment().expect("insert");
    let q_std = evaluate_quality(&deployed, &prepared.corpus, &eval_cfg);
    let wer_std = secrets.verify(&deployed).expect("extract").wer();

    // Naive variant (no exclusion, wrapping bumps).
    let sig = Signature::generate(bits * original.layer_count(), 111);
    let mut naive = original.clone();
    let (inserted, wrapped) =
        naive_insert(&mut naive, &prepared.stats, &sig, bits, pool_ratio, 222);
    let q_naive = evaluate_quality(&naive, &prepared.corpus, &eval_cfg);
    // Naive extraction: deltas at the same (re-derived) naive locations.
    let mut check = original.clone();
    let (_, _) = naive_insert(&mut check, &prepared.stats, &sig, bits, pool_ratio, 222);
    // check == naive by determinism; WER is (inserted - wrapped)/inserted.
    assert!(check.same_weights(&naive));
    let wer_naive = 100.0 * (inserted - wrapped) as f64 / inserted as f64;

    println!(
        "\n{:<26} {:>10} {:>18} {:>9} {:>14}",
        "variant", "PPL", "zero-shot acc (%)", "WER (%)", "wrapped bits"
    );
    println!(
        "{:<26} {:>10.2} {:>18.2} {:>9.1} {:>14}",
        "EmMark (exclusion on)", q_std.ppl, q_std.zero_shot_acc, wer_std, 0
    );
    println!(
        "{:<26} {:>10.2} {:>18.2} {:>9.1} {:>14}",
        "naive (exclusion off)", q_naive.ppl, q_naive.zero_shot_acc, wer_naive, wrapped
    );
    println!(
        "\nreading: without the exclusion rule, {wrapped} of {inserted} bits wrapped — \
         each wrap flips a block-maximal weight and destroys its own bit."
    );

    let mut criterion = Criterion::default().sample_size(10).configure_from_args();
    criterion.bench_function("ablation/naive_insert_no_exclusion", |b| {
        b.iter(|| {
            let mut work = original.clone();
            naive_insert(&mut work, &prepared.stats, &sig, bits, pool_ratio, 222)
        })
    });
    criterion.final_summary();
}
