//! **Figure 3** — watermark capacity: PPL and zero-shot accuracy as the
//! per-layer signature length grows (paper: 50…200 bits/layer on
//! OPT-2.7B AWQ-INT4, threshold at 100 bits, all signatures extracted).
//!
//! At micro scale the same absolute bit counts are a far larger fraction
//! of each layer, so the paper's 50…200 axis is run alongside smaller
//! densities to expose the full quality curve.

use criterion::Criterion;
use emmark_bench::{awq_int4, bench_eval_cfg, prepare_target, print_header};
use emmark_core::watermark::{OwnerSecrets, WatermarkConfig};
use emmark_eval::report::evaluate_quality;
use emmark_tensor::stats::log10_binomial_tail;

fn main() {
    print_header("FIGURE 3", "capacity: quality vs signature bits per layer");
    let prepared = prepare_target();
    let original = awq_int4(&prepared);
    let eval_cfg = bench_eval_cfg();
    let base = evaluate_quality(&original, &prepared.corpus, &eval_cfg);
    let smallest = original.layers.iter().map(|l| l.len()).min().unwrap_or(0);
    println!(
        "target {} AWQ-INT4 | no-WM PPL {:.2}, acc {:.2}% | smallest layer {} cells",
        prepared.spec.name(),
        base.ppl,
        base.zero_shot_acc,
        smallest
    );

    println!(
        "\n{:>11} {:>10} {:>10} {:>18} {:>8} {:>18}",
        "bits/layer", "density%", "PPL", "zero-shot acc (%)", "WER (%)", "log10 Pc per layer"
    );
    for bits in [8usize, 16, 32, 50, 100, 150, 200] {
        // The candidate pool must fit the smallest layer; shrink the
        // ratio as density rises (the paper's 50x pool assumes layers
        // 1000x larger than ours).
        let pool_ratio = ((smallest * 8 / 10) / bits).clamp(2, 50);
        let cfg = WatermarkConfig {
            bits_per_layer: bits,
            pool_ratio,
            ..Default::default()
        };
        let secrets = OwnerSecrets::new(original.clone(), prepared.stats.clone(), cfg, 77);
        match secrets.watermark_for_deployment() {
            Ok(deployed) => {
                let quality = evaluate_quality(&deployed, &prepared.corpus, &eval_cfg);
                let report = secrets.verify(&deployed).expect("extract");
                println!(
                    "{:>11} {:>9.2}% {:>10.2} {:>18.2} {:>8.1} {:>18.1}",
                    bits,
                    100.0 * bits as f64 / smallest as f64,
                    quality.ppl,
                    quality.zero_shot_acc,
                    report.wer(),
                    log10_binomial_tail(bits as u64, bits as u64)
                );
            }
            Err(err) => println!("{bits:>11}  insertion refused: {err}"),
        }
    }
    println!("\npaper shape: flat quality up to the capacity threshold, then degradation;");
    println!("all inserted signatures extract at 100%.");

    // Criterion: insertion cost at the paper's 100-bit capacity point.
    let pool_ratio = ((smallest * 8 / 10) / 100).clamp(2, 50);
    let cfg = WatermarkConfig {
        bits_per_layer: 100,
        pool_ratio,
        ..Default::default()
    };
    let secrets = OwnerSecrets::new(original.clone(), prepared.stats.clone(), cfg, 77);
    let mut criterion = Criterion::default().sample_size(10).configure_from_args();
    criterion.bench_function("fig3/insert_100_bits_per_layer", |b| {
        b.iter(|| secrets.watermark_for_deployment().expect("insert"))
    });
    criterion.final_summary();
}
