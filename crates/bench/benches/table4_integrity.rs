//! **Table 4** — Integrity: the owner's extraction must return ~100% on
//! the watermarked model and ~0% on four non-watermarked controls:
//!
//! * non-WM 1 — the same model, AWQ-quantized, never watermarked;
//! * non-WM 2 — fine-tuned on a 4k SynAlpaca subset, then AWQ;
//! * non-WM 3 — fine-tuned on SynWiki, then AWQ;
//! * non-WM 4 — the same model quantized by GPTQ instead.

use criterion::Criterion;
use emmark_bench::{awq_int4, prepare_target, print_header};
use emmark_core::watermark::{OwnerSecrets, WatermarkConfig};
use emmark_nanolm::corpus::Grammar;
use emmark_nanolm::train::{finetune, TrainConfig};
use emmark_quant::gptq::{gptq, GptqConfig};

fn main() {
    print_header(
        "TABLE 4",
        "integrity on watermarked vs non-watermarked models",
    );
    let prepared = prepare_target();
    let original = awq_int4(&prepared);
    let cfg = WatermarkConfig {
        bits_per_layer: 16,
        pool_ratio: 20,
        ..Default::default()
    };
    let secrets = OwnerSecrets::new(original.clone(), prepared.stats.clone(), cfg, 44);
    let deployed = secrets.watermark_for_deployment().expect("insert");

    // non-WM 2: fine-tune on 4k SynAlpaca tokens, requantize with AWQ.
    let ft_cfg = TrainConfig {
        steps: 60,
        batch_size: 8,
        seq_len: 24,
        lr: 1e-3,
        ..Default::default()
    };
    let alpaca = Grammar::synalpaca(99).generate(4_000);
    let mut ft_alpaca = prepared.fp.clone();
    finetune(&mut ft_alpaca, &alpaca, &ft_cfg, 10_000);
    let stats_alpaca = ft_alpaca.collect_activation_stats(&prepared.calibration);
    let non_wm2 = emmark_quant::awq::awq(
        &ft_alpaca,
        &stats_alpaca,
        &emmark_quant::awq::AwqConfig::default(),
    );

    // non-WM 3: fine-tune further on SynWiki, requantize with AWQ.
    let mut ft_wiki = prepared.fp.clone();
    finetune(&mut ft_wiki, &prepared.corpus.train, &ft_cfg, 10_000);
    let stats_wiki = ft_wiki.collect_activation_stats(&prepared.calibration);
    let non_wm3 = emmark_quant::awq::awq(
        &ft_wiki,
        &stats_wiki,
        &emmark_quant::awq::AwqConfig::default(),
    );

    // non-WM 4: GPTQ of the same full-precision model.
    let mut fp = prepared.fp.clone();
    let non_wm4 = gptq(&mut fp, &prepared.calibration, &GptqConfig::default());

    let suspects = [
        ("WM (deployed)", &deployed),
        ("non-WM 1 (plain AWQ)", &original),
        ("non-WM 2 (SynAlpaca FT + AWQ)", &non_wm2),
        ("non-WM 3 (SynWiki FT + AWQ)", &non_wm3),
        ("non-WM 4 (GPTQ)", &non_wm4),
    ];
    println!(
        "\n{:<32} {:>8} {:>20}",
        "model", "WER (%)", "log10 p_chance"
    );
    for (name, suspect) in suspects {
        let report = secrets.verify(suspect).expect("extract");
        println!(
            "{name:<32} {:>8.1} {:>20.1}",
            report.wer(),
            report.log10_p_chance()
        );
    }
    println!("\npaper row: 100 / 0 / 0 / 0 / 0");

    // Criterion: extraction cost (the verification-side operation).
    let mut criterion = Criterion::default().sample_size(10).configure_from_args();
    criterion.bench_function("table4/extract_watermark", |b| {
        b.iter(|| secrets.verify(&deployed).expect("extract"))
    });
    criterion.final_summary();
}
