//! **Sparse verification** — the EMQM v2 random-access path vs full
//! decode.
//!
//! EmMark's ownership check (Eqs. 6–8) reads a few hundred integer
//! cells per artifact; everything else a full decode materializes —
//! embedding tables, norms, scales, the untouched 99.9% of every grid —
//! is wasted work. The v2 layer index lets
//! [`emmark_core::deploy::SparseArtifact`] resolve exactly the probed
//! cells, so per-artifact verification cost scales with watermark
//! length instead of parameter count.
//!
//! Two scenarios, both asserting bit-identical results between paths:
//!
//! 1. **Sim-OPT grid sweep** — one watermarked artifact per Sim-OPT
//!    spec; single ownership extraction, full-decode vs sparse. The
//!    speedup grows with model size: decode is O(model), the sparse
//!    probe is O(|B|).
//! 2. **16-device fleet** — the `fleet_verify` scenario re-run with the
//!    batch loop reading artifacts sparsely vs decoding each. This is
//!    the configuration the ≥5x acceptance bar is pinned on.

use criterion::Criterion;
use emmark_bench::print_header;
use emmark_core::deploy::{decode_model, encode_model, SparseArtifact};
use emmark_core::fingerprint::Fleet;
use emmark_core::fleet::{FleetVerdict, FleetVerifier};
use emmark_core::watermark::{
    extract_with_locations, locate_watermark, Locations, OwnerSecrets, WatermarkConfig,
};
use emmark_nanolm::families::sim_opt_grid;
use emmark_nanolm::TransformerModel;
use emmark_quant::awq::{awq, AwqConfig};
use std::time::Instant;

const DEVICES: usize = 16;
const VOCAB: usize = 48;

fn calibration() -> Vec<Vec<u32>> {
    (0..8u32)
        .map(|s| {
            (0..24u32)
                .map(|i| (i * 7 + s * 5) % (VOCAB as u32 - 1))
                .collect()
        })
        .collect()
}

/// Owner secrets + deployed artifact for one spec (untrained weights —
/// the codec and extraction costs are what this bench measures).
fn build_deployment(spec: &emmark_nanolm::families::ModelSpec) -> (OwnerSecrets, Vec<u8>) {
    let mut model = TransformerModel::new(spec.config(VOCAB));
    let stats = model.collect_activation_stats(&calibration());
    let quantized = awq(&model, &stats, &AwqConfig::default());
    let cfg = WatermarkConfig {
        bits_per_layer: 8,
        pool_ratio: 20,
        ..Default::default()
    };
    let secrets = OwnerSecrets::new(quantized, stats, cfg, 0x5EED);
    let deployed = secrets.watermark_for_deployment().expect("insert");
    let bytes = encode_model(&deployed).to_vec();
    (secrets, bytes)
}

fn time<R>(iters: usize, mut f: impl FnMut() -> R) -> (f64, R) {
    let mut result = None;
    let start = Instant::now();
    for _ in 0..iters {
        result = Some(f());
    }
    let per_iter = start.elapsed().as_secs_f64() / iters as f64;
    (per_iter, result.expect("at least one iteration"))
}

fn grid_sweep() {
    println!(
        "\n{:<16} {:>9} {:>7} {:>12} {:>12} {:>9}",
        "model", "artifact", "|B|", "full decode", "sparse", "speedup"
    );
    for spec in sim_opt_grid() {
        let (secrets, bytes) = build_deployment(&spec);
        let locations: Locations =
            locate_watermark(&secrets.original, &secrets.stats, &secrets.config).expect("locate");
        let bits: usize = locations.iter().map(Vec::len).sum();
        let iters = 20;
        let (full_s, full_report) = time(iters, || {
            let suspect = decode_model(&bytes).expect("decode");
            extract_with_locations(&suspect, &secrets.original, &locations, &secrets.signature)
                .expect("extract")
        });
        let (sparse_s, sparse_report) = time(iters, || {
            let sparse = SparseArtifact::open(&bytes).expect("open");
            extract_with_locations(&sparse, &secrets.original, &locations, &secrets.signature)
                .expect("extract")
        });
        assert_eq!(
            full_report,
            sparse_report,
            "{}: paths diverged",
            spec.name()
        );
        assert_eq!(full_report.wer(), 100.0, "{}", spec.name());
        println!(
            "{:<16} {:>7.0}KiB {:>7} {:>9.2} ms {:>9.2} ms {:>8.1}x",
            spec.name(),
            bytes.len() as f64 / 1024.0,
            bits,
            full_s * 1e3,
            sparse_s * 1e3,
            full_s / sparse_s
        );
    }
}

fn build_fleet() -> (Fleet, Vec<Vec<u8>>) {
    // The fleet_verify scenario: Sim-OPT-2.7b-class model, 16 devices.
    let spec = sim_opt_grid()
        .into_iter()
        .find(|s| s.label == "2.7b")
        .expect("grid contains 2.7b");
    let mut model = TransformerModel::new(spec.config(VOCAB));
    let stats = model.collect_activation_stats(&calibration());
    let quantized = awq(&model, &stats, &AwqConfig::default());
    let base_cfg = WatermarkConfig {
        bits_per_layer: 8,
        pool_ratio: 20,
        ..Default::default()
    };
    let base = OwnerSecrets::new(quantized, stats, base_cfg, 0xF1EE7);
    let fp_cfg = WatermarkConfig {
        bits_per_layer: 4,
        pool_ratio: 20,
        selection_seed: 0xDE11CE,
        ..Default::default()
    };
    let mut fleet = Fleet::new(base, fp_cfg);
    let artifacts: Vec<Vec<u8>> = (0..DEVICES)
        .map(|i| {
            let deployed = fleet.provision(&format!("edge-{i:04}")).expect("provision");
            encode_model(&deployed).to_vec()
        })
        .collect();
    (fleet, artifacts)
}

/// The pre-index batch loop: fully decode every artifact, then verify
/// the in-memory model against the shared cache.
fn full_decode_batch(verifier: &FleetVerifier, artifacts: &[Vec<u8>]) -> Vec<FleetVerdict> {
    artifacts
        .iter()
        .map(|bytes| {
            let suspect = decode_model(bytes).expect("decode");
            verifier.verify_model(&suspect, -6.0).expect("verify")
        })
        .collect()
}

/// The v2 batch loop: open the layer index, probe only watermark cells.
fn sparse_batch(verifier: &FleetVerifier, artifacts: &[Vec<u8>]) -> Vec<FleetVerdict> {
    artifacts
        .iter()
        .map(|bytes| {
            verifier
                .verify_artifact(bytes, -6.0)
                .expect("sparse verify")
        })
        .collect()
}

fn main() {
    print_header(
        "SPARSE",
        "random-access (EMQM v2 index) vs full-decode verification",
    );
    grid_sweep();

    let (fleet, artifacts) = build_fleet();
    let verifier = FleetVerifier::new(&fleet).expect("cache");
    let total_bytes: usize = artifacts.iter().map(Vec::len).sum();
    println!(
        "\nfleet scenario: {DEVICES} artifacts ({:.1} KiB total), {} registered devices",
        total_bytes as f64 / 1024.0,
        fleet.devices().len()
    );

    let iters = 10;
    let (full_s, full_verdicts) = time(iters, || full_decode_batch(&verifier, &artifacts));
    let (sparse_s, sparse_verdicts) = time(iters, || sparse_batch(&verifier, &artifacts));
    assert_eq!(
        full_verdicts, sparse_verdicts,
        "fleet verdicts must be bit-for-bit identical"
    );
    for (i, v) in sparse_verdicts.iter().enumerate() {
        assert_eq!(v.ownership.wer(), 100.0, "artifact {i}");
        let (device, _) = v.attribution.as_ref().expect("attributed");
        assert_eq!(device.device_id, format!("edge-{i:04}"), "artifact {i}");
    }
    let speedup = full_s / sparse_s;
    println!(
        "\n{:<44} {:>12}",
        "path (serial, per batch of 16)", "wall time"
    );
    println!(
        "{:<44} {:>9.1} ms",
        "full decode per artifact",
        full_s * 1e3
    );
    println!(
        "{:<44} {:>9.1} ms",
        "sparse random-access (v2 index)",
        sparse_s * 1e3
    );
    println!("\nspeedup {speedup:.1}x, verdicts bit-for-bit identical on all {DEVICES} artifacts");
    assert!(
        speedup >= 5.0,
        "sparse path must be at least 5x over full decode (got {speedup:.2}x)"
    );

    let mut criterion = Criterion::default().sample_size(10).configure_from_args();
    criterion.bench_function("sparse/full_decode_16_artifacts", |b| {
        b.iter(|| full_decode_batch(&verifier, &artifacts))
    });
    criterion.bench_function("sparse/sparse_16_artifacts", |b| {
        b.iter(|| sparse_batch(&verifier, &artifacts))
    });
    criterion.bench_function("sparse/open_single_artifact", |b| {
        b.iter(|| SparseArtifact::open(&artifacts[0]).expect("open"))
    });
    criterion.bench_function("sparse/decode_single_artifact", |b| {
        b.iter(|| decode_model(&artifacts[0]).expect("decode"))
    });
    criterion.final_summary();
}
