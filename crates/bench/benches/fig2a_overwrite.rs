//! **Figure 2(a)** — parameter overwriting attack sweep on the
//! Sim-OPT-2.7b AWQ-INT4 target: PPL (left axis), zero-shot accuracy and
//! WER (right axis) as the adversary overwrites 0…500 cells per layer.
//!
//! Paper shape: model quality collapses past ~300 overwrites per layer
//! (PPL > 100) while the watermark holds above 99%. At micro scale the
//! same per-layer counts are a much larger *fraction* of each layer, so
//! the quality cliff lands earlier and WER dips further — the claim that
//! survives is "the model dies before the watermark does".

use criterion::Criterion;
use emmark_attacks::harness::overwrite_sweep;
use emmark_attacks::overwrite::{overwrite_attack, OverwriteConfig};
use emmark_bench::{awq_int4, bench_eval_cfg, prepare_target, print_header};
use emmark_core::watermark::{OwnerSecrets, WatermarkConfig};
use emmark_eval::report::evaluate_quality;

fn main() {
    print_header("FIGURE 2(a)", "parameter overwriting attack sweep");
    let prepared = prepare_target();
    let original = awq_int4(&prepared);
    let cfg = WatermarkConfig {
        bits_per_layer: 16,
        pool_ratio: 20,
        ..Default::default()
    };
    let secrets = OwnerSecrets::new(original, prepared.stats.clone(), cfg, 55);
    let deployed = secrets.watermark_for_deployment().expect("insert");
    let eval_cfg = bench_eval_cfg();
    let base = evaluate_quality(&deployed, &prepared.corpus, &eval_cfg);
    println!(
        "target {} AWQ-INT4 | deployed PPL {:.2}, acc {:.2}%",
        prepared.spec.name(),
        base.ppl,
        base.zero_shot_acc
    );

    let strengths = [0usize, 100, 200, 300, 400, 500];
    let points = overwrite_sweep(
        &secrets,
        &deployed,
        &prepared.corpus,
        &eval_cfg,
        &strengths,
        0xA77AC4,
    );
    println!(
        "\n{:>12} {:>10} {:>18} {:>8}",
        "overwrites", "PPL", "zero-shot acc (%)", "WER (%)"
    );
    for p in &points {
        println!(
            "{:>12} {:>10.2} {:>18.2} {:>8.1}",
            p.strength, p.ppl, p.zero_shot_acc, p.wer
        );
    }
    let last = points.last().expect("sweep non-empty");
    println!(
        "\nshape check: PPL grows {:.2} -> {:.2}; WER at max attack {:.1}%",
        points[0].ppl, last.ppl, last.wer
    );

    // Criterion: cost of one full-strength attack pass.
    let mut criterion = Criterion::default().sample_size(10).configure_from_args();
    criterion.bench_function("fig2a/overwrite_500_per_layer", |b| {
        b.iter(|| {
            let mut attacked = deployed.clone();
            overwrite_attack(
                &mut attacked,
                &OverwriteConfig {
                    per_layer: 500,
                    seed: 1,
                },
            );
            attacked
        })
    });
    criterion.final_summary();
}
