//! **Fleet provisioning** — batch fingerprint insertion at deployment
//! scale: one model family stamped onto many edge devices.
//!
//! Compares the naive path (per device: re-derive the ownership
//! locations by scoring every layer, rebuild the base-watermarked
//! model, re-derive the fingerprint pools, then run a full
//! [`emmark_core::deploy::encode_model`] pass) with the
//! [`emmark_core::provision::FleetProvisioner`] engine (scores, pools,
//! ownership watermark, and the base artifact's v2 encoding cached once
//! per family; each device is PRNG sampling plus a delta patch through
//! the layer-offset index, fanned out across worker threads).
//!
//! Both paths must produce **byte-identical** device artifacts and the
//! same registry entries; the ≥5x acceptance bar is pinned on the
//! 16-device scenario below.

use criterion::Criterion;
use emmark_bench::print_header;
use emmark_core::deploy::encode_model;
use emmark_core::fingerprint::{DeviceFingerprint, Fleet};
use emmark_core::provision::{FleetProvisioner, ProvisionedDevice};
use emmark_core::watermark::{OwnerSecrets, WatermarkConfig};
use emmark_nanolm::config::ModelConfig;
use emmark_nanolm::TransformerModel;
use emmark_quant::awq::{awq, AwqConfig};
use std::time::Instant;

const DEVICES: usize = 16;

fn build_base() -> (OwnerSecrets, WatermarkConfig) {
    let mut cfg = ModelConfig::tiny_test();
    cfg.d_model = 32;
    cfg.d_ff = 96;
    let mut model = TransformerModel::new(cfg);
    let calib: Vec<Vec<u32>> = (0..8u32)
        .map(|s| (0..24u32).map(|i| (i * 7 + s * 5) % 31).collect())
        .collect();
    let stats = model.collect_activation_stats(&calib);
    let quantized = awq(&model, &stats, &AwqConfig::default());
    let base_cfg = WatermarkConfig {
        bits_per_layer: 8,
        pool_ratio: 20,
        ..Default::default()
    };
    let base = OwnerSecrets::new(quantized, stats, base_cfg, 0xF1EE7);
    let fp_cfg = WatermarkConfig {
        bits_per_layer: 4,
        pool_ratio: 20,
        selection_seed: 0xDE11CE,
        ..Default::default()
    };
    (base, fp_cfg)
}

/// The uncached reference path: the serial `Fleet` API re-scores every
/// layer per device (twice — ownership locations and fingerprint
/// pools), then each artifact is a full v2 re-encode.
fn naive_provision(
    base: &OwnerSecrets,
    fp_cfg: WatermarkConfig,
    ids: &[String],
) -> Vec<(DeviceFingerprint, Vec<u8>)> {
    let mut fleet = Fleet::new(base.clone(), fp_cfg);
    ids.iter()
        .map(|id| {
            let deployed = fleet.provision(id).expect("provision");
            let fp = fleet.devices().last().expect("registered").clone();
            (fp, encode_model(&deployed).to_vec())
        })
        .collect()
}

fn main() {
    print_header(
        "PROVISION",
        &format!("score-once/insert-many provisioning of {DEVICES} device artifacts"),
    );
    let (base, fp_cfg) = build_base();
    let ids: Vec<String> = (0..DEVICES).map(|i| format!("edge-{i:04}")).collect();

    // One timed pass of each path, plus a byte-identity check.
    let start = Instant::now();
    let naive = naive_provision(&base, fp_cfg, &ids);
    let naive_time = start.elapsed();

    let start = Instant::now();
    let provisioner = FleetProvisioner::new(base.clone(), fp_cfg).expect("cache");
    let cache_time = start.elapsed();
    let start = Instant::now();
    let provisioned: Vec<ProvisionedDevice> = provisioner.provision_batch(&ids, None);
    let batch_time = start.elapsed();

    let total_bytes: usize = provisioned.iter().map(|p| p.artifact.len()).sum();
    println!(
        "{} artifacts ({:.1} KiB total), {} fingerprint bits/layer",
        provisioned.len(),
        total_bytes as f64 / 1024.0,
        fp_cfg.bits_per_layer
    );
    for (i, (p, (naive_fp, naive_bytes))) in provisioned.iter().zip(&naive).enumerate() {
        assert_eq!(&p.fingerprint, naive_fp, "device {i}: registry diverged");
        assert_eq!(
            &p.artifact, naive_bytes,
            "device {i}: delta-patched artifact is not byte-identical to the serial encode"
        );
    }

    let engine_time = cache_time + batch_time;
    let speedup = naive_time.as_secs_f64() / engine_time.as_secs_f64();
    println!("\n{:<48} {:>12}", "path", "wall time");
    println!(
        "{:<48} {:>9.1} ms",
        "naive (re-score + re-encode per device)",
        naive_time.as_secs_f64() * 1e3
    );
    println!(
        "{:<48} {:>9.1} ms",
        "provisioner (cache build + delta-patched batch)",
        engine_time.as_secs_f64() * 1e3
    );
    println!(
        "{:<48} {:>9.1} ms",
        "  of which one-time cache build",
        cache_time.as_secs_f64() * 1e3
    );
    println!(
        "\nspeedup {speedup:.1}x, artifacts byte-identical on all {DEVICES} devices \
         (per-device cost: one buffer copy + O(fingerprint bits) patches)"
    );
    assert!(
        speedup >= 5.0,
        "score-once/insert-many must be at least 5x over naive per-device \
         provisioning (got {speedup:.2}x)"
    );

    let mut criterion = Criterion::default().sample_size(10).configure_from_args();
    criterion.bench_function("provision/naive_16_devices", |b| {
        b.iter(|| naive_provision(&base, fp_cfg, &ids))
    });
    criterion.bench_function("provision/cached_parallel_16_devices", |b| {
        b.iter(|| provisioner.provision_batch(&ids, None))
    });
    criterion.bench_function("provision/cached_serial_16_devices", |b| {
        b.iter(|| provisioner.provision_batch(&ids, Some(1)))
    });
    criterion.bench_function("provision/cache_build", |b| {
        b.iter(|| FleetProvisioner::new(base.clone(), fp_cfg).expect("cache"))
    });
    criterion.bench_function("provision/single_delta_patch", |b| {
        b.iter(|| provisioner.provision_artifact("edge-0000"))
    });
    criterion.final_summary();
}
