//! **Table 1** — Watermarked embedded LLM performance: PPL, zero-shot
//! accuracy, and WER for {w/o WM, SpecMark, RandomWM, EmMark} over the
//! nine-model Sim-OPT/Sim-LLaMA grid, at INT8 (SmoothQuant for Sim-OPT,
//! LLM.int8() for Sim-LLaMA) and INT4 (AWQ), exactly as the paper lays
//! the table out.
//!
//! Shape claims under reproduction: EmMark Δ≈0 at both precisions;
//! RandomWM fine at INT8 but degrading at INT4; SpecMark 0% WER
//! everywhere (greyed-out rows in the paper); EmMark 100% WER.

use criterion::Criterion;
use emmark_bench::{awq_int4, bench_eval_cfg, fmt_delta, prepare, print_header, Prepared};
use emmark_core::baselines::{RandomWmConfig, SpecMarkConfig};
use emmark_core::scheme::{EmMarkScheme, RandomWmScheme, SpecMarkScheme, WatermarkScheme};
use emmark_core::watermark::WatermarkConfig;
use emmark_eval::report::evaluate_quality;
use emmark_nanolm::families::{full_grid, is_large, TrainEffort};
use emmark_quant::llm_int8::{llm_int8, OutlierCriterion};
use emmark_quant::smoothquant::{smoothquant, SmoothQuantConfig};
use emmark_quant::QuantizedModel;
use emmark_tensor::stats::mean;

/// Per-layer densities scaled from the paper's 300 (INT8) / 40 (INT4)
/// to the micro-model layer sizes (DESIGN.md §4).
const BITS_INT8: usize = 12;
const BITS_INT4: usize = 6;

struct Row {
    model: String,
    ppl: f64,
    acc: f64,
    wer: f64,
}

fn schemes_for(bits_per_layer: usize, pool_ratio: usize) -> Vec<Box<dyn WatermarkScheme>> {
    vec![
        Box::new(SpecMarkScheme {
            config: SpecMarkConfig {
                bits_per_layer,
                ..Default::default()
            },
            signature_seed: 7,
        }),
        Box::new(RandomWmScheme {
            config: RandomWmConfig {
                bits_per_layer,
                seed: 100,
            },
            signature_seed: 7,
        }),
        Box::new(EmMarkScheme {
            config: WatermarkConfig {
                bits_per_layer,
                pool_ratio,
                ..WatermarkConfig::default()
            },
            signature_seed: 7,
        }),
    ]
}

fn run_grid(
    prepared: &[Prepared],
    quantize: impl Fn(&Prepared) -> QuantizedModel,
    bits_per_layer: usize,
) -> Vec<(String, Vec<Row>)> {
    let eval_cfg = bench_eval_cfg();
    let mut by_scheme: Vec<(String, Vec<Row>)> = vec![
        ("w/o WM".into(), Vec::new()),
        ("SpecMark".into(), Vec::new()),
        ("RandomWM".into(), Vec::new()),
        ("EmMark".into(), Vec::new()),
    ];
    for p in prepared {
        let original = quantize(p);
        let pool_ratio = if is_large(&p.spec) { 60 } else { 50 };
        // Clamp the pool to the smallest layer so every model fits the
        // paper's ratio rule.
        let smallest = original.layers.iter().map(|l| l.len()).min().unwrap_or(0);
        let pool_ratio = pool_ratio.min((smallest / bits_per_layer).saturating_sub(1).max(2));
        let base_quality = evaluate_quality(&original, &p.corpus, &eval_cfg);
        by_scheme[0].1.push(Row {
            model: p.spec.name(),
            ppl: base_quality.ppl,
            acc: base_quality.zero_shot_acc,
            wer: f64::NAN,
        });
        for (slot, scheme) in schemes_for(bits_per_layer, pool_ratio)
            .into_iter()
            .enumerate()
        {
            let mut deployed = original.clone();
            scheme.insert(&mut deployed, &p.stats).expect("insertion");
            let quality = evaluate_quality(&deployed, &p.corpus, &eval_cfg);
            let report = scheme
                .extract(&deployed, &original, &p.stats)
                .expect("extraction");
            by_scheme[slot + 1].1.push(Row {
                model: p.spec.name(),
                ppl: quality.ppl,
                acc: quality.zero_shot_acc,
                wer: report.wer(),
            });
        }
    }
    by_scheme
}

fn print_grid(title: &str, grid: &[(String, Vec<Row>)]) {
    println!("\n--- {title} ---");
    print!("{:<10}", "method");
    for row in &grid[0].1 {
        print!(" {:>14}", row.model.replace("sim-", ""));
    }
    println!(" {:>7}", "avg_d");
    let base: Vec<&Row> = grid[0].1.iter().collect();
    for (scheme, rows) in grid {
        // PPL line.
        print!("{:<10}", format!("{scheme} PPL"));
        let mut deltas = Vec::new();
        for (row, b) in rows.iter().zip(&base) {
            print!(" {:>14.2}", row.ppl);
            deltas.push(row.ppl - b.ppl);
        }
        println!(" {:>7}", fmt_delta(mean(&deltas)));
        // Accuracy line.
        print!("{:<10}", format!("{scheme} acc"));
        let mut adeltas = Vec::new();
        for (row, b) in rows.iter().zip(&base) {
            print!(" {:>14.2}", row.acc);
            adeltas.push(row.acc - b.acc);
        }
        println!(" {:>7}", fmt_delta(mean(&adeltas)));
        // WER line (skip for the unwatermarked reference).
        if !rows[0].wer.is_nan() {
            print!("{:<10}", format!("{scheme} WER"));
            for row in rows {
                print!(" {:>14.1}", row.wer);
            }
            println!();
        }
    }
}

fn main() {
    print_header(
        "TABLE 1",
        "fidelity of watermarked embedded LLMs (9-model grid)",
    );
    println!(
        "watermark densities: INT8 {BITS_INT8} bits/layer, INT4 {BITS_INT4} bits/layer \
         (paper: 300/40 at OPT scale; see DESIGN.md §4)"
    );
    let effort = TrainEffort::bench_from_env();
    println!("training nine models ({} steps each)…", effort.steps);
    let prepared: Vec<Prepared> = full_grid()
        .iter()
        .map(|spec| prepare(spec, effort))
        .collect();

    // INT8: SmoothQuant for Sim-OPT (as the paper), LLM.int8 for Sim-LLaMA.
    let int8 = run_grid(
        &prepared,
        |p| match p.spec.family {
            emmark_nanolm::families::Family::SimOpt => {
                smoothquant(&p.fp, &p.stats, &SmoothQuantConfig::default())
            }
            emmark_nanolm::families::Family::SimLlama => {
                llm_int8(&p.fp, &p.stats, OutlierCriterion::default())
            }
        },
        BITS_INT8,
    );
    print_grid("INT8 quantization (SmoothQuant / LLM.int8)", &int8);

    let int4 = run_grid(&prepared, awq_int4, BITS_INT4);
    print_grid("INT4 quantization (AWQ)", &int4);

    // Shape check mirrored from the paper: EmMark's mean degradation is
    // ~0 while RandomWM's INT4 degradation exceeds EmMark's.
    let ppl_delta = |grid: &[(String, Vec<Row>)], idx: usize| {
        let base = &grid[0].1;
        mean(
            &grid[idx]
                .1
                .iter()
                .zip(base)
                .map(|(r, b)| r.ppl - b.ppl)
                .collect::<Vec<_>>(),
        )
    };
    println!("\nshape checks:");
    println!(
        "  EmMark INT4 mean ΔPPL {:.3} vs RandomWM INT4 mean ΔPPL {:.3}",
        ppl_delta(&int4, 3),
        ppl_delta(&int4, 2)
    );
    let specmark_wers: Vec<f64> = int4[1].1.iter().map(|r| r.wer).collect();
    println!("  SpecMark INT4 WERs: {:?} (paper: all 0)", specmark_wers);

    // Density sweep on the 2.7b target: the paper's RandomWM-vs-EmMark
    // INT4 gap is driven by wrap events on clamped cells, which at the
    // grid's scaled density are too rare to move micro-model PPL. Raising
    // the density makes the mechanism visible: RandomWM's damage grows
    // with its wrap count while EmMark stays flat (it never wraps).
    println!("\n--- INT4 density sweep on sim-opt-2.7b (mechanism check) ---");
    println!(
        "{:>11} {:>14} {:>14} {:>14} {:>14}",
        "bits/layer", "EmMark PPL", "RandomWM PPL", "RandomWM WER", "wraps"
    );
    let target = &prepared[2];
    let original = awq_int4(target);
    let eval_cfg = bench_eval_cfg();
    let smallest = original.layers.iter().map(|l| l.len()).min().unwrap_or(0);
    for bits in [16usize, 64, 128] {
        let pool_ratio = ((smallest * 8 / 10) / bits).clamp(2, 50);
        let em = EmMarkScheme {
            config: WatermarkConfig {
                bits_per_layer: bits,
                pool_ratio,
                ..Default::default()
            },
            signature_seed: 9,
        };
        let mut em_model = original.clone();
        em.insert(&mut em_model, &target.stats)
            .expect("emmark insert");
        let em_q = evaluate_quality(&em_model, &target.corpus, &eval_cfg);

        let rw = RandomWmScheme {
            config: RandomWmConfig {
                bits_per_layer: bits,
                seed: 100,
            },
            signature_seed: 9,
        };
        let mut rw_model = original.clone();
        rw.insert(&mut rw_model, &target.stats)
            .expect("randomwm insert");
        let rw_q = evaluate_quality(&rw_model, &target.corpus, &eval_cfg);
        let rw_wer = rw
            .extract(&rw_model, &original, &target.stats)
            .expect("extract")
            .wer();
        let wraps: usize = rw_model
            .layers
            .iter()
            .zip(&original.layers)
            .map(|(a, b)| {
                (0..a.len())
                    .filter(|&f| (a.q_at_flat(f) as i16 - b.q_at_flat(f) as i16).abs() > 1)
                    .count()
            })
            .sum();
        println!(
            "{:>11} {:>14.2} {:>14.2} {:>13.1}% {:>14}",
            bits, em_q.ppl, rw_q.ppl, rw_wer, wraps
        );
    }

    // Criterion timing of the Table 1 core operation: one EmMark
    // insertion on the mid-grid model.
    let mut criterion = Criterion::default().sample_size(10).configure_from_args();
    let target = &prepared[2];
    let original = awq_int4(target);
    let scheme = EmMarkScheme {
        config: WatermarkConfig {
            bits_per_layer: BITS_INT4,
            pool_ratio: 50,
            ..Default::default()
        },
        signature_seed: 7,
    };
    criterion.bench_function("table1/emmark_insert_sim_opt_2.7b_int4", |b| {
        b.iter(|| {
            let mut model = original.clone();
            scheme.insert(&mut model, &target.stats).expect("insert");
            model
        })
    });
    criterion.final_summary();
}
