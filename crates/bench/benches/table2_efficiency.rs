//! **Table 2** — EmMark's watermarking efficiency: wall-clock insertion
//! time per quantized layer, peak resident memory, and GPU memory, at
//! INT8 and INT4.
//!
//! The paper reports ≤0.4 s/layer and 0 GB GPU ("all of EmMark's
//! components are performed on CPUs"). This reproduction is CPU-only by
//! construction, so GPU memory is structurally zero; the per-layer time
//! is measured with Criterion on the largest grid model, and peak
//! resident heap bytes are recorded with the tracking allocator for
//! both the buffered insertion and the streaming pipeline (the paper
//! has no memory column beyond "0 GB GPU" — peak host memory is the
//! embedded-deployment metric that matters here).
//!
//! Since PR 7 the insertion path scores through the chunked LUT
//! kernels (DESIGN.md §11); the `scalar` column times the preserved
//! pre-kernel pipeline ([`stream_watermark_reference`]) so the
//! before/after per-layer cost stays visible in the table.

use criterion::Criterion;
use emmark_bench::alloc::{self, TrackingAllocator};
use emmark_bench::{prepare, print_header};
use emmark_core::signature::Signature;
use emmark_core::watermark::{
    insert_watermark, stream_watermark, stream_watermark_reference, WatermarkConfig,
};
use emmark_core::ArtifactSink;
use emmark_nanolm::families::{sim_opt_grid, TrainEffort};
use emmark_quant::awq::{awq, AwqConfig};
use emmark_quant::smoothquant::{smoothquant, SmoothQuantConfig};
use std::time::Instant;

#[global_allocator]
static ALLOC: TrackingAllocator = TrackingAllocator;

fn main() {
    print_header(
        "TABLE 2",
        "watermark insertion time per layer and GPU memory",
    );
    let spec = sim_opt_grid().into_iter().last().expect("grid non-empty"); // sim-opt-30b
    println!("target: {} (largest grid model)", spec.name());
    let prepared = prepare(&spec, TrainEffort::bench_from_env());

    let mut rows = Vec::new();
    for (label, bits_per_layer, model) in [
        (
            "INT8",
            12usize,
            smoothquant(&prepared.fp, &prepared.stats, &SmoothQuantConfig::default()),
        ),
        (
            "INT4",
            6,
            awq(&prepared.fp, &prepared.stats, &AwqConfig::default()),
        ),
    ] {
        let cfg = WatermarkConfig {
            bits_per_layer,
            pool_ratio: 50,
            ..Default::default()
        };
        let sig = Signature::generate(cfg.signature_len(model.layer_count()), 1);
        // Wall-clock and peak-heap measurement over several repetitions
        // (peak is the worst rep; it is deterministic in practice).
        let reps = 5;
        let mut peak_buffered = 0usize;
        let start = Instant::now();
        for _ in 0..reps {
            let baseline = alloc::current_bytes();
            alloc::reset_peak();
            let mut work = model.clone();
            insert_watermark(&mut work, &prepared.stats, &sig, &cfg).expect("insert");
            peak_buffered = peak_buffered.max(alloc::peak_bytes().saturating_sub(baseline));
        }
        let per_model = start.elapsed().as_secs_f64() / reps as f64;
        let per_layer = per_model / model.layer_count() as f64;
        // The same stamp through the streaming pipeline, encoding to a
        // sink: one layer resident at a time.
        let mut peak_streaming = 0usize;
        for _ in 0..reps {
            let baseline = alloc::current_bytes();
            alloc::reset_peak();
            stream_watermark(
                &model,
                &prepared.stats,
                &sig,
                &cfg,
                &mut ArtifactSink::new(std::io::sink()),
            )
            .expect("stream");
            peak_streaming = peak_streaming.max(alloc::peak_bytes().saturating_sub(baseline));
        }
        // The pre-kernel scalar pipeline, for the before/after column.
        let start = Instant::now();
        for _ in 0..reps {
            stream_watermark_reference(
                &model,
                &prepared.stats,
                &sig,
                &cfg,
                &mut ArtifactSink::new(std::io::sink()),
            )
            .expect("reference stream");
        }
        let scalar_per_layer =
            start.elapsed().as_secs_f64() / reps as f64 / model.layer_count() as f64;
        rows.push((
            label,
            per_layer,
            scalar_per_layer,
            per_model,
            peak_buffered,
            peak_streaming,
        ));
    }

    println!(
        "\n{:<8} {:>16} {:>17} {:>16} {:>14} {:>16} {:>12}",
        "quant",
        "time/layer (s)",
        "scalar t/l (s)",
        "time/model (s)",
        "peak insert",
        "peak streaming",
        "GPU mem (GB)"
    );
    for (label, per_layer, scalar_per_layer, per_model, peak_buffered, peak_streaming) in &rows {
        println!(
            "{label:<8} {per_layer:>16.4} {scalar_per_layer:>17.4} {per_model:>16.4} {:>14} {:>16} {:>12}",
            alloc::fmt_bytes(*peak_buffered),
            alloc::fmt_bytes(*peak_streaming),
            0
        );
    }
    println!("\npaper: 0.4 s (INT8) and 0.3 s (INT4) per layer, 0 GB GPU, on OPT-scale layers.");
    println!("shape check: CPU-only insertion, sub-second per layer — holds at micro scale.");
    println!("peak columns: buffered in-place insertion vs the streaming stamp→encode pipeline.");
    println!("scalar t/l: the preserved pre-kernel scoring pipeline on the same stamp.");

    // Criterion measurement of the INT4 per-layer path.
    let model = awq(&prepared.fp, &prepared.stats, &AwqConfig::default());
    let cfg = WatermarkConfig {
        bits_per_layer: 6,
        pool_ratio: 50,
        ..Default::default()
    };
    let sig = Signature::generate(cfg.signature_len(model.layer_count()), 1);
    let mut criterion = Criterion::default().sample_size(10).configure_from_args();
    criterion.bench_function("table2/insert_full_model_int4", |b| {
        b.iter(|| {
            let mut work = model.clone();
            insert_watermark(&mut work, &prepared.stats, &sig, &cfg).expect("insert");
            work
        })
    });
    criterion.final_summary();
}
