//! **Table 2** — EmMark's watermarking efficiency: wall-clock insertion
//! time per quantized layer and GPU memory, at INT8 and INT4.
//!
//! The paper reports ≤0.4 s/layer and 0 GB GPU ("all of EmMark's
//! components are performed on CPUs"). This reproduction is CPU-only by
//! construction, so GPU memory is structurally zero; the per-layer time
//! is measured with Criterion on the largest grid model.

use criterion::Criterion;
use emmark_bench::{prepare, print_header};
use emmark_core::signature::Signature;
use emmark_core::watermark::{insert_watermark, WatermarkConfig};
use emmark_nanolm::families::{sim_opt_grid, TrainEffort};
use emmark_quant::awq::{awq, AwqConfig};
use emmark_quant::smoothquant::{smoothquant, SmoothQuantConfig};
use std::time::Instant;

fn main() {
    print_header(
        "TABLE 2",
        "watermark insertion time per layer and GPU memory",
    );
    let spec = sim_opt_grid().into_iter().last().expect("grid non-empty"); // sim-opt-30b
    println!("target: {} (largest grid model)", spec.name());
    let prepared = prepare(&spec, TrainEffort::bench_from_env());

    let mut rows = Vec::new();
    for (label, bits_per_layer, model) in [
        (
            "INT8",
            12usize,
            smoothquant(&prepared.fp, &prepared.stats, &SmoothQuantConfig::default()),
        ),
        (
            "INT4",
            6,
            awq(&prepared.fp, &prepared.stats, &AwqConfig::default()),
        ),
    ] {
        let cfg = WatermarkConfig {
            bits_per_layer,
            pool_ratio: 50,
            ..Default::default()
        };
        let sig = Signature::generate(cfg.signature_len(model.layer_count()), 1);
        // Wall-clock measurement over several repetitions.
        let reps = 5;
        let start = Instant::now();
        for _ in 0..reps {
            let mut work = model.clone();
            insert_watermark(&mut work, &prepared.stats, &sig, &cfg).expect("insert");
        }
        let per_model = start.elapsed().as_secs_f64() / reps as f64;
        let per_layer = per_model / model.layer_count() as f64;
        rows.push((label, per_layer, per_model, model.layer_count()));
    }

    println!(
        "\n{:<8} {:>16} {:>16} {:>12}",
        "quant", "time/layer (s)", "time/model (s)", "GPU mem (GB)"
    );
    for (label, per_layer, per_model, _layers) in &rows {
        println!("{label:<8} {per_layer:>16.4} {per_model:>16.4} {:>12}", 0);
    }
    println!("\npaper: 0.4 s (INT8) and 0.3 s (INT4) per layer, 0 GB GPU, on OPT-scale layers.");
    println!("shape check: CPU-only insertion, sub-second per layer — holds at micro scale.");

    // Criterion measurement of the INT4 per-layer path.
    let model = awq(&prepared.fp, &prepared.stats, &AwqConfig::default());
    let cfg = WatermarkConfig {
        bits_per_layer: 6,
        pool_ratio: 50,
        ..Default::default()
    };
    let sig = Signature::generate(cfg.signature_len(model.layer_count()), 1);
    let mut criterion = Criterion::default().sample_size(10).configure_from_args();
    criterion.bench_function("table2/insert_full_model_int4", |b| {
        b.iter(|| {
            let mut work = model.clone();
            insert_watermark(&mut work, &prepared.stats, &sig, &cfg).expect("insert");
            work
        })
    });
    criterion.final_summary();
}
