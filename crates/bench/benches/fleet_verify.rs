//! **Fleet verification** — batch ownership proof and leak tracing at
//! deployment scale, the scenario the paper's IP-protection story
//! implies: one watermarked model shipped to many edge devices, later
//! verified wholesale against the device registry.
//!
//! Compares the naive path (per artifact × per device: rebuild the
//! base-watermarked reference, re-score every layer, re-derive the
//! candidate pools) with the [`emmark_core::fleet::FleetVerifier`]
//! engine (score/pool/locations cached once per model family; artifacts
//! stream through the deploy codec and fan out across worker threads).
//! Both paths must produce bit-for-bit identical verdicts.

use criterion::Criterion;
use emmark_bench::print_header;
use emmark_core::deploy::{decode_model, encode_model};
use emmark_core::fingerprint::Fleet;
use emmark_core::fleet::FleetVerifier;
use emmark_core::watermark::{OwnerSecrets, WatermarkConfig};
use emmark_nanolm::config::ModelConfig;
use emmark_nanolm::TransformerModel;
use emmark_quant::awq::{awq, AwqConfig};
use std::time::Instant;

const DEVICES: usize = 16;

fn build_fleet() -> (Fleet, Vec<Vec<u8>>) {
    let mut cfg = ModelConfig::tiny_test();
    cfg.d_model = 32;
    cfg.d_ff = 96;
    let mut model = TransformerModel::new(cfg);
    let calib: Vec<Vec<u32>> = (0..8u32)
        .map(|s| (0..24u32).map(|i| (i * 7 + s * 5) % 31).collect())
        .collect();
    let stats = model.collect_activation_stats(&calib);
    let quantized = awq(&model, &stats, &AwqConfig::default());
    let base_cfg = WatermarkConfig {
        bits_per_layer: 8,
        pool_ratio: 20,
        ..Default::default()
    };
    let base = OwnerSecrets::new(quantized, stats, base_cfg, 0xF1EE7);
    let fp_cfg = WatermarkConfig {
        bits_per_layer: 4,
        pool_ratio: 20,
        selection_seed: 0xDE11CE,
        ..Default::default()
    };
    let mut fleet = Fleet::new(base, fp_cfg);
    let artifacts: Vec<Vec<u8>> = (0..DEVICES)
        .map(|i| {
            let deployed = fleet.provision(&format!("edge-{i:04}")).expect("provision");
            encode_model(&deployed).to_vec()
        })
        .collect();
    (fleet, artifacts)
}

/// The uncached reference path: decode each artifact, then run the
/// serial `Fleet` API, which re-derives every location set per check.
fn naive_verify(fleet: &Fleet, artifacts: &[Vec<u8>]) -> Vec<(String, f64)> {
    artifacts
        .iter()
        .map(|bytes| {
            let suspect = decode_model(bytes).expect("decode");
            let ownership = fleet.base.verify(&suspect).expect("verify");
            let traced = fleet
                .identify_leak(&suspect, -6.0)
                .expect("identify")
                .map(|(d, _)| d.device_id.clone())
                .unwrap_or_default();
            (traced, ownership.wer())
        })
        .collect()
}

fn main() {
    print_header(
        "FLEET",
        &format!("batch verification of {DEVICES} fingerprinted device artifacts"),
    );
    let (fleet, artifacts) = build_fleet();
    let total_bytes: usize = artifacts.iter().map(Vec::len).sum();
    println!(
        "{} artifacts ({:.1} KiB total), {} registered devices",
        artifacts.len(),
        total_bytes as f64 / 1024.0,
        fleet.devices().len()
    );

    // One timed pass of each path, plus an agreement check.
    let start = Instant::now();
    let naive = naive_verify(&fleet, &artifacts);
    let naive_time = start.elapsed();

    let start = Instant::now();
    let verifier = FleetVerifier::new(&fleet).expect("cache");
    let cache_time = start.elapsed();
    let start = Instant::now();
    let verdicts = verifier.verify_batch(&artifacts, -6.0, None);
    let cached_time = start.elapsed();

    for (i, (verdict, (naive_dev, naive_wer))) in verdicts.iter().zip(&naive).enumerate() {
        let v = verdict.as_ref().expect("verdict");
        assert_eq!(
            v.ownership.wer(),
            *naive_wer,
            "artifact {i}: ownership WER diverged"
        );
        let cached_dev = v
            .attribution
            .as_ref()
            .map(|(d, _)| d.device_id.clone())
            .unwrap_or_default();
        assert_eq!(&cached_dev, naive_dev, "artifact {i}: attribution diverged");
        assert_eq!(
            cached_dev,
            format!("edge-{i:04}"),
            "artifact {i}: misattributed"
        );
    }
    let speedup = naive_time.as_secs_f64() / (cache_time + cached_time).as_secs_f64();
    println!("\n{:<44} {:>12}", "path", "wall time");
    println!(
        "{:<44} {:>9.1} ms",
        "naive (re-derive per device per artifact)",
        naive_time.as_secs_f64() * 1e3
    );
    println!(
        "{:<44} {:>9.1} ms",
        "fleet engine (cache build + parallel batch)",
        (cache_time + cached_time).as_secs_f64() * 1e3
    );
    println!(
        "{:<44} {:>9.1} ms",
        "  of which one-time cache build",
        cache_time.as_secs_f64() * 1e3
    );
    println!("\nspeedup {speedup:.1}x, verdicts bit-for-bit identical on all {DEVICES} artifacts");
    assert!(
        speedup > 1.0,
        "shared-cache path must beat naive recomputation (got {speedup:.2}x)"
    );

    let mut criterion = Criterion::default().sample_size(10).configure_from_args();
    criterion.bench_function("fleet/naive_16_artifacts", |b| {
        b.iter(|| naive_verify(&fleet, &artifacts))
    });
    criterion.bench_function("fleet/cached_parallel_16_artifacts", |b| {
        b.iter(|| verifier.verify_batch(&artifacts, -6.0, None))
    });
    criterion.bench_function("fleet/cached_serial_16_artifacts", |b| {
        b.iter(|| verifier.verify_batch(&artifacts, -6.0, Some(1)))
    });
    criterion.bench_function("fleet/cache_build", |b| {
        b.iter(|| FleetVerifier::new(&fleet).expect("cache"))
    });
    criterion.final_summary();
}
