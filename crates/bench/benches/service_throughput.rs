//! **Service throughput** — the `emmarkd` batched-verification daemon
//! against the per-request CLI cost model.
//!
//! The one-shot CLI pays the full cold-start tax on every invocation:
//! decode the owner vault, rebuild the score sweep and location set,
//! then extract. The daemon pays it once per model family and serves
//! every later request from the warm [`FamilyCache`] through the frame
//! codec. This bench drives the same verification requests down both
//! paths, asserts the reports are bit-for-bit identical per request,
//! and gates the warm path at **≥ 10×** the per-request throughput.

use criterion::Criterion;
use emmark_bench::print_header;
use emmark_core::deploy::{encode_model, SparseArtifact};
use emmark_core::service::{
    decode_response, encode_request, Blob, ReportSummary, Request, Response, Service, ServiceConfig,
};
use emmark_core::vault::{decode_secrets, encode_secrets};
use emmark_core::watermark::{OwnerSecrets, WatermarkConfig};
use emmark_nanolm::config::ModelConfig;
use emmark_nanolm::TransformerModel;
use emmark_quant::awq::{awq, AwqConfig};
use std::path::PathBuf;
use std::sync::mpsc;
use std::time::Instant;

const FAMILIES: usize = 2;
const REQUESTS: usize = 200;

struct Family {
    secrets_path: PathBuf,
    suspect_path: PathBuf,
    secrets_len: usize,
    suspect_len: usize,
}

fn build_family(seed: u64) -> Family {
    let mut cfg = ModelConfig::tiny_test();
    cfg.d_model = 128;
    cfg.d_ff = 384;
    cfg.init_seed = seed;
    let mut model = TransformerModel::new(cfg);
    let calib: Vec<Vec<u32>> = (0..8u32)
        .map(|s| (0..24u32).map(|i| (i * 7 + s * 5) % 31).collect())
        .collect();
    let stats = model.collect_activation_stats(&calib);
    let quantized = awq(&model, &stats, &AwqConfig::default());
    let wm_cfg = WatermarkConfig {
        bits_per_layer: 8,
        pool_ratio: 20,
        ..Default::default()
    };
    let secrets = OwnerSecrets::new(quantized, stats, wm_cfg, 0xF1EE7 ^ seed);
    let deployed = secrets.watermark_for_deployment().expect("stamp");
    let secrets_bytes = encode_secrets(&secrets).to_vec();
    let suspect_bytes = encode_model(&deployed).to_vec();
    let dir = std::env::temp_dir();
    let pid = std::process::id();
    let secrets_path = dir.join(format!("emmark-svcbench-{pid}-{seed}.emws"));
    let suspect_path = dir.join(format!("emmark-svcbench-{pid}-{seed}.emqm"));
    std::fs::write(&secrets_path, &secrets_bytes).expect("write vault");
    std::fs::write(&suspect_path, &suspect_bytes).expect("write artifact");
    Family {
        secrets_path,
        suspect_path,
        secrets_len: secrets_bytes.len(),
        suspect_len: suspect_bytes.len(),
    }
}

impl Family {
    fn verify_request(&self) -> Request {
        Request::Verify {
            secrets: Blob::Path(self.secrets_path.display().to_string()),
            suspect: Blob::Path(self.suspect_path.display().to_string()),
            log10_threshold: -9.0,
        }
    }
}

/// One request down the cold path, exactly what each `emmark verify`
/// process re-does from scratch: read both files, decode the vault,
/// re-derive the locations, extract. (Process spawn is NOT charged —
/// a conservative handicap in the daemon's favor.)
fn cold_verify(family: &Family) -> ReportSummary {
    let secrets_bytes = std::fs::read(&family.secrets_path).expect("read vault");
    let suspect_bytes = std::fs::read(&family.suspect_path).expect("read artifact");
    let secrets = decode_secrets(&secrets_bytes).expect("vault");
    let sparse = SparseArtifact::open(&suspect_bytes).expect("open");
    ReportSummary::from(&secrets.verify(&sparse).expect("verify"))
}

fn main() {
    print_header(
        "SERVICE",
        &format!("{REQUESTS} verification requests, cold CLI path vs warm emmarkd pool"),
    );
    let families: Vec<Family> = (0..FAMILIES as u64).map(build_family).collect();
    println!(
        "{FAMILIES} model families, vault {:.1} KiB, artifact {:.1} KiB (path blobs)",
        families[0].secrets_len as f64 / 1024.0,
        families[0].suspect_len as f64 / 1024.0
    );

    // Cold path: every request decodes the vault and re-derives the
    // locations, like one CLI process per request.
    let start = Instant::now();
    let cold: Vec<ReportSummary> = (0..REQUESTS)
        .map(|i| cold_verify(&families[i % FAMILIES]))
        .collect();
    let cold_time = start.elapsed();

    // Warm path: the daemon's worker pool behind the frame codec, the
    // family cache populated on first touch.
    let service = Service::start(ServiceConfig {
        workers: 4,
        queue_capacity: REQUESTS + 1,
        cache_capacity: FAMILIES,
        max_resident_bytes: None,
        retry_after_ms: 10,
    });
    // Prime the cache (one miss per family), outside the timed window —
    // the daemon's whole point is that this happens once per family,
    // not once per request.
    for (i, family) in families.iter().enumerate() {
        assert!(matches!(
            service.request(i as u64, &family.verify_request()),
            Response::Verify { .. }
        ));
    }

    let start = Instant::now();
    let (tx, rx) = mpsc::channel();
    for i in 0..REQUESTS {
        let req = families[i % FAMILIES].verify_request();
        let tx = tx.clone();
        service.submit(
            encode_request(i as u64, &req),
            Box::new(move |bytes| tx.send(decode_response(&bytes).expect("decode")).unwrap()),
        );
    }
    let mut hot: Vec<Option<ReportSummary>> = vec![None; REQUESTS];
    for _ in 0..REQUESTS {
        let (id, resp) = rx.recv().expect("reply");
        match resp {
            Response::Verify { report, proved } => {
                assert!(proved, "request {id}: stamp must prove");
                hot[id as usize] = Some(report);
            }
            other => panic!("request {id}: unexpected response {other:?}"),
        }
    }
    let hot_time = start.elapsed();

    // Bit-identity per request: the daemon must answer exactly what the
    // one-shot path answers, or the speedup is meaningless.
    for (i, (h, c)) in hot.iter().zip(&cold).enumerate() {
        assert_eq!(h.as_ref(), Some(c), "request {i}: reports diverged");
    }

    let cold_rps = REQUESTS as f64 / cold_time.as_secs_f64();
    let hot_rps = REQUESTS as f64 / hot_time.as_secs_f64();
    let speedup = hot_rps / cold_rps;
    println!("\n{:<44} {:>12} {:>12}", "path", "wall time", "req/s");
    println!(
        "{:<44} {:>9.1} ms {:>12.0}",
        "cold (vault decode + locate per request)",
        cold_time.as_secs_f64() * 1e3,
        cold_rps
    );
    println!(
        "{:<44} {:>9.1} ms {:>12.0}",
        "warm emmarkd (4 workers, framed requests)",
        hot_time.as_secs_f64() * 1e3,
        hot_rps
    );
    println!(
        "\nthroughput {speedup:.1}x, reports bit-for-bit identical on all {REQUESTS} requests"
    );
    assert!(
        speedup >= 10.0,
        "warm service must be >= 10x per-request throughput (got {speedup:.2}x)"
    );

    let mut criterion = Criterion::default().sample_size(10).configure_from_args();
    criterion.bench_function("service/cold_verify_per_request", |b| {
        b.iter(|| cold_verify(&families[0]))
    });
    criterion.bench_function("service/warm_verify_request", |b| {
        let req = families[0].verify_request();
        b.iter(|| match service.request(0, &req) {
            Response::Verify { report, .. } => report,
            other => panic!("unexpected response {other:?}"),
        })
    });
    criterion.final_summary();
    let _ = service.request(u64::MAX, &Request::Shutdown);
    for family in &families {
        let _ = std::fs::remove_file(&family.secrets_path);
        let _ = std::fs::remove_file(&family.suspect_path);
    }
}
