//! **Scoring kernels** — the chunked, branch-free Eq. 2–4 kernels of
//! PR 7 (`scoring::layer_pool` / `scoring::score_layer`, DESIGN.md §11)
//! against the per-cell scalar originals preserved in
//! `scoring::reference`.
//!
//! Acceptance gates:
//!
//! * **bit identity** — kernel and reference produce identical pools
//!   (same indices, same order) and bit-identical per-cell scores on
//!   all five quantization schemes *and* on the large synthetic layers
//!   used for timing;
//! * **throughput** — ≥3x single-layer pool throughput over the scalar
//!   baseline on an LLM-shaped layer (the gate the ROADMAP sets);
//! * **memory** — the kernel path allocates no more peak heap than the
//!   scalar path (tracking allocator).
//!
//! The timing layer is synthetic (4096×1024 INT8 with LLM.int8()-style
//! outlier rows, clamped cells, and zeros) because the Sim-OPT grid's
//! layers are too small to time stably; the equivalence proptests
//! (`tests/scoring_kernel_equivalence.rs`) cover the real schemes at
//! model scale.

use criterion::Criterion;
use emmark_bench::alloc::{self, TrackingAllocator};
use emmark_bench::print_header;
use emmark_core::scoring::{self, reference, ScoreCoefficients};
use emmark_core::telemetry::{peak_resident_mib, Telemetry};
use emmark_nanolm::config::ModelConfig;
use emmark_nanolm::TransformerModel;
use emmark_quant::awq::{awq, AwqConfig};
use emmark_quant::gptq::{gptq, GptqConfig};
use emmark_quant::llm_int8::{llm_int8, OutlierCriterion};
use emmark_quant::rtn::quantize_linear_rtn;
use emmark_quant::smoothquant::{smoothquant, SmoothQuantConfig};
use emmark_quant::{ActQuant, Granularity, QuantizedLinear};
use emmark_tensor::Matrix;
use std::time::{Duration, Instant};

#[global_allocator]
static ALLOC: TrackingAllocator = TrackingAllocator;

/// A large LLM-shaped INT8 layer: deterministic pseudo-random weights
/// including zeros and clamped cells, plus `n_outliers` full-precision
/// outlier rows — every exclusion class the kernel folds into its mask.
fn synth_layer(in_f: usize, out_f: usize, n_outliers: usize, seed: u64) -> QuantizedLinear {
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let q: Vec<i8> = (0..in_f * out_f)
        .map(|_| {
            let r = next();
            // ~1/32 zeros and the full [-127, 127] span (so clamped
            // cells occur naturally).
            if r % 32 == 0 {
                0
            } else {
                ((r >> 8) % 255) as i16 as i8
            }
        })
        .map(|v| if v == -128 { 127 } else { v })
        .collect();
    let mut layer = QuantizedLinear::new(
        q,
        in_f,
        out_f,
        8,
        Granularity::PerTensor,
        vec![0.01],
        None,
        None,
        ActQuant::None,
    );
    if n_outliers > 0 {
        let rows: Vec<usize> = (0..n_outliers).map(|i| (i * in_f) / n_outliers).collect();
        let weights = Matrix::zeros(rows.len(), out_f);
        layer.set_outliers(rows, weights);
    }
    layer
}

/// A varied activation profile (strictly positive, one clear minimum).
fn synth_act(in_f: usize) -> Vec<f32> {
    (0..in_f)
        .map(|i| 0.05 + ((i * 37) % 101) as f32 * 0.013)
        .collect()
}

/// Minimum wall time for one call of `f`, over `reps` repetitions.
fn best_of(reps: usize, mut f: impl FnMut()) -> Duration {
    let mut best = Duration::MAX;
    for _ in 0..reps {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed());
    }
    best
}

/// Worst peak-heap delta for one call of `f`, over `reps` repetitions.
fn peak_of(reps: usize, mut f: impl FnMut()) -> usize {
    let mut worst = 0usize;
    for _ in 0..reps {
        let baseline = alloc::current_bytes();
        alloc::reset_peak();
        f();
        worst = worst.max(alloc::peak_bytes().saturating_sub(baseline));
    }
    worst
}

/// The five quantization schemes at tiny scale, for the identity sweep.
fn five_schemes() -> Vec<(String, Vec<QuantizedLinear>, Vec<Vec<f32>>)> {
    let mut model = TransformerModel::new(ModelConfig::tiny_test());
    let calib: Vec<Vec<u32>> = (0..4u32)
        .map(|s| (0..16u32).map(|i| (i * 7 + s * 3) % 31).collect())
        .collect();
    let stats = model.collect_activation_stats(&calib);
    let models = vec![
        emmark_quant::QuantizedModel::quantize_with(&model, "rtn", |_, lin| {
            quantize_linear_rtn(lin, 8, Granularity::PerOutChannel, ActQuant::None)
        }),
        awq(&model, &stats, &AwqConfig::default()),
        gptq(&mut model.clone(), &calib, &GptqConfig::default()),
        smoothquant(&model, &stats, &SmoothQuantConfig::default()),
        llm_int8(&model, &stats, OutlierCriterion::Quantile(0.9)),
    ];
    models
        .into_iter()
        .map(|qm| {
            let acts: Vec<Vec<f32>> = stats.per_layer.iter().map(|s| s.mean_abs.clone()).collect();
            (qm.scheme.clone(), qm.layers, acts)
        })
        .collect()
}

fn main() {
    print_header(
        "KERNELS",
        "chunked Eq. 2-4 scoring kernels vs the scalar reference",
    );
    let coeffs = ScoreCoefficients::default();

    // ---- bit identity: all five schemes, scores and pools ----
    let mut checked_layers = 0usize;
    for (scheme, layers, acts) in five_schemes() {
        for (layer, act) in layers.iter().zip(&acts) {
            let ks = scoring::score_layer(layer, act, &coeffs);
            let rs = reference::score_layer(layer, act, &coeffs);
            assert!(
                ks.iter().zip(&rs).all(|(a, b)| a.to_bits() == b.to_bits()),
                "{scheme}: kernel scores diverged from the scalar reference"
            );
            let finite = ks.iter().filter(|s| s.is_finite()).count();
            for pool_size in [1usize, 16, finite / 2, finite] {
                assert_eq!(
                    scoring::layer_pool(layer, act, &coeffs, pool_size, &[]),
                    reference::layer_pool(layer, act, &coeffs, pool_size, &[]),
                    "{scheme}: pools diverged at pool_size {pool_size}"
                );
            }
            checked_layers += 1;
        }
    }
    println!("bit identity: {checked_layers} layers x 5 quant schemes x 4 pool sizes -- OK");

    // ---- throughput: large synthetic layer, pool + full scoring ----
    let layer = synth_layer(4096, 1024, 32, 0xC0FFEE);
    let act = synth_act(layer.in_features());
    let pool_size = 50 * 8; // the paper-default pool of a 8-bit/layer stamp
    let kernel_pool = scoring::layer_pool(&layer, &act, &coeffs, pool_size, &[]).expect("pool");
    let scalar_pool = reference::layer_pool(&layer, &act, &coeffs, pool_size, &[]).expect("pool");
    assert_eq!(
        kernel_pool, scalar_pool,
        "kernel and scalar pools must be identical on the timing layer"
    );
    let kernel_scores = scoring::score_layer(&layer, &act, &coeffs);
    let scalar_scores = reference::score_layer(&layer, &act, &coeffs);
    assert!(
        kernel_scores
            .iter()
            .zip(&scalar_scores)
            .all(|(a, b)| a.to_bits() == b.to_bits()),
        "kernel scores must be bit-identical on the timing layer"
    );

    const REPS: usize = 7;
    let t_kernel_pool = best_of(REPS, || {
        scoring::layer_pool(&layer, &act, &coeffs, pool_size, &[]).expect("pool");
    });
    let t_scalar_pool = best_of(REPS, || {
        reference::layer_pool(&layer, &act, &coeffs, pool_size, &[]).expect("pool");
    });
    let t_kernel_score = best_of(REPS, || {
        scoring::score_layer(&layer, &act, &coeffs);
    });
    let t_scalar_score = best_of(REPS, || {
        reference::score_layer(&layer, &act, &coeffs);
    });

    // ---- memory: the kernel path allocates no more than the scalar ----
    let m_kernel = peak_of(3, || {
        scoring::layer_pool(&layer, &act, &coeffs, pool_size, &[]).expect("pool");
    });
    let m_scalar = peak_of(3, || {
        reference::layer_pool(&layer, &act, &coeffs, pool_size, &[]).expect("pool");
    });

    let cells = layer.len() as f64;
    let pool_ratio = t_scalar_pool.as_secs_f64() / t_kernel_pool.as_secs_f64();
    let score_ratio = t_scalar_score.as_secs_f64() / t_kernel_score.as_secs_f64();
    println!(
        "\ntiming layer: {}x{} INT8, {} outlier rows, pool {}",
        layer.in_features(),
        layer.out_features(),
        layer.outlier_rows().len(),
        pool_size
    );
    println!(
        "{:<34} {:>12} {:>12} {:>9}",
        "path", "scalar", "kernel", "speedup"
    );
    println!(
        "{:<34} {:>9.2} ms {:>9.2} ms {:>8.1}x",
        "layer_pool (score + top-k)",
        t_scalar_pool.as_secs_f64() * 1e3,
        t_kernel_pool.as_secs_f64() * 1e3,
        pool_ratio
    );
    println!(
        "{:<34} {:>9.2} ms {:>9.2} ms {:>8.1}x",
        "score_layer (all cells)",
        t_scalar_score.as_secs_f64() * 1e3,
        t_kernel_score.as_secs_f64() * 1e3,
        score_ratio
    );
    println!(
        "throughput: {:.0} Mcell/s scalar -> {:.0} Mcell/s kernel (pool path)",
        cells / t_scalar_pool.as_secs_f64() / 1e6,
        cells / t_kernel_pool.as_secs_f64() / 1e6
    );
    println!(
        "peak heap: scalar {}, kernel {}",
        alloc::fmt_bytes(m_scalar),
        alloc::fmt_bytes(m_kernel)
    );

    assert!(
        pool_ratio >= 3.0,
        "kernel layer_pool must be at least 3x the scalar baseline \
         (got {pool_ratio:.2}x: scalar {:.2} ms, kernel {:.2} ms)",
        t_scalar_pool.as_secs_f64() * 1e3,
        t_kernel_pool.as_secs_f64() * 1e3
    );
    assert!(
        m_kernel <= m_scalar,
        "kernel path must not allocate more than the scalar path \
         (kernel {m_kernel} B, scalar {m_scalar} B)"
    );

    // ---- telemetry: the instrumented hot loop, off and on ----
    // The hot path carries always-compiled-in telemetry sites
    // (DESIGN.md §13); disabled they cost one relaxed atomic load per
    // call. Gate the *enabled* path at ≤2% over disabled — an upper
    // bound on what instrumentation can cost a run with telemetry off,
    // measured back-to-back so both legs see the same machine state.
    const TELEMETRY_REPS: usize = 15;
    let t_off = best_of(TELEMETRY_REPS, || {
        scoring::layer_pool(&layer, &act, &coeffs, pool_size, &[]).expect("pool");
    });
    Telemetry::set_enabled(true);
    let t_on = best_of(TELEMETRY_REPS, || {
        scoring::layer_pool(&layer, &act, &coeffs, pool_size, &[]).expect("pool");
    });
    Telemetry::set_enabled(false);
    let overhead = t_on.as_secs_f64() / t_off.as_secs_f64() - 1.0;
    println!(
        "telemetry: layer_pool {:.3} ms off, {:.3} ms on ({:+.2}% overhead)",
        t_off.as_secs_f64() * 1e3,
        t_on.as_secs_f64() * 1e3,
        overhead * 1e2
    );
    if let Some(peak) = peak_resident_mib() {
        println!("peak resident memory: {peak:.1} MiB");
    }
    assert!(
        overhead <= 0.02,
        "telemetry must cost <=2% on the scoring hot loop even when enabled \
         (got {:+.2}%: {:.3} ms off, {:.3} ms on)",
        overhead * 1e2,
        t_off.as_secs_f64() * 1e3,
        t_on.as_secs_f64() * 1e3
    );

    let mut criterion = Criterion::default().sample_size(10).configure_from_args();
    criterion.bench_function("kernels/layer_pool_kernel", |b| {
        b.iter(|| scoring::layer_pool(&layer, &act, &coeffs, pool_size, &[]).expect("pool"))
    });
    criterion.bench_function("kernels/layer_pool_scalar", |b| {
        b.iter(|| reference::layer_pool(&layer, &act, &coeffs, pool_size, &[]).expect("pool"))
    });
    criterion.bench_function("kernels/score_layer_kernel", |b| {
        b.iter(|| scoring::score_layer(&layer, &act, &coeffs))
    });
    criterion.final_summary();
}
