//! **§5.3 Forging Attacks** — counterfeit claims against the deployed
//! model, plus the Eq. 8 chance-match strength the paper quotes
//! (9.09e-13 per layer for 40-bit signatures, 9.09e-13^n for n layers).

use criterion::Criterion;
use emmark_attacks::forging::{
    forge_counterfeit_claim, naive_delta_check, validate_claim, OwnershipClaim,
};
use emmark_bench::{awq_int4, prepare_target, print_header};
use emmark_core::watermark::{OwnerSecrets, WatermarkConfig};
use emmark_tensor::stats::log10_binomial_tail;

fn main() {
    print_header(
        "FORGING (§5.3)",
        "counterfeit claims and chance-match strength",
    );

    // The paper's strength arithmetic, reproduced exactly.
    println!("chance-match strength (Eq. 8):");
    let per_layer_40 = log10_binomial_tail(40, 40);
    println!(
        "  40-bit layer signature: 10^{per_layer_40:.2} = {:.3e} (paper: 9.09e-13)",
        10f64.powf(per_layer_40)
    );
    println!(
        "  OPT-2.7B, n = 192 layers: 10^{:.0} (paper: 9.09e-13^192)",
        per_layer_40 * 192.0
    );

    let prepared = prepare_target();
    let original = awq_int4(&prepared);
    let cfg = WatermarkConfig {
        bits_per_layer: 16,
        pool_ratio: 20,
        ..Default::default()
    };
    let secrets = OwnerSecrets::new(original, prepared.stats.clone(), cfg, 88);
    let deployed = secrets.watermark_for_deployment().expect("insert");
    let mut fp = prepared.fp.clone();

    println!("\nsetting (i): counterfeit locations with a fake signature");
    let forged = forge_counterfeit_claim(&deployed, &prepared.calibration, 16, 0xBAD);
    println!(
        "  naive delta-only check : {:>6.1}% (fooled)",
        naive_delta_check(&forged, &deployed)
    );
    let verdict = validate_claim(&forged, &deployed, None, &prepared.calibration, 90.0);
    println!(
        "  full validation        : stats_reproducible={}, locations_reproducible={}, accepted={}",
        verdict.stats_reproducible, verdict.locations_reproducible, verdict.accepted
    );
    assert!(!verdict.accepted, "forged claim must be rejected");

    println!("\nthe owner's claim under the identical protocol:");
    let owner_claim = OwnershipClaim::from_secrets(&secrets).expect("claim");
    let owner = validate_claim(
        &owner_claim,
        &deployed,
        Some(&mut fp),
        &prepared.calibration,
        90.0,
    );
    println!(
        "  WER at reproduced locations {:.1}%, accepted={}",
        owner.wer_at_reproduced_locations, owner.accepted
    );
    assert!(owner.accepted, "owner's claim must be accepted");

    // Criterion: cost of full claim validation (the verifier's job).
    let mut criterion = Criterion::default().sample_size(10).configure_from_args();
    criterion.bench_function("forging/validate_owner_claim", |b| {
        b.iter(|| {
            let mut fp_local = prepared.fp.clone();
            validate_claim(
                &owner_claim,
                &deployed,
                Some(&mut fp_local),
                &prepared.calibration,
                90.0,
            )
        })
    });
    criterion.final_summary();
}
