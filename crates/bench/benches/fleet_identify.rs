//! **Leak identification at registry scale** — the million-device
//! question: given a leaked model and a registry of N fingerprinted
//! devices, which device leaked it? The linear scan scores every
//! registered device (Eq. 6 extraction × N); the indexed path reads the
//! suspect once at the shared fingerprint-pool cells, counts exact
//! per-device matched bits through the EMFM manifest's inverted index,
//! and runs the full extraction only on devices whose counts clear the
//! Eq. 8 threshold — typically one of N.
//!
//! Gates: verdicts (device *and* report) bit-identical on every
//! suspect, and the indexed path ≥20x faster than the linear scan at
//! 10^5 devices.

use criterion::Criterion;
use emmark_bench::print_header;
use emmark_core::fleet::FleetVerifier;
use emmark_core::provision::FleetProvisioner;
use emmark_core::registry::{
    decode_manifest, encode_manifest, load_sharded_registry, provision_sharded, LeakIndex,
};
use emmark_core::watermark::{GridSource, OwnerSecrets, WatermarkConfig};
use emmark_nanolm::config::ModelConfig;
use emmark_nanolm::TransformerModel;
use emmark_quant::awq::{awq, AwqConfig};
use std::time::Instant;

fn device_count() -> usize {
    std::env::var("EMMARK_FLEET_DEVICES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(100_000)
}

fn provisioner() -> FleetProvisioner {
    let mut cfg = ModelConfig::tiny_test();
    cfg.d_model = 32;
    cfg.d_ff = 96;
    let mut model = TransformerModel::new(cfg);
    let calib: Vec<Vec<u32>> = (0..8u32)
        .map(|s| (0..24u32).map(|i| (i * 7 + s * 5) % 31).collect())
        .collect();
    let stats = model.collect_activation_stats(&calib);
    let quantized = awq(&model, &stats, &AwqConfig::default());
    let base_cfg = WatermarkConfig {
        bits_per_layer: 8,
        pool_ratio: 20,
        ..Default::default()
    };
    let base = OwnerSecrets::new(quantized, stats, base_cfg, 0xF1EE7);
    let fp_cfg = WatermarkConfig {
        bits_per_layer: 3,
        pool_ratio: 10,
        selection_seed: 0xDE11CE,
        ..Default::default()
    };
    FleetProvisioner::new(base, fp_cfg).expect("provisioner")
}

/// Identify through whichever path, reduced to a comparable verdict.
fn identify<S: GridSource>(
    verifier: &FleetVerifier,
    index: Option<&LeakIndex>,
    suspect: &S,
    threshold: f64,
) -> Option<(String, usize, usize)> {
    match index {
        Some(ix) => verifier.identify_leak_indexed(ix, suspect, threshold),
        None => verifier.identify_leak(suspect, threshold),
    }
    .expect("identify")
    .map(|(d, r)| (d.device_id.clone(), r.matched_bits, r.total_bits))
}

fn main() {
    let n = device_count();
    print_header(
        "IDENTIFY",
        &format!("leak identification over {n} registered devices, indexed vs linear"),
    );

    let p = provisioner();
    let ids: Vec<String> = (0..n).map(|i| format!("edge-{i:06}")).collect();
    let start = Instant::now();
    let fleet = provision_sharded(&p, &ids, 16, None).expect("provision");
    let provision_time = start.elapsed();
    let shard_bytes: usize = fleet.shards.iter().map(|(_, b)| b.len()).sum();

    // The manifest codec at scale: the index round-trips through the
    // EMFM wire format, so the benched index is the *persisted* one.
    let start = Instant::now();
    let manifest_bytes = encode_manifest(&fleet.manifest);
    let encode_time = start.elapsed();
    let start = Instant::now();
    let manifest = decode_manifest(&manifest_bytes).expect("decode");
    let decode_time = start.elapsed();
    assert_eq!(manifest, fleet.manifest, "manifest round-trip");
    let index = manifest.index;
    println!(
        "{n} devices provisioned into {} shards in {:.2} s ({:.1} MiB shards, {:.1} MiB manifest \
         with {} index cells; encode {:.0} ms, decode {:.0} ms)",
        fleet.shards.len(),
        provision_time.as_secs_f64(),
        shard_bytes as f64 / (1024.0 * 1024.0),
        manifest_bytes.len() as f64 / (1024.0 * 1024.0),
        index.cell_count(),
        encode_time.as_secs_f64() * 1e3,
        decode_time.as_secs_f64() * 1e3,
    );

    // Reload the registry from its wire form — the linear baseline and
    // the indexed path both run over the *loaded* fleet.
    let start = Instant::now();
    let registry = load_sharded_registry(&manifest_bytes, |name| {
        fleet
            .shards
            .iter()
            .find(|(sn, _)| sn == name)
            .map(|(_, b)| b.to_vec())
            .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::NotFound, name.to_string()))
    })
    .expect("load");
    let load_time = start.elapsed();
    let verifier = p.verifier(registry.devices().to_vec());
    println!(
        "registry reloaded from shards in {:.2} s ({} devices)",
        load_time.as_secs_f64(),
        registry.devices().len()
    );

    // Suspects: an honest leak from the middle of the registry, and a
    // base-only near miss (ownership watermark, no fingerprint).
    let leak_id = &ids[n / 2];
    let leaked = p.provision_model(leak_id).1;
    let base_only = p.base_deployed().clone();

    // Bit-identical verdicts on both suspects at both thresholds. At
    // 10^-40 the tiny fingerprint cannot clear the bar, so both paths
    // must agree on None; attribution is asserted at the ordinary bar.
    for &t in &[-6.0, -40.0] {
        let linear = identify(&verifier, None, &leaked, t);
        let indexed = identify(&verifier, Some(&index), &leaked, t);
        assert_eq!(indexed, linear, "leak verdicts diverged at 10^{t}");
        if t == -6.0 {
            assert_eq!(
                indexed.as_ref().map(|(d, _, _)| d.as_str()),
                Some(leak_id.as_str()),
                "misattributed at 10^{t}"
            );
        }
        let linear = identify(&verifier, None, &base_only, t);
        let indexed = identify(&verifier, Some(&index), &base_only, t);
        assert_eq!(indexed, linear, "near-miss verdicts diverged at 10^{t}");
        assert_eq!(indexed, None, "base-only suspect must not be traced");
    }

    // Timed passes. The linear scan is O(N) extractions; a handful of
    // iterations is plenty. The indexed path is sublinear; average a
    // larger batch.
    let linear_iters = 3;
    let start = Instant::now();
    for _ in 0..linear_iters {
        criterion::black_box(identify(&verifier, None, &leaked, -6.0));
    }
    let linear_time = start.elapsed() / linear_iters;

    let indexed_iters = 50;
    let start = Instant::now();
    for _ in 0..indexed_iters {
        criterion::black_box(identify(&verifier, Some(&index), &leaked, -6.0));
    }
    let indexed_time = start.elapsed() / indexed_iters;

    let speedup = linear_time.as_secs_f64() / indexed_time.as_secs_f64();
    println!("\n{:<52} {:>12}", "path", "per identify");
    println!(
        "{:<52} {:>9.2} ms",
        format!("linear scan ({n} devices scored)"),
        linear_time.as_secs_f64() * 1e3
    );
    println!(
        "{:<52} {:>9.2} ms",
        format!(
            "indexed ({} cells read, survivors scored)",
            index.cell_count()
        ),
        indexed_time.as_secs_f64() * 1e3
    );
    println!("\nspeedup {speedup:.0}x, verdicts bit-for-bit identical on every suspect");
    assert!(
        speedup >= 20.0,
        "indexed identification must be >=20x faster than the linear scan \
         at {n} devices (got {speedup:.1}x)"
    );

    let mut criterion = Criterion::default().sample_size(10).configure_from_args();
    criterion.bench_function(&format!("identify/indexed_{n}"), |b| {
        b.iter(|| identify(&verifier, Some(&index), &leaked, -6.0))
    });
    criterion.bench_function(&format!("identify/indexed_nearmiss_{n}"), |b| {
        b.iter(|| identify(&verifier, Some(&index), &base_only, -6.0))
    });
    criterion.bench_function("identify/manifest_decode", |b| {
        b.iter(|| decode_manifest(&manifest_bytes).expect("decode"))
    });
    criterion.final_summary();
}
