//! **Figure 2(b)** — re-watermark attack sweep on the Sim-OPT-2.7b
//! AWQ-INT4 target. The adversary runs EmMark's own pipeline with
//! α = 1, β = 1.5, seed 22, and activation statistics measured through
//! the *quantized* model, perturbing 0…300 cells per layer.
//!
//! Paper shape: quality collapses by 300 bits/layer (zero-shot < 20%)
//! while the owner's WER stays above 95%.

use criterion::Criterion;
use emmark_attacks::harness::rewatermark_sweep;
use emmark_attacks::rewatermark::{rewatermark_attack, RewatermarkConfig};
use emmark_bench::{awq_int4, bench_eval_cfg, prepare_target, print_header};
use emmark_core::watermark::{OwnerSecrets, WatermarkConfig};
use emmark_eval::report::evaluate_quality;

fn main() {
    print_header(
        "FIGURE 2(b)",
        "re-watermark attack sweep (adversary: α=1, β=1.5, seed 22)",
    );
    let prepared = prepare_target();
    let original = awq_int4(&prepared);
    let cfg = WatermarkConfig {
        bits_per_layer: 16,
        pool_ratio: 20,
        ..Default::default()
    };
    let secrets = OwnerSecrets::new(original, prepared.stats.clone(), cfg, 66);
    let deployed = secrets.watermark_for_deployment().expect("insert");
    let eval_cfg = bench_eval_cfg();
    let base = evaluate_quality(&deployed, &prepared.corpus, &eval_cfg);
    println!(
        "target {} AWQ-INT4 | deployed PPL {:.2}, acc {:.2}%",
        prepared.spec.name(),
        base.ppl,
        base.zero_shot_acc
    );

    // Adversary's calibration: public test-distribution text.
    let adv_calib: Vec<Vec<u32>> = prepared
        .corpus
        .test
        .chunks(24)
        .take(12)
        .map(|c| c.to_vec())
        .collect();
    let strengths = [0usize, 100, 150, 200, 250, 300];
    let points = rewatermark_sweep(
        &secrets,
        &deployed,
        &prepared.corpus,
        &eval_cfg,
        &strengths,
        &adv_calib,
        &emmark_attacks::rewatermark::RewatermarkConfig::default(),
    );
    println!(
        "\n{:>12} {:>10} {:>18} {:>8}",
        "perturbed", "PPL", "zero-shot acc (%)", "WER (%)"
    );
    for p in &points {
        println!(
            "{:>12} {:>10.2} {:>18.2} {:>8.1}",
            p.strength, p.ppl, p.zero_shot_acc, p.wer
        );
    }
    let last = points.last().expect("sweep non-empty");
    println!(
        "\nshape check: owner WER after strongest re-watermarking: {:.1}%",
        last.wer
    );

    // Criterion: one full attack pass.
    let adv_stats = deployed.collect_activation_stats(&adv_calib);
    let mut criterion = Criterion::default().sample_size(10).configure_from_args();
    criterion.bench_function("fig2b/rewatermark_300_per_layer", |b| {
        b.iter(|| {
            let mut attacked = deployed.clone();
            rewatermark_attack(
                &mut attacked,
                &adv_stats,
                &RewatermarkConfig {
                    per_layer: 300,
                    ..Default::default()
                },
            );
            attacked
        })
    });
    criterion.final_summary();
}
