//! **Table 3** — Effectiveness of the insertion coefficients: (α, β) ∈
//! {(1, 0), (0.5, 0.5), (0, 1)} on the Sim-OPT-2.7b AWQ-INT4 target.
//!
//! Paper result: all three extract 100%; β-only selection drifts toward
//! saliency-channel bits and costs a sliver of quality (14.65 vs 14.61
//! PPL, 61.25 vs 61.36 acc).

use criterion::Criterion;
use emmark_bench::{awq_int4, bench_eval_cfg, prepare_target, print_header};
use emmark_core::scoring::{score_layer, ScoreCoefficients};
use emmark_core::watermark::{OwnerSecrets, WatermarkConfig};
use emmark_eval::report::evaluate_quality;

fn main() {
    print_header("TABLE 3", "effect of the (α, β) scoring coefficients");
    let prepared = prepare_target();
    let original = awq_int4(&prepared);
    let eval_cfg = bench_eval_cfg();
    let base = evaluate_quality(&original, &prepared.corpus, &eval_cfg);
    println!(
        "target {} AWQ-INT4 | unwatermarked PPL {:.2}, acc {:.2}%",
        prepared.spec.name(),
        base.ppl,
        base.zero_shot_acc
    );

    println!(
        "\n{:>12} {:>9} {:>18} {:>8}",
        "(α, β)", "PPL", "zero-shot acc (%)", "WER (%)"
    );
    for (alpha, beta) in [(1.0, 0.0), (0.5, 0.5), (0.0, 1.0)] {
        let cfg = WatermarkConfig {
            alpha,
            beta,
            bits_per_layer: 16,
            pool_ratio: 20,
            ..Default::default()
        };
        let secrets = OwnerSecrets::new(original.clone(), prepared.stats.clone(), cfg, 33);
        let deployed = secrets.watermark_for_deployment().expect("insert");
        let quality = evaluate_quality(&deployed, &prepared.corpus, &eval_cfg);
        let report = secrets.verify(&deployed).expect("extract");
        println!(
            "{:>12} {:>9.2} {:>18.2} {:>8.1}",
            format!("({alpha}, {beta})"),
            quality.ppl,
            quality.zero_shot_acc,
            report.wer()
        );
    }
    println!("\npaper: (1,0) 14.61/61.36/100, (0.5,0.5) 14.61/61.36/100, (0,1) 14.65/61.25/100");

    // Criterion: time the scoring function itself under each setting.
    let mut criterion = Criterion::default().sample_size(10).configure_from_args();
    let layer = &original.layers[0];
    let act = &prepared.stats.per_layer[0].mean_abs;
    for (alpha, beta, tag) in [(1.0, 0.0, "alpha"), (0.5, 0.5, "both"), (0.0, 1.0, "beta")] {
        let coeffs = ScoreCoefficients { alpha, beta };
        criterion.bench_function(&format!("table3/score_layer_{tag}"), |b| {
            b.iter(|| score_layer(layer, act, &coeffs))
        });
    }
    criterion.final_summary();
}
