//! Fleet-scale batch verification — the deployment half of the paper's
//! IP-protection story.
//!
//! A proprietor ships one watermarked model to thousands of edge
//! devices ([`crate::fingerprint`] gives each a traitor-tracing
//! fingerprint on top of the shared ownership watermark). Ownership
//! disputes and leak tracing then have to run against the *whole fleet*:
//! many suspect artifacts, many registered devices. Doing that with the
//! serial [`Fleet`] API repeats two expensive, device-independent
//! computations per check — reproducing the ownership locations
//! (score + sort every layer) and rebuilding the base-watermarked
//! reference model.
//!
//! [`FleetVerifier`] hoists everything device-independent into a
//! one-time cache per model family:
//!
//! * the ownership watermark locations,
//! * the base-watermarked reference weights, and
//! * the per-layer fingerprint candidate pools (base-excluded),
//!
//! after which verifying one artifact is pure PRNG sampling plus integer
//! diffs, and a batch of artifacts fans out across a thread pool.
//! Artifacts stream through the [`crate::deploy`] codec: v2 (indexed)
//! artifacts are opened as [`SparseArtifact`]s, so a worker reads only
//! the header and the probed watermark cells — per-artifact work scales
//! with watermark length, not parameter count. v1 artifacts fall back
//! to a full decode; either way the suspect lives only for the duration
//! of the call and no model is ever cloned.
//!
//! Cached and uncached paths are bit-for-bit identical; the test suite
//! and `tests/fleet_engine.rs` pin that equivalence.

use crate::deploy::{
    artifact_version, decode_model, CodecError, Section, SparseArtifact, FORMAT_V2,
};
use crate::fingerprint::{derive_device, sample_from_pools, DeviceFingerprint, FamilyCache, Fleet};
use crate::signature::Signature;
use crate::telemetry::{self, Telemetry};
use crate::watermark::{
    check_same_grid, extract_with_locations, ExtractionReport, GridSource, Locations, OwnerSecrets,
    ProofCutoff, WatermarkConfig, WatermarkError,
};
use bytes::{BufMut, Bytes, BytesMut};
use emmark_quant::QuantizedModel;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Errors of fleet verification: a suspect artifact that fails to
/// decode, or watermark extraction failing on the decoded model.
#[derive(Debug, Clone, PartialEq)]
pub enum FleetError {
    /// The artifact bytes are not a valid deploy-codec model.
    Codec(CodecError),
    /// Extraction failed (shape mismatch, pool shortage, …).
    Watermark(WatermarkError),
}

impl std::fmt::Display for FleetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FleetError::Codec(e) => write!(f, "artifact decode failed: {e}"),
            FleetError::Watermark(e) => write!(f, "verification failed: {e}"),
        }
    }
}

impl std::error::Error for FleetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FleetError::Codec(e) => Some(e),
            FleetError::Watermark(e) => Some(e),
        }
    }
}

impl From<CodecError> for FleetError {
    fn from(e: CodecError) -> Self {
        FleetError::Codec(e)
    }
}

impl From<WatermarkError> for FleetError {
    fn from(e: WatermarkError) -> Self {
        FleetError::Watermark(e)
    }
}

/// Per-device verdicts of a streamed bundle verification, in bundle
/// order: `(device id, verdict)`.
pub type BundleVerdicts = Vec<(String, Result<FleetVerdict, FleetError>)>;

/// Outcome of verifying one suspect artifact against the fleet.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetVerdict {
    /// Ownership watermark extraction (Eqs. 6–8) against the base
    /// secrets.
    pub ownership: ExtractionReport,
    /// The traced device and its fingerprint report, when one clears
    /// the significance threshold.
    pub attribution: Option<(DeviceFingerprint, ExtractionReport)>,
}

impl FleetVerdict {
    /// Whether the ownership watermark clears `log10_threshold`.
    pub fn proves_ownership(&self, log10_threshold: f64) -> bool {
        self.ownership.proves_ownership(log10_threshold)
    }
}

/// Batch verification engine over a registry of device fingerprints.
///
/// Construction pays the device-independent costs once (ownership
/// locations, base-watermarked reference, fingerprint candidate pools,
/// per-device signatures and locations); every verification afterwards
/// is read-only, so batches parallelize freely.
#[derive(Debug, Clone)]
pub struct FleetVerifier {
    base: OwnerSecrets,
    fingerprint_config: WatermarkConfig,
    devices: Vec<DeviceFingerprint>,
    /// Cached ownership watermark locations (Eq. 2–4 scoring, once).
    base_locations: Locations,
    /// Cached base-watermarked reference weights (fingerprint diffs are
    /// taken against this shared state).
    base_deployed: QuantizedModel,
    /// Cached per-layer fingerprint candidate pools, base-excluded.
    pools: Vec<Vec<usize>>,
    /// Per registered device: its signature and sampled locations.
    device_material: Vec<(Signature, Locations)>,
}

impl FleetVerifier {
    /// Builds the engine from a serial [`Fleet`] (same registry, same
    /// verdicts, cached hot path).
    ///
    /// # Errors
    ///
    /// Propagates location-reproduction errors.
    pub fn new(fleet: &Fleet) -> Result<Self, WatermarkError> {
        Self::from_parts(
            fleet.base.clone(),
            fleet.fingerprint_config,
            fleet.devices().to_vec(),
        )
    }

    /// Builds the engine from raw parts — typically secrets loaded from
    /// the vault plus a registry loaded with [`decode_registry`].
    ///
    /// # Errors
    ///
    /// Rejects an inconsistent secret bundle
    /// ([`WatermarkError::SignatureLength`], [`WatermarkError::InvalidConfig`])
    /// and propagates location-reproduction errors.
    pub fn from_parts(
        base: OwnerSecrets,
        fingerprint_config: WatermarkConfig,
        devices: Vec<DeviceFingerprint>,
    ) -> Result<Self, WatermarkError> {
        let cache = FamilyCache::build(&base, &fingerprint_config)?;
        Ok(Self::from_cache(base, fingerprint_config, devices, cache))
    }

    /// Builds the engine around an already-derived [`FamilyCache`] —
    /// the provision→verify flow ([`crate::provision::FleetProvisioner`])
    /// reuses its cache here instead of paying the Eqs. 2–4 scoring a
    /// second time.
    pub(crate) fn from_cache(
        base: OwnerSecrets,
        fingerprint_config: WatermarkConfig,
        devices: Vec<DeviceFingerprint>,
        cache: FamilyCache,
    ) -> Self {
        let FamilyCache {
            base_locations,
            base_deployed,
            pools,
        } = cache;
        let n = base_deployed.layer_count();
        let device_material = devices
            .iter()
            .map(|d| {
                let sig =
                    Signature::generate(fingerprint_config.signature_len(n), d.signature_seed);
                let locs = sample_from_pools(&pools, &fingerprint_config, d.selection_seed);
                (sig, locs)
            })
            .collect();
        Self {
            base,
            fingerprint_config,
            devices,
            base_locations,
            base_deployed,
            pools,
            device_material,
        }
    }

    /// The registered devices, in registration order.
    pub fn devices(&self) -> &[DeviceFingerprint] {
        &self.devices
    }

    /// The fingerprint parameters the registry was provisioned with.
    pub fn fingerprint_config(&self) -> &WatermarkConfig {
        &self.fingerprint_config
    }

    /// Ownership watermark extraction against the cached locations —
    /// bit-for-bit the report [`OwnerSecrets::verify`] produces. The
    /// suspect is any [`GridSource`] (decoded model or sparse artifact).
    ///
    /// # Errors
    ///
    /// Returns [`WatermarkError::ShapeMismatch`] on a foreign layer grid.
    pub fn ownership_report<S: GridSource + ?Sized>(
        &self,
        suspect: &S,
    ) -> Result<ExtractionReport, WatermarkError> {
        let _span = telemetry::Span::enter(&telemetry::FLEET_VERIFY_NS);
        if Telemetry::enabled() {
            telemetry::FLEET_REPORTS.incr();
        }
        extract_with_locations(
            suspect,
            &self.base.original,
            &self.base_locations,
            &self.base.signature,
        )
    }

    /// Fingerprint extraction for one device — bit-for-bit the report
    /// [`Fleet::device_report`] produces, using the cached pools instead
    /// of re-scoring every layer.
    ///
    /// # Errors
    ///
    /// Returns [`WatermarkError::ShapeMismatch`] on a foreign layer grid.
    pub fn device_report<S: GridSource + ?Sized>(
        &self,
        device: &DeviceFingerprint,
        leaked: &S,
    ) -> Result<ExtractionReport, WatermarkError> {
        let _span = telemetry::Span::enter(&telemetry::FLEET_VERIFY_NS);
        if Telemetry::enabled() {
            telemetry::FLEET_REPORTS.incr();
        }
        match self.devices.iter().position(|d| d == device) {
            Some(i) => {
                let (sig, locs) = &self.device_material[i];
                extract_with_locations(leaked, &self.base_deployed, locs, sig)
            }
            None => {
                // Unregistered fingerprint: derive its material on the
                // fly from the shared pools.
                let n = self.base_deployed.layer_count();
                let sig = Signature::generate(
                    self.fingerprint_config.signature_len(n),
                    device.signature_seed,
                );
                let locs =
                    sample_from_pools(&self.pools, &self.fingerprint_config, device.selection_seed);
                extract_with_locations(leaked, &self.base_deployed, &locs, &sig)
            }
        }
    }

    /// Traces a leaked model to the registered device whose fingerprint
    /// clears `log10_threshold` with the best margin — the cached
    /// counterpart of [`Fleet::identify_leak`].
    ///
    /// # Errors
    ///
    /// Propagates extraction errors.
    pub fn identify_leak<S: GridSource + ?Sized>(
        &self,
        leaked: &S,
        log10_threshold: f64,
    ) -> Result<Option<(&DeviceFingerprint, ExtractionReport)>, WatermarkError> {
        let span = telemetry::Span::enter(&telemetry::IDENTIFY_NS);
        let mut best: Option<(&DeviceFingerprint, ExtractionReport)> = None;
        // The clearing threshold as a match count, converted once (every
        // device report has the same signature length); non-clearing
        // devices — almost all of them — then cost an integer compare
        // instead of a binomial tail.
        let mut cutoff = ProofCutoff::new(log10_threshold);
        for (device, (sig, locs)) in self.devices.iter().zip(&self.device_material) {
            let report = extract_with_locations(leaked, &self.base_deployed, locs, sig)?;
            if !cutoff.clears(&report) {
                continue;
            }
            let better = match &best {
                None => true,
                Some((_, b)) => report.log10_p_chance() < b.log10_p_chance(),
            };
            if better {
                best = Some((device, report));
            }
        }
        if Telemetry::enabled() {
            // The linear scan extracts against every registered device —
            // candidates == devices is the pruning baseline the indexed
            // path is measured against.
            telemetry::IDENTIFY_DEVICES.add(self.devices.len() as u64);
            telemetry::IDENTIFY_CANDIDATES.add(self.devices.len() as u64);
        }
        drop(span);
        Ok(best)
    }

    /// Traces a leaked model through a fingerprint-cell inverted index
    /// ([`crate::registry::LeakIndex`]) instead of scoring every
    /// registered device: the suspect's deltas at the index's cells are
    /// read once, bucket lookups count exact per-device matched bits,
    /// and only the devices whose counts clear the [`ProofCutoff`] —
    /// typically zero or one of N — get the full Eq. 8 extraction.
    /// Verdicts (device *and* report, matched-bit counts included) are
    /// bit-identical to [`Self::identify_leak`]; the index only narrows,
    /// Eq. 8 decides.
    ///
    /// # Errors
    ///
    /// Returns [`WatermarkError::ShapeMismatch`] on a foreign layer grid
    /// (exactly when the linear scan would), and
    /// [`WatermarkError::InvalidConfig`] if the index was built over a
    /// different device population than this registry.
    pub fn identify_leak_indexed<S: GridSource + ?Sized>(
        &self,
        index: &crate::registry::LeakIndex,
        leaked: &S,
        log10_threshold: f64,
    ) -> Result<Option<(&DeviceFingerprint, ExtractionReport)>, WatermarkError> {
        if index.device_count() != self.devices.len() {
            return Err(WatermarkError::InvalidConfig(format!(
                "leak index covers {} devices, registry has {}",
                index.device_count(),
                self.devices.len()
            )));
        }
        if self.devices.is_empty() {
            // The linear scan never touches the suspect with an empty
            // registry; neither may the index path.
            return Ok(None);
        }
        check_same_grid(leaked, &self.base_deployed)?;
        // A hand-edited manifest could name cells outside the grid;
        // reject it up front instead of panicking mid-count.
        if let Some((l, f)) = index.cell_out_of_bounds(&self.base_deployed) {
            return Err(WatermarkError::InvalidConfig(format!(
                "leak index references cell (layer {l}, flat {f}) outside the registry's layer grid"
            )));
        }
        let mut cutoff = ProofCutoff::new(log10_threshold);
        let n = self.base_deployed.layer_count();
        let total_bits = self.fingerprint_config.signature_len(n);
        let Some(min_matched) = cutoff.min_matched(total_bits) else {
            // Even a perfect fingerprint match cannot clear the
            // threshold — the linear scan skips every device.
            return Ok(None);
        };
        let span = telemetry::Span::enter(&telemetry::IDENTIFY_NS);
        let mut best: Option<(&DeviceFingerprint, ExtractionReport)> = None;
        let mut candidates = 0u64;
        // Candidates come back in registration order, so tie-breaking
        // (strictly-better wins, first registration kept) matches the
        // linear scan exactly.
        for d in index.candidates(leaked, &self.base_deployed, min_matched) {
            candidates += 1;
            let (sig, locs) = &self.device_material[d];
            let report = extract_with_locations(leaked, &self.base_deployed, locs, sig)?;
            if !cutoff.clears(&report) {
                continue;
            }
            let better = match &best {
                None => true,
                Some((_, b)) => report.log10_p_chance() < b.log10_p_chance(),
            };
            if better {
                best = Some((&self.devices[d], report));
            }
        }
        if Telemetry::enabled() {
            telemetry::IDENTIFY_DEVICES.add(self.devices.len() as u64);
            telemetry::IDENTIFY_CANDIDATES.add(candidates);
        }
        drop(span);
        Ok(best)
    }

    /// The fingerprint-cell inverted index over this registry's device
    /// material — what sharded provisioning persists into the EMFM
    /// manifest ([`crate::registry`]) and
    /// [`Self::identify_leak_indexed`] consumes.
    pub fn leak_index(&self) -> crate::registry::LeakIndex {
        crate::registry::LeakIndex::from_material(
            self.devices.len(),
            self.base_deployed.layer_count(),
            self.device_material.iter(),
        )
    }

    /// Full verdict for one decoded suspect: ownership proof plus leak
    /// attribution at `log10_threshold`.
    ///
    /// # Errors
    ///
    /// Propagates extraction errors.
    pub fn verify_model<S: GridSource + ?Sized>(
        &self,
        suspect: &S,
        log10_threshold: f64,
    ) -> Result<FleetVerdict, WatermarkError> {
        let ownership = self.ownership_report(suspect)?;
        let attribution = self
            .identify_leak(suspect, log10_threshold)?
            .map(|(d, r)| (d.clone(), r));
        Ok(FleetVerdict {
            ownership,
            attribution,
        })
    }

    /// Verifies one deploy-codec artifact. v2 artifacts take the sparse
    /// random-access path: only the header and the probed watermark
    /// cells are read, so per-artifact work scales with watermark
    /// length, not parameter count. v1 artifacts fall back to a full
    /// decode (compatibility shim). Both paths produce bit-identical
    /// verdicts.
    ///
    /// # Errors
    ///
    /// Returns [`FleetError::Codec`] for malformed bytes, otherwise
    /// propagates extraction errors.
    pub fn verify_artifact(
        &self,
        artifact: &[u8],
        log10_threshold: f64,
    ) -> Result<FleetVerdict, FleetError> {
        if artifact_version(artifact)? == FORMAT_V2 {
            let sparse = SparseArtifact::open(artifact)?;
            Ok(self.verify_model(&sparse, log10_threshold)?)
        } else {
            let suspect = decode_model(artifact)?;
            Ok(self.verify_model(&suspect, log10_threshold)?)
        }
    }

    /// Verifies a batch of deploy-codec artifacts in parallel on `jobs`
    /// worker threads (`None` = one per available core). Output order
    /// matches input order, and every verdict is bit-for-bit what
    /// [`Self::verify_artifact`] returns serially.
    pub fn verify_batch<A: AsRef<[u8]> + Sync>(
        &self,
        artifacts: &[A],
        log10_threshold: f64,
        jobs: Option<usize>,
    ) -> Vec<Result<FleetVerdict, FleetError>> {
        par_map(artifacts, jobs, |a| {
            self.verify_artifact(a.as_ref(), log10_threshold)
        })
    }

    /// Verifies every device artifact of an EMFB bundle *stream* —
    /// entries are pulled off the reader in rings of at most
    /// `max_resident` artifacts, each ring verified in parallel like
    /// [`Self::verify_batch`], then dropped before the next is read.
    /// Peak memory is O(`max_resident` × artifact), independent of
    /// fleet size; verdicts are bit-identical to decoding the whole
    /// bundle and batch-verifying it.
    ///
    /// Returns `(device id, verdict)` pairs in bundle order.
    ///
    /// # Errors
    ///
    /// Returns the stream's codec/I/O error if the bundle itself is
    /// unreadable (a broken entry makes everything after it garbage);
    /// per-artifact verification failures stay inside the verdict list.
    pub fn verify_bundle_stream<R: std::io::Read>(
        &self,
        stream: &mut crate::vault::FleetBundleStream<R>,
        log10_threshold: f64,
        jobs: Option<usize>,
        max_resident: usize,
    ) -> Result<BundleVerdicts, crate::store::StoreError> {
        let ring = max_resident.max(1);
        let mut out = Vec::new();
        loop {
            let mut ids = Vec::with_capacity(ring);
            let mut artifacts = Vec::with_capacity(ring);
            for entry in stream.by_ref().take(ring) {
                let device = entry?;
                ids.push(device.fingerprint.device_id);
                artifacts.push(device.artifact);
            }
            if artifacts.is_empty() {
                return Ok(out);
            }
            let verdicts = self.verify_batch(&artifacts, log10_threshold, jobs);
            out.extend(ids.into_iter().zip(verdicts));
        }
    }
}

/// Derives the registry entry [`Fleet::provision`] would create for a
/// device id under this fingerprint config, without inserting anything.
pub fn registry_entry(fingerprint_config: &WatermarkConfig, device_id: &str) -> DeviceFingerprint {
    derive_device(fingerprint_config, device_id)
}

/// Order-preserving parallel map over a slice: a work queue drained by
/// `jobs` scoped threads (`None` = one per available core; the offline
/// stand-in for `rayon`'s `par_iter`, see DESIGN.md §6). Shared by
/// batch verification and batch provisioning ([`crate::provision`]),
/// so the two engines' threading policy cannot drift apart.
pub(crate) fn par_map<T, U, F>(items: &[T], jobs: Option<usize>, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    let jobs = jobs.unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    });
    let jobs = jobs.clamp(1, items.len().max(1));
    if jobs == 1 {
        return items.iter().map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let collected: Mutex<Vec<(usize, U)>> = Mutex::new(Vec::with_capacity(items.len()));
    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| {
                let mut local = Vec::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(item) = items.get(i) else { break };
                    local.push((i, f(item)));
                }
                collected
                    .lock()
                    .expect("fleet worker panicked")
                    .extend(local);
            });
        }
    });
    let mut indexed = collected.into_inner().expect("fleet worker panicked");
    indexed.sort_unstable_by_key(|&(i, _)| i);
    indexed.into_iter().map(|(_, u)| u).collect()
}

pub(crate) const REGISTRY_MAGIC: &[u8; 4] = b"EMFR";
pub(crate) const REGISTRY_VERSION: u32 = 1;

/// Reads the shared fingerprint-parameter header of the registry and
/// fleet-bundle codecs: format version (checked against `expected`),
/// then a validated [`WatermarkConfig`]. The magic word has already
/// been consumed by the caller (it differs between the two).
pub(crate) fn read_config_header(
    r: &mut crate::deploy::Reader,
    expected_version: u32,
) -> Result<WatermarkConfig, CodecError> {
    let version = r.u32("format version")?;
    if version != expected_version {
        return Err(CodecError::BadVersion(version));
    }
    let config = r.watermark_config()?;
    config
        .validate()
        .map_err(|e| r.corrupt(format!("fingerprint config: {e}")))?;
    Ok(config)
}

/// Reads one device entry (id + seeds) in the wire layout shared by the
/// registry and the fleet bundle, blaming [`Section::Device`] `i` —
/// the same per-item error context the deploy codec gives layers.
pub(crate) fn read_device_entry(
    r: &mut crate::deploy::Reader,
    i: usize,
) -> Result<DeviceFingerprint, CodecError> {
    r.enter(Section::Device(i));
    let device_id = r.string("device id")?;
    Ok(DeviceFingerprint {
        device_id,
        selection_seed: r.u64("device selection seed")?,
        signature_seed: r.u64("device signature seed")?,
    })
}

/// Serializes a fleet registry: the fingerprint parameters plus every
/// registered device, in the same versioned little-endian style as the
/// deploy codec.
pub fn encode_registry(
    fingerprint_config: &WatermarkConfig,
    devices: &[DeviceFingerprint],
) -> Bytes {
    let mut buf = BytesMut::with_capacity(64 + devices.len() * 48);
    buf.put_slice(REGISTRY_MAGIC);
    buf.put_u32_le(REGISTRY_VERSION);
    crate::deploy::put_watermark_config(&mut buf, fingerprint_config);
    buf.put_u32_le(devices.len() as u32);
    for d in devices {
        buf.put_u32_le(d.device_id.len() as u32);
        buf.put_slice(d.device_id.as_bytes());
        buf.put_u64_le(d.selection_seed);
        buf.put_u64_le(d.signature_seed);
    }
    buf.freeze()
}

/// Deserializes a fleet registry written by [`encode_registry`].
///
/// # Errors
///
/// Returns a [`CodecError`] on malformed input.
pub fn decode_registry(
    bytes: &[u8],
) -> Result<(WatermarkConfig, Vec<DeviceFingerprint>), CodecError> {
    let mut r = crate::deploy::Reader::new(bytes, Section::Registry);
    r.magic(REGISTRY_MAGIC)?;
    let config = read_config_header(&mut r, REGISTRY_VERSION)?;
    let count = r.u32("device count")? as usize;
    // Each entry is at least 20 bytes (id length + two seeds); bound the
    // allocation by the bytes actually present before trusting `count`.
    r.need(count.saturating_mul(20), "device entries")?;
    let mut devices = Vec::with_capacity(count);
    for i in 0..count {
        devices.push(read_device_entry(&mut r, i)?);
    }
    Ok((config, devices))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deploy::encode_model;
    use emmark_nanolm::config::ModelConfig;
    use emmark_nanolm::TransformerModel;
    use emmark_quant::awq::{awq, AwqConfig};

    fn fleet_with_devices(ids: &[&str]) -> (Fleet, Vec<Vec<u8>>) {
        let mut model = TransformerModel::new(ModelConfig::tiny_test());
        let calib: Vec<Vec<u32>> = (0..4u32)
            .map(|s| (0..16u32).map(|i| (i * 7 + s) % 31).collect())
            .collect();
        let stats = model.collect_activation_stats(&calib);
        let qm = awq(&model, &stats, &AwqConfig::default());
        let base_cfg = WatermarkConfig {
            bits_per_layer: 4,
            pool_ratio: 10,
            ..Default::default()
        };
        let base = OwnerSecrets::new(qm, stats, base_cfg, 0xF1EE7);
        let fp_cfg = WatermarkConfig {
            bits_per_layer: 3,
            pool_ratio: 10,
            selection_seed: 0xDE11CE,
            ..Default::default()
        };
        let mut fleet = Fleet::new(base, fp_cfg);
        let artifacts = ids
            .iter()
            .map(|id| encode_model(&fleet.provision(id).expect("provision")).to_vec())
            .collect();
        (fleet, artifacts)
    }

    #[test]
    fn cached_ownership_report_matches_owner_secrets_verify() {
        let (fleet, artifacts) = fleet_with_devices(&["a", "b"]);
        let verifier = FleetVerifier::new(&fleet).expect("cache");
        for artifact in &artifacts {
            let suspect = decode_model(artifact).expect("decode");
            let cached = verifier.ownership_report(&suspect).expect("cached");
            let uncached = fleet.base.verify(&suspect).expect("uncached");
            assert_eq!(cached, uncached);
        }
    }

    #[test]
    fn cached_device_reports_match_fleet_device_report() {
        let (fleet, artifacts) = fleet_with_devices(&["a", "b", "c"]);
        let verifier = FleetVerifier::new(&fleet).expect("cache");
        for artifact in &artifacts {
            let leaked = decode_model(artifact).expect("decode");
            for device in fleet.devices() {
                let cached = verifier.device_report(device, &leaked).expect("cached");
                let uncached = fleet.device_report(device, &leaked).expect("uncached");
                assert_eq!(cached, uncached, "device {}", device.device_id);
            }
        }
    }

    #[test]
    fn cached_identification_matches_serial_identification() {
        let (fleet, artifacts) = fleet_with_devices(&["alice", "bob", "carol"]);
        let verifier = FleetVerifier::new(&fleet).expect("cache");
        for (i, artifact) in artifacts.iter().enumerate() {
            let leaked = decode_model(artifact).expect("decode");
            let (cached_dev, cached_rep) = verifier
                .identify_leak(&leaked, -6.0)
                .expect("identify")
                .expect("attributed");
            let (serial_dev, serial_rep) = fleet
                .identify_leak(&leaked, -6.0)
                .expect("identify")
                .expect("attributed");
            assert_eq!(cached_dev, serial_dev, "artifact {i}");
            assert_eq!(cached_rep, serial_rep, "artifact {i}");
        }
    }

    #[test]
    fn unregistered_device_report_falls_back_to_pool_sampling() {
        let (fleet, artifacts) = fleet_with_devices(&["a"]);
        let verifier = FleetVerifier::new(&fleet).expect("cache");
        let leaked = decode_model(&artifacts[0]).expect("decode");
        let stranger = registry_entry(&fleet.fingerprint_config, "never-registered");
        let cached = verifier.device_report(&stranger, &leaked).expect("cached");
        let uncached = fleet.device_report(&stranger, &leaked).expect("uncached");
        assert_eq!(cached, uncached);
        assert!(
            !cached.proves_ownership(-6.0),
            "stranger must not be attributed"
        );
    }

    #[test]
    fn batch_verdicts_are_identical_serial_and_parallel() {
        let ids: Vec<String> = (0..6).map(|i| format!("edge-{i:02}")).collect();
        let id_refs: Vec<&str> = ids.iter().map(String::as_str).collect();
        let (fleet, artifacts) = fleet_with_devices(&id_refs);
        let verifier = FleetVerifier::new(&fleet).expect("cache");
        let serial = verifier.verify_batch(&artifacts, -6.0, Some(1));
        let parallel = verifier.verify_batch(&artifacts, -6.0, Some(4));
        assert_eq!(serial, parallel);
        for (i, verdict) in serial.iter().enumerate() {
            let verdict = verdict.as_ref().expect("verdict");
            assert_eq!(verdict.ownership.wer(), 100.0);
            let (device, _) = verdict.attribution.as_ref().expect("attributed");
            assert_eq!(device.device_id, ids[i]);
        }
    }

    #[test]
    fn v1_and_v2_artifacts_produce_identical_verdicts() {
        // The batch loop reads v2 artifacts sparsely and shims v1
        // through a full decode; verdicts must be bit-for-bit equal.
        let (fleet, v2_artifacts) = fleet_with_devices(&["a", "b", "c"]);
        let verifier = FleetVerifier::new(&fleet).expect("cache");
        let v1_artifacts: Vec<Vec<u8>> = v2_artifacts
            .iter()
            .map(|bytes| {
                crate::deploy::encode_model_v1(&decode_model(bytes).expect("decode")).to_vec()
            })
            .collect();
        let v2_verdicts = verifier.verify_batch(&v2_artifacts, -6.0, Some(1));
        let v1_verdicts = verifier.verify_batch(&v1_artifacts, -6.0, Some(1));
        assert_eq!(v2_verdicts, v1_verdicts);
        for verdict in &v2_verdicts {
            assert_eq!(verdict.as_ref().expect("verdict").ownership.wer(), 100.0);
        }
    }

    #[test]
    fn malformed_artifacts_fail_without_poisoning_the_batch() {
        let (fleet, mut artifacts) = fleet_with_devices(&["a", "b"]);
        artifacts.insert(1, b"NOPE".to_vec());
        let verifier = FleetVerifier::new(&fleet).expect("cache");
        let verdicts = verifier.verify_batch(&artifacts, -6.0, Some(2));
        assert!(verdicts[0].is_ok());
        assert!(matches!(verdicts[1], Err(FleetError::Codec(_))));
        assert!(verdicts[2].is_ok());
        let msg = verdicts[1].as_ref().unwrap_err().to_string();
        assert!(msg.contains("decode"), "unhelpful error: {msg}");
    }

    #[test]
    fn registry_roundtrips_and_rejects_garbage() {
        let (fleet, _) = fleet_with_devices(&["alpha", "beta"]);
        let bytes = encode_registry(&fleet.fingerprint_config, fleet.devices());
        let (cfg, devices) = decode_registry(&bytes).expect("decode");
        assert_eq!(cfg, fleet.fingerprint_config);
        assert_eq!(devices, fleet.devices());
        assert!(matches!(
            decode_registry(b"EMQM1234"),
            Err(CodecError::BadMagic)
        ));
        for cut in [2usize, 10, bytes.len() / 2, bytes.len() - 3] {
            assert!(
                decode_registry(&bytes[..cut]).is_err(),
                "cut {cut} must not decode"
            );
        }
    }

    #[test]
    fn registry_with_invalid_config_is_rejected_not_panicking() {
        let (fleet, _) = fleet_with_devices(&["a"]);
        let mut bad_cfg = fleet.fingerprint_config;
        bad_cfg.pool_ratio = 0;
        let bytes = encode_registry(&bad_cfg, fleet.devices());
        assert!(
            matches!(decode_registry(&bytes), Err(CodecError::Corrupt { .. })),
            "pool_ratio=0 must fail registry decode"
        );
    }

    #[test]
    fn registry_with_huge_device_count_is_truncated_not_oom() {
        let (fleet, _) = fleet_with_devices(&[]);
        let mut bytes = encode_registry(&fleet.fingerprint_config, &[]).to_vec();
        // Overwrite the trailing device-count field with u32::MAX.
        let len = bytes.len();
        bytes[len - 4..].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(
            matches!(decode_registry(&bytes), Err(CodecError::Truncated { .. })),
            "absurd device count must be a codec error, not an allocation"
        );
    }

    #[test]
    fn corrupt_secret_bundle_is_rejected_at_cache_build() {
        let (fleet, _) = fleet_with_devices(&["a"]);
        // Signature length no longer matching bits_per_layer × layers —
        // the serial path errors, so the cached path must too.
        let mut bad = fleet.base.clone();
        bad.signature = crate::signature::Signature::generate(bad.signature.len() + 1, 9);
        let err = FleetVerifier::from_parts(bad, fleet.fingerprint_config, Vec::new())
            .expect_err("must reject");
        assert!(matches!(err, WatermarkError::SignatureLength { .. }));

        let mut bad_fp = fleet.fingerprint_config;
        bad_fp.bits_per_layer = 0;
        let err = FleetVerifier::from_parts(fleet.base.clone(), bad_fp, Vec::new())
            .expect_err("must reject");
        assert!(matches!(err, WatermarkError::InvalidConfig(_)));
    }

    #[test]
    fn par_map_preserves_order_for_any_job_count() {
        let items: Vec<usize> = (0..37).collect();
        for jobs in [Some(1), Some(2), Some(3), Some(8), Some(64), None] {
            let out = par_map(&items, jobs, |&i| i * i);
            assert_eq!(
                out,
                items.iter().map(|&i| i * i).collect::<Vec<_>>(),
                "jobs={jobs:?}"
            );
        }
        assert!(par_map::<usize, usize, _>(&[], Some(4), |&i| i).is_empty());
    }
}
