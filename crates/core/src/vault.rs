//! Serialization of the owner's secret material.
//!
//! §4.1: "The watermark consists of (i) signature sequence B; (ii) the
//! random seed d, the original quantized weight W, full-precision
//! activation A_f, and α, β coefficients for location L reproduction."
//! That bundle *is* the ownership proof — it must survive years of
//! storage bit-exactly. This module gives [`OwnerSecrets`] a versioned
//! binary form built on the same primitives as the deploy codec.

use crate::deploy::{decode_model, encode_model, CodecError};
use crate::signature::Signature;
use crate::watermark::{OwnerSecrets, WatermarkConfig};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use emmark_nanolm::model::{ActivationStats, LayerActivation};

const MAGIC: &[u8; 4] = b"EMWS";
const VERSION: u32 = 1;

/// Serializes the secret bundle.
pub fn encode_secrets(secrets: &OwnerSecrets) -> Bytes {
    let mut buf = BytesMut::with_capacity(1 << 16);
    buf.put_slice(MAGIC);
    buf.put_u32_le(VERSION);
    // Config.
    buf.put_f64_le(secrets.config.alpha);
    buf.put_f64_le(secrets.config.beta);
    buf.put_u32_le(secrets.config.bits_per_layer as u32);
    buf.put_u32_le(secrets.config.pool_ratio as u32);
    buf.put_u64_le(secrets.config.selection_seed);
    // Signature.
    buf.put_u32_le(secrets.signature.len() as u32);
    for &b in secrets.signature.bits() {
        buf.put_i8(b);
    }
    // Activation stats.
    buf.put_u32_le(secrets.stats.per_layer.len() as u32);
    for layer in &secrets.stats.per_layer {
        buf.put_u32_le(layer.mean_abs.len() as u32);
        for &v in &layer.mean_abs {
            buf.put_f32_le(v);
        }
        for &v in &layer.max_abs {
            buf.put_f32_le(v);
        }
    }
    // Original model, embedded via the deploy codec (length-prefixed).
    let model_bytes = encode_model(&secrets.original);
    buf.put_u32_le(model_bytes.len() as u32);
    buf.put_slice(&model_bytes);
    buf.freeze()
}

/// Deserializes a secret bundle.
///
/// # Errors
///
/// Returns a [`CodecError`] on malformed input.
pub fn decode_secrets(bytes: &[u8]) -> Result<OwnerSecrets, CodecError> {
    let mut buf = Bytes::copy_from_slice(bytes);
    if buf.remaining() < 8 {
        return Err(CodecError::Truncated("secrets header"));
    }
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(CodecError::BadMagic);
    }
    let version = buf.get_u32_le();
    if version != VERSION {
        return Err(CodecError::BadVersion(version));
    }
    let need = |buf: &Bytes, n: usize, what: &'static str| -> Result<(), CodecError> {
        if buf.remaining() < n {
            Err(CodecError::Truncated(what))
        } else {
            Ok(())
        }
    };
    need(&buf, 8 + 8 + 4 + 4 + 8, "config")?;
    let alpha = buf.get_f64_le();
    let beta = buf.get_f64_le();
    let bits_per_layer = buf.get_u32_le() as usize;
    let pool_ratio = buf.get_u32_le() as usize;
    let selection_seed = buf.get_u64_le();
    let config = WatermarkConfig {
        alpha,
        beta,
        bits_per_layer,
        pool_ratio,
        selection_seed,
    };

    need(&buf, 4, "signature length")?;
    let sig_len = buf.get_u32_le() as usize;
    need(&buf, sig_len, "signature bits")?;
    let mut bits = Vec::with_capacity(sig_len);
    for _ in 0..sig_len {
        let b = buf.get_i8();
        if b != 1 && b != -1 {
            return Err(CodecError::Corrupt(format!("signature bit {b} is not ±1")));
        }
        bits.push(b);
    }
    let signature = Signature::from_bits(bits);

    need(&buf, 4, "stats layer count")?;
    let n_layers = buf.get_u32_le() as usize;
    let mut per_layer = Vec::with_capacity(n_layers);
    for _ in 0..n_layers {
        need(&buf, 4, "stats channel count")?;
        let channels = buf.get_u32_le() as usize;
        need(&buf, channels * 8, "stats values")?;
        let mean_abs: Vec<f32> = (0..channels).map(|_| buf.get_f32_le()).collect();
        let max_abs: Vec<f32> = (0..channels).map(|_| buf.get_f32_le()).collect();
        per_layer.push(LayerActivation { mean_abs, max_abs });
    }
    let stats = ActivationStats { per_layer };

    need(&buf, 4, "model length")?;
    let model_len = buf.get_u32_le() as usize;
    need(&buf, model_len, "model bytes")?;
    let model_bytes = buf.copy_to_bytes(model_len);
    let original = decode_model(&model_bytes)?;
    if stats.layer_count() != original.layer_count() {
        return Err(CodecError::Corrupt(format!(
            "stats cover {} layers, model has {}",
            stats.layer_count(),
            original.layer_count()
        )));
    }
    Ok(OwnerSecrets {
        original,
        stats,
        signature,
        config,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use emmark_nanolm::config::ModelConfig;
    use emmark_nanolm::TransformerModel;
    use emmark_quant::awq::{awq, AwqConfig};

    fn secrets() -> OwnerSecrets {
        let mut model = TransformerModel::new(ModelConfig::tiny_test());
        let calib = vec![vec![1u32, 2, 3, 4, 5, 6, 7, 8]];
        let stats = model.collect_activation_stats(&calib);
        let qm = awq(&model, &stats, &AwqConfig::default());
        let cfg = WatermarkConfig {
            bits_per_layer: 4,
            pool_ratio: 10,
            ..Default::default()
        };
        OwnerSecrets::new(qm, stats, cfg, 0x5EC2)
    }

    #[test]
    fn vault_roundtrip_preserves_proof_power() {
        let original = secrets();
        let deployed = original.watermark_for_deployment().expect("insert");
        let bytes = encode_secrets(&original);
        let restored = decode_secrets(&bytes).expect("decode");
        // The restored secrets prove ownership of the deployed model
        // exactly as the originals did.
        let report = restored.verify(&deployed).expect("verify");
        assert_eq!(report.wer(), 100.0);
        assert_eq!(restored.signature, original.signature);
        assert_eq!(restored.config, original.config);
        assert_eq!(restored.stats, original.stats);
        assert!(restored.original.same_weights(&original.original));
    }

    #[test]
    fn vault_rejects_garbage() {
        assert!(matches!(
            decode_secrets(b"EMQM1234"),
            Err(CodecError::BadMagic)
        ));
        assert!(matches!(
            decode_secrets(b"EM"),
            Err(CodecError::Truncated(_))
        ));
        let bytes = encode_secrets(&secrets());
        for cut in [10usize, 40, bytes.len() / 2, bytes.len() - 5] {
            assert!(
                decode_secrets(&bytes[..cut]).is_err(),
                "cut at {cut} must not decode"
            );
        }
    }

    #[test]
    fn vault_rejects_corrupted_signature_bits() {
        let bytes = encode_secrets(&secrets()).to_vec();
        // Signature bits start after magic(4)+version(4)+config(32)+len(4).
        let mut corrupted = bytes.clone();
        corrupted[4 + 4 + 32 + 4] = 3; // not ±1
        assert!(matches!(
            decode_secrets(&corrupted),
            Err(CodecError::Corrupt(_))
        ));
    }
}
