//! Serialization of the owner's secret material.
//!
//! §4.1: "The watermark consists of (i) signature sequence B; (ii) the
//! random seed d, the original quantized weight W, full-precision
//! activation A_f, and α, β coefficients for location L reproduction."
//! That bundle *is* the ownership proof — it must survive years of
//! storage bit-exactly. This module gives [`OwnerSecrets`] a versioned
//! binary form built on the same primitives as the deploy codec.
//!
//! The vault version tracks the deploy-codec version of the embedded
//! pristine model: a v1 vault embeds a v1 artifact, a v2 vault a v2
//! (indexed) artifact. Mixed pairings are rejected with
//! [`CodecError::MixedVersion`] instead of a generic decode failure —
//! they only arise from hand-spliced or corrupted vaults.

use crate::deploy::{
    artifact_version, decode_model, encode_model, encode_model_v1, put_watermark_config,
    CodecError, Reader, Section, FORMAT_V1, FORMAT_V2,
};
use crate::fingerprint::DeviceFingerprint;
use crate::fleet::{read_config_header, read_device_entry};
use crate::provision::ProvisionedDevice;
use crate::signature::Signature;
use crate::store::StoreError;
use crate::watermark::{OwnerSecrets, WatermarkConfig};
use bytes::{BufMut, Bytes, BytesMut};
use emmark_nanolm::model::{ActivationStats, LayerActivation};
use std::io::{Read, Write};

const MAGIC: &[u8; 4] = b"EMWS";
/// Current vault version; matches the deploy codec's
/// [`FORMAT_V2`](crate::deploy::FORMAT_V2).
const VERSION: u32 = 2;

fn encode_secrets_with(secrets: &OwnerSecrets, version: u32) -> Bytes {
    let mut buf = BytesMut::with_capacity(1 << 16);
    buf.put_slice(MAGIC);
    buf.put_u32_le(version);
    put_watermark_config(&mut buf, &secrets.config);
    // Signature.
    buf.put_u32_le(secrets.signature.len() as u32);
    for &b in secrets.signature.bits() {
        buf.put_i8(b);
    }
    // Activation stats.
    buf.put_u32_le(secrets.stats.per_layer.len() as u32);
    for layer in &secrets.stats.per_layer {
        buf.put_u32_le(layer.mean_abs.len() as u32);
        for &v in &layer.mean_abs {
            buf.put_f32_le(v);
        }
        for &v in &layer.max_abs {
            buf.put_f32_le(v);
        }
    }
    // Original model, embedded via the deploy codec (length-prefixed),
    // at the matching format version.
    let model_bytes = match version {
        FORMAT_V1 => encode_model_v1(&secrets.original),
        _ => encode_model(&secrets.original),
    };
    buf.put_u32_le(model_bytes.len() as u32);
    buf.put_slice(&model_bytes);
    buf.freeze()
}

/// Serializes the secret bundle (current version: v2, embedding an
/// indexed v2 model artifact).
pub fn encode_secrets(secrets: &OwnerSecrets) -> Bytes {
    encode_secrets_with(secrets, VERSION)
}

/// Serializes the secret bundle in the legacy v1 layout (v1 embedded
/// model). Kept for compatibility testing and for producing vaults that
/// pre-index readers can load; [`decode_secrets`] accepts both, so
/// loading a v1 vault and calling [`encode_secrets`] re-encodes it at
/// the current version.
pub fn encode_secrets_v1(secrets: &OwnerSecrets) -> Bytes {
    encode_secrets_with(secrets, FORMAT_V1)
}

/// Deserializes a secret bundle (v1 or v2).
///
/// # Errors
///
/// Returns a [`CodecError`] on malformed input, including
/// [`CodecError::MixedVersion`] when the vault version and the embedded
/// model's format version disagree.
pub fn decode_secrets(bytes: &[u8]) -> Result<OwnerSecrets, CodecError> {
    let mut r = Reader::new(bytes, Section::Vault);
    r.magic(MAGIC)?;
    let version = r.u32("secrets version")?;
    if version != FORMAT_V1 && version != FORMAT_V2 {
        return Err(CodecError::BadVersion(version));
    }
    let config = r.watermark_config()?;

    let sig_len = r.u32("signature length")? as usize;
    r.need(sig_len, "signature bits")?;
    let mut bits = Vec::with_capacity(sig_len);
    for _ in 0..sig_len {
        let b = r.i8("signature bit")?;
        if b != 1 && b != -1 {
            return Err(r.corrupt(format!("signature bit {b} is not ±1")));
        }
        bits.push(b);
    }
    let signature = Signature::from_bits(bits);

    let n_layers = r.u32("stats layer count")? as usize;
    // Bound the allocation by the bytes actually present (each layer
    // carries at least a channel-count word) before trusting the count.
    r.need(n_layers.saturating_mul(4), "stats layers")?;
    let mut per_layer = Vec::with_capacity(n_layers);
    for _ in 0..n_layers {
        let channels = r.u32("stats channel count")? as usize;
        r.need(channels * 8, "stats values")?;
        let mut mean_abs = Vec::with_capacity(channels);
        for _ in 0..channels {
            mean_abs.push(r.f32("stats mean")?);
        }
        let mut max_abs = Vec::with_capacity(channels);
        for _ in 0..channels {
            max_abs.push(r.f32("stats max")?);
        }
        per_layer.push(LayerActivation { mean_abs, max_abs });
    }
    let stats = ActivationStats { per_layer };

    let model_len = r.u32("model length")? as usize;
    let model_bytes = r.take(model_len, "model bytes")?;
    // A vault must embed an artifact of its own format generation; a
    // mismatch means the vault was spliced or mis-migrated.
    let inner = artifact_version(model_bytes)?;
    if inner != version {
        return Err(CodecError::MixedVersion {
            outer: version,
            inner,
        });
    }
    let original = decode_model(model_bytes)?;
    if stats.layer_count() != original.layer_count() {
        return Err(r.corrupt(format!(
            "stats cover {} layers, model has {}",
            stats.layer_count(),
            original.layer_count()
        )));
    }
    Ok(OwnerSecrets {
        original,
        stats,
        signature,
        config,
    })
}

const FLEET_MAGIC: &[u8; 4] = b"EMFB";

/// A provisioned fleet loaded from a bundle: the fingerprint parameters
/// plus every device's registry entry and v2 artifact.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetBundle {
    /// Fingerprint parameters the fleet was provisioned with.
    pub fingerprint_config: WatermarkConfig,
    /// Registry entry + artifact per device, in provisioning order.
    pub devices: Vec<ProvisionedDevice>,
}

/// Serializes a provisioned fleet in bulk: one vault file holding the
/// fingerprint parameters, every registry entry, and every device
/// artifact — the single-file counterpart of `fleet-provision`'s
/// directory of `.emqm` files plus `fleet.emfr`. Implemented over the
/// streaming [`FleetBundleWriter`] writing into a `Vec`, so the
/// buffered and streaming encoders cannot drift.
///
/// The bundle version tracks the deploy-codec version of the embedded
/// artifacts, like the secrets vault.
///
/// # Panics
///
/// Panics if a device artifact exceeds the u32 length field (4 GiB) —
/// truncating it silently would corrupt every subsequent entry.
pub fn encode_fleet_bundle(
    fingerprint_config: &WatermarkConfig,
    devices: &[ProvisionedDevice],
) -> Bytes {
    let payload: usize = devices.iter().map(|d| d.artifact.len() + 64).sum();
    let mut out = Vec::with_capacity(64 + payload);
    let mut w = FleetBundleWriter::new(&mut out, fingerprint_config, devices.len())
        .expect("writing a bundle header to a Vec cannot fail");
    for d in devices {
        w.append(&d.fingerprint, &d.artifact)
            .expect("device artifact exceeds the bundle's u32 length field");
    }
    w.finish().expect("every declared device was appended");
    Bytes::from(out)
}

/// The streaming EMFB encoder: writes the bundle header up front, then
/// accepts one device at a time — either a resident artifact buffer
/// ([`Self::append`]) or a callback that streams the artifact bytes
/// straight into the output ([`Self::append_streamed`], which fleet
/// provisioning uses to splice delta-patched artifacts in flight).
/// Nothing but the entry currently being written is ever resident.
///
/// Byte-identical to [`encode_fleet_bundle`] by construction (that
/// function is this writer over a `Vec`).
#[derive(Debug)]
pub struct FleetBundleWriter<W: Write> {
    w: W,
    expected: usize,
    appended: usize,
}

impl<W: Write> FleetBundleWriter<W> {
    /// Writes the bundle header (magic, version, fingerprint
    /// parameters, device count). The count is part of the header, so
    /// the fleet size must be known up front; [`Self::finish`] verifies
    /// it was honored.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn new(
        mut w: W,
        fingerprint_config: &WatermarkConfig,
        device_count: usize,
    ) -> Result<Self, StoreError> {
        let mut buf = BytesMut::with_capacity(64);
        buf.put_slice(FLEET_MAGIC);
        buf.put_u32_le(VERSION);
        put_watermark_config(&mut buf, fingerprint_config);
        buf.put_u32_le(device_count as u32);
        w.write_all(&buf).map_err(|e| StoreError::Io {
            what: "writing the bundle header",
            source: e,
        })?;
        Ok(Self {
            w,
            expected: device_count,
            appended: 0,
        })
    }

    /// Appends one device entry with a resident artifact buffer.
    ///
    /// # Errors
    ///
    /// Fails on I/O errors, on appending more devices than declared, or
    /// on an artifact exceeding the u32 length field.
    pub fn append(
        &mut self,
        fingerprint: &DeviceFingerprint,
        artifact: &[u8],
    ) -> Result<(), StoreError> {
        self.append_streamed(fingerprint, artifact.len(), |out| {
            out.write_all(artifact).map_err(|e| StoreError::Io {
                what: "writing an artifact into the bundle",
                source: e,
            })
        })
    }

    /// Appends one device entry whose `artifact_len` bytes are produced
    /// by `fill` writing directly into the bundle output — the
    /// constant-memory path (fleet provisioning splices the device's
    /// delta patches into the base artifact here, never materializing
    /// the device artifact). `fill` must write exactly `artifact_len`
    /// bytes; the writer counts and refuses a short or long entry,
    /// which would corrupt every subsequent one.
    ///
    /// # Errors
    ///
    /// Fails on I/O errors, over-appending, u32 overflow, or a `fill`
    /// that wrote the wrong number of bytes.
    pub fn append_streamed(
        &mut self,
        fingerprint: &DeviceFingerprint,
        artifact_len: usize,
        fill: impl FnOnce(&mut dyn Write) -> Result<(), StoreError>,
    ) -> Result<(), StoreError> {
        let corrupt = |msg: String| {
            StoreError::Codec(CodecError::Corrupt {
                section: Section::Device(self.appended),
                offset: 0,
                msg,
            })
        };
        if self.appended == self.expected {
            return Err(corrupt(format!(
                "bundle declared {} devices; cannot append another",
                self.expected
            )));
        }
        let len_word = u32::try_from(artifact_len)
            .map_err(|_| corrupt("device artifact exceeds the bundle's u32 length field".into()))?;
        let mut head = BytesMut::with_capacity(32 + fingerprint.device_id.len());
        head.put_u32_le(fingerprint.device_id.len() as u32);
        head.put_slice(fingerprint.device_id.as_bytes());
        head.put_u64_le(fingerprint.selection_seed);
        head.put_u64_le(fingerprint.signature_seed);
        head.put_u32_le(len_word);
        self.w.write_all(&head).map_err(|e| StoreError::Io {
            what: "writing a bundle entry header",
            source: e,
        })?;
        let mut counting = CountingWriter {
            inner: &mut self.w,
            written: 0,
        };
        fill(&mut counting)?;
        let written = counting.written;
        if written != artifact_len as u64 {
            return Err(corrupt(format!(
                "entry promised {artifact_len} artifact bytes but {written} were written"
            )));
        }
        self.appended += 1;
        Ok(())
    }

    /// Seals the bundle, verifying every declared device arrived, and
    /// returns the underlying writer.
    ///
    /// # Errors
    ///
    /// Fails if devices are missing or the final flush errors.
    pub fn finish(mut self) -> Result<W, StoreError> {
        if self.appended != self.expected {
            return Err(StoreError::Codec(CodecError::Corrupt {
                section: Section::Bundle,
                offset: 0,
                msg: format!(
                    "bundle declared {} devices but {} were appended",
                    self.expected, self.appended
                ),
            }));
        }
        self.w.flush().map_err(|e| StoreError::Io {
            what: "flushing the bundle",
            source: e,
        })?;
        Ok(self.w)
    }
}

struct CountingWriter<W: Write> {
    inner: W,
    written: u64,
}

impl<W: Write> Write for CountingWriter<W> {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        let n = self.inner.write(buf)?;
        self.written += n as u64;
        Ok(n)
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.inner.flush()
    }
}

/// Fixed byte length of the bundle header: magic, version, fingerprint
/// config, device count.
const BUNDLE_HEADER_BYTES: usize = 4 + 4 + 32 + 4;
/// Fixed bytes of a device entry besides its id string and artifact:
/// id length word, two seeds, artifact length word.
const BUNDLE_ENTRY_FIXED_BYTES: usize = 4 + 8 + 8 + 4;

/// The streaming EMFB decoder: reads the header eagerly, then yields
/// one [`ProvisionedDevice`] per `next()` with only that device's
/// artifact resident — fleet-scale verification walks a bundle of any
/// size at O(largest artifact) memory. Errors carry the same
/// [`Section`] + byte-offset context as the deploy codec
/// ([`Section::Device`] names the failing entry).
///
/// The iterator is fused on error: after a failure, `next()` returns
/// `None` (a broken length word makes everything after it garbage).
#[derive(Debug)]
pub struct FleetBundleStream<R: Read> {
    src: R,
    offset: usize,
    fingerprint_config: WatermarkConfig,
    declared: usize,
    yielded: usize,
    failed: bool,
}

impl<R: Read> FleetBundleStream<R> {
    /// Opens a bundle stream, reading and validating the header.
    ///
    /// # Errors
    ///
    /// Returns the usual codec errors for a malformed header, wrapped
    /// I/O errors from the backing reader.
    pub fn open(mut src: R) -> Result<Self, StoreError> {
        // Read whatever prefix of the fixed-size header exists and let
        // the positioned Reader assign the error (bad magic before
        // truncation, matching the buffered decoder's precedence).
        let mut buf = [0u8; BUNDLE_HEADER_BYTES];
        let mut filled = 0usize;
        while filled < buf.len() {
            let n = src.read(&mut buf[filled..]).map_err(|e| StoreError::Io {
                what: "reading the bundle header",
                source: e,
            })?;
            if n == 0 {
                break;
            }
            filled += n;
        }
        let mut r = Reader::new(&buf[..filled], Section::Bundle);
        r.magic(FLEET_MAGIC)?;
        let fingerprint_config = read_config_header(&mut r, VERSION)?;
        let declared = r.u32("device count")? as usize;
        Ok(Self {
            src,
            offset: BUNDLE_HEADER_BYTES,
            fingerprint_config,
            declared,
            yielded: 0,
            failed: false,
        })
    }

    /// The fingerprint parameters the fleet was provisioned with.
    pub fn fingerprint_config(&self) -> &WatermarkConfig {
        &self.fingerprint_config
    }

    /// Number of device entries the header declares.
    pub fn device_count(&self) -> usize {
        self.declared
    }

    fn read_entry(&mut self) -> Result<ProvisionedDevice, StoreError> {
        let i = self.yielded;
        let section = Section::Device(i);
        let mut fixed = [0u8; BUNDLE_ENTRY_FIXED_BYTES];
        read_exact_at(
            &mut self.src,
            &mut fixed[..4],
            section,
            "device id length",
            self.offset,
        )?;
        let id_len = u32::from_le_bytes(fixed[..4].try_into().expect("4 bytes")) as usize;
        let id_bytes =
            read_len_prefixed(&mut self.src, id_len, section, "device id", self.offset + 4)?;
        let device_id = String::from_utf8(id_bytes).map_err(|_| {
            StoreError::Codec(CodecError::Corrupt {
                section,
                offset: self.offset + 4,
                msg: "device id: invalid utf-8".into(),
            })
        })?;
        read_exact_at(
            &mut self.src,
            &mut fixed[4..],
            section,
            "device seeds and artifact length",
            self.offset + 4 + id_len,
        )?;
        let selection_seed = u64::from_le_bytes(fixed[4..12].try_into().expect("8 bytes"));
        let signature_seed = u64::from_le_bytes(fixed[12..20].try_into().expect("8 bytes"));
        let artifact_len = u32::from_le_bytes(fixed[20..24].try_into().expect("4 bytes")) as usize;
        let artifact_start = self.offset + BUNDLE_ENTRY_FIXED_BYTES + id_len;
        let artifact = read_len_prefixed(
            &mut self.src,
            artifact_len,
            section,
            "artifact bytes",
            artifact_start,
        )?;
        let inner = artifact_version(&artifact)?;
        if inner != VERSION {
            return Err(CodecError::MixedVersion {
                outer: VERSION,
                inner,
            }
            .into());
        }
        self.offset = artifact_start + artifact_len;
        self.yielded += 1;
        Ok(ProvisionedDevice {
            fingerprint: DeviceFingerprint {
                device_id,
                selection_seed,
                signature_seed,
            },
            artifact,
        })
    }
}

impl<R: Read> Iterator for FleetBundleStream<R> {
    type Item = Result<ProvisionedDevice, StoreError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.failed || self.yielded == self.declared {
            return None;
        }
        let entry = self.read_entry();
        if entry.is_err() {
            self.failed = true;
        }
        Some(entry)
    }
}

/// Reads `len` bytes declared by an untrusted wire length word. The
/// buffer grows with the bytes actually read (`Read::take` +
/// `read_to_end`), never pre-allocating the declared length — a
/// 60-byte bundle claiming a 4 GiB artifact fails with a positioned
/// [`CodecError::Truncated`], not an OOM.
fn read_len_prefixed<R: Read>(
    src: &mut R,
    len: usize,
    section: Section,
    what: &'static str,
    offset: usize,
) -> Result<Vec<u8>, StoreError> {
    let mut buf = Vec::new();
    (&mut *src)
        .take(len as u64)
        .read_to_end(&mut buf)
        .map_err(|e| StoreError::Io {
            what: "reading a fleet bundle",
            source: e,
        })?;
    if buf.len() != len {
        return Err(StoreError::Codec(CodecError::Truncated {
            section,
            what,
            offset: offset + buf.len(),
        }));
    }
    Ok(buf)
}

/// `read_exact` with codec-style error context: short input becomes
/// [`CodecError::Truncated`] naming the section, field, and absolute
/// byte offset; other I/O failures wrap as [`StoreError::Io`].
fn read_exact_at<R: Read>(
    src: &mut R,
    buf: &mut [u8],
    section: Section,
    what: &'static str,
    offset: usize,
) -> Result<(), StoreError> {
    src.read_exact(buf).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            StoreError::Codec(CodecError::Truncated {
                section,
                what,
                offset,
            })
        } else {
            StoreError::Io {
                what: "reading a fleet bundle",
                source: e,
            }
        }
    })
}

/// Deserializes a provisioned-fleet bundle written by
/// [`encode_fleet_bundle`]. Implemented over [`FleetBundleStream`]
/// (materializing every entry), so the buffered and streaming decoders
/// agree byte for byte.
///
/// # Errors
///
/// Returns a [`CodecError`] on malformed input, including
/// [`CodecError::MixedVersion`] when an embedded artifact's format
/// version disagrees with the bundle's.
pub fn decode_fleet_bundle(bytes: &[u8]) -> Result<FleetBundle, CodecError> {
    // On an in-memory slice the only I/O failure is a short read, which
    // the stream already reports as a positioned `Truncated`.
    let demote = |e: StoreError| match e {
        StoreError::Codec(c) => c,
        other => CodecError::Corrupt {
            section: Section::Bundle,
            offset: 0,
            msg: other.to_string(),
        },
    };
    let mut stream = FleetBundleStream::open(bytes).map_err(demote)?;
    let fingerprint_config = *stream.fingerprint_config();
    let mut devices = Vec::new();
    for entry in &mut stream {
        devices.push(entry.map_err(demote)?);
    }
    Ok(FleetBundle {
        fingerprint_config,
        devices,
    })
}

/// The byte offsets where a bundle's sections begin (header fields,
/// each device entry, each embedded artifact) plus the total length —
/// the boundaries a truncation test must cut at, and the map
/// `emmark inspect` prints for bundles.
///
/// # Errors
///
/// Propagates codec errors from walking a malformed bundle.
pub fn bundle_section_boundaries(bytes: &[u8]) -> Result<Vec<usize>, CodecError> {
    let mut r = Reader::new(bytes, Section::Bundle);
    r.magic(FLEET_MAGIC)?;
    let mut boundaries = vec![0, 4, 8];
    let _ = read_config_header(&mut r, VERSION)?;
    boundaries.push(r.offset());
    let count = r.u32("device count")? as usize;
    boundaries.push(r.offset());
    for i in 0..count {
        let _ = read_device_entry(&mut r, i)?;
        let artifact_len = r.u32("artifact length")? as usize;
        boundaries.push(r.offset());
        r.take(artifact_len, "artifact bytes")?;
        boundaries.push(r.offset());
    }
    boundaries.sort_unstable();
    boundaries.dedup();
    Ok(boundaries)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::watermark::WatermarkConfig;
    use emmark_nanolm::config::ModelConfig;
    use emmark_nanolm::TransformerModel;
    use emmark_quant::awq::{awq, AwqConfig};

    fn secrets() -> OwnerSecrets {
        let mut model = TransformerModel::new(ModelConfig::tiny_test());
        let calib = vec![vec![1u32, 2, 3, 4, 5, 6, 7, 8]];
        let stats = model.collect_activation_stats(&calib);
        let qm = awq(&model, &stats, &AwqConfig::default());
        let cfg = WatermarkConfig {
            bits_per_layer: 4,
            pool_ratio: 10,
            ..Default::default()
        };
        OwnerSecrets::new(qm, stats, cfg, 0x5EC2)
    }

    #[test]
    fn vault_roundtrip_preserves_proof_power() {
        let original = secrets();
        let deployed = original.watermark_for_deployment().expect("insert");
        let bytes = encode_secrets(&original);
        let restored = decode_secrets(&bytes).expect("decode");
        // The restored secrets prove ownership of the deployed model
        // exactly as the originals did.
        let report = restored.verify(&deployed).expect("verify");
        assert_eq!(report.wer(), 100.0);
        assert_eq!(restored.signature, original.signature);
        assert_eq!(restored.config, original.config);
        assert_eq!(restored.stats, original.stats);
        assert!(restored.original.same_weights(&original.original));
    }

    #[test]
    fn v1_vault_still_decodes_and_reencodes_at_v2() {
        let original = secrets();
        let v1_bytes = encode_secrets_v1(&original);
        let restored = decode_secrets(&v1_bytes).expect("v1 decode");
        assert!(restored.original.same_weights(&original.original));
        assert_eq!(restored.signature, original.signature);
        // Re-encoding migrates to the current version.
        let v2_bytes = encode_secrets(&restored);
        assert_eq!(&v2_bytes[4..8], &VERSION.to_le_bytes());
        let again = decode_secrets(&v2_bytes).expect("v2 decode");
        assert!(again.original.same_weights(&original.original));
    }

    #[test]
    fn mixed_version_vault_is_rejected_with_a_clear_error() {
        let original = secrets();
        // A v2 vault whose embedded model was downgraded to v1 — the
        // splice a buggy migration tool would produce.
        let good = encode_secrets(&original).to_vec();
        let v1_model = encode_model_v1(&original.original);
        let v2_model = encode_model(&original.original);
        let model_start = good.len() - v2_model.len();
        let mut spliced = good[..model_start - 4].to_vec();
        spliced.extend_from_slice(&(v1_model.len() as u32).to_le_bytes());
        spliced.extend_from_slice(&v1_model);
        let err = decode_secrets(&spliced).expect_err("mixed vault must fail");
        assert_eq!(
            err,
            CodecError::MixedVersion {
                outer: FORMAT_V2,
                inner: FORMAT_V1
            }
        );
        assert!(err.to_string().contains("mixed-version"), "{err}");
    }

    #[test]
    fn vault_rejects_garbage() {
        assert!(matches!(
            decode_secrets(b"EMQM1234"),
            Err(CodecError::BadMagic)
        ));
        assert!(matches!(
            decode_secrets(b"EM"),
            Err(CodecError::Truncated { .. })
        ));
        let bytes = encode_secrets(&secrets());
        for cut in [10usize, 40, bytes.len() / 2, bytes.len() - 5] {
            assert!(
                decode_secrets(&bytes[..cut]).is_err(),
                "cut at {cut} must not decode"
            );
        }
    }

    #[test]
    fn vault_rejects_corrupted_signature_bits() {
        let bytes = encode_secrets(&secrets()).to_vec();
        // Signature bits start after magic(4)+version(4)+config(32)+len(4).
        let mut corrupted = bytes.clone();
        corrupted[4 + 4 + 32 + 4] = 3; // not ±1
        assert!(matches!(
            decode_secrets(&corrupted),
            Err(CodecError::Corrupt { .. })
        ));
    }

    fn provisioned_fleet() -> (WatermarkConfig, Vec<ProvisionedDevice>) {
        let fp_cfg = WatermarkConfig {
            bits_per_layer: 3,
            pool_ratio: 10,
            selection_seed: 0xDE11CE,
            ..Default::default()
        };
        let provisioner =
            crate::provision::FleetProvisioner::new(secrets(), fp_cfg).expect("cache");
        let devices = provisioner.provision_batch(&["edge-00", "edge-01"], None);
        (fp_cfg, devices)
    }

    #[test]
    fn fleet_bundle_roundtrips_bit_exactly() {
        let (fp_cfg, devices) = provisioned_fleet();
        let bytes = encode_fleet_bundle(&fp_cfg, &devices);
        let bundle = decode_fleet_bundle(&bytes).expect("decode");
        assert_eq!(bundle.fingerprint_config, fp_cfg);
        assert_eq!(bundle.devices, devices);
        // Every embedded artifact still decodes to a model.
        for d in &bundle.devices {
            assert!(decode_model(&d.artifact).is_ok());
        }
    }

    #[test]
    fn fleet_bundle_rejects_garbage_truncation_and_mixed_versions() {
        let (fp_cfg, devices) = provisioned_fleet();
        assert!(matches!(
            decode_fleet_bundle(b"EMWS1234"),
            Err(CodecError::BadMagic)
        ));
        let bytes = encode_fleet_bundle(&fp_cfg, &devices).to_vec();
        for cut in [6usize, 40, bytes.len() / 2, bytes.len() - 5] {
            assert!(
                decode_fleet_bundle(&bytes[..cut]).is_err(),
                "cut at {cut} must not decode"
            );
        }
        // Splice a v1 artifact into the first slot.
        let mut spliced_devices = devices.clone();
        spliced_devices[0].artifact =
            encode_model_v1(&decode_model(&devices[0].artifact).expect("decode")).to_vec();
        let spliced = encode_fleet_bundle(&fp_cfg, &spliced_devices);
        assert_eq!(
            decode_fleet_bundle(&spliced).expect_err("mixed bundle must fail"),
            CodecError::MixedVersion {
                outer: FORMAT_V2,
                inner: FORMAT_V1
            }
        );
        // An invalid fingerprint config is rejected before any artifact.
        let mut bad_cfg = fp_cfg;
        bad_cfg.pool_ratio = 0;
        assert!(matches!(
            decode_fleet_bundle(&encode_fleet_bundle(&bad_cfg, &devices)),
            Err(CodecError::Corrupt { .. })
        ));
    }

    #[test]
    fn fleet_bundle_with_huge_device_count_is_truncated_not_oom() {
        let (fp_cfg, _) = provisioned_fleet();
        let mut bytes = encode_fleet_bundle(&fp_cfg, &[]).to_vec();
        let len = bytes.len();
        bytes[len - 4..].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            decode_fleet_bundle(&bytes),
            Err(CodecError::Truncated { .. })
        ));
    }

    #[test]
    fn unknown_vault_version_is_rejected() {
        let mut bytes = encode_secrets(&secrets()).to_vec();
        bytes[4] = 77;
        assert_eq!(
            decode_secrets(&bytes).unwrap_err(),
            CodecError::BadVersion(77)
        );
    }
}
