//! `emmarkd`: a cache-warm batched verification/provisioning service.
//!
//! The one-shot CLI pays the family cold-start tax on every invocation:
//! decoding the owner vault, re-scoring ownership locations, and rebuilding
//! fingerprint pools. When requests arrive as traffic rather than one-offs,
//! that tax dominates wall-clock. This module keeps one warm family entry per
//! owner vault behind a small LRU and schedules framed requests across a
//! bounded worker pool with explicit backpressure.
//!
//! # Framing protocol
//!
//! Every request and response travels as one frame: a little-endian `u32`
//! payload length followed by the payload. Payloads start with a magic
//! (`EMSQ` for requests, `EMSR` for responses), a `u32` protocol version, and
//! a `u64` caller-chosen request id echoed verbatim in the response so
//! responses may complete out of order. Inputs are passed as [`Blob`]s —
//! either inline bytes or a filesystem path resolved server-side — so large
//! artifacts need not cross the socket at all.
//!
//! Responses are bit-identical to the one-shot CLI for the same inputs: the
//! warm path caches `locate_watermark` output and replays
//! [`extract_with_locations`], which is deterministic given the same
//! artifact bytes.

use std::collections::{HashMap, VecDeque};
use std::io::{Read as IoRead, Write as IoWrite};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use bytes::{BufMut, BytesMut};

use crate::deploy::{
    artifact_version, decode_model, put_string, put_watermark_config, CodecError, Reader, Section,
    SparseArtifact, FORMAT_V2,
};
use crate::fingerprint::{fxhash, DeviceFingerprint};
use crate::fleet::{decode_registry, FleetVerifier};
use crate::provision::FleetProvisioner;
use crate::registry::{decode_manifest, load_sharded_registry, IndexedFleetVerifier};
use crate::store::StoreError;
use crate::telemetry::{
    Span, Telemetry, SERVICE_CACHE_HITS, SERVICE_CACHE_MISSES, SERVICE_EVICTIONS,
    SERVICE_IDENTIFY_NS, SERVICE_INSPECT_NS, SERVICE_MALFORMED, SERVICE_PROVISION_NS,
    SERVICE_QUEUE_DEPTH, SERVICE_REJECTED, SERVICE_REQUESTS, SERVICE_RESIDENT_BYTES,
    SERVICE_VERIFY_NS,
};
use crate::vault::{decode_secrets, FleetBundleStream};
use crate::watermark::{
    extract_with_locations, locate_watermark, ExtractionReport, GridSource, Locations,
    OwnerSecrets, WatermarkConfig, WatermarkError,
};

/// Protocol version carried in every frame payload.
pub const PROTOCOL_VERSION: u32 = 1;
/// Upper bound on a single frame payload (64 MiB).
pub const MAX_FRAME_BYTES: usize = 1 << 26;

/// Request payload magic.
pub const REQUEST_MAGIC: &[u8; 4] = b"EMSQ";
/// Response payload magic.
pub const RESPONSE_MAGIC: &[u8; 4] = b"EMSR";

const OP_PING: u8 = 0;
const OP_VERIFY: u8 = 1;
const OP_PROVISION: u8 = 2;
const OP_IDENTIFY: u8 = 3;
const OP_INSPECT: u8 = 4;
const OP_SHUTDOWN: u8 = 5;

const RESP_PONG: u8 = 0;
const RESP_VERIFY: u8 = 1;
const RESP_PROVISION: u8 = 2;
const RESP_IDENTIFY: u8 = 3;
const RESP_INSPECT: u8 = 4;
const RESP_SHUTDOWN: u8 = 5;
const RESP_BUSY: u8 = 0xFE;
const RESP_ERROR: u8 = 0xFF;

const BLOB_INLINE: u8 = 0;
const BLOB_PATH: u8 = 1;

/// An input handed to the service: inline bytes or a server-side path.
#[derive(Debug, Clone, PartialEq)]
pub enum Blob {
    /// The bytes travel inside the frame.
    Inline(Vec<u8>),
    /// The service reads the bytes from this path on its own filesystem.
    Path(String),
}

/// A decoded service request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Liveness check; answered without touching any cache.
    Ping,
    /// Verify a suspect model against an owner vault.
    Verify {
        /// The owner vault (`EMWS`).
        secrets: Blob,
        /// The suspect artifact (`EMQM` v1 or v2).
        suspect: Blob,
        /// log10 chance-match threshold for the proof decision.
        log10_threshold: f64,
    },
    /// Provision one device fingerprint and return its spliced artifact.
    Provision {
        /// The owner vault (`EMWS`).
        secrets: Blob,
        /// Fingerprint selection parameters for the fleet.
        fingerprint_config: WatermarkConfig,
        /// Device identifier stamped into the fingerprint.
        device_id: String,
    },
    /// Identify which provisioned device a leaked artifact came from.
    IdentifyLeak {
        /// The owner vault (`EMWS`).
        secrets: Blob,
        /// A fleet registry (`EMFR`), bundle (`EMFB`), or shard manifest
        /// (`EMFM`; must be a path blob so shards resolve beside it).
        registry: Blob,
        /// The leaked suspect artifact.
        suspect: Blob,
        /// log10 chance-match threshold for attribution.
        log10_threshold: f64,
        /// Force the linear scan even when an index is available.
        linear: bool,
    },
    /// Summarise any EmMark container.
    Inspect {
        /// The container to inspect.
        target: Blob,
    },
    /// Drain in-flight requests and stop the service.
    Shutdown,
}

/// Extraction statistics mirrored from [`ExtractionReport`] for the wire.
#[derive(Debug, Clone, PartialEq)]
pub struct ReportSummary {
    /// Total signature bits compared.
    pub total_bits: u64,
    /// Bits that matched the expected signature.
    pub matched_bits: u64,
    /// Watermark extraction rate, in percent.
    pub wer: f64,
    /// log10 probability of matching this well by chance.
    pub log10_p_chance: f64,
}

impl From<&ExtractionReport> for ReportSummary {
    fn from(r: &ExtractionReport) -> Self {
        ReportSummary {
            total_bits: r.total_bits as u64,
            matched_bits: r.matched_bits as u64,
            wer: r.wer(),
            log10_p_chance: r.log10_p_chance(),
        }
    }
}

/// What a [`Request::Inspect`] found.
#[derive(Debug, Clone, PartialEq)]
pub enum InspectSummary {
    /// A quantized artifact (`EMQM`).
    Artifact {
        /// Container format version (1 dense, 2 sparse-indexed).
        format_version: u32,
        /// Quantization scheme string.
        scheme: String,
        /// Number of layers.
        layers: u32,
        /// Total weight cells across layers.
        cells: u64,
    },
    /// A fleet bundle (`EMFB`).
    Bundle {
        /// Devices in the bundle.
        device_count: u32,
        /// Fingerprint configuration shared by the fleet.
        fingerprint_config: WatermarkConfig,
    },
    /// A shard manifest (`EMFM`).
    Manifest {
        /// Shards listed in the manifest.
        shard_count: u32,
        /// Total devices across shards.
        device_count: u64,
    },
    /// A fleet registry (`EMFR`).
    Registry {
        /// Devices in the registry.
        device_count: u32,
        /// Fingerprint configuration shared by the fleet.
        fingerprint_config: WatermarkConfig,
    },
    /// An owner vault (`EMWS`).
    Secrets {
        /// Layers in the reference model.
        layers: u32,
        /// Signature length in bits.
        signature_bits: u32,
    },
}

/// A decoded service response.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Liveness reply.
    Pong,
    /// Verification outcome.
    Verify {
        /// Extraction statistics.
        report: ReportSummary,
        /// Whether the proof threshold was met.
        proved: bool,
    },
    /// A freshly provisioned device.
    Provision {
        /// The fingerprint registered for the device.
        fingerprint: DeviceFingerprint,
        /// The spliced per-device artifact bytes.
        artifact: Vec<u8>,
    },
    /// Leak attribution outcome.
    Identify {
        /// The matched device and its extraction stats, if any device
        /// cleared the threshold.
        matched: Option<(DeviceFingerprint, ReportSummary)>,
    },
    /// Container summary.
    Inspect(InspectSummary),
    /// The service has drained and stopped.
    ShutdownComplete,
    /// The queue is full; retry after the given delay.
    Busy {
        /// Suggested client backoff in milliseconds.
        retry_after_ms: u32,
    },
    /// The request failed.
    Error {
        /// Human-readable failure description.
        message: String,
    },
}

// ---------------------------------------------------------------------------
// Frame I/O
// ---------------------------------------------------------------------------

/// Writes one length-prefixed frame.
///
/// # Errors
///
/// Rejects payloads over [`MAX_FRAME_BYTES`] and propagates write failures.
pub fn write_frame<W: IoWrite>(mut w: W, payload: &[u8]) -> std::io::Result<()> {
    if payload.len() > MAX_FRAME_BYTES {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!(
                "frame payload of {} bytes exceeds the {MAX_FRAME_BYTES} byte limit",
                payload.len()
            ),
        ));
    }
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one length-prefixed frame. Returns `Ok(None)` on clean EOF before
/// the first length byte; EOF mid-frame is an error.
///
/// # Errors
///
/// Rejects oversized length prefixes and propagates read failures.
pub fn read_frame<R: IoRead>(mut r: R) -> std::io::Result<Option<Vec<u8>>> {
    let mut len = [0u8; 4];
    let mut filled = 0;
    while filled < len.len() {
        let n = r.read(&mut len[filled..])?;
        if n == 0 {
            if filled == 0 {
                return Ok(None);
            }
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "connection closed mid-frame (length prefix truncated)",
            ));
        }
        filled += n;
    }
    let len = u32::from_le_bytes(len) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("frame payload of {len} bytes exceeds the {MAX_FRAME_BYTES} byte limit"),
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

// ---------------------------------------------------------------------------
// Payload codec
// ---------------------------------------------------------------------------

fn put_blob(buf: &mut BytesMut, blob: &Blob) {
    match blob {
        Blob::Inline(bytes) => {
            buf.put_u8(BLOB_INLINE);
            buf.put_u64_le(bytes.len() as u64);
            buf.put_slice(bytes);
        }
        Blob::Path(path) => {
            buf.put_u8(BLOB_PATH);
            put_string(buf, path);
        }
    }
}

fn read_blob(r: &mut Reader<'_>) -> Result<Blob, CodecError> {
    match r.u8("blob tag")? {
        BLOB_INLINE => {
            let len = r.u64("blob length")? as usize;
            Ok(Blob::Inline(r.take(len, "blob bytes")?.to_vec()))
        }
        BLOB_PATH => Ok(Blob::Path(r.string("blob path")?)),
        _ => Err(r.corrupt("unknown blob tag")),
    }
}

fn payload_header(magic: &[u8; 4], id: u64) -> BytesMut {
    let mut buf = BytesMut::with_capacity(64);
    buf.put_slice(magic);
    buf.put_u32_le(PROTOCOL_VERSION);
    buf.put_u64_le(id);
    buf
}

fn open_payload<'a>(
    magic: &'static [u8; 4],
    bytes: &'a [u8],
) -> Result<(u64, Reader<'a>), CodecError> {
    let mut r = Reader::new(bytes, Section::Service);
    r.magic(magic)?;
    let version = r.u32("protocol version")?;
    if version != PROTOCOL_VERSION {
        return Err(CodecError::BadVersion(version));
    }
    let id = r.u64("request id")?;
    Ok((id, r))
}

/// Encodes a request payload (framing is applied separately by
/// [`write_frame`]).
pub fn encode_request(id: u64, req: &Request) -> Vec<u8> {
    let mut buf = payload_header(REQUEST_MAGIC, id);
    match req {
        Request::Ping => buf.put_u8(OP_PING),
        Request::Verify {
            secrets,
            suspect,
            log10_threshold,
        } => {
            buf.put_u8(OP_VERIFY);
            put_blob(&mut buf, secrets);
            put_blob(&mut buf, suspect);
            buf.put_f64_le(*log10_threshold);
        }
        Request::Provision {
            secrets,
            fingerprint_config,
            device_id,
        } => {
            buf.put_u8(OP_PROVISION);
            put_blob(&mut buf, secrets);
            put_watermark_config(&mut buf, fingerprint_config);
            put_string(&mut buf, device_id);
        }
        Request::IdentifyLeak {
            secrets,
            registry,
            suspect,
            log10_threshold,
            linear,
        } => {
            buf.put_u8(OP_IDENTIFY);
            put_blob(&mut buf, secrets);
            put_blob(&mut buf, registry);
            put_blob(&mut buf, suspect);
            buf.put_f64_le(*log10_threshold);
            buf.put_u8(u8::from(*linear));
        }
        Request::Inspect { target } => {
            buf.put_u8(OP_INSPECT);
            put_blob(&mut buf, target);
        }
        Request::Shutdown => buf.put_u8(OP_SHUTDOWN),
    }
    buf.to_vec()
}

/// Decodes a request payload into its id and [`Request`].
///
/// # Errors
///
/// Any [`CodecError`] for a malformed payload, including trailing bytes.
pub fn decode_request(bytes: &[u8]) -> Result<(u64, Request), CodecError> {
    let (id, mut r) = open_payload(REQUEST_MAGIC, bytes)?;
    let req = match r.u8("request op")? {
        OP_PING => Request::Ping,
        OP_VERIFY => Request::Verify {
            secrets: read_blob(&mut r)?,
            suspect: read_blob(&mut r)?,
            log10_threshold: r.f64("log10 threshold")?,
        },
        OP_PROVISION => Request::Provision {
            secrets: read_blob(&mut r)?,
            fingerprint_config: r.watermark_config()?,
            device_id: r.string("device id")?,
        },
        OP_IDENTIFY => Request::IdentifyLeak {
            secrets: read_blob(&mut r)?,
            registry: read_blob(&mut r)?,
            suspect: read_blob(&mut r)?,
            log10_threshold: r.f64("log10 threshold")?,
            linear: r.u8("linear flag")? != 0,
        },
        OP_INSPECT => Request::Inspect {
            target: read_blob(&mut r)?,
        },
        OP_SHUTDOWN => Request::Shutdown,
        _ => return Err(r.corrupt("unknown request op")),
    };
    if r.offset() != bytes.len() {
        return Err(r.corrupt("trailing bytes after request body"));
    }
    Ok((id, req))
}

fn put_report(buf: &mut BytesMut, report: &ReportSummary) {
    buf.put_u64_le(report.total_bits);
    buf.put_u64_le(report.matched_bits);
    buf.put_f64_le(report.wer);
    buf.put_f64_le(report.log10_p_chance);
}

fn read_report(r: &mut Reader<'_>) -> Result<ReportSummary, CodecError> {
    Ok(ReportSummary {
        total_bits: r.u64("total bits")?,
        matched_bits: r.u64("matched bits")?,
        wer: r.f64("wer")?,
        log10_p_chance: r.f64("log10 p chance")?,
    })
}

fn put_fingerprint(buf: &mut BytesMut, fp: &DeviceFingerprint) {
    put_string(buf, &fp.device_id);
    buf.put_u64_le(fp.selection_seed);
    buf.put_u64_le(fp.signature_seed);
}

fn read_fingerprint(r: &mut Reader<'_>) -> Result<DeviceFingerprint, CodecError> {
    Ok(DeviceFingerprint {
        device_id: r.string("device id")?,
        selection_seed: r.u64("selection seed")?,
        signature_seed: r.u64("signature seed")?,
    })
}

/// Encodes a response payload (framing is applied separately by
/// [`write_frame`]).
pub fn encode_response(id: u64, resp: &Response) -> Vec<u8> {
    let mut buf = payload_header(RESPONSE_MAGIC, id);
    match resp {
        Response::Pong => buf.put_u8(RESP_PONG),
        Response::Verify { report, proved } => {
            buf.put_u8(RESP_VERIFY);
            put_report(&mut buf, report);
            buf.put_u8(u8::from(*proved));
        }
        Response::Provision {
            fingerprint,
            artifact,
        } => {
            buf.put_u8(RESP_PROVISION);
            put_fingerprint(&mut buf, fingerprint);
            buf.put_u64_le(artifact.len() as u64);
            buf.put_slice(artifact);
        }
        Response::Identify { matched } => {
            buf.put_u8(RESP_IDENTIFY);
            match matched {
                Some((fp, report)) => {
                    buf.put_u8(1);
                    put_fingerprint(&mut buf, fp);
                    put_report(&mut buf, report);
                }
                None => buf.put_u8(0),
            }
        }
        Response::Inspect(summary) => {
            buf.put_u8(RESP_INSPECT);
            match summary {
                InspectSummary::Artifact {
                    format_version,
                    scheme,
                    layers,
                    cells,
                } => {
                    buf.put_u8(0);
                    buf.put_u32_le(*format_version);
                    put_string(&mut buf, scheme);
                    buf.put_u32_le(*layers);
                    buf.put_u64_le(*cells);
                }
                InspectSummary::Bundle {
                    device_count,
                    fingerprint_config,
                } => {
                    buf.put_u8(1);
                    buf.put_u32_le(*device_count);
                    put_watermark_config(&mut buf, fingerprint_config);
                }
                InspectSummary::Manifest {
                    shard_count,
                    device_count,
                } => {
                    buf.put_u8(2);
                    buf.put_u32_le(*shard_count);
                    buf.put_u64_le(*device_count);
                }
                InspectSummary::Registry {
                    device_count,
                    fingerprint_config,
                } => {
                    buf.put_u8(3);
                    buf.put_u32_le(*device_count);
                    put_watermark_config(&mut buf, fingerprint_config);
                }
                InspectSummary::Secrets {
                    layers,
                    signature_bits,
                } => {
                    buf.put_u8(4);
                    buf.put_u32_le(*layers);
                    buf.put_u32_le(*signature_bits);
                }
            }
        }
        Response::ShutdownComplete => buf.put_u8(RESP_SHUTDOWN),
        Response::Busy { retry_after_ms } => {
            buf.put_u8(RESP_BUSY);
            buf.put_u32_le(*retry_after_ms);
        }
        Response::Error { message } => {
            buf.put_u8(RESP_ERROR);
            put_string(&mut buf, message);
        }
    }
    buf.to_vec()
}

/// Decodes a response payload into its id and [`Response`].
///
/// # Errors
///
/// Any [`CodecError`] for a malformed payload, including trailing bytes.
pub fn decode_response(bytes: &[u8]) -> Result<(u64, Response), CodecError> {
    let (id, mut r) = open_payload(RESPONSE_MAGIC, bytes)?;
    let resp = match r.u8("response tag")? {
        RESP_PONG => Response::Pong,
        RESP_VERIFY => Response::Verify {
            report: read_report(&mut r)?,
            proved: r.u8("proved flag")? != 0,
        },
        RESP_PROVISION => {
            let fingerprint = read_fingerprint(&mut r)?;
            let len = r.u64("artifact length")? as usize;
            Response::Provision {
                fingerprint,
                artifact: r.take(len, "artifact bytes")?.to_vec(),
            }
        }
        RESP_IDENTIFY => {
            let matched = if r.u8("match flag")? != 0 {
                let fp = read_fingerprint(&mut r)?;
                let report = read_report(&mut r)?;
                Some((fp, report))
            } else {
                None
            };
            Response::Identify { matched }
        }
        RESP_INSPECT => {
            let summary = match r.u8("inspect kind")? {
                0 => InspectSummary::Artifact {
                    format_version: r.u32("format version")?,
                    scheme: r.string("scheme")?,
                    layers: r.u32("layer count")?,
                    cells: r.u64("cell count")?,
                },
                1 => InspectSummary::Bundle {
                    device_count: r.u32("device count")?,
                    fingerprint_config: r.watermark_config()?,
                },
                2 => InspectSummary::Manifest {
                    shard_count: r.u32("shard count")?,
                    device_count: r.u64("device count")?,
                },
                3 => InspectSummary::Registry {
                    device_count: r.u32("device count")?,
                    fingerprint_config: r.watermark_config()?,
                },
                4 => InspectSummary::Secrets {
                    layers: r.u32("layer count")?,
                    signature_bits: r.u32("signature bits")?,
                },
                _ => return Err(r.corrupt("unknown inspect kind")),
            };
            Response::Inspect(summary)
        }
        RESP_SHUTDOWN => Response::ShutdownComplete,
        RESP_BUSY => Response::Busy {
            retry_after_ms: r.u32("retry after ms")?,
        },
        RESP_ERROR => Response::Error {
            message: r.string("error message")?,
        },
        _ => return Err(r.corrupt("unknown response tag")),
    };
    if r.offset() != bytes.len() {
        return Err(r.corrupt("trailing bytes after response body"));
    }
    Ok((id, resp))
}

/// Recovers the request id from a payload whose body may be malformed, so an
/// error response can still be correlated. Zero when even the header is
/// unreadable.
fn peek_request_id(bytes: &[u8]) -> u64 {
    if bytes.len() >= 16 && &bytes[..4] == REQUEST_MAGIC {
        u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes"))
    } else {
        0
    }
}

fn peek_op(bytes: &[u8]) -> Option<u8> {
    if bytes.len() >= 17 && &bytes[..4] == REQUEST_MAGIC {
        Some(bytes[16])
    } else {
        None
    }
}

// ---------------------------------------------------------------------------
// Resident-memory budget
// ---------------------------------------------------------------------------

/// A shared byte budget over loaded artifacts. A request blocks until its
/// first allocation fits; follow-up allocations by a holder overdraft rather
/// than deadlock (at least one holder can always make progress).
struct ResidentBudget {
    cap: Option<u64>,
    used: Mutex<u64>,
    freed: Condvar,
}

impl ResidentBudget {
    fn new(cap: Option<u64>) -> Self {
        ResidentBudget {
            cap,
            used: Mutex::new(0),
            freed: Condvar::new(),
        }
    }
}

/// Per-request guard over [`ResidentBudget`]; releases everything on drop.
struct BudgetLease<'a> {
    budget: &'a ResidentBudget,
    held: u64,
}

impl<'a> BudgetLease<'a> {
    fn new(budget: &'a ResidentBudget) -> Self {
        BudgetLease { budget, held: 0 }
    }

    fn charge(&mut self, n: u64) {
        let Some(cap) = self.budget.cap else {
            return;
        };
        let mut used = self.budget.used.lock().unwrap();
        if self.held == 0 {
            // Clamp so one oversized request overdrafts instead of waiting
            // forever on room that can never exist.
            let need = n.min(cap);
            while *used + need > cap {
                used = self.budget.freed.wait(used).unwrap();
            }
        }
        *used += n;
        self.held += n;
        if Telemetry::enabled() {
            SERVICE_RESIDENT_BYTES.set(*used as i64);
        }
    }
}

impl Drop for BudgetLease<'_> {
    fn drop(&mut self) {
        if self.held > 0 {
            let mut used = self.budget.used.lock().unwrap();
            *used = used.saturating_sub(self.held);
            if Telemetry::enabled() {
                SERVICE_RESIDENT_BYTES.set(*used as i64);
            }
            self.budget.freed.notify_all();
        }
    }
}

// ---------------------------------------------------------------------------
// Warm family cache
// ---------------------------------------------------------------------------

/// Hashable key for a fingerprint configuration ([`WatermarkConfig`] holds
/// `f64`s so cannot implement `Hash` itself).
type FpKey = (u64, u64, usize, usize, u64);

fn fp_key(cfg: &WatermarkConfig) -> FpKey {
    (
        cfg.alpha.to_bits(),
        cfg.beta.to_bits(),
        cfg.bits_per_layer,
        cfg.pool_ratio,
        cfg.selection_seed,
    )
}

#[derive(Clone)]
enum VerifierKind {
    Linear(Arc<FleetVerifier>),
    Indexed(Arc<IndexedFleetVerifier>),
}

/// Everything kept warm for one owner vault (one model family).
struct FamilyEntry {
    secrets: OwnerSecrets,
    locations: Locations,
    provisioners: Mutex<HashMap<FpKey, Arc<FleetProvisioner>>>,
    verifiers: Mutex<HashMap<CacheKey, VerifierKind>>,
}

impl FamilyEntry {
    fn load(bytes: &[u8]) -> Result<Self, ServiceError> {
        let secrets = decode_secrets(bytes)?;
        // Mirror extract_watermark's precondition so a bad vault fails here,
        // once, instead of on every warm request.
        let expected = secrets.config.signature_len(secrets.original.layer_count());
        if secrets.signature.len() != expected {
            return Err(WatermarkError::SignatureLength {
                expected,
                got: secrets.signature.len(),
            }
            .into());
        }
        let locations = locate_watermark(&secrets.original, &secrets.stats, &secrets.config)?;
        Ok(FamilyEntry {
            secrets,
            locations,
            provisioners: Mutex::new(HashMap::new()),
            verifiers: Mutex::new(HashMap::new()),
        })
    }

    /// Warm-path verification: replay extraction over the cached ownership
    /// locations. Bit-identical to [`OwnerSecrets::verify`] because
    /// [`locate_watermark`] is deterministic for fixed inputs.
    fn verify<S: GridSource + ?Sized>(
        &self,
        suspect: &S,
    ) -> Result<ExtractionReport, WatermarkError> {
        extract_with_locations(
            suspect,
            &self.secrets.original,
            &self.locations,
            &self.secrets.signature,
        )
    }

    fn provisioner(&self, fp_cfg: &WatermarkConfig) -> Result<Arc<FleetProvisioner>, ServiceError> {
        let key = fp_key(fp_cfg);
        if let Some(p) = self.provisioners.lock().unwrap().get(&key) {
            if Telemetry::enabled() {
                SERVICE_CACHE_HITS.incr();
            }
            return Ok(Arc::clone(p));
        }
        if Telemetry::enabled() {
            SERVICE_CACHE_MISSES.incr();
        }
        // Build outside the lock; on a race the first insert wins.
        let built = Arc::new(FleetProvisioner::new(self.secrets.clone(), *fp_cfg)?);
        let mut map = self.provisioners.lock().unwrap();
        Ok(Arc::clone(map.entry(key).or_insert(built)))
    }
}

/// Cache identity for raw input bytes (vaults, registries): two
/// independently seeded FNV-style passes plus the input length. A
/// single 64-bit non-cryptographic hash is too narrow to key cached
/// secrets on — a collision would silently serve one family's entry
/// for another — and widening the key to 128 bits plus the length
/// makes accidental aliasing implausible without a byte compare.
type CacheKey = (u64, u64);

fn cache_key(bytes: &[u8]) -> CacheKey {
    let mut h2 = 0x6c62_272e_07bb_0142_u64 ^ (bytes.len() as u64);
    for &b in bytes {
        h2 = (h2 ^ b as u64)
            .wrapping_mul(0x0100_0000_01b3)
            .rotate_left(5);
    }
    (fxhash(bytes), h2)
}

/// Identity stamp for a vault file: modification time plus length.
/// While the stamp is unchanged, a path blob resolves to its previously
/// hashed cache key without re-reading the file, so the warm-path cost
/// of a request does not scale with vault size.
type PathStamp = (u128, u64);

fn stat_stamp(path: &str) -> Option<PathStamp> {
    let meta = std::fs::metadata(path).ok()?;
    let mtime = meta
        .modified()
        .ok()?
        .duration_since(std::time::UNIX_EPOCH)
        .ok()?
        .as_nanos();
    Some((mtime, meta.len()))
}

/// Most entries the path→key side table holds before it is reset; a
/// backstop against clients cycling through endless one-shot paths.
const PATH_KEY_CAP: usize = 1024;

/// A small LRU of warm [`FamilyEntry`]s keyed by the vault byte hash,
/// with a path→key side table that lets unchanged vault files skip the
/// read-and-hash on every warm request.
struct FamilyLru {
    capacity: usize,
    tick: u64,
    entries: HashMap<CacheKey, (u64, Arc<FamilyEntry>)>,
    path_keys: HashMap<String, (PathStamp, CacheKey)>,
}

impl FamilyLru {
    fn new(capacity: usize) -> Self {
        FamilyLru {
            capacity: capacity.max(1),
            tick: 0,
            entries: HashMap::new(),
            path_keys: HashMap::new(),
        }
    }
}

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

/// Any failure while serving one request; rendered into a
/// [`Response::Error`].
#[derive(Debug)]
enum ServiceError {
    Codec(CodecError),
    Watermark(WatermarkError),
    Store(StoreError),
    Io {
        what: String,
        source: std::io::Error,
    },
    Other(String),
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::Codec(e) => write!(f, "{e}"),
            ServiceError::Watermark(e) => write!(f, "{e}"),
            ServiceError::Store(e) => write!(f, "{e}"),
            ServiceError::Io { what, source } => write!(f, "while {what}: {source}"),
            ServiceError::Other(msg) => f.write_str(msg),
        }
    }
}

impl From<CodecError> for ServiceError {
    fn from(e: CodecError) -> Self {
        ServiceError::Codec(e)
    }
}

impl From<WatermarkError> for ServiceError {
    fn from(e: WatermarkError) -> Self {
        ServiceError::Watermark(e)
    }
}

impl From<StoreError> for ServiceError {
    fn from(e: StoreError) -> Self {
        ServiceError::Store(e)
    }
}

// ---------------------------------------------------------------------------
// The service
// ---------------------------------------------------------------------------

/// Tunables for [`Service`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Worker threads. `0` runs no threads: requests queue until
    /// [`Service::drain_pending`] processes them inline (deterministic
    /// tests).
    pub workers: usize,
    /// Bounded queue capacity; submissions beyond it get [`Response::Busy`].
    pub queue_capacity: usize,
    /// Warm family (vault) entries kept behind the LRU. This — not
    /// `max_resident_bytes` — is what bounds steady-state cache memory:
    /// resident memory is roughly this many decoded vaults plus their
    /// location tables and sub-caches.
    pub cache_capacity: usize,
    /// Shared cap on *transient per-request* artifact bytes (request
    /// blobs read while a request is in flight), if any. Leases release
    /// when the request finishes; warm [`FamilyLru`] entries are not
    /// charged against this budget — size those via `cache_capacity`.
    pub max_resident_bytes: Option<u64>,
    /// Backoff hint carried in [`Response::Busy`].
    pub retry_after_ms: u32,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(2),
            queue_capacity: 64,
            cache_capacity: 4,
            max_resident_bytes: None,
            retry_after_ms: 50,
        }
    }
}

struct Job {
    payload: Vec<u8>,
    reply: Box<dyn FnOnce(Vec<u8>) + Send>,
}

struct QueueState {
    queue: VecDeque<Job>,
    in_flight: usize,
    draining: bool,
    stopped: bool,
}

struct Inner {
    cfg: ServiceConfig,
    state: Mutex<QueueState>,
    work_cv: Condvar,
    idle_cv: Condvar,
    cache: Mutex<FamilyLru>,
    budget: ResidentBudget,
}

/// The `emmarkd` request scheduler: a bounded queue drained by a worker
/// pool, holding the warm family cache and the resident-byte budget.
pub struct Service {
    inner: Arc<Inner>,
    workers: Vec<JoinHandle<()>>,
    stopped_flag: Arc<AtomicBool>,
}

impl Service {
    /// Starts the service with `cfg.workers` threads (zero for manual
    /// drain).
    pub fn start(cfg: ServiceConfig) -> Self {
        let worker_count = cfg.workers;
        let inner = Arc::new(Inner {
            budget: ResidentBudget::new(cfg.max_resident_bytes),
            state: Mutex::new(QueueState {
                queue: VecDeque::new(),
                in_flight: 0,
                draining: false,
                stopped: false,
            }),
            work_cv: Condvar::new(),
            idle_cv: Condvar::new(),
            cache: Mutex::new(FamilyLru::new(cfg.cache_capacity)),
            cfg,
        });
        let stopped_flag = Arc::new(AtomicBool::new(false));
        let mut workers = Vec::with_capacity(worker_count);
        for i in 0..worker_count {
            let inner = Arc::clone(&inner);
            let flag = Arc::clone(&stopped_flag);
            let handle = std::thread::Builder::new()
                .name(format!("emmarkd-worker-{i}"))
                // Small stacks: CI smokes run under a 12 MiB address-space
                // cap and thread stacks count against it.
                .stack_size(512 * 1024)
                .spawn(move || worker_loop(&inner, &flag))
                .expect("spawning an emmarkd worker thread");
            workers.push(handle);
        }
        Service {
            inner,
            workers,
            stopped_flag,
        }
    }

    /// Submits one raw request payload. The reply callback receives the
    /// encoded response payload exactly once — immediately for rejections,
    /// from a worker otherwise.
    pub fn submit(&self, payload: Vec<u8>, reply: Box<dyn FnOnce(Vec<u8>) + Send>) {
        let id = peek_request_id(&payload);
        let is_shutdown = peek_op(&payload) == Some(OP_SHUTDOWN);
        if Telemetry::enabled() {
            SERVICE_REQUESTS.incr();
        }
        {
            let mut state = self.inner.state.lock().unwrap();
            if state.stopped || state.draining {
                // This also covers a second Shutdown racing the first:
                // enqueuing it would wedge the drain wait (the queued
                // marker keeps the queue non-empty forever), so every
                // post-drain submission is answered immediately.
                drop(state);
                reply(encode_response(
                    id,
                    &Response::Error {
                        message: "service is shutting down".to_string(),
                    },
                ));
                return;
            }
            if !is_shutdown && state.queue.len() >= self.inner.cfg.queue_capacity {
                drop(state);
                if Telemetry::enabled() {
                    SERVICE_REJECTED.incr();
                }
                reply(encode_response(
                    id,
                    &Response::Busy {
                        retry_after_ms: self.inner.cfg.retry_after_ms,
                    },
                ));
                return;
            }
            if is_shutdown {
                // Same critical section as the enqueue: nothing can slot in
                // behind the shutdown marker.
                state.draining = true;
            }
            state.queue.push_back(Job { payload, reply });
            if Telemetry::enabled() {
                SERVICE_QUEUE_DEPTH.set(state.queue.len() as i64);
            }
        }
        self.inner.work_cv.notify_one();
    }

    /// Submits a typed request and blocks for its typed response. With zero
    /// workers the queue is drained inline first.
    pub fn request(&self, id: u64, req: &Request) -> Response {
        let (tx, rx) = std::sync::mpsc::channel();
        self.submit(
            encode_request(id, req),
            Box::new(move |payload| {
                let _ = tx.send(payload);
            }),
        );
        if self.workers.is_empty() {
            self.drain_pending();
        }
        let payload = rx.recv().expect("the service always replies");
        let (echo, resp) = decode_response(&payload).expect("the service encodes valid responses");
        debug_assert_eq!(echo, id);
        resp
    }

    /// Processes every queued job on the calling thread (zero-worker mode).
    pub fn drain_pending(&self) {
        loop {
            let job = {
                let mut state = self.inner.state.lock().unwrap();
                let Some(job) = state.queue.pop_front() else {
                    break;
                };
                state.in_flight += 1;
                if Telemetry::enabled() {
                    SERVICE_QUEUE_DEPTH.set(state.queue.len() as i64);
                }
                job
            };
            let response = process_job(&self.inner, &job.payload, &self.stopped_flag);
            (job.reply)(response);
            let mut state = self.inner.state.lock().unwrap();
            state.in_flight -= 1;
            if self.stopped_flag.load(Ordering::SeqCst) {
                state.stopped = true;
            }
            drop(state);
            self.inner.idle_cv.notify_all();
        }
    }

    /// Blocks until a [`Request::Shutdown`] has fully drained the service.
    /// Workers exit on their own once stopped; dropping the service joins
    /// them.
    pub fn wait_stopped(&self) {
        let mut state = self.inner.state.lock().unwrap();
        while !state.stopped {
            state = self.inner.idle_cv.wait(state).unwrap();
        }
    }

    /// Number of requests currently queued (excluding in-flight ones).
    pub fn queue_depth(&self) -> usize {
        self.inner.state.lock().unwrap().queue.len()
    }

    /// Whether a [`Request::Shutdown`] has completed.
    pub fn is_stopped(&self) -> bool {
        self.inner.state.lock().unwrap().stopped
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        // Abort mode: pending jobs are dropped unanswered. The graceful path
        // is a Shutdown request followed by wait_stopped.
        {
            let mut state = self.inner.state.lock().unwrap();
            state.stopped = true;
        }
        self.inner.work_cv.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(inner: &Arc<Inner>, stopped_flag: &Arc<AtomicBool>) {
    loop {
        let job = {
            let mut state = inner.state.lock().unwrap();
            loop {
                if state.stopped {
                    return;
                }
                if let Some(job) = state.queue.pop_front() {
                    state.in_flight += 1;
                    if Telemetry::enabled() {
                        SERVICE_QUEUE_DEPTH.set(state.queue.len() as i64);
                    }
                    break job;
                }
                state = inner.work_cv.wait(state).unwrap();
            }
        };
        let response = process_job(inner, &job.payload, stopped_flag);
        (job.reply)(response);
        let mut state = inner.state.lock().unwrap();
        state.in_flight -= 1;
        if stopped_flag.load(Ordering::SeqCst) {
            state.stopped = true;
            drop(state);
            inner.work_cv.notify_all();
            inner.idle_cv.notify_all();
            return;
        }
        drop(state);
        inner.idle_cv.notify_all();
    }
}

fn process_job(inner: &Arc<Inner>, payload: &[u8], stopped_flag: &Arc<AtomicBool>) -> Vec<u8> {
    let (id, request) = match decode_request(payload) {
        Ok(decoded) => decoded,
        Err(e) => {
            if Telemetry::enabled() {
                SERVICE_MALFORMED.incr();
            }
            return encode_response(
                peek_request_id(payload),
                &Response::Error {
                    message: format!("malformed request: {e}"),
                },
            );
        }
    };
    let response = match request {
        Request::Ping => Response::Pong,
        Request::Shutdown => {
            // Wait for every other in-flight request (we are one of them).
            let mut state = inner.state.lock().unwrap();
            while !(state.queue.is_empty() && state.in_flight <= 1) {
                state = inner.idle_cv.wait(state).unwrap();
            }
            stopped_flag.store(true, Ordering::SeqCst);
            drop(state);
            Response::ShutdownComplete
        }
        other => handle_request(inner, other).unwrap_or_else(|e| Response::Error {
            message: e.to_string(),
        }),
    };
    encode_response(id, &response)
}

fn handle_request(inner: &Arc<Inner>, request: Request) -> Result<Response, ServiceError> {
    let mut lease = BudgetLease::new(&inner.budget);
    match request {
        Request::Verify {
            secrets,
            suspect,
            log10_threshold,
        } => {
            let _span = Span::enter(&SERVICE_VERIFY_NS);
            let family = load_family(inner, &secrets, &mut lease)?;
            let bytes = load_blob(&suspect, "suspect artifact", &mut lease)?;
            let report = verify_suspect(&family, &bytes)?;
            let proved = report.proves_ownership(log10_threshold);
            Ok(Response::Verify {
                report: ReportSummary::from(&report),
                proved,
            })
        }
        Request::Provision {
            secrets,
            fingerprint_config,
            device_id,
        } => {
            let _span = Span::enter(&SERVICE_PROVISION_NS);
            let family = load_family(inner, &secrets, &mut lease)?;
            let provisioner = family.provisioner(&fingerprint_config)?;
            let device = provisioner.provision_artifact(&device_id);
            lease.charge(device.artifact.len() as u64);
            Ok(Response::Provision {
                fingerprint: device.fingerprint,
                artifact: device.artifact,
            })
        }
        Request::IdentifyLeak {
            secrets,
            registry,
            suspect,
            log10_threshold,
            linear,
        } => {
            let _span = Span::enter(&SERVICE_IDENTIFY_NS);
            let family = load_family(inner, &secrets, &mut lease)?;
            let verifier = load_verifier(&family, &registry, &mut lease)?;
            let bytes = load_blob(&suspect, "suspect artifact", &mut lease)?;
            let matched = identify_suspect(&verifier, &bytes, log10_threshold, linear)?;
            Ok(Response::Identify { matched })
        }
        Request::Inspect { target } => {
            let _span = Span::enter(&SERVICE_INSPECT_NS);
            inspect_target(&target, &mut lease).map(Response::Inspect)
        }
        Request::Ping | Request::Shutdown => unreachable!("handled by process_job"),
    }
}

// ---------------------------------------------------------------------------
// Request helpers
// ---------------------------------------------------------------------------

fn read_path(path: &str, what: &str) -> Result<Vec<u8>, ServiceError> {
    std::fs::read(path).map_err(|source| ServiceError::Io {
        what: format!("reading the {what} at {path}"),
        source,
    })
}

fn load_blob(
    blob: &Blob,
    what: &str,
    lease: &mut BudgetLease<'_>,
) -> Result<Vec<u8>, ServiceError> {
    let bytes = match blob {
        Blob::Inline(bytes) => bytes.clone(),
        Blob::Path(path) => read_path(path, what)?,
    };
    lease.charge(bytes.len() as u64);
    Ok(bytes)
}

fn remember_path_key(lru: &mut FamilyLru, stamped: &Option<(&str, PathStamp)>, key: CacheKey) {
    if let Some((path, stamp)) = stamped {
        if lru.path_keys.len() >= PATH_KEY_CAP && !lru.path_keys.contains_key(*path) {
            lru.path_keys.clear();
        }
        lru.path_keys.insert((*path).to_string(), (*stamp, key));
    }
}

fn load_family(
    inner: &Arc<Inner>,
    secrets: &Blob,
    lease: &mut BudgetLease<'_>,
) -> Result<Arc<FamilyEntry>, ServiceError> {
    // Fast path for path blobs: an unchanged (mtime, length) stamp
    // resolves to the previously hashed key without reading the vault,
    // so a warm hit costs a stat, not a half-megabyte read-and-hash.
    let stamped = match secrets {
        Blob::Path(path) => stat_stamp(path).map(|s| (path.as_str(), s)),
        Blob::Inline(_) => None,
    };
    if let Some((path, stamp)) = &stamped {
        let mut lru = inner.cache.lock().unwrap();
        lru.tick += 1;
        let tick = lru.tick;
        if let Some(key) = lru
            .path_keys
            .get(*path)
            .and_then(|(s, key)| (s == stamp).then_some(*key))
        {
            if let Some((at, entry)) = lru.entries.get_mut(&key) {
                *at = tick;
                if Telemetry::enabled() {
                    SERVICE_CACHE_HITS.incr();
                }
                return Ok(Arc::clone(entry));
            }
        }
    }
    let bytes = load_blob(secrets, "owner vault", lease)?;
    let key = cache_key(&bytes);
    {
        let mut lru = inner.cache.lock().unwrap();
        lru.tick += 1;
        let tick = lru.tick;
        remember_path_key(&mut lru, &stamped, key);
        if let Some((at, entry)) = lru.entries.get_mut(&key) {
            *at = tick;
            if Telemetry::enabled() {
                SERVICE_CACHE_HITS.incr();
            }
            return Ok(Arc::clone(entry));
        }
    }
    // Build the entry outside the LRU lock: locate_watermark is the
    // expensive cold-start step and must not serialize unrelated families.
    if Telemetry::enabled() {
        SERVICE_CACHE_MISSES.incr();
    }
    let built = Arc::new(FamilyEntry::load(&bytes)?);
    let mut lru = inner.cache.lock().unwrap();
    lru.tick += 1;
    let tick = lru.tick;
    if let Some((stamp, existing)) = lru.entries.get_mut(&key) {
        // Lost a build race; keep the incumbent.
        *stamp = tick;
        return Ok(Arc::clone(existing));
    }
    if lru.entries.len() >= lru.capacity {
        if let Some((&evict, _)) = lru.entries.iter().min_by_key(|(_, (stamp, _))| *stamp) {
            lru.entries.remove(&evict);
            if Telemetry::enabled() {
                SERVICE_EVICTIONS.incr();
            }
        }
    }
    lru.entries.insert(key, (tick, Arc::clone(&built)));
    Ok(built)
}

fn verify_suspect(family: &FamilyEntry, bytes: &[u8]) -> Result<ExtractionReport, ServiceError> {
    if artifact_version(bytes)? == FORMAT_V2 {
        let sparse = SparseArtifact::open(bytes)?;
        Ok(family.verify(&sparse)?)
    } else {
        let model = decode_model(bytes)?;
        Ok(family.verify(&model)?)
    }
}

fn identify_suspect(
    kind: &VerifierKind,
    bytes: &[u8],
    log10_threshold: f64,
    linear: bool,
) -> Result<Option<(DeviceFingerprint, ReportSummary)>, ServiceError> {
    if artifact_version(bytes)? == FORMAT_V2 {
        let sparse = SparseArtifact::open(bytes)?;
        identify_grid(kind, &sparse, log10_threshold, linear)
    } else {
        let model = decode_model(bytes)?;
        identify_grid(kind, &model, log10_threshold, linear)
    }
}

fn identify_grid<S: GridSource + ?Sized>(
    kind: &VerifierKind,
    suspect: &S,
    log10_threshold: f64,
    linear: bool,
) -> Result<Option<(DeviceFingerprint, ReportSummary)>, ServiceError> {
    let matched = match kind {
        VerifierKind::Indexed(iv) if !linear => iv.identify_leak(suspect, log10_threshold)?,
        VerifierKind::Indexed(iv) => iv.verifier().identify_leak(suspect, log10_threshold)?,
        VerifierKind::Linear(v) => v.identify_leak(suspect, log10_threshold)?,
    };
    Ok(matched.map(|(fp, report)| (fp.clone(), ReportSummary::from(&report))))
}

fn load_verifier(
    family: &Arc<FamilyEntry>,
    registry: &Blob,
    lease: &mut BudgetLease<'_>,
) -> Result<VerifierKind, ServiceError> {
    let bytes = load_blob(registry, "fleet registry", lease)?;
    let key = cache_key(&bytes);
    if let Some(kind) = family.verifiers.lock().unwrap().get(&key) {
        if Telemetry::enabled() {
            SERVICE_CACHE_HITS.incr();
        }
        return Ok(kind.clone());
    }
    if Telemetry::enabled() {
        SERVICE_CACHE_MISSES.incr();
    }
    let built = build_verifier(family, registry, &bytes)?;
    let mut map = family.verifiers.lock().unwrap();
    Ok(map.entry(key).or_insert(built).clone())
}

fn build_verifier(
    family: &Arc<FamilyEntry>,
    registry: &Blob,
    bytes: &[u8],
) -> Result<VerifierKind, ServiceError> {
    if bytes.len() < 4 {
        return Err(ServiceError::Other(
            "registry input is too short to carry a container magic".to_string(),
        ));
    }
    match &bytes[..4] {
        b"EMFR" => {
            let (fp_cfg, devices) = decode_registry(bytes)?;
            Ok(VerifierKind::Linear(Arc::new(linear_engine(
                family, &fp_cfg, devices,
            )?)))
        }
        b"EMFB" => {
            let mut stream = FleetBundleStream::open(std::io::Cursor::new(bytes))?;
            let fp_cfg = *stream.fingerprint_config();
            let devices = (&mut stream)
                .map(|d| d.map(|dev| dev.fingerprint))
                .collect::<Result<Vec<_>, _>>()?;
            Ok(VerifierKind::Linear(Arc::new(linear_engine(
                family, &fp_cfg, devices,
            )?)))
        }
        b"EMFM" => {
            let Blob::Path(manifest_path) = registry else {
                return Err(ServiceError::Other(
                    "shard manifests must be passed as a path blob so shard files can be \
                     resolved relative to the manifest"
                        .to_string(),
                ));
            };
            let dir = Path::new(manifest_path)
                .parent()
                .map(PathBuf::from)
                .unwrap_or_default();
            let sharded = load_sharded_registry(bytes, |shard| std::fs::read(dir.join(shard)))?;
            let fp_cfg = *sharded.fingerprint_config();
            let devices = sharded.devices().to_vec();
            let index = sharded.index().clone();
            let linear = linear_engine(family, &fp_cfg, devices)?;
            Ok(VerifierKind::Indexed(Arc::new(IndexedFleetVerifier::new(
                linear, index,
            )?)))
        }
        magic => Err(ServiceError::Other(format!(
            "unrecognised registry container magic {:?} (expected EMFR, EMFB, or EMFM)",
            String::from_utf8_lossy(magic)
        ))),
    }
}

/// Builds a linear fleet verifier, reusing a warm provisioner's family cache
/// when one exists for the same fingerprint configuration.
fn linear_engine(
    family: &Arc<FamilyEntry>,
    fp_cfg: &WatermarkConfig,
    devices: Vec<DeviceFingerprint>,
) -> Result<FleetVerifier, ServiceError> {
    if let Some(provisioner) = family.provisioners.lock().unwrap().get(&fp_key(fp_cfg)) {
        return Ok(provisioner.verifier(devices));
    }
    Ok(FleetVerifier::from_parts(
        family.secrets.clone(),
        *fp_cfg,
        devices,
    )?)
}

fn inspect_target(
    target: &Blob,
    lease: &mut BudgetLease<'_>,
) -> Result<InspectSummary, ServiceError> {
    if let Blob::Path(path) = target {
        // Sniff the magic first so fleet bundles stream instead of loading
        // whole into memory.
        let mut head = [0u8; 4];
        let mut file = std::fs::File::open(path).map_err(|source| ServiceError::Io {
            what: format!("opening {path} for inspection"),
            source,
        })?;
        file.read_exact(&mut head)
            .map_err(|source| ServiceError::Io {
                what: format!("reading the container magic of {path}"),
                source,
            })?;
        if &head == b"EMFB" {
            let file = std::fs::File::open(path).map_err(|source| ServiceError::Io {
                what: format!("opening {path} for inspection"),
                source,
            })?;
            let stream = FleetBundleStream::open(std::io::BufReader::new(file))?;
            return Ok(InspectSummary::Bundle {
                device_count: stream.device_count() as u32,
                fingerprint_config: *stream.fingerprint_config(),
            });
        }
    }
    let bytes = load_blob(target, "inspection target", lease)?;
    inspect_bytes(&bytes)
}

fn inspect_bytes(bytes: &[u8]) -> Result<InspectSummary, ServiceError> {
    if bytes.len() < 4 {
        return Err(ServiceError::Other(
            "input is too short to carry a container magic".to_string(),
        ));
    }
    match &bytes[..4] {
        b"EMQM" => {
            let version = artifact_version(bytes)?;
            if version == FORMAT_V2 {
                let artifact = SparseArtifact::open(bytes)?;
                let layers = artifact.layer_count();
                let mut cells = 0u64;
                for l in 0..layers {
                    let (rows, cols) = artifact.layer_dims(l);
                    cells += (rows * cols) as u64;
                }
                Ok(InspectSummary::Artifact {
                    format_version: version,
                    scheme: artifact.scheme().to_string(),
                    layers: layers as u32,
                    cells,
                })
            } else {
                let model = decode_model(bytes)?;
                let mut cells = 0u64;
                for l in 0..model.layer_count() {
                    let (rows, cols) = model.layer_dims(l);
                    cells += (rows * cols) as u64;
                }
                Ok(InspectSummary::Artifact {
                    format_version: version,
                    scheme: model.scheme.clone(),
                    layers: model.layer_count() as u32,
                    cells,
                })
            }
        }
        b"EMWS" => {
            let secrets = decode_secrets(bytes)?;
            Ok(InspectSummary::Secrets {
                layers: secrets.original.layer_count() as u32,
                signature_bits: secrets.signature.len() as u32,
            })
        }
        b"EMFR" => {
            let (fp_cfg, devices) = decode_registry(bytes)?;
            Ok(InspectSummary::Registry {
                device_count: devices.len() as u32,
                fingerprint_config: fp_cfg,
            })
        }
        b"EMFB" => {
            let stream = FleetBundleStream::open(std::io::Cursor::new(bytes))?;
            Ok(InspectSummary::Bundle {
                device_count: stream.device_count() as u32,
                fingerprint_config: *stream.fingerprint_config(),
            })
        }
        b"EMFM" => {
            let manifest = decode_manifest(bytes)?;
            Ok(InspectSummary::Manifest {
                shard_count: manifest.shards.len() as u32,
                device_count: manifest.total_devices,
            })
        }
        magic => Err(ServiceError::Other(format!(
            "unrecognised container magic {:?}",
            String::from_utf8_lossy(magic)
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip_request(req: Request) {
        let payload = encode_request(42, &req);
        let (id, decoded) = decode_request(&payload).expect("round trip");
        assert_eq!(id, 42);
        assert_eq!(decoded, req);
    }

    fn round_trip_response(resp: Response) {
        let payload = encode_response(7, &resp);
        let (id, decoded) = decode_response(&payload).expect("round trip");
        assert_eq!(id, 7);
        assert_eq!(decoded, resp);
    }

    fn sample_report() -> ReportSummary {
        ReportSummary {
            total_bits: 48,
            matched_bits: 47,
            wer: 97.9,
            log10_p_chance: -12.5,
        }
    }

    fn sample_fp() -> DeviceFingerprint {
        DeviceFingerprint {
            device_id: "edge-007".to_string(),
            selection_seed: 0xA5A5,
            signature_seed: 0x5A5A,
        }
    }

    #[test]
    fn request_payloads_round_trip() {
        round_trip_request(Request::Ping);
        round_trip_request(Request::Shutdown);
        round_trip_request(Request::Verify {
            secrets: Blob::Path("/tmp/s.emws".to_string()),
            suspect: Blob::Inline(vec![1, 2, 3]),
            log10_threshold: -9.0,
        });
        round_trip_request(Request::Provision {
            secrets: Blob::Inline(vec![9; 16]),
            fingerprint_config: WatermarkConfig {
                bits_per_layer: 3,
                pool_ratio: 10,
                ..WatermarkConfig::default()
            },
            device_id: "device-123".to_string(),
        });
        round_trip_request(Request::IdentifyLeak {
            secrets: Blob::Path("/tmp/s.emws".to_string()),
            registry: Blob::Path("/tmp/fleet.emfr".to_string()),
            suspect: Blob::Inline(vec![0xEE; 8]),
            log10_threshold: -6.0,
            linear: true,
        });
        round_trip_request(Request::Inspect {
            target: Blob::Inline(vec![0x42]),
        });
    }

    #[test]
    fn response_payloads_round_trip() {
        round_trip_response(Response::Pong);
        round_trip_response(Response::ShutdownComplete);
        round_trip_response(Response::Busy { retry_after_ms: 50 });
        round_trip_response(Response::Error {
            message: "boom".to_string(),
        });
        round_trip_response(Response::Verify {
            report: sample_report(),
            proved: true,
        });
        round_trip_response(Response::Provision {
            fingerprint: sample_fp(),
            artifact: vec![0xAB; 32],
        });
        round_trip_response(Response::Identify { matched: None });
        round_trip_response(Response::Identify {
            matched: Some((sample_fp(), sample_report())),
        });
        round_trip_response(Response::Inspect(InspectSummary::Artifact {
            format_version: 2,
            scheme: "awq-int4".to_string(),
            layers: 2,
            cells: 512,
        }));
        round_trip_response(Response::Inspect(InspectSummary::Manifest {
            shard_count: 3,
            device_count: 3000,
        }));
        round_trip_response(Response::Inspect(InspectSummary::Secrets {
            layers: 2,
            signature_bits: 6,
        }));
    }

    #[test]
    fn malformed_payloads_are_rejected() {
        assert!(decode_request(b"nope").is_err());
        // Wrong magic.
        let mut payload = encode_request(1, &Request::Ping);
        payload[0] = b'X';
        assert!(decode_request(&payload).is_err());
        // Wrong protocol version.
        let mut payload = encode_request(1, &Request::Ping);
        payload[4..8].copy_from_slice(&99u32.to_le_bytes());
        assert!(matches!(
            decode_request(&payload),
            Err(CodecError::BadVersion(99))
        ));
        // Unknown op.
        let mut payload = encode_request(1, &Request::Ping);
        payload[16] = 0xCC;
        assert!(decode_request(&payload).is_err());
        // Trailing garbage.
        let mut payload = encode_request(1, &Request::Ping);
        payload.push(0);
        assert!(decode_request(&payload).is_err());
        // Truncated blob.
        let payload = encode_request(
            1,
            &Request::Inspect {
                target: Blob::Inline(vec![1, 2, 3, 4]),
            },
        );
        assert!(decode_request(&payload[..payload.len() - 2]).is_err());
    }

    #[test]
    fn frames_round_trip_and_reject_oversize() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"hello").unwrap();
        write_frame(&mut wire, b"").unwrap();
        let mut cursor = std::io::Cursor::new(wire);
        assert_eq!(read_frame(&mut cursor).unwrap().unwrap(), b"hello");
        assert_eq!(read_frame(&mut cursor).unwrap().unwrap(), b"");
        assert!(read_frame(&mut cursor).unwrap().is_none());

        // Oversized length prefix.
        let bad = ((MAX_FRAME_BYTES + 1) as u32).to_le_bytes();
        assert!(read_frame(std::io::Cursor::new(bad.to_vec())).is_err());

        // EOF mid-frame.
        let mut wire = Vec::new();
        write_frame(&mut wire, b"hello").unwrap();
        wire.truncate(6);
        let mut cursor = std::io::Cursor::new(wire);
        assert!(read_frame(&mut cursor).is_err());
    }

    #[test]
    fn ping_and_shutdown_flow_through_the_pool() {
        let service = Service::start(ServiceConfig {
            workers: 2,
            ..ServiceConfig::default()
        });
        assert_eq!(service.request(1, &Request::Ping), Response::Pong);
        assert_eq!(
            service.request(2, &Request::Shutdown),
            Response::ShutdownComplete
        );
        service.wait_stopped();
    }

    #[test]
    fn duplicate_shutdowns_do_not_deadlock() {
        // A second Shutdown submitted while the first is draining must be
        // answered immediately — enqueueing it would keep the drain wait
        // stuck on a non-empty queue forever. Exercise both pool widths
        // that used to wedge: one worker (queued second shutdown) and two
        // workers (both shutdowns in flight).
        for workers in [1, 2] {
            let service = Service::start(ServiceConfig {
                workers,
                ..ServiceConfig::default()
            });
            let (tx, rx) = std::sync::mpsc::channel();
            for id in 0..2u64 {
                let tx = tx.clone();
                service.submit(
                    encode_request(id, &Request::Shutdown),
                    Box::new(move |payload| {
                        let _ = tx.send(payload);
                    }),
                );
            }
            let mut responses: Vec<Response> = (0..2)
                .map(|_| {
                    let payload = rx
                        .recv_timeout(std::time::Duration::from_secs(10))
                        .expect("both shutdowns must be answered");
                    decode_response(&payload).unwrap().1
                })
                .collect();
            responses.sort_by_key(|r| matches!(r, Response::ShutdownComplete));
            assert!(matches!(&responses[0], Response::Error { message }
                if message.contains("shutting down")));
            assert_eq!(responses[1], Response::ShutdownComplete);
            service.wait_stopped();
        }
    }

    #[test]
    fn duplicate_shutdowns_drain_inline_without_workers() {
        let service = Service::start(ServiceConfig {
            workers: 0,
            ..ServiceConfig::default()
        });
        let (tx, rx) = std::sync::mpsc::channel();
        for id in 0..2u64 {
            let tx = tx.clone();
            service.submit(
                encode_request(id, &Request::Shutdown),
                Box::new(move |payload| {
                    let _ = tx.send(payload);
                }),
            );
        }
        service.drain_pending();
        let responses: Vec<(u64, Response)> = (0..2)
            .map(|_| decode_response(&rx.recv().unwrap()).unwrap())
            .collect();
        // The second submit is rejected synchronously, so it lands first.
        assert!(matches!(&responses[0], (1, Response::Error { message })
            if message.contains("shutting down")));
        assert_eq!(responses[1], (0, Response::ShutdownComplete));
        assert!(service.is_stopped());
    }

    #[test]
    fn requests_after_shutdown_are_refused() {
        let service = Service::start(ServiceConfig {
            workers: 1,
            ..ServiceConfig::default()
        });
        assert_eq!(
            service.request(1, &Request::Shutdown),
            Response::ShutdownComplete
        );
        match service.request(2, &Request::Ping) {
            Response::Error { message } => assert!(message.contains("shutting down")),
            other => panic!("expected an error, got {other:?}"),
        }
    }

    #[test]
    fn full_queue_returns_busy_with_retry_hint() {
        let service = Service::start(ServiceConfig {
            workers: 0,
            queue_capacity: 2,
            retry_after_ms: 123,
            ..ServiceConfig::default()
        });
        let park = |id| {
            service.submit(encode_request(id, &Request::Ping), Box::new(|_| {}));
        };
        park(1);
        park(2);
        let (tx, rx) = std::sync::mpsc::channel();
        service.submit(
            encode_request(3, &Request::Ping),
            Box::new(move |payload| {
                let _ = tx.send(payload);
            }),
        );
        let (id, resp) = decode_response(&rx.recv().unwrap()).unwrap();
        assert_eq!(id, 3);
        assert_eq!(
            resp,
            Response::Busy {
                retry_after_ms: 123
            }
        );
        // The parked jobs still complete once drained.
        service.drain_pending();
        assert_eq!(service.queue_depth(), 0);
    }

    #[test]
    fn malformed_frames_get_error_responses_with_the_peeked_id() {
        let service = Service::start(ServiceConfig {
            workers: 0,
            ..ServiceConfig::default()
        });
        let mut payload = encode_request(77, &Request::Ping);
        payload.push(0xFF); // trailing garbage
        let (tx, rx) = std::sync::mpsc::channel();
        service.submit(
            payload,
            Box::new(move |p| {
                let _ = tx.send(p);
            }),
        );
        service.drain_pending();
        let (id, resp) = decode_response(&rx.recv().unwrap()).unwrap();
        assert_eq!(id, 77);
        match resp {
            Response::Error { message } => assert!(message.contains("malformed")),
            other => panic!("expected an error, got {other:?}"),
        }
    }

    #[test]
    fn budget_lease_blocks_then_releases() {
        let budget = ResidentBudget::new(Some(100));
        let mut a = BudgetLease::new(&budget);
        a.charge(60);
        // A holder may overdraft on follow-up charges.
        a.charge(60);
        assert_eq!(*budget.used.lock().unwrap(), 120);
        drop(a);
        assert_eq!(*budget.used.lock().unwrap(), 0);
        // An oversized first charge clamps instead of deadlocking.
        let mut b = BudgetLease::new(&budget);
        b.charge(10_000);
        assert_eq!(*budget.used.lock().unwrap(), 10_000);
        drop(b);
        assert_eq!(*budget.used.lock().unwrap(), 0);
    }
}
