//! Watermark signatures: Rademacher-distributed `±1` bit sequences
//! (§4.1 / Eq. 8 of the paper).

use emmark_tensor::rng::Xoshiro256;
use serde::{Deserialize, Serialize};

/// An owner's signature sequence `B = {b_1, …, b_|B|}`, `b_i ∈ {−1, +1}`.
///
/// # Examples
///
/// ```
/// use emmark_core::signature::Signature;
/// let sig = Signature::generate(128, 42);
/// assert_eq!(sig.len(), 128);
/// assert!(sig.bits().iter().all(|&b| b == 1 || b == -1));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Signature {
    bits: Vec<i8>,
}

impl Signature {
    /// Generates `len` Rademacher bits from `seed` (each bit is `+1` or
    /// `−1` with probability 0.5, as Eq. 8 assumes).
    pub fn generate(len: usize, seed: u64) -> Self {
        let mut rng = Xoshiro256::seed_from_u64(seed ^ 0x5160_7A7B_u64);
        let bits = (0..len).map(|_| rng.rademacher()).collect();
        Self { bits }
    }

    /// Builds a signature from explicit bits.
    ///
    /// # Panics
    ///
    /// Panics if any bit is not `±1`.
    pub fn from_bits(bits: Vec<i8>) -> Self {
        assert!(
            bits.iter().all(|&b| b == 1 || b == -1),
            "signature bits must be ±1"
        );
        Self { bits }
    }

    /// The bit sequence.
    pub fn bits(&self) -> &[i8] {
        &self.bits
    }

    /// Signature length `|B|`.
    pub fn len(&self) -> usize {
        self.bits.len()
    }

    /// Whether the signature is empty.
    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }

    /// The per-layer slice of bits for layer `l` when `|B|` is spread
    /// evenly over `n` layers (`|B| / n` bits each, §4.1 "Signature
    /// Insertion").
    ///
    /// # Panics
    ///
    /// Panics if `len` is not divisible by `n_layers` or `l` is out of
    /// range.
    pub fn layer_bits(&self, l: usize, n_layers: usize) -> &[i8] {
        assert_eq!(
            self.bits.len() % n_layers,
            0,
            "|B| must divide evenly over layers"
        );
        let per = self.bits.len() / n_layers;
        assert!(l < n_layers, "layer index out of range");
        &self.bits[l * per..(l + 1) * per]
    }

    /// Number of positions where `deltas` equals the signature bit —
    /// `|B|'` of Eq. 7.
    ///
    /// # Panics
    ///
    /// Panics if `deltas.len() != self.len()`.
    pub fn matching_bits(&self, deltas: &[i8]) -> usize {
        assert_eq!(deltas.len(), self.bits.len(), "delta length mismatch");
        self.bits.iter().zip(deltas).filter(|(b, d)| b == d).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_and_seed_sensitive() {
        let a = Signature::generate(64, 1);
        let b = Signature::generate(64, 1);
        let c = Signature::generate(64, 2);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn bits_are_balanced_in_expectation() {
        let sig = Signature::generate(100_000, 3);
        let sum: i64 = sig.bits().iter().map(|&b| b as i64).sum();
        assert!(sum.abs() < 1500, "imbalance {sum}");
    }

    #[test]
    fn layer_bits_partition_the_signature() {
        let sig = Signature::generate(24, 4);
        let mut reassembled = Vec::new();
        for l in 0..4 {
            reassembled.extend_from_slice(sig.layer_bits(l, 4));
        }
        assert_eq!(reassembled, sig.bits());
        assert_eq!(sig.layer_bits(0, 4).len(), 6);
    }

    #[test]
    fn matching_bits_counts_exact_equality() {
        let sig = Signature::from_bits(vec![1, -1, 1, -1]);
        assert_eq!(sig.matching_bits(&[1, -1, 1, -1]), 4);
        assert_eq!(sig.matching_bits(&[1, 1, 1, 1]), 2);
        assert_eq!(sig.matching_bits(&[0, 0, 0, 0]), 0);
        assert_eq!(sig.matching_bits(&[2, -2, 3, 0]), 0);
    }

    #[test]
    #[should_panic(expected = "must be ±1")]
    fn invalid_bits_rejected() {
        let _ = Signature::from_bits(vec![1, 0, -1]);
    }

    #[test]
    #[should_panic(expected = "must divide evenly")]
    fn uneven_layer_split_rejected() {
        let sig = Signature::generate(10, 5);
        let _ = sig.layer_bits(0, 3);
    }
}
