//! The paper's two comparison schemes: **RandomWM** (signatures at
//! uniformly random indices) and **SpecMark** (spread-spectrum signatures
//! in the high-frequency DCT band, Chen et al. 2020).
//!
//! Table 1's story is reproduced mechanistically:
//!
//! * RandomWM bumps integers without EmMark's min/max-level exclusion, so
//!   a bump on a clamped cell wraps around in two's complement — flipping
//!   the largest weight of a scale block to the most negative value.
//!   INT4 grids clamp a far larger share of cells than INT8 grids (one
//!   per 16-element group vs one per full column), which is exactly why
//!   RandomWM holds up at INT8 and degrades at INT4.
//! * SpecMark adds perturbations of amplitude `ε ≪ 1` to DCT
//!   coefficients. Rounding back to the integer grid erases them, so
//!   extraction finds nothing (0% WER) — while the same code on the
//!   full-precision weights extracts 100%.

use crate::signature::Signature;
use crate::watermark::{ExtractionReport, Locations};
use emmark_nanolm::TransformerModel;
use emmark_quant::QuantizedModel;
use emmark_tensor::dct::{dct2, dct3, high_frequency_start};
use emmark_tensor::rng::{SplitMix64, Xoshiro256};

/// RandomWM configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RandomWmConfig {
    /// Bits inserted per quantized layer.
    pub bits_per_layer: usize,
    /// Location seed.
    pub seed: u64,
}

impl Default for RandomWmConfig {
    fn default() -> Self {
        Self {
            bits_per_layer: 8,
            seed: 100,
        }
    }
}

/// RandomWM's locations: uniformly random distinct cells per layer.
pub fn randomwm_locations(model: &QuantizedModel, cfg: &RandomWmConfig) -> Locations {
    let mut sm = SplitMix64::new(cfg.seed ^ 0x7A4D_11A3);
    model
        .layers
        .iter()
        .map(|layer| {
            let mut rng = Xoshiro256::seed_from_u64(sm.next_u64());
            rng.sample_without_replacement(layer.len(), cfg.bits_per_layer)
        })
        .collect()
}

/// Inserts `signature` at random locations with hardware (wrapping)
/// integer arithmetic.
///
/// # Panics
///
/// Panics if the signature length is not `bits_per_layer × layers`.
pub fn randomwm_insert(
    model: &mut QuantizedModel,
    signature: &Signature,
    cfg: &RandomWmConfig,
) -> Locations {
    let n = model.layer_count();
    assert_eq!(
        signature.len(),
        cfg.bits_per_layer * n,
        "signature length mismatch"
    );
    let locations = randomwm_locations(model, cfg);
    for (l, locs) in locations.iter().enumerate() {
        let bits = signature.layer_bits(l, n);
        for (&f, &b) in locs.iter().zip(bits) {
            model.layers[l].bump_q_flat_wrapping(f, b);
        }
    }
    locations
}

/// Extracts a RandomWM signature by exact `ΔW == b` matching at the
/// re-derived random locations.
///
/// # Panics
///
/// Panics if shapes or signature length mismatch.
pub fn randomwm_extract(
    suspect: &QuantizedModel,
    original: &QuantizedModel,
    signature: &Signature,
    cfg: &RandomWmConfig,
) -> ExtractionReport {
    let n = original.layer_count();
    assert_eq!(suspect.layer_count(), n, "layer count mismatch");
    let locations = randomwm_locations(original, cfg);
    let mut matched = 0;
    let mut total = 0;
    for (l, locs) in locations.iter().enumerate() {
        let bits = signature.layer_bits(l, n);
        for (&f, &b) in locs.iter().zip(bits) {
            let delta =
                suspect.layers[l].q_at_flat(f) as i16 - original.layers[l].q_at_flat(f) as i16;
            if delta == b as i16 {
                matched += 1;
            }
            total += 1;
        }
    }
    ExtractionReport {
        total_bits: total,
        matched_bits: matched,
    }
}

/// SpecMark configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpecMarkConfig {
    /// Bits inserted per layer.
    pub bits_per_layer: usize,
    /// Coefficient selection seed.
    pub seed: u64,
    /// Perturbation amplitude added to each chosen DCT coefficient.
    pub epsilon: f64,
    /// Fraction of the spectrum counted as "high frequency".
    pub band_fraction: f64,
    /// Block length for the block DCT (weights are transformed in
    /// contiguous blocks, JPEG-style, keeping the transform O(n·block)).
    pub block: usize,
}

impl Default for SpecMarkConfig {
    fn default() -> Self {
        Self {
            bits_per_layer: 8,
            seed: 100,
            epsilon: 0.01,
            band_fraction: 0.25,
            block: 256,
        }
    }
}

/// A SpecMark embedding position: `(block index, coefficient index)`.
type SpecSlot = (usize, usize);

/// Chooses per-layer embedding slots in the high-frequency band.
fn specmark_slots(cell_count: usize, cfg: &SpecMarkConfig, layer_seed: u64) -> Vec<SpecSlot> {
    let block = cfg.block.min(cell_count.max(1));
    let n_blocks = cell_count.div_ceil(block);
    // Enumerate the high-frequency coefficients of every block.
    let mut slots: Vec<SpecSlot> = Vec::new();
    for bidx in 0..n_blocks {
        let len = (cell_count - bidx * block).min(block);
        if len < 2 {
            continue;
        }
        let start = high_frequency_start(len, cfg.band_fraction);
        for c in start..len {
            slots.push((bidx, c));
        }
    }
    let mut rng = Xoshiro256::seed_from_u64(layer_seed);
    let picks = rng.sample_without_replacement(slots.len(), cfg.bits_per_layer.min(slots.len()));
    picks.into_iter().map(|p| slots[p]).collect()
}

/// The weights of one layer as f64 blocks.
fn blocks_of(values: &[f64], block: usize) -> Vec<Vec<f64>> {
    values.chunks(block.max(1)).map(|c| c.to_vec()).collect()
}

fn embed_in_values(values: &mut [f64], cfg: &SpecMarkConfig, layer_seed: u64, bits: &[i8]) {
    let slots = specmark_slots(values.len(), cfg, layer_seed);
    let block = cfg.block.min(values.len().max(1));
    let mut blocks = blocks_of(values, block);
    for (slot, &b) in slots.iter().zip(bits) {
        let coefs = dct2(&blocks[slot.0]);
        let mut coefs = coefs;
        coefs[slot.1] += cfg.epsilon * b as f64;
        blocks[slot.0] = dct3(&coefs);
    }
    let mut i = 0;
    for blk in blocks {
        for v in blk {
            values[i] = v;
            i += 1;
        }
    }
}

fn extract_from_values(
    suspect: &[f64],
    original: &[f64],
    cfg: &SpecMarkConfig,
    layer_seed: u64,
    bits: &[i8],
) -> (usize, usize) {
    let slots = specmark_slots(original.len(), cfg, layer_seed);
    let block = cfg.block.min(original.len().max(1));
    let sus_blocks = blocks_of(suspect, block);
    let orig_blocks = blocks_of(original, block);
    let mut matched = 0;
    let mut total = 0;
    for (slot, &b) in slots.iter().zip(bits) {
        let cs = dct2(&sus_blocks[slot.0]);
        let co = dct2(&orig_blocks[slot.0]);
        let delta = cs[slot.1] - co[slot.1];
        // Detection: correct sign and at least 40% of the amplitude.
        if delta.signum() as i8 == b && delta.abs() >= 0.4 * cfg.epsilon {
            matched += 1;
        }
        total += 1;
    }
    (matched, total)
}

/// Per-layer sub-seeds for SpecMark.
fn specmark_layer_seeds(seed: u64, n: usize) -> Vec<u64> {
    let mut sm = SplitMix64::new(seed ^ 0x5BEC_3A2C);
    (0..n).map(|_| sm.next_u64()).collect()
}

/// Inserts a SpecMark signature into a *quantized* model: embed in the
/// DCT domain, then round back to the integer grid (which is what a
/// deployed INT8/INT4 model forces). This is the paper's "SpecMark on
/// embedded LLMs" condition.
///
/// # Panics
///
/// Panics if the signature length is not `bits_per_layer × layers`.
pub fn specmark_insert_quantized(
    model: &mut QuantizedModel,
    signature: &Signature,
    cfg: &SpecMarkConfig,
) {
    let n = model.layer_count();
    assert_eq!(
        signature.len(),
        cfg.bits_per_layer * n,
        "signature length mismatch"
    );
    let seeds = specmark_layer_seeds(cfg.seed, n);
    for (l, seed) in seeds.iter().enumerate() {
        let bits = signature.layer_bits(l, n);
        let layer = &mut model.layers[l];
        let mut values: Vec<f64> = layer.q_values().iter().map(|&q| q as f64).collect();
        embed_in_values(&mut values, cfg, *seed, bits);
        let qmax = layer.qmax() as f64;
        for (f, v) in values.iter().enumerate() {
            let rounded = v.round().clamp(-qmax, qmax) as i8;
            layer.set_q_flat(f, rounded);
        }
    }
}

/// Extracts a SpecMark signature from a quantized suspect.
///
/// # Panics
///
/// Panics if shapes or signature length mismatch.
pub fn specmark_extract_quantized(
    suspect: &QuantizedModel,
    original: &QuantizedModel,
    signature: &Signature,
    cfg: &SpecMarkConfig,
) -> ExtractionReport {
    let n = original.layer_count();
    assert_eq!(suspect.layer_count(), n, "layer count mismatch");
    let seeds = specmark_layer_seeds(cfg.seed, n);
    let mut matched = 0;
    let mut total = 0;
    for (l, seed) in seeds.iter().enumerate() {
        let bits = signature.layer_bits(l, n);
        let sus: Vec<f64> = suspect.layers[l]
            .q_values()
            .iter()
            .map(|&q| q as f64)
            .collect();
        let orig: Vec<f64> = original.layers[l]
            .q_values()
            .iter()
            .map(|&q| q as f64)
            .collect();
        let (m, t) = extract_from_values(&sus, &orig, cfg, *seed, bits);
        matched += m;
        total += t;
    }
    ExtractionReport {
        total_bits: total,
        matched_bits: matched,
    }
}

/// Inserts SpecMark into a *full-precision* model — the regime the
/// scheme was designed for, kept as the sanity control showing the 0%
/// quantized WER is a property of the integer grid, not of our SpecMark
/// implementation.
///
/// # Panics
///
/// Panics if the signature length is not `bits_per_layer × layers`.
pub fn specmark_insert_fp(
    model: &mut TransformerModel,
    signature: &Signature,
    cfg: &SpecMarkConfig,
) {
    let n = model.cfg.quant_layer_count();
    assert_eq!(
        signature.len(),
        cfg.bits_per_layer * n,
        "signature length mismatch"
    );
    let seeds = specmark_layer_seeds(cfg.seed, n);
    for (l, lin) in model.linear_layers_mut().into_iter().enumerate() {
        let bits_start = l * cfg.bits_per_layer;
        let bits: Vec<i8> = signature.bits()[bits_start..bits_start + cfg.bits_per_layer].to_vec();
        let mut values: Vec<f64> = lin.weight.value.iter().map(|&w| w as f64).collect();
        embed_in_values(&mut values, cfg, seeds[l], &bits);
        for (w, v) in lin.weight.value.iter_mut().zip(values.iter()) {
            *w = *v as f32;
        }
    }
}

/// Extracts SpecMark from a full-precision suspect.
///
/// # Panics
///
/// Panics if shapes or signature length mismatch.
pub fn specmark_extract_fp(
    suspect: &TransformerModel,
    original: &TransformerModel,
    signature: &Signature,
    cfg: &SpecMarkConfig,
) -> ExtractionReport {
    let n = original.cfg.quant_layer_count();
    let seeds = specmark_layer_seeds(cfg.seed, n);
    let sus_layers = suspect.linear_layers();
    let orig_layers = original.linear_layers();
    assert_eq!(sus_layers.len(), orig_layers.len(), "layer count mismatch");
    let mut matched = 0;
    let mut total = 0;
    for l in 0..n {
        let bits_start = l * cfg.bits_per_layer;
        let bits: Vec<i8> = signature.bits()[bits_start..bits_start + cfg.bits_per_layer].to_vec();
        let sus: Vec<f64> = sus_layers[l]
            .weight
            .value
            .iter()
            .map(|&w| w as f64)
            .collect();
        let orig: Vec<f64> = orig_layers[l]
            .weight
            .value
            .iter()
            .map(|&w| w as f64)
            .collect();
        let (m, t) = extract_from_values(&sus, &orig, cfg, seeds[l], &bits);
        matched += m;
        total += t;
    }
    ExtractionReport {
        total_bits: total,
        matched_bits: matched,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use emmark_nanolm::config::ModelConfig;
    use emmark_quant::rtn::quantize_linear_rtn;
    use emmark_quant::{ActQuant, Granularity};

    fn quantized_tiny(bits: u8) -> QuantizedModel {
        let model = TransformerModel::new(ModelConfig::tiny_test());
        QuantizedModel::quantize_with(&model, "rtn", |_, lin| {
            quantize_linear_rtn(lin, bits, Granularity::PerOutChannel, ActQuant::None)
        })
    }

    #[test]
    fn randomwm_roundtrip_extracts_nearly_all_bits() {
        let original = quantized_tiny(8);
        let mut deployed = original.clone();
        let cfg = RandomWmConfig {
            bits_per_layer: 6,
            seed: 9,
        };
        let sig = Signature::generate(cfg.bits_per_layer * original.layer_count(), 1);
        randomwm_insert(&mut deployed, &sig, &cfg);
        let report = randomwm_extract(&deployed, &original, &sig, &cfg);
        // Bits landing on clamped cells wrap and fail to extract; the
        // rest match. INT8 per-channel grids clamp ~1/in of cells.
        assert!(report.wer() > 85.0, "wer {}", report.wer());
        assert!(report.matched_bits <= report.total_bits);
    }

    #[test]
    fn randomwm_wraps_at_extreme_levels() {
        let original = quantized_tiny(4);
        let mut deployed = original.clone();
        let cfg = RandomWmConfig {
            bits_per_layer: 40,
            seed: 3,
        };
        let sig = Signature::generate(cfg.bits_per_layer * original.layer_count(), 2);
        randomwm_insert(&mut deployed, &sig, &cfg);
        // Count wrapped cells: |delta| == 2*qmax+1.
        let mut wraps = 0;
        for (a, b) in deployed.layers.iter().zip(&original.layers) {
            for f in 0..a.len() {
                let d = (a.q_at_flat(f) as i16 - b.q_at_flat(f) as i16).abs();
                if d > 1 {
                    wraps += 1;
                    assert_eq!(d, 15, "INT4 wrap distance");
                }
            }
        }
        assert!(wraps > 0, "expected at least one wrap on an INT4 grid");
    }

    #[test]
    fn randomwm_locations_are_deterministic() {
        let m = quantized_tiny(8);
        let cfg = RandomWmConfig::default();
        assert_eq!(randomwm_locations(&m, &cfg), randomwm_locations(&m, &cfg));
        let cfg2 = RandomWmConfig { seed: 7, ..cfg };
        assert_ne!(randomwm_locations(&m, &cfg), randomwm_locations(&m, &cfg2));
    }

    #[test]
    fn specmark_fails_on_quantized_models() {
        // The paper's central negative result: 0% WER on integer grids.
        for bits in [8u8, 4] {
            let original = quantized_tiny(bits);
            let mut deployed = original.clone();
            let cfg = SpecMarkConfig {
                bits_per_layer: 6,
                ..Default::default()
            };
            let sig = Signature::generate(cfg.bits_per_layer * original.layer_count(), 5);
            specmark_insert_quantized(&mut deployed, &sig, &cfg);
            // Quantized weights are unchanged: epsilon rounds away.
            assert!(
                deployed.same_weights(&original),
                "ε must round away on INT{bits}"
            );
            let report = specmark_extract_quantized(&deployed, &original, &sig, &cfg);
            assert_eq!(report.wer(), 0.0, "INT{bits} WER");
        }
    }

    #[test]
    fn specmark_succeeds_on_full_precision_models() {
        let original = TransformerModel::new(ModelConfig::tiny_test());
        let mut deployed = original.clone();
        let cfg = SpecMarkConfig {
            bits_per_layer: 6,
            ..Default::default()
        };
        let sig = Signature::generate(cfg.bits_per_layer * original.cfg.quant_layer_count(), 6);
        specmark_insert_fp(&mut deployed, &sig, &cfg);
        let report = specmark_extract_fp(&deployed, &original, &sig, &cfg);
        assert_eq!(
            report.wer(),
            100.0,
            "SpecMark must work where it was designed to"
        );
        // And the weight perturbation is tiny.
        let mut max_delta = 0.0f32;
        for (s, o) in deployed
            .linear_layers()
            .iter()
            .zip(original.linear_layers().iter())
        {
            for (a, b) in s.weight.value.iter().zip(o.weight.value.iter()) {
                max_delta = max_delta.max((a - b).abs());
            }
        }
        assert!(max_delta < 0.05, "perturbation {max_delta} too large");
    }

    #[test]
    fn specmark_unwatermarked_fp_model_extracts_nothing() {
        let original = TransformerModel::new(ModelConfig::tiny_test());
        let cfg = SpecMarkConfig {
            bits_per_layer: 6,
            ..Default::default()
        };
        let sig = Signature::generate(cfg.bits_per_layer * original.cfg.quant_layer_count(), 8);
        let report = specmark_extract_fp(&original, &original, &sig, &cfg);
        assert_eq!(report.matched_bits, 0);
    }

    #[test]
    fn specmark_slots_are_high_frequency_and_distinct() {
        let cfg = SpecMarkConfig {
            bits_per_layer: 10,
            ..Default::default()
        };
        let slots = specmark_slots(1000, &cfg, 42);
        assert_eq!(slots.len(), 10);
        let mut dedup = slots.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 10);
        for (bidx, c) in slots {
            let len = (1000 - bidx * 256).min(256);
            assert!(c >= high_frequency_start(len, cfg.band_fraction));
        }
    }
}
