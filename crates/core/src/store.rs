//! The unified layer-store abstraction — the write-side dual of
//! [`crate::watermark::GridSource`].
//!
//! The read path went sparse in format v2: extraction probes individual
//! cells of a [`crate::deploy::SparseArtifact`] without materializing a
//! model. This module does the same for the *write* path. A
//! [`LayerStore`] serves a quantized model one layer at a time; a
//! [`LayerSink`] accepts one layer at a time. Every stamp-side stage —
//! Eqs. 2–4 scoring, Eq. 5 insertion, v2 encoding — is a per-layer
//! function between the two, so `score → insert → encode` streams each
//! layer through a bounded set of reused buffers instead of holding the
//! whole model and the whole artifact simultaneously.
//!
//! Stores:
//!
//! * [`QuantizedModel`] — the in-memory store (layers are borrowed, not
//!   copied);
//! * [`ArtifactLayerStore`] — a v2 EMQM artifact behind any
//!   `Read + Seek` (typically a file): the header, index, and the
//!   small non-layer payload are resident, each layer record is decoded
//!   on demand;
//! * [`ShardStore`] — a spill-to-disk directory with one record file
//!   per layer, written by its dual [`ShardSink`].
//!
//! Sinks:
//!
//! * [`ArtifactSink`] — the streaming v2 encoder behind any
//!   `io::Write`; its output is **byte-identical** to
//!   [`crate::deploy::encode_model`] (which is itself implemented over
//!   this sink);
//! * [`ModelSink`] — materializes a [`QuantizedModel`];
//! * [`ShardSink`] — the spill-to-disk writer.
//!
//! The streaming invariants (single-pass stages, bounded buffers,
//! byte-identity with the in-memory pipeline) are documented in
//! DESIGN.md §9 and pinned by `tests/streaming_equivalence.rs`.

use crate::deploy::{
    expected_scale_count, granularity_tag, put_config, put_matrix, put_norm, put_qlinear,
    put_string, q_offset_in_record, qlinear_record_len, record_prefix_len, CodecError,
    LayerIndexEntry, Reader, Section, FORMAT_V2, INDEX_ENTRY_BYTES, MAGIC,
};
use crate::telemetry::{self, Telemetry};
use crate::watermark::WatermarkError;
use bytes::{BufMut, BytesMut};
use emmark_nanolm::config::ModelConfig;
use emmark_nanolm::layers::{Embedding, Norm};
use emmark_quant::{Granularity, QuantizedLinear, QuantizedModel};
use std::borrow::Cow;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// Errors of the streaming pipeline: I/O on the backing medium, codec
/// failures decoding a stored layer, or watermarking failures inside a
/// stage.
#[derive(Debug)]
pub enum StoreError {
    /// The backing reader/writer failed.
    Io {
        /// What was being read or written.
        what: &'static str,
        /// The underlying I/O error.
        source: std::io::Error,
    },
    /// Stored bytes failed to decode (or a sink was fed a layer that
    /// contradicts its declared metadata).
    Codec(CodecError),
    /// A watermarking stage failed.
    Watermark(WatermarkError),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io { what, source } => write!(f, "i/o failure while {what}: {source}"),
            StoreError::Codec(e) => write!(f, "{e}"),
            StoreError::Watermark(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io { source, .. } => Some(source),
            StoreError::Codec(e) => Some(e),
            StoreError::Watermark(e) => Some(e),
        }
    }
}

impl From<CodecError> for StoreError {
    fn from(e: CodecError) -> Self {
        StoreError::Codec(e)
    }
}

impl From<WatermarkError> for StoreError {
    fn from(e: WatermarkError) -> Self {
        StoreError::Watermark(e)
    }
}

fn io_err(what: &'static str, source: std::io::Error) -> StoreError {
    StoreError::Io { what, source }
}

/// The non-layer payload of a quantized model: hyperparameters, scheme
/// label, embeddings, and norms. Small relative to the layer grids at
/// LLM scale — the one part of a model the streaming pipeline keeps
/// resident.
#[derive(Debug, Clone)]
pub struct ModelHead {
    /// Model hyperparameters.
    pub cfg: ModelConfig,
    /// Quantization scheme label.
    pub scheme: String,
    /// Token/position embedding tables.
    pub emb: Embedding,
    /// Per-block norm pairs.
    pub norm_pairs: Vec<(Norm, Norm)>,
    /// The final norm.
    pub final_norm: Norm,
}

impl ModelHead {
    /// Extracts the head of an in-memory model (clones the small
    /// non-layer payload).
    pub fn of(model: &QuantizedModel) -> Self {
        Self {
            cfg: model.cfg.clone(),
            scheme: model.scheme.clone(),
            emb: model.emb().clone(),
            norm_pairs: model.norm_pairs().to_vec(),
            final_norm: model.final_norm().clone(),
        }
    }
}

/// Everything a sink needs to know about a layer before its grid
/// arrives: shape, quantizer metadata, and the exact byte length of its
/// v2 record. Derivable from a layer without retaining it — the sizing
/// sweep of the streaming encoder materializes one layer at a time and
/// keeps only these few words per layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LayerRecordMeta {
    /// Input feature count.
    pub in_features: usize,
    /// Output feature count.
    pub out_features: usize,
    /// Bit width (4 or 8).
    pub bits: u8,
    /// Scale granularity.
    pub granularity: Granularity,
    /// Byte length of the layer's v2 record (exactly what
    /// [`crate::deploy::encode_model`] writes for it).
    pub record_len: usize,
}

impl LayerRecordMeta {
    /// The metadata of an in-memory layer.
    pub fn of(layer: &QuantizedLinear) -> Self {
        Self {
            in_features: layer.in_features(),
            out_features: layer.out_features(),
            bits: layer.bits(),
            granularity: layer.granularity(),
            record_len: qlinear_record_len(layer),
        }
    }

    /// Byte offset of the raw `i8` grid within the record, or `None` on
    /// overflow.
    pub fn q_offset_in_record(&self) -> Option<usize> {
        expected_scale_count(self.in_features, self.out_features, self.granularity)
            .map(record_prefix_len)
    }
}

/// Read-side access to a quantized model one layer at a time — the
/// write-path dual of [`crate::watermark::GridSource`]. Implementations
/// promise that `load_layer` materializes at most one layer's worth of
/// data per call; the streaming pipeline holds only the layer currently
/// in flight.
pub trait LayerStore {
    /// The resident non-layer payload.
    ///
    /// # Errors
    ///
    /// Propagates backing-medium failures.
    fn head(&self) -> Result<ModelHead, StoreError>;

    /// Number of quantized layers.
    fn store_layer_count(&self) -> usize;

    /// Materializes layer `l`. In-memory stores return a borrow;
    /// disk-backed stores decode one record.
    ///
    /// # Errors
    ///
    /// Propagates backing-medium and codec failures.
    fn load_layer(&self, l: usize) -> Result<Cow<'_, QuantizedLinear>, StoreError>;

    /// Sizing metadata for layer `l`. The default loads the layer;
    /// indexed stores override with an O(1) table lookup.
    ///
    /// # Errors
    ///
    /// Propagates [`Self::load_layer`] failures.
    fn layer_meta(&self, l: usize) -> Result<LayerRecordMeta, StoreError> {
        Ok(LayerRecordMeta::of(self.load_layer(l)?.as_ref()))
    }

    /// True when [`Self::load_layer`] returns cheap borrows of
    /// already-resident layers. Consumers use this to skip
    /// load/compute overlap: prefetching a borrow cannot pay for the
    /// thread hand-off it rides on.
    fn layers_resident(&self) -> bool {
        false
    }
}

impl LayerStore for QuantizedModel {
    fn head(&self) -> Result<ModelHead, StoreError> {
        Ok(ModelHead::of(self))
    }

    fn store_layer_count(&self) -> usize {
        self.layers.len()
    }

    fn load_layer(&self, l: usize) -> Result<Cow<'_, QuantizedLinear>, StoreError> {
        Ok(Cow::Borrowed(&self.layers[l]))
    }

    fn layers_resident(&self) -> bool {
        true
    }
}

/// Write-side acceptance of a quantized model one layer at a time.
/// `begin` receives the head plus the full sizing table (so an indexed
/// encoder can emit its offset table up front), then every layer
/// arrives exactly once, in order, via `put_layer`, and `finish` seals
/// the output.
pub trait LayerSink {
    /// Starts the stream: the resident head plus one
    /// [`LayerRecordMeta`] per upcoming layer.
    ///
    /// # Errors
    ///
    /// Propagates backing-medium failures.
    fn begin(&mut self, head: &ModelHead, layers: &[LayerRecordMeta]) -> Result<(), StoreError>;

    /// Accepts layer `l`. Layers arrive in order, each exactly once.
    ///
    /// # Errors
    ///
    /// Fails if the layer contradicts its declared metadata or the
    /// backing medium errors.
    fn put_layer(&mut self, l: usize, layer: &QuantizedLinear) -> Result<(), StoreError>;

    /// Seals the stream (flushes buffered bytes, verifies every
    /// declared layer arrived).
    ///
    /// # Errors
    ///
    /// Fails if layers are missing or the backing medium errors.
    fn finish(&mut self) -> Result<(), StoreError>;
}

/// Streams every layer of `store` into `sink` unchanged — the identity
/// pipeline (store → sink conversion: artifact ↔ shards ↔ model).
///
/// # Errors
///
/// Propagates store and sink failures.
pub fn copy_store<S, K>(store: &S, sink: &mut K) -> Result<(), StoreError>
where
    S: LayerStore + ?Sized,
    K: LayerSink + ?Sized,
{
    let n = store.store_layer_count();
    let mut metas = Vec::with_capacity(n);
    for l in 0..n {
        metas.push(store.layer_meta(l)?);
    }
    sink.begin(&store.head()?, &metas)?;
    for l in 0..n {
        sink.put_layer(l, store.load_layer(l)?.as_ref())?;
    }
    sink.finish()
}

/// Materializes a [`LayerStore`] as an in-memory [`QuantizedModel`].
///
/// # Errors
///
/// Propagates store failures.
pub fn materialize<S: LayerStore + ?Sized>(store: &S) -> Result<QuantizedModel, StoreError> {
    let mut sink = ModelSink::new();
    copy_store(store, &mut sink)?;
    sink.into_model()
}

/// Drives `f` over every layer of `store` in order, with layer `N+1`
/// loaded on a scoped worker thread while `f` processes layer `N` — the
/// pipeline-parallel form of a plain `for l in 0..n` load loop
/// (DESIGN.md §11).
///
/// The hand-off is a rendezvous channel ([`std::sync::mpsc::sync_channel`]
/// with capacity 0), so at most **two** layers are ever resident: the
/// one inside `f` and the one the worker has finished loading and is
/// blocked handing over. Peak memory stays at the streaming pipeline's
/// one-layer budget (in-memory stores hand over borrows, which cost
/// nothing), and because layers are delivered strictly in order the
/// caller's observable behavior — selections, bytes written — is
/// identical to the serial loop.
///
/// If `f` returns an error the receiver is dropped; the worker notices
/// on its next hand-off and stops loading.
///
/// # Errors
///
/// Propagates `load_layer` failures and whatever `f` returns.
pub fn for_each_layer_prefetched<'s, S, F>(store: &'s S, mut f: F) -> Result<(), StoreError>
where
    S: LayerStore + Sync + ?Sized,
    F: FnMut(usize, Cow<'s, QuantizedLinear>) -> Result<(), StoreError>,
{
    let n = store.store_layer_count();
    if n == 0 {
        return Ok(());
    }
    type Loaded<'s> = Result<Cow<'s, QuantizedLinear>, StoreError>;
    std::thread::scope(|scope| {
        let (tx, rx) = std::sync::mpsc::sync_channel::<Loaded<'s>>(0);
        // The worker only decodes layer records (no recursion), so a
        // small explicit stack keeps the pipeline viable under hard
        // virtual-address caps — the 8 MiB default reservation alone
        // would blow the CI smoke's 12 MiB ulimit.
        std::thread::Builder::new()
            .name("emmark-prefetch".into())
            .stack_size(512 * 1024)
            .spawn_scoped(scope, move || {
                for l in 0..n {
                    // Span timers work from this scoped worker too: load
                    // time lands in STREAM_LOAD_NS while the consumer's
                    // recv wait lands in STREAM_STALL_NS, so a snapshot
                    // shows exactly how much of the serial load cost the
                    // overlap hid.
                    let load_span = telemetry::Span::enter(&telemetry::STREAM_LOAD_NS);
                    let item = store.load_layer(l);
                    drop(load_span);
                    let failed = item.is_err();
                    if tx.send(item).is_err() || failed {
                        return; // consumer bailed, or the store did
                    }
                }
            })
            .map_err(|e| io_err("spawning the prefetch worker", e))?;
        for l in 0..n {
            let stall_span = telemetry::Span::enter(&telemetry::STREAM_STALL_NS);
            let layer = rx.recv().map_err(|_| {
                io_err(
                    "receiving a prefetched layer",
                    std::io::Error::other("prefetch worker disconnected"),
                )
            })??;
            drop(stall_span);
            let compute_span = telemetry::Span::enter(&telemetry::STREAM_COMPUTE_NS);
            f(l, layer)?;
            drop(compute_span);
            if Telemetry::enabled() {
                telemetry::STREAM_LAYERS.incr();
            }
        }
        Ok(())
    })
}

// ---------------------------------------------------------------------
// ArtifactSink — the streaming v2 encoder.
// ---------------------------------------------------------------------

/// The streaming v2 EMQM encoder: a [`LayerSink`] over any
/// [`io::Write`](Write). `begin` derives the complete layer-offset
/// table from the sizing metadata and writes the header, config,
/// index, embeddings, and norms; each `put_layer` serializes one record
/// into a reused scratch buffer and forwards it. Peak memory is the
/// head plus the largest single record — the output is **never**
/// resident.
///
/// Byte-identity with [`crate::deploy::encode_model`] holds by
/// construction: `encode_model` is implemented as this sink writing
/// into a `Vec`.
#[derive(Debug)]
pub struct ArtifactSink<W: Write> {
    w: W,
    metas: Vec<LayerRecordMeta>,
    next_layer: usize,
    /// Reused per-record scratch buffer (the "ring" of the streaming
    /// pipeline — one record wide, rewound every layer).
    scratch: BytesMut,
    finished: bool,
}

impl<W: Write> ArtifactSink<W> {
    /// Creates a sink writing the v2 wire format into `w`.
    pub fn new(w: W) -> Self {
        Self {
            w,
            metas: Vec::new(),
            next_layer: 0,
            scratch: BytesMut::new(),
            finished: false,
        }
    }

    /// Consumes the sink, returning the underlying writer.
    pub fn into_inner(self) -> W {
        self.w
    }
}

impl<W: Write> LayerSink for ArtifactSink<W> {
    fn begin(&mut self, head: &ModelHead, layers: &[LayerRecordMeta]) -> Result<(), StoreError> {
        // The header and index are derived exactly as encode_model lays
        // them out; every offset is known from the sizing table alone.
        let mut cfg_buf = BytesMut::with_capacity(256);
        put_config(&mut cfg_buf, &head.cfg);
        put_string(&mut cfg_buf, &head.scheme);

        let mut body_buf = BytesMut::with_capacity(1 << 12);
        put_matrix(&mut body_buf, &head.emb.tok.value);
        put_matrix(&mut body_buf, &head.emb.pos.value);
        body_buf.put_u32_le(head.norm_pairs.len() as u32);
        for (n1, n2) in &head.norm_pairs {
            put_norm(&mut body_buf, n1);
            put_norm(&mut body_buf, n2);
        }
        put_norm(&mut body_buf, &head.final_norm);

        let n = layers.len();
        let index_len = 4 + n * INDEX_ENTRY_BYTES;
        let layers_start = 8 + cfg_buf.len() + index_len + body_buf.len();

        let mut header = BytesMut::with_capacity(8 + cfg_buf.len() + index_len);
        header.put_slice(MAGIC);
        header.put_u32_le(FORMAT_V2);
        header.put_slice(&cfg_buf);
        header.put_u32_le(n as u32);
        let mut record_offset = layers_start;
        for meta in layers {
            header.put_u32_le(meta.in_features as u32);
            header.put_u32_le(meta.out_features as u32);
            header.put_u8(meta.bits);
            let (tag, group) = granularity_tag(meta.granularity);
            header.put_u8(tag);
            header.put_u32_le(group);
            header.put_u64_le(record_offset as u64);
            let q_off = meta.q_offset_in_record().ok_or_else(|| {
                StoreError::Codec(CodecError::Corrupt {
                    section: Section::LayerIndex,
                    offset: 0,
                    msg: "layer record extent overflows".into(),
                })
            })?;
            header.put_u64_le((record_offset + q_off) as u64);
            record_offset += meta.record_len;
        }
        self.w
            .write_all(&header)
            .map_err(|e| io_err("writing the artifact header", e))?;
        self.w
            .write_all(&body_buf)
            .map_err(|e| io_err("writing embeddings and norms", e))?;
        self.metas = layers.to_vec();
        self.next_layer = 0;
        Ok(())
    }

    fn put_layer(&mut self, l: usize, layer: &QuantizedLinear) -> Result<(), StoreError> {
        let corrupt = |msg: String| {
            StoreError::Codec(CodecError::Corrupt {
                section: Section::Layer(l),
                offset: 0,
                msg,
            })
        };
        if self.finished {
            return Err(corrupt("stream already finished".into()));
        }
        if l != self.next_layer {
            return Err(corrupt(format!(
                "layers must arrive in order (expected {}, got {l})",
                self.next_layer
            )));
        }
        let Some(meta) = self.metas.get(l).copied() else {
            return Err(corrupt(format!(
                "layer {l} was not declared at begin ({} layers)",
                self.metas.len()
            )));
        };
        self.scratch.clear();
        put_qlinear(&mut self.scratch, layer);
        if self.scratch.len() != meta.record_len {
            return Err(corrupt(format!(
                "record is {} bytes but the sizing sweep promised {}",
                self.scratch.len(),
                meta.record_len
            )));
        }
        debug_assert_eq!(Some(q_offset_in_record(layer)), meta.q_offset_in_record());
        self.w
            .write_all(&self.scratch)
            .map_err(|e| io_err("writing a layer record", e))?;
        self.next_layer += 1;
        Ok(())
    }

    fn finish(&mut self) -> Result<(), StoreError> {
        let corrupt = |msg: String| {
            StoreError::Codec(CodecError::Corrupt {
                section: Section::Layers,
                offset: 0,
                msg,
            })
        };
        if self.finished {
            return Err(corrupt("stream already finished".into()));
        }
        if self.next_layer != self.metas.len() {
            return Err(corrupt(format!(
                "stream ended after {} of {} layers",
                self.next_layer,
                self.metas.len()
            )));
        }
        self.finished = true;
        self.w
            .flush()
            .map_err(|e| io_err("flushing the artifact", e))
    }
}

// ---------------------------------------------------------------------
// ModelSink — materialize into a QuantizedModel.
// ---------------------------------------------------------------------

/// A [`LayerSink`] that assembles an in-memory [`QuantizedModel`].
#[derive(Debug, Default)]
pub struct ModelSink {
    head: Option<ModelHead>,
    expected: usize,
    layers: Vec<QuantizedLinear>,
}

impl ModelSink {
    /// Creates an empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// The assembled model, once every declared layer has arrived.
    ///
    /// # Errors
    ///
    /// Fails if `begin`/`finish` never ran or layers are missing.
    pub fn into_model(self) -> Result<QuantizedModel, StoreError> {
        let corrupt = |msg: String| {
            StoreError::Codec(CodecError::Corrupt {
                section: Section::Layers,
                offset: 0,
                msg,
            })
        };
        let Some(head) = self.head else {
            return Err(corrupt("stream never began".into()));
        };
        if self.layers.len() != self.expected {
            return Err(corrupt(format!(
                "stream ended after {} of {} layers",
                self.layers.len(),
                self.expected
            )));
        }
        Ok(QuantizedModel::from_parts(
            head.cfg,
            head.emb,
            head.norm_pairs,
            head.final_norm,
            self.layers,
            head.scheme,
        ))
    }
}

impl LayerSink for ModelSink {
    fn begin(&mut self, head: &ModelHead, layers: &[LayerRecordMeta]) -> Result<(), StoreError> {
        self.head = Some(head.clone());
        self.expected = layers.len();
        self.layers = Vec::with_capacity(layers.len());
        Ok(())
    }

    fn put_layer(&mut self, l: usize, layer: &QuantizedLinear) -> Result<(), StoreError> {
        if l != self.layers.len() {
            return Err(StoreError::Codec(CodecError::Corrupt {
                section: Section::Layer(l),
                offset: 0,
                msg: format!(
                    "layers must arrive in order (expected {})",
                    self.layers.len()
                ),
            }));
        }
        self.layers.push(layer.clone());
        Ok(())
    }

    fn finish(&mut self) -> Result<(), StoreError> {
        Ok(())
    }
}

// ---------------------------------------------------------------------
// ArtifactLayerStore — file-backed v2 artifact.
// ---------------------------------------------------------------------

/// A [`LayerStore`] over a v2 EMQM artifact behind any `Read + Seek`
/// (typically a [`std::fs::File`]). Opening parses the header, config,
/// offset index, and the small embeddings/norms payload; each
/// `load_layer` seeks to the record the index promises and decodes
/// exactly one layer. Resident memory is the head plus the index —
/// never the layer grids.
///
/// The reader sits behind a [`Mutex`] (uncontended in serial use), so
/// the store is `Sync` and the pipeline-parallel stamp
/// ([`for_each_layer_prefetched`]) can load layer `N+1` on a worker
/// thread while layer `N` is being bumped and encoded.
#[derive(Debug)]
pub struct ArtifactLayerStore<R: Read + Seek> {
    src: Mutex<R>,
    len: usize,
    head: ModelHead,
    index: Vec<LayerIndexEntry>,
}

impl<R: Read + Seek> ArtifactLayerStore<R> {
    /// Opens a v2 artifact for layer-at-a-time reads.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::BadVersion`] for v1 (and unknown) formats,
    /// the usual codec errors for malformed headers, and I/O errors
    /// from the backing reader.
    pub fn open(mut src: R) -> Result<Self, StoreError> {
        let len = src
            .seek(SeekFrom::End(0))
            .map_err(|e| io_err("sizing the artifact", e))? as usize;
        // The header region (config + scheme + index) has no length
        // prefix; read a prefix window and widen it until the parse no
        // longer runs out of bytes.
        let mut want = 4096.min(len);
        let (cfg, scheme, index, body_start) = loop {
            let prefix = read_range(&mut src, 0, want, "reading the artifact header")?;
            match parse_v2_header(&prefix, len) {
                Ok(parsed) => break parsed,
                Err(CodecError::Truncated { .. }) if want < len => {
                    want = (want * 2).min(len);
                }
                Err(e) => return Err(e.into()),
            }
        };
        // Embeddings and norms sit between the index and the first
        // layer record (or the end of the file when there are none).
        let body_end = index.first().map_or(len, |e| e.record_offset);
        let body = read_range(
            &mut src,
            body_start,
            body_end - body_start,
            "reading embeddings and norms",
        )?;
        let mut r = Reader::new(&body, Section::Embeddings);
        let emb = r.embeddings()?;
        let (norm_pairs, final_norm) = r.norms(cfg.n_layers)?;
        Ok(Self {
            src: Mutex::new(src),
            len,
            head: ModelHead {
                cfg,
                scheme,
                emb,
                norm_pairs,
                final_norm,
            },
            index,
        })
    }

    /// The artifact's layer-offset table.
    pub fn layer_index(&self) -> &[LayerIndexEntry] {
        &self.index
    }

    /// Total artifact size in bytes.
    pub fn byte_len(&self) -> usize {
        self.len
    }

    fn record_span(&self, l: usize) -> (usize, usize) {
        let start = self.index[l].record_offset;
        let end = self.index.get(l + 1).map_or(self.len, |e| e.record_offset);
        (start, end)
    }
}

fn read_range<R: Read + Seek>(
    src: &mut R,
    start: usize,
    len: usize,
    what: &'static str,
) -> Result<Vec<u8>, StoreError> {
    src.seek(SeekFrom::Start(start as u64))
        .map_err(|e| io_err(what, e))?;
    let mut buf = vec![0u8; len];
    src.read_exact(&mut buf).map_err(|e| io_err(what, e))?;
    Ok(buf)
}

/// Parses the v2 prefix (magic, version, config, scheme, index) out of
/// `prefix`, validating index extents against the artifact's true
/// `total_len`. Returns the parsed pieces plus the offset where the
/// body (embeddings) begins.
type ParsedHeader = (ModelConfig, String, Vec<LayerIndexEntry>, usize);

fn parse_v2_header(prefix: &[u8], total_len: usize) -> Result<ParsedHeader, CodecError> {
    let mut r = Reader::new(prefix, Section::Header);
    r.magic(MAGIC)?;
    let version = r.u32("version")?;
    if version != FORMAT_V2 {
        return Err(CodecError::BadVersion(version));
    }
    let cfg = r.config()?;
    let scheme = r.string("scheme")?;
    let index = r.layer_index_bounded(cfg.quant_layer_count(), total_len)?;
    Ok((cfg, scheme, index, r.offset()))
}

impl<R: Read + Seek> LayerStore for ArtifactLayerStore<R> {
    fn head(&self) -> Result<ModelHead, StoreError> {
        Ok(self.head.clone())
    }

    fn store_layer_count(&self) -> usize {
        self.index.len()
    }

    fn load_layer(&self, l: usize) -> Result<Cow<'_, QuantizedLinear>, StoreError> {
        let (start, end) = self.record_span(l);
        let mut src = self
            .src
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let record = read_range(&mut *src, start, end - start, "reading a layer record")?;
        drop(src);
        let mut r = Reader::new(&record, Section::Layer(l));
        let layer = r.qlinear(l)?;
        let entry = &self.index[l];
        if layer.in_features() != entry.in_features
            || layer.out_features() != entry.out_features
            || layer.bits() != entry.bits
            || layer.granularity() != entry.granularity
        {
            return Err(StoreError::Codec(CodecError::Corrupt {
                section: Section::Layer(l),
                offset: start,
                msg: "record disagrees with its layer-index entry".into(),
            }));
        }
        Ok(Cow::Owned(layer))
    }

    fn layer_meta(&self, l: usize) -> Result<LayerRecordMeta, StoreError> {
        let entry = &self.index[l];
        let (start, end) = self.record_span(l);
        Ok(LayerRecordMeta {
            in_features: entry.in_features,
            out_features: entry.out_features,
            bits: entry.bits,
            granularity: entry.granularity,
            record_len: end - start,
        })
    }
}

// ---------------------------------------------------------------------
// ShardStore / ShardSink — spill-to-disk layer shards.
// ---------------------------------------------------------------------

const SHARD_HEAD_MAGIC: &[u8; 4] = b"EMSH";
const SHARD_LAYER_MAGIC: &[u8; 4] = b"EMSL";

fn shard_head_path(dir: &Path) -> PathBuf {
    dir.join("head.emsh")
}

fn shard_layer_path(dir: &Path, l: usize) -> PathBuf {
    dir.join(format!("layer-{l:05}.emsl"))
}

/// A spill-to-disk [`LayerSink`]: the head goes to `head.emsh`, every
/// layer record to its own `layer-NNNNN.emsl` shard file. The dual
/// [`ShardStore`] reads the directory back one layer at a time — an
/// intermediate pipeline stage can park a model on disk with O(largest
/// layer) resident memory.
#[derive(Debug)]
pub struct ShardSink {
    dir: PathBuf,
    expected: usize,
    written: usize,
    scratch: BytesMut,
}

impl ShardSink {
    /// Creates the sink, creating `dir` if needed.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation failures.
    pub fn create(dir: impl Into<PathBuf>) -> Result<Self, StoreError> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir).map_err(|e| io_err("creating the shard directory", e))?;
        Ok(Self {
            dir,
            expected: 0,
            written: 0,
            scratch: BytesMut::new(),
        })
    }
}

impl LayerSink for ShardSink {
    fn begin(&mut self, head: &ModelHead, layers: &[LayerRecordMeta]) -> Result<(), StoreError> {
        let mut buf = BytesMut::with_capacity(1 << 12);
        buf.put_slice(SHARD_HEAD_MAGIC);
        buf.put_u32_le(FORMAT_V2);
        put_config(&mut buf, &head.cfg);
        put_string(&mut buf, &head.scheme);
        put_matrix(&mut buf, &head.emb.tok.value);
        put_matrix(&mut buf, &head.emb.pos.value);
        buf.put_u32_le(head.norm_pairs.len() as u32);
        for (n1, n2) in &head.norm_pairs {
            put_norm(&mut buf, n1);
            put_norm(&mut buf, n2);
        }
        put_norm(&mut buf, &head.final_norm);
        buf.put_u32_le(layers.len() as u32);
        std::fs::write(shard_head_path(&self.dir), &buf)
            .map_err(|e| io_err("writing the shard head", e))?;
        self.expected = layers.len();
        self.written = 0;
        Ok(())
    }

    fn put_layer(&mut self, l: usize, layer: &QuantizedLinear) -> Result<(), StoreError> {
        self.scratch.clear();
        self.scratch.put_slice(SHARD_LAYER_MAGIC);
        put_qlinear(&mut self.scratch, layer);
        std::fs::write(shard_layer_path(&self.dir, l), &self.scratch)
            .map_err(|e| io_err("writing a layer shard", e))?;
        self.written += 1;
        Ok(())
    }

    fn finish(&mut self) -> Result<(), StoreError> {
        if self.written != self.expected {
            return Err(StoreError::Codec(CodecError::Corrupt {
                section: Section::Layers,
                offset: 0,
                msg: format!(
                    "stream ended after {} of {} layers",
                    self.written, self.expected
                ),
            }));
        }
        Ok(())
    }
}

/// The read half of the spill-to-disk store: loads the head eagerly and
/// each layer shard on demand.
#[derive(Debug)]
pub struct ShardStore {
    dir: PathBuf,
    head: ModelHead,
    n_layers: usize,
}

impl ShardStore {
    /// Opens a shard directory written by [`ShardSink`].
    ///
    /// # Errors
    ///
    /// Propagates I/O and codec failures reading the head.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self, StoreError> {
        let dir = dir.into();
        let bytes = std::fs::read(shard_head_path(&dir))
            .map_err(|e| io_err("reading the shard head", e))?;
        let mut r = Reader::new(&bytes, Section::Header);
        r.magic(SHARD_HEAD_MAGIC)?;
        let version = r.u32("shard version")?;
        if version != FORMAT_V2 {
            return Err(CodecError::BadVersion(version).into());
        }
        let cfg = r.config()?;
        let scheme = r.string("scheme")?;
        let emb = r.embeddings()?;
        let (norm_pairs, final_norm) = r.norms(cfg.n_layers)?;
        r.enter(Section::Layers);
        let n_layers = r.u32("layer count")? as usize;
        if n_layers != cfg.quant_layer_count() {
            return Err(r
                .corrupt(format!(
                    "layer count {n_layers} does not match config ({})",
                    cfg.quant_layer_count()
                ))
                .into());
        }
        Ok(Self {
            dir,
            head: ModelHead {
                cfg,
                scheme,
                emb,
                norm_pairs,
                final_norm,
            },
            n_layers,
        })
    }

    /// Removes the shard directory and its contents.
    ///
    /// # Errors
    ///
    /// Propagates filesystem failures.
    pub fn remove(self) -> Result<(), StoreError> {
        std::fs::remove_dir_all(&self.dir).map_err(|e| io_err("removing the shard directory", e))
    }
}

impl LayerStore for ShardStore {
    fn head(&self) -> Result<ModelHead, StoreError> {
        Ok(self.head.clone())
    }

    fn store_layer_count(&self) -> usize {
        self.n_layers
    }

    fn load_layer(&self, l: usize) -> Result<Cow<'_, QuantizedLinear>, StoreError> {
        assert!(l < self.n_layers, "layer {l} out of range");
        let bytes = std::fs::read(shard_layer_path(&self.dir, l))
            .map_err(|e| io_err("reading a layer shard", e))?;
        let mut r = Reader::new(&bytes, Section::Layer(l));
        r.magic(SHARD_LAYER_MAGIC)?;
        Ok(Cow::Owned(r.qlinear(l)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deploy::{decode_model, encode_model};
    use emmark_nanolm::config::ModelConfig as Cfg;
    use emmark_nanolm::TransformerModel;
    use emmark_quant::awq::{awq, AwqConfig};
    use emmark_quant::llm_int8::{llm_int8, OutlierCriterion};
    use emmark_quant::smoothquant::{smoothquant, SmoothQuantConfig};
    use std::io::Cursor;

    fn models() -> Vec<QuantizedModel> {
        let mut model = TransformerModel::new(Cfg::tiny_test());
        let calib = vec![vec![1u32, 2, 3, 4, 5, 6, 7, 8]];
        let stats = model.collect_activation_stats(&calib);
        vec![
            awq(&model, &stats, &AwqConfig::default()),
            smoothquant(&model, &stats, &SmoothQuantConfig::default()),
            llm_int8(&model, &stats, OutlierCriterion::Quantile(0.9)),
        ]
    }

    fn temp_dir(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("emmark-store-{tag}-{}", std::process::id()))
    }

    #[test]
    fn record_meta_matches_the_encoded_record_length() {
        for model in models() {
            let bytes = encode_model(&model);
            let sparse = crate::deploy::SparseArtifact::open(&bytes).expect("open");
            let index = sparse.layer_index();
            for (l, layer) in model.layers.iter().enumerate() {
                let meta = LayerRecordMeta::of(layer);
                let end = index.get(l + 1).map_or(bytes.len(), |e| e.record_offset);
                assert_eq!(
                    meta.record_len,
                    end - index[l].record_offset,
                    "{}: layer {l} record length",
                    model.scheme
                );
                assert_eq!(
                    meta.q_offset_in_record(),
                    Some(index[l].q_offset - index[l].record_offset),
                    "{}: layer {l} q offset",
                    model.scheme
                );
            }
        }
    }

    #[test]
    fn artifact_sink_is_byte_identical_to_encode_model() {
        for model in models() {
            let mut out = Vec::new();
            let mut sink = ArtifactSink::new(&mut out);
            copy_store(&model, &mut sink).expect("copy");
            assert_eq!(
                out,
                encode_model(&model).to_vec(),
                "{}: streaming encode must match the in-memory encoder",
                model.scheme
            );
        }
    }

    #[test]
    fn artifact_store_round_trips_every_layer() {
        for model in models() {
            let bytes = encode_model(&model).to_vec();
            let store = ArtifactLayerStore::open(Cursor::new(&bytes)).expect("open");
            assert_eq!(store.store_layer_count(), model.layer_count());
            assert_eq!(store.byte_len(), bytes.len());
            let head = store.head().expect("head");
            assert_eq!(head.cfg, model.cfg);
            assert_eq!(head.scheme, model.scheme);
            for (l, layer) in model.layers.iter().enumerate() {
                let loaded = store.load_layer(l).expect("load");
                assert_eq!(loaded.as_ref(), layer, "{}: layer {l}", model.scheme);
                assert_eq!(
                    store.layer_meta(l).expect("meta"),
                    LayerRecordMeta::of(layer)
                );
            }
            // Full materialization equals the canonical decoder.
            let materialized = materialize(&store).expect("materialize");
            let decoded = decode_model(&bytes).expect("decode");
            assert!(materialized.same_weights(&decoded));
            assert_eq!(materialized.cfg, decoded.cfg);
        }
    }

    #[test]
    fn artifact_store_rejects_v1_and_truncation() {
        let model = &models()[0];
        let v1 = crate::deploy::encode_model_v1(model).to_vec();
        let err = ArtifactLayerStore::open(Cursor::new(&v1)).expect_err("v1");
        assert!(matches!(
            err,
            StoreError::Codec(CodecError::BadVersion(crate::deploy::FORMAT_V1))
        ));
        let v2 = encode_model(model).to_vec();
        for cut in [3usize, 9, 64, v2.len() / 2] {
            let truncated = &v2[..cut];
            assert!(
                ArtifactLayerStore::open(Cursor::new(truncated)).is_err(),
                "cut at {cut} must not open"
            );
        }
        // Cutting inside the last record's trailing fields (past its
        // grid) leaves the header and index intact — a lazy store only
        // notices when that layer is loaded.
        let last = model.layer_count() - 1;
        // (Rejecting at open would be fine too.)
        if let Ok(store) = ArtifactLayerStore::open(Cursor::new(&v2[..v2.len() - 3])) {
            assert!(store.load_layer(last).is_err(), "truncated record loaded");
        }
        // A record corrupted in place (header intact) surfaces at load
        // time for exactly that layer, with codec context.
        let sparse = crate::deploy::SparseArtifact::open(&v2).expect("open");
        let record = sparse.layer_index()[0].record_offset;
        let mut evil = v2.clone();
        evil[record + 8] = 99; // the record's bit-width byte
        let store = ArtifactLayerStore::open(Cursor::new(&evil)).expect("header intact");
        let err = store.load_layer(0).expect_err("corrupt record");
        assert!(matches!(err, StoreError::Codec(CodecError::Corrupt { .. })));
        assert!(store.load_layer(1).is_ok(), "other layers stay readable");
    }

    #[test]
    fn shard_store_round_trips() {
        let dir = temp_dir("roundtrip");
        for model in models() {
            let mut sink = ShardSink::create(&dir).expect("create");
            copy_store(&model, &mut sink).expect("spill");
            let store = ShardStore::open(&dir).expect("open");
            assert_eq!(store.store_layer_count(), model.layer_count());
            let back = materialize(&store).expect("materialize");
            assert!(back.same_weights(&model), "{}", model.scheme);
            assert_eq!(back.cfg, model.cfg);
            assert_eq!(back.scheme, model.scheme);
            // Shard store feeds the streaming encoder byte-identically.
            let mut out = Vec::new();
            copy_store(&store, &mut ArtifactSink::new(&mut out)).expect("encode");
            assert_eq!(out, encode_model(&model).to_vec(), "{}", model.scheme);
            store.remove().expect("cleanup");
        }
    }

    #[test]
    fn sinks_reject_out_of_order_and_short_streams() {
        let model = &models()[0];
        let head = ModelHead::of(model);
        let metas: Vec<LayerRecordMeta> = model.layers.iter().map(LayerRecordMeta::of).collect();

        let mut sink = ArtifactSink::new(Vec::new());
        sink.begin(&head, &metas).expect("begin");
        assert!(matches!(
            sink.put_layer(1, &model.layers[1]),
            Err(StoreError::Codec(_))
        ));
        sink.put_layer(0, &model.layers[0]).expect("in order");
        assert!(matches!(sink.finish(), Err(StoreError::Codec(_))));

        // A layer that contradicts its sizing metadata is refused (pick
        // one whose record length actually differs from layer 0's).
        let other = model
            .layers
            .iter()
            .position(|l| LayerRecordMeta::of(l).record_len != metas[0].record_len)
            .expect("some layer with a different record length");
        let mut sink = ArtifactSink::new(Vec::new());
        sink.begin(&head, &metas).expect("begin");
        assert!(matches!(
            sink.put_layer(0, &model.layers[other]),
            Err(StoreError::Codec(_))
        ));

        let mut msink = ModelSink::new();
        msink.begin(&head, &metas).expect("begin");
        msink.put_layer(0, &model.layers[0]).expect("in order");
        assert!(matches!(
            msink.put_layer(2, &model.layers[2]),
            Err(StoreError::Codec(_))
        ));
        assert!(msink.into_model().is_err());
    }

    #[test]
    fn prefetched_iteration_matches_serial_and_propagates_errors() {
        for model in models() {
            let bytes = encode_model(&model).to_vec();
            let store = ArtifactLayerStore::open(Cursor::new(&bytes)).expect("open");
            let mut seen = Vec::new();
            for_each_layer_prefetched(&store, |l, layer| {
                seen.push((l, layer.into_owned()));
                Ok(())
            })
            .expect("prefetched walk");
            assert_eq!(seen.len(), model.layer_count(), "{}", model.scheme);
            for (l, layer) in &seen {
                assert_eq!(layer, &model.layers[*l], "{}: layer {l}", model.scheme);
            }
            // In-memory stores hand over borrows through the channel.
            let mut borrowed = 0usize;
            for_each_layer_prefetched(&model, |_, layer| {
                borrowed += matches!(layer, Cow::Borrowed(_)) as usize;
                Ok(())
            })
            .expect("borrowing walk");
            assert_eq!(borrowed, model.layer_count(), "{}", model.scheme);
        }
        // A consumer error stops the walk (and the worker) cleanly.
        let model = &models()[0];
        let mut calls = 0usize;
        let err = for_each_layer_prefetched(model, |_, _| {
            calls += 1;
            Err(StoreError::Io {
                what: "consumer stage",
                source: std::io::Error::other("stage failed"),
            })
        })
        .expect_err("consumer error surfaces");
        assert_eq!(calls, 1);
        assert!(err.to_string().contains("consumer stage"));
        // A store error mid-stream surfaces for the failing layer.
        let bytes = encode_model(model).to_vec();
        let store = ArtifactLayerStore::open(Cursor::new(&bytes[..bytes.len() - 3]))
            .expect("header intact");
        let mut ok_layers = 0usize;
        let err = for_each_layer_prefetched(&store, |_, _| {
            ok_layers += 1;
            Ok(())
        })
        .expect_err("truncated last record");
        assert_eq!(ok_layers, model.layer_count() - 1);
        assert!(matches!(err, StoreError::Io { .. } | StoreError::Codec(_)));
    }

    #[test]
    fn store_error_messages_are_informative() {
        let e = StoreError::Io {
            what: "reading a layer record",
            source: std::io::Error::other("disk gone"),
        };
        assert!(e.to_string().contains("reading a layer record"));
        assert!(e.to_string().contains("disk gone"));
        let e = StoreError::from(CodecError::BadMagic);
        assert!(e.to_string().contains("magic"));
    }
}
