//! EmMark's parameter scoring function — Eqs. 2–4 of the paper.
//!
//! For the `i`-th quantized weight `W_i` in a layer whose input channels
//! have full-precision activation profile `A_f`:
//!
//! * quality score `S_q = |b_j / W_i|` (Eq. 3) — large-magnitude integers
//!   tolerate a `±1` step with the least relative distortion; weights at
//!   the min/max quantization level are "set to 0 before scoring", i.e.
//!   their score diverges and they are never selected (a bump there would
//!   clip or wrap);
//! * robustness score `S_r = |max(A_f) / (A_f_i − min(A_f))|` (Eq. 4) —
//!   salient channels (large activation) score low, so watermarks land
//!   where an adversary cannot perturb without wrecking the model;
//! * combined `S = α·S_q + β·S_r` (Eq. 2); *smaller is better*.

use emmark_quant::QuantizedLinear;

/// Scoring coefficients `(α, β)` of Eq. 2.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScoreCoefficients {
    /// Weight of the quality-preservation score `S_q`.
    pub alpha: f64,
    /// Weight of the robustness score `S_r`.
    pub beta: f64,
}

impl Default for ScoreCoefficients {
    /// The paper's default `(0.5, 0.5)`.
    fn default() -> Self {
        Self {
            alpha: 0.5,
            beta: 0.5,
        }
    }
}

impl ScoreCoefficients {
    /// Validates that both coefficients are non-negative and not both
    /// zero.
    ///
    /// # Errors
    ///
    /// Returns a message describing the violation.
    pub fn validate(&self) -> Result<(), String> {
        if self.alpha < 0.0 || self.beta < 0.0 {
            return Err("coefficients must be non-negative".into());
        }
        if self.alpha == 0.0 && self.beta == 0.0 {
            return Err("at least one coefficient must be positive".into());
        }
        Ok(())
    }
}

/// Per-cell scores for one quantized layer; `f64::INFINITY` marks cells
/// excluded from watermarking (min/max level, zero weights, LLM.int8()
/// outlier rows).
///
/// # Panics
///
/// Panics if `act_mean.len() != layer.in_features()`.
pub fn score_layer(
    layer: &QuantizedLinear,
    act_mean: &[f32],
    coeffs: &ScoreCoefficients,
) -> Vec<f64> {
    assert_eq!(
        act_mean.len(),
        layer.in_features(),
        "activation profile does not match layer input width"
    );
    let s_r = robustness_scores(act_mean);
    let out = layer.out_features();
    (0..layer.len())
        .map(|f| {
            if layer.is_clamped_flat(f) || layer.is_outlier_flat(f) {
                return f64::INFINITY;
            }
            let q = layer.q_at_flat(f);
            if q == 0 {
                // |b / 0| diverges: zero weights flip sign under ±1.
                // Excluded structurally so that the (α = 0, β) ablation of
                // Table 3 still never clips or sign-flips.
                return f64::INFINITY;
            }
            let channel = f / out;
            // A zero coefficient disables its term entirely (otherwise
            // 0 · ∞ from the excluded minimum-activation channel would
            // poison the score with NaN).
            let term_q = if coeffs.alpha == 0.0 {
                0.0
            } else {
                coeffs.alpha / (q as f64).abs()
            };
            let term_r = if coeffs.beta == 0.0 {
                0.0
            } else {
                coeffs.beta * s_r[channel]
            };
            term_q + term_r
        })
        .collect()
}

/// Eq. 4 per input channel: `|max(A_f) / (A_f_i − min(A_f))|`, with the
/// minimum-activation channel excluded (division by zero ⇒ `∞`).
pub fn robustness_scores(act_mean: &[f32]) -> Vec<f64> {
    let max = act_mean.iter().cloned().fold(f32::NEG_INFINITY, f32::max) as f64;
    let min = act_mean.iter().cloned().fold(f32::INFINITY, f32::min) as f64;
    act_mean
        .iter()
        .map(|&a| {
            let denom = a as f64 - min;
            if denom == 0.0 {
                f64::INFINITY
            } else {
                (max / denom).abs()
            }
        })
        .collect()
}

/// The candidate pool: flat indices of the `pool_size` best-scored
/// (smallest) cells, ties broken by index for determinism. Excluded
/// (infinite-score) cells never enter the pool.
///
/// # Errors
///
/// Returns [`PoolError`] if fewer than `pool_size` finite-scored cells
/// exist.
pub fn candidate_pool(scores: &[f64], pool_size: usize) -> Result<Vec<usize>, PoolError> {
    let mut indexed: Vec<(f64, usize)> = scores
        .iter()
        .enumerate()
        .filter(|(_, s)| s.is_finite())
        .map(|(i, &s)| (s, i))
        .collect();
    if indexed.len() < pool_size {
        return Err(PoolError {
            needed: pool_size,
            available: indexed.len(),
        });
    }
    indexed.sort_by(|a, b| {
        a.0.partial_cmp(&b.0)
            .expect("finite scores")
            .then(a.1.cmp(&b.1))
    });
    indexed.truncate(pool_size);
    Ok(indexed.into_iter().map(|(_, i)| i).collect())
}

/// A `(score, index)` pair with the total order the candidate pool
/// sorts by: ascending score, ties broken by ascending index. Scores in
/// the pool are always finite, so the comparison never sees NaN.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Scored(f64, usize);

impl Eq for Scored {}

impl Ord for Scored {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0
            .partial_cmp(&other.0)
            .expect("pool scores are finite")
            .then(self.1.cmp(&other.1))
    }
}

impl PartialOrd for Scored {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Scores one layer and keeps its candidate pool in a single streaming
/// pass: Eqs. 2–4 scoring cell by cell, with `excluded` cells
/// score-excluded (the rule the fingerprint layer uses to keep device
/// bits off the ownership watermark's cells), while a bounded max-heap
/// retains the `pool_size` best seen so far. Resident memory is
/// O(pool_size + in_features), never O(cells) — the full per-cell score
/// vector of [`score_layer`] is never materialized, which is what keeps
/// the streaming watermark pipeline's footprint at one layer.
///
/// The result is identical to scoring everything and calling
/// [`candidate_pool`] (same scores, same `(score, index)` tie-break);
/// the module tests pin that equivalence.
///
/// This is the per-layer unit of work every location-reproduction path
/// shares — ownership insertion, fingerprint pooling, and the fleet
/// caches all reduce to it, so scoring happens in exactly one place.
///
/// # Errors
///
/// Returns [`PoolError`] if fewer than `pool_size` finite-scored cells
/// remain after exclusion.
///
/// # Panics
///
/// Panics if `act_mean.len() != layer.in_features()`.
pub fn layer_pool(
    layer: &QuantizedLinear,
    act_mean: &[f32],
    coeffs: &ScoreCoefficients,
    pool_size: usize,
    excluded: &[usize],
) -> Result<Vec<usize>, PoolError> {
    assert_eq!(
        act_mean.len(),
        layer.in_features(),
        "activation profile does not match layer input width"
    );
    let s_r = robustness_scores(act_mean);
    let mut excluded_sorted = excluded.to_vec();
    excluded_sorted.sort_unstable();
    let out = layer.out_features();
    // The `pool_size` smallest (score, index) pairs seen so far; the
    // heap top is the current worst, evicted whenever a better cell
    // streams past.
    let mut heap: std::collections::BinaryHeap<Scored> =
        std::collections::BinaryHeap::with_capacity(pool_size + 1);
    let mut available = 0usize;
    for f in 0..layer.len() {
        if layer.is_clamped_flat(f) || layer.is_outlier_flat(f) {
            continue;
        }
        let q = layer.q_at_flat(f);
        if q == 0 {
            // |b / 0| diverges: zero weights flip sign under ±1 (see
            // `score_layer`).
            continue;
        }
        if excluded_sorted.binary_search(&f).is_ok() {
            continue;
        }
        let channel = f / out;
        // A zero coefficient disables its term entirely (otherwise
        // 0 · ∞ from the excluded minimum-activation channel would
        // poison the score with NaN).
        let term_q = if coeffs.alpha == 0.0 {
            0.0
        } else {
            coeffs.alpha / (q as f64).abs()
        };
        let term_r = if coeffs.beta == 0.0 {
            0.0
        } else {
            coeffs.beta * s_r[channel]
        };
        let score = term_q + term_r;
        if !score.is_finite() {
            continue;
        }
        available += 1;
        if pool_size == 0 {
            continue;
        }
        let candidate = Scored(score, f);
        if heap.len() < pool_size {
            heap.push(candidate);
        } else if candidate < *heap.peek().expect("non-empty heap") {
            heap.pop();
            heap.push(candidate);
        }
    }
    if available < pool_size {
        return Err(PoolError {
            needed: pool_size,
            available,
        });
    }
    let mut kept = heap.into_vec();
    kept.sort_unstable();
    Ok(kept.into_iter().map(|Scored(_, f)| f).collect())
}

/// Not enough watermarkable cells in a layer to fill the candidate pool.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PoolError {
    /// Requested pool size.
    pub needed: usize,
    /// Finite-scored cells available.
    pub available: usize,
}

impl std::fmt::Display for PoolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "candidate pool needs {} cells but only {} are watermarkable",
            self.needed, self.available
        )
    }
}

impl std::error::Error for PoolError {}

#[cfg(test)]
mod tests {
    use super::*;
    use emmark_quant::{ActQuant, Granularity};

    fn layer_with(q: Vec<i8>, in_f: usize, out_f: usize) -> QuantizedLinear {
        QuantizedLinear::new(
            q,
            in_f,
            out_f,
            8,
            Granularity::PerTensor,
            vec![1.0],
            None,
            None,
            ActQuant::None,
        )
    }

    #[test]
    fn robustness_prefers_salient_channels() {
        let s = robustness_scores(&[1.0, 2.0, 10.0]);
        // Channel 2 (most salient) has the smallest score; channel 0
        // (the minimum) is excluded.
        assert_eq!(s[0], f64::INFINITY);
        assert!(s[2] < s[1]);
        // Exact values: max=10, min=1; s1 = 10/1, s2 = 10/9.
        assert!((s[1] - 10.0).abs() < 1e-12);
        assert!((s[2] - 10.0 / 9.0).abs() < 1e-12);
    }

    #[test]
    fn quality_score_prefers_large_magnitudes() {
        // One channel (so S_r is constant-infinite except...); use two
        // channels to keep S_r finite on channel 1.
        let layer = layer_with(vec![1, 2, 100, -100], 2, 2);
        let coeffs = ScoreCoefficients {
            alpha: 1.0,
            beta: 0.0,
        };
        let s = score_layer(&layer, &[1.0, 2.0], &coeffs);
        assert!(s[2] < s[0], "larger |q| must score lower");
        assert_eq!(s[2], s[3], "sign does not matter");
    }

    #[test]
    fn clamped_zero_and_outlier_cells_are_excluded() {
        let mut layer = layer_with(vec![127, 0, -127, 5, 6, 7], 3, 2);
        layer.set_outliers(vec![2], emmark_tensor::Matrix::from_rows(&[&[1.0, 2.0]]));
        let s = score_layer(&layer, &[1.0, 2.0, 3.0], &ScoreCoefficients::default());
        assert_eq!(s[0], f64::INFINITY, "max level excluded");
        assert_eq!(s[1], f64::INFINITY, "zero weight excluded");
        assert_eq!(s[2], f64::INFINITY, "min level excluded");
        assert_eq!(s[4], f64::INFINITY, "outlier row excluded");
        assert_eq!(s[5], f64::INFINITY, "outlier row excluded");
        assert!(s[3].is_finite());
    }

    #[test]
    fn combined_score_trades_off_terms() {
        // Cell A: huge |q| in a weak channel. Cell B: small |q| in the
        // most salient channel. α-heavy scoring picks A, β-heavy picks B.
        let layer = layer_with(vec![100, 0, 0, 2], 2, 2);
        let act = [1.0f32, 50.0];
        let alpha_heavy = score_layer(
            &layer,
            &act,
            &ScoreCoefficients {
                alpha: 1.0,
                beta: 0.0,
            },
        );
        assert!(alpha_heavy[0] < alpha_heavy[3]);
        let beta_heavy = score_layer(
            &layer,
            &act,
            &ScoreCoefficients {
                alpha: 0.0,
                beta: 1.0,
            },
        );
        assert!(beta_heavy[3] < beta_heavy[0]);
    }

    #[test]
    fn candidate_pool_is_sorted_deterministic_and_excludes_infinite() {
        let scores = vec![0.5, f64::INFINITY, 0.1, 0.5, 0.2];
        let pool = candidate_pool(&scores, 3).expect("enough candidates");
        assert_eq!(pool, vec![2, 4, 0]); // ties (0.5) broken by index
        let pool4 = candidate_pool(&scores, 4).expect("enough candidates");
        assert_eq!(pool4, vec![2, 4, 0, 3]);
        let err = candidate_pool(&scores, 5).expect_err("only 4 finite");
        assert_eq!(
            err,
            PoolError {
                needed: 5,
                available: 4
            }
        );
        assert!(err.to_string().contains("5"));
    }

    #[test]
    fn layer_pool_matches_score_then_pool_and_honors_exclusions() {
        let layer = layer_with(vec![3, 4, 5, 6, 7, 8], 3, 2);
        let act = [1.0f32, 2.0, 3.0];
        let coeffs = ScoreCoefficients::default();
        let direct = {
            let scores = score_layer(&layer, &act, &coeffs);
            candidate_pool(&scores, 3).expect("pool")
        };
        let fused = layer_pool(&layer, &act, &coeffs, 3, &[]).expect("pool");
        assert_eq!(direct, fused);
        // Excluding a pooled cell must evict it, never shrink the pool.
        let without = layer_pool(&layer, &act, &coeffs, 3, &[fused[0]]).expect("pool");
        assert_eq!(without.len(), 3);
        assert!(!without.contains(&fused[0]));
        // Exclusions count against availability.
        let err = layer_pool(&layer, &act, &coeffs, 4, &[2, 3, 4, 5]).expect_err("short");
        assert!(err.available < err.needed);
    }

    #[test]
    fn coefficient_validation() {
        assert!(ScoreCoefficients::default().validate().is_ok());
        assert!(ScoreCoefficients {
            alpha: -0.1,
            beta: 1.0
        }
        .validate()
        .is_err());
        assert!(ScoreCoefficients {
            alpha: 0.0,
            beta: 0.0
        }
        .validate()
        .is_err());
        assert!(ScoreCoefficients {
            alpha: 0.0,
            beta: 1.0
        }
        .validate()
        .is_ok());
    }
}
