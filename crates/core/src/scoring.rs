//! EmMark's parameter scoring function — Eqs. 2–4 of the paper.
//!
//! For the `i`-th quantized weight `W_i` in a layer whose input channels
//! have full-precision activation profile `A_f`:
//!
//! * quality score `S_q = |b_j / W_i|` (Eq. 3) — large-magnitude integers
//!   tolerate a `±1` step with the least relative distortion; weights at
//!   the min/max quantization level are "set to 0 before scoring", i.e.
//!   their score diverges and they are never selected (a bump there would
//!   clip or wrap);
//! * robustness score `S_r = |max(A_f) / (A_f_i − min(A_f))|` (Eq. 4) —
//!   salient channels (large activation) score low, so watermarks land
//!   where an adversary cannot perturb without wrecking the model;
//! * combined `S = α·S_q + β·S_r` (Eq. 2); *smaller is better*.
//!
//! # Kernel layout
//!
//! Both entry points ([`score_layer`] and [`layer_pool`]) run the same
//! chunked, branch-free kernel over the contiguous `i8` grid
//! ([`QuantizedLinear::q_values`]), restructured for the
//! autovectorizer (DESIGN.md §11):
//!
//! * **row slicing** — the grid is walked one input channel (row) at a
//!   time, so the per-channel robustness term `β·S_r[channel]` is
//!   hoisted out of the inner loop (the scalar path re-derived
//!   `channel = f / out` with an integer division *per cell*). Outlier
//!   rows and the excluded minimum-activation channel skip the kernel
//!   entirely;
//! * **exclusion as a mask** — the Eq. 3 quality term, its divide, and
//!   the clamped/zero validity test all collapse into a per-layer
//!   256-entry table (`quality_lut`: invalid byte patterns map to
//!   `∞`, and `∞` survives the row-term add), while the sorted
//!   `excluded` runs are spliced into the score buffer after the
//!   arithmetic — the hot loop is one indexed load and one add per
//!   cell, with no data-dependent branches;
//! * **chunked folds** — scores land in a fixed stack buffer
//!   (`CHUNK` cells) whose count/min folds vectorize; the bounded
//!   heap of [`layer_pool`] is only touched when a chunk's minimum
//!   beats the current pool threshold, which stops happening almost
//!   entirely once the pool warms up.
//!
//! The pre-kernel scalar implementations live on in [`mod@reference`]: the
//! `scoring_kernels` bench gates the kernels ≥3x over them, and the
//! equivalence proptests (`tests/scoring_kernel_equivalence.rs`) pin
//! bit-identical scores and pool selections across all five
//! quantization schemes.

use crate::telemetry::{self, Telemetry};
use emmark_quant::QuantizedLinear;

/// Scoring coefficients `(α, β)` of Eq. 2.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScoreCoefficients {
    /// Weight of the quality-preservation score `S_q`.
    pub alpha: f64,
    /// Weight of the robustness score `S_r`.
    pub beta: f64,
}

impl Default for ScoreCoefficients {
    /// The paper's default `(0.5, 0.5)`.
    fn default() -> Self {
        Self {
            alpha: 0.5,
            beta: 0.5,
        }
    }
}

impl ScoreCoefficients {
    /// Validates that both coefficients are non-negative and not both
    /// zero.
    ///
    /// # Errors
    ///
    /// Returns a message describing the violation.
    pub fn validate(&self) -> Result<(), String> {
        if self.alpha < 0.0 || self.beta < 0.0 {
            return Err("coefficients must be non-negative".into());
        }
        if self.alpha == 0.0 && self.beta == 0.0 {
            return Err("at least one coefficient must be positive".into());
        }
        Ok(())
    }
}

/// Cells per kernel chunk: scores are computed into a fixed stack
/// buffer of this many lanes, then folded (count + min) before the
/// pool heap is consulted.
const CHUNK: usize = 64;

/// The per-layer quality table: entry `b` holds `α/|q|` for the `i8`
/// whose bit pattern is `b` when `0 < |q| < qmax`, and `∞` otherwise
/// (clamped levels, the wrapped two's-complement minimum, and zero
/// weights). A quantized cell admits only 256 values, so the whole
/// Eq. 3 term — divide, validity test, and all — collapses into one
/// indexed load; `∞ + row_term = ∞`, so exclusion survives the add.
///
/// Entries are computed with the same `α / |q|` the scalar reference
/// performs per cell, keeping scores bit-identical. With `α = 0` valid
/// entries are `0/|q| = 0`: the ablation semantics (zero coefficient
/// disables the term, exclusions still apply) need no special case.
fn quality_lut(alpha: f64, qmax: f64) -> [f64; 256] {
    let mut lut = [f64::INFINITY; 256];
    for (b, entry) in lut.iter_mut().enumerate() {
        let a = ((b as u8 as i8) as i32).unsigned_abs() as f64;
        if a > 0.0 && a < qmax {
            *entry = alpha / a;
        }
    }
    lut
}

/// The scoring kernel for one slice of a row: one table load plus one
/// add per cell, no branches, no per-cell divide. `row_term` is the
/// hoisted `β·S_r[channel]` of the row this slice belongs to.
#[inline]
fn score_cells(q_row: &[i8], lut: &[f64; 256], row_term: f64, out: &mut [f64]) {
    debug_assert_eq!(q_row.len(), out.len());
    for (o, &qv) in out.iter_mut().zip(q_row) {
        *o = lut[qv as u8 as usize] + row_term;
    }
}

/// Per-cell scores for one quantized layer; `f64::INFINITY` marks cells
/// excluded from watermarking (min/max level, zero weights, LLM.int8()
/// outlier rows).
///
/// Runs the chunked row kernel (module docs) straight into the output
/// vector; bit-identical to [`reference::score_layer`].
///
/// # Panics
///
/// Panics if `act_mean.len() != layer.in_features()`.
pub fn score_layer(
    layer: &QuantizedLinear,
    act_mean: &[f32],
    coeffs: &ScoreCoefficients,
) -> Vec<f64> {
    assert_eq!(
        act_mean.len(),
        layer.in_features(),
        "activation profile does not match layer input width"
    );
    let row_terms = robustness_row_terms(act_mean, coeffs.beta);
    let out = layer.out_features();
    let lut = quality_lut(coeffs.alpha, layer.qmax() as f64);
    let mut scores = vec![f64::INFINITY; layer.len()];
    let mut outliers = layer.outlier_rows().iter().peekable();
    for (r, &row_term) in row_terms.iter().enumerate() {
        if outliers.next_if(|&&o| o == r).is_some() {
            continue; // outlier row: inert integer storage, stays ∞
        }
        if !row_term.is_finite() {
            continue; // excluded minimum-activation channel, stays ∞
        }
        score_cells(
            layer.q_row(r),
            &lut,
            row_term,
            &mut scores[r * out..(r + 1) * out],
        );
    }
    scores
}

/// Eq. 4 per input channel: `|max(A_f) / (A_f_i − min(A_f))|`, with the
/// minimum-activation channel excluded (division by zero ⇒ `∞`).
pub fn robustness_scores(act_mean: &[f32]) -> Vec<f64> {
    robustness_row_terms(act_mean, 1.0)
}

/// The per-channel robustness term the kernels index once per row:
/// `β·S_r` (Eq. 4 pre-multiplied by the coefficient), computed with a
/// single fused min/max pass over `act_mean`. With `β = 0` the whole
/// vector is zero (the term is disabled; `0·∞` never poisons a score),
/// matching the coefficient-ablation semantics of Eq. 2.
pub fn robustness_row_terms(act_mean: &[f32], beta: f64) -> Vec<f64> {
    if beta == 0.0 {
        return vec![0.0; act_mean.len()];
    }
    let (max, min) = act_mean
        .iter()
        .fold((f32::NEG_INFINITY, f32::INFINITY), |(max, min), &a| {
            (max.max(a), min.min(a))
        });
    let (max, min) = (max as f64, min as f64);
    act_mean
        .iter()
        .map(|&a| {
            let denom = a as f64 - min;
            if denom == 0.0 {
                f64::INFINITY
            } else {
                beta * (max / denom).abs()
            }
        })
        .collect()
}

/// The candidate pool: flat indices of the `pool_size` best-scored
/// (smallest) cells, ties broken by index for determinism. Excluded
/// (infinite-score) cells never enter the pool.
///
/// # Errors
///
/// Returns [`PoolError`] if fewer than `pool_size` finite-scored cells
/// exist.
pub fn candidate_pool(scores: &[f64], pool_size: usize) -> Result<Vec<usize>, PoolError> {
    let mut indexed: Vec<(f64, usize)> = scores
        .iter()
        .enumerate()
        .filter(|(_, s)| s.is_finite())
        .map(|(i, &s)| (s, i))
        .collect();
    if indexed.len() < pool_size {
        return Err(PoolError {
            needed: pool_size,
            available: indexed.len(),
        });
    }
    // total_cmp orders the finite scores that reach this point exactly
    // like partial_cmp did, with no panic path for the optimizer.
    indexed.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
    indexed.truncate(pool_size);
    Ok(indexed.into_iter().map(|(_, i)| i).collect())
}

/// A `(score, index)` pair with the total order the candidate pool
/// sorts by: ascending score, ties broken by ascending index. Scores in
/// the pool are always finite and non-negative, so [`f64::total_cmp`]
/// coincides with the numeric order (and leaves no panic path in the
/// comparator).
#[derive(Debug, Clone, Copy)]
struct Scored(f64, usize);

impl PartialEq for Scored {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}

impl Eq for Scored {}

impl Ord for Scored {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0).then(self.1.cmp(&other.1))
    }
}

impl PartialOrd for Scored {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Scores one layer and keeps its candidate pool in a single streaming
/// pass: the chunked Eq. 2–4 kernel (module docs) over the row-sliced
/// grid, with `excluded` cells score-excluded (the rule the fingerprint
/// layer uses to keep device bits off the ownership watermark's cells),
/// while a bounded max-heap retains the `pool_size` best seen so far.
/// The heap is consulted only when a chunk's minimum score beats the
/// pool's current worst — after warm-up almost every chunk is disposed
/// of by the vectorized fold alone. Resident memory is
/// O(pool_size + in_features), never O(cells).
///
/// `excluded` must be sorted ascending (the fingerprint layer holds its
/// exclusions sorted; passing the slice through avoids the copy + sort
/// per layer the scalar path paid). Debug builds assert sortedness.
///
/// The result is identical to scoring everything and calling
/// [`candidate_pool`] (same scores, same `(score, index)` tie-break),
/// and bit-identical to the scalar [`reference::layer_pool`]; the
/// module tests and `tests/scoring_kernel_equivalence.rs` pin both.
///
/// This is the per-layer unit of work every location-reproduction path
/// shares — ownership insertion, fingerprint pooling, and the fleet
/// caches all reduce to it, so scoring happens in exactly one place.
///
/// # Errors
///
/// Returns [`PoolError`] if fewer than `pool_size` finite-scored cells
/// remain after exclusion.
///
/// # Panics
///
/// Panics if `act_mean.len() != layer.in_features()`.
pub fn layer_pool(
    layer: &QuantizedLinear,
    act_mean: &[f32],
    coeffs: &ScoreCoefficients,
    pool_size: usize,
    excluded: &[usize],
) -> Result<Vec<usize>, PoolError> {
    assert_eq!(
        act_mean.len(),
        layer.in_features(),
        "activation profile does not match layer input width"
    );
    debug_assert!(
        excluded.windows(2).all(|w| w[0] <= w[1]),
        "excluded cells must be sorted ascending"
    );
    let row_terms = robustness_row_terms(act_mean, coeffs.beta);
    let out = layer.out_features();
    let lut = quality_lut(coeffs.alpha, layer.qmax() as f64);
    // The `pool_size` smallest (score, index) pairs seen so far; the
    // heap top is the current worst. `threshold` mirrors the top score
    // once the heap is full — a cell can enter only with a strictly
    // smaller score (an equal score loses the index tie-break, because
    // the grid is walked in ascending index order).
    let mut heap: std::collections::BinaryHeap<Scored> =
        std::collections::BinaryHeap::with_capacity(pool_size + 1);
    let mut threshold = f64::INFINITY;
    let mut available = 0usize;
    let mut excl = excluded;
    let mut outliers = layer.outlier_rows().iter().peekable();
    let mut buf = [0.0f64; CHUNK];
    // Telemetry rides on plain register accumulators so the hot loop
    // stays branch-free; they flush (and the span records) only when
    // telemetry is enabled — the disabled cost is one atomic load.
    let span = telemetry::Span::enter(&telemetry::SCORING_POOL_NS);
    let mut chunks = 0u64;
    let mut chunks_skipped = 0u64;
    let mut heap_consults = 0u64;
    for (r, &row_term) in row_terms.iter().enumerate() {
        let row_start = r * out;
        let row_end = row_start + out;
        // Rows with no scorable cells skip the kernel entirely; their
        // exclusion entries are consumed so the run pointer stays in
        // step with the walk.
        if outliers.next_if(|&&o| o == r).is_some() || !row_term.is_finite() {
            excl = &excl[excl.iter().take_while(|&&e| e < row_end).count()..];
            continue;
        }
        let row = layer.q_row(r);
        let (row_excl, rest) = excl.split_at(excl.iter().take_while(|&&e| e < row_end).count());
        excl = rest;
        for (ci, chunk) in row.chunks(CHUNK).enumerate() {
            let base = row_start + ci * CHUNK;
            let buf = &mut buf[..chunk.len()];
            score_cells(chunk, &lut, row_term, buf);
            // Splice the row's sorted exclusion run into the mask.
            for &e in row_excl {
                if e >= base && e < base + buf.len() {
                    buf[e - base] = f64::INFINITY;
                }
            }
            let mut chunk_min = f64::INFINITY;
            let mut finite = 0usize;
            for &s in buf.iter() {
                finite += (s < f64::INFINITY) as usize;
                chunk_min = chunk_min.min(s);
            }
            available += finite;
            chunks += 1;
            if pool_size == 0 || chunk_min >= threshold {
                chunks_skipped += 1;
                continue;
            }
            for (i, &s) in buf.iter().enumerate() {
                if s >= threshold {
                    continue;
                }
                heap_consults += 1;
                let candidate = Scored(s, base + i);
                if heap.len() == pool_size {
                    heap.pop();
                }
                heap.push(candidate);
                if heap.len() == pool_size {
                    threshold = heap.peek().expect("non-empty heap").0;
                }
            }
        }
    }
    if Telemetry::enabled() {
        telemetry::SCORING_CELLS.add(layer.len() as u64);
        telemetry::SCORING_CHUNKS.add(chunks);
        telemetry::SCORING_CHUNKS_SKIPPED.add(chunks_skipped);
        telemetry::SCORING_HEAP_CONSULTS.add(heap_consults);
    }
    drop(span);
    if available < pool_size {
        return Err(PoolError {
            needed: pool_size,
            available,
        });
    }
    let mut kept = heap.into_vec();
    kept.sort_unstable();
    Ok(kept.into_iter().map(|Scored(_, f)| f).collect())
}

/// The pre-kernel scalar implementations of Eqs. 2–4, kept as the
/// measured baseline and the equivalence oracle.
///
/// These are the per-cell, branch-heavy loops the chunked kernels
/// replaced: the `scoring_kernels` bench gates [`layer_pool`] ≥3x over
/// [`reference::layer_pool`], and the proptests in
/// `tests/scoring_kernel_equivalence.rs` pin bit-identical scores and
/// pool selections between the two across all five quantization
/// schemes. Unlike the kernel entry point, [`reference::layer_pool`]
/// accepts `excluded` in any order (it copies and sorts, as the scalar
/// path always did).
pub mod reference {
    use super::{PoolError, ScoreCoefficients, Scored};
    use emmark_quant::QuantizedLinear;

    /// Scalar per-cell scoring — the pre-kernel [`super::score_layer`].
    ///
    /// # Panics
    ///
    /// Panics if `act_mean.len() != layer.in_features()`.
    pub fn score_layer(
        layer: &QuantizedLinear,
        act_mean: &[f32],
        coeffs: &ScoreCoefficients,
    ) -> Vec<f64> {
        assert_eq!(
            act_mean.len(),
            layer.in_features(),
            "activation profile does not match layer input width"
        );
        let s_r = super::robustness_scores(act_mean);
        let out = layer.out_features();
        (0..layer.len())
            .map(|f| {
                if layer.is_clamped_flat(f) || layer.is_outlier_flat(f) {
                    return f64::INFINITY;
                }
                let q = layer.q_at_flat(f);
                if q == 0 {
                    // |b / 0| diverges: zero weights flip sign under ±1.
                    return f64::INFINITY;
                }
                let channel = f / out;
                // A zero coefficient disables its term entirely
                // (otherwise 0 · ∞ from the excluded minimum-activation
                // channel would poison the score with NaN).
                let term_q = if coeffs.alpha == 0.0 {
                    0.0
                } else {
                    coeffs.alpha / (q as f64).abs()
                };
                let term_r = if coeffs.beta == 0.0 {
                    0.0
                } else {
                    coeffs.beta * s_r[channel]
                };
                term_q + term_r
            })
            .collect()
    }

    /// Scalar streaming pool — the pre-kernel [`super::layer_pool`].
    /// `excluded` may arrive in any order.
    ///
    /// # Errors
    ///
    /// Returns [`PoolError`] if fewer than `pool_size` finite-scored
    /// cells remain after exclusion.
    ///
    /// # Panics
    ///
    /// Panics if `act_mean.len() != layer.in_features()`.
    pub fn layer_pool(
        layer: &QuantizedLinear,
        act_mean: &[f32],
        coeffs: &ScoreCoefficients,
        pool_size: usize,
        excluded: &[usize],
    ) -> Result<Vec<usize>, PoolError> {
        assert_eq!(
            act_mean.len(),
            layer.in_features(),
            "activation profile does not match layer input width"
        );
        let s_r = super::robustness_scores(act_mean);
        let mut excluded_sorted = excluded.to_vec();
        excluded_sorted.sort_unstable();
        let out = layer.out_features();
        let mut heap: std::collections::BinaryHeap<Scored> =
            std::collections::BinaryHeap::with_capacity(pool_size + 1);
        let mut available = 0usize;
        for f in 0..layer.len() {
            if layer.is_clamped_flat(f) || layer.is_outlier_flat(f) {
                continue;
            }
            let q = layer.q_at_flat(f);
            if q == 0 {
                continue;
            }
            if excluded_sorted.binary_search(&f).is_ok() {
                continue;
            }
            let channel = f / out;
            let term_q = if coeffs.alpha == 0.0 {
                0.0
            } else {
                coeffs.alpha / (q as f64).abs()
            };
            let term_r = if coeffs.beta == 0.0 {
                0.0
            } else {
                coeffs.beta * s_r[channel]
            };
            let score = term_q + term_r;
            if !score.is_finite() {
                continue;
            }
            available += 1;
            if pool_size == 0 {
                continue;
            }
            let candidate = Scored(score, f);
            if heap.len() < pool_size {
                heap.push(candidate);
            } else if candidate < *heap.peek().expect("non-empty heap") {
                heap.pop();
                heap.push(candidate);
            }
        }
        if available < pool_size {
            return Err(PoolError {
                needed: pool_size,
                available,
            });
        }
        let mut kept = heap.into_vec();
        kept.sort_unstable();
        Ok(kept.into_iter().map(|Scored(_, f)| f).collect())
    }
}

/// Not enough watermarkable cells in a layer to fill the candidate pool.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PoolError {
    /// Requested pool size.
    pub needed: usize,
    /// Finite-scored cells available.
    pub available: usize,
}

impl std::fmt::Display for PoolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "candidate pool needs {} cells but only {} are watermarkable",
            self.needed, self.available
        )
    }
}

impl std::error::Error for PoolError {}

#[cfg(test)]
mod tests {
    use super::*;
    use emmark_quant::{ActQuant, Granularity};

    fn layer_with(q: Vec<i8>, in_f: usize, out_f: usize) -> QuantizedLinear {
        QuantizedLinear::new(
            q,
            in_f,
            out_f,
            8,
            Granularity::PerTensor,
            vec![1.0],
            None,
            None,
            ActQuant::None,
        )
    }

    #[test]
    fn robustness_prefers_salient_channels() {
        let s = robustness_scores(&[1.0, 2.0, 10.0]);
        // Channel 2 (most salient) has the smallest score; channel 0
        // (the minimum) is excluded.
        assert_eq!(s[0], f64::INFINITY);
        assert!(s[2] < s[1]);
        // Exact values: max=10, min=1; s1 = 10/1, s2 = 10/9.
        assert!((s[1] - 10.0).abs() < 1e-12);
        assert!((s[2] - 10.0 / 9.0).abs() < 1e-12);
    }

    #[test]
    fn row_terms_premultiply_beta_and_disable_at_zero() {
        let act = [1.0f32, 2.0, 10.0];
        let s = robustness_scores(&act);
        let half = robustness_row_terms(&act, 0.5);
        for (a, b) in s.iter().zip(&half) {
            assert_eq!(0.5 * a, *b, "row terms must be beta-premultiplied");
        }
        assert_eq!(
            robustness_row_terms(&act, 0.0),
            vec![0.0; 3],
            "beta = 0 disables the term without 0 * inf poisoning"
        );
    }

    #[test]
    fn quality_score_prefers_large_magnitudes() {
        // One channel (so S_r is constant-infinite except...); use two
        // channels to keep S_r finite on channel 1.
        let layer = layer_with(vec![1, 2, 100, -100], 2, 2);
        let coeffs = ScoreCoefficients {
            alpha: 1.0,
            beta: 0.0,
        };
        let s = score_layer(&layer, &[1.0, 2.0], &coeffs);
        assert!(s[2] < s[0], "larger |q| must score lower");
        assert_eq!(s[2], s[3], "sign does not matter");
    }

    #[test]
    fn clamped_zero_and_outlier_cells_are_excluded() {
        let mut layer = layer_with(vec![127, 0, -127, 5, 6, 7], 3, 2);
        layer.set_outliers(vec![2], emmark_tensor::Matrix::from_rows(&[&[1.0, 2.0]]));
        let s = score_layer(&layer, &[1.0, 2.0, 3.0], &ScoreCoefficients::default());
        assert_eq!(s[0], f64::INFINITY, "max level excluded");
        assert_eq!(s[1], f64::INFINITY, "zero weight excluded");
        assert_eq!(s[2], f64::INFINITY, "min level excluded");
        assert_eq!(s[4], f64::INFINITY, "outlier row excluded");
        assert_eq!(s[5], f64::INFINITY, "outlier row excluded");
        assert!(s[3].is_finite());
    }

    #[test]
    fn combined_score_trades_off_terms() {
        // Cell A: huge |q| in a weak channel. Cell B: small |q| in the
        // most salient channel. α-heavy scoring picks A, β-heavy picks B.
        let layer = layer_with(vec![100, 0, 0, 2], 2, 2);
        let act = [1.0f32, 50.0];
        let alpha_heavy = score_layer(
            &layer,
            &act,
            &ScoreCoefficients {
                alpha: 1.0,
                beta: 0.0,
            },
        );
        assert!(alpha_heavy[0] < alpha_heavy[3]);
        let beta_heavy = score_layer(
            &layer,
            &act,
            &ScoreCoefficients {
                alpha: 0.0,
                beta: 1.0,
            },
        );
        assert!(beta_heavy[3] < beta_heavy[0]);
    }

    #[test]
    fn kernel_scores_match_the_scalar_reference_bitwise() {
        // Clamped cells, the wrapped minimum, zeros, both signs, and an
        // outlier row, across every coefficient regime.
        let mut layer = layer_with(vec![127, -127, 0, 5, -5, 1, 126, 2, 3, -1, 4, 6], 4, 3);
        layer.set_outliers(
            vec![3],
            emmark_tensor::Matrix::from_rows(&[&[1.0, 2.0, 3.0]]),
        );
        let act = [0.5f32, 0.5, 2.0, 8.0];
        for coeffs in [
            ScoreCoefficients::default(),
            ScoreCoefficients {
                alpha: 1.0,
                beta: 0.0,
            },
            ScoreCoefficients {
                alpha: 0.0,
                beta: 1.0,
            },
            ScoreCoefficients {
                alpha: 0.25,
                beta: 2.0,
            },
        ] {
            let kernel = score_layer(&layer, &act, &coeffs);
            let scalar = reference::score_layer(&layer, &act, &coeffs);
            for (f, (a, b)) in kernel.iter().zip(&scalar).enumerate() {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "cell {f} diverged under {coeffs:?}: kernel {a}, scalar {b}"
                );
            }
        }
    }

    #[test]
    fn candidate_pool_is_sorted_deterministic_and_excludes_infinite() {
        let scores = vec![0.5, f64::INFINITY, 0.1, 0.5, 0.2];
        let pool = candidate_pool(&scores, 3).expect("enough candidates");
        assert_eq!(pool, vec![2, 4, 0]); // ties (0.5) broken by index
        let pool4 = candidate_pool(&scores, 4).expect("enough candidates");
        assert_eq!(pool4, vec![2, 4, 0, 3]);
        let err = candidate_pool(&scores, 5).expect_err("only 4 finite");
        assert_eq!(
            err,
            PoolError {
                needed: 5,
                available: 4
            }
        );
        assert!(err.to_string().contains("5"));
    }

    #[test]
    fn layer_pool_matches_score_then_pool_and_honors_exclusions() {
        let layer = layer_with(vec![3, 4, 5, 6, 7, 8], 3, 2);
        let act = [1.0f32, 2.0, 3.0];
        let coeffs = ScoreCoefficients::default();
        let direct = {
            let scores = score_layer(&layer, &act, &coeffs);
            candidate_pool(&scores, 3).expect("pool")
        };
        let fused = layer_pool(&layer, &act, &coeffs, 3, &[]).expect("pool");
        assert_eq!(direct, fused);
        // Excluding a pooled cell must evict it, never shrink the pool.
        let without = layer_pool(&layer, &act, &coeffs, 3, &[fused[0]]).expect("pool");
        assert_eq!(without.len(), 3);
        assert!(!without.contains(&fused[0]));
        // Exclusions count against availability.
        let err = layer_pool(&layer, &act, &coeffs, 4, &[2, 3, 4, 5]).expect_err("short");
        assert!(err.available < err.needed);
    }

    #[test]
    fn layer_pool_matches_the_scalar_reference_with_exclusions() {
        let mut layer = layer_with(
            vec![
                127, -127, 0, 5, -5, 1, 126, 2, 3, -1, 4, 6, 7, -8, 9, 10, 11, -12, 13, 14,
            ],
            5,
            4,
        );
        layer.set_outliers(
            vec![2],
            emmark_tensor::Matrix::from_rows(&[&[1.0, 2.0, 3.0, 4.0]]),
        );
        let act = [0.5f32, 1.5, 2.0, 8.0, 3.0];
        let coeffs = ScoreCoefficients::default();
        // Exclusions straddling chunk/row boundaries, including cells
        // that are already excluded structurally.
        let excluded = vec![0usize, 3, 7, 12, 19];
        for pool_size in [0usize, 1, 3, 6] {
            let kernel = layer_pool(&layer, &act, &coeffs, pool_size, &excluded);
            let scalar = reference::layer_pool(&layer, &act, &coeffs, pool_size, &excluded);
            assert_eq!(kernel, scalar, "pool_size {pool_size}");
        }
        // Shortage accounting agrees too.
        assert_eq!(
            layer_pool(&layer, &act, &coeffs, 64, &excluded),
            reference::layer_pool(&layer, &act, &coeffs, 64, &excluded),
        );
    }

    #[test]
    fn coefficient_validation() {
        assert!(ScoreCoefficients::default().validate().is_ok());
        assert!(ScoreCoefficients {
            alpha: -0.1,
            beta: 1.0
        }
        .validate()
        .is_err());
        assert!(ScoreCoefficients {
            alpha: 0.0,
            beta: 0.0
        }
        .validate()
        .is_err());
        assert!(ScoreCoefficients {
            alpha: 0.0,
            beta: 1.0
        }
        .validate()
        .is_ok());
    }
}
