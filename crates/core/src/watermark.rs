//! EmMark watermark insertion and extraction (§4 of the paper).
//!
//! Insertion (Eq. 5): score every cell of every quantized layer
//! (Eqs. 2–4), keep the `|B_c|` best per layer as the candidate pool,
//! pick `|B|/n` of them with the secret seed `d`, and bump each chosen
//! integer by its signature bit. Extraction (Eqs. 6–7): re-derive the
//! locations from `(d, W, A_f, α, β)`, diff the suspect weights against
//! the original, and count exact `ΔW == b` matches. Eq. 8 turns the match
//! count into a chance probability.

use crate::scoring::{layer_pool, PoolError, ScoreCoefficients};
use crate::signature::Signature;
use crate::store::{
    for_each_layer_prefetched, ArtifactSink, LayerRecordMeta, LayerSink, LayerStore, StoreError,
};
use crate::telemetry;
use emmark_nanolm::model::ActivationStats;
use emmark_quant::{QuantizedLinear, QuantizedModel};
use emmark_tensor::rng::{SplitMix64, Xoshiro256};
use emmark_tensor::stats::log10_binomial_tail;
use serde::{Deserialize, Serialize};
use std::borrow::Cow;

/// Watermark insertion parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WatermarkConfig {
    /// Scoring coefficients `(α, β)`; paper default `(0.5, 0.5)`.
    pub alpha: f64,
    /// See `alpha`.
    pub beta: f64,
    /// Signature bits inserted per quantized layer (`|B| / n`).
    pub bits_per_layer: usize,
    /// Candidate-pool ratio `|B_c| · n / |B|`: the pool holds
    /// `pool_ratio × bits_per_layer` cells. Paper: 50 for models below
    /// the 6.7B-equivalent, 60 at and above.
    pub pool_ratio: usize,
    /// The secret selection seed `d` (paper experiments use 100).
    pub selection_seed: u64,
}

impl Default for WatermarkConfig {
    fn default() -> Self {
        Self {
            alpha: 0.5,
            beta: 0.5,
            bits_per_layer: 8,
            pool_ratio: 50,
            selection_seed: 100,
        }
    }
}

impl WatermarkConfig {
    /// Scaled default for INT8 grids (paper: 300 bits/layer at OPT scale;
    /// 24 here — DESIGN.md §4 records the density mapping).
    pub fn int8_default() -> Self {
        Self {
            bits_per_layer: 24,
            ..Self::default()
        }
    }

    /// Scaled default for INT4 grids (paper: 40 bits/layer; 8 here).
    pub fn int4_default() -> Self {
        Self {
            bits_per_layer: 8,
            ..Self::default()
        }
    }

    /// The coefficients as a [`ScoreCoefficients`].
    pub fn coefficients(&self) -> ScoreCoefficients {
        ScoreCoefficients {
            alpha: self.alpha,
            beta: self.beta,
        }
    }

    /// Total signature length for a model with `n_layers` quantized
    /// layers.
    pub fn signature_len(&self, n_layers: usize) -> usize {
        self.bits_per_layer * n_layers
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`WatermarkError::InvalidConfig`] on nonsensical values.
    pub fn validate(&self) -> Result<(), WatermarkError> {
        self.coefficients()
            .validate()
            .map_err(WatermarkError::InvalidConfig)?;
        if self.bits_per_layer == 0 {
            return Err(WatermarkError::InvalidConfig(
                "bits_per_layer must be positive".into(),
            ));
        }
        if self.pool_ratio < 1 {
            return Err(WatermarkError::InvalidConfig(
                "pool_ratio must be at least 1".into(),
            ));
        }
        Ok(())
    }
}

/// Errors of the watermarking pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum WatermarkError {
    /// A layer cannot supply the requested candidate pool.
    Pool {
        /// Canonical index of the failing layer.
        layer: usize,
        /// The underlying shortage.
        source: PoolError,
    },
    /// Configuration is internally inconsistent.
    InvalidConfig(String),
    /// Signature length does not match `bits_per_layer × n`.
    SignatureLength {
        /// Expected length.
        expected: usize,
        /// Provided length.
        got: usize,
    },
    /// Suspect and original models have different shapes.
    ShapeMismatch(String),
}

impl std::fmt::Display for WatermarkError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WatermarkError::Pool { layer, source } => {
                write!(f, "layer {layer}: {source}")
            }
            WatermarkError::InvalidConfig(msg) => write!(f, "invalid config: {msg}"),
            WatermarkError::SignatureLength { expected, got } => {
                write!(
                    f,
                    "signature length {got} does not match required {expected}"
                )
            }
            WatermarkError::ShapeMismatch(msg) => write!(f, "model shape mismatch: {msg}"),
        }
    }
}

impl std::error::Error for WatermarkError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WatermarkError::Pool { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// Per-layer watermark locations (flat cell indices, in selection order).
pub type Locations = Vec<Vec<usize>>;

/// Read-only access to a model's integer weight grids — the only
/// capability extraction (Eqs. 6–7) actually needs.
///
/// Implemented by the in-memory [`QuantizedModel`] and by the
/// random-access [`crate::deploy::SparseArtifact`] reader; both produce
/// bit-identical [`ExtractionReport`]s, but the sparse implementation
/// reads O(watermark bits) artifact bytes instead of decoding the whole
/// model.
pub trait GridSource {
    /// Number of quantized layers.
    fn source_layer_count(&self) -> usize;
    /// `(in_features, out_features)` of layer `l`.
    fn layer_dims(&self, l: usize) -> (usize, usize);
    /// Integer value at flat index `f` of layer `l`.
    fn q_at(&self, l: usize, f: usize) -> i8;
}

impl GridSource for QuantizedModel {
    fn source_layer_count(&self) -> usize {
        self.layers.len()
    }

    fn layer_dims(&self, l: usize) -> (usize, usize) {
        (self.layers[l].in_features(), self.layers[l].out_features())
    }

    fn q_at(&self, l: usize, f: usize) -> i8 {
        self.layers[l].q_at_flat(f)
    }
}

/// Re-derives the watermark weight locations from the secret material:
/// the *original* quantized weights, the full-precision activation
/// profile, the coefficients, and the selection seed. Used by both
/// insertion and extraction — the paper's location-reproduction step.
///
/// # Errors
///
/// Returns [`WatermarkError::Pool`] if a layer cannot fill its candidate
/// pool, or [`WatermarkError::InvalidConfig`] on bad parameters.
pub fn locate_watermark(
    original: &QuantizedModel,
    stats: &ActivationStats,
    cfg: &WatermarkConfig,
) -> Result<Locations, WatermarkError> {
    cfg.validate()?;
    if stats.layer_count() != original.layer_count() {
        return Err(WatermarkError::ShapeMismatch(format!(
            "activation stats cover {} layers, model has {}",
            stats.layer_count(),
            original.layer_count()
        )));
    }
    // One deterministic sub-seed per layer, derived from the secret seed.
    let mut sm = SplitMix64::new(cfg.selection_seed);
    let mut locations = Vec::with_capacity(original.layer_count());
    for (l, layer) in original.layers.iter().enumerate() {
        let layer_seed = sm.next_u64();
        let locs = locate_layer(layer, &stats.per_layer[l].mean_abs, cfg, layer_seed)
            .map_err(|source| WatermarkError::Pool { layer: l, source })?;
        locations.push(locs);
    }
    Ok(locations)
}

/// The per-layer unit of location reproduction: Eqs. 2–4 pool the
/// layer's best cells, then the layer's sub-seed samples
/// `bits_per_layer` of them. [`locate_watermark`] is a loop over this
/// stage; the streaming pipeline ([`stream_watermark`]) calls it with
/// one layer resident at a time — identical selections by construction.
pub(crate) fn locate_layer(
    layer: &QuantizedLinear,
    act_mean: &[f32],
    cfg: &WatermarkConfig,
    layer_seed: u64,
) -> Result<Vec<usize>, PoolError> {
    let pool_size = cfg.pool_ratio * cfg.bits_per_layer;
    let pool = layer_pool(layer, act_mean, &cfg.coefficients(), pool_size, &[])?;
    Ok(sample_pool(&pool, cfg, layer_seed))
}

/// [`locate_layer`] over the scalar scoring baseline
/// ([`crate::scoring::reference`]) — the oracle half of the
/// kernel-equivalence gates. Selections are identical to
/// [`locate_layer`] because the kernel and scalar pools are
/// bit-identical.
pub(crate) fn locate_layer_reference(
    layer: &QuantizedLinear,
    act_mean: &[f32],
    cfg: &WatermarkConfig,
    layer_seed: u64,
) -> Result<Vec<usize>, PoolError> {
    let pool_size = cfg.pool_ratio * cfg.bits_per_layer;
    let pool = crate::scoring::reference::layer_pool(
        layer,
        act_mean,
        &cfg.coefficients(),
        pool_size,
        &[],
    )?;
    Ok(sample_pool(&pool, cfg, layer_seed))
}

/// The seeded sampling half of location reproduction: `bits_per_layer`
/// distinct picks from the candidate pool under the layer's sub-seed.
fn sample_pool(pool: &[usize], cfg: &WatermarkConfig, layer_seed: u64) -> Vec<usize> {
    let mut rng = Xoshiro256::seed_from_u64(layer_seed);
    let picks = rng.sample_without_replacement(pool.len(), cfg.bits_per_layer);
    picks.into_iter().map(|p| pool[p]).collect()
}

/// The streaming watermark pipeline: `score → insert → encode` with one
/// layer resident at a time, its stages overlapped across two scoped
/// threads.
///
/// Sweep 1 loads each of `store`'s layers once to reproduce its
/// watermark locations (Eqs. 2–4 + seeded sampling) and record its
/// sizing metadata; sweep 2 loads each layer again, applies its
/// signature bits (Eq. 5), and hands it to `sink`. Within each sweep,
/// layer `N+1` is loaded on a worker thread while layer `N` is being
/// scored (or bumped and encoded) — the two-slot rendezvous hand-off of
/// [`for_each_layer_prefetched`], which is why `store` must be `Sync`
/// (every [`LayerStore`] in this crate is). Peak memory stays at the
/// model head plus one layer in flight plus the location table — never
/// the full model, and never the encoded artifact (an [`ArtifactSink`]
/// forwards records straight to its writer).
///
/// Overlap never changes the result: layers are delivered strictly in
/// order, so selections and bytes are identical to the serial loop
/// (DESIGN.md §11). For an in-memory [`QuantizedModel`] store and an
/// [`ArtifactSink`], the output is **byte-identical** to
/// [`insert_watermark`] followed by [`crate::deploy::encode_model`] and
/// to the serial scalar baseline [`stream_watermark_reference`];
/// `tests/streaming_equivalence.rs` pins both across all five
/// quantization schemes.
///
/// # Errors
///
/// Propagates configuration, location, store, and sink failures.
pub fn stream_watermark<S, K>(
    store: &S,
    stats: &ActivationStats,
    signature: &Signature,
    cfg: &WatermarkConfig,
    sink: &mut K,
) -> Result<InsertedWatermark, StoreError>
where
    S: LayerStore + Sync + ?Sized,
    K: LayerSink + ?Sized,
{
    stream_watermark_impl(store, stats, signature, cfg, sink, locate_layer, true)
}

/// The pre-kernel, pre-overlap pipeline: serial sweeps over the scalar
/// scoring baseline ([`crate::scoring::reference`]). This is what
/// [`stream_watermark`] was before the PR 7 kernels — the
/// `streaming_pipeline` bench measures end-to-end stamp throughput
/// against it (≥1.5x gate) and asserts byte-identical output.
///
/// # Errors
///
/// Propagates configuration, location, store, and sink failures.
pub fn stream_watermark_reference<S, K>(
    store: &S,
    stats: &ActivationStats,
    signature: &Signature,
    cfg: &WatermarkConfig,
    sink: &mut K,
) -> Result<InsertedWatermark, StoreError>
where
    S: LayerStore + Sync + ?Sized,
    K: LayerSink + ?Sized,
{
    stream_watermark_impl(
        store,
        stats,
        signature,
        cfg,
        sink,
        locate_layer_reference,
        false,
    )
}

/// The per-layer locate stage of the streaming pipelines:
/// [`locate_layer`] (kernel) or [`locate_layer_reference`] (scalar).
type LocateFn =
    fn(&QuantizedLinear, &[f32], &WatermarkConfig, u64) -> Result<Vec<usize>, PoolError>;

/// Both streaming pipelines, parameterized by the per-layer locate
/// stage and whether sweeps overlap load with compute.
fn stream_watermark_impl<S, K>(
    store: &S,
    stats: &ActivationStats,
    signature: &Signature,
    cfg: &WatermarkConfig,
    sink: &mut K,
    locate: LocateFn,
    overlap: bool,
) -> Result<InsertedWatermark, StoreError>
where
    S: LayerStore + Sync + ?Sized,
    K: LayerSink + ?Sized,
{
    cfg.validate()?;
    // Prefetching a borrow from an already-resident store cannot pay
    // for the per-layer thread hand-off, so overlap only real loads.
    let overlap = overlap && !store.layers_resident();
    let n = store.store_layer_count();
    if stats.layer_count() != n {
        return Err(WatermarkError::ShapeMismatch(format!(
            "activation stats cover {} layers, model has {n}",
            stats.layer_count()
        ))
        .into());
    }
    let expected = cfg.signature_len(n);
    if signature.len() != expected {
        return Err(WatermarkError::SignatureLength {
            expected,
            got: signature.len(),
        }
        .into());
    }
    // Layer sub-seeds are drawn up front so the sweeps are pure
    // per-layer functions, free to overlap.
    let mut sm = SplitMix64::new(cfg.selection_seed);
    let seeds: Vec<u64> = (0..n).map(|_| sm.next_u64()).collect();
    // Sweep 1 — locate + size, one layer resident (plus one in flight).
    let mut locations = Vec::with_capacity(n);
    let mut metas = Vec::with_capacity(n);
    {
        let _sweep_span = telemetry::Span::enter(&telemetry::STAMP_LOCATE_NS);
        let mut sweep = |l: usize, layer: Cow<'_, QuantizedLinear>| -> Result<(), StoreError> {
            let locs = locate(layer.as_ref(), &stats.per_layer[l].mean_abs, cfg, seeds[l])
                .map_err(|source| WatermarkError::Pool { layer: l, source })?;
            locations.push(locs);
            metas.push(LayerRecordMeta::of(layer.as_ref()));
            Ok(())
        };
        if overlap {
            for_each_layer_prefetched(store, sweep)?;
        } else {
            for l in 0..n {
                sweep(l, store.load_layer(l)?)?;
            }
        }
    }
    // Sweep 2 — insert + encode, streaming each stamped layer out.
    sink.begin(&store.head()?, &metas)?;
    {
        let _sweep_span = telemetry::Span::enter(&telemetry::STAMP_INSERT_NS);
        let mut sweep = |l: usize, layer: Cow<'_, QuantizedLinear>| -> Result<(), StoreError> {
            let mut layer = layer.into_owned();
            let bits = signature.layer_bits(l, n);
            for (&f, &b) in locations[l].iter().zip(bits) {
                layer.bump_q_flat(f, b);
            }
            sink.put_layer(l, &layer)
        };
        if overlap {
            for_each_layer_prefetched(store, sweep)?;
        } else {
            for l in 0..n {
                sweep(l, store.load_layer(l)?)?;
            }
        }
    }
    sink.finish()?;
    Ok(InsertedWatermark {
        locations,
        bits: signature.len(),
    })
}

/// Applies `signature` at pre-derived `locations` (Eq. 5's bump), the
/// shared insertion step of [`insert_watermark`], fleet provisioning,
/// and the batch-verifier reference build. Selection excluded clamped
/// cells, so the bump cannot clip.
pub(crate) fn apply_bits_at(
    model: &mut QuantizedModel,
    locations: &Locations,
    signature: &Signature,
) {
    let n = model.layer_count();
    for (l, layer_locs) in locations.iter().enumerate() {
        let bits = signature.layer_bits(l, n);
        for (&f, &b) in layer_locs.iter().zip(bits) {
            model.layers[l].bump_q_flat(f, b);
        }
    }
}

/// Proof material returned by [`insert_watermark`].
#[derive(Debug, Clone, PartialEq)]
pub struct InsertedWatermark {
    /// The locations that received bits (re-derivable from the secrets).
    pub locations: Locations,
    /// Total bits inserted (`|B|`).
    pub bits: usize,
}

/// Inserts `signature` into `model` in place (Eq. 5:
/// `W'[L_i] = W[L_i] + b_i`).
///
/// `model` must still hold the *original* (pre-watermark) weights; the
/// caller keeps a pristine copy as part of the owner secrets.
///
/// # Errors
///
/// Propagates location errors and rejects signatures whose length is not
/// `bits_per_layer × layer_count`.
pub fn insert_watermark(
    model: &mut QuantizedModel,
    stats: &ActivationStats,
    signature: &Signature,
    cfg: &WatermarkConfig,
) -> Result<InsertedWatermark, WatermarkError> {
    let expected = cfg.signature_len(model.layer_count());
    if signature.len() != expected {
        return Err(WatermarkError::SignatureLength {
            expected,
            got: signature.len(),
        });
    }
    let locations = locate_watermark(model, stats, cfg)?;
    apply_bits_at(model, &locations, signature);
    Ok(InsertedWatermark {
        locations,
        bits: signature.len(),
    })
}

/// Result of watermark extraction (Eqs. 6–8).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExtractionReport {
    /// Signature length `|B|`.
    pub total_bits: usize,
    /// Exactly matching bits `|B|'`.
    pub matched_bits: usize,
}

impl ExtractionReport {
    /// Watermark extraction rate in percent (Eq. 7).
    pub fn wer(&self) -> f64 {
        if self.total_bits == 0 {
            return 0.0;
        }
        100.0 * self.matched_bits as f64 / self.total_bits as f64
    }

    /// Base-10 log of the chance-match probability (Eq. 8).
    pub fn log10_p_chance(&self) -> f64 {
        log10_binomial_tail(self.total_bits as u64, self.matched_bits as u64)
    }

    /// Ownership claim at the given significance: the probability that a
    /// non-watermarked model matches this many bits by chance is below
    /// `10^log10_threshold`.
    pub fn proves_ownership(&self, log10_threshold: f64) -> bool {
        self.log10_p_chance() < log10_threshold
    }
}

/// The smallest matched-bit count whose chance probability clears
/// `log10_threshold` for a `total_bits`-bit signature, or `None` when
/// even a perfect match cannot. Exact by monotonicity of Eq. 8 in the
/// match count: `report.proves_ownership(t)` ⇔
/// `report.matched_bits >= min_matched_to_prove(report.total_bits, t)`.
///
/// Batch verification uses this to replace one binomial-tail evaluation
/// per registered device with an integer compare — the tail is computed
/// O(log n) times per suspect instead of O(devices) times.
pub fn min_matched_to_prove(total_bits: usize, log10_threshold: f64) -> Option<usize> {
    let n = total_bits as u64;
    if log10_binomial_tail(n, n) >= log10_threshold {
        return None;
    }
    // Binary search the smallest clearing k; invariant: tail(hi) clears.
    let (mut lo, mut hi) = (0u64, n);
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if log10_binomial_tail(n, mid) < log10_threshold {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    Some(hi as usize)
}

/// A log₁₀ chance-match threshold converted lazily into a match-count
/// cutoff — the *single* source of truth for "does this report clear
/// the threshold" wherever many reports of the same signature length
/// are judged against one threshold.
///
/// Every leak-identification path (the serial [`crate::fingerprint::Fleet`],
/// the cached [`crate::fleet::FleetVerifier`], and the indexed
/// [`crate::registry`] path) judges one suspect against many device
/// reports that all share a signature length. Converting the threshold
/// with [`min_matched_to_prove`] once per length and comparing integers
/// afterwards is both cheaper than a binomial tail per device and
/// immune to the drift that duplicated conversion call sites invite.
///
/// `clears` is exactly `report.proves_ownership(threshold)` by the
/// monotonicity contract of [`min_matched_to_prove`]; the module tests
/// pin the equivalence.
#[derive(Debug, Clone)]
pub struct ProofCutoff {
    log10_threshold: f64,
    /// Cached conversion: `(total_bits, min matched count)`.
    cached: Option<(usize, Option<usize>)>,
}

impl ProofCutoff {
    /// A cutoff for `log10_threshold` with no conversion done yet.
    pub fn new(log10_threshold: f64) -> Self {
        Self {
            log10_threshold,
            cached: None,
        }
    }

    /// The threshold this cutoff was built from.
    pub fn log10_threshold(&self) -> f64 {
        self.log10_threshold
    }

    /// The smallest matched-bit count that clears the threshold for a
    /// `total_bits`-bit signature (`None` when even a perfect match
    /// cannot), converting once and answering repeat queries for the
    /// same length from the cache.
    pub fn min_matched(&mut self, total_bits: usize) -> Option<usize> {
        match self.cached {
            Some((total, k)) if total == total_bits => k,
            _ => {
                let k = min_matched_to_prove(total_bits, self.log10_threshold);
                self.cached = Some((total_bits, k));
                k
            }
        }
    }

    /// Whether `report` clears the threshold — bit-identical to
    /// `report.proves_ownership(self.log10_threshold())`, at an integer
    /// compare per call instead of a binomial tail.
    pub fn clears(&mut self, report: &ExtractionReport) -> bool {
        self.min_matched(report.total_bits)
            .is_some_and(|k| report.matched_bits >= k)
    }
}

/// Checks that `suspect` has the same layer grid as `reference`. Both
/// sides are any [`GridSource`] — an in-memory model or a sparse
/// artifact reader; only shape metadata is touched.
///
/// # Errors
///
/// Returns [`WatermarkError::ShapeMismatch`] describing the first
/// divergence.
pub fn check_same_grid<S, R>(suspect: &S, reference: &R) -> Result<(), WatermarkError>
where
    S: GridSource + ?Sized,
    R: GridSource + ?Sized,
{
    if suspect.source_layer_count() != reference.source_layer_count() {
        return Err(WatermarkError::ShapeMismatch(format!(
            "suspect has {} layers, original {}",
            suspect.source_layer_count(),
            reference.source_layer_count()
        )));
    }
    for l in 0..reference.source_layer_count() {
        let (a_in, a_out) = suspect.layer_dims(l);
        let (b_in, b_out) = reference.layer_dims(l);
        if a_in != b_in || a_out != b_out {
            return Err(WatermarkError::ShapeMismatch(format!(
                "layer {l}: suspect {a_in}x{a_out}, original {b_in}x{b_out}"
            )));
        }
    }
    Ok(())
}

/// Eqs. 6–7 with *pre-reproduced* locations: diffs `suspect` against
/// `reference` at `locations` and counts exact `ΔW == b` matches.
///
/// This is the hot inner step of extraction. [`extract_watermark`]
/// re-derives the locations every call; batch verification (the
/// [`crate::fleet`] engine) reproduces them once per model family and
/// calls this directly for every device artifact. Both sides are any
/// [`GridSource`]: a [`crate::deploy::SparseArtifact`] suspect makes the
/// whole check O(watermark bits) in artifact bytes touched.
///
/// # Errors
///
/// Returns [`WatermarkError::ShapeMismatch`] if the suspect's layer grid
/// does not line up with the reference's.
pub fn extract_with_locations<S, R>(
    suspect: &S,
    reference: &R,
    locations: &Locations,
    signature: &Signature,
) -> Result<ExtractionReport, WatermarkError>
where
    S: GridSource + ?Sized,
    R: GridSource + ?Sized,
{
    check_same_grid(suspect, reference)?;
    let n = reference.source_layer_count();
    let mut matched = 0usize;
    let mut total = 0usize;
    for (l, layer_locs) in locations.iter().enumerate() {
        let bits = signature.layer_bits(l, n);
        for (&f, &b) in layer_locs.iter().zip(bits) {
            // Eq. 6: ΔW[L] = W'[L] − W[L]; exact match required.
            let delta = suspect.q_at(l, f) as i16 - reference.q_at(l, f) as i16;
            if delta == b as i16 {
                matched += 1;
            }
            total += 1;
        }
    }
    Ok(ExtractionReport {
        total_bits: total,
        matched_bits: matched,
    })
}

/// Extracts the watermark from `suspect` using the owner's secret
/// material, and scores the match (Eqs. 6–7). The suspect is any
/// [`GridSource`]; the original must be the in-memory model (location
/// reproduction scores its weights).
///
/// # Errors
///
/// Returns [`WatermarkError::ShapeMismatch`] if the suspect's layer grid
/// does not line up with the original's, plus any location error.
pub fn extract_watermark<S: GridSource + ?Sized>(
    suspect: &S,
    original: &QuantizedModel,
    stats: &ActivationStats,
    signature: &Signature,
    cfg: &WatermarkConfig,
) -> Result<ExtractionReport, WatermarkError> {
    let expected = cfg.signature_len(original.layer_count());
    if signature.len() != expected {
        return Err(WatermarkError::SignatureLength {
            expected,
            got: signature.len(),
        });
    }
    check_same_grid(suspect, original)?;
    let locations = locate_watermark(original, stats, cfg)?;
    extract_with_locations(suspect, original, &locations, signature)
}

/// Everything the model owner keeps confidential: the original quantized
/// weights, the full-precision activation profile, the signature, and
/// the insertion hyperparameters (§4.1 "The watermark consists of…").
#[derive(Debug, Clone)]
pub struct OwnerSecrets {
    /// Pristine pre-watermark quantized model `W`.
    pub original: QuantizedModel,
    /// Full-precision activation profile `A_f`.
    pub stats: ActivationStats,
    /// The signature `B`.
    pub signature: Signature,
    /// Insertion hyperparameters (`α`, `β`, `d`, densities).
    pub config: WatermarkConfig,
}

impl OwnerSecrets {
    /// Creates the secret bundle, generating a fresh signature of the
    /// right length from `signature_seed`.
    pub fn new(
        original: QuantizedModel,
        stats: ActivationStats,
        config: WatermarkConfig,
        signature_seed: u64,
    ) -> Self {
        let signature =
            Signature::generate(config.signature_len(original.layer_count()), signature_seed);
        Self {
            original,
            stats,
            signature,
            config,
        }
    }

    /// Produces the watermarked model to deploy (the original stays
    /// pristine inside the secrets).
    ///
    /// # Errors
    ///
    /// Propagates [`insert_watermark`] errors.
    pub fn watermark_for_deployment(&self) -> Result<QuantizedModel, WatermarkError> {
        let mut deployed = self.original.clone();
        insert_watermark(&mut deployed, &self.stats, &self.signature, &self.config)?;
        Ok(deployed)
    }

    /// Streams the watermarked deployment artifact (v2, indexed)
    /// straight into `out` without materializing the watermarked model
    /// or the artifact: the constant-memory counterpart of
    /// [`Self::watermark_for_deployment`] +
    /// [`crate::deploy::encode_model`], byte-identical to that pair.
    ///
    /// # Errors
    ///
    /// Propagates [`stream_watermark`] errors.
    pub fn watermark_into<W: std::io::Write>(
        &self,
        out: W,
    ) -> Result<InsertedWatermark, StoreError> {
        stream_watermark(
            &self.original,
            &self.stats,
            &self.signature,
            &self.config,
            &mut ArtifactSink::new(out),
        )
    }

    /// Ownership check against a suspect model (Eqs. 6–8). Accepts any
    /// [`GridSource`] — a decoded model or a
    /// [`crate::deploy::SparseArtifact`] (random-access fast path).
    ///
    /// # Errors
    ///
    /// Propagates [`extract_watermark`] errors.
    pub fn verify<S: GridSource + ?Sized>(
        &self,
        suspect: &S,
    ) -> Result<ExtractionReport, WatermarkError> {
        extract_watermark(
            suspect,
            &self.original,
            &self.stats,
            &self.signature,
            &self.config,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use emmark_nanolm::config::ModelConfig;
    use emmark_nanolm::TransformerModel;
    use emmark_quant::awq::{awq, AwqConfig};
    use emmark_quant::rtn::quantize_linear_rtn;
    use emmark_quant::{ActQuant, Granularity};

    fn test_setup(bits: u8) -> (QuantizedModel, ActivationStats) {
        let mut model = TransformerModel::new(ModelConfig::tiny_test());
        let calib: Vec<Vec<u32>> = (0..4u32)
            .map(|s| (0..16u32).map(|i| (i * 7 + s * 3) % 31).collect())
            .collect();
        let stats = model.collect_activation_stats(&calib);
        let qm = if bits == 4 {
            awq(&model, &stats, &AwqConfig::default())
        } else {
            QuantizedModel::quantize_with(&model, "rtn-int8", |_, lin| {
                quantize_linear_rtn(lin, 8, Granularity::PerOutChannel, ActQuant::None)
            })
        };
        (qm, stats)
    }

    fn small_cfg() -> WatermarkConfig {
        // tiny_test layers are 16x16=256 cells; keep pool small.
        WatermarkConfig {
            bits_per_layer: 4,
            pool_ratio: 10,
            ..WatermarkConfig::default()
        }
    }

    #[test]
    fn locations_are_reproducible_and_seed_sensitive() {
        let (qm, stats) = test_setup(8);
        let cfg = small_cfg();
        let a = locate_watermark(&qm, &stats, &cfg).expect("locate");
        let b = locate_watermark(&qm, &stats, &cfg).expect("locate");
        assert_eq!(a, b);
        let cfg2 = WatermarkConfig {
            selection_seed: 101,
            ..cfg
        };
        let c = locate_watermark(&qm, &stats, &cfg2).expect("locate");
        assert_ne!(a, c);
        // Distinct locations within a layer.
        for layer_locs in &a {
            let mut sorted = layer_locs.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), layer_locs.len());
        }
    }

    #[test]
    fn insert_then_extract_is_perfect() {
        for bits in [8u8, 4] {
            let (qm, stats) = test_setup(bits);
            let secrets = OwnerSecrets::new(qm, stats, small_cfg(), 777);
            let deployed = secrets.watermark_for_deployment().expect("insert");
            let report = secrets.verify(&deployed).expect("extract");
            assert_eq!(report.wer(), 100.0, "bits={bits}");
            assert_eq!(report.matched_bits, report.total_bits);
            assert!(report.proves_ownership(-9.0));
        }
    }

    #[test]
    fn unwatermarked_model_yields_zero_wer() {
        let (qm, stats) = test_setup(4);
        let secrets = OwnerSecrets::new(qm.clone(), stats, small_cfg(), 778);
        let report = secrets.verify(&qm).expect("extract");
        assert_eq!(report.matched_bits, 0);
        assert_eq!(report.wer(), 0.0);
        assert!(!report.proves_ownership(-9.0));
    }

    #[test]
    fn insertion_never_clips_and_changes_exactly_bits_cells() {
        let (qm, stats) = test_setup(4);
        let secrets = OwnerSecrets::new(qm.clone(), stats, small_cfg(), 779);
        let deployed = secrets.watermark_for_deployment().expect("insert");
        let mut changed = 0usize;
        for (a, b) in deployed.layers.iter().zip(&qm.layers) {
            for f in 0..a.len() {
                let d = a.q_at_flat(f) as i16 - b.q_at_flat(f) as i16;
                if d != 0 {
                    changed += 1;
                    assert!(d == 1 || d == -1, "delta {d} is not ±1");
                    // Never wrapped: new value within symmetric range.
                    assert!(a.q_at_flat(f) >= -a.qmax() && a.q_at_flat(f) <= a.qmax());
                }
            }
        }
        assert_eq!(changed, secrets.signature.len());
    }

    #[test]
    fn wrong_secrets_fail_to_extract() {
        let (qm, stats) = test_setup(4);
        let cfg = small_cfg();
        let secrets = OwnerSecrets::new(qm, stats, cfg, 780);
        let deployed = secrets.watermark_for_deployment().expect("insert");

        // Wrong signature.
        let mut wrong_sig = secrets.clone();
        wrong_sig.signature = Signature::generate(secrets.signature.len(), 999);
        let r = wrong_sig.verify(&deployed).expect("extract");
        assert!(r.wer() < 80.0, "wrong signature matched {}%", r.wer());

        // Wrong seed: different locations -> deltas are mostly 0 there.
        let mut wrong_seed = secrets.clone();
        wrong_seed.config.selection_seed = 12345;
        let r = wrong_seed.verify(&deployed).expect("extract");
        assert!(r.wer() < 30.0, "wrong seed matched {}%", r.wer());
        assert!(!r.proves_ownership(-9.0));
    }

    #[test]
    fn signature_length_is_enforced() {
        let (mut qm, stats) = test_setup(8);
        let cfg = small_cfg();
        let sig = Signature::generate(3, 1); // wrong length
        let err = insert_watermark(&mut qm, &stats, &sig, &cfg).expect_err("bad length");
        assert!(matches!(err, WatermarkError::SignatureLength { .. }));
        assert!(err.to_string().contains("signature length"));
    }

    #[test]
    fn oversized_pool_reports_layer() {
        let (mut qm, stats) = test_setup(8);
        let cfg = WatermarkConfig {
            bits_per_layer: 64,
            pool_ratio: 50,
            ..Default::default()
        };
        let sig = Signature::generate(cfg.signature_len(qm.layer_count()), 1);
        let err = insert_watermark(&mut qm, &stats, &sig, &cfg).expect_err("pool too big");
        match err {
            WatermarkError::Pool { source, .. } => {
                assert!(source.needed > source.available);
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn shape_mismatch_is_detected() {
        let (qm, stats) = test_setup(8);
        let mut other_cfg = ModelConfig::tiny_test();
        other_cfg.n_layers = 1;
        let other = TransformerModel::new(other_cfg);
        let other_q = QuantizedModel::quantize_with(&other, "rtn", |_, lin| {
            quantize_linear_rtn(lin, 8, Granularity::PerOutChannel, ActQuant::None)
        });
        let secrets = OwnerSecrets::new(qm, stats, small_cfg(), 1);
        let err = secrets.verify(&other_q).expect_err("shape mismatch");
        assert!(matches!(err, WatermarkError::ShapeMismatch(_)));
    }

    #[test]
    fn extraction_report_statistics() {
        let r = ExtractionReport {
            total_bits: 40,
            matched_bits: 40,
        };
        assert_eq!(r.wer(), 100.0);
        // Paper: 9.09e-13 for a fully matched 40-bit layer signature.
        assert!((r.log10_p_chance() - (-12.04)).abs() < 0.01);
        let half = ExtractionReport {
            total_bits: 40,
            matched_bits: 20,
        };
        assert!(half.wer() == 50.0);
        assert!(!half.proves_ownership(-6.0));
    }

    #[test]
    fn min_matched_to_prove_agrees_with_direct_threshold_check() {
        for total in [1usize, 10, 40, 76, 152] {
            for threshold in [-3.0, -6.0, -9.0, -40.0, -200.0] {
                let cutoff = min_matched_to_prove(total, threshold);
                for matched in 0..=total {
                    let report = ExtractionReport {
                        total_bits: total,
                        matched_bits: matched,
                    };
                    let direct = report.proves_ownership(threshold);
                    let via_cutoff = cutoff.is_some_and(|k| matched >= k);
                    assert_eq!(
                        direct, via_cutoff,
                        "total={total} matched={matched} threshold={threshold} cutoff={cutoff:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn proof_cutoff_matches_proves_ownership_and_caches_per_length() {
        for threshold in [-3.0, -6.0, -9.0, -40.0] {
            let mut cutoff = ProofCutoff::new(threshold);
            assert_eq!(cutoff.log10_threshold(), threshold);
            // Mixed lengths interleaved: the cache must re-convert when
            // the length changes and stay exact either way.
            for total in [24usize, 24, 152, 24, 1] {
                for matched in 0..=total {
                    let report = ExtractionReport {
                        total_bits: total,
                        matched_bits: matched,
                    };
                    assert_eq!(
                        cutoff.clears(&report),
                        report.proves_ownership(threshold),
                        "total={total} matched={matched} threshold={threshold}"
                    );
                }
                assert_eq!(
                    cutoff.min_matched(total),
                    min_matched_to_prove(total, threshold)
                );
            }
        }
    }

    #[test]
    fn locations_avoid_clamped_zero_and_outlier_cells() {
        let (qm, stats) = test_setup(4);
        let cfg = small_cfg();
        let locations = locate_watermark(&qm, &stats, &cfg).expect("locate");
        for (l, layer_locs) in locations.iter().enumerate() {
            for &f in layer_locs {
                assert!(!qm.layers[l].is_clamped_flat(f));
                assert!(!qm.layers[l].is_outlier_flat(f));
                assert_ne!(qm.layers[l].q_at_flat(f), 0);
            }
        }
    }
}
