//! Per-device fingerprinting on top of EmMark — a DeepMarks-style
//! extension the paper's IP-protection scenario implies but does not
//! evaluate: a proprietor shipping the *same* model to many end-users
//! wants to know **which** device leaked, not merely that a leak is
//! theirs.
//!
//! Each device receives the same base watermark (ownership) plus a
//! device-specific signature at device-specific locations (traitor
//! tracing). Identification extracts every candidate fingerprint from
//! the leaked weights and returns the one with an overwhelming Eq. 8
//! margin.

use crate::scoring::layer_pool;
use crate::signature::Signature;
use crate::watermark::{
    apply_bits_at, extract_with_locations, locate_watermark, ExtractionReport, GridSource,
    Locations, OwnerSecrets, ProofCutoff, WatermarkConfig, WatermarkError,
};
use emmark_quant::QuantizedModel;
use emmark_tensor::rng::{SplitMix64, Xoshiro256};
use serde::{Deserialize, Serialize};

/// A registered device fingerprint.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceFingerprint {
    /// Stable device identifier.
    pub device_id: String,
    /// The device's selection seed (distinct per device).
    pub selection_seed: u64,
    /// The device's signature seed.
    pub signature_seed: u64,
}

/// A fleet of fingerprinted deployments sharing one base watermark.
#[derive(Debug, Clone)]
pub struct Fleet {
    /// The proprietor's base secrets (ownership watermark).
    pub base: OwnerSecrets,
    /// Fingerprint parameters (fewer bits than the base watermark — the
    /// tracing signal rides on top of the ownership signal).
    pub fingerprint_config: WatermarkConfig,
    devices: Vec<DeviceFingerprint>,
}

impl Fleet {
    /// Creates a fleet around existing owner secrets.
    pub fn new(base: OwnerSecrets, fingerprint_config: WatermarkConfig) -> Self {
        Self::with_devices(base, fingerprint_config, Vec::new())
    }

    /// Creates a fleet with `devices` already registered — e.g. to
    /// continue a registry a [`crate::provision::FleetProvisioner`]
    /// batch produced.
    pub fn with_devices(
        base: OwnerSecrets,
        fingerprint_config: WatermarkConfig,
        devices: Vec<DeviceFingerprint>,
    ) -> Self {
        Self {
            base,
            fingerprint_config,
            devices,
        }
    }

    /// Registered devices.
    pub fn devices(&self) -> &[DeviceFingerprint] {
        &self.devices
    }

    /// Fingerprint locations for a given device seed: EmMark scoring on
    /// the base-watermarked model, with the base watermark's own cells
    /// excluded so the fingerprint can never corrupt the ownership
    /// signal. Used identically by provisioning and extraction.
    fn fingerprint_locations(
        &self,
        base_deployed: &QuantizedModel,
        selection_seed: u64,
    ) -> Result<Locations, WatermarkError> {
        let base_locs = locate_watermark(&self.base.original, &self.base.stats, &self.base.config)?;
        let pools = fingerprint_pools(
            base_deployed,
            &self.base.stats,
            &base_locs,
            &self.fingerprint_config,
        )?;
        Ok(sample_from_pools(
            &pools,
            &self.fingerprint_config,
            selection_seed,
        ))
    }

    /// Registers a device and produces its fingerprinted deployment:
    /// base watermark first, then the device signature at
    /// device-specific, base-disjoint locations.
    ///
    /// # Errors
    ///
    /// Propagates insertion errors.
    pub fn provision(&mut self, device_id: &str) -> Result<QuantizedModel, WatermarkError> {
        // Derive per-device seeds from the id, deterministically.
        let fp = derive_device(&self.fingerprint_config, device_id);
        let mut deployed = self.base.watermark_for_deployment()?;
        let n = deployed.layer_count();
        let sig = Signature::generate(self.fingerprint_config.signature_len(n), fp.signature_seed);
        let locations = self.fingerprint_locations(&deployed, fp.selection_seed)?;
        apply_bits_at(&mut deployed, &locations, &sig);
        self.devices.push(fp);
        Ok(deployed)
    }

    /// Extraction report of one device's fingerprint against a leaked
    /// model (any [`GridSource`]).
    ///
    /// # Errors
    ///
    /// Propagates extraction errors.
    pub fn device_report<S: GridSource + ?Sized>(
        &self,
        device: &DeviceFingerprint,
        leaked: &S,
    ) -> Result<ExtractionReport, WatermarkError> {
        let n = self.base.original.layer_count();
        let sig = Signature::generate(
            self.fingerprint_config.signature_len(n),
            device.signature_seed,
        );
        // The fingerprint diff is taken against the *base-watermarked*
        // model (the state every device shares before fingerprinting).
        let base_deployed = self.base.watermark_for_deployment()?;
        let locations = self.fingerprint_locations(&base_deployed, device.selection_seed)?;
        extract_with_locations(leaked, &base_deployed, &locations, &sig)
    }

    /// Identifies the leaking device: the registered fingerprint whose
    /// chance-match probability clears `log10_threshold` with the best
    /// margin. Returns `None` when no fingerprint is convincing.
    ///
    /// # Errors
    ///
    /// Propagates extraction errors.
    pub fn identify_leak<S: GridSource + ?Sized>(
        &self,
        leaked: &S,
        log10_threshold: f64,
    ) -> Result<Option<(&DeviceFingerprint, ExtractionReport)>, WatermarkError> {
        let mut best: Option<(&DeviceFingerprint, ExtractionReport)> = None;
        let mut cutoff = ProofCutoff::new(log10_threshold);
        for device in &self.devices {
            let report = self.device_report(device, leaked)?;
            if !cutoff.clears(&report) {
                continue;
            }
            let better = match &best {
                None => true,
                Some((_, b)) => report.log10_p_chance() < b.log10_p_chance(),
            };
            if better {
                best = Some((device, report));
            }
        }
        Ok(best)
    }
}

/// The device-*independent* half of fingerprint location reproduction:
/// per-layer candidate pools over the base-watermarked model, with the
/// base watermark's own cells score-excluded. The pools depend only on
/// the model family (base weights, activation profile, coefficients),
/// so a batch verifier ([`crate::fleet`]) computes them once and reuses
/// them for every device instead of re-scoring per verification.
///
/// # Errors
///
/// Returns [`WatermarkError::Pool`] if a layer cannot fill its pool.
pub(crate) fn fingerprint_pools(
    base_deployed: &QuantizedModel,
    stats: &emmark_nanolm::model::ActivationStats,
    base_locs: &Locations,
    cfg: &WatermarkConfig,
) -> Result<Vec<Vec<usize>>, WatermarkError> {
    let coeffs = cfg.coefficients();
    let pool_size = cfg.pool_ratio * cfg.bits_per_layer;
    let mut pools = Vec::with_capacity(base_deployed.layer_count());
    // Base locations arrive in sampled-pick order; the scoring kernel
    // wants them ascending. One scratch buffer serves every layer.
    let mut excluded: Vec<usize> = Vec::new();
    for (l, layer) in base_deployed.layers.iter().enumerate() {
        excluded.clear();
        excluded.extend_from_slice(&base_locs[l]);
        excluded.sort_unstable();
        let pool = layer_pool(
            layer,
            &stats.per_layer[l].mean_abs,
            &coeffs,
            pool_size,
            &excluded,
        )
        .map_err(|source| WatermarkError::Pool { layer: l, source })?;
        pools.push(pool);
    }
    Ok(pools)
}

/// Everything about a model family that is *device-independent*: the
/// ownership watermark locations, the base-watermarked reference model,
/// and the per-layer fingerprint candidate pools (base-excluded).
///
/// Building it pays the full Eqs. 2–4 scoring cost exactly once; both
/// halves of the fleet pipeline — [`crate::provision::FleetProvisioner`]
/// (score-once/insert-many) and [`crate::fleet::FleetVerifier`]
/// (score-once/verify-many) — are thin device loops over this cache,
/// which is what makes their outputs bit-identical to the serial
/// [`Fleet`] path by construction.
#[derive(Debug, Clone)]
pub(crate) struct FamilyCache {
    /// Ownership watermark locations (Eq. 2–4 scoring, once).
    pub(crate) base_locations: Locations,
    /// The base-watermarked reference model every device starts from.
    pub(crate) base_deployed: QuantizedModel,
    /// Per-layer fingerprint candidate pools, base-excluded.
    pub(crate) pools: Vec<Vec<usize>>,
}

impl FamilyCache {
    /// Validates the secret bundle and derives the cache.
    ///
    /// # Errors
    ///
    /// Rejects an inconsistent bundle
    /// ([`WatermarkError::SignatureLength`],
    /// [`WatermarkError::InvalidConfig`]) and propagates
    /// location-reproduction errors.
    pub(crate) fn build(
        base: &OwnerSecrets,
        fingerprint_config: &WatermarkConfig,
    ) -> Result<Self, WatermarkError> {
        // Corrupt or hand-edited inputs (vault, registry) must surface
        // as errors here, not panics inside batch workers.
        fingerprint_config.validate()?;
        let expected = base.config.signature_len(base.original.layer_count());
        if base.signature.len() != expected {
            return Err(WatermarkError::SignatureLength {
                expected,
                got: base.signature.len(),
            });
        }
        let base_locations = locate_watermark(&base.original, &base.stats, &base.config)?;
        // Apply the base watermark at the cached locations (identical to
        // `OwnerSecrets::watermark_for_deployment`, without re-locating).
        let mut base_deployed = base.original.clone();
        apply_bits_at(&mut base_deployed, &base_locations, &base.signature);
        let pools = fingerprint_pools(
            &base_deployed,
            &base.stats,
            &base_locations,
            fingerprint_config,
        )?;
        if crate::telemetry::Telemetry::enabled() {
            crate::telemetry::FLEET_CACHE_MISSES.incr();
        }
        Ok(Self {
            base_locations,
            base_deployed,
            pools,
        })
    }

    /// Derives one device's fingerprint material from the shared pools:
    /// its registry entry, signature, and sampled locations — pure PRNG
    /// work, no scoring.
    pub(crate) fn device_material(
        &self,
        fingerprint_config: &WatermarkConfig,
        device_id: &str,
    ) -> (DeviceFingerprint, Signature, Locations) {
        let fp = derive_device(fingerprint_config, device_id);
        let n = self.base_deployed.layer_count();
        let sig = Signature::generate(fingerprint_config.signature_len(n), fp.signature_seed);
        let locs = sample_from_pools(&self.pools, fingerprint_config, fp.selection_seed);
        (fp, sig, locs)
    }
}

/// The device-*dependent* half: draws `bits_per_layer` cells per layer
/// from the shared pools under the device's selection seed. Cheap (pure
/// PRNG sampling) compared to [`fingerprint_pools`].
pub(crate) fn sample_from_pools(
    pools: &[Vec<usize>],
    cfg: &WatermarkConfig,
    selection_seed: u64,
) -> Locations {
    let mut sm = SplitMix64::new(selection_seed);
    let mut locations = Vec::with_capacity(pools.len());
    for pool in pools {
        let layer_seed = sm.next_u64();
        let mut rng = Xoshiro256::seed_from_u64(layer_seed);
        let picks = rng.sample_without_replacement(pool.len(), cfg.bits_per_layer);
        locations.push(picks.into_iter().map(|p| pool[p]).collect::<Vec<_>>());
    }
    locations
}

/// Derives the deterministic per-device fingerprint material for a
/// device id, shared by [`Fleet::provision`] and registry tooling.
pub(crate) fn derive_device(
    fingerprint_config: &WatermarkConfig,
    device_id: &str,
) -> DeviceFingerprint {
    let h = fxhash(device_id.as_bytes());
    DeviceFingerprint {
        device_id: device_id.to_string(),
        selection_seed: fingerprint_config.selection_seed ^ h,
        signature_seed: h.rotate_left(17),
    }
}

/// Tiny stable FNV-style hash (not cryptographic; device-id seeds and
/// the [`crate::registry`] shard checksums).
pub(crate) fn fxhash(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use emmark_nanolm::config::ModelConfig;
    use emmark_nanolm::TransformerModel;
    use emmark_quant::awq::{awq, AwqConfig};

    fn fleet() -> Fleet {
        let mut model = TransformerModel::new(ModelConfig::tiny_test());
        let calib: Vec<Vec<u32>> = (0..4u32)
            .map(|s| (0..16u32).map(|i| (i * 7 + s) % 31).collect())
            .collect();
        let stats = model.collect_activation_stats(&calib);
        let qm = awq(&model, &stats, &AwqConfig::default());
        let base_cfg = WatermarkConfig {
            bits_per_layer: 4,
            pool_ratio: 10,
            ..Default::default()
        };
        let base = OwnerSecrets::new(qm, stats, base_cfg, 0xF1EE7);
        let fp_cfg = WatermarkConfig {
            bits_per_layer: 3,
            pool_ratio: 10,
            selection_seed: 0xDE11CE,
            ..Default::default()
        };
        Fleet::new(base, fp_cfg)
    }

    #[test]
    fn provisioned_devices_share_ownership_but_differ_pairwise() {
        let mut fleet = fleet();
        let a = fleet.provision("device-a").expect("provision a");
        let b = fleet.provision("device-b").expect("provision b");
        assert!(!a.same_weights(&b), "fingerprints must differ");
        // Both carry the base ownership watermark — *exactly*, because
        // fingerprint locations exclude the base watermark's cells.
        for leaked in [&a, &b] {
            let report = fleet.base.verify(leaked).expect("verify");
            assert_eq!(
                report.wer(),
                100.0,
                "fingerprint corrupted the base watermark"
            );
            assert!(report.proves_ownership(-9.0));
        }
    }

    #[test]
    fn leak_is_attributed_to_the_right_device() {
        let mut fleet = fleet();
        let ids = ["alice", "bob", "carol"];
        let deployments: Vec<QuantizedModel> = ids
            .iter()
            .map(|id| fleet.provision(id).expect("provision"))
            .collect();
        for (i, leaked) in deployments.iter().enumerate() {
            let (device, report) = fleet
                .identify_leak(leaked, -6.0)
                .expect("identify")
                .expect("found");
            assert_eq!(device.device_id, ids[i], "leak misattributed");
            assert!(report.wer() >= 90.0);
        }
    }

    #[test]
    fn unfingerprinted_model_is_not_attributed() {
        let mut fleet = fleet();
        let _ = fleet.provision("alice").expect("provision");
        // The bare base-watermarked model (no fingerprint) must not be
        // attributed to any device.
        let base_only = fleet.base.watermark_for_deployment().expect("deploy");
        let found = fleet.identify_leak(&base_only, -6.0).expect("identify");
        assert!(found.is_none(), "false attribution: {found:?}");
    }

    #[test]
    fn provisioning_is_deterministic_per_device_id() {
        let mut fleet_a = fleet();
        let mut fleet_b = fleet();
        let a = fleet_a.provision("same-id").expect("a");
        let b = fleet_b.provision("same-id").expect("b");
        assert!(a.same_weights(&b));
    }
}
