//! Compact binary serialization of a [`QuantizedModel`] — the "deployed
//! artifact" of the paper's threat model. The end-user's edge device
//! holds exactly these bytes; ownership proof queries the weights read
//! back from them.
//!
//! Two format versions coexist:
//!
//! * **v1** — the original streaming layout: header, config, embedding
//!   tables, norms, layer records, scheme string. Reading any weight
//!   requires decoding everything before it.
//! * **v2** (current) — an *indexed* layout: the header carries the
//!   scheme plus a per-layer offset table (shape, bit width,
//!   granularity, record offset, and the absolute offset of the raw
//!   integer grid). A [`SparseArtifact`] reader resolves any
//!   `(layer, flat_index)` cell in O(1) without materializing a
//!   [`QuantizedModel`] — watermark extraction reads a few hundred
//!   cells, not the whole model.
//!
//! Both versions are self-contained: little-endian primitives,
//! length-prefixed buffers, a magic header. Integer grids round-trip
//! bit-exactly (anything less would corrupt watermarks), and
//! [`decode_model`] still accepts v1 artifacts via a compatibility
//! shim.

use crate::store::{copy_store, ArtifactSink, StoreError};
use crate::telemetry::{self, Telemetry};
use crate::watermark::{GridSource, WatermarkConfig};
use bytes::{BufMut, Bytes, BytesMut};
use emmark_nanolm::config::{MlpKind, ModelConfig, NormKind, OutlierProfile};
use emmark_nanolm::layers::{Embedding, LayerNorm, Norm, RmsNorm};
use emmark_quant::{ActQuant, Granularity, QuantizedLinear, QuantizedModel};
use emmark_tensor::Matrix;

pub(crate) const MAGIC: &[u8; 4] = b"EMQM";

/// The legacy streaming format.
pub const FORMAT_V1: u32 = 1;
/// The indexed, layer-addressable format (current).
pub const FORMAT_V2: u32 = 2;

/// Bytes of one layer-index entry in the v2 header:
/// `in u32 | out u32 | bits u8 | gran tag u8 | group u32 | record u64 |
/// q u64`.
pub(crate) const INDEX_ENTRY_BYTES: usize = 4 + 4 + 1 + 1 + 4 + 8 + 8;

/// The artifact section a codec error points into — the triage handle
/// for truncated or corrupt inputs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Section {
    /// Magic and version words.
    Header,
    /// Model hyperparameters (and, in v2, the scheme string).
    Config,
    /// The v2 per-layer offset table.
    LayerIndex,
    /// Token/position embedding tables.
    Embeddings,
    /// Per-block and final norms.
    Norms,
    /// The v1 layer-count word preceding the layer records.
    Layers,
    /// One quantized layer record (0-based canonical index).
    Layer(usize),
    /// The LLM.int8() outlier block inside a layer record.
    Outliers(usize),
    /// The trailing scheme string (v1 only).
    Scheme,
    /// The owner-secrets vault envelope.
    Vault,
    /// The fleet device registry.
    Registry,
    /// The provisioned-fleet bundle envelope (header and config).
    Bundle,
    /// One device entry inside a registry or fleet bundle (0-based
    /// registration index).
    Device(usize),
    /// The sharded-registry manifest envelope (header and config).
    Manifest,
    /// One shard entry inside a manifest (0-based shard index).
    Shard(usize),
    /// The manifest's fingerprint-cell inverted index.
    LeakIndex,
    /// A framed emmarkd request or response payload.
    Service,
}

impl std::fmt::Display for Section {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Section::Header => write!(f, "header"),
            Section::Config => write!(f, "config"),
            Section::LayerIndex => write!(f, "layer index"),
            Section::Embeddings => write!(f, "embeddings"),
            Section::Norms => write!(f, "norms"),
            Section::Layers => write!(f, "layers"),
            Section::Layer(l) => write!(f, "layer {l}"),
            Section::Outliers(l) => write!(f, "layer {l} outliers"),
            Section::Scheme => write!(f, "scheme"),
            Section::Vault => write!(f, "vault"),
            Section::Registry => write!(f, "registry"),
            Section::Bundle => write!(f, "fleet bundle"),
            Section::Device(d) => write!(f, "device {d}"),
            Section::Manifest => write!(f, "shard manifest"),
            Section::Shard(s) => write!(f, "shard {s}"),
            Section::LeakIndex => write!(f, "leak index"),
            Section::Service => write!(f, "service frame"),
        }
    }
}

/// Errors of the deploy codec. Every positional variant carries the
/// section being decoded and the byte offset where decoding stopped, so
/// a truncated 40 MiB artifact names the failing layer instead of
/// leaving triage to guesswork.
#[derive(Debug, Clone, PartialEq)]
pub enum CodecError {
    /// Input does not start with the `EMQM` magic.
    BadMagic,
    /// Unsupported format version.
    BadVersion(u32),
    /// Input ended before a field was complete.
    Truncated {
        /// Section being decoded.
        section: Section,
        /// Field being read.
        what: &'static str,
        /// Byte offset where input ran out.
        offset: usize,
    },
    /// A decoded field failed validation.
    Corrupt {
        /// Section being decoded.
        section: Section,
        /// Byte offset just past the offending field.
        offset: usize,
        /// What was wrong.
        msg: String,
    },
    /// A container embeds an artifact of a different format version
    /// (e.g. a v2 vault holding a v1 model).
    MixedVersion {
        /// The container's format version.
        outer: u32,
        /// The embedded artifact's format version.
        inner: u32,
    },
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::BadMagic => write!(f, "not an EMQM artifact (bad magic)"),
            CodecError::BadVersion(v) => write!(f, "unsupported format version {v}"),
            CodecError::Truncated {
                section,
                what,
                offset,
            } => write!(
                f,
                "truncated input at byte {offset} while reading {what} ({section} section)"
            ),
            CodecError::Corrupt {
                section,
                offset,
                msg,
            } => write!(f, "corrupt {section} section near byte {offset}: {msg}"),
            CodecError::MixedVersion { outer, inner } => write!(
                f,
                "mixed-version bundle: container format v{outer} embeds an artifact of \
                 format v{inner}; re-encode the bundle so both versions agree"
            ),
        }
    }
}

impl std::error::Error for CodecError {}

/// Serializes a [`WatermarkConfig`] in the shared wire layout used by
/// the secrets vault and the fleet registry.
pub(crate) fn put_watermark_config(buf: &mut BytesMut, cfg: &WatermarkConfig) {
    buf.put_f64_le(cfg.alpha);
    buf.put_f64_le(cfg.beta);
    buf.put_u32_le(cfg.bits_per_layer as u32);
    buf.put_u32_le(cfg.pool_ratio as u32);
    buf.put_u64_le(cfg.selection_seed);
}

pub(crate) fn put_string(buf: &mut BytesMut, s: &str) {
    buf.put_u32_le(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

pub(crate) fn put_matrix(buf: &mut BytesMut, m: &Matrix) {
    buf.put_u32_le(m.rows() as u32);
    buf.put_u32_le(m.cols() as u32);
    for &v in m.as_slice() {
        buf.put_f32_le(v);
    }
}

fn put_f32_vec(buf: &mut BytesMut, v: &[f32]) {
    buf.put_u32_le(v.len() as u32);
    for &x in v {
        buf.put_f32_le(x);
    }
}

fn put_opt_f32_vec(buf: &mut BytesMut, v: Option<&[f32]>) {
    match v {
        Some(v) => {
            buf.put_u8(1);
            put_f32_vec(buf, v);
        }
        None => buf.put_u8(0),
    }
}

pub(crate) fn put_norm(buf: &mut BytesMut, norm: &Norm) {
    match norm {
        Norm::Layer(n) => {
            buf.put_u8(0);
            put_matrix(buf, &n.gain.value);
            put_matrix(buf, &n.bias.value);
        }
        Norm::Rms(n) => {
            buf.put_u8(1);
            put_matrix(buf, &n.gain.value);
        }
    }
}

pub(crate) fn granularity_tag(g: Granularity) -> (u8, u32) {
    match g {
        Granularity::PerTensor => (0, 0),
        Granularity::PerOutChannel => (1, 0),
        Granularity::Grouped { group_size } => (2, group_size as u32),
    }
}

fn granularity_from_tag(tag: u8, group: usize) -> Option<Granularity> {
    match tag {
        0 => Some(Granularity::PerTensor),
        1 => Some(Granularity::PerOutChannel),
        2 if group > 0 => Some(Granularity::Grouped { group_size: group }),
        _ => None,
    }
}

/// Number of scale entries a layer of this shape and granularity
/// carries; `None` on overflow. Mirrors `QuantizedLinear::new`.
pub(crate) fn expected_scale_count(in_f: usize, out_f: usize, g: Granularity) -> Option<usize> {
    match g {
        Granularity::PerTensor => Some(1),
        Granularity::PerOutChannel => Some(out_f),
        Granularity::Grouped { group_size } => in_f.div_ceil(group_size).checked_mul(out_f),
    }
}

/// Byte length of the layer-record prefix preceding the raw `i8` grid:
/// the fixed fields, the scale vector, and the grid's own length word.
pub(crate) fn record_prefix_len(n_scales: usize) -> usize {
    4 + 4 + 1 + 1 + 4 + (4 + 4 * n_scales) + 4
}

/// Byte offset of the raw `i8` grid within a layer record written by
/// [`put_qlinear`].
pub(crate) fn q_offset_in_record(l: &QuantizedLinear) -> usize {
    record_prefix_len(l.scales().len())
}

/// Exact byte length of the record [`put_qlinear`] writes for `l`,
/// computed from metadata alone (no serialization). The streaming
/// encoder's sizing sweep uses this to derive the v2 offset table
/// before any grid bytes flow.
pub(crate) fn qlinear_record_len(l: &QuantizedLinear) -> usize {
    let opt_f32_vec = |v: Option<&[f32]>| 1 + v.map_or(0, |v| 4 + 4 * v.len());
    let outlier_weights = 1 + l
        .outlier_weights()
        .map_or(0, |m| 8 + 4 * m.rows() * m.cols());
    record_prefix_len(l.scales().len())
        + l.len()
        + opt_f32_vec(l.input_scale())
        + (4 + 4 * l.outlier_rows().len())
        + outlier_weights
        + opt_f32_vec(l.bias())
        + 1
}

pub(crate) fn put_qlinear(buf: &mut BytesMut, l: &QuantizedLinear) {
    buf.put_u32_le(l.in_features() as u32);
    buf.put_u32_le(l.out_features() as u32);
    buf.put_u8(l.bits());
    let (tag, group) = granularity_tag(l.granularity());
    buf.put_u8(tag);
    buf.put_u32_le(group);
    put_f32_vec(buf, l.scales());
    buf.put_u32_le(l.q_values().len() as u32);
    for &q in l.q_values() {
        buf.put_i8(q);
    }
    put_opt_f32_vec(buf, l.input_scale());
    buf.put_u32_le(l.outlier_rows().len() as u32);
    for &r in l.outlier_rows() {
        buf.put_u32_le(r as u32);
    }
    match l.outlier_weights() {
        Some(m) => {
            buf.put_u8(1);
            put_matrix(buf, m);
        }
        None => buf.put_u8(0),
    }
    put_opt_f32_vec(buf, l.bias());
    buf.put_u8(match l.act_quant() {
        ActQuant::None => 0,
        ActQuant::Int8PerToken => 1,
    });
}

/// Serializes the model-config fields shared by both format versions
/// (everything but the scheme string).
pub(crate) fn put_config(buf: &mut BytesMut, cfg: &ModelConfig) {
    put_string(buf, &cfg.name);
    buf.put_u32_le(cfg.vocab_size as u32);
    buf.put_u32_le(cfg.d_model as u32);
    buf.put_u32_le(cfg.n_layers as u32);
    buf.put_u32_le(cfg.n_heads as u32);
    buf.put_u32_le(cfg.d_ff as u32);
    buf.put_u32_le(cfg.max_seq as u32);
    buf.put_u8(match cfg.norm {
        NormKind::LayerNorm => 0,
        NormKind::RmsNorm => 1,
    });
    buf.put_u8(match cfg.mlp {
        MlpKind::Gelu => 0,
        MlpKind::GatedSilu => 1,
    });
    match cfg.outliers {
        Some(o) => {
            buf.put_u8(1);
            buf.put_u32_le(o.channels as u32);
            buf.put_f32_le(o.factor);
            buf.put_u64_le(o.seed);
        }
        None => buf.put_u8(0),
    }
    buf.put_u64_le(cfg.init_seed);
}

/// Serializes a quantized model in the **v1** streaming layout. Kept for
/// compatibility testing and for talking to pre-index readers; new
/// artifacts should use [`encode_model`].
pub fn encode_model_v1(model: &QuantizedModel) -> Bytes {
    let mut buf = BytesMut::with_capacity(1 << 16);
    buf.put_slice(MAGIC);
    buf.put_u32_le(FORMAT_V1);
    put_config(&mut buf, &model.cfg);
    put_matrix(&mut buf, &model.emb().tok.value);
    put_matrix(&mut buf, &model.emb().pos.value);
    buf.put_u32_le(model.norm_pairs().len() as u32);
    for (n1, n2) in model.norm_pairs() {
        put_norm(&mut buf, n1);
        put_norm(&mut buf, n2);
    }
    put_norm(&mut buf, model.final_norm());
    buf.put_u32_le(model.layers.len() as u32);
    for layer in &model.layers {
        put_qlinear(&mut buf, layer);
    }
    put_string(&mut buf, &model.scheme);
    buf.freeze()
}

/// Serializes a quantized model to the deployable byte format
/// (**v2**, indexed): header and config (including the scheme), the
/// per-layer offset table, then embeddings, norms, and layer records at
/// the offsets the table promises.
///
/// Implemented as the streaming [`ArtifactSink`] encoder writing into a
/// `Vec` — the in-memory and streaming write paths are one code path,
/// so their byte-identity holds by construction.
pub fn encode_model(model: &QuantizedModel) -> Bytes {
    let mut out = Vec::with_capacity(1 << 16);
    encode_model_into(model, &mut out).expect("in-memory v2 encode cannot fail");
    Bytes::from(out)
}

/// Streams a model's v2 encoding straight into `out` without ever
/// materializing the artifact: the header and offset table are derived
/// from a metadata sweep, then each layer record flows through one
/// reused scratch buffer. Byte-identical to [`encode_model`].
///
/// # Errors
///
/// Propagates I/O failures from `out`.
pub fn encode_model_into<W: std::io::Write>(
    model: &QuantizedModel,
    out: W,
) -> Result<(), StoreError> {
    copy_store(model, &mut ArtifactSink::new(out))
}

/// Section- and offset-tracking reader shared by the deploy codec, the
/// secrets vault, and the fleet registry: a borrowed cursor over the
/// input (no copy taken). Every error it produces names the section
/// being decoded and the byte offset where decoding stopped.
pub(crate) struct Reader<'a> {
    data: &'a [u8],
    pos: usize,
    section: Section,
}

impl<'a> Reader<'a> {
    pub(crate) fn new(bytes: &'a [u8], section: Section) -> Self {
        Self {
            data: bytes,
            pos: 0,
            section,
        }
    }

    /// Absolute byte offset of the read cursor.
    pub(crate) fn offset(&self) -> usize {
        self.pos
    }

    fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    /// Marks the section subsequent errors should blame.
    pub(crate) fn enter(&mut self, section: Section) {
        self.section = section;
    }

    /// A [`CodecError::Corrupt`] at the current position.
    pub(crate) fn corrupt(&self, msg: impl Into<String>) -> CodecError {
        CodecError::Corrupt {
            section: self.section,
            offset: self.offset(),
            msg: msg.into(),
        }
    }

    pub(crate) fn need(&self, n: usize, what: &'static str) -> Result<(), CodecError> {
        if self.remaining() < n {
            return Err(CodecError::Truncated {
                section: self.section,
                what,
                offset: self.offset(),
            });
        }
        Ok(())
    }

    /// Borrows the next `len` bytes and advances past them.
    pub(crate) fn take(&mut self, len: usize, what: &'static str) -> Result<&'a [u8], CodecError> {
        self.need(len, what)?;
        let out = &self.data[self.pos..self.pos + len];
        self.pos += len;
        Ok(out)
    }

    pub(crate) fn u8(&mut self, what: &'static str) -> Result<u8, CodecError> {
        Ok(self.take(1, what)?[0])
    }

    pub(crate) fn i8(&mut self, what: &'static str) -> Result<i8, CodecError> {
        Ok(self.u8(what)? as i8)
    }

    pub(crate) fn u32(&mut self, what: &'static str) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(
            self.take(4, what)?.try_into().expect("4 bytes"),
        ))
    }

    pub(crate) fn u64(&mut self, what: &'static str) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(
            self.take(8, what)?.try_into().expect("8 bytes"),
        ))
    }

    pub(crate) fn f32(&mut self, what: &'static str) -> Result<f32, CodecError> {
        Ok(f32::from_bits(self.u32(what)?))
    }

    pub(crate) fn f64(&mut self, what: &'static str) -> Result<f64, CodecError> {
        Ok(f64::from_bits(self.u64(what)?))
    }

    pub(crate) fn string(&mut self, what: &'static str) -> Result<String, CodecError> {
        let len = self.u32(what)? as usize;
        let bytes = self.take(len, what)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| self.corrupt(format!("{what}: invalid utf-8")))
    }

    /// Reads a [`WatermarkConfig`] in the [`put_watermark_config`]
    /// layout (validation is the caller's concern).
    pub(crate) fn watermark_config(&mut self) -> Result<WatermarkConfig, CodecError> {
        Ok(WatermarkConfig {
            alpha: self.f64("alpha")?,
            beta: self.f64("beta")?,
            bits_per_layer: self.u32("bits per layer")? as usize,
            pool_ratio: self.u32("pool ratio")? as usize,
            selection_seed: self.u64("selection seed")?,
        })
    }

    pub(crate) fn magic(&mut self, expected: &[u8; 4]) -> Result<(), CodecError> {
        if self.take(4, "magic")? != expected {
            return Err(CodecError::BadMagic);
        }
        Ok(())
    }

    fn matrix(&mut self, what: &'static str) -> Result<Matrix, CodecError> {
        let rows = self.u32(what)? as usize;
        let cols = self.u32(what)? as usize;
        let byte_len = rows
            .checked_mul(cols)
            .and_then(|n| n.checked_mul(4))
            .ok_or_else(|| self.corrupt(format!("{what}: {rows}x{cols} overflows")))?;
        let raw = self.take(byte_len, what)?;
        let data = raw
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().expect("4 bytes")))
            .collect();
        Ok(Matrix::from_vec(rows, cols, data))
    }

    fn f32_vec(&mut self, what: &'static str) -> Result<Vec<f32>, CodecError> {
        let len = self.u32(what)? as usize;
        let byte_len = len
            .checked_mul(4)
            .ok_or_else(|| self.corrupt(format!("{what}: length {len} overflows")))?;
        let raw = self.take(byte_len, what)?;
        Ok(raw
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().expect("4 bytes")))
            .collect())
    }

    fn opt_f32_vec(&mut self, what: &'static str) -> Result<Option<Vec<f32>>, CodecError> {
        if self.u8(what)? == 1 {
            Ok(Some(self.f32_vec(what)?))
        } else {
            Ok(None)
        }
    }

    fn norm(&mut self) -> Result<Norm, CodecError> {
        match self.u8("norm tag")? {
            0 => {
                let gain = self.matrix("layernorm gain")?;
                let bias = self.matrix("layernorm bias")?;
                Ok(Norm::Layer(LayerNorm::from_params(gain, bias)))
            }
            1 => Ok(Norm::Rms(RmsNorm::from_params(
                self.matrix("rmsnorm gain")?,
            ))),
            t => Err(self.corrupt(format!("unknown norm tag {t}"))),
        }
    }

    /// Decodes one layer record; `l` is the canonical layer index used
    /// for error attribution. Every invariant `QuantizedLinear::new`
    /// asserts is checked here first, so corrupt artifacts surface as
    /// [`CodecError::Corrupt`] rather than panics.
    pub(crate) fn qlinear(&mut self, l: usize) -> Result<QuantizedLinear, CodecError> {
        self.enter(Section::Layer(l));
        let in_f = self.u32("layer in")? as usize;
        let out_f = self.u32("layer out")? as usize;
        let bits = self.u8("layer bits")?;
        if bits != 4 && bits != 8 {
            return Err(self.corrupt(format!("unsupported bit width {bits}")));
        }
        let gran_tag = self.u8("granularity tag")?;
        let group = self.u32("group size")? as usize;
        let granularity = granularity_from_tag(gran_tag, group)
            .ok_or_else(|| self.corrupt(format!("unknown granularity tag {gran_tag}")))?;
        let scales = self.f32_vec("scales")?;
        let n_scales = expected_scale_count(in_f, out_f, granularity)
            .ok_or_else(|| self.corrupt("scale count overflows"))?;
        if scales.len() != n_scales {
            return Err(self.corrupt(format!(
                "{} scales do not match the expected {n_scales}",
                scales.len()
            )));
        }
        let q_len = self.u32("q length")? as usize;
        if Some(q_len) != in_f.checked_mul(out_f) {
            return Err(self.corrupt(format!("q length {q_len} does not match {in_f}x{out_f}")));
        }
        let q: Vec<i8> = self
            .take(q_len, "q grid")?
            .iter()
            .map(|&b| b as i8)
            .collect();
        let qmax = ((1i16 << (bits - 1)) - 1) as i8;
        if !q.iter().all(|&v| v >= -qmax - 1 && v <= qmax) {
            return Err(self.corrupt(format!("grid values exceed the {bits}-bit storage range")));
        }
        let input_scale = self.opt_f32_vec("input scale")?;
        if input_scale.as_ref().is_some_and(|s| s.len() != in_f) {
            return Err(self.corrupt("input scale length does not match layer width"));
        }
        self.enter(Section::Outliers(l));
        let n_outliers = self.u32("outlier count")? as usize;
        // Bound the allocation by the bytes actually present (each row
        // is a u32) before trusting the count.
        self.need(n_outliers.saturating_mul(4), "outlier rows")?;
        let mut rows = Vec::with_capacity(n_outliers);
        for _ in 0..n_outliers {
            let row = self.u32("outlier row")? as usize;
            if row >= in_f {
                return Err(self.corrupt(format!("outlier row {row} out of range")));
            }
            rows.push(row);
        }
        let outlier_weights = if self.u8("outlier weights flag")? == 1 {
            let w = self.matrix("outlier weights")?;
            let mut unique = rows.clone();
            unique.sort_unstable();
            unique.dedup();
            if w.shape() != (unique.len(), out_f) {
                return Err(self.corrupt("outlier weights shape does not match rows"));
            }
            Some(w)
        } else {
            None
        };
        self.enter(Section::Layer(l));
        let bias = self.opt_f32_vec("bias")?;
        if bias.as_ref().is_some_and(|b| b.len() != out_f) {
            return Err(self.corrupt("bias length does not match layer width"));
        }
        let act_quant = match self.u8("act quant")? {
            0 => ActQuant::None,
            1 => ActQuant::Int8PerToken,
            t => return Err(self.corrupt(format!("unknown act-quant tag {t}"))),
        };
        let mut layer = QuantizedLinear::new(
            q,
            in_f,
            out_f,
            bits,
            granularity,
            scales,
            input_scale,
            bias,
            act_quant,
        );
        if let Some(w) = outlier_weights {
            layer.set_outliers(rows, w);
        } else if !rows.is_empty() {
            self.enter(Section::Outliers(l));
            return Err(self.corrupt("outlier rows without weights"));
        }
        Ok(layer)
    }

    pub(crate) fn config(&mut self) -> Result<ModelConfig, CodecError> {
        self.enter(Section::Config);
        let name = self.string("model name")?;
        let vocab_size = self.u32("vocab")? as usize;
        let d_model = self.u32("d_model")? as usize;
        let n_layers = self.u32("n_layers")? as usize;
        let n_heads = self.u32("n_heads")? as usize;
        let d_ff = self.u32("d_ff")? as usize;
        let max_seq = self.u32("max_seq")? as usize;
        let norm = match self.u8("norm kind")? {
            0 => NormKind::LayerNorm,
            1 => NormKind::RmsNorm,
            t => return Err(self.corrupt(format!("unknown norm kind {t}"))),
        };
        let mlp = match self.u8("mlp kind")? {
            0 => MlpKind::Gelu,
            1 => MlpKind::GatedSilu,
            t => return Err(self.corrupt(format!("unknown mlp kind {t}"))),
        };
        let outliers = if self.u8("outlier profile flag")? == 1 {
            Some(OutlierProfile {
                channels: self.u32("outlier channels")? as usize,
                factor: self.f32("outlier factor")?,
                seed: self.u64("outlier seed")?,
            })
        } else {
            None
        };
        let init_seed = self.u64("init seed")?;
        let cfg = ModelConfig {
            name,
            vocab_size,
            d_model,
            n_layers,
            n_heads,
            d_ff,
            max_seq,
            norm,
            mlp,
            outliers,
            init_seed,
        };
        cfg.validate().map_err(|msg| self.corrupt(msg))?;
        Ok(cfg)
    }

    pub(crate) fn embeddings(&mut self) -> Result<Embedding, CodecError> {
        self.enter(Section::Embeddings);
        let tok = self.matrix("token table")?;
        let pos = self.matrix("position table")?;
        Ok(Embedding::from_tables(tok, pos))
    }

    pub(crate) fn norms(
        &mut self,
        n_layers: usize,
    ) -> Result<(Vec<(Norm, Norm)>, Norm), CodecError> {
        self.enter(Section::Norms);
        let n_pairs = self.u32("norm pair count")? as usize;
        if n_pairs != n_layers {
            return Err(self.corrupt(format!(
                "norm pair count {n_pairs} does not match n_layers {n_layers}"
            )));
        }
        let mut norm_pairs = Vec::with_capacity(n_pairs);
        for _ in 0..n_pairs {
            norm_pairs.push((self.norm()?, self.norm()?));
        }
        let final_norm = self.norm()?;
        Ok((norm_pairs, final_norm))
    }

    /// The v2 layer index: per-layer shape/bits/granularity plus record
    /// and grid offsets, validated against the input length for
    /// in-bounds, monotonic layout.
    fn layer_index(&mut self, expected_layers: usize) -> Result<Vec<LayerIndexEntry>, CodecError> {
        let total = self.data.len();
        self.layer_index_bounded(expected_layers, total)
    }

    /// [`Self::layer_index`] with an explicit artifact length — the
    /// file-backed [`crate::store::ArtifactLayerStore`] parses the index
    /// out of a prefix window while validating extents against the true
    /// file size.
    pub(crate) fn layer_index_bounded(
        &mut self,
        expected_layers: usize,
        total_len: usize,
    ) -> Result<Vec<LayerIndexEntry>, CodecError> {
        self.enter(Section::LayerIndex);
        let n = self.u32("layer count")? as usize;
        if n != expected_layers {
            return Err(self.corrupt(format!(
                "layer count {n} does not match config ({expected_layers})"
            )));
        }
        self.need(n.saturating_mul(INDEX_ENTRY_BYTES), "layer index entries")?;
        let mut index = Vec::with_capacity(n);
        // Offsets may never point back into the header, config, or the
        // index itself — the earliest legal record starts where the
        // index ends.
        let mut prev_end = self.offset() + n * INDEX_ENTRY_BYTES;
        for l in 0..n {
            let in_features = self.u32("index in")? as usize;
            let out_features = self.u32("index out")? as usize;
            let bits = self.u8("index bits")?;
            let gran_tag = self.u8("index granularity tag")?;
            let group = self.u32("index group size")? as usize;
            let record_offset = self.u64("index record offset")? as usize;
            let q_offset = self.u64("index q offset")? as usize;
            let granularity = granularity_from_tag(gran_tag, group)
                .ok_or_else(|| self.corrupt(format!("unknown granularity tag {gran_tag}")))?;
            if bits != 4 && bits != 8 {
                return Err(self.corrupt(format!("layer {l}: unsupported bit width {bits}")));
            }
            let cells = in_features
                .checked_mul(out_features)
                .ok_or_else(|| self.corrupt(format!("layer {l}: grid shape overflows")))?;
            let q_end = q_offset
                .checked_add(cells)
                .ok_or_else(|| self.corrupt(format!("layer {l}: q extent overflows")))?;
            if record_offset < prev_end {
                return Err(self.corrupt(format!("layer {l}: offsets are not monotonic")));
            }
            // The grid must sit exactly where the record's own prefix
            // (derivable from this entry) puts it — anything else would
            // let sparse reads serve record metadata as weight cells.
            let prefix = expected_scale_count(in_features, out_features, granularity)
                .map(record_prefix_len)
                .and_then(|p| record_offset.checked_add(p))
                .ok_or_else(|| self.corrupt(format!("layer {l}: record extent overflows")))?;
            if q_offset != prefix {
                return Err(self.corrupt(format!(
                    "layer {l}: grid offset {q_offset} does not match the record layout \
                     (expected {prefix})"
                )));
            }
            if q_end > total_len {
                return Err(self.corrupt(format!(
                    "layer {l}: grid [{q_offset}, {q_end}) exceeds artifact length {total_len}"
                )));
            }
            prev_end = q_end;
            index.push(LayerIndexEntry {
                in_features,
                out_features,
                bits,
                granularity,
                record_offset,
                q_offset,
            });
        }
        Ok(index)
    }

    fn skip(&mut self, n: usize, what: &'static str) -> Result<(), CodecError> {
        self.take(n, what).map(|_| ())
    }

    /// Skips a matrix, returning its dimensions.
    fn skip_matrix(&mut self, what: &'static str) -> Result<(usize, usize), CodecError> {
        let rows = self.u32(what)? as usize;
        let cols = self.u32(what)? as usize;
        let byte_len = rows
            .checked_mul(cols)
            .and_then(|n| n.checked_mul(4))
            .ok_or_else(|| self.corrupt(format!("{what}: {rows}x{cols} overflows")))?;
        self.skip(byte_len, what)?;
        Ok((rows, cols))
    }

    /// Skips an f32 vector, returning its length.
    fn skip_f32_vec(&mut self, what: &'static str) -> Result<usize, CodecError> {
        let len = self.u32(what)? as usize;
        let byte_len = len
            .checked_mul(4)
            .ok_or_else(|| self.corrupt(format!("{what}: length {len} overflows")))?;
        self.skip(byte_len, what)?;
        Ok(len)
    }

    fn skip_opt_f32_vec(&mut self, what: &'static str) -> Result<Option<usize>, CodecError> {
        if self.u8(what)? == 1 {
            Ok(Some(self.skip_f32_vec(what)?))
        } else {
            Ok(None)
        }
    }

    fn skip_norm(&mut self) -> Result<(), CodecError> {
        match self.u8("norm tag")? {
            0 => {
                self.skip_matrix("layernorm gain")?;
                self.skip_matrix("layernorm bias")?;
                Ok(())
            }
            1 => {
                self.skip_matrix("rmsnorm gain")?;
                Ok(())
            }
            t => Err(self.corrupt(format!("unknown norm tag {t}"))),
        }
    }

    /// Structural validation of the v2 body without materializing
    /// anything: walks every length word and tag of the embeddings,
    /// norms, and layer records, checking each record sits where the
    /// index promises and agrees with its entry. After this,
    /// [`SparseArtifact`] accepts an artifact iff [`decode_model`] does,
    /// up to value-level checks (f32 contents, grid value ranges,
    /// outlier row ranges) that sparse reads never interpret.
    fn validate_v2_body(
        &mut self,
        cfg: &ModelConfig,
        index: &[LayerIndexEntry],
    ) -> Result<(), CodecError> {
        self.enter(Section::Embeddings);
        self.skip_matrix("token table")?;
        self.skip_matrix("position table")?;
        self.enter(Section::Norms);
        let n_pairs = self.u32("norm pair count")? as usize;
        if n_pairs != cfg.n_layers {
            return Err(self.corrupt(format!(
                "norm pair count {n_pairs} does not match n_layers {}",
                cfg.n_layers
            )));
        }
        for _ in 0..n_pairs {
            self.skip_norm()?;
            self.skip_norm()?;
        }
        self.skip_norm()?;
        for (l, entry) in index.iter().enumerate() {
            self.enter(Section::Layer(l));
            if self.offset() != entry.record_offset {
                return Err(self.corrupt(format!(
                    "record starts at byte {} but the index promises {}",
                    self.offset(),
                    entry.record_offset
                )));
            }
            let in_f = self.u32("layer in")? as usize;
            let out_f = self.u32("layer out")? as usize;
            let bits = self.u8("layer bits")?;
            let gran_tag = self.u8("granularity tag")?;
            let group = self.u32("group size")? as usize;
            let granularity = granularity_from_tag(gran_tag, group)
                .ok_or_else(|| self.corrupt(format!("unknown granularity tag {gran_tag}")))?;
            if in_f != entry.in_features
                || out_f != entry.out_features
                || bits != entry.bits
                || granularity != entry.granularity
            {
                return Err(self.corrupt("record disagrees with its layer-index entry"));
            }
            let n_scales = self.skip_f32_vec("scales")?;
            if Some(n_scales) != expected_scale_count(in_f, out_f, granularity) {
                return Err(self.corrupt(format!("{n_scales} scales do not match the layout")));
            }
            let q_len = self.u32("q length")? as usize;
            if q_len != entry.cells() || self.offset() != entry.q_offset {
                return Err(self.corrupt("grid does not sit where the index promises"));
            }
            self.skip(q_len, "q grid")?;
            let input_scale = self.skip_opt_f32_vec("input scale")?;
            if input_scale.is_some_and(|n| n != in_f) {
                return Err(self.corrupt("input scale length does not match layer width"));
            }
            self.enter(Section::Outliers(l));
            let n_outliers = self.u32("outlier count")? as usize;
            self.need(n_outliers.saturating_mul(4), "outlier rows")?;
            let mut rows = Vec::with_capacity(n_outliers);
            for _ in 0..n_outliers {
                let row = self.u32("outlier row")? as usize;
                if row >= in_f {
                    return Err(self.corrupt(format!("outlier row {row} out of range")));
                }
                rows.push(row);
            }
            if self.u8("outlier weights flag")? == 1 {
                let shape = self.skip_matrix("outlier weights")?;
                rows.sort_unstable();
                rows.dedup();
                if shape != (rows.len(), out_f) {
                    return Err(self.corrupt("outlier weights shape does not match rows"));
                }
            } else if n_outliers > 0 {
                return Err(self.corrupt("outlier rows without weights"));
            }
            self.enter(Section::Layer(l));
            let bias = self.skip_opt_f32_vec("bias")?;
            if bias.is_some_and(|n| n != out_f) {
                return Err(self.corrupt("bias length does not match layer width"));
            }
            let act = self.u8("act quant")?;
            if act > 1 {
                return Err(self.corrupt(format!("unknown act-quant tag {act}")));
            }
        }
        Ok(())
    }
}

/// Reads the format version of an EMQM artifact from its header without
/// decoding anything else.
///
/// # Errors
///
/// Returns [`CodecError::BadMagic`] or a header truncation error.
pub fn artifact_version(bytes: &[u8]) -> Result<u32, CodecError> {
    let mut r = Reader::new(&bytes[..bytes.len().min(8)], Section::Header);
    r.magic(MAGIC)?;
    r.u32("version")
}

/// Deserializes a quantized model from the deployable byte format.
/// Accepts both the current v2 layout and v1 artifacts (compatibility
/// shim).
///
/// # Errors
///
/// Returns a [`CodecError`] on malformed input; round-trips of
/// [`encode_model`] and [`encode_model_v1`] output never fail.
pub fn decode_model(bytes: &[u8]) -> Result<QuantizedModel, CodecError> {
    let mut r = Reader::new(bytes, Section::Header);
    r.magic(MAGIC)?;
    match r.u32("version")? {
        FORMAT_V1 => decode_model_v1_body(&mut r),
        FORMAT_V2 => decode_model_v2_body(&mut r),
        v => Err(CodecError::BadVersion(v)),
    }
}

fn decode_model_v1_body(r: &mut Reader) -> Result<QuantizedModel, CodecError> {
    let cfg = r.config()?;
    let emb = r.embeddings()?;
    let (norm_pairs, final_norm) = r.norms(cfg.n_layers)?;
    r.enter(Section::Layers);
    let n_qlayers = r.u32("layer count")? as usize;
    if n_qlayers != cfg.quant_layer_count() {
        return Err(r.corrupt(format!(
            "layer count {n_qlayers} does not match config ({})",
            cfg.quant_layer_count()
        )));
    }
    let mut layers = Vec::with_capacity(n_qlayers);
    for l in 0..n_qlayers {
        layers.push(r.qlinear(l)?);
    }
    r.enter(Section::Scheme);
    let scheme = r.string("scheme")?;
    Ok(QuantizedModel::from_parts(
        cfg, emb, norm_pairs, final_norm, layers, scheme,
    ))
}

fn decode_model_v2_body(r: &mut Reader) -> Result<QuantizedModel, CodecError> {
    let cfg = r.config()?;
    let scheme = r.string("scheme")?;
    let index = r.layer_index(cfg.quant_layer_count())?;
    let emb = r.embeddings()?;
    let (norm_pairs, final_norm) = r.norms(cfg.n_layers)?;
    let mut layers = Vec::with_capacity(index.len());
    for (l, entry) in index.iter().enumerate() {
        r.enter(Section::Layer(l));
        if r.offset() != entry.record_offset {
            return Err(r.corrupt(format!(
                "record starts at byte {} but the index promises {}",
                r.offset(),
                entry.record_offset
            )));
        }
        let layer = r.qlinear(l)?;
        if layer.in_features() != entry.in_features
            || layer.out_features() != entry.out_features
            || layer.bits() != entry.bits
            || layer.granularity() != entry.granularity
        {
            r.enter(Section::Layer(l));
            return Err(r.corrupt("record disagrees with its layer-index entry"));
        }
        layers.push(layer);
    }
    Ok(QuantizedModel::from_parts(
        cfg, emb, norm_pairs, final_norm, layers, scheme,
    ))
}

/// One entry of the v2 per-layer offset table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LayerIndexEntry {
    /// Input feature count.
    pub in_features: usize,
    /// Output feature count.
    pub out_features: usize,
    /// Bit width (4 or 8).
    pub bits: u8,
    /// Scale granularity.
    pub granularity: Granularity,
    /// Absolute byte offset of the full layer record.
    pub record_offset: usize,
    /// Absolute byte offset of the raw `i8` grid (one byte per cell,
    /// row-major `[in, out]`).
    pub q_offset: usize,
}

impl LayerIndexEntry {
    /// Number of weight cells in the grid.
    pub fn cells(&self) -> usize {
        self.in_features * self.out_features
    }
}

/// Random-access view of one layer's integer grid inside a
/// [`SparseArtifact`] — reads cells straight out of the artifact bytes.
#[derive(Debug, Clone, Copy)]
pub struct LayerGridView<'a> {
    data: &'a [u8],
    entry: LayerIndexEntry,
}

impl LayerGridView<'_> {
    /// Input feature count.
    pub fn in_features(&self) -> usize {
        self.entry.in_features
    }

    /// Output feature count.
    pub fn out_features(&self) -> usize {
        self.entry.out_features
    }

    /// Bit width (4 or 8).
    pub fn bits(&self) -> u8 {
        self.entry.bits
    }

    /// Number of weight cells.
    pub fn len(&self) -> usize {
        self.entry.cells()
    }

    /// Whether the grid has no cells.
    pub fn is_empty(&self) -> bool {
        self.entry.cells() == 0
    }

    /// Integer value at flat index `f` (`row = f / out`, `col = f % out`)
    /// — one byte read, no decoding.
    ///
    /// # Panics
    ///
    /// Panics if `f >= self.len()`.
    pub fn q_at_flat(&self, f: usize) -> i8 {
        assert!(f < self.entry.cells(), "flat index {f} out of range");
        if Telemetry::enabled() {
            telemetry::SPARSE_CELLS.incr();
            telemetry::SPARSE_BYTES.incr();
        }
        self.data[self.entry.q_offset + f] as i8
    }

    /// Largest representable magnitude of the grid (`2^{N-1} − 1`).
    pub fn qmax(&self) -> i8 {
        ((1i16 << (self.entry.bits - 1)) - 1) as i8
    }

    /// Whether the cell sits at or beyond the min/max quantization level
    /// (same rule as `QuantizedLinear::is_clamped_flat`).
    pub fn is_clamped_flat(&self, f: usize) -> bool {
        let q = self.q_at_flat(f);
        q >= self.qmax() || q <= -self.qmax()
    }
}

/// Indexed reader over a **v2** EMQM artifact: parses the header,
/// config, and per-layer offset table, and walks (without
/// materializing) the body structure — borrowing the input, no copy
/// taken. It then serves individual `(layer, flat_index)` cells and
/// layer metadata by direct byte access: opening costs the header plus
/// a length-word walk, and a watermark extraction costs exactly the
/// cells it probes — no float parsing, no grid copies, ever.
///
/// Implements [`GridSource`], so [`crate::watermark::extract_with_locations`]
/// and the fleet engine consume it interchangeably with a fully decoded
/// [`QuantizedModel`], with bit-identical results. Open accepts an
/// artifact iff [`decode_model`] accepts it, up to value-level checks
/// (f32 contents, grid value ranges, outlier row ranges) that sparse
/// reads never interpret.
#[derive(Debug, Clone)]
pub struct SparseArtifact<'a> {
    data: &'a [u8],
    cfg: ModelConfig,
    scheme: String,
    index: Vec<LayerIndexEntry>,
}

impl<'a> SparseArtifact<'a> {
    /// Opens a v2 artifact for sparse reads. v1 artifacts have no layer
    /// index; they must go through the [`decode_model`] shim instead.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::BadVersion`] for v1 (and unknown) formats
    /// and the usual codec errors for malformed headers or an index
    /// whose offsets fall outside the artifact.
    pub fn open(bytes: &'a [u8]) -> Result<Self, CodecError> {
        let mut r = Reader::new(bytes, Section::Header);
        r.magic(MAGIC)?;
        let version = r.u32("version")?;
        if version != FORMAT_V2 {
            return Err(CodecError::BadVersion(version));
        }
        let cfg = r.config()?;
        let scheme = r.string("scheme")?;
        let index = r.layer_index(cfg.quant_layer_count())?;
        let head_bytes = r.offset() as u64;
        // Walk the body structure (length words, tags, record offsets)
        // without materializing it, so structurally corrupt or
        // truncated artifacts fail here the way they fail decode_model
        // — never at probe time, never silently.
        r.validate_v2_body(&cfg, &index)?;
        if Telemetry::enabled() {
            telemetry::SPARSE_ARTIFACTS.incr();
            // Opening costs the header, config, and offset table;
            // subsequent cell probes account for themselves.
            telemetry::SPARSE_BYTES.add(head_bytes);
        }
        Ok(Self {
            data: bytes,
            cfg,
            scheme,
            index,
        })
    }

    /// The artifact's format version (always [`FORMAT_V2`]).
    pub fn format_version(&self) -> u32 {
        FORMAT_V2
    }

    /// The model hyperparameters from the header.
    pub fn config(&self) -> &ModelConfig {
        &self.cfg
    }

    /// The quantization scheme label from the header.
    pub fn scheme(&self) -> &str {
        &self.scheme
    }

    /// Number of quantized layers.
    pub fn layer_count(&self) -> usize {
        self.index.len()
    }

    /// The per-layer offset table.
    pub fn layer_index(&self) -> &[LayerIndexEntry] {
        &self.index
    }

    /// Total artifact size in bytes.
    pub fn byte_len(&self) -> usize {
        self.data.len()
    }

    /// Random-access view of layer `l`'s integer grid.
    ///
    /// # Panics
    ///
    /// Panics if `l` is out of range.
    pub fn layer_grid(&self, l: usize) -> LayerGridView<'a> {
        LayerGridView {
            data: self.data,
            entry: self.index[l],
        }
    }

    /// Integer value of cell `(l, f)` — a single byte read.
    ///
    /// # Panics
    ///
    /// Panics if `l` or `f` is out of range.
    pub fn q_cell(&self, l: usize, f: usize) -> i8 {
        self.layer_grid(l).q_at_flat(f)
    }

    /// The byte offsets where the artifact's sections begin (header,
    /// config, index, each layer record, each grid) plus the total
    /// length — the boundaries a truncation test should cut at, and the
    /// map `emmark inspect` prints.
    pub fn section_boundaries(&self) -> Vec<usize> {
        let mut b = vec![0, 4, 8];
        for entry in &self.index {
            b.push(entry.record_offset);
            b.push(entry.q_offset);
            b.push(entry.q_offset + entry.cells());
        }
        b.push(self.data.len());
        b.sort_unstable();
        b.dedup();
        b
    }
}

/// One grid-cell overwrite in a v2 artifact — the unit of the fleet
/// delta encoder. `flat` indexes the layer's grid row-major
/// (`row = flat / out`, `col = flat % out`), exactly like
/// [`LayerGridView::q_at_flat`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CellPatch {
    /// Canonical quantized-layer index.
    pub layer: usize,
    /// Flat cell index within the layer's grid.
    pub flat: usize,
    /// The new integer value.
    pub q: i8,
}

/// Emits a copy of a v2 artifact with `patches` applied straight
/// through the layer-offset `index` — the delta-encoding half of fleet
/// provisioning. Each patch is one byte poke at
/// `index[layer].q_offset + flat`; nothing is re-encoded, so deriving a
/// device artifact from the base-watermarked one costs one buffer copy
/// plus O(fingerprint bits), not O(params) float serialization.
///
/// The output is byte-identical to [`encode_model`] run on a model
/// whose grids differ from the base artifact's exactly at `patches` —
/// grid bytes are the only bytes a cell value touches in the v2 layout.
///
/// # Errors
///
/// Returns [`CodecError::Corrupt`] if a patch names a layer or cell
/// outside the index, a value outside the layer's bit-width storage
/// range (the patched artifact must stay decodable), or a grid whose
/// index extent falls outside `base`.
pub fn patch_artifact(
    base: &[u8],
    index: &[LayerIndexEntry],
    patches: &[CellPatch],
) -> Result<Vec<u8>, CodecError> {
    let mut out = base.to_vec();
    for p in patches {
        let offset = check_patch(base.len(), index, p)?;
        out[offset] = p.q as u8;
    }
    Ok(out)
}

/// Validates one [`CellPatch`] against the index and the base artifact
/// length, returning the absolute byte offset it pokes. Shared by the
/// buffered [`patch_artifact`] and the streaming [`splice_patches`], so
/// the two delta encoders cannot drift on what counts as a legal patch.
fn check_patch(
    base_len: usize,
    index: &[LayerIndexEntry],
    p: &CellPatch,
) -> Result<usize, CodecError> {
    let Some(entry) = index.get(p.layer) else {
        return Err(CodecError::Corrupt {
            section: Section::LayerIndex,
            offset: 0,
            msg: format!("patch names layer {} of {}", p.layer, index.len()),
        });
    };
    // The index normally comes from `SparseArtifact::open` on these
    // very bytes, but the parameters are independent — an index
    // inconsistent with `base` must error, not panic.
    if entry
        .q_offset
        .checked_add(entry.cells())
        .is_none_or(|end| end > base_len)
    {
        return Err(CodecError::Corrupt {
            section: Section::Layer(p.layer),
            offset: entry.q_offset,
            msg: format!("grid extent exceeds the {base_len}-byte base artifact"),
        });
    }
    if p.flat >= entry.cells() {
        return Err(CodecError::Corrupt {
            section: Section::Layer(p.layer),
            offset: entry.q_offset,
            msg: format!("patch cell {} exceeds grid size {}", p.flat, entry.cells()),
        });
    }
    let qmax = ((1i16 << (entry.bits - 1)) - 1) as i8;
    if p.q > qmax || p.q < -qmax - 1 {
        return Err(CodecError::Corrupt {
            section: Section::Layer(p.layer),
            offset: entry.q_offset + p.flat,
            msg: format!("patch value {} outside the {}-bit range", p.q, entry.bits),
        });
    }
    Ok(entry.q_offset + p.flat)
}

/// The streaming half of the fleet delta encoder: writes `base` to
/// `out` with `patches` spliced in flight, never materializing the
/// patched artifact. Output bytes equal
/// `patch_artifact(base, index, patches)` exactly (later patches to the
/// same cell win, as in the buffered path); resident memory is
/// O(patches), not O(artifact).
///
/// # Errors
///
/// Returns the same [`CodecError`]s as [`patch_artifact`] for illegal
/// patches, plus I/O failures from `out`.
pub fn splice_patches<W: std::io::Write>(
    base: &[u8],
    index: &[LayerIndexEntry],
    patches: &[CellPatch],
    mut out: W,
) -> Result<(), StoreError> {
    // Validate every patch up front (the buffered path reports errors
    // before writing anything; so must the stream). Sorting by
    // (offset, input rank) makes later patches to the same cell
    // overwrite earlier ones below, matching the buffered path.
    let mut resolved: Vec<(usize, usize)> = Vec::with_capacity(patches.len());
    for (rank, p) in patches.iter().enumerate() {
        resolved.push((check_patch(base.len(), index, p)?, rank));
    }
    resolved.sort_unstable();
    let io = |source| StoreError::Io {
        what: "splicing a patched artifact",
        source,
    };
    // Neighboring patches (fingerprint bits cluster within a layer's
    // grid) are staged into one scratch copy of the spanned region and
    // flushed as a single bulk write instead of a 1-byte write per
    // cell; only gaps wider than COALESCE_GAP break a run. The scratch
    // buffer is reused across runs.
    const COALESCE_GAP: usize = 256;
    let mut scratch: Vec<u8> = Vec::new();
    let mut cursor = 0usize;
    let mut i = 0usize;
    while i < resolved.len() {
        let run_start = resolved[i].0;
        let mut run_end = run_start;
        let mut j = i + 1;
        while j < resolved.len() && resolved[j].0 - run_end <= COALESCE_GAP {
            run_end = resolved[j].0;
            j += 1;
        }
        out.write_all(&base[cursor..run_start]).map_err(io)?;
        scratch.clear();
        scratch.extend_from_slice(&base[run_start..=run_end]);
        for &(offset, rank) in &resolved[i..j] {
            scratch[offset - run_start] = patches[rank].q as u8;
        }
        out.write_all(&scratch).map_err(io)?;
        cursor = run_end + 1;
        i = j;
    }
    out.write_all(&base[cursor..]).map_err(io)?;
    Ok(())
}

impl SparseArtifact<'_> {
    /// [`patch_artifact`] against this artifact's own bytes and index.
    ///
    /// # Errors
    ///
    /// Propagates [`patch_artifact`] errors.
    pub fn patch_cells(&self, patches: &[CellPatch]) -> Result<Vec<u8>, CodecError> {
        patch_artifact(self.data, &self.index, patches)
    }
}

impl GridSource for SparseArtifact<'_> {
    fn source_layer_count(&self) -> usize {
        self.index.len()
    }

    fn layer_dims(&self, l: usize) -> (usize, usize) {
        (self.index[l].in_features, self.index[l].out_features)
    }

    fn q_at(&self, l: usize, f: usize) -> i8 {
        self.q_cell(l, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use emmark_nanolm::config::ModelConfig as Cfg;
    use emmark_nanolm::model::LogitsModel;
    use emmark_nanolm::TransformerModel;
    use emmark_quant::awq::{awq, AwqConfig};
    use emmark_quant::llm_int8::{llm_int8, OutlierCriterion};
    use emmark_quant::smoothquant::{smoothquant, SmoothQuantConfig};

    fn models_to_roundtrip() -> Vec<QuantizedModel> {
        let mut model = TransformerModel::new(Cfg::tiny_test());
        let calib = vec![vec![1u32, 2, 3, 4, 5, 6, 7, 8]];
        let stats = model.collect_activation_stats(&calib);
        vec![
            awq(&model, &stats, &AwqConfig::default()),
            smoothquant(&model, &stats, &SmoothQuantConfig::default()),
            llm_int8(&model, &stats, OutlierCriterion::Quantile(0.9)),
        ]
    }

    #[test]
    fn roundtrip_is_bit_exact_for_every_scheme() {
        for model in models_to_roundtrip() {
            let bytes = encode_model(&model);
            let back = decode_model(&bytes).expect("decode");
            assert!(
                model.same_weights(&back),
                "{}: integer grids differ",
                model.scheme
            );
            assert_eq!(model.scheme, back.scheme);
            assert_eq!(model.cfg, back.cfg);
            // Behavioral equality: identical logits.
            let tokens = [1u32, 3, 5, 7];
            let a = model.logits(&tokens);
            let b = back.logits(&tokens);
            assert_eq!(a, b, "{}: logits differ after roundtrip", model.scheme);
        }
    }

    #[test]
    fn v1_roundtrip_still_decodes_via_the_shim() {
        for model in models_to_roundtrip() {
            let bytes = encode_model_v1(&model);
            assert_eq!(artifact_version(&bytes).expect("version"), FORMAT_V1);
            let back = decode_model(&bytes).expect("v1 decode");
            assert!(model.same_weights(&back), "{}: v1 shim", model.scheme);
            assert_eq!(model.cfg, back.cfg);
            assert_eq!(model.scheme, back.scheme);
            // But the sparse reader refuses: v1 has no index.
            assert_eq!(
                SparseArtifact::open(&bytes).unwrap_err(),
                CodecError::BadVersion(FORMAT_V1)
            );
        }
    }

    #[test]
    fn sparse_reads_match_the_decoded_grid_cell_for_cell() {
        for model in models_to_roundtrip() {
            let bytes = encode_model(&model);
            let sparse = SparseArtifact::open(&bytes).expect("open");
            assert_eq!(sparse.layer_count(), model.layer_count());
            assert_eq!(sparse.scheme(), model.scheme);
            assert_eq!(sparse.config(), &model.cfg);
            for (l, layer) in model.layers.iter().enumerate() {
                let view = sparse.layer_grid(l);
                assert_eq!(view.in_features(), layer.in_features());
                assert_eq!(view.out_features(), layer.out_features());
                assert_eq!(view.bits(), layer.bits());
                for f in 0..layer.len() {
                    assert_eq!(
                        view.q_at_flat(f),
                        layer.q_at_flat(f),
                        "{}: layer {l} cell {f}",
                        model.scheme
                    );
                    assert_eq!(view.is_clamped_flat(f), layer.is_clamped_flat(f));
                }
            }
        }
    }

    #[test]
    fn index_offsets_are_monotonic_and_in_bounds() {
        let model = &models_to_roundtrip()[0];
        let bytes = encode_model(model);
        let sparse = SparseArtifact::open(&bytes).expect("open");
        let mut prev_end = 8usize;
        for entry in sparse.layer_index() {
            assert!(entry.record_offset >= prev_end);
            assert!(entry.q_offset > entry.record_offset);
            prev_end = entry.q_offset + entry.cells();
            assert!(prev_end <= bytes.len());
        }
        let boundaries = sparse.section_boundaries();
        assert!(boundaries.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(*boundaries.last().unwrap(), bytes.len());
    }

    #[test]
    fn bad_magic_is_rejected() {
        assert_eq!(decode_model(b"NOPE1234").unwrap_err(), CodecError::BadMagic);
        assert!(matches!(
            decode_model(b"EM"),
            Err(CodecError::Truncated { .. })
        ));
        assert!(matches!(
            SparseArtifact::open(b"EM"),
            Err(CodecError::Truncated { .. })
        ));
    }

    #[test]
    fn bad_version_is_rejected() {
        let model = &models_to_roundtrip()[0];
        let mut bytes = encode_model(model).to_vec();
        bytes[4] = 99; // version low byte
        assert_eq!(
            decode_model(&bytes).unwrap_err(),
            CodecError::BadVersion(99)
        );
        assert_eq!(
            SparseArtifact::open(&bytes).unwrap_err(),
            CodecError::BadVersion(99)
        );
    }

    #[test]
    fn truncated_input_is_rejected_not_panicking() {
        let model = &models_to_roundtrip()[0];
        for bytes in [encode_model(model), encode_model_v1(model)] {
            for cut in [9, 64, bytes.len() / 2, bytes.len() - 3] {
                let err = decode_model(&bytes[..cut]).expect_err("truncated");
                assert!(
                    matches!(
                        err,
                        CodecError::Truncated { .. } | CodecError::Corrupt { .. }
                    ),
                    "cut at {cut}: {err:?}"
                );
            }
        }
    }

    #[test]
    fn codec_errors_carry_section_and_offset() {
        let model = &models_to_roundtrip()[0];
        let bytes = encode_model(model);
        // Truncating mid-header blames the header at the right offset.
        let err = decode_model(&bytes[..6]).unwrap_err();
        match err {
            CodecError::Truncated {
                section,
                what,
                offset,
            } => {
                assert_eq!(section, Section::Header);
                assert_eq!(what, "version");
                assert_eq!(offset, 4);
            }
            other => panic!("unexpected error {other:?}"),
        }
        // Truncating inside the first layer record blames that layer.
        let sparse = SparseArtifact::open(&bytes).expect("open");
        let cut = sparse.layer_index()[0].q_offset + 1;
        let err = decode_model(&bytes[..cut]).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("layer 0"), "unhelpful error: {msg}");
        assert!(msg.contains("byte"), "no offset in: {msg}");
    }

    #[test]
    fn index_that_lies_about_extents_is_rejected() {
        let model = &models_to_roundtrip()[0];
        let bytes = encode_model(model).to_vec();
        // Locate the first index entry from the (deterministic) header
        // layout: magic+version, config, scheme, layer count.
        let cfg = &model.cfg;
        let cfg_len = (4 + cfg.name.len())
            + 6 * 4
            + 2
            + (1 + if cfg.outliers.is_some() { 16 } else { 0 })
            + 8
            + (4 + model.scheme.len());
        let first_entry = 8 + cfg_len + 4;
        // The entry's final u64 is its q offset; point it past the end.
        let qoff_pos = first_entry + INDEX_ENTRY_BYTES - 8;
        let mut evil = bytes.clone();
        evil[qoff_pos..qoff_pos + 8].copy_from_slice(&(u64::MAX / 2).to_le_bytes());
        let err = SparseArtifact::open(&evil).expect_err("must reject");
        assert!(
            matches!(err, CodecError::Corrupt { .. }),
            "lying index must be corrupt, got {err:?}"
        );
        // Sanity: patching the same position back leaves a valid artifact.
        assert!(SparseArtifact::open(&bytes).is_ok());
    }

    #[test]
    fn index_pointing_into_the_header_is_rejected() {
        // An entry aliasing the header/config/index region must fail
        // open(): otherwise sparse reads would serve metadata bytes as
        // weight cells while the full decode errors, breaking the
        // sparse/full equivalence invariant on adversarial inputs.
        let model = &models_to_roundtrip()[0];
        let bytes = encode_model(model).to_vec();
        let cfg = &model.cfg;
        let cfg_len = (4 + cfg.name.len())
            + 6 * 4
            + 2
            + (1 + if cfg.outliers.is_some() { 16 } else { 0 })
            + 8
            + (4 + model.scheme.len());
        let first_entry = 8 + cfg_len + 4;
        let mut evil = bytes.clone();
        // record_offset = 0, q_offset = 8 — both inside the header.
        evil[first_entry + 14..first_entry + 22].copy_from_slice(&0u64.to_le_bytes());
        evil[first_entry + 22..first_entry + 30].copy_from_slice(&8u64.to_le_bytes());
        let err = SparseArtifact::open(&evil).expect_err("must reject");
        assert!(matches!(err, CodecError::Corrupt { .. }), "{err:?}");
        assert!(decode_model(&evil).is_err());
    }

    #[test]
    fn absurd_counts_error_instead_of_aborting_the_allocator() {
        // Corrupt counts (matrix dims here; outlier/stats counts are
        // guarded the same way) must be bounded by the bytes actually
        // present before any allocation trusts them. u32::MAX ×
        // u32::MAX also exercises the checked-multiply overflow path.
        let model = &models_to_roundtrip()[0];
        let model_v1 = encode_model_v1(model).to_vec();
        // v1 layout: the token-table matrix follows the config directly.
        let cfg = &model.cfg;
        let cfg_len = (4 + cfg.name.len())
            + 6 * 4
            + 2
            + (1 + if cfg.outliers.is_some() { 16 } else { 0 })
            + 8;
        let tok_rows = 8 + cfg_len;
        let mut evil = model_v1.clone();
        evil[tok_rows..tok_rows + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        evil[tok_rows + 4..tok_rows + 8].copy_from_slice(&u32::MAX.to_le_bytes());
        let err = decode_model(&evil).expect_err("must error, not abort");
        assert!(
            matches!(
                err,
                CodecError::Truncated { .. } | CodecError::Corrupt { .. }
            ),
            "{err:?}"
        );
    }

    #[test]
    fn patched_artifact_equals_reencoding_the_patched_model() {
        for model in models_to_roundtrip() {
            let bytes = encode_model(&model);
            let sparse = SparseArtifact::open(&bytes).expect("open");
            // Mirror the patches on an in-memory copy, one cell per layer.
            let mut expected = model.clone();
            let patches: Vec<CellPatch> = model
                .layers
                .iter()
                .enumerate()
                .map(|(l, layer)| {
                    let f = layer.len() / 2;
                    let q = if layer.q_at_flat(f) >= layer.qmax() {
                        layer.q_at_flat(f) - 1
                    } else {
                        layer.q_at_flat(f) + 1
                    };
                    expected.layers[l].set_q_flat(f, q);
                    CellPatch {
                        layer: l,
                        flat: f,
                        q,
                    }
                })
                .collect();
            let patched = sparse.patch_cells(&patches).expect("patch");
            assert_eq!(
                patched,
                encode_model(&expected).to_vec(),
                "{}: delta patch must be byte-identical to a re-encode",
                model.scheme
            );
            let decoded = decode_model(&patched).expect("decode");
            assert!(decoded.same_weights(&expected), "{}", model.scheme);
        }
    }

    #[test]
    fn out_of_range_patches_are_rejected() {
        let model = &models_to_roundtrip()[0];
        let bytes = encode_model(model);
        let sparse = SparseArtifact::open(&bytes).expect("open");
        let bad_layer = CellPatch {
            layer: sparse.layer_count(),
            flat: 0,
            q: 1,
        };
        assert!(matches!(
            sparse.patch_cells(&[bad_layer]),
            Err(CodecError::Corrupt { .. })
        ));
        let bad_cell = CellPatch {
            layer: 0,
            flat: sparse.layer_index()[0].cells(),
            q: 1,
        };
        assert!(matches!(
            sparse.patch_cells(&[bad_cell]),
            Err(CodecError::Corrupt { .. })
        ));
        // A value outside the layer's bit width must be refused (the
        // patched artifact would fail decode_model's range check).
        let bits = sparse.layer_index()[0].bits;
        let overflow = CellPatch {
            layer: 0,
            flat: 0,
            q: ((1i16 << (bits - 1)) - 1) as i8,
        };
        let too_big = CellPatch {
            q: overflow.q.saturating_add(1),
            ..overflow
        };
        if bits < 8 {
            assert!(matches!(
                sparse.patch_cells(&[too_big]),
                Err(CodecError::Corrupt { .. })
            ));
        }
        // In-range patches still succeed and decode.
        let ok = sparse
            .patch_cells(&[CellPatch {
                layer: 0,
                flat: 0,
                q: 1,
            }])
            .expect("patch");
        assert!(decode_model(&ok).is_ok());
        // An index inconsistent with the base bytes (grid extent past
        // the end) must error, not panic.
        let last = *sparse.layer_index().last().expect("layers");
        let truncated = &bytes[..last.q_offset + 1];
        let err = patch_artifact(
            truncated,
            sparse.layer_index(),
            &[CellPatch {
                layer: sparse.layer_count() - 1,
                flat: 1,
                q: 1,
            }],
        )
        .expect_err("must reject");
        assert!(matches!(err, CodecError::Corrupt { .. }), "{err:?}");
    }

    #[test]
    fn codec_error_messages_are_informative() {
        assert!(CodecError::BadMagic.to_string().contains("magic"));
        let t = CodecError::Truncated {
            section: Section::Layer(3),
            what: "scales",
            offset: 1234,
        };
        assert!(t.to_string().contains("scales"));
        assert!(t.to_string().contains("layer 3"));
        assert!(t.to_string().contains("1234"));
        let m = CodecError::MixedVersion { outer: 2, inner: 1 };
        assert!(m.to_string().contains("v2"));
        assert!(m.to_string().contains("v1"));
    }
}
