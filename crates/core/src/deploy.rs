//! Compact binary serialization of a [`QuantizedModel`] — the "deployed
//! artifact" of the paper's threat model. The end-user's edge device
//! holds exactly these bytes; ownership proof queries the weights read
//! back from them.
//!
//! The format is versioned and self-contained: little-endian primitives,
//! length-prefixed buffers, a magic header. Integer grids round-trip
//! bit-exactly (anything less would corrupt watermarks).

use bytes::{Buf, BufMut, Bytes, BytesMut};
use emmark_nanolm::config::{MlpKind, ModelConfig, NormKind, OutlierProfile};
use emmark_nanolm::layers::{Embedding, LayerNorm, Norm, RmsNorm};
use emmark_quant::{ActQuant, Granularity, QuantizedLinear, QuantizedModel};
use emmark_tensor::Matrix;

const MAGIC: &[u8; 4] = b"EMQM";
const VERSION: u32 = 1;

/// Errors of the deploy codec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// Input does not start with the `EMQM` magic.
    BadMagic,
    /// Unsupported format version.
    BadVersion(u32),
    /// Input ended before a field was complete.
    Truncated(&'static str),
    /// A decoded field failed validation.
    Corrupt(String),
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::BadMagic => write!(f, "not an EMQM artifact (bad magic)"),
            CodecError::BadVersion(v) => write!(f, "unsupported format version {v}"),
            CodecError::Truncated(what) => write!(f, "truncated input while reading {what}"),
            CodecError::Corrupt(msg) => write!(f, "corrupt field: {msg}"),
        }
    }
}

impl std::error::Error for CodecError {}

fn put_string(buf: &mut BytesMut, s: &str) {
    buf.put_u32_le(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

fn put_matrix(buf: &mut BytesMut, m: &Matrix) {
    buf.put_u32_le(m.rows() as u32);
    buf.put_u32_le(m.cols() as u32);
    for &v in m.as_slice() {
        buf.put_f32_le(v);
    }
}

fn put_f32_vec(buf: &mut BytesMut, v: &[f32]) {
    buf.put_u32_le(v.len() as u32);
    for &x in v {
        buf.put_f32_le(x);
    }
}

fn put_opt_f32_vec(buf: &mut BytesMut, v: Option<&[f32]>) {
    match v {
        Some(v) => {
            buf.put_u8(1);
            put_f32_vec(buf, v);
        }
        None => buf.put_u8(0),
    }
}

fn put_norm(buf: &mut BytesMut, norm: &Norm) {
    match norm {
        Norm::Layer(n) => {
            buf.put_u8(0);
            put_matrix(buf, &n.gain.value);
            put_matrix(buf, &n.bias.value);
        }
        Norm::Rms(n) => {
            buf.put_u8(1);
            put_matrix(buf, &n.gain.value);
        }
    }
}

fn put_qlinear(buf: &mut BytesMut, l: &QuantizedLinear) {
    buf.put_u32_le(l.in_features() as u32);
    buf.put_u32_le(l.out_features() as u32);
    buf.put_u8(l.bits());
    match l.granularity() {
        Granularity::PerTensor => {
            buf.put_u8(0);
            buf.put_u32_le(0);
        }
        Granularity::PerOutChannel => {
            buf.put_u8(1);
            buf.put_u32_le(0);
        }
        Granularity::Grouped { group_size } => {
            buf.put_u8(2);
            buf.put_u32_le(group_size as u32);
        }
    }
    put_f32_vec(buf, l.scales());
    buf.put_u32_le(l.q_values().len() as u32);
    for &q in l.q_values() {
        buf.put_i8(q);
    }
    put_opt_f32_vec(buf, l.input_scale());
    buf.put_u32_le(l.outlier_rows().len() as u32);
    for &r in l.outlier_rows() {
        buf.put_u32_le(r as u32);
    }
    match l.outlier_weights() {
        Some(m) => {
            buf.put_u8(1);
            put_matrix(buf, m);
        }
        None => buf.put_u8(0),
    }
    put_opt_f32_vec(buf, l.bias());
    buf.put_u8(match l.act_quant() {
        ActQuant::None => 0,
        ActQuant::Int8PerToken => 1,
    });
}

/// Serializes a quantized model to the deployable byte format.
pub fn encode_model(model: &QuantizedModel) -> Bytes {
    let mut buf = BytesMut::with_capacity(1 << 16);
    buf.put_slice(MAGIC);
    buf.put_u32_le(VERSION);
    // Config.
    let cfg = &model.cfg;
    put_string(&mut buf, &cfg.name);
    buf.put_u32_le(cfg.vocab_size as u32);
    buf.put_u32_le(cfg.d_model as u32);
    buf.put_u32_le(cfg.n_layers as u32);
    buf.put_u32_le(cfg.n_heads as u32);
    buf.put_u32_le(cfg.d_ff as u32);
    buf.put_u32_le(cfg.max_seq as u32);
    buf.put_u8(match cfg.norm {
        NormKind::LayerNorm => 0,
        NormKind::RmsNorm => 1,
    });
    buf.put_u8(match cfg.mlp {
        MlpKind::Gelu => 0,
        MlpKind::GatedSilu => 1,
    });
    match cfg.outliers {
        Some(o) => {
            buf.put_u8(1);
            buf.put_u32_le(o.channels as u32);
            buf.put_f32_le(o.factor);
            buf.put_u64_le(o.seed);
        }
        None => buf.put_u8(0),
    }
    buf.put_u64_le(cfg.init_seed);
    // Embedding tables.
    put_matrix(&mut buf, &model.emb().tok.value);
    put_matrix(&mut buf, &model.emb().pos.value);
    // Norms.
    buf.put_u32_le(model.norm_pairs().len() as u32);
    for (n1, n2) in model.norm_pairs() {
        put_norm(&mut buf, n1);
        put_norm(&mut buf, n2);
    }
    put_norm(&mut buf, model.final_norm());
    // Layers.
    buf.put_u32_le(model.layers.len() as u32);
    for layer in &model.layers {
        put_qlinear(&mut buf, layer);
    }
    put_string(&mut buf, &model.scheme);
    buf.freeze()
}

struct Reader {
    buf: Bytes,
}

impl Reader {
    fn need(&self, n: usize, what: &'static str) -> Result<(), CodecError> {
        if self.buf.remaining() < n {
            return Err(CodecError::Truncated(what));
        }
        Ok(())
    }

    fn u8(&mut self, what: &'static str) -> Result<u8, CodecError> {
        self.need(1, what)?;
        Ok(self.buf.get_u8())
    }

    fn i8(&mut self, what: &'static str) -> Result<i8, CodecError> {
        self.need(1, what)?;
        Ok(self.buf.get_i8())
    }

    fn u32(&mut self, what: &'static str) -> Result<u32, CodecError> {
        self.need(4, what)?;
        Ok(self.buf.get_u32_le())
    }

    fn u64(&mut self, what: &'static str) -> Result<u64, CodecError> {
        self.need(8, what)?;
        Ok(self.buf.get_u64_le())
    }

    fn f32(&mut self, what: &'static str) -> Result<f32, CodecError> {
        self.need(4, what)?;
        Ok(self.buf.get_f32_le())
    }

    fn string(&mut self, what: &'static str) -> Result<String, CodecError> {
        let len = self.u32(what)? as usize;
        self.need(len, what)?;
        let bytes = self.buf.copy_to_bytes(len);
        String::from_utf8(bytes.to_vec())
            .map_err(|_| CodecError::Corrupt(format!("{what}: invalid utf-8")))
    }

    fn matrix(&mut self, what: &'static str) -> Result<Matrix, CodecError> {
        let rows = self.u32(what)? as usize;
        let cols = self.u32(what)? as usize;
        self.need(rows * cols * 4, what)?;
        let mut data = Vec::with_capacity(rows * cols);
        for _ in 0..rows * cols {
            data.push(self.buf.get_f32_le());
        }
        Ok(Matrix::from_vec(rows, cols, data))
    }

    fn f32_vec(&mut self, what: &'static str) -> Result<Vec<f32>, CodecError> {
        let len = self.u32(what)? as usize;
        self.need(len * 4, what)?;
        Ok((0..len).map(|_| self.buf.get_f32_le()).collect())
    }

    fn opt_f32_vec(&mut self, what: &'static str) -> Result<Option<Vec<f32>>, CodecError> {
        if self.u8(what)? == 1 {
            Ok(Some(self.f32_vec(what)?))
        } else {
            Ok(None)
        }
    }

    fn norm(&mut self) -> Result<Norm, CodecError> {
        match self.u8("norm tag")? {
            0 => {
                let gain = self.matrix("layernorm gain")?;
                let bias = self.matrix("layernorm bias")?;
                Ok(Norm::Layer(LayerNorm::from_params(gain, bias)))
            }
            1 => Ok(Norm::Rms(RmsNorm::from_params(
                self.matrix("rmsnorm gain")?,
            ))),
            t => Err(CodecError::Corrupt(format!("unknown norm tag {t}"))),
        }
    }

    fn qlinear(&mut self) -> Result<QuantizedLinear, CodecError> {
        let in_f = self.u32("layer in")? as usize;
        let out_f = self.u32("layer out")? as usize;
        let bits = self.u8("layer bits")?;
        let gran_tag = self.u8("granularity tag")?;
        let group = self.u32("group size")? as usize;
        let granularity = match gran_tag {
            0 => Granularity::PerTensor,
            1 => Granularity::PerOutChannel,
            2 => Granularity::Grouped { group_size: group },
            t => return Err(CodecError::Corrupt(format!("unknown granularity tag {t}"))),
        };
        let scales = self.f32_vec("scales")?;
        let q_len = self.u32("q length")? as usize;
        if q_len != in_f * out_f {
            return Err(CodecError::Corrupt(format!(
                "q length {q_len} does not match {in_f}x{out_f}"
            )));
        }
        let mut q = Vec::with_capacity(q_len);
        for _ in 0..q_len {
            q.push(self.i8("q value")?);
        }
        let input_scale = self.opt_f32_vec("input scale")?;
        let n_outliers = self.u32("outlier count")? as usize;
        let mut rows = Vec::with_capacity(n_outliers);
        for _ in 0..n_outliers {
            rows.push(self.u32("outlier row")? as usize);
        }
        let outlier_weights = if self.u8("outlier weights flag")? == 1 {
            Some(self.matrix("outlier weights")?)
        } else {
            None
        };
        let bias = self.opt_f32_vec("bias")?;
        let act_quant = match self.u8("act quant")? {
            0 => ActQuant::None,
            1 => ActQuant::Int8PerToken,
            t => return Err(CodecError::Corrupt(format!("unknown act-quant tag {t}"))),
        };
        let mut layer = QuantizedLinear::new(
            q,
            in_f,
            out_f,
            bits,
            granularity,
            scales,
            input_scale,
            bias,
            act_quant,
        );
        if let Some(w) = outlier_weights {
            layer.set_outliers(rows, w);
        } else if !rows.is_empty() {
            return Err(CodecError::Corrupt("outlier rows without weights".into()));
        }
        Ok(layer)
    }
}

/// Deserializes a quantized model from the deployable byte format.
///
/// # Errors
///
/// Returns a [`CodecError`] on malformed input; round-trips of
/// [`encode_model`] output never fail.
pub fn decode_model(bytes: &[u8]) -> Result<QuantizedModel, CodecError> {
    let mut r = Reader {
        buf: Bytes::copy_from_slice(bytes),
    };
    r.need(4, "magic")?;
    let mut magic = [0u8; 4];
    r.buf.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(CodecError::BadMagic);
    }
    let version = r.u32("version")?;
    if version != VERSION {
        return Err(CodecError::BadVersion(version));
    }
    let name = r.string("model name")?;
    let vocab_size = r.u32("vocab")? as usize;
    let d_model = r.u32("d_model")? as usize;
    let n_layers = r.u32("n_layers")? as usize;
    let n_heads = r.u32("n_heads")? as usize;
    let d_ff = r.u32("d_ff")? as usize;
    let max_seq = r.u32("max_seq")? as usize;
    let norm = match r.u8("norm kind")? {
        0 => NormKind::LayerNorm,
        1 => NormKind::RmsNorm,
        t => return Err(CodecError::Corrupt(format!("unknown norm kind {t}"))),
    };
    let mlp = match r.u8("mlp kind")? {
        0 => MlpKind::Gelu,
        1 => MlpKind::GatedSilu,
        t => return Err(CodecError::Corrupt(format!("unknown mlp kind {t}"))),
    };
    let outliers = if r.u8("outlier profile flag")? == 1 {
        Some(OutlierProfile {
            channels: r.u32("outlier channels")? as usize,
            factor: r.f32("outlier factor")?,
            seed: r.u64("outlier seed")?,
        })
    } else {
        None
    };
    let init_seed = r.u64("init seed")?;
    let cfg = ModelConfig {
        name,
        vocab_size,
        d_model,
        n_layers,
        n_heads,
        d_ff,
        max_seq,
        norm,
        mlp,
        outliers,
        init_seed,
    };
    cfg.validate().map_err(CodecError::Corrupt)?;
    let tok = r.matrix("token table")?;
    let pos = r.matrix("position table")?;
    let emb = Embedding::from_tables(tok, pos);
    let n_pairs = r.u32("norm pair count")? as usize;
    if n_pairs != n_layers {
        return Err(CodecError::Corrupt(format!(
            "norm pair count {n_pairs} does not match n_layers {n_layers}"
        )));
    }
    let mut norm_pairs = Vec::with_capacity(n_pairs);
    for _ in 0..n_pairs {
        norm_pairs.push((r.norm()?, r.norm()?));
    }
    let final_norm = r.norm()?;
    let n_qlayers = r.u32("layer count")? as usize;
    if n_qlayers != cfg.quant_layer_count() {
        return Err(CodecError::Corrupt(format!(
            "layer count {n_qlayers} does not match config ({})",
            cfg.quant_layer_count()
        )));
    }
    let mut layers = Vec::with_capacity(n_qlayers);
    for _ in 0..n_qlayers {
        layers.push(r.qlinear()?);
    }
    let scheme = r.string("scheme")?;
    Ok(QuantizedModel::from_parts(
        cfg, emb, norm_pairs, final_norm, layers, scheme,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use emmark_nanolm::config::ModelConfig as Cfg;
    use emmark_nanolm::model::LogitsModel;
    use emmark_nanolm::TransformerModel;
    use emmark_quant::awq::{awq, AwqConfig};
    use emmark_quant::llm_int8::{llm_int8, OutlierCriterion};
    use emmark_quant::smoothquant::{smoothquant, SmoothQuantConfig};

    fn models_to_roundtrip() -> Vec<QuantizedModel> {
        let mut model = TransformerModel::new(Cfg::tiny_test());
        let calib = vec![vec![1u32, 2, 3, 4, 5, 6, 7, 8]];
        let stats = model.collect_activation_stats(&calib);
        vec![
            awq(&model, &stats, &AwqConfig::default()),
            smoothquant(&model, &stats, &SmoothQuantConfig::default()),
            llm_int8(&model, &stats, OutlierCriterion::Quantile(0.9)),
        ]
    }

    #[test]
    fn roundtrip_is_bit_exact_for_every_scheme() {
        for model in models_to_roundtrip() {
            let bytes = encode_model(&model);
            let back = decode_model(&bytes).expect("decode");
            assert!(
                model.same_weights(&back),
                "{}: integer grids differ",
                model.scheme
            );
            assert_eq!(model.scheme, back.scheme);
            assert_eq!(model.cfg, back.cfg);
            // Behavioral equality: identical logits.
            let tokens = [1u32, 3, 5, 7];
            let a = model.logits(&tokens);
            let b = back.logits(&tokens);
            assert_eq!(a, b, "{}: logits differ after roundtrip", model.scheme);
        }
    }

    #[test]
    fn bad_magic_is_rejected() {
        assert_eq!(decode_model(b"NOPE1234").unwrap_err(), CodecError::BadMagic);
        assert!(matches!(decode_model(b"EM"), Err(CodecError::Truncated(_))));
    }

    #[test]
    fn bad_version_is_rejected() {
        let model = &models_to_roundtrip()[0];
        let mut bytes = encode_model(model).to_vec();
        bytes[4] = 99; // version low byte
        assert_eq!(
            decode_model(&bytes).unwrap_err(),
            CodecError::BadVersion(99)
        );
    }

    #[test]
    fn truncated_input_is_rejected_not_panicking() {
        let model = &models_to_roundtrip()[0];
        let bytes = encode_model(model);
        for cut in [9, 64, bytes.len() / 2, bytes.len() - 3] {
            let err = decode_model(&bytes[..cut]).expect_err("truncated");
            assert!(
                matches!(err, CodecError::Truncated(_) | CodecError::Corrupt(_)),
                "cut at {cut}: {err:?}"
            );
        }
    }

    #[test]
    fn codec_error_messages_are_informative() {
        assert!(CodecError::BadMagic.to_string().contains("magic"));
        assert!(CodecError::Truncated("scales")
            .to_string()
            .contains("scales"));
    }
}
