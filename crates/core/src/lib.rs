//! # emmark-core
//!
//! The primary contribution of *EmMark: Robust Watermarks for IP
//! Protection of Embedded Quantized Large Language Models* (DAC 2024):
//!
//! * [`scoring`] — the Eq. 2–4 parameter scoring function (quality score
//!   `S_q`, saliency score `S_r`, clamp-level exclusion);
//! * [`signature`] — Rademacher `±1` signature sequences;
//! * [`watermark`] — insertion (Eq. 5), location reproduction,
//!   extraction and WER (Eqs. 6–7), chance-match strength (Eq. 8), and
//!   the [`watermark::OwnerSecrets`] bundle the proprietor keeps;
//! * [`baselines`] — the paper's comparison schemes RandomWM and
//!   SpecMark (including the full-precision SpecMark control);
//! * [`scheme`] — one trait over all three for the experiment harness;
//! * [`deploy`] — the versioned binary format of the deployed artifact:
//!   the indexed EMQM v2 codec plus [`deploy::SparseArtifact`], the
//!   random-access reader that serves individual weight cells without
//!   materializing a model (and a v1 compatibility shim);
//! * [`fingerprint`] — per-device traitor-tracing fingerprints on top of
//!   the shared ownership watermark;
//! * [`fleet`] — the parallel batch verification engine
//!   ([`fleet::FleetVerifier`]) with its one-time per-model-family cache,
//!   plus the on-disk device registry;
//! * [`provision`] — the batch provisioning engine
//!   ([`provision::FleetProvisioner`]): score-once/insert-many
//!   fingerprinting over the same family cache, emitting device
//!   artifacts by delta-patching the base artifact through the v2
//!   offset index;
//! * [`registry`] — million-device scale: `EMFM`-manifested shard
//!   registries plus the fingerprint-cell inverted index
//!   ([`registry::LeakIndex`]) that makes leak identification sublinear
//!   in fleet size with bit-identical verdicts;
//! * [`vault`] — versioned serialization of the owner's secret bundle
//!   and the provisioned-fleet bundle;
//! * [`telemetry`] — zero-dependency spans, counters, and log-scale
//!   histograms instrumenting all of the above, with JSONL and
//!   Prometheus-text export and a single-atomic-load disabled mode;
//! * [`service`] — `emmarkd`: the long-running batched
//!   verification/provisioning service ([`service::Service`]) behind a
//!   length-prefixed frame protocol, serving verify / provision /
//!   identify-leak / inspect requests from a warm per-model-family LRU
//!   through a bounded worker pool with backpressure and a shared
//!   resident-memory budget.
//!
//! # Examples
//!
//! End-to-end ownership proof:
//!
//! ```
//! use emmark_core::watermark::{OwnerSecrets, WatermarkConfig};
//! use emmark_nanolm::{config::ModelConfig, TransformerModel};
//! use emmark_quant::awq::{awq, AwqConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // The proprietor quantizes a trained model…
//! let mut model = TransformerModel::new(ModelConfig::tiny_test());
//! let calib = vec![vec![1u32, 2, 3, 4, 5, 6]];
//! let stats = model.collect_activation_stats(&calib);
//! let quantized = awq(&model, &stats, &AwqConfig::default());
//!
//! // …keeps the secrets, deploys the watermarked copy…
//! let cfg = WatermarkConfig { bits_per_layer: 4, pool_ratio: 10, ..Default::default() };
//! let secrets = OwnerSecrets::new(quantized, stats, cfg, 0xB10C);
//! let deployed = secrets.watermark_for_deployment()?;
//!
//! // …and later proves ownership of the deployed weights.
//! let report = secrets.verify(&deployed)?;
//! assert_eq!(report.wer(), 100.0);
//! assert!(report.proves_ownership(-9.0));
//! # Ok(())
//! # }
//! ```

pub mod baselines;
pub mod deploy;
pub mod fingerprint;
pub mod fleet;
pub mod provision;
pub mod registry;
pub mod scheme;
pub mod scoring;
pub mod service;
pub mod signature;
pub mod store;
pub mod telemetry;
pub mod vault;
pub mod watermark;

pub use deploy::{CodecError, LayerGridView, LayerIndexEntry, Section, SparseArtifact};
pub use fleet::{FleetError, FleetVerdict, FleetVerifier};
pub use registry::{
    decode_manifest, encode_manifest, load_sharded_registry, manifest_section_boundaries,
    provision_sharded, provision_sharded_into, shard_checksum, shard_file_name,
    IndexedFleetVerifier, LeakIndex, ShardEntry, ShardManifest, ShardedFleet, ShardedRegistry,
};
pub use scheme::{EmMarkScheme, RandomWmScheme, SpecMarkScheme, WatermarkScheme};
pub use service::{
    decode_request, decode_response, encode_request, encode_response, read_frame, write_frame,
    Blob, InspectSummary, ReportSummary, Request, Response, Service, ServiceConfig,
    MAX_FRAME_BYTES, PROTOCOL_VERSION,
};
pub use signature::Signature;
pub use telemetry::{peak_resident_mib, Counter, Histogram, Snapshot, Span, Telemetry};

pub use store::{
    copy_store, for_each_layer_prefetched, materialize, ArtifactLayerStore, ArtifactSink,
    LayerRecordMeta, LayerSink, LayerStore, ModelHead, ModelSink, ShardSink, ShardStore,
    StoreError,
};
pub use watermark::{
    extract_watermark, extract_with_locations, insert_watermark, locate_watermark,
    stream_watermark, stream_watermark_reference, ExtractionReport, GridSource, OwnerSecrets,
    WatermarkConfig, WatermarkError,
};
