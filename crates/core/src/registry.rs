//! Sharded fleet registries with indexed, sublinear leak identification.
//!
//! A single `EMFR` registry file works for thousands of devices but not
//! for millions: it must be decoded whole, and [`crate::fleet::FleetVerifier::identify_leak`]
//! scores every registered device against a suspect. This module scales
//! both axes:
//!
//! * **Sharded layout** — device entries are split across
//!   `registry-NNNNN.emfr` shard files (each an ordinary `EMFR` registry
//!   over a contiguous device range) under an `EMFM` *manifest* that
//!   records per-shard ranges, byte lengths, and checksums. Shards are
//!   provisioned in parallel and written out one at a time, so peak
//!   memory is O(shard), not O(fleet).
//! * **Inverted leak index** — devices sample their fingerprint cells
//!   from *shared per-layer pools* ([`crate::fingerprint`]), so across
//!   the whole fleet only `layers × pool_size` distinct cells ever carry
//!   a fingerprint bit — independent of fleet size. The manifest
//!   persists a [`LeakIndex`]: for every such cell, the devices
//!   expecting `−1` and the devices expecting `+1` there. Identification
//!   reads the suspect's delta at each indexed cell *once*, counts exact
//!   per-device matched bits through the buckets, and runs the full
//!   Eq. 8 extraction only on the handful of devices whose counts clear
//!   the threshold. The index only narrows; Eq. 8 decides — verdicts
//!   are bit-identical to the linear scan.
//!
//! ## `EMFM` wire format (version 1)
//!
//! Little-endian throughout, like every other codec in this crate:
//!
//! ```text
//! magic "EMFM" | manifest version u32 | shard registry version u32
//! fingerprint WatermarkConfig (32 bytes)
//! total device count u64 | shard count u32
//! per shard:  name string (u32 len + UTF-8) | first device u64
//!             | device count u64 | byte length u64 | FNV-1a checksum u64
//! index:      cell count u32
//! per cell:   layer u32 | flat offset u64
//!             | −1 bucket (u32 len + u32 device ids)
//!             | +1 bucket (u32 len + u32 device ids)
//! ```
//!
//! Decoding validates that shard ranges are contiguous from device 0
//! (no gaps, no overlaps) and sum to the total, that the shard registry
//! version matches the `EMFR` version this build writes
//! ([`CodecError::MixedVersion`] otherwise), that index cells are
//! strictly sorted by `(layer, flat)`, and that every bucket is strictly
//! ascending with ids inside the device range.

use crate::deploy::{
    artifact_version, decode_model, put_string, put_watermark_config, CodecError, Reader, Section,
    SparseArtifact, FORMAT_V2,
};
use crate::fingerprint::{fxhash, DeviceFingerprint};
use crate::fleet::{
    encode_registry, par_map, read_device_entry, FleetError, FleetVerdict, FleetVerifier,
    REGISTRY_MAGIC, REGISTRY_VERSION,
};
use crate::provision::FleetProvisioner;
use crate::signature::Signature;
use crate::store::StoreError;
use crate::telemetry::{self, Telemetry};
use crate::watermark::{
    ExtractionReport, GridSource, Locations, OwnerSecrets, WatermarkConfig, WatermarkError,
};
use bytes::{BufMut, Bytes, BytesMut};

pub(crate) const MANIFEST_MAGIC: &[u8; 4] = b"EMFM";
pub(crate) const MANIFEST_VERSION: u32 = 1;

/// One fingerprint cell's inverted-index entry: the devices whose
/// signatures expect `−1` respectively `+1` at `(layer, flat)`.
#[derive(Debug, Clone, PartialEq, Eq)]
struct IndexCell {
    layer: u32,
    flat: u64,
    /// Devices expecting a `−1` delta here, ascending registration order.
    neg: Vec<u32>,
    /// Devices expecting a `+1` delta here, ascending registration order.
    pos: Vec<u32>,
}

/// Fingerprint-cell inverted index over a device registry.
///
/// Because devices draw their fingerprint locations from shared
/// per-layer pools, the index holds at most `layers × pool_size` cells
/// however many devices are registered — reading the suspect once at
/// those cells yields *exact* per-device matched-bit counts (each
/// device/cell pair appears in exactly one bucket, and an Eq. 6 delta
/// matches exactly one bucket per cell). That makes candidate
/// narrowing lossless: a device clears the Eq. 8 threshold iff its
/// bucket count does.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LeakIndex {
    device_count: usize,
    /// Strictly sorted by `(layer, flat)`.
    cells: Vec<IndexCell>,
}

/// Incremental [`LeakIndex`] construction: devices are folded in one at
/// a time in registration order, so callers (notably
/// [`provision_sharded_into`]) never need the whole fleet's fingerprint
/// material resident at once — the builder holds only the growing
/// buckets, whose total size is `devices × fingerprint bits` ids.
pub(crate) struct LeakIndexBuilder {
    n_layers: usize,
    devices: usize,
    cells: std::collections::BTreeMap<(u32, u64), (Vec<u32>, Vec<u32>)>,
}

impl LeakIndexBuilder {
    pub(crate) fn new(n_layers: usize) -> Self {
        Self {
            n_layers,
            devices: 0,
            cells: std::collections::BTreeMap::new(),
        }
    }

    /// Folds in the next device's fingerprint material; devices are
    /// numbered by push order (global registration order).
    pub(crate) fn push(&mut self, sig: &Signature, locs: &Locations) {
        let d = self.devices;
        assert!(
            d < u32::MAX as usize,
            "leak index addresses devices with u32 ids"
        );
        for (l, layer_locs) in locs.iter().enumerate() {
            let bits = sig.layer_bits(l, self.n_layers);
            for (&f, &b) in layer_locs.iter().zip(bits) {
                let bucket = self.cells.entry((l as u32, f as u64)).or_default();
                if b < 0 {
                    bucket.0.push(d as u32);
                } else {
                    bucket.1.push(d as u32);
                }
            }
        }
        self.devices += 1;
    }

    pub(crate) fn finish(self) -> LeakIndex {
        let cells = self
            .cells
            .into_iter()
            .map(|((layer, flat), (neg, pos))| IndexCell {
                layer,
                flat,
                neg,
                pos,
            })
            .collect();
        LeakIndex {
            device_count: self.devices,
            cells,
        }
    }
}

impl LeakIndex {
    /// Builds the index from per-device fingerprint material in
    /// registration order.
    pub(crate) fn from_material<'a, I>(device_count: usize, n_layers: usize, material: I) -> Self
    where
        I: IntoIterator<Item = &'a (Signature, Locations)>,
    {
        let mut builder = LeakIndexBuilder::new(n_layers);
        for (sig, locs) in material {
            builder.push(sig, locs);
        }
        let index = builder.finish();
        assert_eq!(
            index.device_count, device_count,
            "material iterator covers every device"
        );
        index
    }

    /// Number of devices the index was built over.
    pub fn device_count(&self) -> usize {
        self.device_count
    }

    /// Number of distinct fingerprint cells indexed — bounded by
    /// `layers × pool_size`, independent of the device count.
    pub fn cell_count(&self) -> usize {
        self.cells.len()
    }

    /// The first indexed cell falling outside `grid`'s layers, if any —
    /// a well-formed index over the matching registry never has one.
    pub(crate) fn cell_out_of_bounds<G: GridSource + ?Sized>(
        &self,
        grid: &G,
    ) -> Option<(usize, usize)> {
        let n = grid.source_layer_count();
        for c in &self.cells {
            let (l, f) = (c.layer as usize, c.flat as usize);
            if l >= n {
                return Some((l, f));
            }
            let (in_f, out_f) = grid.layer_dims(l);
            if f >= in_f * out_f {
                return Some((l, f));
            }
        }
        None
    }

    /// Devices whose exact matched-bit count against `suspect` (deltas
    /// taken against `reference`, Eq. 6) reaches `min_matched`, in
    /// ascending registration order.
    ///
    /// Counting is exact, not heuristic: every fingerprint bit of every
    /// device lives in exactly one bucket, and a suspect delta of `−1`
    /// or `+1` matches exactly that bucket (a delta of `0` or anything
    /// else matches no device's bit). `min_matched == 0` therefore
    /// returns every device, matching the linear scan's behaviour at a
    /// vacuous threshold.
    pub(crate) fn candidates<S, R>(
        &self,
        suspect: &S,
        reference: &R,
        min_matched: usize,
    ) -> Vec<usize>
    where
        S: GridSource + ?Sized,
        R: GridSource + ?Sized,
    {
        if min_matched == 0 {
            return (0..self.device_count).collect();
        }
        let mut counts = vec![0u32; self.device_count];
        for cell in &self.cells {
            let (l, f) = (cell.layer as usize, cell.flat as usize);
            let delta = suspect.q_at(l, f) as i16 - reference.q_at(l, f) as i16;
            let bucket = match delta {
                -1 => &cell.neg,
                1 => &cell.pos,
                _ => continue,
            };
            for &d in bucket {
                counts[d as usize] += 1;
            }
        }
        // An ordered sweep over the dense count array both filters and
        // yields ascending registration order in one pass — faster than
        // sorting a touched-device list when buckets are dense, which
        // they are whenever fleets share per-layer fingerprint pools.
        counts
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c as usize >= min_matched)
            .map(|(d, _)| d)
            .collect()
    }
}

/// One shard's entry in an [`ShardManifest`]: which file holds which
/// contiguous device range, and what its bytes must look like.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardEntry {
    /// Shard file name, relative to the manifest (no path separators).
    pub name: String,
    /// First device (global registration index) in this shard.
    pub first_device: u64,
    /// Number of devices in this shard.
    pub device_count: u64,
    /// Exact byte length of the shard file.
    pub byte_len: u64,
    /// FNV-1a checksum of the shard file bytes.
    pub checksum: u64,
}

/// The `EMFM` manifest of a sharded fleet registry.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardManifest {
    /// The fingerprint parameters every shard was provisioned with.
    pub fingerprint_config: WatermarkConfig,
    /// Total devices across all shards.
    pub total_devices: u64,
    /// Shard entries, in device order (contiguous from device 0).
    pub shards: Vec<ShardEntry>,
    /// The fingerprint-cell inverted index over the whole fleet.
    pub index: LeakIndex,
}

/// Canonical shard file name for shard `i`: `registry-00042.emfr`.
pub fn shard_file_name(i: usize) -> String {
    format!("registry-{i:05}.emfr")
}

/// The checksum of a shard file's bytes as recorded in its manifest
/// entry (FNV-1a) — exposed so external tooling can re-stamp entries
/// after rewriting a shard.
pub fn shard_checksum(bytes: &[u8]) -> u64 {
    fxhash(bytes)
}

/// Serializes an `EMFM` manifest.
pub fn encode_manifest(m: &ShardManifest) -> Bytes {
    let mut buf = BytesMut::with_capacity(64 + m.shards.len() * 64 + m.index.cells.len() * 48);
    buf.put_slice(MANIFEST_MAGIC);
    buf.put_u32_le(MANIFEST_VERSION);
    buf.put_u32_le(REGISTRY_VERSION);
    put_watermark_config(&mut buf, &m.fingerprint_config);
    buf.put_u64_le(m.total_devices);
    buf.put_u32_le(m.shards.len() as u32);
    for s in &m.shards {
        put_string(&mut buf, &s.name);
        buf.put_u64_le(s.first_device);
        buf.put_u64_le(s.device_count);
        buf.put_u64_le(s.byte_len);
        buf.put_u64_le(s.checksum);
    }
    buf.put_u32_le(m.index.cells.len() as u32);
    for c in &m.index.cells {
        buf.put_u32_le(c.layer);
        buf.put_u64_le(c.flat);
        for bucket in [&c.neg, &c.pos] {
            buf.put_u32_le(bucket.len() as u32);
            for &d in bucket {
                buf.put_u32_le(d);
            }
        }
    }
    buf.freeze()
}

fn read_shard_entry(r: &mut Reader, i: usize) -> Result<ShardEntry, CodecError> {
    r.enter(Section::Shard(i));
    let name = r.string("shard name")?;
    if name.is_empty() || name.contains(['/', '\\']) || name.contains("..") {
        return Err(r.corrupt(format!(
            "shard name {name:?} is empty or escapes the manifest directory"
        )));
    }
    Ok(ShardEntry {
        name,
        first_device: r.u64("shard first device")?,
        device_count: r.u64("shard device count")?,
        byte_len: r.u64("shard byte length")?,
        checksum: r.u64("shard checksum")?,
    })
}

fn read_bucket(r: &mut Reader, total: u64, what: &'static str) -> Result<Vec<u32>, CodecError> {
    let len = r.u32(what)? as usize;
    r.need(len.saturating_mul(4), what)?;
    let mut out = Vec::with_capacity(len);
    for _ in 0..len {
        let d = r.u32(what)?;
        if d as u64 >= total {
            return Err(r.corrupt(format!("{what} names device {d}, registry has {total}")));
        }
        if let Some(&prev) = out.last() {
            if d <= prev {
                return Err(r.corrupt(format!("{what} not strictly ascending ({prev} then {d})")));
            }
        }
        out.push(d);
    }
    Ok(out)
}

/// Deserializes an `EMFM` manifest written by [`encode_manifest`].
///
/// # Errors
///
/// [`CodecError::BadMagic`]/[`CodecError::BadVersion`] for foreign or
/// unsupported inputs, [`CodecError::MixedVersion`] when the manifest
/// declares shards of a registry version this build does not write, and
/// [`CodecError::Truncated`]/[`CodecError::Corrupt`] (overlapping or
/// gapped shard ranges, unsorted index, out-of-range device ids) for
/// malformed ones.
pub fn decode_manifest(bytes: &[u8]) -> Result<ShardManifest, CodecError> {
    let mut r = Reader::new(bytes, Section::Manifest);
    r.magic(MANIFEST_MAGIC)?;
    let version = r.u32("manifest version")?;
    if version != MANIFEST_VERSION {
        return Err(CodecError::BadVersion(version));
    }
    let registry_version = r.u32("shard registry version")?;
    if registry_version != REGISTRY_VERSION {
        return Err(CodecError::MixedVersion {
            outer: MANIFEST_VERSION,
            inner: registry_version,
        });
    }
    let fingerprint_config = r.watermark_config()?;
    fingerprint_config
        .validate()
        .map_err(|e| r.corrupt(format!("fingerprint config: {e}")))?;
    let total_devices = r.u64("total device count")?;
    if total_devices > u32::MAX as u64 {
        return Err(r.corrupt(format!(
            "total device count {total_devices} exceeds the u32 index id space"
        )));
    }
    let shard_count = r.u32("shard count")? as usize;
    // Each shard entry is at least 36 bytes; bound the allocation by the
    // bytes actually present before trusting `shard_count`.
    r.need(shard_count.saturating_mul(36), "shard entries")?;
    let mut shards = Vec::with_capacity(shard_count);
    let mut next_device = 0u64;
    for i in 0..shard_count {
        let s = read_shard_entry(&mut r, i)?;
        if s.first_device != next_device {
            return Err(r.corrupt(format!(
                "shard {i} covers devices {}..{} but the previous shards end at {next_device} \
                 (ranges must be contiguous, without overlaps or gaps)",
                s.first_device,
                s.first_device + s.device_count
            )));
        }
        if s.device_count == 0 {
            return Err(r.corrupt(format!("shard {i} is empty")));
        }
        next_device += s.device_count;
        shards.push(s);
    }
    if next_device != total_devices {
        return Err(r.corrupt(format!(
            "shards cover {next_device} devices, manifest declares {total_devices}"
        )));
    }
    r.enter(Section::LeakIndex);
    let cell_count = r.u32("index cell count")? as usize;
    // Each cell is at least 20 bytes (layer + flat + two bucket lengths).
    r.need(cell_count.saturating_mul(20), "index cells")?;
    let mut cells = Vec::with_capacity(cell_count);
    let mut prev: Option<(u32, u64)> = None;
    for _ in 0..cell_count {
        let layer = r.u32("index cell layer")?;
        let flat = r.u64("index cell offset")?;
        if let Some(p) = prev {
            if (layer, flat) <= p {
                return Err(r.corrupt(format!(
                    "index cells not strictly sorted: (layer {layer}, flat {flat}) after \
                     (layer {}, flat {})",
                    p.0, p.1
                )));
            }
        }
        prev = Some((layer, flat));
        let neg = read_bucket(&mut r, total_devices, "index −1 bucket")?;
        let pos = read_bucket(&mut r, total_devices, "index +1 bucket")?;
        cells.push(IndexCell {
            layer,
            flat,
            neg,
            pos,
        });
    }
    Ok(ShardManifest {
        fingerprint_config,
        total_devices,
        shards,
        index: LeakIndex {
            device_count: total_devices as usize,
            cells,
        },
    })
}

/// Byte offsets of every section boundary in an encoded manifest —
/// truncating at (or next to) any of them must yield a clean
/// [`CodecError`], which `tests/shard_registry_codec.rs` exercises
/// exhaustively.
///
/// # Errors
///
/// Propagates decode errors on malformed input.
pub fn manifest_section_boundaries(bytes: &[u8]) -> Result<Vec<usize>, CodecError> {
    let mut r = Reader::new(bytes, Section::Manifest);
    r.magic(MANIFEST_MAGIC)?;
    let mut boundaries = vec![0, 4, 8, 12];
    let _ = r.u32("manifest version")?;
    let _ = r.u32("shard registry version")?;
    let _ = r.watermark_config()?;
    boundaries.push(r.offset());
    let _ = r.u64("total device count")?;
    let shard_count = r.u32("shard count")? as usize;
    boundaries.push(r.offset());
    for i in 0..shard_count {
        let _ = read_shard_entry(&mut r, i)?;
        boundaries.push(r.offset());
    }
    let cell_count = r.u32("index cell count")? as usize;
    boundaries.push(r.offset());
    for _ in 0..cell_count {
        let _ = r.u32("index cell layer")?;
        let _ = r.u64("index cell offset")?;
        boundaries.push(r.offset());
        for what in ["index −1 bucket", "index +1 bucket"] {
            let len = r.u32(what)? as usize;
            r.take(len.saturating_mul(4), what)?;
            boundaries.push(r.offset());
        }
    }
    boundaries.sort_unstable();
    boundaries.dedup();
    Ok(boundaries)
}

/// A provisioned sharded registry, ready to persist: the manifest plus
/// each shard's file name and bytes.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardedFleet {
    /// The manifest (encode with [`encode_manifest`]).
    pub manifest: ShardManifest,
    /// `(file name, bytes)` per shard, in device order.
    pub shards: Vec<(String, Bytes)>,
}

/// Provisions `device_ids` into a sharded registry of (at most)
/// `shard_count` shards, streaming each shard's encoded bytes into
/// `sink` as soon as it is built — per-shard memory, not per-fleet.
/// Device material is derived in parallel on `jobs` worker threads
/// through the provisioner's family cache, so entries and the leak
/// index are bit-identical to serially provisioning the same ids.
///
/// Shards hold `ceil(n / shard_count)` consecutive devices each; with
/// fewer devices than shards the tail shards are simply not created
/// (shards are never empty).
///
/// # Errors
///
/// [`StoreError::Watermark`] on an invalid shard count (zero) or a
/// fleet too large for the u32 index id space; [`StoreError::Io`] when
/// `sink` fails.
pub fn provision_sharded_into<S, F>(
    provisioner: &FleetProvisioner,
    device_ids: &[S],
    shard_count: usize,
    jobs: Option<usize>,
    mut sink: F,
) -> Result<ShardManifest, StoreError>
where
    S: AsRef<str> + Sync,
    F: FnMut(&str, &[u8]) -> std::io::Result<()>,
{
    if shard_count == 0 {
        return Err(StoreError::Watermark(WatermarkError::InvalidConfig(
            "shard count must be at least 1".into(),
        )));
    }
    if device_ids.len() > u32::MAX as usize {
        return Err(StoreError::Watermark(WatermarkError::InvalidConfig(
            format!("{} devices exceed the u32 index id space", device_ids.len()),
        )));
    }
    let cfg = provisioner.fingerprint_config();
    let cache = provisioner.family_cache();
    let n_layers = cache.base_deployed.layer_count();
    let per_shard = device_ids.len().div_ceil(shard_count).max(1);
    // One shard at a time: derive the chunk's material, fold it into
    // the incremental index, encode and sink the shard, drop the chunk.
    // Peak memory is one shard's material plus the growing index — the
    // whole fleet's fingerprint material is never resident.
    let mut builder = LeakIndexBuilder::new(n_layers);
    let mut shards = Vec::new();
    let mut first = 0u64;
    for (i, chunk_ids) in device_ids.chunks(per_shard).enumerate() {
        let stamp_span = telemetry::Span::enter(&telemetry::SHARD_STAMP_NS);
        let chunk = par_map(chunk_ids, jobs, |id| {
            cache.device_material(cfg, id.as_ref())
        });
        drop(stamp_span);
        let index_span = telemetry::Span::enter(&telemetry::SHARD_INDEX_NS);
        let mut fingerprints = Vec::with_capacity(chunk.len());
        for (fp, sig, locs) in chunk {
            builder.push(&sig, &locs);
            fingerprints.push(fp);
        }
        let bytes = encode_registry(cfg, &fingerprints);
        drop(index_span);
        if Telemetry::enabled() {
            telemetry::PROVISION_SHARDS.incr();
        }
        let name = shard_file_name(i);
        sink(&name, &bytes).map_err(|e| StoreError::Io {
            what: "shard write",
            source: e,
        })?;
        shards.push(ShardEntry {
            name,
            first_device: first,
            device_count: fingerprints.len() as u64,
            byte_len: bytes.len() as u64,
            checksum: fxhash(&bytes),
        });
        first += fingerprints.len() as u64;
    }
    Ok(ShardManifest {
        fingerprint_config: *cfg,
        total_devices: device_ids.len() as u64,
        shards,
        index: builder.finish(),
    })
}

/// In-memory variant of [`provision_sharded_into`]: returns the
/// manifest together with every shard's bytes.
///
/// # Errors
///
/// Same as [`provision_sharded_into`] (minus I/O).
pub fn provision_sharded<S: AsRef<str> + Sync>(
    provisioner: &FleetProvisioner,
    device_ids: &[S],
    shard_count: usize,
    jobs: Option<usize>,
) -> Result<ShardedFleet, WatermarkError> {
    let mut shards: Vec<(String, Bytes)> = Vec::new();
    let manifest = provision_sharded_into(provisioner, device_ids, shard_count, jobs, |name, b| {
        shards.push((name.to_string(), Bytes::copy_from_slice(b)));
        Ok(())
    })
    .map_err(|e| match e {
        StoreError::Watermark(w) => w,
        other => WatermarkError::InvalidConfig(other.to_string()),
    })?;
    Ok(ShardedFleet { manifest, shards })
}

/// A loaded sharded registry: every device entry (in global
/// registration order) plus the persisted leak index.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardedRegistry {
    fingerprint_config: WatermarkConfig,
    devices: Vec<DeviceFingerprint>,
    index: LeakIndex,
}

impl ShardedRegistry {
    /// The fingerprint parameters the fleet was provisioned with.
    pub fn fingerprint_config(&self) -> &WatermarkConfig {
        &self.fingerprint_config
    }

    /// Every device entry, in global registration order.
    pub fn devices(&self) -> &[DeviceFingerprint] {
        &self.devices
    }

    /// The persisted fingerprint-cell inverted index.
    pub fn index(&self) -> &LeakIndex {
        &self.index
    }

    /// Decomposes into `(fingerprint config, devices, leak index)` — the
    /// raw parts a caller feeds to [`FleetVerifier::from_parts`] and
    /// [`IndexedFleetVerifier::new`] when it manages family-cache
    /// construction itself and must build it exactly once.
    pub fn into_parts(self) -> (WatermarkConfig, Vec<DeviceFingerprint>, LeakIndex) {
        (self.fingerprint_config, self.devices, self.index)
    }

    /// Builds the indexed verification engine over this registry with
    /// the owner's secrets.
    ///
    /// # Errors
    ///
    /// Rejects an inconsistent secret bundle and propagates
    /// location-reproduction errors (see [`FleetVerifier::from_parts`]).
    pub fn into_verifier(self, base: OwnerSecrets) -> Result<IndexedFleetVerifier, WatermarkError> {
        let verifier = FleetVerifier::from_parts(base, self.fingerprint_config, self.devices)?;
        Ok(IndexedFleetVerifier {
            verifier,
            index: self.index,
        })
    }
}

/// Loads a sharded registry: decodes the manifest, then pulls each
/// shard's bytes through `read_shard` (keyed by the manifest's shard
/// file name) and validates length, checksum, version, config, and
/// device count against the manifest before splicing the entries into
/// one global device list.
///
/// # Errors
///
/// [`StoreError::Io`] when `read_shard` fails;
/// [`StoreError::Codec`] for a malformed manifest, a shard whose bytes
/// do not match the manifest (length, checksum), a shard of a foreign
/// registry version ([`CodecError::MixedVersion`]), or a shard whose
/// config or device count disagrees with the manifest.
pub fn load_sharded_registry<F>(
    manifest_bytes: &[u8],
    mut read_shard: F,
) -> Result<ShardedRegistry, StoreError>
where
    F: FnMut(&str) -> std::io::Result<Vec<u8>>,
{
    let manifest = decode_manifest(manifest_bytes)?;
    let mut devices = Vec::with_capacity(manifest.total_devices as usize);
    for (i, entry) in manifest.shards.iter().enumerate() {
        let bytes = read_shard(&entry.name).map_err(|e| StoreError::Io {
            what: "shard read",
            source: e,
        })?;
        devices.extend(decode_shard(&bytes, &manifest, i)?);
    }
    Ok(ShardedRegistry {
        fingerprint_config: manifest.fingerprint_config,
        devices,
        index: manifest.index,
    })
}

/// Decodes shard `i`'s bytes against its manifest entry.
fn decode_shard(
    bytes: &[u8],
    manifest: &ShardManifest,
    i: usize,
) -> Result<Vec<DeviceFingerprint>, CodecError> {
    let entry = &manifest.shards[i];
    let mut r = Reader::new(bytes, Section::Shard(i));
    if bytes.len() as u64 != entry.byte_len {
        return Err(r.corrupt(format!(
            "shard file is {} bytes, manifest records {}",
            bytes.len(),
            entry.byte_len
        )));
    }
    if fxhash(bytes) != entry.checksum {
        return Err(r.corrupt("shard checksum mismatch (file corrupted or replaced)"));
    }
    r.magic(REGISTRY_MAGIC)?;
    let version = r.u32("shard registry version")?;
    if version != REGISTRY_VERSION {
        // A v-next shard under a v1 manifest (or vice versa) is a
        // mixed-version layout, not mere corruption.
        return Err(CodecError::MixedVersion {
            outer: MANIFEST_VERSION,
            inner: version,
        });
    }
    let config = r.watermark_config()?;
    config
        .validate()
        .map_err(|e| r.corrupt(format!("fingerprint config: {e}")))?;
    if config != manifest.fingerprint_config {
        return Err(r.corrupt("shard fingerprint config differs from the manifest's".to_string()));
    }
    let count = r.u32("device count")? as u64;
    if count != entry.device_count {
        return Err(r.corrupt(format!(
            "shard holds {count} devices, manifest records {}",
            entry.device_count
        )));
    }
    r.need((count as usize).saturating_mul(20), "device entries")?;
    let mut devices = Vec::with_capacity(count as usize);
    for j in 0..count as usize {
        // Blame the *global* device index — triage on a million-device
        // fleet should name the device, not its shard-relative slot.
        devices.push(read_device_entry(&mut r, entry.first_device as usize + j)?);
    }
    Ok(devices)
}

/// The indexed verification engine: a [`FleetVerifier`] paired with its
/// [`LeakIndex`], so leak attribution is sublinear in fleet size while
/// every verdict stays bit-identical to the linear engine.
#[derive(Debug, Clone)]
pub struct IndexedFleetVerifier {
    verifier: FleetVerifier,
    index: LeakIndex,
}

impl IndexedFleetVerifier {
    /// Pairs a verifier with an index built over the same registry.
    ///
    /// # Errors
    ///
    /// [`WatermarkError::InvalidConfig`] when the index covers a
    /// different device population.
    pub fn new(verifier: FleetVerifier, index: LeakIndex) -> Result<Self, WatermarkError> {
        if index.device_count() != verifier.devices().len() {
            return Err(WatermarkError::InvalidConfig(format!(
                "leak index covers {} devices, registry has {}",
                index.device_count(),
                verifier.devices().len()
            )));
        }
        Ok(Self { verifier, index })
    }

    /// The underlying linear engine (ownership reports, per-device
    /// extraction, registry accessors).
    pub fn verifier(&self) -> &FleetVerifier {
        &self.verifier
    }

    /// The paired inverted index.
    pub fn index(&self) -> &LeakIndex {
        &self.index
    }

    /// Indexed leak attribution — see
    /// [`FleetVerifier::identify_leak_indexed`].
    ///
    /// # Errors
    ///
    /// Propagates extraction errors.
    pub fn identify_leak<S: GridSource + ?Sized>(
        &self,
        leaked: &S,
        log10_threshold: f64,
    ) -> Result<Option<(&DeviceFingerprint, ExtractionReport)>, WatermarkError> {
        self.verifier
            .identify_leak_indexed(&self.index, leaked, log10_threshold)
    }

    /// Full verdict for one decoded suspect — ownership proof plus
    /// *indexed* leak attribution. Bit-identical to
    /// [`FleetVerifier::verify_model`].
    ///
    /// # Errors
    ///
    /// Propagates extraction errors.
    pub fn verify_model<S: GridSource + ?Sized>(
        &self,
        suspect: &S,
        log10_threshold: f64,
    ) -> Result<FleetVerdict, WatermarkError> {
        let ownership = self.verifier.ownership_report(suspect)?;
        let attribution = self
            .identify_leak(suspect, log10_threshold)?
            .map(|(d, r)| (d.clone(), r));
        Ok(FleetVerdict {
            ownership,
            attribution,
        })
    }

    /// Verifies one deploy-codec artifact with indexed attribution —
    /// the sparse-or-full dispatch of
    /// [`FleetVerifier::verify_artifact`], bit-identical verdicts.
    ///
    /// # Errors
    ///
    /// Returns [`FleetError::Codec`] for malformed bytes, otherwise
    /// propagates extraction errors.
    pub fn verify_artifact(
        &self,
        artifact: &[u8],
        log10_threshold: f64,
    ) -> Result<FleetVerdict, FleetError> {
        if artifact_version(artifact)? == FORMAT_V2 {
            let sparse = SparseArtifact::open(artifact)?;
            Ok(self.verify_model(&sparse, log10_threshold)?)
        } else {
            let suspect = decode_model(artifact)?;
            Ok(self.verify_model(&suspect, log10_threshold)?)
        }
    }

    /// Verifies a batch of artifacts in parallel on `jobs` worker
    /// threads (`None` = one per available core), each with indexed
    /// attribution. Output order matches input order.
    pub fn verify_batch<A: AsRef<[u8]> + Sync>(
        &self,
        artifacts: &[A],
        log10_threshold: f64,
        jobs: Option<usize>,
    ) -> Vec<Result<FleetVerdict, FleetError>> {
        par_map(artifacts, jobs, |a| {
            self.verify_artifact(a.as_ref(), log10_threshold)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::provision::FleetProvisioner;
    use crate::watermark::OwnerSecrets;
    use emmark_nanolm::config::ModelConfig;
    use emmark_nanolm::TransformerModel;
    use emmark_quant::awq::{awq, AwqConfig};

    fn provisioner() -> FleetProvisioner {
        let mut model = TransformerModel::new(ModelConfig::tiny_test());
        let calib: Vec<Vec<u32>> = (0..4u32)
            .map(|s| (0..16u32).map(|i| (i * 5 + s) % 29).collect())
            .collect();
        let stats = model.collect_activation_stats(&calib);
        let qm = awq(&model, &stats, &AwqConfig::default());
        let base_cfg = WatermarkConfig {
            bits_per_layer: 4,
            pool_ratio: 10,
            ..Default::default()
        };
        let base = OwnerSecrets::new(qm, stats, base_cfg, 0x5A4D);
        let fp_cfg = WatermarkConfig {
            bits_per_layer: 3,
            pool_ratio: 10,
            selection_seed: 0x1DE11,
            ..Default::default()
        };
        FleetProvisioner::new(base, fp_cfg).expect("provisioner")
    }

    #[test]
    fn sharded_manifest_round_trips() {
        let p = provisioner();
        let ids: Vec<String> = (0..10).map(|i| format!("dev-{i:03}")).collect();
        let fleet = provision_sharded(&p, &ids, 3, Some(2)).expect("provision");
        assert_eq!(fleet.shards.len(), 3);
        let bytes = encode_manifest(&fleet.manifest);
        let decoded = decode_manifest(&bytes).expect("decode");
        assert_eq!(decoded, fleet.manifest);
    }

    #[test]
    fn loaded_registry_matches_provisioned_devices() {
        let p = provisioner();
        let ids: Vec<String> = (0..10).map(|i| format!("dev-{i:03}")).collect();
        let fleet = provision_sharded(&p, &ids, 4, None).expect("provision");
        let manifest_bytes = encode_manifest(&fleet.manifest);
        let loaded = load_sharded_registry(&manifest_bytes, |name| {
            fleet
                .shards
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, b)| b.to_vec())
                .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::NotFound, name.to_string()))
        })
        .expect("load");
        let direct: Vec<String> = loaded
            .devices()
            .iter()
            .map(|d| d.device_id.clone())
            .collect();
        assert_eq!(direct, ids);
        assert_eq!(loaded.index(), &fleet.manifest.index);
    }
}
