//! A uniform interface over the three watermarking schemes, so the
//! Table 1 harness can sweep `{EmMark, RandomWM, SpecMark}` with one
//! loop.

use crate::baselines::{
    randomwm_extract, randomwm_insert, specmark_extract_quantized, specmark_insert_quantized,
    RandomWmConfig, SpecMarkConfig,
};
use crate::signature::Signature;
use crate::store::{copy_store, materialize, LayerSink, LayerStore, StoreError};
use crate::watermark::{
    extract_watermark, insert_watermark, stream_watermark, ExtractionReport, WatermarkConfig,
    WatermarkError,
};
use emmark_nanolm::model::ActivationStats;
use emmark_quant::QuantizedModel;

/// A watermarking scheme that can mark a quantized model and later check
/// a suspect against the original.
///
/// The trait is object-safe so harnesses can hold `Vec<Box<dyn
/// WatermarkScheme>>`.
pub trait WatermarkScheme {
    /// Scheme name as it appears in the tables.
    fn name(&self) -> &'static str;

    /// Inserts the scheme's signature into `model` in place.
    ///
    /// # Errors
    ///
    /// Returns a [`WatermarkError`] if insertion is impossible (e.g. the
    /// candidate pool cannot be filled).
    fn insert(
        &self,
        model: &mut QuantizedModel,
        stats: &ActivationStats,
    ) -> Result<(), WatermarkError>;

    /// Extracts from `suspect` against `original` and reports the WER.
    ///
    /// # Errors
    ///
    /// Returns a [`WatermarkError`] on shape mismatches.
    fn extract(
        &self,
        suspect: &QuantizedModel,
        original: &QuantizedModel,
        stats: &ActivationStats,
    ) -> Result<ExtractionReport, WatermarkError>;

    /// Streams the scheme's insertion from a [`LayerStore`] into a
    /// [`LayerSink`] — the constant-memory counterpart of
    /// [`Self::insert`] over the unified store abstraction.
    ///
    /// The default materializes the store, inserts in memory, and
    /// streams the result out (correct for any scheme, O(model)
    /// resident); schemes whose scoring is per-layer override it with a
    /// genuinely layer-at-a-time pass — EmMark runs
    /// [`stream_watermark`], holding one layer at a time. The store is
    /// `Sync` so such overrides can overlap layer loads with compute
    /// on a scoped worker thread.
    ///
    /// # Errors
    ///
    /// Propagates store, sink, and insertion failures.
    fn insert_into(
        &self,
        store: &(dyn LayerStore + Sync),
        stats: &ActivationStats,
        sink: &mut dyn LayerSink,
    ) -> Result<(), StoreError> {
        let mut model = materialize(store)?;
        self.insert(&mut model, stats)?;
        copy_store(&model, sink)
    }
}

/// EmMark under the trait.
#[derive(Debug, Clone)]
pub struct EmMarkScheme {
    /// Insertion parameters.
    pub config: WatermarkConfig,
    /// Signature generation seed.
    pub signature_seed: u64,
}

impl EmMarkScheme {
    fn signature_for(&self, model: &QuantizedModel) -> Signature {
        Signature::generate(
            self.config.signature_len(model.layer_count()),
            self.signature_seed,
        )
    }
}

impl WatermarkScheme for EmMarkScheme {
    fn name(&self) -> &'static str {
        "EmMark"
    }

    fn insert(
        &self,
        model: &mut QuantizedModel,
        stats: &ActivationStats,
    ) -> Result<(), WatermarkError> {
        let sig = self.signature_for(model);
        insert_watermark(model, stats, &sig, &self.config).map(|_| ())
    }

    fn extract(
        &self,
        suspect: &QuantizedModel,
        original: &QuantizedModel,
        stats: &ActivationStats,
    ) -> Result<ExtractionReport, WatermarkError> {
        let sig = self.signature_for(original);
        extract_watermark(suspect, original, stats, &sig, &self.config)
    }

    fn insert_into(
        &self,
        store: &(dyn LayerStore + Sync),
        stats: &ActivationStats,
        sink: &mut dyn LayerSink,
    ) -> Result<(), StoreError> {
        // EmMark scores per layer, so insertion streams: one layer
        // resident at a time, never the whole model.
        let sig = Signature::generate(
            self.config.signature_len(store.store_layer_count()),
            self.signature_seed,
        );
        stream_watermark(store, stats, &sig, &self.config, sink).map(|_| ())
    }
}

/// RandomWM under the trait (ignores activation stats).
#[derive(Debug, Clone)]
pub struct RandomWmScheme {
    /// Insertion parameters.
    pub config: RandomWmConfig,
    /// Signature generation seed.
    pub signature_seed: u64,
}

impl RandomWmScheme {
    fn signature_for(&self, model: &QuantizedModel) -> Signature {
        Signature::generate(
            self.config.bits_per_layer * model.layer_count(),
            self.signature_seed,
        )
    }
}

impl WatermarkScheme for RandomWmScheme {
    fn name(&self) -> &'static str {
        "RandomWM"
    }

    fn insert(
        &self,
        model: &mut QuantizedModel,
        _stats: &ActivationStats,
    ) -> Result<(), WatermarkError> {
        let sig = self.signature_for(model);
        randomwm_insert(model, &sig, &self.config);
        Ok(())
    }

    fn extract(
        &self,
        suspect: &QuantizedModel,
        original: &QuantizedModel,
        _stats: &ActivationStats,
    ) -> Result<ExtractionReport, WatermarkError> {
        let sig = self.signature_for(original);
        Ok(randomwm_extract(suspect, original, &sig, &self.config))
    }
}

/// SpecMark under the trait (quantized-domain variant, as Table 1 runs
/// it; ignores activation stats).
#[derive(Debug, Clone)]
pub struct SpecMarkScheme {
    /// Insertion parameters.
    pub config: SpecMarkConfig,
    /// Signature generation seed.
    pub signature_seed: u64,
}

impl SpecMarkScheme {
    fn signature_for(&self, model: &QuantizedModel) -> Signature {
        Signature::generate(
            self.config.bits_per_layer * model.layer_count(),
            self.signature_seed,
        )
    }
}

impl WatermarkScheme for SpecMarkScheme {
    fn name(&self) -> &'static str {
        "SpecMark"
    }

    fn insert(
        &self,
        model: &mut QuantizedModel,
        _stats: &ActivationStats,
    ) -> Result<(), WatermarkError> {
        let sig = self.signature_for(model);
        specmark_insert_quantized(model, &sig, &self.config);
        Ok(())
    }

    fn extract(
        &self,
        suspect: &QuantizedModel,
        original: &QuantizedModel,
        _stats: &ActivationStats,
    ) -> Result<ExtractionReport, WatermarkError> {
        let sig = self.signature_for(original);
        Ok(specmark_extract_quantized(
            suspect,
            original,
            &sig,
            &self.config,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use emmark_nanolm::config::ModelConfig;
    use emmark_nanolm::TransformerModel;
    use emmark_quant::rtn::quantize_linear_rtn;
    use emmark_quant::{ActQuant, Granularity};

    fn setup() -> (QuantizedModel, ActivationStats) {
        let mut model = TransformerModel::new(ModelConfig::tiny_test());
        let calib = vec![vec![1u32, 2, 3, 4, 5, 6, 7, 8]];
        let stats = model.collect_activation_stats(&calib);
        let qm = QuantizedModel::quantize_with(&model, "rtn", |_, lin| {
            quantize_linear_rtn(lin, 8, Granularity::PerOutChannel, ActQuant::None)
        });
        (qm, stats)
    }

    fn schemes() -> Vec<Box<dyn WatermarkScheme>> {
        vec![
            Box::new(EmMarkScheme {
                config: WatermarkConfig {
                    bits_per_layer: 4,
                    pool_ratio: 10,
                    ..WatermarkConfig::default()
                },
                signature_seed: 11,
            }),
            Box::new(RandomWmScheme {
                config: RandomWmConfig {
                    bits_per_layer: 4,
                    seed: 100,
                },
                signature_seed: 11,
            }),
            Box::new(SpecMarkScheme {
                config: SpecMarkConfig {
                    bits_per_layer: 4,
                    ..Default::default()
                },
                signature_seed: 11,
            }),
        ]
    }

    #[test]
    fn all_schemes_run_through_the_same_harness() {
        let (original, stats) = setup();
        let mut wers = Vec::new();
        for scheme in schemes() {
            let mut deployed = original.clone();
            scheme.insert(&mut deployed, &stats).expect("insert");
            let report = scheme
                .extract(&deployed, &original, &stats)
                .expect("extract");
            wers.push((scheme.name(), report.wer()));
        }
        let by_name: std::collections::HashMap<_, _> = wers.into_iter().collect();
        assert_eq!(by_name["EmMark"], 100.0);
        assert!(by_name["RandomWM"] > 80.0);
        assert_eq!(
            by_name["SpecMark"], 0.0,
            "SpecMark must fail on quantized grids"
        );
    }

    #[test]
    fn scheme_names_match_the_paper_table() {
        let names: Vec<&str> = schemes().iter().map(|s| s.name()).collect();
        assert_eq!(names, vec!["EmMark", "RandomWM", "SpecMark"]);
    }
}
