//! Zero-dependency process telemetry: atomic [`Counter`]s, settable
//! [`Gauge`]s, fixed-bucket log-scale [`Histogram`]s, and RAII [`Span`]
//! timers behind a runtime on/off switch, with JSONL and
//! Prometheus-text exporters (DESIGN.md §13).
//!
//! Every metric is a `static` registered at compile time in the
//! process-wide [`Telemetry`] registry, so instrumentation sites deep in
//! the library — the scoring kernel, the scoped-thread prefetch
//! pipeline, the fleet engines — record through plain `&'static`
//! references with no handle plumbing and no locks on the hot path.
//! Recording is gated on one `Relaxed` atomic load
//! ([`Telemetry::enabled`]); when telemetry is off (the default), a
//! [`Span`] never reads the clock and a guarded counter flush never
//! touches its atomics, so the disabled-mode cost of an instrumented
//! call site is a single predictable branch. The `scoring_kernels`
//! bench gates this at ≤ 2% on the hottest loop.
//!
//! Two exporters share one [`Snapshot`]:
//!
//! * [`Snapshot::write_jsonl`] — one self-describing JSON object per
//!   line (`{"type":"counter",...}`, `{"type":"histogram",...}`),
//!   appended after whatever per-span `{"type":"span",...}` events the
//!   run streamed into the sink installed by
//!   [`Telemetry::install_jsonl_sink`];
//! * [`Snapshot::render_prometheus`] — a `# HELP`/`# TYPE` text dump in
//!   the Prometheus exposition format (histograms as cumulative
//!   `_bucket{le="..."}` series plus `_sum`/`_count`).
//!
//! Metric names follow Prometheus conventions: `emmark_<subsystem>_...`
//! with `_total` on counters and the unit (`_ns`) on histograms;
//! gauges carry neither suffix (they are levels, not accumulations).
//! Histograms bucket by power of two — bucket `i` holds values in
//! `[2^i, 2^(i+1))` (bucket 0 also holds zero) — trading resolution
//! nobody needs for a fixed 64-slot layout that records with two
//! atomic adds and never allocates.

use std::io::{self, Write};
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Number of log-scale buckets in every [`Histogram`] (one per power of
/// two of the `u64` range).
pub const HISTOGRAM_BUCKETS: usize = 64;

// ---------------------------------------------------------------------
// Primitives.
// ---------------------------------------------------------------------

/// A monotonically increasing atomic counter.
#[derive(Debug)]
pub struct Counter {
    name: &'static str,
    help: &'static str,
    value: AtomicU64,
}

impl Counter {
    /// A zeroed counter. `name` should follow the
    /// `emmark_<subsystem>_<what>_total` convention.
    pub const fn new(name: &'static str, help: &'static str) -> Self {
        Self {
            name,
            help,
            value: AtomicU64::new(0),
        }
    }

    /// Adds `n` (one `Relaxed` atomic add).
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Metric name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// One-line description (the Prometheus `# HELP` text).
    pub fn help(&self) -> &'static str {
        self.help
    }

    fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// A settable signed level — queue depths, resident-byte accounting —
/// read and written with `Relaxed` atomics. Unlike a [`Counter`] a
/// gauge goes down as well as up, so its name carries no `_total`
/// suffix.
#[derive(Debug)]
pub struct Gauge {
    name: &'static str,
    help: &'static str,
    value: AtomicI64,
}

impl Gauge {
    /// A zeroed gauge. `name` should follow the
    /// `emmark_<subsystem>_<what>` convention (no unit/accumulation
    /// suffix).
    pub const fn new(name: &'static str, help: &'static str) -> Self {
        Self {
            name,
            help,
            value: AtomicI64::new(0),
        }
    }

    /// Sets the level.
    #[inline]
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Adds `n` (one `Relaxed` atomic add; `n` may be negative).
    #[inline]
    pub fn add(&self, n: i64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Subtracts `n`.
    #[inline]
    pub fn sub(&self, n: i64) {
        self.add(-n);
    }

    /// Current level.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Metric name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// One-line description (the Prometheus `# HELP` text).
    pub fn help(&self) -> &'static str {
        self.help
    }

    fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// A fixed-layout log₂-bucket histogram: bucket `i` counts values in
/// `[2^i, 2^(i+1))` (bucket 0 also takes zero), covering the full `u64`
/// range in [`HISTOGRAM_BUCKETS`] slots. Recording is two `Relaxed`
/// atomic adds plus a bucket increment — no locks, no allocation.
#[derive(Debug)]
pub struct Histogram {
    name: &'static str,
    help: &'static str,
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    sum: AtomicU64,
    count: AtomicU64,
}

impl Histogram {
    /// An empty histogram. `name` should carry the unit suffix (`_ns`
    /// for durations).
    pub const fn new(name: &'static str, help: &'static str) -> Self {
        Self {
            name,
            help,
            buckets: [const { AtomicU64::new(0) }; HISTOGRAM_BUCKETS],
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }

    /// The bucket a value lands in: `floor(log2(max(v, 1)))`.
    #[inline]
    pub fn bucket_index(v: u64) -> usize {
        (v | 1).ilog2() as usize
    }

    /// Inclusive upper bound of bucket `i` (`2^(i+1) − 1`; the last
    /// bucket tops out at `u64::MAX`).
    pub fn bucket_upper_bound(i: usize) -> u64 {
        if i + 1 >= HISTOGRAM_BUCKETS {
            u64::MAX
        } else {
            (1u64 << (i + 1)) - 1
        }
    }

    /// Records one observation.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[Self::bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a duration in nanoseconds (saturating at `u64::MAX`).
    #[inline]
    pub fn record_duration(&self, d: Duration) {
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Observation count of bucket `i`.
    pub fn bucket_count(&self, i: usize) -> u64 {
        self.buckets[i].load(Ordering::Relaxed)
    }

    /// Metric name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// One-line description (the Prometheus `# HELP` text).
    pub fn help(&self) -> &'static str {
        self.help
    }

    fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.sum.store(0, Ordering::Relaxed);
        self.count.store(0, Ordering::Relaxed);
    }
}

/// An RAII timer over a [`Histogram`]: reads the clock on
/// [`Span::enter`] and records the elapsed nanoseconds on drop. With
/// telemetry disabled the clock is never read and nothing records — the
/// entire cost is one atomic load. Spans nest freely and may be created
/// on any thread (the prefetch pipeline opens them on its scoped worker
/// thread); each records into its own histogram independently.
///
/// While a JSONL sink is installed, every completed span additionally
/// streams a `{"type":"span","name":...,"ns":...,"thread":...}` event
/// line, giving runs a per-observation timeline next to the aggregate
/// snapshot.
#[must_use = "a span records on drop; binding it to `_` drops it immediately"]
#[derive(Debug)]
pub struct Span {
    start: Option<Instant>,
    hist: &'static Histogram,
}

impl Span {
    /// Starts a span over `hist` (no-op when telemetry is disabled).
    #[inline]
    pub fn enter(hist: &'static Histogram) -> Self {
        let start = Telemetry::enabled().then(Instant::now);
        Self { start, hist }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            let ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            self.hist.record(ns);
            emit_span_event(self.hist.name, ns);
        }
    }
}

// ---------------------------------------------------------------------
// The metric registry.
// ---------------------------------------------------------------------

macro_rules! registry {
    (
        counters {
            $($(#[$cmeta:meta])* $cid:ident : $cname:literal => $chelp:literal;)*
        }
        gauges {
            $($(#[$gmeta:meta])* $gid:ident : $gname:literal => $ghelp:literal;)*
        }
        histograms {
            $($(#[$hmeta:meta])* $hid:ident : $hname:literal => $hhelp:literal;)*
        }
    ) => {
        $($(#[$cmeta])* pub static $cid: Counter = Counter::new($cname, $chelp);)*
        $($(#[$gmeta])* pub static $gid: Gauge = Gauge::new($gname, $ghelp);)*
        $($(#[$hmeta])* pub static $hid: Histogram = Histogram::new($hname, $hhelp);)*
        static COUNTERS: &[&Counter] = &[$(&$cid),*];
        static GAUGES: &[&Gauge] = &[$(&$gid),*];
        static HISTOGRAMS: &[&Histogram] = &[$(&$hid),*];
    };
}

registry! {
    counters {
        /// Grid cells scanned by the Eq. 2–4 pool kernel.
        SCORING_CELLS: "emmark_scoring_cells_scanned_total" =>
            "Grid cells scanned by scoring::layer_pool";
        /// CHUNK-sized blocks the pool kernel processed.
        SCORING_CHUNKS: "emmark_scoring_chunks_total" =>
            "Chunks processed by scoring::layer_pool";
        /// Chunks whose minimum cleared the heap threshold (top-k work
        /// skipped entirely).
        SCORING_CHUNKS_SKIPPED: "emmark_scoring_chunks_skipped_total" =>
            "Chunks skipped by the layer_pool threshold test";
        /// Per-cell candidate pushes into the bounded top-k heap.
        SCORING_HEAP_CONSULTS: "emmark_scoring_heap_consults_total" =>
            "Candidate cells pushed into the layer_pool top-k heap";
        /// Layers delivered by the prefetch pipeline.
        STREAM_LAYERS: "emmark_stream_layers_total" =>
            "Layers delivered by for_each_layer_prefetched";
        /// Sparse v2 artifacts opened for cell-level reads.
        SPARSE_ARTIFACTS: "emmark_sparse_artifacts_opened_total" =>
            "SparseArtifact opens";
        /// Individual weight cells served by sparse artifact reads.
        SPARSE_CELLS: "emmark_sparse_cells_read_total" =>
            "Weight cells read through SparseArtifact/LayerGridView";
        /// Bytes actually read from sparse artifacts (header + index at
        /// open, one byte per cell probe).
        SPARSE_BYTES: "emmark_sparse_bytes_read_total" =>
            "Bytes read through the sparse artifact path";
        /// Family caches reused instead of rebuilt.
        FLEET_CACHE_HITS: "emmark_fleet_family_cache_hits_total" =>
            "FamilyCache reuses (verifier built from an existing cache)";
        /// Family caches built from scratch (full Eq. 2–4 scoring pass).
        FLEET_CACHE_MISSES: "emmark_fleet_family_cache_misses_total" =>
            "FamilyCache builds (full scoring pass over the base model)";
        /// Device/ownership verification reports produced.
        FLEET_REPORTS: "emmark_fleet_verify_reports_total" =>
            "Verification reports produced by the fleet engine";
        /// Devices whose exact match count survived index pruning (the
        /// Eq. 8 candidates).
        IDENTIFY_CANDIDATES: "emmark_identify_candidates_total" =>
            "Devices surviving leak-index pruning";
        /// Fleet size at each leak identification (pruning-ratio
        /// denominator).
        IDENTIFY_DEVICES: "emmark_identify_fleet_devices_total" =>
            "Registered devices considered by identify_leak";
        /// Device artifacts provisioned (buffered, streamed, or
        /// sharded).
        PROVISION_DEVICES: "emmark_provision_devices_total" =>
            "Device artifacts provisioned";
        /// Registry shards written by the sharded provisioner.
        PROVISION_SHARDS: "emmark_provision_shards_total" =>
            "Registry shards written by provision_sharded_into";
        /// Attack sweep points measured by the harness.
        ATTACK_POINTS: "emmark_attack_points_total" =>
            "Attack sweep points measured by attacks::harness";
        /// Requests accepted into the emmarkd bounded queue.
        SERVICE_REQUESTS: "emmark_service_requests_total" =>
            "Requests accepted by the emmarkd service queue";
        /// Requests bounced with retry-after because the queue was
        /// full.
        SERVICE_REJECTED: "emmark_service_rejected_total" =>
            "Requests rejected with retry-after by the full service queue";
        /// Malformed frames the service refused to enqueue.
        SERVICE_MALFORMED: "emmark_service_malformed_total" =>
            "Malformed request frames rejected by the emmarkd decoder";
        /// Warm family entries served from the service LRU.
        SERVICE_CACHE_HITS: "emmark_service_family_cache_hits_total" =>
            "Warm family-cache hits in the emmarkd LRU";
        /// Family entries built from scratch for a service request.
        SERVICE_CACHE_MISSES: "emmark_service_family_cache_misses_total" =>
            "Family-cache builds triggered by emmarkd requests";
        /// Families dropped from the LRU to make room.
        SERVICE_EVICTIONS: "emmark_service_family_cache_evictions_total" =>
            "Families evicted from the emmarkd LRU";
    }
    gauges {
        /// Requests waiting in the emmarkd bounded queue right now.
        SERVICE_QUEUE_DEPTH: "emmark_service_queue_depth" =>
            "Requests waiting in the emmarkd bounded queue";
        /// Transient request bytes currently charged against the
        /// service resident budget.
        SERVICE_RESIDENT_BYTES: "emmark_service_resident_bytes" =>
            "Bytes charged against the emmarkd resident budget";
    }
    histograms {
        /// Wall time of one `layer_pool` call.
        SCORING_POOL_NS: "emmark_scoring_layer_pool_ns" =>
            "Wall time of one scoring::layer_pool call";
        /// Producer-side load time of one layer in the prefetch
        /// pipeline.
        STREAM_LOAD_NS: "emmark_stream_load_ns" =>
            "Per-layer load_layer time on the prefetch worker";
        /// Consumer-side rendezvous wait per layer (time blocked in
        /// `recv` before the worker handed the layer over).
        STREAM_STALL_NS: "emmark_stream_stall_ns" =>
            "Per-layer rendezvous stall in for_each_layer_prefetched";
        /// Consumer-side compute time per layer (the caller's closure).
        STREAM_COMPUTE_NS: "emmark_stream_compute_ns" =>
            "Per-layer consumer compute in for_each_layer_prefetched";
        /// One locate sweep of the streaming stamp (pool + size pass).
        STAMP_LOCATE_NS: "emmark_stamp_locate_sweep_ns" =>
            "Streaming stamp sweep 1: locate + size";
        /// One insert/encode sweep of the streaming stamp.
        STAMP_INSERT_NS: "emmark_stamp_insert_sweep_ns" =>
            "Streaming stamp sweep 2: insert + encode";
        /// One verification report (device or ownership).
        FLEET_VERIFY_NS: "emmark_fleet_verify_report_ns" =>
            "Wall time of one fleet verification report";
        /// One leak identification over the full fleet.
        IDENTIFY_NS: "emmark_identify_ns" =>
            "Wall time of one leak identification";
        /// Per-shard stamp time (fingerprint material + device
        /// entries).
        SHARD_STAMP_NS: "emmark_provision_shard_stamp_ns" =>
            "Per-shard fingerprint stamping in provision_sharded_into";
        /// Per-shard index/encode time (leak-index fold + registry
        /// encode + sink write).
        SHARD_INDEX_NS: "emmark_provision_shard_index_ns" =>
            "Per-shard index fold + encode in provision_sharded_into";
        /// One attack sweep point end to end (attack + quality eval +
        /// extraction).
        ATTACK_POINT_NS: "emmark_attack_point_ns" =>
            "Wall time of one attack sweep point";
        /// The owner-extraction step of one attack sweep point.
        ATTACK_EXTRACT_NS: "emmark_attack_extract_ns" =>
            "Watermark extraction time within one attack sweep point";
        /// One service verify request, queue-pop to response bytes.
        SERVICE_VERIFY_NS: "emmark_service_verify_ns" =>
            "Wall time of one emmarkd verify request";
        /// One service provision request, queue-pop to response bytes.
        SERVICE_PROVISION_NS: "emmark_service_provision_ns" =>
            "Wall time of one emmarkd provision request";
        /// One service identify-leak request, queue-pop to response
        /// bytes.
        SERVICE_IDENTIFY_NS: "emmark_service_identify_ns" =>
            "Wall time of one emmarkd identify-leak request";
        /// One service inspect request, queue-pop to response bytes.
        SERVICE_INSPECT_NS: "emmark_service_inspect_ns" =>
            "Wall time of one emmarkd inspect request";
    }
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static EVENTS_ACTIVE: AtomicBool = AtomicBool::new(false);
static SINK: Mutex<Option<Box<dyn Write + Send>>> = Mutex::new(None);

/// The process-wide telemetry registry: every [`Counter`] and
/// [`Histogram`] in the crate, the global on/off switch, and the JSONL
/// event sink. All operations are thread-safe; recording sites are
/// lock-free.
#[derive(Debug)]
pub struct Telemetry;

impl Telemetry {
    /// Whether recording is on — one `Relaxed` atomic load; this is the
    /// whole disabled-mode cost of an instrumented site.
    #[inline]
    pub fn enabled() -> bool {
        ENABLED.load(Ordering::Relaxed)
    }

    /// Turns recording on or off process-wide.
    pub fn set_enabled(on: bool) {
        ENABLED.store(on, Ordering::Relaxed);
    }

    /// Every registered counter, in registration order.
    pub fn counters() -> &'static [&'static Counter] {
        COUNTERS
    }

    /// Every registered gauge, in registration order.
    pub fn gauges() -> &'static [&'static Gauge] {
        GAUGES
    }

    /// Every registered histogram, in registration order.
    pub fn histograms() -> &'static [&'static Histogram] {
        HISTOGRAMS
    }

    /// Looks up a counter by metric name.
    pub fn counter(name: &str) -> Option<&'static Counter> {
        COUNTERS.iter().find(|c| c.name == name).copied()
    }

    /// Looks up a gauge by metric name.
    pub fn gauge(name: &str) -> Option<&'static Gauge> {
        GAUGES.iter().find(|g| g.name == name).copied()
    }

    /// Looks up a histogram by metric name.
    pub fn histogram(name: &str) -> Option<&'static Histogram> {
        HISTOGRAMS.iter().find(|h| h.name == name).copied()
    }

    /// Zeroes every registered metric (tests and between-run hygiene;
    /// concurrent recorders simply start over).
    pub fn reset() {
        for c in COUNTERS {
            c.reset();
        }
        for g in GAUGES {
            g.reset();
        }
        for h in HISTOGRAMS {
            h.reset();
        }
    }

    /// Installs a JSONL event sink and enables recording. Completed
    /// [`Span`]s stream event lines into it; [`Snapshot::write_jsonl`]
    /// appends the aggregate snapshot at end of run.
    pub fn install_jsonl_sink(sink: Box<dyn Write + Send>) {
        *SINK.lock().expect("telemetry sink poisoned") = Some(sink);
        EVENTS_ACTIVE.store(true, Ordering::Relaxed);
        Self::set_enabled(true);
    }

    /// Removes the JSONL sink (flushing it) and returns it. Recording
    /// stays in whatever enabled state it was.
    pub fn take_jsonl_sink() -> Option<Box<dyn Write + Send>> {
        EVENTS_ACTIVE.store(false, Ordering::Relaxed);
        let mut sink = SINK.lock().expect("telemetry sink poisoned").take();
        if let Some(w) = sink.as_mut() {
            let _ = w.flush();
        }
        sink
    }

    /// Runs `f` with a mutable borrow of the installed sink, if any.
    pub fn with_jsonl_sink<R>(f: impl FnOnce(&mut dyn Write) -> R) -> Option<R> {
        let mut guard = SINK.lock().expect("telemetry sink poisoned");
        guard.as_mut().map(|w| f(w.as_mut()))
    }

    /// Captures a point-in-time [`Snapshot`] of every registered
    /// metric plus the process peak RSS.
    pub fn snapshot() -> Snapshot {
        Snapshot::capture()
    }
}

fn emit_span_event(name: &'static str, ns: u64) {
    if !EVENTS_ACTIVE.load(Ordering::Relaxed) {
        return;
    }
    let thread = format!("{:?}", std::thread::current().id());
    Telemetry::with_jsonl_sink(|w| {
        let _ = writeln!(
            w,
            "{{\"type\":\"span\",\"name\":\"{name}\",\"ns\":{ns},\"thread\":\"{thread}\"}}"
        );
    });
}

// ---------------------------------------------------------------------
// Snapshot + exporters.
// ---------------------------------------------------------------------

/// Point-in-time value of one [`Counter`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterSample {
    /// Metric name.
    pub name: &'static str,
    /// `# HELP` text.
    pub help: &'static str,
    /// Counter value at capture time.
    pub value: u64,
}

/// Point-in-time level of one [`Gauge`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GaugeSample {
    /// Metric name.
    pub name: &'static str,
    /// `# HELP` text.
    pub help: &'static str,
    /// Gauge level at capture time.
    pub value: i64,
}

/// Point-in-time state of one [`Histogram`]. `buckets` holds
/// `(inclusive_upper_bound, count)` for the non-empty buckets only.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSample {
    /// Metric name.
    pub name: &'static str,
    /// `# HELP` text.
    pub help: &'static str,
    /// Observation count.
    pub count: u64,
    /// Sum of observed values.
    pub sum: u64,
    /// Non-empty buckets as `(inclusive upper bound, count)`.
    pub buckets: Vec<(u64, u64)>,
}

/// A consistent-enough point-in-time capture of the whole registry
/// (each metric is read atomically; the set is not fenced against
/// concurrent recorders). Both exporters render from the same capture,
/// so a JSONL snapshot and a Prometheus dump of the same `Snapshot`
/// always agree.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// Every registered counter.
    pub counters: Vec<CounterSample>,
    /// Every registered gauge.
    pub gauges: Vec<GaugeSample>,
    /// Every registered histogram.
    pub histograms: Vec<HistogramSample>,
    /// Peak resident set size of this process, if the platform exposes
    /// it (see [`peak_resident_mib`]).
    pub peak_resident_mib: Option<f64>,
}

impl Snapshot {
    /// Reads every registered metric now.
    pub fn capture() -> Self {
        let counters = COUNTERS
            .iter()
            .map(|c| CounterSample {
                name: c.name,
                help: c.help,
                value: c.get(),
            })
            .collect();
        let gauges = GAUGES
            .iter()
            .map(|g| GaugeSample {
                name: g.name,
                help: g.help,
                value: g.get(),
            })
            .collect();
        let histograms = HISTOGRAMS
            .iter()
            .map(|h| HistogramSample {
                name: h.name,
                help: h.help,
                count: h.count(),
                sum: h.sum(),
                buckets: (0..HISTOGRAM_BUCKETS)
                    .filter_map(|i| {
                        let n = h.bucket_count(i);
                        (n > 0).then(|| (Histogram::bucket_upper_bound(i), n))
                    })
                    .collect(),
            })
            .collect();
        Self {
            counters,
            gauges,
            histograms,
            peak_resident_mib: peak_resident_mib(),
        }
    }

    /// Writes the snapshot as JSONL: one `{"type":"snapshot",...}`
    /// header line, then one line per metric. Values are plain JSON
    /// numbers; the top histogram bucket's unbounded `le` is the string
    /// `"+Inf"`, as in Prometheus.
    ///
    /// # Errors
    ///
    /// Propagates write failures.
    pub fn write_jsonl<W: Write>(&self, w: &mut W) -> io::Result<()> {
        match self.peak_resident_mib {
            Some(mib) => writeln!(
                w,
                "{{\"type\":\"snapshot\",\"peak_resident_mib\":{mib:.3}}}"
            )?,
            None => writeln!(w, "{{\"type\":\"snapshot\",\"peak_resident_mib\":null}}")?,
        }
        for c in &self.counters {
            writeln!(
                w,
                "{{\"type\":\"counter\",\"name\":\"{}\",\"value\":{}}}",
                c.name, c.value
            )?;
        }
        for g in &self.gauges {
            writeln!(
                w,
                "{{\"type\":\"gauge\",\"name\":\"{}\",\"value\":{}}}",
                g.name, g.value
            )?;
        }
        for h in &self.histograms {
            write!(
                w,
                "{{\"type\":\"histogram\",\"name\":\"{}\",\"count\":{},\"sum\":{},\"buckets\":[",
                h.name, h.count, h.sum
            )?;
            for (i, (le, n)) in h.buckets.iter().enumerate() {
                let sep = if i == 0 { "" } else { "," };
                if *le == u64::MAX {
                    write!(w, "{sep}{{\"le\":\"+Inf\",\"count\":{n}}}")?;
                } else {
                    write!(w, "{sep}{{\"le\":{le},\"count\":{n}}}")?;
                }
            }
            writeln!(w, "]}}")?;
        }
        Ok(())
    }

    /// Renders the snapshot in the Prometheus text exposition format.
    /// Counters appear unconditionally; empty histograms are omitted to
    /// keep the dump readable, and histogram buckets are emitted
    /// cumulatively up to the last non-empty bound plus `+Inf`.
    pub fn render_prometheus(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for c in &self.counters {
            let _ = writeln!(out, "# HELP {} {}", c.name, c.help);
            let _ = writeln!(out, "# TYPE {} counter", c.name);
            let _ = writeln!(out, "{} {}", c.name, c.value);
        }
        for g in &self.gauges {
            let _ = writeln!(out, "# HELP {} {}", g.name, g.help);
            let _ = writeln!(out, "# TYPE {} gauge", g.name);
            let _ = writeln!(out, "{} {}", g.name, g.value);
        }
        for h in &self.histograms {
            if h.count == 0 {
                continue;
            }
            let _ = writeln!(out, "# HELP {} {}", h.name, h.help);
            let _ = writeln!(out, "# TYPE {} histogram", h.name);
            let mut cum = 0u64;
            for &(le, n) in &h.buckets {
                cum += n;
                if le == u64::MAX {
                    continue; // folded into +Inf below
                }
                let _ = writeln!(out, "{}_bucket{{le=\"{le}\"}} {cum}", h.name);
            }
            let _ = writeln!(out, "{}_bucket{{le=\"+Inf\"}} {}", h.name, h.count);
            let _ = writeln!(out, "{}_sum {}", h.name, h.sum);
            let _ = writeln!(out, "{}_count {}", h.name, h.count);
        }
        if let Some(mib) = self.peak_resident_mib {
            let _ = writeln!(
                out,
                "# HELP emmark_process_peak_resident_mib Peak resident set size (VmHWM)"
            );
            let _ = writeln!(out, "# TYPE emmark_process_peak_resident_mib gauge");
            let _ = writeln!(out, "emmark_process_peak_resident_mib {mib:.3}");
        }
        out
    }
}

/// Peak resident set size of this process in MiB, read from
/// `/proc/self/status` (`VmHWM`). `None` where procfs is unavailable.
/// The one shared implementation behind the CLI's exit line, bench
/// reports, and [`Snapshot::peak_resident_mib`].
pub fn peak_resident_mib() -> Option<f64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kib: f64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kib / 1024.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_covers_the_powers_of_two_edges() {
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 0);
        assert_eq!(Histogram::bucket_index(2), 1);
        assert_eq!(Histogram::bucket_index(3), 1);
        assert_eq!(Histogram::bucket_index(4), 2);
        for i in 1..64u32 {
            let v = 1u64 << i;
            assert_eq!(Histogram::bucket_index(v - 1), (i - 1) as usize);
            assert_eq!(Histogram::bucket_index(v), i as usize);
        }
        assert_eq!(Histogram::bucket_index(u64::MAX), 63);
    }

    #[test]
    fn bucket_upper_bounds_partition_the_range() {
        assert_eq!(Histogram::bucket_upper_bound(0), 1);
        assert_eq!(Histogram::bucket_upper_bound(1), 3);
        assert_eq!(Histogram::bucket_upper_bound(62), u64::MAX / 2);
        assert_eq!(Histogram::bucket_upper_bound(63), u64::MAX);
        // Every value's bucket bound is the smallest bound ≥ the value.
        for v in [0u64, 1, 2, 3, 4, 1023, 1024, u64::MAX - 1, u64::MAX] {
            let i = Histogram::bucket_index(v);
            assert!(Histogram::bucket_upper_bound(i) >= v);
            if i > 0 {
                assert!(Histogram::bucket_upper_bound(i - 1) < v);
            }
        }
    }

    #[test]
    fn histogram_records_land_in_their_buckets() {
        static H: Histogram = Histogram::new("test_edges", "test");
        for v in [0u64, 1, 2, 3, 1024, 1025] {
            H.record(v);
        }
        assert_eq!(H.count(), 6);
        assert_eq!(H.bucket_count(0), 2); // 0, 1
        assert_eq!(H.bucket_count(1), 2); // 2, 3
        assert_eq!(H.bucket_count(10), 2); // 1024, 1025
        assert_eq!(H.sum(), 2055);
        H.record(u64::MAX);
        assert_eq!(H.count(), 7);
        assert_eq!(H.bucket_count(63), 1);
    }

    #[test]
    fn gauges_move_in_both_directions() {
        static G: Gauge = Gauge::new("test_gauge", "test");
        assert_eq!(G.get(), 0);
        G.set(5);
        G.add(3);
        G.sub(10);
        assert_eq!(G.get(), -2);
        G.reset();
        assert_eq!(G.get(), 0);
    }

    #[test]
    fn prometheus_rendering_is_cumulative_and_typed() {
        let snap = Snapshot {
            counters: vec![CounterSample {
                name: "emmark_test_total",
                help: "a test counter",
                value: 7,
            }],
            gauges: vec![GaugeSample {
                name: "emmark_test_depth",
                help: "a test gauge",
                value: -2,
            }],
            histograms: vec![HistogramSample {
                name: "emmark_test_ns",
                help: "a test histogram",
                count: 3,
                sum: 1030,
                buckets: vec![(3, 2), (2047, 1)],
            }],
            peak_resident_mib: Some(12.5),
        };
        let text = snap.render_prometheus();
        assert!(text.contains("# TYPE emmark_test_total counter"));
        assert!(text.contains("emmark_test_total 7"));
        assert!(text.contains("# TYPE emmark_test_depth gauge"));
        assert!(text.contains("emmark_test_depth -2"));
        assert!(text.contains("# TYPE emmark_test_ns histogram"));
        assert!(text.contains("emmark_test_ns_bucket{le=\"3\"} 2"));
        assert!(text.contains("emmark_test_ns_bucket{le=\"2047\"} 3"));
        assert!(text.contains("emmark_test_ns_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("emmark_test_ns_sum 1030"));
        assert!(text.contains("emmark_test_ns_count 3"));
        assert!(text.contains("emmark_process_peak_resident_mib 12.500"));
    }

    #[test]
    fn registry_names_are_unique_and_conventional() {
        let mut names: Vec<&str> = Telemetry::counters()
            .iter()
            .map(|c| c.name())
            .chain(Telemetry::gauges().iter().map(|g| g.name()))
            .chain(Telemetry::histograms().iter().map(|h| h.name()))
            .collect();
        let total = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), total, "duplicate metric names");
        for c in Telemetry::counters() {
            assert!(c.name().starts_with("emmark_"), "{}", c.name());
            assert!(c.name().ends_with("_total"), "{}", c.name());
            assert!(!c.help().is_empty());
        }
        for g in Telemetry::gauges() {
            assert!(g.name().starts_with("emmark_"), "{}", g.name());
            assert!(!g.name().ends_with("_total"), "{}", g.name());
            assert!(!g.name().ends_with("_ns"), "{}", g.name());
            assert!(!g.help().is_empty());
        }
        for h in Telemetry::histograms() {
            assert!(h.name().starts_with("emmark_"), "{}", h.name());
            assert!(h.name().ends_with("_ns"), "{}", h.name());
            assert!(!h.help().is_empty());
        }
        assert!(Telemetry::counter("emmark_scoring_cells_scanned_total").is_some());
        assert!(Telemetry::gauge("emmark_service_queue_depth").is_some());
        assert!(Telemetry::histogram("emmark_stream_stall_ns").is_some());
        assert!(Telemetry::counter("no_such_metric").is_none());
    }

    #[test]
    fn peak_resident_is_plausible_on_linux() {
        if let Some(mib) = peak_resident_mib() {
            assert!(mib > 0.0 && mib < 1_000_000.0, "peak {mib} MiB");
        }
    }
}
