//! Fleet-scale provisioning — the insertion half of the paper's
//! deployment story, built score-once/insert-many.
//!
//! A proprietor stamps one model family onto thousands of edge devices:
//! every device carries the same ownership watermark plus its own
//! traitor-tracing fingerprint ([`crate::fingerprint`]). The serial
//! [`Fleet::provision`] path repeats two expensive, device-independent
//! computations per device — Eqs. 2–4 scoring to reproduce the
//! ownership locations and the fingerprint candidate pools, and a full
//! [`crate::deploy::encode_model`] pass to produce the device artifact.
//!
//! [`FleetProvisioner`] hoists everything device-independent into a
//! one-time cache per model family (the same
//! [`FamilyCache`](crate::fingerprint) the batch verifier uses):
//!
//! * the ownership watermark locations and the base-watermarked
//!   reference model,
//! * the per-layer fingerprint candidate pools (base-excluded), and
//! * the base artifact's **v2 encoding plus its layer-offset index**,
//!
//! after which provisioning one device is pure PRNG sampling plus a
//! delta patch: the device artifact is the base artifact with the
//! fingerprinted cells poked through the offset index
//! ([`crate::deploy::patch_artifact`]) — one buffer copy and
//! O(fingerprint bits) byte writes instead of an O(params) re-encode.
//! Batches fan out across scoped threads exactly like
//! [`FleetVerifier::verify_batch`].
//!
//! Cached and serial paths are bit-for-bit identical: provisioned
//! models equal [`Fleet::provision`]'s, and provisioned artifacts are
//! *byte*-identical to encoding the serial models. The module tests and
//! `tests/provision_equivalence.rs` pin both equivalences.

use crate::deploy::{encode_model, splice_patches, CellPatch, LayerIndexEntry, SparseArtifact};
use crate::fingerprint::{DeviceFingerprint, FamilyCache, Fleet};
use crate::fleet::{encode_registry, par_map, FleetVerifier};
use crate::signature::Signature;
use crate::store::StoreError;
use crate::telemetry::{self, Telemetry};
use crate::vault::FleetBundleWriter;
use crate::watermark::{apply_bits_at, Locations, OwnerSecrets, WatermarkConfig, WatermarkError};
use bytes::Bytes;
use emmark_quant::QuantizedModel;

/// One provisioned device: its registry entry and its deployable v2
/// artifact (byte-identical to encoding the serially fingerprinted
/// model).
#[derive(Debug, Clone, PartialEq)]
pub struct ProvisionedDevice {
    /// The registry entry [`Fleet::provision`] would record.
    pub fingerprint: DeviceFingerprint,
    /// The device's deploy-codec artifact (v2, indexed).
    pub artifact: Vec<u8>,
}

/// Batch provisioning engine: compute scores, pools, and the ownership
/// watermark once per model family, then stamp per-device fingerprints
/// in parallel.
///
/// Construction pays the device-independent costs once; every
/// provisioning call afterwards is read-only over the cache, so batches
/// parallelize freely.
#[derive(Debug, Clone)]
pub struct FleetProvisioner {
    base: OwnerSecrets,
    fingerprint_config: WatermarkConfig,
    cache: FamilyCache,
    /// The base-watermarked model encoded to v2 bytes, once.
    base_artifact: Bytes,
    /// The base artifact's layer-offset table, parsed once — the delta
    /// encoder patches device cells straight through it.
    index: Vec<LayerIndexEntry>,
}

impl FleetProvisioner {
    /// Builds the engine from the owner's secrets and the fingerprint
    /// parameters.
    ///
    /// # Errors
    ///
    /// Rejects an inconsistent secret bundle
    /// ([`WatermarkError::SignatureLength`],
    /// [`WatermarkError::InvalidConfig`]) and propagates
    /// location-reproduction errors.
    pub fn new(
        base: OwnerSecrets,
        fingerprint_config: WatermarkConfig,
    ) -> Result<Self, WatermarkError> {
        let cache = FamilyCache::build(&base, &fingerprint_config)?;
        let base_artifact = encode_model(&cache.base_deployed);
        let index = SparseArtifact::open(&base_artifact)
            .expect("freshly encoded artifact is well-formed")
            .layer_index()
            .to_vec();
        Ok(Self {
            base,
            fingerprint_config,
            cache,
            base_artifact,
            index,
        })
    }

    /// The fingerprint parameters devices are provisioned with.
    pub fn fingerprint_config(&self) -> &WatermarkConfig {
        &self.fingerprint_config
    }

    /// The shared family cache — sharded registry provisioning
    /// ([`crate::registry`]) derives per-device material through it.
    pub(crate) fn family_cache(&self) -> &FamilyCache {
        &self.cache
    }

    /// The shared base-watermarked model (ownership watermark only, no
    /// fingerprint) — the state every device artifact is a delta of.
    pub fn base_deployed(&self) -> &QuantizedModel {
        &self.cache.base_deployed
    }

    /// The base-watermarked model's v2 artifact bytes.
    pub fn base_artifact(&self) -> &[u8] {
        &self.base_artifact
    }

    /// Provisions one device as an in-memory model — bit-identical to
    /// [`Fleet::provision`] for the same device id, without mutating a
    /// registry.
    pub fn provision_model(&self, device_id: &str) -> (DeviceFingerprint, QuantizedModel) {
        let (fp, sig, locs) = self
            .cache
            .device_material(&self.fingerprint_config, device_id);
        let mut deployed = self.cache.base_deployed.clone();
        apply_bits_at(&mut deployed, &locs, &sig);
        (fp, deployed)
    }

    /// The delta a device's fingerprint makes against the base
    /// artifact: one [`CellPatch`] per signature bit. Shared by the
    /// buffered and streaming artifact emitters.
    fn device_patches(&self, sig: &Signature, locs: &Locations) -> Vec<CellPatch> {
        let n = self.cache.base_deployed.layer_count();
        let mut patches = Vec::with_capacity(sig.len());
        for (l, layer_locs) in locs.iter().enumerate() {
            let bits = sig.layer_bits(l, n);
            for (&f, &b) in layer_locs.iter().zip(bits) {
                // Same arithmetic as `bump_q_flat`: pools exclude
                // clamped cells, so the bump stays in range.
                let q = self.cache.base_deployed.layers[l].q_at_flat(f) + b;
                patches.push(CellPatch {
                    layer: l,
                    flat: f,
                    q,
                });
            }
        }
        patches
    }

    /// Provisions one device as a deployable artifact via the delta
    /// encoder: the cached base artifact with the device's fingerprint
    /// cells patched through the v2 offset index. Byte-identical to
    /// `encode_model(&fleet.provision(device_id))`, at one buffer copy
    /// plus O(fingerprint bits) cost.
    pub fn provision_artifact(&self, device_id: &str) -> ProvisionedDevice {
        let (fingerprint, sig, locs) = self
            .cache
            .device_material(&self.fingerprint_config, device_id);
        let patches = self.device_patches(&sig, &locs);
        let artifact = crate::deploy::patch_artifact(&self.base_artifact, &self.index, &patches)
            .expect("pool-derived patches are always in range");
        if Telemetry::enabled() {
            telemetry::PROVISION_DEVICES.incr();
        }
        ProvisionedDevice {
            fingerprint,
            artifact,
        }
    }

    /// Streams one device's artifact straight into `out` — the base
    /// artifact bytes with the fingerprint patches spliced in flight
    /// ([`splice_patches`]). Byte-identical to
    /// [`Self::provision_artifact`], but the device artifact is *never*
    /// resident: per-device memory is O(fingerprint bits) beyond the
    /// shared base, which is what lets `fleet-provision` stamp
    /// arbitrarily many devices under a fixed memory budget.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures from `out`.
    pub fn provision_artifact_into<W: std::io::Write>(
        &self,
        device_id: &str,
        out: W,
    ) -> Result<DeviceFingerprint, StoreError> {
        let (fingerprint, sig, locs) = self
            .cache
            .device_material(&self.fingerprint_config, device_id);
        let patches = self.device_patches(&sig, &locs);
        splice_patches(&self.base_artifact, &self.index, &patches, out)?;
        if Telemetry::enabled() {
            telemetry::PROVISION_DEVICES.incr();
        }
        Ok(fingerprint)
    }

    /// Streams a whole provisioned fleet into an EMFB bundle writer:
    /// per device, the entry header plus the spliced artifact bytes go
    /// straight to the underlying writer. Byte-identical to encoding
    /// [`Self::provision_batch`]'s output with
    /// [`crate::vault::encode_fleet_bundle`], at O(base artifact)
    /// total memory instead of O(fleet).
    ///
    /// Returns the registry entries in input order.
    ///
    /// # Errors
    ///
    /// Propagates writer failures.
    pub fn provision_bundle_into<W: std::io::Write, S: AsRef<str>>(
        &self,
        device_ids: &[S],
        out: W,
    ) -> Result<Vec<DeviceFingerprint>, StoreError> {
        let mut writer = FleetBundleWriter::new(out, &self.fingerprint_config, device_ids.len())?;
        let mut devices = Vec::with_capacity(device_ids.len());
        for id in device_ids {
            let (fingerprint, sig, locs) = self
                .cache
                .device_material(&self.fingerprint_config, id.as_ref());
            let patches = self.device_patches(&sig, &locs);
            writer.append_streamed(&fingerprint, self.base_artifact.len(), |w| {
                splice_patches(&self.base_artifact, &self.index, &patches, w)
            })?;
            if Telemetry::enabled() {
                telemetry::PROVISION_DEVICES.incr();
            }
            devices.push(fingerprint);
        }
        writer.finish()?;
        Ok(devices)
    }

    /// Provisions a batch of device ids in parallel on `jobs` worker
    /// threads (`None` = one per available core). Output order matches
    /// input order, and every artifact is byte-for-byte what
    /// [`Self::provision_artifact`] returns serially.
    pub fn provision_batch<S: AsRef<str> + Sync>(
        &self,
        device_ids: &[S],
        jobs: Option<usize>,
    ) -> Vec<ProvisionedDevice> {
        par_map(device_ids, jobs, |id| self.provision_artifact(id.as_ref()))
    }

    /// The fleet registry for a set of provisioned devices, in the
    /// [`crate::fleet::encode_registry`] wire format `fleet-verify`
    /// consumes.
    pub fn registry(&self, provisioned: &[ProvisionedDevice]) -> Bytes {
        let devices: Vec<DeviceFingerprint> =
            provisioned.iter().map(|p| p.fingerprint.clone()).collect();
        encode_registry(&self.fingerprint_config, &devices)
    }

    /// A [`FleetVerifier`] over the same family cache — the
    /// provision→verify flow without paying the Eqs. 2–4 scoring a
    /// second time. Verdicts are bit-identical to
    /// [`FleetVerifier::from_parts`] on the same inputs.
    pub fn verifier(&self, devices: Vec<DeviceFingerprint>) -> FleetVerifier {
        if Telemetry::enabled() {
            telemetry::FLEET_CACHE_HITS.incr();
        }
        FleetVerifier::from_cache(
            self.base.clone(),
            self.fingerprint_config,
            devices,
            self.cache.clone(),
        )
    }

    /// Converts into the serial [`Fleet`] API with `devices` already
    /// registered (e.g. to keep provisioning incrementally).
    pub fn into_fleet(self, devices: Vec<DeviceFingerprint>) -> Fleet {
        Fleet::with_devices(self.base, self.fingerprint_config, devices)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deploy::decode_model;
    use emmark_nanolm::config::ModelConfig;
    use emmark_nanolm::TransformerModel;
    use emmark_quant::awq::{awq, AwqConfig};

    fn base_secrets() -> OwnerSecrets {
        let mut model = TransformerModel::new(ModelConfig::tiny_test());
        let calib: Vec<Vec<u32>> = (0..4u32)
            .map(|s| (0..16u32).map(|i| (i * 7 + s) % 31).collect())
            .collect();
        let stats = model.collect_activation_stats(&calib);
        let qm = awq(&model, &stats, &AwqConfig::default());
        let cfg = WatermarkConfig {
            bits_per_layer: 4,
            pool_ratio: 10,
            ..Default::default()
        };
        OwnerSecrets::new(qm, stats, cfg, 0xF1EE7)
    }

    fn fp_cfg() -> WatermarkConfig {
        WatermarkConfig {
            bits_per_layer: 3,
            pool_ratio: 10,
            selection_seed: 0xDE11CE,
            ..Default::default()
        }
    }

    #[test]
    fn provisioned_models_match_the_serial_fleet_path() {
        let provisioner = FleetProvisioner::new(base_secrets(), fp_cfg()).expect("cache");
        let mut fleet = Fleet::new(base_secrets(), fp_cfg());
        for id in ["alice", "bob", "carol"] {
            let serial = fleet.provision(id).expect("provision");
            let (fp, cached) = provisioner.provision_model(id);
            assert!(cached.same_weights(&serial), "{id}: models diverged");
            assert_eq!(
                &fp,
                fleet.devices().last().expect("registered"),
                "{id}: registry entries diverged"
            );
        }
    }

    #[test]
    fn delta_patched_artifacts_are_byte_identical_to_serial_encodes() {
        let provisioner = FleetProvisioner::new(base_secrets(), fp_cfg()).expect("cache");
        let mut fleet = Fleet::new(base_secrets(), fp_cfg());
        for id in ["edge-00", "edge-01", "edge-02"] {
            let serial_bytes = encode_model(&fleet.provision(id).expect("provision")).to_vec();
            let provisioned = provisioner.provision_artifact(id);
            assert_eq!(
                provisioned.artifact, serial_bytes,
                "{id}: delta patch must be byte-identical to a full re-encode"
            );
        }
    }

    #[test]
    fn batch_is_order_preserving_and_identical_serial_and_parallel() {
        let ids: Vec<String> = (0..7).map(|i| format!("edge-{i:02}")).collect();
        let provisioner = FleetProvisioner::new(base_secrets(), fp_cfg()).expect("cache");
        let serial = provisioner.provision_batch(&ids, Some(1));
        let parallel = provisioner.provision_batch(&ids, Some(4));
        assert_eq!(serial, parallel);
        for (id, p) in ids.iter().zip(&serial) {
            assert_eq!(&p.fingerprint.device_id, id);
        }
    }

    #[test]
    fn provisioned_artifacts_verify_and_attribute_through_the_shared_cache() {
        let provisioner = FleetProvisioner::new(base_secrets(), fp_cfg()).expect("cache");
        let ids = ["a", "b", "c"];
        let provisioned = provisioner.provision_batch(&ids, None);
        let devices: Vec<DeviceFingerprint> =
            provisioned.iter().map(|p| p.fingerprint.clone()).collect();
        let verifier = provisioner.verifier(devices.clone());
        // Must be bit-identical to a verifier built from scratch.
        let from_scratch =
            FleetVerifier::from_parts(base_secrets(), fp_cfg(), devices).expect("cache");
        for (i, p) in provisioned.iter().enumerate() {
            let verdict = verifier.verify_artifact(&p.artifact, -6.0).expect("verify");
            let scratch = from_scratch
                .verify_artifact(&p.artifact, -6.0)
                .expect("verify");
            assert_eq!(verdict, scratch, "artifact {i}");
            assert_eq!(verdict.ownership.wer(), 100.0, "artifact {i}");
            let (device, _) = verdict.attribution.expect("attributed");
            assert_eq!(device.device_id, ids[i], "artifact {i}");
        }
    }

    #[test]
    fn registry_from_provisioner_matches_the_serial_fleet_registry() {
        let provisioner = FleetProvisioner::new(base_secrets(), fp_cfg()).expect("cache");
        let mut fleet = Fleet::new(base_secrets(), fp_cfg());
        let ids = ["x", "y"];
        for id in ids {
            fleet.provision(id).expect("provision");
        }
        let provisioned = provisioner.provision_batch(&ids, None);
        let bytes = provisioner.registry(&provisioned);
        assert_eq!(
            bytes,
            encode_registry(&fleet.fingerprint_config, fleet.devices())
        );
    }

    #[test]
    fn base_artifact_decodes_to_the_base_deployed_model() {
        let provisioner = FleetProvisioner::new(base_secrets(), fp_cfg()).expect("cache");
        let decoded = decode_model(provisioner.base_artifact()).expect("decode");
        assert!(decoded.same_weights(provisioner.base_deployed()));
        // The base artifact carries the ownership watermark but no
        // fingerprint: never attributed to any provisioned device.
        let provisioned = provisioner.provision_batch(&["a", "b"], None);
        let devices = provisioned.iter().map(|p| p.fingerprint.clone()).collect();
        let verifier = provisioner.verifier(devices);
        let verdict = verifier
            .verify_artifact(provisioner.base_artifact(), -6.0)
            .expect("verify");
        assert_eq!(verdict.ownership.wer(), 100.0);
        assert!(verdict.attribution.is_none(), "false attribution");
    }

    #[test]
    fn into_fleet_continues_the_registry_where_the_batch_left_off() {
        let provisioner = FleetProvisioner::new(base_secrets(), fp_cfg()).expect("cache");
        let provisioned = provisioner.provision_batch(&["a", "b"], None);
        let devices: Vec<DeviceFingerprint> =
            provisioned.iter().map(|p| p.fingerprint.clone()).collect();
        let mut fleet = provisioner.into_fleet(devices.clone());
        assert_eq!(fleet.devices(), devices.as_slice());
        let c = fleet.provision("c").expect("provision");
        assert_eq!(fleet.devices().len(), 3);
        // The incremental device matches a from-scratch serial fleet.
        let mut serial = Fleet::new(base_secrets(), fp_cfg());
        for id in ["a", "b"] {
            serial.provision(id).expect("provision");
        }
        let serial_c = serial.provision("c").expect("provision");
        assert!(c.same_weights(&serial_c));
    }

    #[test]
    fn corrupt_secret_bundle_is_rejected_at_construction() {
        let base = base_secrets();
        let mut bad_fp = fp_cfg();
        bad_fp.bits_per_layer = 0;
        assert!(matches!(
            FleetProvisioner::new(base.clone(), bad_fp),
            Err(WatermarkError::InvalidConfig(_))
        ));
        let mut bad = base;
        bad.signature = crate::signature::Signature::generate(bad.signature.len() + 1, 9);
        assert!(matches!(
            FleetProvisioner::new(bad, fp_cfg()),
            Err(WatermarkError::SignatureLength { .. })
        ));
    }
}
