//! Versioned, portable pseudo-random number generation.
//!
//! Watermark extraction must reproduce the exact weight locations chosen at
//! insertion time from `(seed, W, A_f, alpha, beta)` — potentially years
//! later, on a different machine, against a different build. The stream of
//! `rand::StdRng` is documented as unstable across crate releases, which
//! would silently invalidate every previously issued watermark. We therefore
//! pin the algorithm: [`SplitMix64`] for seeding and [`Xoshiro256`]
//! (xoshiro256++) for the bulk stream, both bit-for-bit reproducible and
//! specified in this module forever.

/// SplitMix64 generator, used to expand a single `u64` seed into the
/// xoshiro256++ state.
///
/// # Examples
///
/// ```
/// use emmark_tensor::rng::SplitMix64;
/// let mut a = SplitMix64::new(7);
/// let mut b = SplitMix64::new(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Returns the next 64 pseudo-random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// xoshiro256++ generator — the workspace's only source of randomness on
/// the watermark-critical path.
///
/// # Examples
///
/// ```
/// use emmark_tensor::rng::Xoshiro256;
/// let mut rng = Xoshiro256::seed_from_u64(100);
/// let x = rng.uniform();
/// assert!((0.0..1.0).contains(&x));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    /// Seeds the generator by expanding `seed` through [`SplitMix64`], as
    /// recommended by the xoshiro authors.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        Self {
            s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()],
        }
    }

    /// Returns the next 64 pseudo-random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = (self.s[0].wrapping_add(self.s[3]))
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)`, built from the top 53 bits.
    pub fn uniform(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f32` in `[lo, hi)`.
    pub fn uniform_range(&mut self, lo: f32, hi: f32) -> f32 {
        lo + (hi - lo) * self.uniform() as f32
    }

    /// Unbiased integer in `[0, n)` via Lemire-style rejection.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below(0) is undefined");
        let n = n as u64;
        // Rejection sampling on the 64-bit stream keeps the draw unbiased
        // for every n, which matters because selection bias would leak
        // watermark positions.
        let zone = u64::MAX - (u64::MAX % n);
        loop {
            let v = self.next_u64();
            if v < zone {
                return (v % n) as usize;
            }
        }
    }

    /// Standard normal variate via Box-Muller.
    pub fn normal(&mut self) -> f64 {
        // Avoid ln(0) by nudging u1 away from zero.
        let u1 = self.uniform().max(f64::MIN_POSITIVE);
        let u2 = self.uniform();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }

    /// Normal variate with the given mean and standard deviation, as `f32`.
    pub fn normal_f32(&mut self, mean: f32, std_dev: f32) -> f32 {
        mean + std_dev * self.normal() as f32
    }

    /// A Rademacher draw: `+1` or `-1` with equal probability.
    pub fn rademacher(&mut self) -> i8 {
        if self.next_u64() & 1 == 0 {
            1
        } else {
            -1
        }
    }

    /// Fisher-Yates shuffles `items` in place.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below(i + 1);
            items.swap(i, j);
        }
    }

    /// Samples `k` distinct indices from `[0, n)` without replacement.
    ///
    /// The returned order is the sampling order (not sorted); callers that
    /// need a canonical order should sort. Uses a partial Fisher-Yates over
    /// an index vector, which is O(n) — fine for the layer sizes involved.
    ///
    /// # Panics
    ///
    /// Panics if `k > n`.
    pub fn sample_without_replacement(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "cannot sample {k} items from a population of {n}");
        let mut idx: Vec<usize> = (0..n).collect();
        for i in 0..k {
            let j = i + self.below(n - i);
            idx.swap(i, j);
        }
        idx.truncate(k);
        idx
    }

    /// Samples one element of `items` uniformly.
    ///
    /// # Panics
    ///
    /// Panics if `items` is empty.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.below(items.len())]
    }

    /// Samples an index from a non-negative weight vector proportionally to
    /// the weights.
    ///
    /// # Panics
    ///
    /// Panics if the weights are empty or sum to zero.
    pub fn weighted_index(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().sum();
        assert!(
            total > 0.0,
            "weighted_index requires a positive total weight"
        );
        let mut target = self.uniform() * total;
        for (i, &w) in weights.iter().enumerate() {
            target -= w;
            if target < 0.0 {
                return i;
            }
        }
        weights.len() - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The first few outputs of splitmix64(0) from the reference C
    /// implementation by Sebastiano Vigna. Pinning them guards the stream
    /// against accidental edits: changing these constants invalidates all
    /// previously inserted watermarks.
    #[test]
    fn splitmix64_reference_vector() {
        let mut rng = SplitMix64::new(0);
        assert_eq!(rng.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(rng.next_u64(), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(rng.next_u64(), 0x06C4_5D18_8009_454F);
    }

    #[test]
    fn xoshiro_is_deterministic_per_seed() {
        let mut a = Xoshiro256::seed_from_u64(100);
        let mut b = Xoshiro256::seed_from_u64(100);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Xoshiro256::seed_from_u64(101);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn uniform_in_unit_interval() {
        let mut rng = Xoshiro256::seed_from_u64(1);
        for _ in 0..10_000 {
            let u = rng.uniform();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn below_is_in_range_and_roughly_uniform() {
        let mut rng = Xoshiro256::seed_from_u64(2);
        let n = 10;
        let mut counts = vec![0usize; n];
        for _ in 0..50_000 {
            counts[rng.below(n)] += 1;
        }
        for &c in &counts {
            // Expect 5000 per bucket; allow generous slack.
            assert!((4000..6000).contains(&c), "bucket count {c} out of range");
        }
    }

    #[test]
    fn normal_has_sane_moments() {
        let mut rng = Xoshiro256::seed_from_u64(3);
        let n = 100_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.normal()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn rademacher_is_balanced() {
        let mut rng = Xoshiro256::seed_from_u64(4);
        let sum: i64 = (0..100_000).map(|_| rng.rademacher() as i64).sum();
        assert!(sum.abs() < 1500, "rademacher imbalance {sum}");
    }

    #[test]
    fn sample_without_replacement_is_distinct_and_complete() {
        let mut rng = Xoshiro256::seed_from_u64(5);
        let sample = rng.sample_without_replacement(100, 100);
        let mut sorted = sample.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());

        let partial = rng.sample_without_replacement(1000, 10);
        let mut dedup = partial.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 10);
        assert!(partial.iter().all(|&i| i < 1000));
    }

    #[test]
    #[should_panic(expected = "cannot sample")]
    fn oversampling_panics() {
        let mut rng = Xoshiro256::seed_from_u64(6);
        let _ = rng.sample_without_replacement(3, 4);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Xoshiro256::seed_from_u64(7);
        let mut items: Vec<u32> = (0..64).collect();
        rng.shuffle(&mut items);
        let mut sorted = items.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..64).collect::<Vec<_>>());
    }

    #[test]
    fn weighted_index_respects_weights() {
        let mut rng = Xoshiro256::seed_from_u64(8);
        let weights = [1.0, 0.0, 3.0];
        let mut counts = [0usize; 3];
        for _ in 0..40_000 {
            counts[rng.weighted_index(&weights)] += 1;
        }
        assert_eq!(counts[1], 0);
        let ratio = counts[2] as f64 / counts[0] as f64;
        assert!((2.5..3.5).contains(&ratio), "ratio {ratio}");
    }
}
