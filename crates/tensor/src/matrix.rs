//! Dense row-major `f32` matrix used throughout the workspace.
//!
//! The EmMark reproduction deliberately avoids heavyweight tensor
//! frameworks: every model in the paper's pipeline (nano-LM forward and
//! backward passes, quantizer calibration, watermark scoring) operates on
//! plain two-dimensional dense data, so a small, fully-tested matrix type
//! keeps the substrate auditable.

use serde::{Deserialize, Serialize};

/// A dense, row-major matrix of `f32` values.
///
/// # Examples
///
/// ```
/// use emmark_tensor::Matrix;
///
/// let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
/// let b = Matrix::eye(2);
/// let c = a.matmul(&b);
/// assert_eq!(c, a);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Creates a `rows x cols` matrix filled with zeros.
    ///
    /// # Examples
    ///
    /// ```
    /// # use emmark_tensor::Matrix;
    /// let m = Matrix::zeros(2, 3);
    /// assert_eq!(m.shape(), (2, 3));
    /// assert!(m.iter().all(|&v| v == 0.0));
    /// ```
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a `rows x cols` matrix filled with `value`.
    pub fn full(rows: usize, cols: usize, value: f32) -> Self {
        Self {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates the `n x n` identity matrix.
    pub fn eye(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.data[i * n + i] = 1.0;
        }
        m
    }

    /// Creates a matrix from a row-major data vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "data length {} does not match shape {}x{}",
            data.len(),
            rows,
            cols
        );
        Self { rows, cols, data }
    }

    /// Creates a matrix from a slice of row slices.
    ///
    /// # Panics
    ///
    /// Panics if the rows have inconsistent lengths.
    pub fn from_rows(rows: &[&[f32]]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "ragged rows are not allowed");
            data.extend_from_slice(row);
        }
        Self {
            rows: r,
            cols: c,
            data,
        }
    }

    /// Creates a matrix whose entry `(i, j)` is `f(i, j)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Self { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the matrix holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the backing row-major buffer.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the backing row-major buffer.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the matrix, returning the backing buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element at `(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of bounds.
    #[inline]
    pub fn at(&self, i: usize, j: usize) -> f32 {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.cols + j]
    }

    /// Sets the element at `(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of bounds.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f32) {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.cols + j] = v;
    }

    /// Immutable view of row `i`.
    #[inline]
    pub fn row(&self, i: usize) -> &[f32] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutable view of row `i`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f32] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Copies column `j` into a new vector.
    pub fn col(&self, j: usize) -> Vec<f32> {
        (0..self.rows).map(|i| self.at(i, j)).collect()
    }

    /// Iterates over all elements in row-major order.
    pub fn iter(&self) -> std::slice::Iter<'_, f32> {
        self.data.iter()
    }

    /// Mutably iterates over all elements in row-major order.
    pub fn iter_mut(&mut self) -> std::slice::IterMut<'_, f32> {
        self.data.iter_mut()
    }

    /// Matrix product `self * other`.
    ///
    /// Uses an i-k-j loop order so the inner loop streams over contiguous
    /// rows of both operands.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != other.rows()`.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.rows,
            "matmul shape mismatch: {}x{} * {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            let a_row = self.row(i);
            let out_row = &mut out.data[i * other.cols..(i + 1) * other.cols];
            for (k, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let b_row = &other.data[k * other.cols..(k + 1) * other.cols];
                for (o, &b) in out_row.iter_mut().zip(b_row.iter()) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Matrix product `self * other^T`.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != other.cols()`.
    pub fn matmul_transb(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.cols,
            "matmul_transb shape mismatch: {}x{} * ({}x{})^T",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.rows, other.rows);
        for i in 0..self.rows {
            let a_row = self.row(i);
            for j in 0..other.rows {
                let b_row = other.row(j);
                let mut acc = 0.0f32;
                for (&a, &b) in a_row.iter().zip(b_row.iter()) {
                    acc += a * b;
                }
                out.data[i * other.rows + j] = acc;
            }
        }
        out
    }

    /// Matrix product `self^T * other`.
    ///
    /// # Panics
    ///
    /// Panics if `self.rows() != other.rows()`.
    pub fn transa_matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.rows, other.rows,
            "transa_matmul shape mismatch: ({}x{})^T * {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.cols, other.cols);
        for k in 0..self.rows {
            let a_row = self.row(k);
            let b_row = other.row(k);
            for (i, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let out_row = &mut out.data[i * other.cols..(i + 1) * other.cols];
                for (o, &b) in out_row.iter_mut().zip(b_row.iter()) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out.data[j * self.rows + i] = self.data[i * self.cols + j];
            }
        }
        out
    }

    /// Element-wise sum with `other`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.shape(), other.shape(), "add shape mismatch");
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a + b)
            .collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// In-place element-wise accumulation `self += other`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add_assign(&mut self, other: &Matrix) {
        assert_eq!(self.shape(), other.shape(), "add_assign shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// In-place scaled accumulation `self += alpha * other`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn axpy(&mut self, alpha: f32, other: &Matrix) {
        assert_eq!(self.shape(), other.shape(), "axpy shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
    }

    /// Element-wise difference `self - other`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn sub(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.shape(), other.shape(), "sub shape mismatch");
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a - b)
            .collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Returns `self` scaled by `alpha`.
    pub fn scale(&self, alpha: f32) -> Matrix {
        let data = self.data.iter().map(|a| a * alpha).collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Scales every element in place.
    pub fn scale_in_place(&mut self, alpha: f32) {
        for v in &mut self.data {
            *v *= alpha;
        }
    }

    /// Element-wise (Hadamard) product.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn hadamard(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.shape(), other.shape(), "hadamard shape mismatch");
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a * b)
            .collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Applies `f` to every element, returning a new matrix.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Matrix {
        let data = self.data.iter().map(|&v| f(v)).collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Maximum absolute value over all elements (0.0 for an empty matrix).
    pub fn abs_max(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, &v| m.max(v.abs()))
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data
            .iter()
            .map(|&v| (v as f64) * (v as f64))
            .sum::<f64>()
            .sqrt()
    }

    /// Mean of all elements (0.0 for an empty matrix).
    pub fn mean(&self) -> f64 {
        if self.data.is_empty() {
            return 0.0;
        }
        self.data.iter().map(|&v| v as f64).sum::<f64>() / self.data.len() as f64
    }

    /// Per-column maximum absolute value.
    pub fn col_abs_max(&self) -> Vec<f32> {
        let mut out = vec![0.0f32; self.cols];
        for i in 0..self.rows {
            for (j, &v) in self.row(i).iter().enumerate() {
                out[j] = out[j].max(v.abs());
            }
        }
        out
    }

    /// Per-column mean absolute value.
    pub fn col_abs_mean(&self) -> Vec<f32> {
        let mut out = vec![0.0f64; self.cols];
        for i in 0..self.rows {
            for (j, &v) in self.row(i).iter().enumerate() {
                out[j] += v.abs() as f64;
            }
        }
        out.iter()
            .map(|&s| (s / self.rows.max(1) as f64) as f32)
            .collect()
    }

    /// Per-row maximum absolute value.
    pub fn row_abs_max(&self) -> Vec<f32> {
        (0..self.rows)
            .map(|i| self.row(i).iter().fold(0.0f32, |m, &v| m.max(v.abs())))
            .collect()
    }

    /// Extracts rows `[start, end)` into a new matrix.
    ///
    /// # Panics
    ///
    /// Panics if `start > end` or `end > rows`.
    pub fn slice_rows(&self, start: usize, end: usize) -> Matrix {
        assert!(start <= end && end <= self.rows, "row slice out of bounds");
        Matrix {
            rows: end - start,
            cols: self.cols,
            data: self.data[start * self.cols..end * self.cols].to_vec(),
        }
    }

    /// Vertically stacks `self` on top of `other`.
    ///
    /// # Panics
    ///
    /// Panics if the column counts differ.
    pub fn vstack(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.cols, "vstack column mismatch");
        let mut data = self.data.clone();
        data.extend_from_slice(&other.data);
        Matrix {
            rows: self.rows + other.rows,
            cols: self.cols,
            data,
        }
    }
}

impl std::fmt::Display for Matrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows.min(8) {
            write!(f, "  ")?;
            for j in 0..self.cols.min(8) {
                write!(f, "{:>9.4} ", self.at(i, j))?;
            }
            if self.cols > 8 {
                write!(f, "...")?;
            }
            writeln!(f)?;
        }
        if self.rows > 8 {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_has_expected_shape_and_content() {
        let m = Matrix::zeros(3, 4);
        assert_eq!(m.shape(), (3, 4));
        assert_eq!(m.len(), 12);
        assert!(m.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn eye_is_identity_under_matmul() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let i = Matrix::eye(3);
        assert_eq!(a.matmul(&i), a);
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn matmul_transb_matches_explicit_transpose() {
        let a = Matrix::from_fn(3, 5, |i, j| (i * 5 + j) as f32 * 0.1);
        let b = Matrix::from_fn(4, 5, |i, j| (i as f32) - (j as f32) * 0.3);
        let direct = a.matmul_transb(&b);
        let via_t = a.matmul(&b.transpose());
        for (x, y) in direct.iter().zip(via_t.iter()) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn transa_matmul_matches_explicit_transpose() {
        let a = Matrix::from_fn(5, 3, |i, j| (i + 2 * j) as f32 * 0.25);
        let b = Matrix::from_fn(5, 4, |i, j| (i as f32 * 1.5) - j as f32);
        let direct = a.transa_matmul(&b);
        let via_t = a.transpose().matmul(&b);
        for (x, y) in direct.iter().zip(via_t.iter()) {
            assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_fn(4, 7, |i, j| (i * 31 + j * 7) as f32);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn add_sub_roundtrip() {
        let a = Matrix::from_fn(2, 3, |i, j| (i + j) as f32);
        let b = Matrix::from_fn(2, 3, |i, j| (i * j) as f32 + 1.0);
        assert_eq!(a.add(&b).sub(&b), a);
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = Matrix::zeros(2, 2);
        let b = Matrix::full(2, 2, 3.0);
        a.axpy(0.5, &b);
        assert_eq!(a, Matrix::full(2, 2, 1.5));
    }

    #[test]
    fn col_stats() {
        let m = Matrix::from_rows(&[&[1.0, -4.0], &[-3.0, 2.0]]);
        assert_eq!(m.col_abs_max(), vec![3.0, 4.0]);
        assert_eq!(m.col_abs_mean(), vec![2.0, 3.0]);
        assert_eq!(m.row_abs_max(), vec![4.0, 3.0]);
    }

    #[test]
    fn slice_and_stack() {
        let m = Matrix::from_fn(4, 2, |i, j| (i * 2 + j) as f32);
        let top = m.slice_rows(0, 2);
        let bottom = m.slice_rows(2, 4);
        assert_eq!(top.vstack(&bottom), m);
    }

    #[test]
    fn abs_max_and_norm() {
        let m = Matrix::from_rows(&[&[3.0, -4.0]]);
        assert_eq!(m.abs_max(), 4.0);
        assert!((m.frobenius_norm() - 5.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn matmul_shape_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn display_is_nonempty() {
        let m = Matrix::zeros(1, 1);
        assert!(!format!("{m}").is_empty());
    }
}
