//! Orthonormal discrete cosine transforms (DCT-II / DCT-III).
//!
//! The SpecMark baseline ([Chen et al., INTERSPEECH 2020], §2.2 of the
//! EmMark paper) embeds spread-spectrum signatures in the high-frequency
//! region of the DCT of the model weights. This module provides the exact
//! forward/inverse pair it needs. The naive O(n²) formulation is used on
//! purpose: layer weight vectors in this reproduction are small, and an
//! auditable closed-form beats an FFT-based fast path for a security
//! artifact.

/// Orthonormal DCT-II ("the" DCT) of `input`.
///
/// With the orthonormal scaling used here, [`dct3`] is the exact inverse.
///
/// # Examples
///
/// ```
/// use emmark_tensor::dct::{dct2, dct3};
/// let x = vec![1.0, 2.0, 3.0, 4.0];
/// let back = dct3(&dct2(&x));
/// for (a, b) in x.iter().zip(back.iter()) {
///     assert!((a - b).abs() < 1e-9);
/// }
/// ```
pub fn dct2(input: &[f64]) -> Vec<f64> {
    let n = input.len();
    if n == 0 {
        return Vec::new();
    }
    let nf = n as f64;
    let mut out = Vec::with_capacity(n);
    for k in 0..n {
        let mut acc = 0.0;
        for (i, &x) in input.iter().enumerate() {
            acc += x * (std::f64::consts::PI / nf * (i as f64 + 0.5) * k as f64).cos();
        }
        let scale = if k == 0 {
            (1.0 / nf).sqrt()
        } else {
            (2.0 / nf).sqrt()
        };
        out.push(acc * scale);
    }
    out
}

/// Orthonormal DCT-III, the inverse of [`dct2`].
pub fn dct3(input: &[f64]) -> Vec<f64> {
    let n = input.len();
    if n == 0 {
        return Vec::new();
    }
    let nf = n as f64;
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let mut acc = input[0] * (1.0 / nf).sqrt();
        for (k, &x) in input.iter().enumerate().skip(1) {
            acc += x
                * (2.0 / nf).sqrt()
                * (std::f64::consts::PI / nf * (i as f64 + 0.5) * k as f64).cos();
        }
        out.push(acc);
    }
    out
}

/// Index of the first coefficient in the "high-frequency region": the top
/// `fraction` of the spectrum, as SpecMark embeds there.
///
/// # Panics
///
/// Panics if `fraction` is outside `(0, 1]`.
pub fn high_frequency_start(n: usize, fraction: f64) -> usize {
    assert!(
        fraction > 0.0 && fraction <= 1.0,
        "fraction must be in (0, 1]"
    );
    let band = ((n as f64) * fraction).ceil() as usize;
    n.saturating_sub(band.max(1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Xoshiro256;

    fn assert_close(a: &[f64], b: &[f64], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b.iter()) {
            assert!((x - y).abs() < tol, "{x} vs {y}");
        }
    }

    #[test]
    fn dct_roundtrip_random_vectors() {
        let mut rng = Xoshiro256::seed_from_u64(42);
        for n in [1usize, 2, 3, 8, 17, 64, 129] {
            let x: Vec<f64> = (0..n).map(|_| rng.normal()).collect();
            let back = dct3(&dct2(&x));
            assert_close(&x, &back, 1e-9);
        }
    }

    #[test]
    fn dct_of_constant_is_dc_only() {
        let x = vec![3.0; 16];
        let y = dct2(&x);
        assert!((y[0] - 3.0 * 16f64.sqrt()).abs() < 1e-9);
        for &c in &y[1..] {
            assert!(c.abs() < 1e-9);
        }
    }

    #[test]
    fn dct_preserves_energy() {
        // Orthonormal transforms are isometries (Parseval).
        let mut rng = Xoshiro256::seed_from_u64(9);
        let x: Vec<f64> = (0..100).map(|_| rng.normal()).collect();
        let y = dct2(&x);
        let ex: f64 = x.iter().map(|v| v * v).sum();
        let ey: f64 = y.iter().map(|v| v * v).sum();
        assert!((ex - ey).abs() < 1e-8, "{ex} vs {ey}");
    }

    #[test]
    fn empty_input_is_empty_output() {
        assert!(dct2(&[]).is_empty());
        assert!(dct3(&[]).is_empty());
    }

    #[test]
    fn high_frequency_band_boundaries() {
        assert_eq!(high_frequency_start(100, 0.25), 75);
        assert_eq!(high_frequency_start(100, 1.0), 0);
        // At least one coefficient is always in the band.
        assert_eq!(high_frequency_start(4, 0.01), 3);
    }

    #[test]
    #[should_panic(expected = "fraction must be in (0, 1]")]
    fn zero_fraction_panics() {
        let _ = high_frequency_start(10, 0.0);
    }
}
