//! Small dense linear-algebra kernels (f64) for the GPTQ quantizer.
//!
//! GPTQ needs the inverse of a symmetric positive-definite Hessian
//! `H = XᵀX + λI` and an upper-triangular Cholesky factor of that inverse.
//! Layer widths in this reproduction are a few hundred, so straightforward
//! O(n³) routines are more than fast enough and easy to audit.

/// Lower-triangular Cholesky factor `L` of a symmetric positive-definite
/// matrix `a` (row-major `n x n`), so `a = L Lᵀ`.
///
/// # Errors
///
/// Returns `Err` if the matrix is not positive definite (a pivot is not
/// strictly positive).
pub fn cholesky_lower(a: &[f64], n: usize) -> Result<Vec<f64>, String> {
    assert_eq!(a.len(), n * n, "matrix size mismatch");
    let mut l = vec![0.0f64; n * n];
    for i in 0..n {
        for j in 0..=i {
            let mut sum = a[i * n + j];
            for k in 0..j {
                sum -= l[i * n + k] * l[j * n + k];
            }
            if i == j {
                if sum <= 0.0 {
                    return Err(format!("matrix not positive definite at pivot {i} ({sum})"));
                }
                l[i * n + j] = sum.sqrt();
            } else {
                l[i * n + j] = sum / l[j * n + j];
            }
        }
    }
    Ok(l)
}

/// Solves `L y = b` for lower-triangular `L` (forward substitution).
pub fn forward_substitute(l: &[f64], n: usize, b: &[f64]) -> Vec<f64> {
    let mut y = vec![0.0f64; n];
    for i in 0..n {
        let mut sum = b[i];
        for k in 0..i {
            sum -= l[i * n + k] * y[k];
        }
        y[i] = sum / l[i * n + i];
    }
    y
}

/// Solves `Lᵀ x = y` for lower-triangular `L` (backward substitution).
pub fn backward_substitute_transposed(l: &[f64], n: usize, y: &[f64]) -> Vec<f64> {
    let mut x = vec![0.0f64; n];
    for i in (0..n).rev() {
        let mut sum = y[i];
        for k in i + 1..n {
            sum -= l[k * n + i] * x[k];
        }
        x[i] = sum / l[i * n + i];
    }
    x
}

/// Inverse of a symmetric positive-definite matrix via Cholesky.
///
/// # Errors
///
/// Returns `Err` if the matrix is not positive definite.
pub fn invert_spd(a: &[f64], n: usize) -> Result<Vec<f64>, String> {
    let l = cholesky_lower(a, n)?;
    let mut inv = vec![0.0f64; n * n];
    let mut e = vec![0.0f64; n];
    for col in 0..n {
        e[col] = 1.0;
        let y = forward_substitute(&l, n, &e);
        let x = backward_substitute_transposed(&l, n, &y);
        for row in 0..n {
            inv[row * n + col] = x[row];
        }
        e[col] = 0.0;
    }
    Ok(inv)
}

/// Upper-triangular Cholesky factor `U` with `a = Uᵀ U` — the form GPTQ
/// uses for the inverse Hessian.
///
/// # Errors
///
/// Returns `Err` if the matrix is not positive definite.
pub fn cholesky_upper(a: &[f64], n: usize) -> Result<Vec<f64>, String> {
    // a = L Lᵀ  =>  with U = Lᵀ, a = Uᵀ U.
    let l = cholesky_lower(a, n)?;
    let mut u = vec![0.0f64; n * n];
    for i in 0..n {
        for j in 0..=i {
            u[j * n + i] = l[i * n + j];
        }
    }
    Ok(u)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Xoshiro256;

    fn random_spd(n: usize, seed: u64) -> Vec<f64> {
        let mut rng = Xoshiro256::seed_from_u64(seed);
        let b: Vec<f64> = (0..n * n).map(|_| rng.normal()).collect();
        // A = B Bᵀ + n·I is SPD.
        let mut a = vec![0.0f64; n * n];
        for i in 0..n {
            for j in 0..n {
                let mut s = 0.0;
                for k in 0..n {
                    s += b[i * n + k] * b[j * n + k];
                }
                a[i * n + j] = s + if i == j { n as f64 } else { 0.0 };
            }
        }
        a
    }

    fn matmul(a: &[f64], b: &[f64], n: usize) -> Vec<f64> {
        let mut c = vec![0.0f64; n * n];
        for i in 0..n {
            for k in 0..n {
                let av = a[i * n + k];
                for j in 0..n {
                    c[i * n + j] += av * b[k * n + j];
                }
            }
        }
        c
    }

    #[test]
    fn cholesky_reconstructs_matrix() {
        let n = 12;
        let a = random_spd(n, 1);
        let l = cholesky_lower(&a, n).expect("spd");
        // L Lᵀ == A
        let mut lt = vec![0.0f64; n * n];
        for i in 0..n {
            for j in 0..n {
                lt[i * n + j] = l[j * n + i];
            }
        }
        let rec = matmul(&l, &lt, n);
        for (x, y) in rec.iter().zip(a.iter()) {
            assert!((x - y).abs() < 1e-9, "{x} vs {y}");
        }
    }

    #[test]
    fn invert_spd_gives_identity() {
        let n = 10;
        let a = random_spd(n, 2);
        let inv = invert_spd(&a, n).expect("spd");
        let prod = matmul(&a, &inv, n);
        for i in 0..n {
            for j in 0..n {
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((prod[i * n + j] - expect).abs() < 1e-8);
            }
        }
    }

    #[test]
    fn cholesky_upper_reconstructs() {
        let n = 8;
        let a = random_spd(n, 3);
        let u = cholesky_upper(&a, n).expect("spd");
        // Uᵀ U == A
        let mut ut = vec![0.0f64; n * n];
        for i in 0..n {
            for j in 0..n {
                ut[i * n + j] = u[j * n + i];
            }
        }
        let rec = matmul(&ut, &u, n);
        for (x, y) in rec.iter().zip(a.iter()) {
            assert!((x - y).abs() < 1e-9);
        }
        // U is upper triangular.
        for i in 0..n {
            for j in 0..i {
                assert_eq!(u[i * n + j], 0.0);
            }
        }
    }

    #[test]
    fn triangular_solves_invert_each_other() {
        let n = 9;
        let a = random_spd(n, 4);
        let l = cholesky_lower(&a, n).expect("spd");
        let b: Vec<f64> = (0..n).map(|i| (i as f64) - 3.0).collect();
        let y = forward_substitute(&l, n, &b);
        let x = backward_substitute_transposed(&l, n, &y);
        // Check A x == b.
        for i in 0..n {
            let mut s = 0.0;
            for j in 0..n {
                s += a[i * n + j] * x[j];
            }
            assert!((s - b[i]).abs() < 1e-8);
        }
    }

    #[test]
    fn non_spd_is_rejected() {
        let a = vec![1.0, 2.0, 2.0, 1.0]; // eigenvalues 3, -1
        assert!(cholesky_lower(&a, 2).is_err());
        assert!(invert_spd(&a, 2).is_err());
    }
}
