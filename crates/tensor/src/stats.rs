//! Statistics for watermark strength and experiment reporting.
//!
//! Equation 8 of the EmMark paper scores the probability that a
//! non-watermarked model matches `k` of `|B|` Rademacher signature bits by
//! chance: `P_c = sum_{i=k}^{|B|} C(|B|, i) * 0.5^{|B|}`. For the paper's
//! parameters (300-bit layers) this probability underflows `f64` by
//! thousands of orders of magnitude, so everything here is computed in the
//! log domain.

/// Natural log of `n!`, computed by exact cumulative summation.
///
/// Exact summation (rather than a Stirling approximation) keeps the
/// strength statistics auditable; signature lengths never exceed a few
/// thousand bits so the O(n) cost is irrelevant.
pub fn ln_factorial(n: u64) -> f64 {
    (2..=n).map(|i| (i as f64).ln()).sum()
}

/// Natural log of the binomial coefficient `C(n, k)`.
///
/// Returns `f64::NEG_INFINITY` when `k > n` (the coefficient is zero).
pub fn ln_binomial(n: u64, k: u64) -> f64 {
    if k > n {
        return f64::NEG_INFINITY;
    }
    ln_factorial(n) - ln_factorial(k) - ln_factorial(n - k)
}

/// Numerically stable `ln(sum_i exp(xs_i))`.
pub fn log_sum_exp(xs: &[f64]) -> f64 {
    let m = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    if m == f64::NEG_INFINITY {
        return f64::NEG_INFINITY;
    }
    m + xs.iter().map(|&x| (x - m).exp()).sum::<f64>().ln()
}

/// Natural log of Eq. 8: `ln P_c = ln( sum_{i=k}^{n} C(n, i) * 0.5^n )`.
///
/// `n` is the signature length `|B|` and `k` the number of matching bits.
/// Returns `0.0` (i.e. `P_c = 1`) when `k = 0`.
///
/// # Examples
///
/// ```
/// use emmark_tensor::stats::ln_binomial_tail;
/// // All 10 bits matching by chance: exactly 2^-10.
/// let p = ln_binomial_tail(10, 10).exp();
/// assert!((p - 1.0 / 1024.0).abs() < 1e-12);
/// ```
pub fn ln_binomial_tail(n: u64, k: u64) -> f64 {
    if k == 0 {
        return 0.0;
    }
    if k > n {
        return f64::NEG_INFINITY;
    }
    // One exact coefficient anchors the sum; the rest follow from the
    // ratio recurrence C(n, i+1) = C(n, i) · (n-i)/(i+1), keeping the
    // whole tail O(n) instead of O(n²) ln-evaluations. Fleet-scale
    // verification computes this once per device report, so the
    // constant matters.
    let mut term = ln_binomial(n, k);
    let mut terms = Vec::with_capacity((n - k + 1) as usize);
    terms.push(term);
    for i in k..n {
        term += ((n - i) as f64).ln() - ((i + 1) as f64).ln();
        terms.push(term);
    }
    log_sum_exp(&terms) - n as f64 * std::f64::consts::LN_2
}

/// Base-10 log of Eq. 8, the form quoted in the paper ("9.09e-13").
pub fn log10_binomial_tail(n: u64, k: u64) -> f64 {
    ln_binomial_tail(n, k) / std::f64::consts::LN_10
}

/// Eq. 8 evaluated directly in `f64`; underflows to `0.0` for long
/// signatures — use [`log10_binomial_tail`] for reporting.
pub fn binomial_tail(n: u64, k: u64) -> f64 {
    ln_binomial_tail(n, k).exp()
}

/// Arithmetic mean (0.0 for empty input).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population standard deviation (0.0 for fewer than two samples).
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / xs.len() as f64).sqrt()
}

/// Geometric mean of strictly positive values (0.0 for empty input).
///
/// # Panics
///
/// Panics if any value is not strictly positive.
pub fn geometric_mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = xs
        .iter()
        .map(|&x| {
            assert!(x > 0.0, "geometric mean requires positive values, got {x}");
            x.ln()
        })
        .sum();
    (log_sum / xs.len() as f64).exp()
}

/// Percentile by linear interpolation over sorted data, `p` in `[0, 100]`.
///
/// # Panics
///
/// Panics if `xs` is empty or `p` is out of range.
pub fn percentile(xs: &[f64], p: f64) -> f64 {
    assert!(!xs.is_empty(), "percentile of empty data");
    assert!((0.0..=100.0).contains(&p), "percentile must be in [0, 100]");
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in percentile input"));
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_factorial_small_values() {
        assert_eq!(ln_factorial(0), 0.0);
        assert_eq!(ln_factorial(1), 0.0);
        assert!((ln_factorial(5) - 120f64.ln()).abs() < 1e-12);
        assert!((ln_factorial(10) - 3628800f64.ln()).abs() < 1e-9);
    }

    #[test]
    fn ln_binomial_matches_pascal() {
        // Exact small cases.
        for (n, k, expect) in [(5u64, 2u64, 10.0f64), (10, 5, 252.0), (20, 10, 184756.0)] {
            assert!((ln_binomial(n, k).exp() - expect).abs() / expect < 1e-10);
        }
        assert_eq!(ln_binomial(3, 5), f64::NEG_INFINITY);
    }

    #[test]
    fn binomial_tail_exact_small_cases() {
        // n = 4: P(X >= 3) = (4 + 1) / 16.
        assert!((binomial_tail(4, 3) - 5.0 / 16.0).abs() < 1e-12);
        // P(X >= 0) = 1.
        assert_eq!(binomial_tail(7, 0), 1.0);
        // P(X >= n) = 2^-n.
        assert!((binomial_tail(20, 20) - 0.5f64.powi(20)).abs() < 1e-18);
    }

    #[test]
    fn tail_is_monotone_decreasing_in_k() {
        for n in [8u64, 31, 300] {
            let mut prev = f64::INFINITY;
            for k in 0..=n {
                let cur = ln_binomial_tail(n, k);
                assert!(cur <= prev + 1e-12, "tail increased at n={n}, k={k}");
                prev = cur;
            }
        }
    }

    /// The paper quotes a minimum per-layer strength of 9.09e-13 for a
    /// fully matched signature. That is 2^-40 = 9.094947e-13, i.e. the
    /// 40-bit INT4 per-layer signature. Verify we reproduce the constant.
    #[test]
    fn paper_strength_constant_is_reproduced() {
        let log10_p = log10_binomial_tail(40, 40);
        let p = 10f64.powf(log10_p);
        assert!((p - 9.094947e-13).abs() < 1e-18, "got {p}");
    }

    /// The capacity analysis quotes 1.57e-30 per layer for 100-bit
    /// signatures: 2^-100 + lower-order ~ C(100,100)*2^-100... The paper's
    /// figure corresponds to the fully-matched 100-bit tail
    /// P = (1 + 100 + ...)*2^-100; the dominant quoted digit matches
    /// P(X >= 99) = 101 * 2^-100 ≈ 7.97e-29 or P(X >= 100) = 7.89e-31.
    /// We pin our own definition: fully matched, k = n = 100.
    #[test]
    fn capacity_strength_order_of_magnitude() {
        let log10_p = log10_binomial_tail(100, 100);
        // 2^-100 ≈ 7.89e-31, i.e. log10 ≈ -30.1
        assert!((log10_p - (-30.103)).abs() < 0.01, "got {log10_p}");
    }

    #[test]
    fn long_signatures_do_not_underflow_in_log_domain() {
        let l = ln_binomial_tail(300, 300);
        assert!(l.is_finite());
        assert!((l / std::f64::consts::LN_2 + 300.0).abs() < 1e-6);
        // And with slack bits.
        assert!(ln_binomial_tail(300, 290).is_finite());
    }

    #[test]
    fn log_sum_exp_handles_extremes() {
        assert_eq!(log_sum_exp(&[]), f64::NEG_INFINITY);
        assert!((log_sum_exp(&[0.0, 0.0]) - 2f64.ln()).abs() < 1e-12);
        let big = log_sum_exp(&[-1000.0, -1000.0]);
        assert!((big - (-1000.0 + 2f64.ln())).abs() < 1e-9);
    }

    #[test]
    fn summary_statistics() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(mean(&xs), 2.5);
        assert!((std_dev(&xs) - 1.118033988749895).abs() < 1e-12);
        assert!((geometric_mean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 100.0), 4.0);
        assert_eq!(percentile(&xs, 50.0), 2.5);
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(std_dev(&[1.0]), 0.0);
    }
}
