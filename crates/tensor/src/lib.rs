//! # emmark-tensor
//!
//! Numeric substrate for the [EmMark (DAC 2024)](https://arxiv.org/abs/2402.17938)
//! reproduction: a dense row-major [`Matrix`], portable seeded randomness
//! ([`rng`]), orthonormal DCTs for the SpecMark baseline ([`dct`]), and
//! log-domain binomial statistics for watermark strength ([`stats`]).
//!
//! Everything the watermark-critical path touches lives here and is pinned:
//! the PRNG stream, the DCT scaling, and the Eq. 8 tail probability are all
//! bit-for-bit reproducible so that watermark locations chosen today can be
//! re-derived by an ownership-proof run years later.
//!
//! # Examples
//!
//! ```
//! use emmark_tensor::{Matrix, rng::Xoshiro256, stats::log10_binomial_tail};
//!
//! let mut rng = Xoshiro256::seed_from_u64(100);
//! let w = Matrix::from_fn(4, 4, |_, _| rng.normal_f32(0.0, 0.1));
//! assert_eq!(w.shape(), (4, 4));
//!
//! // Strength of a fully matched 40-bit signature (paper: 9.09e-13).
//! let log10_p = log10_binomial_tail(40, 40);
//! assert!(log10_p < -12.0);
//! ```

pub mod dct;
pub mod linalg;
pub mod matrix;
pub mod rng;
pub mod stats;

pub use matrix::Matrix;
pub use rng::Xoshiro256;
