//! Model hyperparameter configuration.

use serde::{Deserialize, Serialize};

/// Normalization layer variant.
///
/// Sim-OPT models use [`NormKind::LayerNorm`] (as OPT does); Sim-LLaMA
/// models use [`NormKind::RmsNorm`] (as LLaMA-2 does).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NormKind {
    /// Mean/variance layer normalization with gain and bias.
    LayerNorm,
    /// Root-mean-square normalization with gain only.
    RmsNorm,
}

/// Feed-forward block variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MlpKind {
    /// Two-linear GELU MLP (`fc1 -> gelu -> fc2`), as in OPT.
    Gelu,
    /// Gated SiLU MLP (`(silu(x W_g) ⊙ x W_u) W_d`), as in LLaMA-2.
    GatedSilu,
}

/// Channel-magnitude skew injected at initialization.
///
/// Billion-parameter LLMs develop a handful of activation-outlier channels
/// whose magnitudes dwarf the rest — the phenomenon SmoothQuant and
/// LLM.int8() exist to handle, and the saliency signal EmMark's `S_r`
/// score keys on. Micro-scale models trained for seconds develop a much
/// milder version, so model initialization can amplify a seeded subset of
/// channels to mimic the skew (documented substitution; see DESIGN.md §6).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OutlierProfile {
    /// Number of amplified channels.
    pub channels: usize,
    /// Multiplier applied to the initial embedding columns and
    /// normalization gains of the chosen channels.
    pub factor: f32,
    /// Seed choosing which channels are amplified.
    pub seed: u64,
}

impl Default for OutlierProfile {
    fn default() -> Self {
        Self {
            channels: 4,
            factor: 4.0,
            seed: 0xEDA,
        }
    }
}

/// Hyperparameters of a nano transformer language model.
///
/// # Examples
///
/// ```
/// use emmark_nanolm::config::ModelConfig;
/// let cfg = ModelConfig::tiny_test();
/// assert!(cfg.d_model % cfg.n_heads == 0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelConfig {
    /// Human-readable name, e.g. `"sim-opt-2.7b"`.
    pub name: String,
    /// Vocabulary size.
    pub vocab_size: usize,
    /// Residual stream width.
    pub d_model: usize,
    /// Number of transformer blocks.
    pub n_layers: usize,
    /// Number of attention heads (`d_model % n_heads == 0`).
    pub n_heads: usize,
    /// Hidden width of the feed-forward block.
    pub d_ff: usize,
    /// Maximum sequence length (learned positional embeddings).
    pub max_seq: usize,
    /// Normalization variant.
    pub norm: NormKind,
    /// Feed-forward variant.
    pub mlp: MlpKind,
    /// Optional channel-magnitude skew (see [`OutlierProfile`]).
    pub outliers: Option<OutlierProfile>,
    /// Parameter initialization seed.
    pub init_seed: u64,
}

impl ModelConfig {
    /// Smallest config that still exercises every code path; used by unit
    /// tests throughout the workspace.
    pub fn tiny_test() -> Self {
        Self {
            name: "tiny-test".to_string(),
            vocab_size: 32,
            d_model: 16,
            n_layers: 2,
            n_heads: 2,
            d_ff: 32,
            max_seq: 24,
            norm: NormKind::LayerNorm,
            mlp: MlpKind::Gelu,
            outliers: None,
            init_seed: 7,
        }
    }

    /// Number of quantizable linear layers per transformer block: 6 for
    /// the OPT-style architecture (q, k, v, o, fc1, fc2) and 7 for the
    /// LLaMA-style one (q, k, v, o, gate, up, down) — the same counting
    /// the paper uses when it reports `n = 192` for OPT-2.7B.
    pub fn linears_per_block(&self) -> usize {
        match self.mlp {
            MlpKind::Gelu => 6,
            MlpKind::GatedSilu => 7,
        }
    }

    /// Total number of quantizable linear layers (blocks plus LM head).
    pub fn quant_layer_count(&self) -> usize {
        self.n_layers * self.linears_per_block() + 1
    }

    /// Approximate parameter count (weights only).
    pub fn param_count(&self) -> usize {
        let d = self.d_model;
        let attn = 4 * d * d;
        let mlp = match self.mlp {
            MlpKind::Gelu => 2 * d * self.d_ff,
            MlpKind::GatedSilu => 3 * d * self.d_ff,
        };
        let emb = self.vocab_size * d + self.max_seq * d;
        let head = d * self.vocab_size;
        self.n_layers * (attn + mlp) + emb + head
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.d_model == 0 || self.n_heads == 0 || self.n_layers == 0 {
            return Err("dimensions must be positive".into());
        }
        if !self.d_model.is_multiple_of(self.n_heads) {
            return Err(format!(
                "d_model {} not divisible by n_heads {}",
                self.d_model, self.n_heads
            ));
        }
        if self.vocab_size < 2 {
            return Err("vocab_size must be at least 2".into());
        }
        if self.max_seq < 2 {
            return Err("max_seq must be at least 2".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_test_is_valid() {
        assert!(ModelConfig::tiny_test().validate().is_ok());
    }

    #[test]
    fn quant_layer_count_matches_paper_counting() {
        // OPT-2.7B in the paper: 32 blocks x 6 linears = 192 quantization
        // layers (the paper's n=192 excludes the head; our count includes
        // the LM head explicitly, so check both conventions).
        let mut cfg = ModelConfig::tiny_test();
        cfg.n_layers = 32;
        assert_eq!(cfg.quant_layer_count() - 1, 192);
        cfg.mlp = MlpKind::GatedSilu;
        assert_eq!(cfg.quant_layer_count() - 1, 32 * 7);
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let mut cfg = ModelConfig::tiny_test();
        cfg.n_heads = 3;
        assert!(cfg.validate().is_err());
        cfg = ModelConfig::tiny_test();
        cfg.vocab_size = 1;
        assert!(cfg.validate().is_err());
        cfg = ModelConfig::tiny_test();
        cfg.n_layers = 0;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn param_count_is_plausible() {
        let cfg = ModelConfig::tiny_test();
        // embeddings: 32*16 + 24*16, attn: 2*4*16*16, mlp: 2*2*16*32,
        // head: 16*32
        let expect = 32 * 16 + 24 * 16 + 2 * (4 * 16 * 16 + 2 * 16 * 32) + 16 * 32;
        assert_eq!(cfg.param_count(), expect);
    }
}
