//! Autoregressive text generation over any [`LogitsModel`] — the
//! user-visible function of an embedded LLM, used by the examples to
//! show that watermarked deployments still *speak*.

use crate::model::LogitsModel;
use emmark_tensor::rng::Xoshiro256;
use serde::{Deserialize, Serialize};

/// Sampling strategy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Sampling {
    /// Always pick the argmax token.
    Greedy,
    /// Softmax sampling at the given temperature (`> 0`).
    Temperature(f32),
    /// Top-k filtering, then temperature sampling within the survivors.
    TopK {
        /// Number of candidates kept.
        k: usize,
        /// Softmax temperature.
        temperature: f32,
    },
}

/// Generation settings.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GenerateConfig {
    /// Tokens to generate.
    pub max_new_tokens: usize,
    /// Sampling strategy.
    pub sampling: Sampling,
    /// Sampling seed.
    pub seed: u64,
}

impl Default for GenerateConfig {
    fn default() -> Self {
        Self {
            max_new_tokens: 32,
            sampling: Sampling::Greedy,
            seed: 0,
        }
    }
}

/// Generates a continuation of `prompt`.
///
/// The context is truncated to the model's window from the left as
/// generation proceeds (sliding window).
///
/// # Panics
///
/// Panics if the prompt is empty, the temperature is not positive, or
/// `k` is zero.
pub fn generate<M: LogitsModel + ?Sized>(
    model: &M,
    prompt: &[u32],
    cfg: &GenerateConfig,
) -> Vec<u32> {
    assert!(!prompt.is_empty(), "prompt must not be empty");
    if let Sampling::Temperature(t) | Sampling::TopK { temperature: t, .. } = cfg.sampling {
        assert!(t > 0.0, "temperature must be positive");
    }
    if let Sampling::TopK { k, .. } = cfg.sampling {
        assert!(k > 0, "top-k requires k > 0");
    }
    let mut rng = Xoshiro256::seed_from_u64(cfg.seed);
    let mut tokens: Vec<u32> = prompt.to_vec();
    let window = model.max_seq();
    for _ in 0..cfg.max_new_tokens {
        let start = tokens.len().saturating_sub(window);
        let logits = model.logits(&tokens[start..]);
        let row = logits.row(logits.rows() - 1);
        let next = sample_token(row, cfg.sampling, &mut rng);
        tokens.push(next);
    }
    tokens.split_off(prompt.len())
}

/// Samples one token id from a logit row.
fn sample_token(logits: &[f32], sampling: Sampling, rng: &mut Xoshiro256) -> u32 {
    match sampling {
        Sampling::Greedy => argmax(logits) as u32,
        Sampling::Temperature(t) => weighted_sample(logits, t, None, rng),
        Sampling::TopK { k, temperature } => weighted_sample(logits, temperature, Some(k), rng),
    }
}

fn argmax(xs: &[f32]) -> usize {
    xs.iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite logits"))
        .map(|(i, _)| i)
        .expect("non-empty logits")
}

fn weighted_sample(
    logits: &[f32],
    temperature: f32,
    top_k: Option<usize>,
    rng: &mut Xoshiro256,
) -> u32 {
    let mut indexed: Vec<(usize, f32)> = logits.iter().cloned().enumerate().collect();
    if let Some(k) = top_k {
        indexed.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite logits"));
        indexed.truncate(k.min(indexed.len()));
    }
    let max = indexed
        .iter()
        .map(|&(_, v)| v)
        .fold(f32::NEG_INFINITY, f32::max);
    let weights: Vec<f64> = indexed
        .iter()
        .map(|&(_, v)| (((v - max) / temperature) as f64).exp())
        .collect();
    let pick = rng.weighted_index(&weights);
    indexed[pick].0 as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelConfig;
    use crate::corpus::{Corpus, Grammar, TokenClass};
    use crate::train::{train, TrainConfig};
    use crate::TransformerModel;

    fn trained() -> (TransformerModel, Grammar) {
        let corpus = Corpus::sample(Grammar::synwiki(61), 5000, 400, 400);
        let mut cfg = ModelConfig::tiny_test();
        cfg.vocab_size = corpus.grammar.vocab_size();
        let mut model = TransformerModel::new(cfg);
        train(
            &mut model,
            &corpus,
            &TrainConfig {
                steps: 120,
                batch_size: 8,
                seq_len: 16,
                ..TrainConfig::default()
            },
        );
        (model, corpus.grammar)
    }

    #[test]
    fn greedy_generation_is_deterministic() {
        let (model, _) = trained();
        let cfg = GenerateConfig {
            max_new_tokens: 12,
            ..Default::default()
        };
        let a = generate(&model, &[1, 2, 3], &cfg);
        let b = generate(&model, &[1, 2, 3], &cfg);
        assert_eq!(a, b);
        assert_eq!(a.len(), 12);
    }

    #[test]
    fn sampled_generation_is_seed_deterministic_and_varied() {
        let (model, _) = trained();
        let cfg = GenerateConfig {
            max_new_tokens: 16,
            sampling: Sampling::Temperature(1.0),
            seed: 4,
        };
        let a = generate(&model, &[1, 2], &cfg);
        let b = generate(&model, &[1, 2], &cfg);
        assert_eq!(a, b, "same seed, same stream");
        let c = generate(&model, &[1, 2], &GenerateConfig { seed: 5, ..cfg });
        assert_ne!(a, c, "different seed should diverge");
    }

    #[test]
    fn generation_respects_the_vocab_and_window() {
        let (model, _) = trained();
        let long_prompt: Vec<u32> = (0..50).map(|i| i % 31).collect(); // > max_seq
        let cfg = GenerateConfig {
            max_new_tokens: 8,
            sampling: Sampling::TopK {
                k: 5,
                temperature: 0.8,
            },
            seed: 9,
        };
        let out = generate(&model, &long_prompt, &cfg);
        assert_eq!(out.len(), 8);
        assert!(out.iter().all(|&t| (t as usize) < model.cfg.vocab_size));
    }

    #[test]
    fn trained_model_generates_grammarlike_text() {
        // A trained model should close sentences with stop tokens at a
        // plausible rate (the grammar emits one stop per 4-7 tokens).
        let (model, grammar) = trained();
        let cfg = GenerateConfig {
            max_new_tokens: 120,
            sampling: Sampling::Temperature(0.9),
            seed: 11,
        };
        let out = generate(&model, &[0], &cfg);
        let stops = out
            .iter()
            .filter(|&&t| grammar.class_of(t) == TokenClass::Stop)
            .count();
        assert!(
            stops >= 8,
            "only {stops} stop tokens in 120 — text is not sentence-like"
        );
    }

    #[test]
    fn argmax_and_topk_internals() {
        assert_eq!(argmax(&[0.1, 3.0, -1.0]), 1);
        let mut rng = Xoshiro256::seed_from_u64(1);
        // Top-1 sampling degenerates to argmax regardless of temperature.
        for _ in 0..10 {
            assert_eq!(weighted_sample(&[0.0, 9.0, 1.0], 2.0, Some(1), &mut rng), 1);
        }
    }

    #[test]
    #[should_panic(expected = "temperature must be positive")]
    fn zero_temperature_panics() {
        let (model, _) = trained();
        let cfg = GenerateConfig {
            max_new_tokens: 1,
            sampling: Sampling::Temperature(0.0),
            seed: 0,
        };
        let _ = generate(&model, &[1], &cfg);
    }
}
