//! The Sim-OPT and Sim-LLaMA model families.
//!
//! The paper's Table 1 sweeps OPT {125M, 1.3B, 2.7B, 6.7B, 13B, 30B} and
//! LLaMA-2 {7B, 13B, 70B}. This module defines nine micro-scale stand-ins
//! with the same *relative ordering* of width/depth and the two families'
//! architectural distinctions (OPT: LayerNorm + GELU + biases; LLaMA:
//! RMSNorm + gated SiLU, no biases), plus a deterministic train-to-ready
//! helper used by every experiment.

use crate::config::{MlpKind, ModelConfig, NormKind, OutlierProfile};
use crate::corpus::Corpus;
use crate::model::TransformerModel;
use crate::train::{train, TrainConfig, TrainReport};
use serde::{Deserialize, Serialize};

/// Model family, mirroring the paper's two evaluation families.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Family {
    /// OPT-style: LayerNorm, GELU MLP, biased projections.
    SimOpt,
    /// LLaMA-2-style: RMSNorm, gated SiLU MLP, no biases.
    SimLlama,
}

/// One entry of the nine-model evaluation grid.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelSpec {
    /// Family.
    pub family: Family,
    /// Paper-size label this model stands in for (e.g. `"2.7b"`).
    pub label: &'static str,
    /// Residual width.
    pub d_model: usize,
    /// Blocks.
    pub n_layers: usize,
    /// Heads.
    pub n_heads: usize,
    /// MLP hidden width.
    pub d_ff: usize,
}

impl ModelSpec {
    /// Canonical name, e.g. `"sim-opt-2.7b"`.
    pub fn name(&self) -> String {
        match self.family {
            Family::SimOpt => format!("sim-opt-{}", self.label),
            Family::SimLlama => format!("sim-llama-{}", self.label),
        }
    }

    /// Expands the spec into a full [`ModelConfig`] over `vocab_size`
    /// tokens.
    pub fn config(&self, vocab_size: usize) -> ModelConfig {
        let (norm, mlp) = match self.family {
            Family::SimOpt => (NormKind::LayerNorm, MlpKind::Gelu),
            Family::SimLlama => (NormKind::RmsNorm, MlpKind::GatedSilu),
        };
        ModelConfig {
            name: self.name(),
            vocab_size,
            d_model: self.d_model,
            n_layers: self.n_layers,
            n_heads: self.n_heads,
            d_ff: self.d_ff,
            max_seq: 32,
            norm,
            mlp,
            outliers: Some(OutlierProfile::default()),
            // Distinct deterministic init per spec.
            init_seed: 0x5EED ^ fxhash(self.name().as_bytes()),
        }
    }
}

/// Tiny stable FNV-style hash for seeding (not cryptographic).
fn fxhash(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// The six Sim-OPT grid entries, smallest to largest.
pub fn sim_opt_grid() -> Vec<ModelSpec> {
    use Family::SimOpt;
    vec![
        ModelSpec {
            family: SimOpt,
            label: "125m",
            d_model: 32,
            n_layers: 2,
            n_heads: 2,
            d_ff: 128,
        },
        ModelSpec {
            family: SimOpt,
            label: "1.3b",
            d_model: 48,
            n_layers: 2,
            n_heads: 4,
            d_ff: 192,
        },
        ModelSpec {
            family: SimOpt,
            label: "2.7b",
            d_model: 64,
            n_layers: 3,
            n_heads: 4,
            d_ff: 256,
        },
        ModelSpec {
            family: SimOpt,
            label: "6.7b",
            d_model: 80,
            n_layers: 3,
            n_heads: 4,
            d_ff: 320,
        },
        ModelSpec {
            family: SimOpt,
            label: "13b",
            d_model: 96,
            n_layers: 4,
            n_heads: 6,
            d_ff: 384,
        },
        ModelSpec {
            family: SimOpt,
            label: "30b",
            d_model: 112,
            n_layers: 4,
            n_heads: 8,
            d_ff: 448,
        },
    ]
}

/// The three Sim-LLaMA grid entries.
pub fn sim_llama_grid() -> Vec<ModelSpec> {
    use Family::SimLlama;
    vec![
        ModelSpec {
            family: SimLlama,
            label: "7b",
            d_model: 64,
            n_layers: 3,
            n_heads: 4,
            d_ff: 192,
        },
        ModelSpec {
            family: SimLlama,
            label: "13b",
            d_model: 80,
            n_layers: 3,
            n_heads: 4,
            d_ff: 256,
        },
        ModelSpec {
            family: SimLlama,
            label: "70b",
            d_model: 112,
            n_layers: 4,
            n_heads: 8,
            d_ff: 320,
        },
    ]
}

/// The full nine-model Table 1 grid, Sim-OPT first.
pub fn full_grid() -> Vec<ModelSpec> {
    let mut grid = sim_opt_grid();
    grid.extend(sim_llama_grid());
    grid
}

/// Whether a spec counts as "large" for the paper's candidate-pool ratio
/// rule (ratio 50 below 6.7B-equivalent, 60 at and above).
pub fn is_large(spec: &ModelSpec) -> bool {
    matches!(
        (spec.family, spec.label),
        (Family::SimOpt, "6.7b" | "13b" | "30b") | (Family::SimLlama, _)
    )
}

/// A trained model bundled with its corpus and training report.
#[derive(Debug, Clone)]
pub struct TrainedModel {
    /// The trained full-precision model.
    pub model: TransformerModel,
    /// The corpus it was trained on.
    pub corpus: Corpus,
    /// Training summary.
    pub report: TrainReport,
}

/// Deterministically trains a spec on the SynWiki corpus.
///
/// `effort` scales the step count: unit tests pass a small value, the
/// benchmark harness a larger one. The same `(spec, effort, seed)` always
/// yields bit-identical weights.
pub fn train_spec(spec: &ModelSpec, effort: TrainEffort, corpus_seed: u64) -> TrainedModel {
    let corpus = Corpus::default_experiment(corpus_seed);
    let cfg = spec.config(corpus.grammar.vocab_size());
    let mut model = TransformerModel::new(cfg);
    let tcfg = TrainConfig {
        steps: effort.steps,
        batch_size: effort.batch_size,
        seq_len: 24,
        lr: 3e-3,
        warmup: effort.steps / 10 + 1,
        clip: 1.0,
        seed: 42,
    };
    let report = train(&mut model, &corpus, &tcfg);
    TrainedModel {
        model,
        corpus,
        report,
    }
}

/// Training effort preset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TrainEffort {
    /// Optimizer steps.
    pub steps: u64,
    /// Sequences per step.
    pub batch_size: usize,
}

impl TrainEffort {
    /// Fast preset for unit/integration tests.
    pub fn test() -> Self {
        Self {
            steps: 60,
            batch_size: 4,
        }
    }

    /// Benchmark preset (used by the table/figure regenerators).
    pub fn bench() -> Self {
        Self {
            steps: 280,
            batch_size: 8,
        }
    }

    /// Reads `EMMARK_TRAIN_STEPS` to optionally override the bench preset
    /// (useful for quick smoke runs of the harness).
    pub fn bench_from_env() -> Self {
        let mut preset = Self::bench();
        if let Ok(steps) = std::env::var("EMMARK_TRAIN_STEPS") {
            if let Ok(parsed) = steps.parse::<u64>() {
                preset.steps = parsed.max(1);
            }
        }
        preset
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_has_nine_models_with_paper_labels() {
        let grid = full_grid();
        assert_eq!(grid.len(), 9);
        let names: Vec<String> = grid.iter().map(|s| s.name()).collect();
        assert!(names.contains(&"sim-opt-125m".to_string()));
        assert!(names.contains(&"sim-llama-70b".to_string()));
        // Strictly non-decreasing parameter counts within each family.
        let params: Vec<usize> = sim_opt_grid()
            .iter()
            .map(|s| s.config(54).param_count())
            .collect();
        assert!(params.windows(2).all(|w| w[0] < w[1]), "{params:?}");
    }

    #[test]
    fn configs_are_valid_and_family_styled() {
        for spec in full_grid() {
            let cfg = spec.config(54);
            assert!(cfg.validate().is_ok(), "{}", spec.name());
            match spec.family {
                Family::SimOpt => assert_eq!(cfg.norm, NormKind::LayerNorm),
                Family::SimLlama => assert_eq!(cfg.mlp, MlpKind::GatedSilu),
            }
        }
    }

    #[test]
    fn pool_ratio_rule_matches_paper_split() {
        let grid = full_grid();
        let large: Vec<&str> = grid
            .iter()
            .filter(|s| is_large(s))
            .map(|s| s.label)
            .collect();
        assert_eq!(large, vec!["6.7b", "13b", "30b", "7b", "13b", "70b"]);
    }

    #[test]
    fn train_spec_is_deterministic() {
        let spec = &sim_opt_grid()[0];
        let a = train_spec(
            spec,
            TrainEffort {
                steps: 5,
                batch_size: 2,
            },
            1,
        );
        let b = train_spec(
            spec,
            TrainEffort {
                steps: 5,
                batch_size: 2,
            },
            1,
        );
        let la = crate::model::LogitsModel::logits(&a.model, &[1, 2, 3]);
        let lb = crate::model::LogitsModel::logits(&b.model, &[1, 2, 3]);
        assert_eq!(la, lb);
    }

    #[test]
    fn distinct_specs_get_distinct_init_seeds() {
        let grid = full_grid();
        let mut seeds: Vec<u64> = grid.iter().map(|s| s.config(54).init_seed).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), grid.len());
    }
}
