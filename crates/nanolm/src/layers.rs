//! Trainable layers with explicit forward/backward passes.
//!
//! Every layer keeps its own parameter tensors ([`Param`]), caches the
//! forward activations it needs for the backward pass, and exposes a
//! cache-free [`infer`](Linear::infer) path for evaluation. The manual
//! backprop keeps the whole training substrate dependency-free and
//! auditable.

use emmark_tensor::rng::Xoshiro256;
use emmark_tensor::Matrix;
use serde::{Deserialize, Serialize};

/// A trainable tensor with its gradient and Adam moments.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Param {
    /// Current value.
    pub value: Matrix,
    /// Accumulated gradient.
    pub grad: Matrix,
    m: Matrix,
    v: Matrix,
}

impl Param {
    /// Wraps a value tensor with zeroed gradient and moments.
    pub fn new(value: Matrix) -> Self {
        let (r, c) = value.shape();
        Self {
            value,
            grad: Matrix::zeros(r, c),
            m: Matrix::zeros(r, c),
            v: Matrix::zeros(r, c),
        }
    }

    /// Clears the accumulated gradient.
    pub fn zero_grad(&mut self) {
        for g in self.grad.iter_mut() {
            *g = 0.0;
        }
    }

    /// One Adam update; `t` is the 1-based step counter.
    pub fn adam_step(&mut self, lr: f32, beta1: f32, beta2: f32, eps: f32, t: u64) {
        let bc1 = 1.0 - beta1.powi(t as i32);
        let bc2 = 1.0 - beta2.powi(t as i32);
        for i in 0..self.value.len() {
            let g = self.grad.as_slice()[i];
            let m = &mut self.m.as_mut_slice()[i];
            *m = beta1 * *m + (1.0 - beta1) * g;
            let v = &mut self.v.as_mut_slice()[i];
            *v = beta2 * *v + (1.0 - beta2) * g * g;
            let m_hat = self.m.as_slice()[i] / bc1;
            let v_hat = self.v.as_slice()[i] / bc2;
            self.value.as_mut_slice()[i] -= lr * m_hat / (v_hat.sqrt() + eps);
        }
    }

    /// Sum of squared gradient entries (for global-norm clipping).
    pub fn grad_sq_sum(&self) -> f64 {
        self.grad.iter().map(|&g| (g as f64) * (g as f64)).sum()
    }

    /// Scales the gradient in place.
    pub fn scale_grad(&mut self, s: f32) {
        self.grad.scale_in_place(s);
    }
}

/// Per-input-channel activation accumulator: mean and max absolute value.
///
/// The mean is the raw material for the paper's `A_f` (full-precision
/// activation per weight channel, Eq. 4); the max drives the SmoothQuant
/// migration strength and the LLM.int8() outlier threshold.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ChannelAccum {
    sum_abs: Vec<f64>,
    max_abs: Vec<f32>,
    count: u64,
}

impl ChannelAccum {
    /// Creates an accumulator over `channels` input channels.
    pub fn new(channels: usize) -> Self {
        Self {
            sum_abs: vec![0.0; channels],
            max_abs: vec![0.0; channels],
            count: 0,
        }
    }

    /// Accumulates one batch of layer inputs (rows = positions).
    pub fn record(&mut self, x: &Matrix) {
        debug_assert_eq!(x.cols(), self.sum_abs.len());
        for i in 0..x.rows() {
            for (j, &v) in x.row(i).iter().enumerate() {
                self.sum_abs[j] += v.abs() as f64;
                self.max_abs[j] = self.max_abs[j].max(v.abs());
            }
        }
        self.count += x.rows() as u64;
    }

    /// Mean absolute activation per channel.
    ///
    /// # Panics
    ///
    /// Panics if nothing was recorded.
    pub fn mean_abs(&self) -> Vec<f32> {
        assert!(self.count > 0, "no activations recorded");
        self.sum_abs
            .iter()
            .map(|&s| (s / self.count as f64) as f32)
            .collect()
    }

    /// Maximum absolute activation per channel.
    ///
    /// # Panics
    ///
    /// Panics if nothing was recorded.
    pub fn max_abs(&self) -> Vec<f32> {
        assert!(self.count > 0, "no activations recorded");
        self.max_abs.clone()
    }

    /// Number of recorded rows.
    pub fn count(&self) -> u64 {
        self.count
    }
}

/// Fully connected layer `y = x W + b` with `W: [in, out]`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Linear {
    /// Weight matrix, `[in_features, out_features]`. Row `i` is input
    /// channel `i` — the channel axis EmMark's saliency score runs over.
    pub weight: Param,
    /// Optional bias, `[1, out_features]`.
    pub bias: Option<Param>,
    #[serde(skip)]
    cache_input: Option<Matrix>,
    #[serde(skip)]
    recorder: Option<ChannelAccum>,
    #[serde(skip)]
    hessian: Option<Matrix>,
}

impl Linear {
    /// Initializes with scaled-normal weights (std `0.4 / sqrt(in)`), and a
    /// zero bias when `bias` is set.
    pub fn new(in_features: usize, out_features: usize, bias: bool, rng: &mut Xoshiro256) -> Self {
        let std = 0.4 / (in_features as f32).sqrt();
        let weight = Matrix::from_fn(in_features, out_features, |_, _| rng.normal_f32(0.0, std));
        Self {
            weight: Param::new(weight),
            bias: bias.then(|| Param::new(Matrix::zeros(1, out_features))),
            cache_input: None,
            recorder: None,
            hessian: None,
        }
    }

    /// Input feature count.
    pub fn in_features(&self) -> usize {
        self.weight.value.rows()
    }

    /// Output feature count.
    pub fn out_features(&self) -> usize {
        self.weight.value.cols()
    }

    /// Starts recording per-channel input magnitudes.
    pub fn enable_recording(&mut self) {
        self.recorder = Some(ChannelAccum::new(self.in_features()));
    }

    /// Stops recording and returns the accumulator, if any.
    pub fn take_recording(&mut self) -> Option<ChannelAccum> {
        self.recorder.take()
    }

    /// Starts accumulating the input Gram matrix `H = Σ xᵀx` (the GPTQ
    /// Hessian, up to a constant factor).
    pub fn enable_hessian(&mut self) {
        let d = self.in_features();
        self.hessian = Some(Matrix::zeros(d, d));
    }

    /// Stops Hessian accumulation and returns `Σ xᵀx`, if enabled.
    pub fn take_hessian(&mut self) -> Option<Matrix> {
        self.hessian.take()
    }

    /// Training forward pass; caches the input for [`Self::backward`].
    pub fn forward(&mut self, x: &Matrix) -> Matrix {
        if let Some(rec) = &mut self.recorder {
            rec.record(x);
        }
        if let Some(h) = &mut self.hessian {
            h.add_assign(&x.transa_matmul(x));
        }
        let mut y = x.matmul(&self.weight.value);
        if let Some(b) = &self.bias {
            for i in 0..y.rows() {
                for (o, &bv) in y.row_mut(i).iter_mut().zip(b.value.row(0)) {
                    *o += bv;
                }
            }
        }
        self.cache_input = Some(x.clone());
        y
    }

    /// Cache-free inference pass.
    pub fn infer(&self, x: &Matrix) -> Matrix {
        let mut y = x.matmul(&self.weight.value);
        if let Some(b) = &self.bias {
            for i in 0..y.rows() {
                for (o, &bv) in y.row_mut(i).iter_mut().zip(b.value.row(0)) {
                    *o += bv;
                }
            }
        }
        y
    }

    /// Backward pass: accumulates parameter gradients and returns `dx`.
    ///
    /// # Panics
    ///
    /// Panics if called before [`Self::forward`].
    pub fn backward(&mut self, dy: &Matrix) -> Matrix {
        let x = self
            .cache_input
            .take()
            .expect("Linear::backward before forward");
        self.weight.grad.add_assign(&x.transa_matmul(dy));
        if let Some(b) = &mut self.bias {
            for i in 0..dy.rows() {
                for (g, &d) in b.grad.row_mut(0).iter_mut().zip(dy.row(i)) {
                    *g += d;
                }
            }
        }
        dy.matmul_transb(&self.weight.value)
    }
}

/// Token + learned positional embedding.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Embedding {
    /// Token table `[vocab, d_model]`.
    pub tok: Param,
    /// Position table `[max_seq, d_model]`.
    pub pos: Param,
    #[serde(skip)]
    cache_tokens: Option<Vec<u32>>,
}

impl Embedding {
    /// Initializes both tables with std-0.1 normals.
    pub fn new(vocab: usize, max_seq: usize, d_model: usize, rng: &mut Xoshiro256) -> Self {
        let tok = Matrix::from_fn(vocab, d_model, |_, _| rng.normal_f32(0.0, 0.1));
        let pos = Matrix::from_fn(max_seq, d_model, |_, _| rng.normal_f32(0.0, 0.05));
        Self {
            tok: Param::new(tok),
            pos: Param::new(pos),
            cache_tokens: None,
        }
    }

    /// Reconstructs an embedding from raw tables (deserialization path).
    ///
    /// # Panics
    ///
    /// Panics if the tables have different widths.
    pub fn from_tables(tok: Matrix, pos: Matrix) -> Self {
        assert_eq!(tok.cols(), pos.cols(), "embedding width mismatch");
        Self {
            tok: Param::new(tok),
            pos: Param::new(pos),
            cache_tokens: None,
        }
    }

    /// Embeds a token sequence into `[T, d_model]`, caching for backward.
    ///
    /// # Panics
    ///
    /// Panics if a token id is out of range or the sequence exceeds the
    /// position table.
    pub fn forward(&mut self, tokens: &[u32]) -> Matrix {
        let y = self.embed(tokens);
        self.cache_tokens = Some(tokens.to_vec());
        y
    }

    /// Cache-free embedding.
    pub fn infer(&self, tokens: &[u32]) -> Matrix {
        self.embed(tokens)
    }

    fn embed(&self, tokens: &[u32]) -> Matrix {
        assert!(
            tokens.len() <= self.pos.value.rows(),
            "sequence longer than max_seq"
        );
        let d = self.tok.value.cols();
        Matrix::from_fn(tokens.len(), d, |t, j| {
            self.tok.value.at(tokens[t] as usize, j) + self.pos.value.at(t, j)
        })
    }

    /// Scatter-adds `dy` into the token and position gradients.
    ///
    /// # Panics
    ///
    /// Panics if called before [`Self::forward`].
    pub fn backward(&mut self, dy: &Matrix) {
        let tokens = self
            .cache_tokens
            .take()
            .expect("Embedding::backward before forward");
        for (t, &tok) in tokens.iter().enumerate() {
            let row = dy.row(t);
            for (j, &d) in row.iter().enumerate() {
                let cur = self.tok.grad.at(tok as usize, j);
                self.tok.grad.set(tok as usize, j, cur + d);
                let cur_p = self.pos.grad.at(t, j);
                self.pos.grad.set(t, j, cur_p + d);
            }
        }
    }
}

const NORM_EPS: f32 = 1e-5;

/// Mean/variance layer normalization with gain and bias.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LayerNorm {
    /// Gain `[1, d]`.
    pub gain: Param,
    /// Bias `[1, d]`.
    pub bias: Param,
    #[serde(skip)]
    cache: Option<(Matrix, Vec<f32>)>, // (x_hat, inv_std per row)
}

impl LayerNorm {
    /// Identity-initialized LayerNorm over `d` channels.
    pub fn new(d: usize) -> Self {
        Self {
            gain: Param::new(Matrix::full(1, d, 1.0)),
            bias: Param::new(Matrix::zeros(1, d)),
            cache: None,
        }
    }

    /// Reconstructs from raw gain/bias rows (deserialization path).
    pub fn from_params(gain: Matrix, bias: Matrix) -> Self {
        assert_eq!(gain.shape(), bias.shape(), "gain/bias shape mismatch");
        Self {
            gain: Param::new(gain),
            bias: Param::new(bias),
            cache: None,
        }
    }

    /// Training forward.
    pub fn forward(&mut self, x: &Matrix) -> Matrix {
        let (xhat, inv_std) = self.normalize(x);
        let y = self.affine(&xhat);
        self.cache = Some((xhat, inv_std));
        y
    }

    /// Cache-free inference.
    pub fn infer(&self, x: &Matrix) -> Matrix {
        let (xhat, _) = self.normalize(x);
        self.affine(&xhat)
    }

    fn normalize(&self, x: &Matrix) -> (Matrix, Vec<f32>) {
        let d = x.cols();
        let mut xhat = Matrix::zeros(x.rows(), d);
        let mut inv_stds = Vec::with_capacity(x.rows());
        for i in 0..x.rows() {
            let row = x.row(i);
            let mean: f32 = row.iter().sum::<f32>() / d as f32;
            let var: f32 = row.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / d as f32;
            let inv_std = 1.0 / (var + NORM_EPS).sqrt();
            for (j, &v) in row.iter().enumerate() {
                xhat.set(i, j, (v - mean) * inv_std);
            }
            inv_stds.push(inv_std);
        }
        (xhat, inv_stds)
    }

    fn affine(&self, xhat: &Matrix) -> Matrix {
        Matrix::from_fn(xhat.rows(), xhat.cols(), |i, j| {
            xhat.at(i, j) * self.gain.value.at(0, j) + self.bias.value.at(0, j)
        })
    }

    /// Backward pass.
    ///
    /// # Panics
    ///
    /// Panics if called before [`Self::forward`].
    // Index loops mirror the per-row normalization math; iterator chains
    // would obscure the formula being implemented.
    #[allow(clippy::needless_range_loop)]
    pub fn backward(&mut self, dy: &Matrix) -> Matrix {
        let (xhat, inv_stds) = self
            .cache
            .take()
            .expect("LayerNorm::backward before forward");
        let d = dy.cols();
        let mut dx = Matrix::zeros(dy.rows(), d);
        for i in 0..dy.rows() {
            let mut sum_dxhat = 0.0f32;
            let mut sum_dxhat_xhat = 0.0f32;
            let mut dxhat = vec![0.0f32; d];
            for j in 0..d {
                let dyv = dy.at(i, j);
                let g = self.gain.value.at(0, j);
                let xh = xhat.at(i, j);
                let dxh = dyv * g;
                dxhat[j] = dxh;
                sum_dxhat += dxh;
                sum_dxhat_xhat += dxh * xh;
                // Parameter grads.
                let cur_g = self.gain.grad.at(0, j);
                self.gain.grad.set(0, j, cur_g + dyv * xh);
                let cur_b = self.bias.grad.at(0, j);
                self.bias.grad.set(0, j, cur_b + dyv);
            }
            let inv_std = inv_stds[i];
            let n = d as f32;
            for j in 0..d {
                let xh = xhat.at(i, j);
                dx.set(
                    i,
                    j,
                    inv_std * (dxhat[j] - sum_dxhat / n - xh * sum_dxhat_xhat / n),
                );
            }
        }
        dx
    }
}

/// Root-mean-square normalization with gain only (LLaMA-style).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RmsNorm {
    /// Gain `[1, d]`.
    pub gain: Param,
    #[serde(skip)]
    cache: Option<(Matrix, Vec<f32>)>, // (x, inv_rms per row)
}

impl RmsNorm {
    /// Identity-initialized RMSNorm over `d` channels.
    pub fn new(d: usize) -> Self {
        Self {
            gain: Param::new(Matrix::full(1, d, 1.0)),
            cache: None,
        }
    }

    /// Reconstructs from a raw gain row (deserialization path).
    pub fn from_params(gain: Matrix) -> Self {
        Self {
            gain: Param::new(gain),
            cache: None,
        }
    }

    /// Training forward.
    pub fn forward(&mut self, x: &Matrix) -> Matrix {
        let inv_rms = Self::inv_rms(x);
        let y = self.apply(x, &inv_rms);
        self.cache = Some((x.clone(), inv_rms));
        y
    }

    /// Cache-free inference.
    pub fn infer(&self, x: &Matrix) -> Matrix {
        let inv_rms = Self::inv_rms(x);
        self.apply(x, &inv_rms)
    }

    fn inv_rms(x: &Matrix) -> Vec<f32> {
        (0..x.rows())
            .map(|i| {
                let ms: f32 = x.row(i).iter().map(|&v| v * v).sum::<f32>() / x.cols() as f32;
                1.0 / (ms + NORM_EPS).sqrt()
            })
            .collect()
    }

    fn apply(&self, x: &Matrix, inv_rms: &[f32]) -> Matrix {
        Matrix::from_fn(x.rows(), x.cols(), |i, j| {
            x.at(i, j) * inv_rms[i] * self.gain.value.at(0, j)
        })
    }

    /// Backward pass.
    ///
    /// # Panics
    ///
    /// Panics if called before [`Self::forward`].
    // Index loops mirror the per-row normalization math (see LayerNorm).
    #[allow(clippy::needless_range_loop)]
    pub fn backward(&mut self, dy: &Matrix) -> Matrix {
        let (x, inv_rms) = self.cache.take().expect("RmsNorm::backward before forward");
        let d = x.cols();
        let mut dx = Matrix::zeros(x.rows(), d);
        for i in 0..x.rows() {
            let ir = inv_rms[i];
            let mut sum_dxhat_xhat = 0.0f32;
            let mut dxhat = vec![0.0f32; d];
            for j in 0..d {
                let dyv = dy.at(i, j);
                let xh = x.at(i, j) * ir;
                let dxh = dyv * self.gain.value.at(0, j);
                dxhat[j] = dxh;
                sum_dxhat_xhat += dxh * xh;
                let cur_g = self.gain.grad.at(0, j);
                self.gain.grad.set(0, j, cur_g + dyv * xh);
            }
            let n = d as f32;
            for j in 0..d {
                let xh = x.at(i, j) * ir;
                dx.set(i, j, ir * (dxhat[j] - xh * sum_dxhat_xhat / n));
            }
        }
        dx
    }
}

/// Either normalization variant, dispatched by config.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Norm {
    /// OPT-style LayerNorm.
    Layer(LayerNorm),
    /// LLaMA-style RMSNorm.
    Rms(RmsNorm),
}

impl Norm {
    /// Training forward.
    pub fn forward(&mut self, x: &Matrix) -> Matrix {
        match self {
            Norm::Layer(n) => n.forward(x),
            Norm::Rms(n) => n.forward(x),
        }
    }

    /// Cache-free inference.
    pub fn infer(&self, x: &Matrix) -> Matrix {
        match self {
            Norm::Layer(n) => n.infer(x),
            Norm::Rms(n) => n.infer(x),
        }
    }

    /// Backward pass.
    pub fn backward(&mut self, dy: &Matrix) -> Matrix {
        match self {
            Norm::Layer(n) => n.backward(dy),
            Norm::Rms(n) => n.backward(dy),
        }
    }

    /// The gain parameter (for outlier-profile amplification).
    pub fn gain_mut(&mut self) -> &mut Param {
        match self {
            Norm::Layer(n) => &mut n.gain,
            Norm::Rms(n) => &mut n.gain,
        }
    }
}

const GELU_C: f32 = 0.797_884_6; // sqrt(2/pi)
const GELU_A: f32 = 0.044_715;

/// GELU activation (tanh approximation).
pub fn gelu(x: f32) -> f32 {
    0.5 * x * (1.0 + (GELU_C * (x + GELU_A * x * x * x)).tanh())
}

/// Derivative of [`gelu`].
pub fn gelu_deriv(x: f32) -> f32 {
    let u = GELU_C * (x + GELU_A * x * x * x);
    let t = u.tanh();
    0.5 * (1.0 + t) + 0.5 * x * (1.0 - t * t) * GELU_C * (1.0 + 3.0 * GELU_A * x * x)
}

/// Logistic sigmoid.
pub fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

/// SiLU activation `x * sigmoid(x)`.
pub fn silu(x: f32) -> f32 {
    x * sigmoid(x)
}

/// Derivative of [`silu`].
pub fn silu_deriv(x: f32) -> f32 {
    let s = sigmoid(x);
    s * (1.0 + x * (1.0 - s))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finite_diff_check(
        f: &mut dyn FnMut(&Matrix) -> f64,
        x: &Matrix,
        analytic_dx: &Matrix,
        eps: f32,
        tol: f64,
    ) {
        for i in 0..x.rows() {
            for j in 0..x.cols() {
                let mut xp = x.clone();
                xp.set(i, j, x.at(i, j) + eps);
                let mut xm = x.clone();
                xm.set(i, j, x.at(i, j) - eps);
                let numeric = (f(&xp) - f(&xm)) / (2.0 * eps as f64);
                let analytic = analytic_dx.at(i, j) as f64;
                assert!(
                    (numeric - analytic).abs() < tol * (1.0 + numeric.abs()),
                    "grad mismatch at ({i},{j}): numeric {numeric} vs analytic {analytic}"
                );
            }
        }
    }

    fn loss_of(y: &Matrix) -> f64 {
        // A fixed quadratic-ish loss: sum of 0.5*y^2 + 0.3*y.
        y.iter()
            .map(|&v| 0.5 * (v as f64) * (v as f64) + 0.3 * v as f64)
            .sum()
    }

    fn dloss_of(y: &Matrix) -> Matrix {
        y.map(|v| v + 0.3)
    }

    #[test]
    fn linear_gradients_match_finite_differences() {
        let mut rng = Xoshiro256::seed_from_u64(1);
        let mut lin = Linear::new(4, 3, true, &mut rng);
        let x = Matrix::from_fn(5, 4, |_, _| rng.normal_f32(0.0, 1.0));

        let y = lin.forward(&x);
        let dx = lin.backward(&dloss_of(&y));

        let mut f = |xq: &Matrix| loss_of(&lin.infer(xq));
        finite_diff_check(&mut f, &x, &dx, 1e-3, 1e-2);

        // Weight gradient via finite differences on one entry.
        let (wi, wj) = (2, 1);
        let orig = lin.weight.value.at(wi, wj);
        lin.weight.value.set(wi, wj, orig + 1e-3);
        let lp = loss_of(&lin.infer(&x));
        lin.weight.value.set(wi, wj, orig - 1e-3);
        let lm = loss_of(&lin.infer(&x));
        lin.weight.value.set(wi, wj, orig);
        let numeric = (lp - lm) / 2e-3;
        let analytic = lin.weight.grad.at(wi, wj) as f64;
        assert!((numeric - analytic).abs() < 1e-2 * (1.0 + numeric.abs()));
    }

    #[test]
    fn layernorm_gradients_match_finite_differences() {
        let mut rng = Xoshiro256::seed_from_u64(2);
        let mut ln = LayerNorm::new(6);
        // Non-trivial gain/bias so parameter paths are exercised.
        for j in 0..6 {
            ln.gain.value.set(0, j, 1.0 + 0.1 * j as f32);
            ln.bias.value.set(0, j, 0.05 * j as f32);
        }
        let x = Matrix::from_fn(3, 6, |_, _| rng.normal_f32(0.0, 1.5));
        let y = ln.forward(&x);
        let dx = ln.backward(&dloss_of(&y));
        let mut f = |xq: &Matrix| loss_of(&ln.infer(xq));
        finite_diff_check(&mut f, &x, &dx, 1e-3, 2e-2);
    }

    #[test]
    fn rmsnorm_gradients_match_finite_differences() {
        let mut rng = Xoshiro256::seed_from_u64(3);
        let mut rn = RmsNorm::new(5);
        for j in 0..5 {
            rn.gain.value.set(0, j, 0.8 + 0.15 * j as f32);
        }
        let x = Matrix::from_fn(4, 5, |_, _| rng.normal_f32(0.2, 1.0));
        let y = rn.forward(&x);
        let dx = rn.backward(&dloss_of(&y));
        let mut f = |xq: &Matrix| loss_of(&rn.infer(xq));
        finite_diff_check(&mut f, &x, &dx, 1e-3, 2e-2);
    }

    #[test]
    fn gelu_and_silu_derivatives_match_finite_differences() {
        for &x in &[-3.0f32, -1.0, -0.1, 0.0, 0.5, 2.0, 4.0] {
            let eps = 1e-3;
            let num_g = (gelu(x + eps) - gelu(x - eps)) / (2.0 * eps);
            assert!((num_g - gelu_deriv(x)).abs() < 1e-3, "gelu'({x})");
            let num_s = (silu(x + eps) - silu(x - eps)) / (2.0 * eps);
            assert!((num_s - silu_deriv(x)).abs() < 1e-3, "silu'({x})");
        }
    }

    #[test]
    fn embedding_scatter_gradients() {
        let mut rng = Xoshiro256::seed_from_u64(4);
        let mut emb = Embedding::new(10, 8, 4, &mut rng);
        let tokens = [3u32, 3, 7];
        let y = emb.forward(&tokens);
        let dy = Matrix::full(3, 4, 1.0);
        emb.backward(&dy);
        // Token 3 occurs twice -> grad 2, token 7 once -> grad 1.
        assert_eq!(emb.tok.grad.at(3, 0), 2.0);
        assert_eq!(emb.tok.grad.at(7, 0), 1.0);
        assert_eq!(emb.tok.grad.at(0, 0), 0.0);
        // Positions 0..3 each get grad 1.
        assert_eq!(emb.pos.grad.at(0, 0), 1.0);
        assert_eq!(emb.pos.grad.at(2, 3), 1.0);
        assert_eq!(y.rows(), 3);
    }

    #[test]
    fn adam_reduces_a_quadratic() {
        // Minimize ||w - target||^2 with Adam; expect rapid convergence.
        let target = Matrix::from_rows(&[&[1.0, -2.0, 0.5]]);
        let mut p = Param::new(Matrix::zeros(1, 3));
        for t in 1..=500 {
            p.zero_grad();
            let diff = p.value.sub(&target);
            p.grad.add_assign(&diff.scale(2.0));
            p.adam_step(0.05, 0.9, 0.999, 1e-8, t);
        }
        for (w, t) in p.value.iter().zip(target.iter()) {
            assert!((w - t).abs() < 1e-2, "{w} vs {t}");
        }
    }

    #[test]
    fn channel_accum_means_and_maxes() {
        let mut acc = ChannelAccum::new(2);
        acc.record(&Matrix::from_rows(&[&[1.0, -2.0], &[3.0, 2.0]]));
        assert_eq!(acc.mean_abs(), vec![2.0, 2.0]);
        assert_eq!(acc.max_abs(), vec![3.0, 2.0]);
        assert_eq!(acc.count(), 2);
    }

    #[test]
    fn hessian_accumulates_gram_matrix() {
        let mut rng = Xoshiro256::seed_from_u64(6);
        let mut lin = Linear::new(2, 2, false, &mut rng);
        lin.enable_hessian();
        let x = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, -1.0]]);
        let _ = lin.forward(&x);
        let h = lin.take_hessian().expect("hessian enabled");
        // H = x^T x = [[10, -1], [-1, 5]]
        assert_eq!(h, Matrix::from_rows(&[&[10.0, -1.0], &[-1.0, 5.0]]));
        assert!(lin.take_hessian().is_none());
    }

    #[test]
    fn linear_recording_captures_channel_magnitudes() {
        let mut rng = Xoshiro256::seed_from_u64(5);
        let mut lin = Linear::new(3, 2, false, &mut rng);
        lin.enable_recording();
        let x = Matrix::from_rows(&[&[1.0, -4.0, 0.0], &[-1.0, 4.0, 0.0]]);
        let _ = lin.forward(&x);
        let rec = lin.take_recording().expect("recording enabled");
        assert_eq!(rec.mean_abs(), vec![1.0, 4.0, 0.0]);
        assert!(lin.take_recording().is_none());
    }
}
