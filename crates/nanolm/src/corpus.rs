//! Synthetic grammar corpora standing in for WikiText and Alpaca.
//!
//! The paper measures perplexity on WikiText and fine-tune drift on a 4k
//! Alpaca subset; neither dataset ships with this environment. What the
//! experiments actually need is (a) held-out text from the model's
//! training distribution, and (b) a second, recognizably different
//! distribution for the fine-tuned integrity controls of Table 4. Both are
//! provided by a seeded stochastic grammar with Zipfian vocabulary usage,
//! subject/verb/object templates, and a determiner–noun agreement rule —
//! enough latent structure for a nano-LM to learn, and enough for
//! multiple-choice distractor tasks to be non-trivial.

use emmark_tensor::rng::Xoshiro256;
use serde::{Deserialize, Serialize};

/// Token classes of the synthetic grammar. Token ids are assigned in this
/// order, contiguously, starting at 0.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TokenClass {
    /// Determiners; the first half agree with gender-0 nouns, the second
    /// half with gender-1 nouns.
    Determiner,
    /// Adjectives.
    Adjective,
    /// Nouns; the first half are gender-0, the second half gender-1.
    Noun,
    /// Verbs; the first half are transitive.
    Verb,
    /// Adverbs.
    Adverb,
    /// Prepositions.
    Preposition,
    /// Proper names.
    Name,
    /// Sentence-final punctuation.
    Stop,
}

/// Class layout: (class, count). Total must stay <= vocab of the models.
const LAYOUT: &[(TokenClass, usize)] = &[
    (TokenClass::Determiner, 4),
    (TokenClass::Adjective, 8),
    (TokenClass::Noun, 12),
    (TokenClass::Verb, 10),
    (TokenClass::Adverb, 6),
    (TokenClass::Preposition, 4),
    (TokenClass::Name, 8),
    (TokenClass::Stop, 2),
];

/// Sentence templates (sequences of classes). `None` marks an optional
/// slot filled with 50% probability.
type Template = &'static [Option<TokenClass>];

const TEMPLATES_WIKI: &[Template] = &[
    &[
        Some(TokenClass::Determiner),
        None,
        Some(TokenClass::Noun),
        Some(TokenClass::Verb),
        Some(TokenClass::Determiner),
        Some(TokenClass::Noun),
        Some(TokenClass::Stop),
    ],
    &[
        Some(TokenClass::Name),
        Some(TokenClass::Verb),
        Some(TokenClass::Adverb),
        Some(TokenClass::Stop),
    ],
    &[
        Some(TokenClass::Determiner),
        Some(TokenClass::Noun),
        Some(TokenClass::Verb),
        Some(TokenClass::Preposition),
        Some(TokenClass::Determiner),
        Some(TokenClass::Noun),
        Some(TokenClass::Stop),
    ],
];

const TEMPLATES_ALPACA: &[Template] = &[
    &[
        Some(TokenClass::Verb),
        Some(TokenClass::Determiner),
        Some(TokenClass::Adjective),
        Some(TokenClass::Noun),
        Some(TokenClass::Stop),
    ],
    &[
        Some(TokenClass::Name),
        Some(TokenClass::Verb),
        Some(TokenClass::Name),
        Some(TokenClass::Adverb),
        Some(TokenClass::Stop),
    ],
    &[
        Some(TokenClass::Adverb),
        Some(TokenClass::Verb),
        Some(TokenClass::Determiner),
        Some(TokenClass::Noun),
        Some(TokenClass::Preposition),
        Some(TokenClass::Name),
        Some(TokenClass::Stop),
    ],
];

/// A seeded stochastic grammar over a small token vocabulary.
///
/// # Examples
///
/// ```
/// use emmark_nanolm::corpus::Grammar;
/// let g = Grammar::synwiki(1);
/// let tokens = g.generate(256);
/// assert_eq!(tokens.len(), 256);
/// assert!(tokens.iter().all(|&t| (t as usize) < g.vocab_size()));
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Grammar {
    seed: u64,
    /// Template table selector: 0 = SynWiki, 1 = SynAlpaca.
    flavor: u8,
    /// Zipf exponent for within-class token choice.
    zipf_s: f64,
}

impl Grammar {
    /// The "SynWiki" distribution used for pre-training and perplexity.
    pub fn synwiki(seed: u64) -> Self {
        Self {
            seed,
            flavor: 0,
            zipf_s: 1.1,
        }
    }

    /// The "SynAlpaca" distribution used for the fine-tuned Table 4
    /// integrity control.
    pub fn synalpaca(seed: u64) -> Self {
        Self {
            seed,
            flavor: 1,
            zipf_s: 0.7,
        }
    }

    /// Vocabulary size implied by the class layout.
    pub fn vocab_size(&self) -> usize {
        LAYOUT.iter().map(|&(_, n)| n).sum()
    }

    /// First token id and count for `class`.
    pub fn class_range(&self, class: TokenClass) -> (u32, usize) {
        let mut start = 0u32;
        for &(c, n) in LAYOUT {
            if c == class {
                return (start, n);
            }
            start += n as u32;
        }
        unreachable!("class missing from layout")
    }

    /// Class of a token id.
    ///
    /// # Panics
    ///
    /// Panics if `token` is outside the vocabulary.
    pub fn class_of(&self, token: u32) -> TokenClass {
        let mut start = 0u32;
        for &(c, n) in LAYOUT {
            if token < start + n as u32 {
                return c;
            }
            start += n as u32;
        }
        panic!("token {token} outside vocabulary");
    }

    fn zipf_pick(&self, rng: &mut Xoshiro256, count: usize) -> usize {
        // Zipf weights 1/r^s over ranks 1..=count.
        let weights: Vec<f64> = (1..=count)
            .map(|r| 1.0 / (r as f64).powf(self.zipf_s))
            .collect();
        rng.weighted_index(&weights)
    }

    /// Emits one token of `class`, honoring gender agreement: when a
    /// determiner has been emitted, the following noun must share its
    /// gender half.
    fn emit(
        &self,
        rng: &mut Xoshiro256,
        class: TokenClass,
        pending_gender: &mut Option<usize>,
    ) -> u32 {
        let (start, count) = self.class_range(class);
        match class {
            TokenClass::Determiner => {
                let half = count / 2;
                let gender = rng.below(2);
                *pending_gender = Some(gender);
                start + (gender * half + self.zipf_pick(rng, half)) as u32
            }
            TokenClass::Noun => {
                let half = count / 2;
                let gender = pending_gender.take().unwrap_or_else(|| rng.below(2));
                start + (gender * half + self.zipf_pick(rng, half)) as u32
            }
            _ => start + self.zipf_pick(rng, count) as u32,
        }
    }

    fn templates(&self) -> &'static [Template] {
        if self.flavor == 0 {
            TEMPLATES_WIKI
        } else {
            TEMPLATES_ALPACA
        }
    }

    /// Generates one sentence (ends with a [`TokenClass::Stop`] token).
    pub fn sentence(&self, rng: &mut Xoshiro256) -> Vec<u32> {
        let template = *rng.choose(self.templates());
        let mut out = Vec::with_capacity(template.len());
        let mut pending_gender = None;
        for slot in template {
            match slot {
                Some(class) => out.push(self.emit(rng, *class, &mut pending_gender)),
                None => {
                    if rng.below(2) == 0 {
                        out.push(self.emit(rng, TokenClass::Adjective, &mut pending_gender));
                    }
                }
            }
        }
        out
    }

    /// Generates exactly `n_tokens` tokens of sentence stream.
    pub fn generate(&self, n_tokens: usize) -> Vec<u32> {
        self.generate_seeded(self.seed, n_tokens)
    }

    /// Generates `n_tokens` using an explicit stream seed (so disjoint
    /// splits can be drawn from one grammar).
    pub fn generate_seeded(&self, stream_seed: u64, n_tokens: usize) -> Vec<u32> {
        let mut rng = Xoshiro256::seed_from_u64(stream_seed ^ 0xC0FF_EE00 ^ self.flavor as u64);
        let mut out = Vec::with_capacity(n_tokens + 8);
        while out.len() < n_tokens {
            out.extend(self.sentence(&mut rng));
        }
        out.truncate(n_tokens);
        out
    }
}

/// Train/validation/test token splits drawn from one [`Grammar`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Corpus {
    /// Training stream.
    pub train: Vec<u32>,
    /// Validation stream (early stopping / monitoring).
    pub valid: Vec<u32>,
    /// Held-out test stream (perplexity reporting).
    pub test: Vec<u32>,
    /// The generating grammar (needed by the zero-shot task builders).
    pub grammar: Grammar,
}

impl Corpus {
    /// Draws disjoint-seeded splits of the given sizes.
    ///
    /// # Examples
    ///
    /// ```
    /// use emmark_nanolm::corpus::{Corpus, Grammar};
    /// let c = Corpus::sample(Grammar::synwiki(3), 1000, 100, 100);
    /// assert_eq!(c.train.len(), 1000);
    /// assert_ne!(c.train[..50], c.test[..50]);
    /// ```
    pub fn sample(grammar: Grammar, train: usize, valid: usize, test: usize) -> Self {
        let t = grammar.generate_seeded(grammar.seed.wrapping_add(1), train);
        let v = grammar.generate_seeded(grammar.seed.wrapping_add(2), valid);
        let te = grammar.generate_seeded(grammar.seed.wrapping_add(3), test);
        Self {
            train: t,
            valid: v,
            test: te,
            grammar,
        }
    }

    /// Default-size corpus for experiments (48k/6k/6k tokens).
    pub fn default_experiment(seed: u64) -> Self {
        Self::sample(Grammar::synwiki(seed), 48_000, 6_000, 6_000)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vocab_fits_class_layout() {
        let g = Grammar::synwiki(0);
        assert_eq!(g.vocab_size(), 54);
        let (start, n) = g.class_range(TokenClass::Stop);
        assert_eq!(start as usize + n, g.vocab_size());
    }

    #[test]
    fn class_of_is_inverse_of_range() {
        let g = Grammar::synwiki(0);
        for &(class, _) in LAYOUT {
            let (start, n) = g.class_range(class);
            for t in start..start + n as u32 {
                assert_eq!(g.class_of(t), class);
            }
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let g = Grammar::synwiki(11);
        assert_eq!(g.generate(500), g.generate(500));
        let g2 = Grammar::synwiki(12);
        assert_ne!(g.generate(500), g2.generate(500));
    }

    #[test]
    fn flavors_differ() {
        let w = Grammar::synwiki(5).generate(400);
        let a = Grammar::synalpaca(5).generate(400);
        assert_ne!(w, a);
    }

    #[test]
    fn sentences_end_with_stop() {
        let g = Grammar::synwiki(2);
        let mut rng = Xoshiro256::seed_from_u64(9);
        for _ in 0..100 {
            let s = g.sentence(&mut rng);
            assert_eq!(g.class_of(*s.last().unwrap()), TokenClass::Stop);
            assert!(s.len() >= 3);
        }
    }

    #[test]
    fn determiner_noun_agreement_holds() {
        let g = Grammar::synwiki(4);
        let mut rng = Xoshiro256::seed_from_u64(77);
        let (det_start, det_n) = g.class_range(TokenClass::Determiner);
        let (noun_start, noun_n) = g.class_range(TokenClass::Noun);
        let mut checked = 0;
        for _ in 0..300 {
            let s = g.sentence(&mut rng);
            for w in s.windows(2) {
                // A determiner immediately followed by a noun must agree.
                if g.class_of(w[0]) == TokenClass::Determiner
                    && g.class_of(w[1]) == TokenClass::Noun
                {
                    let det_gender = ((w[0] - det_start) as usize) / (det_n / 2);
                    let noun_gender = ((w[1] - noun_start) as usize) / (noun_n / 2);
                    assert_eq!(det_gender, noun_gender, "agreement violated in {s:?}");
                    checked += 1;
                }
            }
        }
        assert!(checked > 20, "agreement rule never exercised");
    }

    #[test]
    fn corpus_splits_are_disjoint_streams() {
        let c = Corpus::sample(Grammar::synwiki(8), 2000, 500, 500);
        assert_eq!(c.train.len(), 2000);
        assert_eq!(c.valid.len(), 500);
        assert_eq!(c.test.len(), 500);
        assert_ne!(&c.train[..500], &c.valid[..]);
        assert_ne!(&c.valid, &c.test);
    }

    #[test]
    fn zipf_skews_token_frequencies() {
        let g = Grammar::synwiki(3);
        let tokens = g.generate(20_000);
        let (noun_start, noun_n) = g.class_range(TokenClass::Noun);
        let mut counts = vec![0usize; noun_n / 2];
        for &t in &tokens {
            if g.class_of(t) == TokenClass::Noun {
                let idx = ((t - noun_start) as usize) % (noun_n / 2);
                counts[idx] += 1;
            }
        }
        // Rank-1 noun should be clearly more frequent than the last rank.
        assert!(counts[0] > counts[noun_n / 2 - 1] * 2, "{counts:?}");
    }
}
