//! Feed-forward blocks: GELU MLP (OPT-style) and gated-SiLU MLP
//! (LLaMA-style), with manual backprop.

use crate::layers::{gelu, gelu_deriv, silu, silu_deriv, Linear};
use emmark_tensor::rng::Xoshiro256;
use emmark_tensor::Matrix;
use serde::{Deserialize, Serialize};

/// Two-linear GELU MLP: `fc2(gelu(fc1(x)))`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GeluMlp {
    /// Up projection `[d_model, d_ff]`.
    pub fc1: Linear,
    /// Down projection `[d_ff, d_model]`.
    pub fc2: Linear,
    #[serde(skip)]
    cache_pre_act: Option<Matrix>,
}

impl GeluMlp {
    /// Creates the two projections.
    pub fn new(d_model: usize, d_ff: usize, bias: bool, rng: &mut Xoshiro256) -> Self {
        Self {
            fc1: Linear::new(d_model, d_ff, bias, rng),
            fc2: Linear::new(d_ff, d_model, bias, rng),
            cache_pre_act: None,
        }
    }

    /// Training forward.
    pub fn forward(&mut self, x: &Matrix) -> Matrix {
        let h = self.fc1.forward(x);
        let a = h.map(gelu);
        self.cache_pre_act = Some(h);
        self.fc2.forward(&a)
    }

    /// Cache-free inference.
    pub fn infer(&self, x: &Matrix) -> Matrix {
        self.fc2.infer(&self.fc1.infer(x).map(gelu))
    }

    /// Backward pass; returns `dx`.
    ///
    /// # Panics
    ///
    /// Panics if called before [`Self::forward`].
    pub fn backward(&mut self, dy: &Matrix) -> Matrix {
        let h = self
            .cache_pre_act
            .take()
            .expect("GeluMlp::backward before forward");
        let da = self.fc2.backward(dy);
        let dh = Matrix::from_fn(da.rows(), da.cols(), |i, j| {
            da.at(i, j) * gelu_deriv(h.at(i, j))
        });
        self.fc1.backward(&dh)
    }
}

/// Gated SiLU MLP: `down(silu(gate(x)) ⊙ up(x))`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GatedMlp {
    /// Gate projection `[d_model, d_ff]`.
    pub gate: Linear,
    /// Up projection `[d_model, d_ff]`.
    pub up: Linear,
    /// Down projection `[d_ff, d_model]`.
    pub down: Linear,
    #[serde(skip)]
    cache: Option<(Matrix, Matrix)>, // (gate pre-act, up output)
}

impl GatedMlp {
    /// Creates the three projections (no bias, as in LLaMA).
    pub fn new(d_model: usize, d_ff: usize, rng: &mut Xoshiro256) -> Self {
        Self {
            gate: Linear::new(d_model, d_ff, false, rng),
            up: Linear::new(d_model, d_ff, false, rng),
            down: Linear::new(d_ff, d_model, false, rng),
            cache: None,
        }
    }

    /// Training forward.
    pub fn forward(&mut self, x: &Matrix) -> Matrix {
        let g = self.gate.forward(x);
        let u = self.up.forward(x);
        let a = Matrix::from_fn(g.rows(), g.cols(), |i, j| silu(g.at(i, j)) * u.at(i, j));
        self.cache = Some((g, u));
        self.down.forward(&a)
    }

    /// Cache-free inference.
    pub fn infer(&self, x: &Matrix) -> Matrix {
        let g = self.gate.infer(x);
        let u = self.up.infer(x);
        let a = Matrix::from_fn(g.rows(), g.cols(), |i, j| silu(g.at(i, j)) * u.at(i, j));
        self.down.infer(&a)
    }

    /// Backward pass; returns `dx`.
    ///
    /// # Panics
    ///
    /// Panics if called before [`Self::forward`].
    pub fn backward(&mut self, dy: &Matrix) -> Matrix {
        let (g, u) = self
            .cache
            .take()
            .expect("GatedMlp::backward before forward");
        let da = self.down.backward(dy);
        let dg = Matrix::from_fn(da.rows(), da.cols(), |i, j| {
            da.at(i, j) * u.at(i, j) * silu_deriv(g.at(i, j))
        });
        let du = Matrix::from_fn(da.rows(), da.cols(), |i, j| da.at(i, j) * silu(g.at(i, j)));
        let mut dx = self.gate.backward(&dg);
        dx.add_assign(&self.up.backward(&du));
        dx
    }
}

/// Either feed-forward variant, dispatched by config.
// The size gap between variants is irrelevant: one Mlp exists per block.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Mlp {
    /// OPT-style GELU MLP.
    Gelu(GeluMlp),
    /// LLaMA-style gated SiLU MLP.
    Gated(GatedMlp),
}

impl Mlp {
    /// Training forward.
    pub fn forward(&mut self, x: &Matrix) -> Matrix {
        match self {
            Mlp::Gelu(m) => m.forward(x),
            Mlp::Gated(m) => m.forward(x),
        }
    }

    /// Cache-free inference.
    pub fn infer(&self, x: &Matrix) -> Matrix {
        match self {
            Mlp::Gelu(m) => m.infer(x),
            Mlp::Gated(m) => m.infer(x),
        }
    }

    /// Backward pass.
    pub fn backward(&mut self, dy: &Matrix) -> Matrix {
        match self {
            Mlp::Gelu(m) => m.backward(dy),
            Mlp::Gated(m) => m.backward(dy),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn loss_of(y: &Matrix) -> f64 {
        y.iter()
            .map(|&v| 0.5 * (v as f64) * (v as f64) - 0.2 * v as f64)
            .sum()
    }

    fn dloss_of(y: &Matrix) -> Matrix {
        y.map(|v| v - 0.2)
    }

    /// Checks the analytic input gradient `dx` against central finite
    /// differences of the given cache-free scoring function.
    fn check_against_fd(score: &dyn Fn(&Matrix) -> f64, x: &Matrix, dx: &Matrix) {
        let eps = 1e-3f32;
        for i in 0..x.rows() {
            for j in 0..x.cols() {
                let mut xp = x.clone();
                xp.set(i, j, x.at(i, j) + eps);
                let mut xm = x.clone();
                xm.set(i, j, x.at(i, j) - eps);
                let numeric = (score(&xp) - score(&xm)) / (2.0 * eps as f64);
                let analytic = dx.at(i, j) as f64;
                assert!(
                    (numeric - analytic).abs() < 2e-2 * (1.0 + numeric.abs()),
                    "({i},{j}): numeric {numeric} vs analytic {analytic}"
                );
            }
        }
    }

    #[test]
    fn gelu_mlp_gradients_match_finite_differences() {
        let mut rng = Xoshiro256::seed_from_u64(1);
        let mut mlp = GeluMlp::new(4, 8, true, &mut rng);
        let x = Matrix::from_fn(3, 4, |_, _| rng.normal_f32(0.0, 1.0));
        let y = mlp.forward(&x);
        let dx = mlp.backward(&dloss_of(&y));
        check_against_fd(&|xq| loss_of(&mlp.infer(xq)), &x, &dx);
    }

    #[test]
    fn gated_mlp_gradients_match_finite_differences() {
        let mut rng = Xoshiro256::seed_from_u64(2);
        let mut mlp = GatedMlp::new(4, 6, &mut rng);
        let x = Matrix::from_fn(3, 4, |_, _| rng.normal_f32(0.1, 0.9));
        let y = mlp.forward(&x);
        let dx = mlp.backward(&dloss_of(&y));
        check_against_fd(&|xq| loss_of(&mlp.infer(xq)), &x, &dx);
    }

    #[test]
    fn variants_agree_between_forward_and_infer() {
        let mut rng = Xoshiro256::seed_from_u64(3);
        let mut g = Mlp::Gelu(GeluMlp::new(4, 8, true, &mut rng));
        let mut s = Mlp::Gated(GatedMlp::new(4, 8, &mut rng));
        let x = Matrix::from_fn(2, 4, |_, _| rng.normal_f32(0.0, 1.0));
        for m in [&mut g, &mut s] {
            let y1 = m.forward(&x);
            let y2 = m.infer(&x);
            for (a, b) in y1.iter().zip(y2.iter()) {
                assert!((a - b).abs() < 1e-6);
            }
            let _ = m.backward(&y1); // drain cache
        }
    }
}
