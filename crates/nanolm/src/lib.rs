//! # emmark-nanolm
//!
//! A from-scratch decoder-only transformer language model — forward pass,
//! manual backprop, Adam — plus synthetic corpora and the nine-model
//! Sim-OPT / Sim-LLaMA evaluation grid. This crate is the stand-in for
//! the OPT and LLaMA-2 checkpoints the EmMark paper watermarks (see
//! DESIGN.md §1 for the substitution argument).
//!
//! The watermarking pipeline consumes two things from here:
//!
//! * trained full-precision weights, via
//!   [`model::TransformerModel::linear_layers`] in a canonical traversal
//!   order shared with the quantizer, and
//! * the per-channel full-precision activation profile `A_f`, via
//!   [`model::TransformerModel::collect_activation_stats`].
//!
//! # Examples
//!
//! ```
//! use emmark_nanolm::{config::ModelConfig, corpus::{Corpus, Grammar},
//!     model::{LogitsModel, TransformerModel}, train::{train, TrainConfig}};
//!
//! let corpus = Corpus::sample(Grammar::synwiki(7), 2000, 200, 200);
//! let mut cfg = ModelConfig::tiny_test();
//! cfg.vocab_size = corpus.grammar.vocab_size();
//! let mut model = TransformerModel::new(cfg);
//! train(&mut model, &corpus, &TrainConfig::tiny_test());
//! let logits = model.logits(&corpus.test[..8]);
//! assert_eq!(logits.rows(), 8);
//! ```

pub mod attention;
pub mod config;
pub mod corpus;
pub mod families;
pub mod generate;
pub mod layers;
pub mod lora;
pub mod mlp;
pub mod model;
pub mod train;

pub use config::ModelConfig;
pub use corpus::{Corpus, Grammar};
pub use model::{ActivationStats, LogitsModel, TransformerModel};
