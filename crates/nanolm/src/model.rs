//! The nano transformer language model: forward, loss, backward, parameter
//! traversal, and full-precision activation statistics capture.

use crate::attention::MultiHeadAttention;
use crate::config::{MlpKind, ModelConfig, NormKind};
use crate::layers::{Embedding, LayerNorm, Linear, Norm, Param, RmsNorm};
use crate::mlp::{GatedMlp, GeluMlp, Mlp};
use emmark_tensor::rng::Xoshiro256;
use emmark_tensor::Matrix;
use serde::{Deserialize, Serialize};

/// Anything that can score token sequences — implemented both by the
/// full-precision [`TransformerModel`] and by the quantized runtime in
/// `emmark-quant`, so the evaluation harness is precision-agnostic.
pub trait LogitsModel {
    /// Next-token logits for every position: `[T, vocab]`.
    fn logits(&self, tokens: &[u32]) -> Matrix;
    /// Vocabulary size.
    fn vocab_size(&self) -> usize;
    /// Longest supported sequence.
    fn max_seq(&self) -> usize;
}

/// One transformer block (pre-norm residual architecture).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Block {
    /// Pre-attention norm.
    pub norm1: Norm,
    /// Self-attention.
    pub attn: MultiHeadAttention,
    /// Pre-MLP norm.
    pub norm2: Norm,
    /// Feed-forward.
    pub mlp: Mlp,
}

impl Block {
    fn new(cfg: &ModelConfig, rng: &mut Xoshiro256) -> Self {
        let make_norm = |d: usize| match cfg.norm {
            NormKind::LayerNorm => Norm::Layer(LayerNorm::new(d)),
            NormKind::RmsNorm => Norm::Rms(RmsNorm::new(d)),
        };
        let bias = matches!(cfg.norm, NormKind::LayerNorm); // OPT uses biases; LLaMA does not
        let mlp = match cfg.mlp {
            MlpKind::Gelu => Mlp::Gelu(GeluMlp::new(cfg.d_model, cfg.d_ff, bias, rng)),
            MlpKind::GatedSilu => Mlp::Gated(GatedMlp::new(cfg.d_model, cfg.d_ff, rng)),
        };
        Self {
            norm1: make_norm(cfg.d_model),
            attn: MultiHeadAttention::new(cfg.d_model, cfg.n_heads, bias, rng),
            norm2: make_norm(cfg.d_model),
            mlp,
        }
    }

    fn forward(&mut self, x: &Matrix) -> Matrix {
        let mut h = x.add(&{
            let n = self.norm1.forward(x);
            self.attn.forward(&n)
        });
        let m = {
            let n = self.norm2.forward(&h);
            self.mlp.forward(&n)
        };
        h.add_assign(&m);
        h
    }

    fn infer(&self, x: &Matrix) -> Matrix {
        let mut h = x.add(&self.attn.infer(&self.norm1.infer(x)));
        let m = self.mlp.infer(&self.norm2.infer(&h));
        h.add_assign(&m);
        h
    }

    fn backward(&mut self, dy: &Matrix) -> Matrix {
        // h = x + attn(norm1(x)); out = h + mlp(norm2(h))
        let dmlp_in = self.mlp.backward(dy);
        let mut dh = self.norm2.backward(&dmlp_in);
        dh.add_assign(dy);
        let dattn_in = self.attn.backward(&dh);
        let mut dx = self.norm1.backward(&dattn_in);
        dx.add_assign(&dh);
        dx
    }
}

/// Activation profile of one quantizable linear layer's input channels.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerActivation {
    /// Mean `|activation|` per channel — the paper's `A_f` (Eq. 4).
    pub mean_abs: Vec<f32>,
    /// Max `|activation|` per channel — drives SmoothQuant migration and
    /// the LLM.int8() outlier threshold.
    pub max_abs: Vec<f32>,
}

/// Full-precision activation statistics for every quantizable linear
/// layer, in canonical traversal order.
///
/// This is the paper's `A_f` — the confidential material an adversary
/// without the full-precision model cannot reproduce (§4.1).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ActivationStats {
    /// One entry per quantizable layer.
    pub per_layer: Vec<LayerActivation>,
}

impl ActivationStats {
    /// Number of recorded layers.
    pub fn layer_count(&self) -> usize {
        self.per_layer.len()
    }
}

/// A decoder-only transformer language model.
///
/// # Examples
///
/// ```
/// use emmark_nanolm::{config::ModelConfig, model::{TransformerModel, LogitsModel}};
/// let model = TransformerModel::new(ModelConfig::tiny_test());
/// let logits = model.logits(&[1, 2, 3]);
/// assert_eq!(logits.shape(), (3, 32));
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TransformerModel {
    /// Hyperparameters.
    pub cfg: ModelConfig,
    /// Token + positional embedding.
    pub emb: Embedding,
    /// Transformer blocks.
    pub blocks: Vec<Block>,
    /// Final normalization.
    pub final_norm: Norm,
    /// LM head `[d_model, vocab]`.
    pub head: Linear,
}

impl TransformerModel {
    /// Initializes a model from its config (seeded, deterministic).
    ///
    /// # Panics
    ///
    /// Panics if the config is invalid.
    pub fn new(cfg: ModelConfig) -> Self {
        cfg.validate()
            .unwrap_or_else(|e| panic!("invalid config: {e}"));
        let mut rng = Xoshiro256::seed_from_u64(cfg.init_seed);
        let emb = Embedding::new(cfg.vocab_size, cfg.max_seq, cfg.d_model, &mut rng);
        let blocks = (0..cfg.n_layers)
            .map(|_| Block::new(&cfg, &mut rng))
            .collect();
        let final_norm = match cfg.norm {
            NormKind::LayerNorm => Norm::Layer(LayerNorm::new(cfg.d_model)),
            NormKind::RmsNorm => Norm::Rms(RmsNorm::new(cfg.d_model)),
        };
        let head = Linear::new(cfg.d_model, cfg.vocab_size, false, &mut rng);
        let mut model = Self {
            cfg,
            emb,
            blocks,
            final_norm,
            head,
        };
        model.apply_outlier_profile();
        model
    }

    /// Amplifies a seeded subset of channels to mimic the activation
    /// outliers of large LLMs (see `OutlierProfile`).
    fn apply_outlier_profile(&mut self) {
        let Some(profile) = self.cfg.outliers else {
            return;
        };
        let mut rng = Xoshiro256::seed_from_u64(profile.seed);
        let channels = rng
            .sample_without_replacement(self.cfg.d_model, profile.channels.min(self.cfg.d_model));
        for &c in &channels {
            for r in 0..self.emb.tok.value.rows() {
                let v = self.emb.tok.value.at(r, c);
                self.emb.tok.value.set(r, c, v * profile.factor);
            }
            for block in &mut self.blocks {
                for norm in [&mut block.norm1, &mut block.norm2] {
                    let g = norm.gain_mut();
                    let v = g.value.at(0, c);
                    g.value.set(0, c, v * profile.factor);
                }
            }
        }
    }

    /// Training forward: logits `[T, vocab]` with caches retained.
    pub fn forward(&mut self, tokens: &[u32]) -> Matrix {
        let mut h = self.emb.forward(tokens);
        for block in &mut self.blocks {
            h = block.forward(&h);
        }
        let h = self.final_norm.forward(&h);
        self.head.forward(&h)
    }

    /// Cross-entropy loss of next-token prediction over `tokens`, plus the
    /// backward pass (gradients accumulate into the parameters).
    ///
    /// Returns the mean negative log-likelihood in nats.
    ///
    /// # Panics
    ///
    /// Panics if `tokens.len() < 2`.
    pub fn loss_and_backward(&mut self, tokens: &[u32]) -> f64 {
        assert!(
            tokens.len() >= 2,
            "need at least two tokens for next-token loss"
        );
        let inputs = &tokens[..tokens.len() - 1];
        let targets = &tokens[1..];
        let logits = self.forward(inputs);
        let (loss, dlogits) = cross_entropy(&logits, targets);
        let dh = self.head.backward(&dlogits);
        let mut dh = self.final_norm.backward(&dh);
        for block in self.blocks.iter_mut().rev() {
            dh = block.backward(&dh);
        }
        self.emb.backward(&dh);
        loss
    }

    /// Mean next-token NLL (nats) without touching gradients.
    pub fn nll(&self, tokens: &[u32]) -> f64 {
        assert!(tokens.len() >= 2, "need at least two tokens");
        let logits = self.logits(&tokens[..tokens.len() - 1]);
        nll_of_logits(&logits, &tokens[1..])
    }

    /// Applies `f` to every trainable parameter, in a fixed canonical
    /// order.
    pub fn for_each_param(&mut self, mut f: impl FnMut(&mut Param)) {
        f(&mut self.emb.tok);
        f(&mut self.emb.pos);
        for block in &mut self.blocks {
            for norm in [&mut block.norm1, &mut block.norm2] {
                match norm {
                    Norm::Layer(n) => {
                        f(&mut n.gain);
                        f(&mut n.bias);
                    }
                    Norm::Rms(n) => f(&mut n.gain),
                }
            }
            for lin in [
                &mut block.attn.wq,
                &mut block.attn.wk,
                &mut block.attn.wv,
                &mut block.attn.wo,
            ] {
                f(&mut lin.weight);
                if let Some(b) = &mut lin.bias {
                    f(b);
                }
            }
            match &mut block.mlp {
                Mlp::Gelu(m) => {
                    for lin in [&mut m.fc1, &mut m.fc2] {
                        f(&mut lin.weight);
                        if let Some(b) = &mut lin.bias {
                            f(b);
                        }
                    }
                }
                Mlp::Gated(m) => {
                    for lin in [&mut m.gate, &mut m.up, &mut m.down] {
                        f(&mut lin.weight);
                    }
                }
            }
        }
        match &mut self.final_norm {
            Norm::Layer(n) => {
                f(&mut n.gain);
                f(&mut n.bias);
            }
            Norm::Rms(n) => f(&mut n.gain),
        }
        f(&mut self.head.weight);
    }

    /// Immutable references to every quantizable linear layer, in the
    /// canonical order used by the quantizer and the watermarker:
    /// per block `q, k, v, o`, then the MLP linears, then the LM head.
    pub fn linear_layers(&self) -> Vec<&Linear> {
        let mut out = Vec::with_capacity(self.cfg.quant_layer_count());
        for block in &self.blocks {
            out.push(&block.attn.wq);
            out.push(&block.attn.wk);
            out.push(&block.attn.wv);
            out.push(&block.attn.wo);
            match &block.mlp {
                Mlp::Gelu(m) => {
                    out.push(&m.fc1);
                    out.push(&m.fc2);
                }
                Mlp::Gated(m) => {
                    out.push(&m.gate);
                    out.push(&m.up);
                    out.push(&m.down);
                }
            }
        }
        out.push(&self.head);
        out
    }

    /// Mutable counterpart of [`Self::linear_layers`].
    pub fn linear_layers_mut(&mut self) -> Vec<&mut Linear> {
        let mut out = Vec::with_capacity(self.cfg.quant_layer_count());
        for block in &mut self.blocks {
            out.push(&mut block.attn.wq);
            out.push(&mut block.attn.wk);
            out.push(&mut block.attn.wv);
            out.push(&mut block.attn.wo);
            match &mut block.mlp {
                Mlp::Gelu(m) => {
                    out.push(&mut m.fc1);
                    out.push(&mut m.fc2);
                }
                Mlp::Gated(m) => {
                    out.push(&mut m.gate);
                    out.push(&mut m.up);
                    out.push(&mut m.down);
                }
            }
        }
        out.push(&mut self.head);
        out
    }

    /// Runs `calibration` sequences through the model while recording the
    /// mean absolute input activation of every quantizable linear layer.
    ///
    /// This produces the paper's full-precision activation profile `A_f`.
    pub fn collect_activation_stats(&mut self, calibration: &[Vec<u32>]) -> ActivationStats {
        for lin in self.linear_layers_mut() {
            lin.enable_recording();
        }
        for seq in calibration {
            let _ = self.forward(seq);
        }
        let per_layer = self
            .linear_layers_mut()
            .into_iter()
            .map(|lin| {
                let acc = lin.take_recording().expect("recording was enabled");
                LayerActivation {
                    mean_abs: acc.mean_abs(),
                    max_abs: acc.max_abs(),
                }
            })
            .collect();
        ActivationStats { per_layer }
    }

    /// Runs `calibration` sequences through the model while accumulating
    /// the input Gram matrix `H = Σ xᵀx` of every quantizable linear layer
    /// (the GPTQ Hessian, up to a constant factor).
    pub fn collect_hessians(&mut self, calibration: &[Vec<u32>]) -> Vec<Matrix> {
        for lin in self.linear_layers_mut() {
            lin.enable_hessian();
        }
        for seq in calibration {
            let _ = self.forward(seq);
        }
        self.linear_layers_mut()
            .into_iter()
            .map(|lin| lin.take_hessian().expect("hessian was enabled"))
            .collect()
    }

    /// Zeroes every parameter gradient.
    pub fn zero_grads(&mut self) {
        self.for_each_param(|p| p.zero_grad());
    }

    /// Global gradient-norm clipping; returns the pre-clip norm.
    pub fn clip_grad_norm(&mut self, max_norm: f32) -> f64 {
        let mut sq = 0.0f64;
        self.for_each_param(|p| sq += p.grad_sq_sum());
        let norm = sq.sqrt();
        if norm > max_norm as f64 {
            let s = (max_norm as f64 / norm) as f32;
            self.for_each_param(|p| p.scale_grad(s));
        }
        norm
    }
}

impl LogitsModel for TransformerModel {
    fn logits(&self, tokens: &[u32]) -> Matrix {
        let mut h = self.emb.infer(tokens);
        for block in &self.blocks {
            h = block.infer(&h);
        }
        self.head.infer(&self.final_norm.infer(&h))
    }

    fn vocab_size(&self) -> usize {
        self.cfg.vocab_size
    }

    fn max_seq(&self) -> usize {
        self.cfg.max_seq
    }
}

/// Softmax cross-entropy over logits `[T, vocab]` against `targets[T]`.
///
/// Returns `(mean NLL in nats, dlogits)`.
pub fn cross_entropy(logits: &Matrix, targets: &[u32]) -> (f64, Matrix) {
    assert_eq!(logits.rows(), targets.len(), "target length mismatch");
    let t_count = targets.len();
    let mut dlogits = Matrix::zeros(logits.rows(), logits.cols());
    let mut loss = 0.0f64;
    for (i, &target) in targets.iter().enumerate() {
        let row = logits.row(i);
        let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let denom: f32 = row.iter().map(|&v| (v - max).exp()).sum();
        let log_denom = denom.ln() + max;
        loss += (log_denom - row[target as usize]) as f64;
        for (j, &v) in row.iter().enumerate() {
            let p = ((v - max).exp()) / denom;
            let grad = (p - if j == target as usize { 1.0 } else { 0.0 }) / t_count as f32;
            dlogits.set(i, j, grad);
        }
    }
    (loss / t_count as f64, dlogits)
}

/// Mean next-token NLL (nats) of an arbitrarily long token stream,
/// evaluated in non-overlapping windows of `window` tokens.
///
/// This is the primitive behind perplexity reporting: `PPL = exp(nll)`.
///
/// # Panics
///
/// Panics if `window < 2`, `window` exceeds the model's maximum sequence
/// length + 1, or the stream is shorter than 2 tokens.
pub fn stream_nll<M: LogitsModel + ?Sized>(model: &M, stream: &[u32], window: usize) -> f64 {
    assert!(window >= 2, "window must cover at least one prediction");
    assert!(
        window <= model.max_seq() + 1,
        "window exceeds model max_seq"
    );
    assert!(stream.len() >= 2, "stream too short");
    let mut total = 0.0f64;
    let mut predicted = 0usize;
    let mut start = 0usize;
    while start + 1 < stream.len() {
        let end = (start + window).min(stream.len());
        let chunk = &stream[start..end];
        if chunk.len() >= 2 {
            let logits = model.logits(&chunk[..chunk.len() - 1]);
            total += nll_of_logits(&logits, &chunk[1..]) * (chunk.len() - 1) as f64;
            predicted += chunk.len() - 1;
        }
        start = end;
    }
    total / predicted as f64
}

/// Mean NLL of `targets` under `logits` (no gradient).
pub fn nll_of_logits(logits: &Matrix, targets: &[u32]) -> f64 {
    assert_eq!(logits.rows(), targets.len(), "target length mismatch");
    let mut loss = 0.0f64;
    for (i, &target) in targets.iter().enumerate() {
        let row = logits.row(i);
        let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let denom: f32 = row.iter().map(|&v| (v - max).exp()).sum();
        loss += (denom.ln() + max - row[target as usize]) as f64;
    }
    loss / targets.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_builds_and_produces_logits() {
        let model = TransformerModel::new(ModelConfig::tiny_test());
        let logits = model.logits(&[0, 5, 9, 2]);
        assert_eq!(logits.shape(), (4, 32));
        assert!(logits.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn forward_and_infer_agree() {
        let mut model = TransformerModel::new(ModelConfig::tiny_test());
        let tokens = [1u32, 2, 3, 4, 5];
        let a = model.forward(&tokens);
        let b = model.logits(&tokens);
        for (x, y) in a.iter().zip(b.iter()) {
            assert!((x - y).abs() < 1e-5, "{x} vs {y}");
        }
    }

    #[test]
    fn construction_is_deterministic() {
        let a = TransformerModel::new(ModelConfig::tiny_test());
        let b = TransformerModel::new(ModelConfig::tiny_test());
        let la = a.logits(&[3, 1, 4]);
        let lb = b.logits(&[3, 1, 4]);
        assert_eq!(la, lb);
    }

    #[test]
    fn cross_entropy_matches_uniform_baseline() {
        // All-zero logits: NLL = ln(vocab).
        let logits = Matrix::zeros(3, 8);
        let (loss, dlogits) = cross_entropy(&logits, &[0, 1, 2]);
        assert!((loss - (8f64).ln()).abs() < 1e-6);
        // Gradient rows sum to ~0 (softmax minus one-hot).
        for i in 0..3 {
            let s: f32 = dlogits.row(i).iter().sum();
            assert!(s.abs() < 1e-6);
        }
    }

    #[test]
    fn loss_decreases_under_adam_on_a_fixed_sequence() {
        let mut cfg = ModelConfig::tiny_test();
        cfg.vocab_size = 16;
        let mut model = TransformerModel::new(cfg);
        let tokens: Vec<u32> = vec![1, 2, 3, 4, 5, 6, 7, 8, 1, 2, 3, 4, 5, 6, 7, 8];
        let first = model.nll(&tokens);
        for t in 1..=60 {
            model.zero_grads();
            let _ = model.loss_and_backward(&tokens);
            model.clip_grad_norm(1.0);
            model.for_each_param(|p| p.adam_step(3e-3, 0.9, 0.999, 1e-8, t));
        }
        let last = model.nll(&tokens);
        assert!(
            last < first * 0.5,
            "training failed to reduce loss: {first} -> {last}"
        );
    }

    #[test]
    fn model_gradient_matches_finite_difference_spot_check() {
        let mut model = TransformerModel::new(ModelConfig::tiny_test());
        let tokens = [1u32, 7, 3, 9, 2, 11];
        model.zero_grads();
        let _ = model.loss_and_backward(&tokens);

        // Spot-check one weight in the first block's value projection.
        let eps = 1e-2f32;
        let analytic = model.blocks[0].attn.wv.weight.grad.at(3, 5) as f64;
        let orig = model.blocks[0].attn.wv.weight.value.at(3, 5);
        model.blocks[0].attn.wv.weight.value.set(3, 5, orig + eps);
        let lp = model.nll(&tokens);
        model.blocks[0].attn.wv.weight.value.set(3, 5, orig - eps);
        let lm = model.nll(&tokens);
        model.blocks[0].attn.wv.weight.value.set(3, 5, orig);
        let numeric = (lp - lm) / (2.0 * eps as f64);
        assert!(
            (numeric - analytic).abs() < 5e-2 * (1.0 + numeric.abs()),
            "numeric {numeric} vs analytic {analytic}"
        );
    }

    #[test]
    fn linear_traversal_counts_match_config() {
        let cfg = ModelConfig::tiny_test();
        let model = TransformerModel::new(cfg.clone());
        assert_eq!(model.linear_layers().len(), cfg.quant_layer_count());

        let mut llama_cfg = ModelConfig::tiny_test();
        llama_cfg.norm = NormKind::RmsNorm;
        llama_cfg.mlp = MlpKind::GatedSilu;
        let llama = TransformerModel::new(llama_cfg.clone());
        assert_eq!(llama.linear_layers().len(), llama_cfg.quant_layer_count());
    }

    #[test]
    fn activation_stats_cover_every_layer_and_channel() {
        let mut model = TransformerModel::new(ModelConfig::tiny_test());
        let calib = vec![vec![1u32, 2, 3, 4, 5], vec![6, 7, 8, 9]];
        let stats = model.collect_activation_stats(&calib);
        assert_eq!(stats.layer_count(), model.cfg.quant_layer_count());
        let linears = model.linear_layers();
        for (stat, lin) in stats.per_layer.iter().zip(linears.iter()) {
            assert_eq!(stat.mean_abs.len(), lin.in_features());
            assert_eq!(stat.max_abs.len(), lin.in_features());
            assert!(stat.mean_abs.iter().all(|&a| a.is_finite() && a >= 0.0));
            assert!(stat.mean_abs.iter().any(|&a| a > 0.0));
            // max >= mean channel-wise.
            for (m, x) in stat.mean_abs.iter().zip(stat.max_abs.iter()) {
                assert!(x >= m);
            }
        }
    }

    #[test]
    fn hessians_are_symmetric_and_sized() {
        let mut model = TransformerModel::new(ModelConfig::tiny_test());
        let calib = vec![vec![1u32, 2, 3, 4, 5, 6, 7]];
        let hessians = model.collect_hessians(&calib);
        assert_eq!(hessians.len(), model.cfg.quant_layer_count());
        for (h, lin) in hessians.iter().zip(model.linear_layers()) {
            assert_eq!(h.shape(), (lin.in_features(), lin.in_features()));
            for i in 0..h.rows() {
                assert!(h.at(i, i) >= 0.0);
                for j in 0..h.cols() {
                    assert!((h.at(i, j) - h.at(j, i)).abs() < 1e-4);
                }
            }
        }
    }

    #[test]
    fn outlier_profile_amplifies_selected_channels() {
        let mut cfg = ModelConfig::tiny_test();
        cfg.outliers = Some(crate::config::OutlierProfile {
            channels: 2,
            factor: 8.0,
            seed: 1,
        });
        let mut with = TransformerModel::new(cfg);
        let mut without = TransformerModel::new(ModelConfig::tiny_test());
        let calib: Vec<Vec<u32>> = vec![(0..20u32).map(|i| i % 31).collect()];
        let s_with = with.collect_activation_stats(&calib);
        let s_without = without.collect_activation_stats(&calib);
        // The amplified model must show a larger max/median channel ratio
        // on the first attention input.
        let ratio = |v: &[f32]| {
            let mut sorted: Vec<f32> = v.to_vec();
            sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
            sorted[sorted.len() - 1] / sorted[sorted.len() / 2].max(1e-9)
        };
        assert!(
            ratio(&s_with.per_layer[0].mean_abs) > ratio(&s_without.per_layer[0].mean_abs),
            "outlier profile produced no channel skew"
        );
    }

    #[test]
    fn rmsnorm_gated_model_trains_too() {
        let mut cfg = ModelConfig::tiny_test();
        cfg.norm = NormKind::RmsNorm;
        cfg.mlp = MlpKind::GatedSilu;
        let mut model = TransformerModel::new(cfg);
        let tokens: Vec<u32> = vec![2, 4, 6, 8, 10, 2, 4, 6, 8, 10, 2, 4];
        let first = model.nll(&tokens);
        for t in 1..=50 {
            model.zero_grads();
            let _ = model.loss_and_backward(&tokens);
            model.clip_grad_norm(1.0);
            model.for_each_param(|p| p.adam_step(3e-3, 0.9, 0.999, 1e-8, t));
        }
        assert!(model.nll(&tokens) < first, "gated model failed to learn");
    }
}
