//! Low-rank adaptation (LoRA) on top of a frozen base model.
//!
//! The paper's threat model (§3, §5.3) argues that fine-tuning attacks
//! do not apply to embedded quantized LLMs because QLoRA-style tuning
//! "does not change quantized weights but adds additional linear
//! low-rank adaptators to learn new features". This module makes that
//! argument executable: a [`LoraAdapter`] learns `ΔW = A·B` beside a
//! frozen linear layer, the base weights never move, and therefore a
//! weight-space watermark survives any amount of LoRA fine-tuning by
//! construction (see the `lora_finetune_cannot_remove_watermark`
//! integration test).

use crate::layers::Param;
use emmark_tensor::rng::Xoshiro256;
use emmark_tensor::Matrix;
use serde::{Deserialize, Serialize};

/// A rank-`r` adapter for a `[in, out]` linear layer:
/// `y = x·W_frozen + scale · (x·A)·B`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LoraAdapter {
    /// Down projection `[in, r]`, Gaussian-initialized.
    pub a: Param,
    /// Up projection `[r, out]`, zero-initialized (adapter starts as a
    /// no-op, as in the LoRA paper).
    pub b: Param,
    /// Output scale (`α / r` in LoRA terms).
    pub scale: f32,
    #[serde(skip)]
    cache: Option<(Matrix, Matrix)>, // (x, x·A)
}

impl LoraAdapter {
    /// Creates a rank-`r` adapter.
    ///
    /// # Panics
    ///
    /// Panics if `rank` is zero.
    pub fn new(
        in_features: usize,
        out_features: usize,
        rank: usize,
        scale: f32,
        rng: &mut Xoshiro256,
    ) -> Self {
        assert!(rank > 0, "rank must be positive");
        let std = 1.0 / (in_features as f32).sqrt();
        Self {
            a: Param::new(Matrix::from_fn(in_features, rank, |_, _| {
                rng.normal_f32(0.0, std)
            })),
            b: Param::new(Matrix::zeros(rank, out_features)),
            scale,
            cache: None,
        }
    }

    /// Adapter rank.
    pub fn rank(&self) -> usize {
        self.a.value.cols()
    }

    /// The adapter's contribution `scale · (x·A)·B`, with caches for
    /// [`Self::backward`].
    pub fn forward(&mut self, x: &Matrix) -> Matrix {
        let xa = x.matmul(&self.a.value);
        let y = xa.matmul(&self.b.value).scale(self.scale);
        self.cache = Some((x.clone(), xa));
        y
    }

    /// Cache-free contribution.
    pub fn infer(&self, x: &Matrix) -> Matrix {
        x.matmul(&self.a.value)
            .matmul(&self.b.value)
            .scale(self.scale)
    }

    /// Backward pass; accumulates adapter gradients, returns `dx`.
    ///
    /// # Panics
    ///
    /// Panics if called before [`Self::forward`].
    pub fn backward(&mut self, dy: &Matrix) -> Matrix {
        let (x, xa) = self
            .cache
            .take()
            .expect("LoraAdapter::backward before forward");
        let dy_scaled = dy.scale(self.scale);
        // dB += (xA)^T dy ; dXA = dy B^T ; dA += x^T dXA ; dx = dXA A^T
        self.b.grad.add_assign(&xa.transa_matmul(&dy_scaled));
        let dxa = dy_scaled.matmul_transb(&self.b.value);
        self.a.grad.add_assign(&x.transa_matmul(&dxa));
        dxa.matmul_transb(&self.a.value)
    }

    /// The dense `ΔW = scale·A·B` this adapter represents.
    pub fn delta_weight(&self) -> Matrix {
        self.a.value.matmul(&self.b.value).scale(self.scale)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_adapter_is_a_no_op() {
        let mut rng = Xoshiro256::seed_from_u64(1);
        let adapter = LoraAdapter::new(6, 4, 2, 1.0, &mut rng);
        let x = Matrix::from_fn(3, 6, |_, _| rng.normal_f32(0.0, 1.0));
        let y = adapter.infer(&x);
        assert!(y.iter().all(|&v| v == 0.0), "B is zero-initialized");
    }

    #[test]
    fn adapter_gradients_match_finite_differences() {
        let mut rng = Xoshiro256::seed_from_u64(2);
        let mut adapter = LoraAdapter::new(4, 3, 2, 0.5, &mut rng);
        // Give B some mass so gradients flow everywhere.
        for v in adapter.b.value.iter_mut() {
            *v = rng.normal_f32(0.0, 0.3);
        }
        let x = Matrix::from_fn(3, 4, |_, _| rng.normal_f32(0.0, 1.0));
        let loss = |y: &Matrix| -> f64 { y.iter().map(|&v| 0.5 * (v as f64).powi(2)).sum() };

        let y = adapter.forward(&x);
        let dy = y.clone();
        let dx = adapter.backward(&dy);

        let eps = 1e-3f32;
        // Input gradient.
        for i in 0..x.rows() {
            for j in 0..x.cols() {
                let mut xp = x.clone();
                xp.set(i, j, x.at(i, j) + eps);
                let mut xm = x.clone();
                xm.set(i, j, x.at(i, j) - eps);
                let numeric =
                    (loss(&adapter.infer(&xp)) - loss(&adapter.infer(&xm))) / (2.0 * eps as f64);
                let analytic = dx.at(i, j) as f64;
                assert!(
                    (numeric - analytic).abs() < 2e-2 * (1.0 + numeric.abs()),
                    "({i},{j}): {numeric} vs {analytic}"
                );
            }
        }
        // Parameter gradient spot checks.
        let orig = adapter.a.value.at(1, 0);
        adapter.a.value.set(1, 0, orig + eps);
        let lp = loss(&adapter.infer(&x));
        adapter.a.value.set(1, 0, orig - eps);
        let lm = loss(&adapter.infer(&x));
        adapter.a.value.set(1, 0, orig);
        let numeric = (lp - lm) / (2.0 * eps as f64);
        let analytic = adapter.a.grad.at(1, 0) as f64;
        assert!((numeric - analytic).abs() < 2e-2 * (1.0 + numeric.abs()));
    }

    #[test]
    fn adapter_learns_a_target_map_while_base_stays_frozen() {
        let mut rng = Xoshiro256::seed_from_u64(3);
        let mut adapter = LoraAdapter::new(4, 4, 2, 1.0, &mut rng);
        // Target: a rank-1 correction.
        let u = Matrix::from_fn(4, 1, |i, _| (i as f32 + 1.0) * 0.3);
        let v = Matrix::from_fn(1, 4, |_, j| 1.0 - 0.4 * j as f32);
        let target = u.matmul(&v);
        for t in 1..=400 {
            let x = Matrix::from_fn(8, 4, |_, _| rng.normal_f32(0.0, 1.0));
            let want = x.matmul(&target);
            adapter.a.zero_grad();
            adapter.b.zero_grad();
            let y = adapter.forward(&x);
            let dy = y.sub(&want).scale(1.0 / 8.0);
            let _ = adapter.backward(&dy);
            adapter.a.adam_step(5e-2, 0.9, 0.999, 1e-8, t);
            adapter.b.adam_step(5e-2, 0.9, 0.999, 1e-8, t);
        }
        let err = adapter.delta_weight().sub(&target).frobenius_norm() / target.frobenius_norm();
        assert!(err < 0.1, "adapter failed to learn: rel err {err}");
    }

    #[test]
    fn delta_weight_matches_forward_contribution() {
        let mut rng = Xoshiro256::seed_from_u64(4);
        let mut adapter = LoraAdapter::new(5, 3, 2, 0.7, &mut rng);
        for v in adapter.b.value.iter_mut() {
            *v = rng.normal_f32(0.0, 0.5);
        }
        let x = Matrix::from_fn(2, 5, |_, _| rng.normal_f32(0.0, 1.0));
        let via_forward = adapter.infer(&x);
        let via_delta = x.matmul(&adapter.delta_weight());
        for (a, b) in via_forward.iter().zip(via_delta.iter()) {
            assert!((a - b).abs() < 1e-5);
        }
    }
}
