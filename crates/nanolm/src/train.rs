//! Training and fine-tuning loops.

use crate::corpus::Corpus;
use crate::model::TransformerModel;
use emmark_tensor::rng::Xoshiro256;
use serde::{Deserialize, Serialize};

/// Training hyperparameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Number of optimizer steps.
    pub steps: u64,
    /// Sequences per step.
    pub batch_size: usize,
    /// Tokens per sequence (must be `<= model.max_seq + 1`).
    pub seq_len: usize,
    /// Peak learning rate.
    pub lr: f32,
    /// Linear warmup steps.
    pub warmup: u64,
    /// Global gradient-norm clip.
    pub clip: f32,
    /// Batch sampling seed.
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            steps: 300,
            batch_size: 8,
            seq_len: 24,
            lr: 3e-3,
            warmup: 20,
            clip: 1.0,
            seed: 42,
        }
    }
}

impl TrainConfig {
    /// A very short schedule for unit tests.
    pub fn tiny_test() -> Self {
        Self {
            steps: 40,
            batch_size: 4,
            seq_len: 12,
            ..Self::default()
        }
    }

    fn lr_at(&self, step: u64) -> f32 {
        if step <= self.warmup {
            self.lr * step as f32 / self.warmup.max(1) as f32
        } else {
            // Cosine decay to 10% of peak.
            let progress = (step - self.warmup) as f32 / (self.steps - self.warmup).max(1) as f32;
            let cos = 0.5 * (1.0 + (std::f32::consts::PI * progress).cos());
            self.lr * (0.1 + 0.9 * cos)
        }
    }
}

/// Summary of a completed training run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainReport {
    /// Mean training NLL of the first 10 steps.
    pub initial_loss: f64,
    /// Mean training NLL of the final 10 steps.
    pub final_loss: f64,
    /// Steps actually executed.
    pub steps: u64,
}

/// Samples a random `seq_len`-token window from `stream`.
fn sample_window<'s>(stream: &'s [u32], seq_len: usize, rng: &mut Xoshiro256) -> &'s [u32] {
    assert!(
        stream.len() > seq_len,
        "corpus shorter than sequence length"
    );
    let start = rng.below(stream.len() - seq_len);
    &stream[start..start + seq_len]
}

/// Trains `model` on `corpus.train` with Adam.
///
/// # Examples
///
/// ```
/// use emmark_nanolm::{config::ModelConfig, corpus::{Corpus, Grammar},
///     model::TransformerModel, train::{train, TrainConfig}};
/// let corpus = Corpus::sample(Grammar::synwiki(1), 2000, 200, 200);
/// let mut cfg = ModelConfig::tiny_test();
/// cfg.vocab_size = corpus.grammar.vocab_size();
/// let mut model = TransformerModel::new(cfg);
/// let report = train(&mut model, &corpus, &TrainConfig::tiny_test());
/// assert!(report.final_loss < report.initial_loss);
/// ```
pub fn train(model: &mut TransformerModel, corpus: &Corpus, cfg: &TrainConfig) -> TrainReport {
    run_steps(model, &corpus.train, cfg, 0)
}

/// Continues training an already-trained model on a (different) token
/// stream — the fine-tuning used by the Table 4 integrity controls.
pub fn finetune(
    model: &mut TransformerModel,
    stream: &[u32],
    cfg: &TrainConfig,
    step_offset: u64,
) -> TrainReport {
    run_steps(model, stream, cfg, step_offset)
}

fn run_steps(
    model: &mut TransformerModel,
    stream: &[u32],
    cfg: &TrainConfig,
    step_offset: u64,
) -> TrainReport {
    assert!(
        cfg.seq_len < model.cfg.max_seq + 1,
        "seq_len {} exceeds model max_seq {}",
        cfg.seq_len,
        model.cfg.max_seq
    );
    let mut rng = Xoshiro256::seed_from_u64(cfg.seed);
    let mut first_losses = Vec::new();
    let mut last_losses = Vec::new();
    for step in 1..=cfg.steps {
        model.zero_grads();
        let mut batch_loss = 0.0;
        for _ in 0..cfg.batch_size {
            let window = sample_window(stream, cfg.seq_len + 1, &mut rng);
            batch_loss += model.loss_and_backward(window);
        }
        batch_loss /= cfg.batch_size as f64;
        // Average gradients over the batch.
        let inv = 1.0 / cfg.batch_size as f32;
        model.for_each_param(|p| p.scale_grad(inv));
        model.clip_grad_norm(cfg.clip);
        let lr = cfg.lr_at(step);
        let t = step_offset + step;
        model.for_each_param(|p| p.adam_step(lr, 0.9, 0.999, 1e-8, t));
        if step <= 10 {
            first_losses.push(batch_loss);
        }
        if step + 10 > cfg.steps {
            last_losses.push(batch_loss);
        }
    }
    TrainReport {
        initial_loss: emmark_tensor::stats::mean(&first_losses),
        final_loss: emmark_tensor::stats::mean(&last_losses),
        steps: cfg.steps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelConfig;
    use crate::corpus::Grammar;

    #[test]
    fn lr_schedule_warms_up_and_decays() {
        let cfg = TrainConfig {
            steps: 100,
            warmup: 10,
            lr: 1.0,
            ..TrainConfig::default()
        };
        assert!(cfg.lr_at(1) < 0.2);
        assert!((cfg.lr_at(10) - 1.0).abs() < 1e-6);
        assert!(cfg.lr_at(100) < 0.2);
        assert!(cfg.lr_at(55) < cfg.lr_at(20));
    }

    fn grammar_sized_config() -> ModelConfig {
        let mut cfg = ModelConfig::tiny_test();
        cfg.vocab_size = Grammar::synwiki(0).vocab_size();
        cfg
    }

    #[test]
    fn training_reduces_heldout_nll() {
        let mut model = TransformerModel::new(grammar_sized_config());
        let corpus = Corpus::sample(Grammar::synwiki(9), 4000, 400, 400);
        let before = crate::model::stream_nll(&model, &corpus.test[..200], 20);
        let report = train(&mut model, &corpus, &TrainConfig::tiny_test());
        let after = crate::model::stream_nll(&model, &corpus.test[..200], 20);
        assert!(report.final_loss < report.initial_loss);
        assert!(
            after < before,
            "held-out NLL did not improve: {before} -> {after}"
        );
    }

    #[test]
    fn finetune_moves_model_toward_new_distribution() {
        let mut model = TransformerModel::new(grammar_sized_config());
        let wiki = Corpus::sample(Grammar::synwiki(3), 4000, 400, 400);
        train(&mut model, &wiki, &TrainConfig::tiny_test());

        let alpaca = Grammar::synalpaca(3).generate(4000);
        let before_alpaca = crate::model::stream_nll(&model, &alpaca[..200], 20);
        finetune(
            &mut model,
            &alpaca,
            &TrainConfig::tiny_test(),
            TrainConfig::tiny_test().steps,
        );
        let after_alpaca = crate::model::stream_nll(&model, &alpaca[..200], 20);
        assert!(
            after_alpaca < before_alpaca,
            "fine-tune did not adapt: {before_alpaca} -> {after_alpaca}"
        );
    }

    #[test]
    #[should_panic(expected = "corpus shorter")]
    fn sampling_from_too_short_corpus_panics() {
        let mut rng = Xoshiro256::seed_from_u64(0);
        let _ = sample_window(&[1, 2, 3], 5, &mut rng);
    }
}
