//! Causal multi-head self-attention with manual backprop.

use crate::layers::Linear;
use emmark_tensor::rng::Xoshiro256;
use emmark_tensor::Matrix;
use serde::{Deserialize, Serialize};

/// Cached forward state for the backward pass.
#[derive(Debug, Clone)]
struct AttnCache {
    q: Matrix,
    k: Matrix,
    v: Matrix,
    /// Per-head post-softmax attention probabilities `[T, T]`.
    probs: Vec<Matrix>,
}

/// Causal multi-head self-attention.
///
/// Projections are stored as four [`Linear`] layers (`wq`, `wk`, `wv`,
/// `wo`) — exactly the four per-block attention quantization layers the
/// paper counts.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MultiHeadAttention {
    /// Query projection.
    pub wq: Linear,
    /// Key projection.
    pub wk: Linear,
    /// Value projection.
    pub wv: Linear,
    /// Output projection.
    pub wo: Linear,
    n_heads: usize,
    #[serde(skip)]
    cache: Option<AttnCache>,
}

impl MultiHeadAttention {
    /// Creates the four projections for a `d_model`-wide stream.
    ///
    /// # Panics
    ///
    /// Panics if `d_model % n_heads != 0`.
    pub fn new(d_model: usize, n_heads: usize, bias: bool, rng: &mut Xoshiro256) -> Self {
        assert_eq!(d_model % n_heads, 0, "d_model must be divisible by n_heads");
        Self {
            wq: Linear::new(d_model, d_model, bias, rng),
            wk: Linear::new(d_model, d_model, bias, rng),
            wv: Linear::new(d_model, d_model, bias, rng),
            wo: Linear::new(d_model, d_model, bias, rng),
            n_heads,
            cache: None,
        }
    }

    /// Number of attention heads.
    pub fn n_heads(&self) -> usize {
        self.n_heads
    }

    fn head_slice(m: &Matrix, head: usize, dh: usize) -> Matrix {
        Matrix::from_fn(m.rows(), dh, |i, j| m.at(i, j + head * dh))
    }

    /// Computes per-head causal softmax probabilities for `q`, `k`.
    fn attention_probs(qh: &Matrix, kh: &Matrix) -> Matrix {
        let t = qh.rows();
        let dh = qh.cols();
        let scale = 1.0 / (dh as f32).sqrt();
        let mut scores = qh.matmul_transb(kh);
        scores.scale_in_place(scale);
        // Causal mask + row softmax.
        let mut probs = Matrix::zeros(t, t);
        for i in 0..t {
            let row = scores.row(i);
            let max = row[..=i].iter().cloned().fold(f32::NEG_INFINITY, f32::max);
            let mut denom = 0.0f32;
            let mut exps = vec![0.0f32; i + 1];
            for (j, e) in exps.iter_mut().enumerate() {
                *e = (row[j] - max).exp();
                denom += *e;
            }
            for (j, e) in exps.iter().enumerate() {
                probs.set(i, j, e / denom);
            }
        }
        probs
    }

    /// Pure attention math given already-projected `q`, `k`, `v`:
    /// per-head causal softmax attention, heads re-concatenated. Shared
    /// with the quantized runtime in `emmark-quant`, which supplies
    /// projections computed through quantized weights.
    pub fn attention_core(q: &Matrix, k: &Matrix, v: &Matrix, n_heads: usize) -> Matrix {
        Self::project(q, k, v, n_heads).1
    }

    fn project(q: &Matrix, k: &Matrix, v: &Matrix, n_heads: usize) -> (Vec<Matrix>, Matrix) {
        let t = q.rows();
        let d = q.cols();
        let dh = d / n_heads;
        let mut concat = Matrix::zeros(t, d);
        let mut probs_all = Vec::with_capacity(n_heads);
        for h in 0..n_heads {
            let qh = Self::head_slice(q, h, dh);
            let kh = Self::head_slice(k, h, dh);
            let vh = Self::head_slice(v, h, dh);
            let probs = Self::attention_probs(&qh, &kh);
            let oh = probs.matmul(&vh);
            for i in 0..t {
                for j in 0..dh {
                    concat.set(i, h * dh + j, oh.at(i, j));
                }
            }
            probs_all.push(probs);
        }
        (probs_all, concat)
    }

    /// Training forward pass over `x: [T, d_model]`.
    pub fn forward(&mut self, x: &Matrix) -> Matrix {
        let q = self.wq.forward(x);
        let k = self.wk.forward(x);
        let v = self.wv.forward(x);
        let (probs, concat) = Self::project(&q, &k, &v, self.n_heads);
        let y = self.wo.forward(&concat);
        self.cache = Some(AttnCache { q, k, v, probs });
        y
    }

    /// Cache-free inference pass.
    pub fn infer(&self, x: &Matrix) -> Matrix {
        let q = self.wq.infer(x);
        let k = self.wk.infer(x);
        let v = self.wv.infer(x);
        let (_, concat) = Self::project(&q, &k, &v, self.n_heads);
        self.wo.infer(&concat)
    }

    /// Backward pass; returns `dx`.
    ///
    /// # Panics
    ///
    /// Panics if called before [`Self::forward`].
    pub fn backward(&mut self, dy: &Matrix) -> Matrix {
        let cache = self
            .cache
            .take()
            .expect("MultiHeadAttention::backward before forward");
        let t = dy.rows();
        let d = cache.q.cols();
        let dh = d / self.n_heads;
        let scale = 1.0 / (dh as f32).sqrt();

        let dconcat = self.wo.backward(dy);

        let mut dq = Matrix::zeros(t, d);
        let mut dk = Matrix::zeros(t, d);
        let mut dv = Matrix::zeros(t, d);

        for h in 0..self.n_heads {
            let qh = Self::head_slice(&cache.q, h, dh);
            let kh = Self::head_slice(&cache.k, h, dh);
            let vh = Self::head_slice(&cache.v, h, dh);
            let probs = &cache.probs[h];
            let doh = Self::head_slice(&dconcat, h, dh);

            // dV_h = P^T dO_h
            let dvh = probs.transa_matmul(&doh);
            // dP = dO_h V_h^T
            let dp = doh.matmul_transb(&vh);
            // Softmax backward per row (masked entries have prob 0).
            let mut dscores = Matrix::zeros(t, t);
            for i in 0..t {
                let mut dot = 0.0f32;
                for j in 0..=i {
                    dot += dp.at(i, j) * probs.at(i, j);
                }
                for j in 0..=i {
                    let p = probs.at(i, j);
                    dscores.set(i, j, p * (dp.at(i, j) - dot) * scale);
                }
            }
            // dQ_h = dS K_h ; dK_h = dS^T Q_h
            let dqh = dscores.matmul(&kh);
            let dkh = dscores.transa_matmul(&qh);
            for i in 0..t {
                for j in 0..dh {
                    dq.set(i, h * dh + j, dqh.at(i, j));
                    dk.set(i, h * dh + j, dkh.at(i, j));
                    dv.set(i, h * dh + j, dvh.at(i, j));
                }
            }
        }

        let mut dx = self.wq.backward(&dq);
        dx.add_assign(&self.wk.backward(&dk));
        dx.add_assign(&self.wv.backward(&dv));
        dx
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn loss_of(y: &Matrix) -> f64 {
        y.iter()
            .map(|&v| 0.5 * (v as f64) * (v as f64) + 0.1 * v as f64)
            .sum()
    }

    fn dloss_of(y: &Matrix) -> Matrix {
        y.map(|v| v + 0.1)
    }

    #[test]
    fn attention_output_shape_and_determinism() {
        let mut rng = Xoshiro256::seed_from_u64(1);
        let mut attn = MultiHeadAttention::new(8, 2, true, &mut rng);
        let x = Matrix::from_fn(5, 8, |i, j| ((i * 8 + j) as f32 * 0.01).sin());
        let y1 = attn.forward(&x);
        let y2 = attn.infer(&x);
        assert_eq!(y1.shape(), (5, 8));
        for (a, b) in y1.iter().zip(y2.iter()) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn attention_is_causal() {
        // Changing a future token must not change past outputs.
        let mut rng = Xoshiro256::seed_from_u64(2);
        let attn = MultiHeadAttention::new(8, 2, false, &mut rng);
        let mut rng2 = Xoshiro256::seed_from_u64(3);
        let x1 = Matrix::from_fn(6, 8, |_, _| rng2.normal_f32(0.0, 1.0));
        let mut x2 = x1.clone();
        for j in 0..8 {
            x2.set(5, j, -9.0); // mutate the last position only
        }
        let y1 = attn.infer(&x1);
        let y2 = attn.infer(&x2);
        for i in 0..5 {
            for j in 0..8 {
                assert!(
                    (y1.at(i, j) - y2.at(i, j)).abs() < 1e-6,
                    "causality violated at ({i},{j})"
                );
            }
        }
        // The mutated position itself must change.
        assert!((y1.at(5, 0) - y2.at(5, 0)).abs() > 1e-6);
    }

    #[test]
    fn attention_probs_rows_sum_to_one() {
        let mut rng = Xoshiro256::seed_from_u64(4);
        let q = Matrix::from_fn(4, 4, |_, _| rng.normal_f32(0.0, 1.0));
        let k = Matrix::from_fn(4, 4, |_, _| rng.normal_f32(0.0, 1.0));
        let p = MultiHeadAttention::attention_probs(&q, &k);
        for i in 0..4 {
            let sum: f32 = p.row(i).iter().sum();
            assert!((sum - 1.0).abs() < 1e-5);
            for j in i + 1..4 {
                assert_eq!(p.at(i, j), 0.0, "future leak at ({i},{j})");
            }
        }
    }

    #[test]
    fn attention_input_gradients_match_finite_differences() {
        let mut rng = Xoshiro256::seed_from_u64(5);
        let mut attn = MultiHeadAttention::new(6, 2, true, &mut rng);
        let x = Matrix::from_fn(4, 6, |_, _| rng.normal_f32(0.0, 0.8));
        let y = attn.forward(&x);
        let dx = attn.backward(&dloss_of(&y));

        let eps = 1e-3f32;
        for i in 0..x.rows() {
            for j in 0..x.cols() {
                let mut xp = x.clone();
                xp.set(i, j, x.at(i, j) + eps);
                let mut xm = x.clone();
                xm.set(i, j, x.at(i, j) - eps);
                let numeric =
                    (loss_of(&attn.infer(&xp)) - loss_of(&attn.infer(&xm))) / (2.0 * eps as f64);
                let analytic = dx.at(i, j) as f64;
                assert!(
                    (numeric - analytic).abs() < 2e-2 * (1.0 + numeric.abs()),
                    "({i},{j}): numeric {numeric} vs analytic {analytic}"
                );
            }
        }
    }

    #[test]
    fn attention_weight_gradient_spot_check() {
        let mut rng = Xoshiro256::seed_from_u64(6);
        let mut attn = MultiHeadAttention::new(6, 3, false, &mut rng);
        let x = Matrix::from_fn(5, 6, |_, _| rng.normal_f32(0.0, 1.0));
        let y = attn.forward(&x);
        let _ = attn.backward(&dloss_of(&y));

        let eps = 1e-3f32;
        for (wi, wj) in [(0usize, 0usize), (3, 5), (5, 2)] {
            let orig = attn.wv.weight.value.at(wi, wj);
            attn.wv.weight.value.set(wi, wj, orig + eps);
            let lp = loss_of(&attn.infer(&x));
            attn.wv.weight.value.set(wi, wj, orig - eps);
            let lm = loss_of(&attn.infer(&x));
            attn.wv.weight.value.set(wi, wj, orig);
            let numeric = (lp - lm) / (2.0 * eps as f64);
            let analytic = attn.wv.weight.grad.at(wi, wj) as f64;
            assert!(
                (numeric - analytic).abs() < 2e-2 * (1.0 + numeric.abs()),
                "wv[{wi},{wj}]: numeric {numeric} vs analytic {analytic}"
            );
        }
    }
}
