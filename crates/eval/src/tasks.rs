//! Synthetic zero-shot task suite.
//!
//! The paper reports the mean zero-shot accuracy over LAMBADA, HellaSwag,
//! PIQA, and WinoGrande. Those datasets are unavailable here; what the
//! metric *does* in the evaluation is detect quality damage from
//! watermark insertion and attacks. This module builds four analogous
//! tasks from the synthetic grammar — each exercising the same scoring
//! machinery (greedy prediction and likelihood ranking of candidate
//! continuations) the real benchmarks use:
//!
//! * [`TaskKind::LastToken`] — predict the final content token of a held-out
//!   sentence (LAMBADA-like greedy cloze).
//! * [`TaskKind::Continuation`] — rank the true second half of a sentence
//!   against distractor continuations from other sentences
//!   (HellaSwag-like, 4-way).
//! * [`TaskKind::Plausibility`] — real sentence vs token-swapped corruption
//!   (PIQA-like, 2-way).
//! * [`TaskKind::Agreement`] — determiner–noun gender agreement cloze
//!   (WinoGrande-like, 2-way).

use emmark_nanolm::corpus::{Grammar, TokenClass};
use emmark_nanolm::model::LogitsModel;
use emmark_tensor::rng::Xoshiro256;
use serde::{Deserialize, Serialize};

/// The four task kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TaskKind {
    /// LAMBADA-like last-token cloze (greedy argmax).
    LastToken,
    /// HellaSwag-like 4-way continuation ranking.
    Continuation,
    /// PIQA-like 2-way plausibility.
    Plausibility,
    /// WinoGrande-like 2-way agreement cloze.
    Agreement,
}

impl TaskKind {
    /// All four kinds, in reporting order.
    pub fn all() -> [TaskKind; 4] {
        [
            TaskKind::LastToken,
            TaskKind::Continuation,
            TaskKind::Plausibility,
            TaskKind::Agreement,
        ]
    }

    /// Short display name.
    pub fn name(&self) -> &'static str {
        match self {
            TaskKind::LastToken => "last-token",
            TaskKind::Continuation => "continuation",
            TaskKind::Plausibility => "plausibility",
            TaskKind::Agreement => "agreement",
        }
    }

    /// Chance accuracy of the task.
    pub fn chance(&self) -> f64 {
        match self {
            TaskKind::LastToken => 0.02, // ~1/vocab, loose
            TaskKind::Continuation => 0.25,
            TaskKind::Plausibility => 0.5,
            TaskKind::Agreement => 0.5,
        }
    }
}

/// One multiple-choice item: a shared context and candidate
/// continuations; `correct` indexes the true one. For greedy cloze items
/// the candidates are single tokens.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskItem {
    /// Shared context tokens.
    pub context: Vec<u32>,
    /// Candidate continuations.
    pub choices: Vec<Vec<u32>>,
    /// Index of the correct choice.
    pub correct: usize,
    /// Greedy item: score by argmax of the next token rather than by
    /// ranking continuation likelihoods.
    pub greedy: bool,
}

/// A generated task: items plus bookkeeping.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Task {
    /// Which benchmark this stands in for.
    pub kind: TaskKind,
    /// The evaluation items.
    pub items: Vec<TaskItem>,
}

/// Builds a task of `n` items from the grammar with a dedicated seed.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn build_task(grammar: &Grammar, kind: TaskKind, n: usize, seed: u64) -> Task {
    assert!(n > 0, "a task needs at least one item");
    let mut rng = Xoshiro256::seed_from_u64(seed ^ 0xBEEF_0000 ^ kind.name().len() as u64);
    let items = (0..n)
        .map(|_| match kind {
            TaskKind::LastToken => last_token_item(grammar, &mut rng),
            TaskKind::Continuation => continuation_item(grammar, &mut rng),
            TaskKind::Plausibility => plausibility_item(grammar, &mut rng),
            TaskKind::Agreement => agreement_item(grammar, &mut rng),
        })
        .collect();
    Task { kind, items }
}

/// A sentence of at least `min_len` tokens.
fn long_sentence(grammar: &Grammar, rng: &mut Xoshiro256, min_len: usize) -> Vec<u32> {
    loop {
        let s = grammar.sentence(rng);
        if s.len() >= min_len {
            return s;
        }
    }
}

fn last_token_item(grammar: &Grammar, rng: &mut Xoshiro256) -> TaskItem {
    let s = long_sentence(grammar, rng, 4);
    // Predict the last content token (the one before the stop token).
    let target_pos = s.len() - 2;
    TaskItem {
        context: s[..target_pos].to_vec(),
        choices: vec![vec![s[target_pos]]],
        correct: 0,
        greedy: true,
    }
}

fn continuation_item(grammar: &Grammar, rng: &mut Xoshiro256) -> TaskItem {
    let s = long_sentence(grammar, rng, 6);
    let split = s.len() / 2;
    let context = s[..split].to_vec();
    let true_cont = s[split..].to_vec();
    let mut choices = vec![true_cont.clone()];
    while choices.len() < 4 {
        // Distractor: tail of an unrelated sentence with the same length
        // where possible.
        let other = long_sentence(grammar, rng, 4);
        let cut = other
            .len()
            .saturating_sub(true_cont.len())
            .min(other.len() - 1);
        let cand = other[cut..].to_vec();
        if cand != true_cont {
            choices.push(cand);
        }
    }
    // Shuffle the four choices deterministically.
    let mut order: Vec<usize> = (0..choices.len()).collect();
    rng.shuffle(&mut order);
    let correct = order.iter().position(|&o| o == 0).expect("index present");
    let choices = order.into_iter().map(|o| choices[o].clone()).collect();
    TaskItem {
        context,
        choices,
        correct,
        greedy: false,
    }
}

fn plausibility_item(grammar: &Grammar, rng: &mut Xoshiro256) -> TaskItem {
    let real = long_sentence(grammar, rng, 5);
    // Corruption: swap two interior tokens (positions 1 and 3) — breaks
    // the template structure while keeping the unigram content.
    let mut corrupt = real.clone();
    corrupt.swap(1, 3);
    if corrupt == real {
        corrupt.swap(0, 2);
    }
    let correct = rng.below(2);
    let choices = if correct == 0 {
        vec![real, corrupt]
    } else {
        vec![corrupt, real]
    };
    TaskItem {
        context: Vec::new(),
        choices,
        correct,
        greedy: false,
    }
}

fn agreement_item(grammar: &Grammar, rng: &mut Xoshiro256) -> TaskItem {
    // Find a sentence with a determiner immediately followed by a noun.
    let (det_start, det_n) = grammar.class_range(TokenClass::Determiner);
    let (noun_start, noun_n) = grammar.class_range(TokenClass::Noun);
    loop {
        let s = long_sentence(grammar, rng, 4);
        let pair = s.windows(2).position(|w| {
            grammar.class_of(w[0]) == TokenClass::Determiner
                && grammar.class_of(w[1]) == TokenClass::Noun
        });
        let Some(pos) = pair else { continue };
        let noun = s[pos + 1];
        let gender = ((noun - noun_start) as usize) / (noun_n / 2);
        // A noun of the opposite gender (same within-class rank when
        // possible) violates the agreement rule the corpus enforces.
        let rank = ((noun - noun_start) as usize) % (noun_n / 2);
        let wrong = noun_start + (((1 - gender) * (noun_n / 2)) + rank) as u32;
        debug_assert!(grammar.class_of(wrong) == TokenClass::Noun);
        debug_assert!(det_start < det_start + det_n as u32);
        let mut with_right = s.clone();
        with_right[pos + 1] = noun;
        let mut with_wrong = s;
        with_wrong[pos + 1] = wrong;
        let correct = rng.below(2);
        let choices = if correct == 0 {
            vec![with_right, with_wrong]
        } else {
            vec![with_wrong, with_right]
        };
        return TaskItem {
            context: Vec::new(),
            choices,
            correct,
            greedy: false,
        };
    }
}

/// Total log-probability of `continuation` given `context` under the
/// model (sum of per-token log-softmax terms).
pub fn continuation_logprob<M: LogitsModel + ?Sized>(
    model: &M,
    context: &[u32],
    continuation: &[u32],
) -> f64 {
    assert!(!continuation.is_empty(), "empty continuation");
    let mut full: Vec<u32> = Vec::with_capacity(context.len() + continuation.len());
    full.extend_from_slice(context);
    full.extend_from_slice(continuation);
    // Clamp to the model's window by keeping the most recent tokens.
    let max = model.max_seq();
    let dropped = full.len().saturating_sub(max);
    let full = &full[dropped..];
    let cont_start = context.len().saturating_sub(dropped);
    let logits = model.logits(&full[..full.len() - 1]);
    let mut total = 0.0f64;
    for (pos, &tok) in full.iter().enumerate().skip(cont_start.max(1)) {
        let row = logits.row(pos - 1);
        let m = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let denom: f32 = row.iter().map(|&v| (v - m).exp()).sum();
        total += (row[tok as usize] - m - denom.ln()) as f64;
    }
    total
}

/// Scores one item: greedy argmax for cloze items, likelihood ranking
/// otherwise. Returns whether the model got it right.
pub fn score_item<M: LogitsModel + ?Sized>(model: &M, item: &TaskItem) -> bool {
    if item.greedy {
        let logits = model.logits(&item.context);
        let row = logits.row(logits.rows() - 1);
        let argmax = row
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite logits"))
            .map(|(i, _)| i as u32)
            .expect("non-empty vocab");
        argmax == item.choices[item.correct][0]
    } else {
        let scores: Vec<f64> = item
            .choices
            .iter()
            .map(|c| {
                // Length-normalized likelihood, as the real benchmarks use.
                continuation_logprob(model, &item.context, c) / c.len() as f64
            })
            .collect();
        let best = scores
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite scores"))
            .map(|(i, _)| i)
            .expect("non-empty choices");
        best == item.correct
    }
}

/// Accuracy of the model on a task.
pub fn evaluate_task<M: LogitsModel + ?Sized>(model: &M, task: &Task) -> f64 {
    let correct = task
        .items
        .iter()
        .filter(|item| score_item(model, item))
        .count();
    correct as f64 / task.items.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use emmark_nanolm::config::ModelConfig;
    use emmark_nanolm::corpus::Corpus;
    use emmark_nanolm::train::{train, TrainConfig};
    use emmark_nanolm::TransformerModel;

    fn trained_tiny() -> (TransformerModel, Grammar) {
        let corpus = Corpus::sample(Grammar::synwiki(21), 6000, 400, 400);
        let mut cfg = ModelConfig::tiny_test();
        cfg.vocab_size = corpus.grammar.vocab_size();
        let mut model = TransformerModel::new(cfg);
        train(
            &mut model,
            &corpus,
            &TrainConfig {
                steps: 120,
                batch_size: 8,
                seq_len: 16,
                ..TrainConfig::default()
            },
        );
        (model, corpus.grammar)
    }

    #[test]
    fn tasks_build_deterministically() {
        let g = Grammar::synwiki(1);
        for kind in TaskKind::all() {
            let a = build_task(&g, kind, 20, 7);
            let b = build_task(&g, kind, 20, 7);
            assert_eq!(a, b);
            assert_eq!(a.items.len(), 20);
        }
    }

    #[test]
    fn items_are_well_formed() {
        let g = Grammar::synwiki(2);
        for kind in TaskKind::all() {
            let task = build_task(&g, kind, 30, 11);
            for item in &task.items {
                assert!(item.correct < item.choices.len());
                assert!(item.choices.iter().all(|c| !c.is_empty()));
                if item.greedy {
                    assert!(!item.context.is_empty());
                    assert_eq!(item.choices.len(), 1);
                }
            }
        }
    }

    #[test]
    fn agreement_choices_differ_only_in_the_noun() {
        let g = Grammar::synwiki(3);
        let task = build_task(&g, TaskKind::Agreement, 20, 5);
        for item in &task.items {
            let a = &item.choices[0];
            let b = &item.choices[1];
            assert_eq!(a.len(), b.len());
            let diffs: Vec<usize> = (0..a.len()).filter(|&i| a[i] != b[i]).collect();
            assert_eq!(diffs.len(), 1, "exactly one token must differ");
            assert_eq!(g.class_of(a[diffs[0]]), TokenClass::Noun);
        }
    }

    #[test]
    fn trained_model_beats_chance_on_ranking_tasks() {
        let (model, grammar) = trained_tiny();
        for kind in [
            TaskKind::Continuation,
            TaskKind::Plausibility,
            TaskKind::Agreement,
        ] {
            let task = build_task(&grammar, kind, 60, 13);
            let acc = evaluate_task(&model, &task);
            assert!(
                acc > kind.chance() + 0.08,
                "{} accuracy {acc} not above chance {}",
                kind.name(),
                kind.chance()
            );
        }
    }

    #[test]
    fn continuation_logprob_is_additive_and_negative() {
        let model = TransformerModel::new(ModelConfig::tiny_test());
        let lp = continuation_logprob(&model, &[1, 2], &[3, 4]);
        assert!(lp < 0.0);
        // Longer continuations are less likely in total.
        let lp_long = continuation_logprob(&model, &[1, 2], &[3, 4, 5, 6]);
        assert!(lp_long < lp);
    }

    #[test]
    fn long_contexts_are_clamped_to_window() {
        let model = TransformerModel::new(ModelConfig::tiny_test());
        let ctx: Vec<u32> = (0..40).map(|i| i % 31).collect(); // > max_seq
        let lp = continuation_logprob(&model, &ctx, &[1]);
        assert!(lp.is_finite());
    }
}
