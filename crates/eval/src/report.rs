//! Aggregate quality report: the two numbers every table in the paper
//! tracks (perplexity and mean zero-shot accuracy), plus per-task detail.

use crate::perplexity::perplexity;
use crate::tasks::{build_task, evaluate_task, TaskKind};
use emmark_nanolm::corpus::Corpus;
use emmark_nanolm::model::LogitsModel;
use serde::{Deserialize, Serialize};

/// Evaluation configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EvalConfig {
    /// Tokens of held-out text used for perplexity.
    pub ppl_tokens: usize,
    /// Window length for perplexity chunks.
    pub window: usize,
    /// Items per zero-shot task.
    pub task_items: usize,
    /// Task generation seed.
    pub seed: u64,
}

impl Default for EvalConfig {
    fn default() -> Self {
        Self {
            ppl_tokens: 3000,
            window: 32,
            task_items: 120,
            seed: 1234,
        }
    }
}

impl EvalConfig {
    /// Fast preset for unit tests.
    pub fn tiny_test() -> Self {
        Self {
            ppl_tokens: 400,
            window: 16,
            task_items: 20,
            seed: 1234,
        }
    }
}

/// Quality of one model under one evaluation configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QualityReport {
    /// Perplexity on held-out SynWiki text (lower is better).
    pub ppl: f64,
    /// Accuracy per task, in [`TaskKind::all`] order.
    pub task_accuracy: Vec<(String, f64)>,
    /// Mean of the four task accuracies, in percent — the paper's
    /// "Zero-shot Acc (%)".
    pub zero_shot_acc: f64,
}

/// Evaluates a model's quality on a corpus: perplexity plus the
/// four-task zero-shot suite.
///
/// # Panics
///
/// Panics if the corpus test split is shorter than `cfg.ppl_tokens`.
///
/// # Examples
///
/// ```
/// use emmark_eval::report::{evaluate_quality, EvalConfig};
/// use emmark_nanolm::{config::ModelConfig, corpus::{Corpus, Grammar}, TransformerModel};
///
/// let corpus = Corpus::sample(Grammar::synwiki(3), 2000, 200, 600);
/// let mut cfg = ModelConfig::tiny_test();
/// cfg.vocab_size = corpus.grammar.vocab_size();
/// let model = TransformerModel::new(cfg);
/// let report = evaluate_quality(&model, &corpus, &EvalConfig::tiny_test());
/// assert!(report.ppl > 1.0);
/// assert!((0.0..=100.0).contains(&report.zero_shot_acc));
/// ```
pub fn evaluate_quality<M: LogitsModel + ?Sized>(
    model: &M,
    corpus: &Corpus,
    cfg: &EvalConfig,
) -> QualityReport {
    assert!(
        corpus.test.len() >= cfg.ppl_tokens,
        "test split ({}) shorter than requested ppl_tokens ({})",
        corpus.test.len(),
        cfg.ppl_tokens
    );
    let ppl = perplexity(
        model,
        &corpus.test[..cfg.ppl_tokens],
        cfg.window.min(model.max_seq()),
    );
    let mut task_accuracy = Vec::with_capacity(4);
    let mut sum = 0.0;
    for kind in TaskKind::all() {
        let task = build_task(&corpus.grammar, kind, cfg.task_items, cfg.seed);
        let acc = evaluate_task(model, &task);
        sum += acc;
        task_accuracy.push((kind.name().to_string(), acc));
    }
    QualityReport {
        ppl,
        task_accuracy,
        zero_shot_acc: 100.0 * sum / 4.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use emmark_nanolm::config::ModelConfig;
    use emmark_nanolm::corpus::Grammar;
    use emmark_nanolm::train::{train, TrainConfig};
    use emmark_nanolm::TransformerModel;

    #[test]
    fn report_has_four_tasks_and_bounded_metrics() {
        let corpus = Corpus::sample(Grammar::synwiki(4), 2000, 200, 600);
        let mut cfg = ModelConfig::tiny_test();
        cfg.vocab_size = corpus.grammar.vocab_size();
        let model = TransformerModel::new(cfg);
        let report = evaluate_quality(&model, &corpus, &EvalConfig::tiny_test());
        assert_eq!(report.task_accuracy.len(), 4);
        assert!(report.ppl.is_finite() && report.ppl > 1.0);
        assert!((0.0..=100.0).contains(&report.zero_shot_acc));
    }

    #[test]
    fn training_improves_both_metrics() {
        let corpus = Corpus::sample(Grammar::synwiki(6), 6000, 400, 800);
        let mut cfg = ModelConfig::tiny_test();
        cfg.vocab_size = corpus.grammar.vocab_size();
        let mut model = TransformerModel::new(cfg);
        let eval_cfg = EvalConfig {
            task_items: 40,
            ..EvalConfig::tiny_test()
        };
        let before = evaluate_quality(&model, &corpus, &eval_cfg);
        train(
            &mut model,
            &corpus,
            &TrainConfig {
                steps: 120,
                batch_size: 8,
                seq_len: 16,
                ..TrainConfig::default()
            },
        );
        let after = evaluate_quality(&model, &corpus, &eval_cfg);
        assert!(after.ppl < before.ppl);
        assert!(after.zero_shot_acc > before.zero_shot_acc);
    }

    #[test]
    fn report_is_deterministic() {
        let corpus = Corpus::sample(Grammar::synwiki(8), 1000, 100, 600);
        let mut cfg = ModelConfig::tiny_test();
        cfg.vocab_size = corpus.grammar.vocab_size();
        let model = TransformerModel::new(cfg);
        let a = evaluate_quality(&model, &corpus, &EvalConfig::tiny_test());
        let b = evaluate_quality(&model, &corpus, &EvalConfig::tiny_test());
        assert_eq!(a, b);
    }
}
