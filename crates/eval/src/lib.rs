//! # emmark-eval
//!
//! Quality evaluation harness for the EmMark reproduction: perplexity on
//! held-out SynWiki text ([`perplexity`]) and a four-task synthetic
//! zero-shot suite ([`tasks`]) standing in for LAMBADA / HellaSwag /
//! PIQA / WinoGrande, aggregated into the paper's two table columns by
//! [`report::evaluate_quality`].
//!
//! Everything is generic over
//! [`LogitsModel`](emmark_nanolm::model::LogitsModel), so full-precision,
//! quantized, and watermarked models are measured by identical code.
//!
//! # Examples
//!
//! ```
//! use emmark_eval::report::{evaluate_quality, EvalConfig};
//! use emmark_nanolm::{config::ModelConfig, corpus::{Corpus, Grammar}, TransformerModel};
//! use emmark_quant::rtn::quantize_linear_rtn;
//! use emmark_quant::{ActQuant, Granularity, QuantizedModel};
//!
//! let corpus = Corpus::sample(Grammar::synwiki(3), 1000, 100, 600);
//! let mut cfg = ModelConfig::tiny_test();
//! cfg.vocab_size = corpus.grammar.vocab_size();
//! let model = TransformerModel::new(cfg);
//! let quantized = QuantizedModel::quantize_with(&model, "rtn-int8", |_, lin| {
//!     quantize_linear_rtn(lin, 8, Granularity::PerOutChannel, ActQuant::None)
//! });
//! // Same harness for both precisions.
//! let fp = evaluate_quality(&model, &corpus, &EvalConfig::tiny_test());
//! let q = evaluate_quality(&quantized, &corpus, &EvalConfig::tiny_test());
//! assert!(fp.ppl > 1.0 && q.ppl > 1.0);
//! ```

pub mod perplexity;
pub mod report;
pub mod tasks;

pub use report::{evaluate_quality, EvalConfig, QualityReport};
