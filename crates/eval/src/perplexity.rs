//! Perplexity evaluation (the paper's text-fluency metric, WikiText →
//! SynWiki here).

use emmark_nanolm::model::{stream_nll, LogitsModel};

/// Perplexity `exp(mean NLL)` of a model over a held-out token stream,
/// evaluated in non-overlapping windows.
///
/// # Panics
///
/// Panics if the stream is shorter than two tokens or the window does not
/// fit the model (see [`stream_nll`]).
///
/// # Examples
///
/// ```
/// use emmark_nanolm::{config::ModelConfig, TransformerModel};
/// use emmark_eval::perplexity::perplexity;
///
/// let model = TransformerModel::new(ModelConfig::tiny_test());
/// let stream: Vec<u32> = (0..100).map(|i| i % 31).collect();
/// let ppl = perplexity(&model, &stream, 16);
/// assert!(ppl > 1.0 && ppl.is_finite());
/// ```
pub fn perplexity<M: LogitsModel + ?Sized>(model: &M, stream: &[u32], window: usize) -> f64 {
    stream_nll(model, stream, window).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use emmark_nanolm::config::ModelConfig;
    use emmark_nanolm::corpus::{Corpus, Grammar};
    use emmark_nanolm::train::{train, TrainConfig};
    use emmark_nanolm::TransformerModel;

    #[test]
    fn untrained_model_ppl_is_near_uniform() {
        let model = TransformerModel::new(ModelConfig::tiny_test());
        let stream: Vec<u32> = (0..200u32).map(|i| (i * 17 + 3) % 31).collect();
        let ppl = perplexity(&model, &stream, 16);
        // An untrained model is near-uniform over 32 tokens, modulo
        // random init bias.
        assert!(ppl > 8.0 && ppl < 140.0, "ppl {ppl}");
    }

    #[test]
    fn training_lowers_perplexity() {
        let corpus = Corpus::sample(Grammar::synwiki(5), 4000, 400, 600);
        let mut cfg = ModelConfig::tiny_test();
        cfg.vocab_size = corpus.grammar.vocab_size();
        let mut model = TransformerModel::new(cfg);
        let before = perplexity(&model, &corpus.test, 16);
        train(&mut model, &corpus, &TrainConfig::tiny_test());
        let after = perplexity(&model, &corpus.test, 16);
        assert!(after < before * 0.8, "ppl {before} -> {after}");
    }

    #[test]
    fn perplexity_is_deterministic() {
        let model = TransformerModel::new(ModelConfig::tiny_test());
        let stream: Vec<u32> = (0..100u32).map(|i| i % 31).collect();
        assert_eq!(
            perplexity(&model, &stream, 12),
            perplexity(&model, &stream, 12)
        );
    }
}
