//! Integration coverage of the eval harness against the paper's
//! fidelity claim (Table 1: watermarking costs ≈0 quality): perplexity
//! and the zero-shot suite are computed on clean vs watermarked
//! quantized models across every quantization scheme and across the
//! nano-LM family grid, asserting the deltas stay inside each scheme's
//! tolerance.
//!
//! (Until this suite, `emmark-eval` had only unit tests — nothing
//! exercised `perplexity` + `evaluate_quality` against watermarked
//! models end to end.)

use emmark_core::watermark::{OwnerSecrets, WatermarkConfig};
use emmark_eval::perplexity::perplexity;
use emmark_eval::report::{evaluate_quality, EvalConfig};
use emmark_nanolm::corpus::Corpus;
use emmark_nanolm::families::{sim_opt_grid, train_spec, TrainEffort};
use emmark_nanolm::model::ActivationStats;
use emmark_nanolm::TransformerModel;
use emmark_quant::awq::{awq, AwqConfig};
use emmark_quant::gptq::{gptq, GptqConfig};
use emmark_quant::llm_int8::{llm_int8, OutlierCriterion};
use emmark_quant::rtn::quantize_linear_rtn;
use emmark_quant::smoothquant::{smoothquant, SmoothQuantConfig};
use emmark_quant::{ActQuant, Granularity, QuantizedModel};

/// Relative perplexity increase tolerated for a watermarked model, per
/// bit width: an INT4 grid takes a relatively larger hit from a ±1 bump
/// than an INT8 grid (coarser steps), but both stay within a couple of
/// percent — the reproduction-scale version of Table 1's Δ≈0.
fn ppl_tolerance(bits: u8) -> f64 {
    if bits == 8 {
        0.01
    } else {
        0.02
    }
}

fn trained_family() -> (
    TransformerModel,
    Corpus,
    ActivationStats,
    Vec<QuantizedModel>,
) {
    let spec = &sim_opt_grid()[0];
    let trained = train_spec(spec, TrainEffort::test(), 7);
    let calib: Vec<Vec<u32>> = trained
        .corpus
        .valid
        .chunks(24)
        .take(8)
        .map(|c| c.to_vec())
        .collect();
    let mut model = trained.model;
    let stats = model.collect_activation_stats(&calib);
    let models = vec![
        QuantizedModel::quantize_with(&model, "rtn-int8", |_, lin| {
            quantize_linear_rtn(lin, 8, Granularity::PerOutChannel, ActQuant::None)
        }),
        awq(&model, &stats, &AwqConfig::default()),
        gptq(&mut model.clone(), &calib, &GptqConfig::default()),
        smoothquant(&model, &stats, &SmoothQuantConfig::default()),
        llm_int8(&model, &stats, OutlierCriterion::Quantile(0.9)),
    ];
    (model, trained.corpus, stats, models)
}

fn watermark(qm: &QuantizedModel, stats: &ActivationStats) -> QuantizedModel {
    let cfg = WatermarkConfig {
        bits_per_layer: if qm.layers[0].bits() == 8 { 8 } else { 4 },
        pool_ratio: 10,
        ..Default::default()
    };
    OwnerSecrets::new(qm.clone(), stats.clone(), cfg, 0xF1D0)
        .watermark_for_deployment()
        .expect("insert")
}

#[test]
fn watermarked_quality_delta_stays_inside_scheme_tolerance() {
    let (_, corpus, stats, models) = trained_family();
    let eval_cfg = EvalConfig {
        ppl_tokens: 400,
        task_items: 16,
        ..EvalConfig::tiny_test()
    };
    for qm in &models {
        let scheme = qm.scheme.clone();
        let deployed = watermark(qm, &stats);
        let clean = evaluate_quality(qm, &corpus, &eval_cfg);
        let marked = evaluate_quality(&deployed, &corpus, &eval_cfg);
        let rel = (marked.ppl - clean.ppl) / clean.ppl;
        let tol = ppl_tolerance(qm.layers[0].bits());
        assert!(
            rel.abs() <= tol,
            "{scheme}: watermark moved ppl by {:.3}% (clean {:.3}, marked {:.3}, tol {:.1}%)",
            rel * 100.0,
            clean.ppl,
            marked.ppl,
            tol * 100.0
        );
        // The zero-shot suite moves by at most one item per task.
        let acc_delta = (marked.zero_shot_acc - clean.zero_shot_acc).abs();
        let one_item = 100.0 / eval_cfg.task_items as f64;
        assert!(
            acc_delta <= one_item + 1e-9,
            "{scheme}: zero-shot moved {acc_delta:.2} points (clean {:.2}, marked {:.2})",
            clean.zero_shot_acc,
            marked.zero_shot_acc
        );
        assert_eq!(marked.task_accuracy.len(), 4, "{scheme}");
    }
}

#[test]
fn perplexity_delta_is_tiny_across_the_nanolm_family() {
    // Untrained models from the Sim-OPT grid: the codepath under test
    // is perplexity itself — the watermark's ±1 bumps on a few hundred
    // scored cells must not move it beyond the scheme tolerance at any
    // model size.
    let corpus = Corpus::default_experiment(11);
    for spec in sim_opt_grid().into_iter().take(3) {
        let mut model = TransformerModel::new(spec.config(corpus.grammar.vocab_size()));
        let calib: Vec<Vec<u32>> = corpus
            .valid
            .chunks(24)
            .take(6)
            .map(|c| c.to_vec())
            .collect();
        let stats = model.collect_activation_stats(&calib);
        let qm = awq(&model, &stats, &AwqConfig::default());
        let deployed = watermark(&qm, &stats);
        let stream = &corpus.test[..600];
        let clean = perplexity(&qm, stream, 24);
        let marked = perplexity(&deployed, stream, 24);
        let rel = (marked - clean) / clean;
        assert!(
            rel.abs() <= ppl_tolerance(4),
            "{}: watermark moved ppl by {:.3}% ({clean:.3} -> {marked:.3})",
            spec.name(),
            rel * 100.0
        );
        assert!(marked.is_finite() && marked > 1.0, "{}", spec.name());
    }
}

#[test]
fn evaluation_is_deterministic_on_watermarked_models() {
    let (_, corpus, stats, models) = trained_family();
    let eval_cfg = EvalConfig::tiny_test();
    let deployed = watermark(&models[1], &stats);
    let a = evaluate_quality(&deployed, &corpus, &eval_cfg);
    let b = evaluate_quality(&deployed, &corpus, &eval_cfg);
    assert_eq!(a, b);
    // Window clamping: a window wider than max_seq is clamped inside
    // evaluate_quality, so huge windows cannot panic.
    let wide = EvalConfig {
        window: 10_000,
        ..eval_cfg
    };
    let report = evaluate_quality(&deployed, &corpus, &wide);
    assert!(report.ppl.is_finite());
}
