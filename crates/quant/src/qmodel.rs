//! The quantized model runtime: a transformer whose linear layers run
//! through [`QuantizedLinear`] while embeddings and norms stay in full
//! precision (standard weight-only / W8A8 practice).

use crate::qlinear::QuantizedLinear;
use emmark_nanolm::attention::MultiHeadAttention;
use emmark_nanolm::config::{MlpKind, ModelConfig};
use emmark_nanolm::layers::{gelu, silu, ChannelAccum, Embedding, Linear, Norm, Param};
use emmark_nanolm::model::{ActivationStats, LayerActivation, LogitsModel, TransformerModel};
use emmark_tensor::Matrix;
use serde::{Deserialize, Serialize};

/// A quantized transformer: full-precision embeddings/norms plus a flat
/// list of [`QuantizedLinear`] layers in the same canonical order as
/// [`TransformerModel::linear_layers`].
///
/// The flat layer list is the watermarking surface: EmMark indexes
/// "quantization layers" exactly as this vector does.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QuantizedModel {
    /// Model hyperparameters (shared with the source model).
    pub cfg: ModelConfig,
    emb: Embedding,
    norm_pairs: Vec<(Norm, Norm)>,
    final_norm: Norm,
    /// Quantized linears in canonical traversal order (per block:
    /// `q, k, v, o`, MLP linears; LM head last).
    pub layers: Vec<QuantizedLinear>,
    /// Human-readable scheme name (e.g. `"smoothquant-int8"`).
    pub scheme: String,
}

impl QuantizedModel {
    /// Quantizes `model` by applying `quantize_layer` to every linear in
    /// canonical order. The closure receives the layer index and the
    /// full-precision layer.
    ///
    /// # Panics
    ///
    /// Panics if the closure returns a layer with mismatched shape.
    pub fn quantize_with(
        model: &TransformerModel,
        scheme: &str,
        mut quantize_layer: impl FnMut(usize, &Linear) -> QuantizedLinear,
    ) -> Self {
        let layers: Vec<QuantizedLinear> = model
            .linear_layers()
            .into_iter()
            .enumerate()
            .map(|(idx, lin)| {
                let ql = quantize_layer(idx, lin);
                assert_eq!(
                    (ql.in_features(), ql.out_features()),
                    (lin.in_features(), lin.out_features()),
                    "quantizer changed the shape of layer {idx}"
                );
                ql
            })
            .collect();
        let norm_pairs = model
            .blocks
            .iter()
            .map(|b| (b.norm1.clone(), b.norm2.clone()))
            .collect();
        Self {
            cfg: model.cfg.clone(),
            emb: model.emb.clone(),
            norm_pairs,
            final_norm: model.final_norm.clone(),
            layers,
            scheme: scheme.to_string(),
        }
    }

    /// Reassembles a model from parts (deserialization path).
    ///
    /// # Panics
    ///
    /// Panics if the layer count does not match the config.
    pub fn from_parts(
        cfg: ModelConfig,
        emb: Embedding,
        norm_pairs: Vec<(Norm, Norm)>,
        final_norm: Norm,
        layers: Vec<QuantizedLinear>,
        scheme: String,
    ) -> Self {
        assert_eq!(
            layers.len(),
            cfg.quant_layer_count(),
            "layer count mismatch"
        );
        assert_eq!(norm_pairs.len(), cfg.n_layers, "norm pair count mismatch");
        Self {
            cfg,
            emb,
            norm_pairs,
            final_norm,
            layers,
            scheme,
        }
    }

    /// The full-precision embedding tables.
    pub fn emb(&self) -> &Embedding {
        &self.emb
    }

    /// The per-block norm pairs.
    pub fn norm_pairs(&self) -> &[(Norm, Norm)] {
        &self.norm_pairs
    }

    /// The final norm.
    pub fn final_norm(&self) -> &Norm {
        &self.final_norm
    }

    /// Number of quantized layers (the paper's `n`).
    pub fn layer_count(&self) -> usize {
        self.layers.len()
    }

    /// Linears per block (6 for OPT-style, 7 for LLaMA-style).
    fn linears_per_block(&self) -> usize {
        self.cfg.linears_per_block()
    }

    /// Whether two quantized models carry identical integer grids
    /// (ignores scheme label). The integrity experiment's notion of
    /// "same weights".
    pub fn same_weights(&self, other: &QuantizedModel) -> bool {
        self.layers.len() == other.layers.len()
            && self
                .layers
                .iter()
                .zip(&other.layers)
                .all(|(a, b)| a.q_values() == b.q_values())
    }

    /// One forward pass; when `recorders` is provided, the input of every
    /// quantized layer is accumulated into the matching recorder before
    /// the layer runs.
    fn forward_internal(
        &self,
        tokens: &[u32],
        mut recorders: Option<&mut Vec<ChannelAccum>>,
    ) -> Matrix {
        let lpb = self.linears_per_block();
        let record = |recorders: &mut Option<&mut Vec<ChannelAccum>>, idx: usize, x: &Matrix| {
            if let Some(rec) = recorders {
                rec[idx].record(x);
            }
        };
        let mut h = self.emb.infer(tokens);
        for (b, (norm1, norm2)) in self.norm_pairs.iter().enumerate() {
            let base = b * lpb;
            let xn = norm1.infer(&h);
            record(&mut recorders, base, &xn);
            record(&mut recorders, base + 1, &xn);
            record(&mut recorders, base + 2, &xn);
            let q = self.layers[base].forward(&xn);
            let k = self.layers[base + 1].forward(&xn);
            let v = self.layers[base + 2].forward(&xn);
            let concat = MultiHeadAttention::attention_core(&q, &k, &v, self.cfg.n_heads);
            record(&mut recorders, base + 3, &concat);
            let att = self.layers[base + 3].forward(&concat);
            h.add_assign(&att);
            let xn2 = norm2.infer(&h);
            let m = match self.cfg.mlp {
                MlpKind::Gelu => {
                    record(&mut recorders, base + 4, &xn2);
                    let a = self.layers[base + 4].forward(&xn2).map(gelu);
                    record(&mut recorders, base + 5, &a);
                    self.layers[base + 5].forward(&a)
                }
                MlpKind::GatedSilu => {
                    record(&mut recorders, base + 4, &xn2);
                    record(&mut recorders, base + 5, &xn2);
                    let g = self.layers[base + 4].forward(&xn2);
                    let u = self.layers[base + 5].forward(&xn2);
                    let a =
                        Matrix::from_fn(g.rows(), g.cols(), |i, j| silu(g.at(i, j)) * u.at(i, j));
                    record(&mut recorders, base + 6, &a);
                    self.layers[base + 6].forward(&a)
                }
            };
            h.add_assign(&m);
        }
        let hn = self.final_norm.infer(&h);
        record(&mut recorders, self.layers.len() - 1, &hn);
        self.layers.last().expect("head layer").forward(&hn)
    }

    /// The final-norm hidden states `[T, d_model]` — the LM head's
    /// input. Exposed for QLoRA-style head adaptation, which trains an
    /// adapter on top of the frozen quantized weights.
    pub fn final_hidden(&self, tokens: &[u32]) -> Matrix {
        let lpb = self.linears_per_block();
        let mut h = self.emb.infer(tokens);
        for (b, (norm1, norm2)) in self.norm_pairs.iter().enumerate() {
            let base = b * lpb;
            let xn = norm1.infer(&h);
            let q = self.layers[base].forward(&xn);
            let k = self.layers[base + 1].forward(&xn);
            let v = self.layers[base + 2].forward(&xn);
            let concat = MultiHeadAttention::attention_core(&q, &k, &v, self.cfg.n_heads);
            h.add_assign(&self.layers[base + 3].forward(&concat));
            let xn2 = norm2.infer(&h);
            let m = match self.cfg.mlp {
                MlpKind::Gelu => {
                    let a = self.layers[base + 4].forward(&xn2).map(gelu);
                    self.layers[base + 5].forward(&a)
                }
                MlpKind::GatedSilu => {
                    let g = self.layers[base + 4].forward(&xn2);
                    let u = self.layers[base + 5].forward(&xn2);
                    let a =
                        Matrix::from_fn(g.rows(), g.cols(), |i, j| silu(g.at(i, j)) * u.at(i, j));
                    self.layers[base + 6].forward(&a)
                }
            };
            h.add_assign(&m);
        }
        self.final_norm.infer(&h)
    }

    /// Reconstructs a full-precision surrogate of this quantized model —
    /// what a scheme-conversion adversary builds before re-quantizing
    /// with a different quantizer. Embeddings and norms copy over
    /// verbatim (they were never quantized); each linear's weight is the
    /// [`QuantizedLinear::effective_weight`] view (dequantized, with any
    /// migrated input scale divided back out), so the surrogate applies
    /// the same function to raw inputs as the quantized runtime does —
    /// up to the quantization error already baked into the grids, which
    /// is exactly the adversary's information loss.
    pub fn surrogate_model(&self) -> TransformerModel {
        let mut fp = TransformerModel::new(self.cfg.clone());
        fp.emb = self.emb.clone();
        for (block, (norm1, norm2)) in fp.blocks.iter_mut().zip(&self.norm_pairs) {
            block.norm1 = norm1.clone();
            block.norm2 = norm2.clone();
        }
        fp.final_norm = self.final_norm.clone();
        for (lin, ql) in fp.linear_layers_mut().into_iter().zip(&self.layers) {
            lin.weight = Param::new(ql.effective_weight());
            lin.bias = ql.bias().map(|b| Param::new(Matrix::from_rows(&[b])));
        }
        fp
    }

    /// Activation statistics measured through the *quantized* model —
    /// what an adversary without the full-precision model can compute
    /// (the paper's re-watermark attack uses exactly this, §5.3).
    pub fn collect_activation_stats(&self, calibration: &[Vec<u32>]) -> ActivationStats {
        let mut recorders: Vec<ChannelAccum> = self
            .layers
            .iter()
            .map(|l| ChannelAccum::new(l.in_features()))
            .collect();
        for seq in calibration {
            let _ = self.forward_internal(seq, Some(&mut recorders));
        }
        ActivationStats {
            per_layer: recorders
                .into_iter()
                .map(|r| LayerActivation {
                    mean_abs: r.mean_abs(),
                    max_abs: r.max_abs(),
                })
                .collect(),
        }
    }
}

impl LogitsModel for QuantizedModel {
    fn logits(&self, tokens: &[u32]) -> Matrix {
        self.forward_internal(tokens, None)
    }

    fn vocab_size(&self) -> usize {
        self.cfg.vocab_size
    }

    fn max_seq(&self) -> usize {
        self.cfg.max_seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qlinear::{ActQuant, Granularity};
    use crate::rtn::quantize_linear_rtn;
    use emmark_nanolm::config::{MlpKind, NormKind};

    fn quantize_tiny(bits: u8) -> (TransformerModel, QuantizedModel) {
        let model = TransformerModel::new(ModelConfig::tiny_test());
        let qm = QuantizedModel::quantize_with(&model, "rtn-test", |_, lin| {
            quantize_linear_rtn(lin, bits, Granularity::PerOutChannel, ActQuant::None)
        });
        (model, qm)
    }

    #[test]
    fn quantized_model_has_canonical_layer_count() {
        let (model, qm) = quantize_tiny(8);
        assert_eq!(qm.layer_count(), model.cfg.quant_layer_count());
    }

    #[test]
    fn int8_quantized_logits_stay_close_to_fp() {
        let (model, qm) = quantize_tiny(8);
        let tokens = [1u32, 5, 9, 13, 2];
        let fp = model.logits(&tokens);
        let q = qm.logits(&tokens);
        assert_eq!(fp.shape(), q.shape());
        let denom = fp.frobenius_norm().max(1e-9);
        let rel = fp.sub(&q).frobenius_norm() / denom;
        assert!(rel < 0.05, "INT8 relative logit error {rel}");
    }

    #[test]
    fn int4_error_exceeds_int8_error() {
        let (model, qm8) = quantize_tiny(8);
        let (_, qm4) = quantize_tiny(4);
        let tokens = [3u32, 1, 4, 1, 5, 9, 2, 6];
        let fp = model.logits(&tokens);
        let e8 = fp.sub(&qm8.logits(&tokens)).frobenius_norm();
        let e4 = fp.sub(&qm4.logits(&tokens)).frobenius_norm();
        assert!(e4 > e8, "INT4 error {e4} should exceed INT8 error {e8}");
    }

    #[test]
    fn gated_llama_style_model_quantizes_and_runs() {
        let mut cfg = ModelConfig::tiny_test();
        cfg.norm = NormKind::RmsNorm;
        cfg.mlp = MlpKind::GatedSilu;
        let model = TransformerModel::new(cfg.clone());
        let qm = QuantizedModel::quantize_with(&model, "rtn-test", |_, lin| {
            quantize_linear_rtn(lin, 8, Granularity::PerOutChannel, ActQuant::None)
        });
        assert_eq!(qm.layer_count(), cfg.quant_layer_count());
        let logits = qm.logits(&[0, 1, 2, 3]);
        assert_eq!(logits.shape(), (4, cfg.vocab_size));
        assert!(logits.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn quantized_activation_stats_cover_layers_and_track_fp_loosely() {
        let mut model = TransformerModel::new(ModelConfig::tiny_test());
        let calib: Vec<Vec<u32>> = vec![(0..16u32).map(|i| (i * 3 + 1) % 31).collect()];
        let fp_stats = model.collect_activation_stats(&calib);
        let (_, qm) = quantize_tiny(8);
        let q_stats = qm.collect_activation_stats(&calib);
        assert_eq!(q_stats.layer_count(), qm.layer_count());
        // INT8 is close to FP, so the stats should correlate strongly —
        // but not be identical (that difference is what defeats the
        // re-watermark adversary at INT4).
        // Layer 0's input only crosses full-precision embedding and norm,
        // so it matches exactly; deeper layers see quantization error.
        let a0 = &fp_stats.per_layer[0].mean_abs;
        let b0 = &q_stats.per_layer[0].mean_abs;
        assert_eq!(a0, b0, "pre-first-layer activations are identical");
        let deep = 4; // first MLP input, downstream of quantized attention
        let a = &fp_stats.per_layer[deep].mean_abs;
        let b = &q_stats.per_layer[deep].mean_abs;
        let mut identical = true;
        for (x, y) in a.iter().zip(b.iter()) {
            assert!((x - y).abs() / x.max(1e-6) < 0.2, "{x} vs {y}");
            if x != y {
                identical = false;
            }
        }
        assert!(
            !identical,
            "quantized stats should differ at least slightly"
        );
    }

    #[test]
    fn same_weights_detects_single_bit_difference() {
        let (_, qm) = quantize_tiny(8);
        let mut other = qm.clone();
        assert!(qm.same_weights(&other));
        // Find a non-clamped cell and bump it.
        let f = (0..other.layers[0].len())
            .find(|&f| !other.layers[0].is_clamped_flat(f))
            .expect("some bumpable cell");
        other.layers[0].bump_q_flat(f, 1);
        assert!(!qm.same_weights(&other));
    }
}
