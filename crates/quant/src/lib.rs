//! # emmark-quant
//!
//! Post-training quantization substrate for the EmMark reproduction:
//! the Eq. 1 RTN kernel ([`rtn`]), the paper's three named INT8/INT4
//! schemes — SmoothQuant ([`smoothquant`]), LLM.int8() ([`llm_int8`]),
//! AWQ ([`awq`]) — plus GPTQ ([`gptq`]) as the Table 4 integrity control,
//! and a dequantizing [`QuantizedModel`] runtime that implements
//! [`LogitsModel`](emmark_nanolm::model::LogitsModel) so the evaluation
//! harness treats quantized and full-precision models identically.
//!
//! The [`QuantizedLinear`] layer is the watermarking surface: EmMark's
//! insertion is a `±1` bump of one integer cell, and this crate provides
//! the clamp-level and outlier-row bookkeeping the paper's scoring
//! function needs.
//!
//! # Examples
//!
//! ```
//! use emmark_nanolm::{config::ModelConfig, TransformerModel};
//! use emmark_quant::awq::{awq, AwqConfig};
//! use emmark_nanolm::model::LogitsModel;
//!
//! let mut model = TransformerModel::new(ModelConfig::tiny_test());
//! let calib = vec![vec![1u32, 2, 3, 4, 5]];
//! let stats = model.collect_activation_stats(&calib);
//! let quantized = awq(&model, &stats, &AwqConfig::default());
//! assert_eq!(quantized.layer_count(), model.cfg.quant_layer_count());
//! let logits = quantized.logits(&[1, 2, 3]);
//! assert!(logits.iter().all(|v| v.is_finite()));
//! ```

pub mod awq;
pub mod gptq;
pub mod llm_int8;
pub mod qlinear;
pub mod qlora;
pub mod qmodel;
pub mod rtn;
pub mod smoothquant;

pub use qlinear::{ActQuant, Granularity, QuantizedLinear};
pub use qmodel::QuantizedModel;
