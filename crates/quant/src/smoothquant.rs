//! SmoothQuant (Xiao et al., ICML 2023) W8A8 quantization.
//!
//! Activation outliers make per-tensor INT8 activations lossy; weights
//! are comparatively easy. SmoothQuant migrates difficulty from
//! activations to weights through the mathematically equivalent rewrite
//! `Y = X W = (X · diag(s)^{-1}) (diag(s) W)` with
//! `s_j = max|X_j|^α / max|W_j|^{1−α}`, then quantizes both sides to
//! INT8. The paper uses SmoothQuant as the INT8 scheme for the OPT
//! family.

use crate::qlinear::{ActQuant, Granularity, QuantizedLinear};
use crate::qmodel::QuantizedModel;
use crate::rtn::quantize_weight;
use emmark_nanolm::layers::Linear;
use emmark_nanolm::model::{ActivationStats, TransformerModel};
use emmark_tensor::Matrix;

/// SmoothQuant configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SmoothQuantConfig {
    /// Migration strength `α` in `[0, 1]`; 0.5 is the paper default.
    pub alpha: f32,
    /// Floor applied to the per-channel scale to avoid division blow-ups
    /// on dead channels.
    pub scale_floor: f32,
}

impl Default for SmoothQuantConfig {
    fn default() -> Self {
        Self {
            alpha: 0.5,
            scale_floor: 1e-5,
        }
    }
}

/// Computes the per-input-channel migration scale for one layer.
///
/// # Panics
///
/// Panics if `alpha` is outside `[0, 1]` or the channel counts disagree.
pub fn migration_scales(act_max: &[f32], weight: &Matrix, cfg: &SmoothQuantConfig) -> Vec<f32> {
    assert!((0.0..=1.0).contains(&cfg.alpha), "alpha must be in [0, 1]");
    assert_eq!(act_max.len(), weight.rows(), "channel count mismatch");
    let w_rowmax = weight.row_abs_max();
    act_max
        .iter()
        .zip(w_rowmax.iter())
        .map(|(&a, &w)| {
            let a = a.max(cfg.scale_floor);
            let w = w.max(cfg.scale_floor);
            (a.powf(cfg.alpha) / w.powf(1.0 - cfg.alpha)).max(cfg.scale_floor)
        })
        .collect()
}

/// Quantizes one linear layer with SmoothQuant conditioning.
pub fn smoothquant_layer(
    linear: &Linear,
    act_max: &[f32],
    cfg: &SmoothQuantConfig,
) -> QuantizedLinear {
    let s = migration_scales(act_max, &linear.weight.value, cfg);
    let w = &linear.weight.value;
    let scaled = Matrix::from_fn(w.rows(), w.cols(), |i, j| w.at(i, j) * s[i]);
    let bias = linear.bias.as_ref().map(|b| b.value.as_slice().to_vec());
    quantize_weight(
        &scaled,
        8,
        Granularity::PerOutChannel,
        Some(s),
        bias,
        ActQuant::Int8PerToken,
    )
}

/// Quantizes a whole model with SmoothQuant INT8 (the paper's OPT-family
/// INT8 scheme).
///
/// # Panics
///
/// Panics if `stats` does not cover every quantizable layer.
pub fn smoothquant(
    model: &TransformerModel,
    stats: &ActivationStats,
    cfg: &SmoothQuantConfig,
) -> QuantizedModel {
    assert_eq!(
        stats.layer_count(),
        model.cfg.quant_layer_count(),
        "activation stats do not match the model"
    );
    QuantizedModel::quantize_with(model, "smoothquant-int8", |idx, lin| {
        smoothquant_layer(lin, &stats.per_layer[idx].max_abs, cfg)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use emmark_nanolm::config::ModelConfig;
    use emmark_nanolm::model::LogitsModel;
    use emmark_tensor::rng::Xoshiro256;

    #[test]
    fn migration_identity_holds_in_full_precision() {
        // (x / s) (s ⊙ W) == x W exactly (up to f32 rounding).
        let mut rng = Xoshiro256::seed_from_u64(1);
        let w = Matrix::from_fn(6, 4, |_, _| rng.normal_f32(0.0, 1.0));
        let act_max: Vec<f32> = (0..6).map(|_| rng.uniform_range(0.5, 8.0)).collect();
        let s = migration_scales(&act_max, &w, &SmoothQuantConfig::default());
        let x = Matrix::from_fn(3, 6, |_, _| rng.normal_f32(0.0, 2.0));
        let direct = x.matmul(&w);
        let xs = Matrix::from_fn(3, 6, |i, j| x.at(i, j) / s[j]);
        let ws = Matrix::from_fn(6, 4, |i, j| w.at(i, j) * s[i]);
        let migrated = xs.matmul(&ws);
        let rel = direct.sub(&migrated).frobenius_norm() / direct.frobenius_norm().max(1e-12);
        assert!(rel < 1e-5, "identity violated: {rel}");
    }

    #[test]
    fn scales_grow_with_activation_magnitude() {
        let w = Matrix::full(3, 2, 1.0);
        let s = migration_scales(&[1.0, 4.0, 16.0], &w, &SmoothQuantConfig::default());
        assert!(s[0] < s[1] && s[1] < s[2]);
        // alpha = 0.5, w_max = 1 -> s = sqrt(act).
        assert!((s[1] - 2.0).abs() < 1e-6);
    }

    #[test]
    fn alpha_zero_ignores_activations() {
        let w = Matrix::from_rows(&[&[2.0, 0.0], &[0.0, 8.0]]);
        let cfg = SmoothQuantConfig {
            alpha: 0.0,
            ..Default::default()
        };
        let s = migration_scales(&[100.0, 1.0], &w, &cfg);
        // s_j = 1 / w_rowmax_j
        assert!((s[0] - 0.5).abs() < 1e-6);
        assert!((s[1] - 0.125).abs() < 1e-6);
    }

    #[test]
    fn dead_channels_do_not_explode() {
        let w = Matrix::from_rows(&[&[0.0, 0.0], &[1.0, 1.0]]);
        let s = migration_scales(&[0.0, 1.0], &w, &SmoothQuantConfig::default());
        assert!(s.iter().all(|v| v.is_finite() && *v > 0.0));
    }

    #[test]
    fn smoothquant_model_outperforms_or_matches_naive_int8_on_outlier_model() {
        // A model with amplified outlier channels is exactly the regime
        // SmoothQuant exists for: W8A8 with per-token activation quant
        // should be no worse than naive W8A8 without migration.
        let mut cfg = ModelConfig::tiny_test();
        cfg.outliers = Some(emmark_nanolm::config::OutlierProfile {
            channels: 3,
            factor: 10.0,
            seed: 3,
        });
        let mut model = emmark_nanolm::TransformerModel::new(cfg);
        let calib: Vec<Vec<u32>> = (0..4u32)
            .map(|s| (0..16u32).map(|i| (i * 7 + s * 3) % 31).collect())
            .collect();
        let stats = model.collect_activation_stats(&calib);

        let sq = smoothquant(&model, &stats, &SmoothQuantConfig::default());
        let naive = QuantizedModel::quantize_with(&model, "naive-w8a8", |_, lin| {
            crate::rtn::quantize_linear_rtn(
                lin,
                8,
                Granularity::PerOutChannel,
                ActQuant::Int8PerToken,
            )
        });

        let tokens: Vec<u32> = (0..20u32).map(|i| (i * 5 + 1) % 31).collect();
        let fp = model.logits(&tokens);
        let err_sq = fp.sub(&sq.logits(&tokens)).frobenius_norm();
        let err_naive = fp.sub(&naive.logits(&tokens)).frobenius_norm();
        assert!(
            err_sq <= err_naive * 1.05,
            "smoothquant ({err_sq}) lost badly to naive ({err_naive})"
        );
    }

    #[test]
    fn full_pipeline_produces_int8_grids_with_input_scales() {
        let mut model = emmark_nanolm::TransformerModel::new(ModelConfig::tiny_test());
        let calib = vec![vec![1u32, 2, 3, 4, 5, 6]];
        let stats = model.collect_activation_stats(&calib);
        let qm = smoothquant(&model, &stats, &SmoothQuantConfig::default());
        assert_eq!(qm.scheme, "smoothquant-int8");
        for layer in &qm.layers {
            assert_eq!(layer.bits(), 8);
            assert!(layer.input_scale().is_some());
            assert_eq!(layer.act_quant(), ActQuant::Int8PerToken);
        }
    }
}
