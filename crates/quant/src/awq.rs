//! AWQ (Lin et al., 2023) activation-aware INT4 weight quantization.
//!
//! AWQ observes that a small fraction of *salient* weight channels —
//! identified by activation magnitude, not weight magnitude — dominates
//! model quality, and that scaling those channels up before group-wise
//! quantization shrinks their effective quantization step. The per-layer
//! scale exponent is grid-searched against an activation-weighted
//! reconstruction error. The paper uses AWQ as the INT4 scheme for every
//! model, and EmMark's saliency score `S_r` keys on the same activation
//! signal.

use crate::qlinear::{ActQuant, Granularity, QuantizedLinear};
use crate::qmodel::QuantizedModel;
use crate::rtn::quantize_weight;
use emmark_nanolm::layers::Linear;
use emmark_nanolm::model::{ActivationStats, TransformerModel};
use emmark_tensor::Matrix;

/// AWQ configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct AwqConfig {
    /// Group size for the INT4 grid.
    pub group_size: usize,
    /// Exponent grid searched for the per-channel scale
    /// `s_j = (a_j / geomean(a))^γ`.
    pub gamma_grid: Vec<f32>,
    /// Clamp applied to the per-channel scale.
    pub scale_clamp: (f32, f32),
}

impl Default for AwqConfig {
    fn default() -> Self {
        Self {
            group_size: 16,
            gamma_grid: vec![0.0, 0.25, 0.5, 0.75, 1.0],
            scale_clamp: (1e-3, 1e3),
        }
    }
}

/// Per-channel AWQ scale for a given exponent.
pub fn awq_scales(act_mean: &[f32], gamma: f32, clamp: (f32, f32)) -> Vec<f32> {
    let positive: Vec<f64> = act_mean.iter().map(|&a| (a.max(1e-8)) as f64).collect();
    let geo = emmark_tensor::stats::geometric_mean(&positive) as f32;
    act_mean
        .iter()
        .map(|&a| ((a.max(1e-8) / geo).powf(gamma)).clamp(clamp.0, clamp.1))
        .collect()
}

/// Activation-weighted reconstruction error of a candidate quantization:
/// `Σ_i a_i² · Σ_j (W_ij − Ŵ_ij)²`, where `Ŵ` is the effective
/// (descaled) dequantized weight. This is the AWQ search objective
/// specialized to the statistics we record.
fn weighted_error(w: &Matrix, ql: &QuantizedLinear, act_mean: &[f32]) -> f64 {
    let deq = ql.effective_weight();
    let mut err = 0.0f64;
    #[allow(clippy::needless_range_loop)] // i indexes both act_mean and w rows
    for i in 0..w.rows() {
        let a2 = (act_mean[i] as f64).powi(2);
        if a2 == 0.0 {
            continue;
        }
        let mut row_err = 0.0f64;
        for j in 0..w.cols() {
            let d = (w.at(i, j) - deq.at(i, j)) as f64;
            row_err += d * d;
        }
        err += a2 * row_err;
    }
    err
}

/// Result of quantizing one layer with AWQ.
#[derive(Debug, Clone)]
pub struct AwqLayer {
    /// The quantized layer.
    pub layer: QuantizedLinear,
    /// The exponent the grid search selected.
    pub gamma: f32,
    /// The search objective at the selected exponent.
    pub error: f64,
}

/// Quantizes one linear layer with AWQ INT4.
pub fn awq_layer(linear: &Linear, act_mean: &[f32], cfg: &AwqConfig) -> AwqLayer {
    let w = &linear.weight.value;
    let bias = linear.bias.as_ref().map(|b| b.value.as_slice().to_vec());
    let mut best: Option<AwqLayer> = None;
    for &gamma in &cfg.gamma_grid {
        let s = awq_scales(act_mean, gamma, cfg.scale_clamp);
        let scaled = Matrix::from_fn(w.rows(), w.cols(), |i, j| w.at(i, j) * s[i]);
        let ql = quantize_weight(
            &scaled,
            4,
            Granularity::Grouped {
                group_size: cfg.group_size,
            },
            Some(s),
            bias.clone(),
            ActQuant::None,
        );
        let err = weighted_error(w, &ql, act_mean);
        if best.as_ref().is_none_or(|b| err < b.error) {
            best = Some(AwqLayer {
                layer: ql,
                gamma,
                error: err,
            });
        }
    }
    best.expect("gamma grid must be non-empty")
}

/// Quantizes a whole model with AWQ INT4 (the paper's INT4 scheme).
///
/// # Panics
///
/// Panics if `stats` does not cover every quantizable layer.
pub fn awq(model: &TransformerModel, stats: &ActivationStats, cfg: &AwqConfig) -> QuantizedModel {
    assert_eq!(
        stats.layer_count(),
        model.cfg.quant_layer_count(),
        "activation stats do not match the model"
    );
    QuantizedModel::quantize_with(model, "awq-int4", |idx, lin| {
        awq_layer(lin, &stats.per_layer[idx].mean_abs, cfg).layer
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use emmark_nanolm::config::ModelConfig;
    use emmark_nanolm::model::LogitsModel;
    use emmark_tensor::rng::Xoshiro256;

    #[test]
    fn scales_are_one_at_gamma_zero() {
        let s = awq_scales(&[1.0, 5.0, 0.1], 0.0, (1e-3, 1e3));
        assert!(s.iter().all(|&v| (v - 1.0).abs() < 1e-6));
    }

    #[test]
    fn salient_channels_get_larger_scales() {
        let s = awq_scales(&[0.1, 1.0, 10.0], 0.5, (1e-3, 1e3));
        assert!(s[0] < s[1] && s[1] < s[2]);
        // Geometric mean of the scales stays ~1 (scale-neutral rewrite).
        let geo: f64 = s.iter().map(|&v| (v as f64).ln()).sum::<f64>() / 3.0;
        assert!(geo.exp() - 1.0 < 1e-3);
    }

    #[test]
    fn grid_search_beats_or_matches_plain_int4_on_skewed_activations() {
        // Channels with huge activations but small weights: AWQ should
        // reduce the activation-weighted reconstruction error vs γ=0.
        let mut rng = Xoshiro256::seed_from_u64(2);
        let mut lin = Linear::new(32, 16, false, &mut rng);
        // Make 4 salient channels have small weights (fine structure that
        // plain INT4 rounds away).
        for i in 0..4 {
            for j in 0..16 {
                let v = lin.weight.value.at(i, j);
                lin.weight.value.set(i, j, v * 0.05);
            }
        }
        let mut act = vec![1.0f32; 32];
        for a in act.iter_mut().take(4) {
            *a = 40.0;
        }
        let cfg = AwqConfig::default();
        let chosen = awq_layer(&lin, &act, &cfg);
        let plain = {
            let s = awq_scales(&act, 0.0, cfg.scale_clamp);
            let ql = quantize_weight(
                &lin.weight.value,
                4,
                Granularity::Grouped {
                    group_size: cfg.group_size,
                },
                Some(s),
                None,
                ActQuant::None,
            );
            weighted_error(&lin.weight.value, &ql, &act)
        };
        assert!(
            chosen.error <= plain,
            "grid search ({}) worse than plain INT4 ({plain})",
            chosen.error
        );
        assert!(
            chosen.gamma > 0.0,
            "grid search should prefer activation-aware scaling"
        );
    }

    #[test]
    fn awq_model_runs_and_uses_int4_grouped_grids() {
        let mut model = emmark_nanolm::TransformerModel::new(ModelConfig::tiny_test());
        let calib = vec![vec![1u32, 2, 3, 4, 5, 6, 7]];
        let stats = model.collect_activation_stats(&calib);
        let qm = awq(&model, &stats, &AwqConfig::default());
        assert_eq!(qm.scheme, "awq-int4");
        for layer in &qm.layers {
            assert_eq!(layer.bits(), 4);
            assert!(matches!(layer.granularity(), Granularity::Grouped { .. }));
            assert!(layer.input_scale().is_some());
        }
        let logits = qm.logits(&[1, 2, 3, 4]);
        assert!(logits.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn awq_tracks_fp_better_than_naive_per_tensor_int4() {
        let mut model = emmark_nanolm::TransformerModel::new(ModelConfig::tiny_test());
        let calib: Vec<Vec<u32>> = (0..4u32)
            .map(|s| (0..16u32).map(|i| (i * 7 + s * 5) % 31).collect())
            .collect();
        let stats = model.collect_activation_stats(&calib);
        let awq_model = awq(&model, &stats, &AwqConfig::default());
        let naive = QuantizedModel::quantize_with(&model, "naive-int4", |_, lin| {
            crate::rtn::quantize_linear_rtn(lin, 4, Granularity::PerTensor, ActQuant::None)
        });
        let tokens: Vec<u32> = (0..20u32).map(|i| (i * 13 + 3) % 31).collect();
        let fp = model.logits(&tokens);
        let err_awq = fp.sub(&awq_model.logits(&tokens)).frobenius_norm();
        let err_naive = fp.sub(&naive.logits(&tokens)).frobenius_norm();
        assert!(
            err_awq < err_naive,
            "AWQ ({err_awq}) should beat naive per-tensor INT4 ({err_naive})"
        );
    }
}
