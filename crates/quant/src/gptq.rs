//! GPTQ (Frantar et al., 2022) second-order INT4 quantization.
//!
//! GPTQ quantizes weights one input channel at a time, compensating the
//! rounding error of each channel by updating the not-yet-quantized
//! channels through the inverse Hessian `H⁻¹`, `H = XᵀX + λI` over
//! calibration activations. The paper uses GPTQ as the "different
//! quantizer" integrity control (Table 4, non-WM 4) and cites its known
//! tendency to overfit the calibration set.

use crate::qlinear::{ActQuant, Granularity, QuantizedLinear};
use crate::qmodel::QuantizedModel;
use emmark_nanolm::layers::Linear;
use emmark_nanolm::model::TransformerModel;
use emmark_tensor::linalg::{cholesky_upper, invert_spd};
use emmark_tensor::Matrix;

/// GPTQ configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GptqConfig {
    /// Bit width (4 in the paper's INT4 runs).
    pub bits: u8,
    /// Group size for scale blocks along the input dimension.
    pub group_size: usize,
    /// Relative dampening added to the Hessian diagonal (`percdamp`).
    pub percdamp: f64,
}

impl Default for GptqConfig {
    fn default() -> Self {
        Self {
            bits: 4,
            group_size: 16,
            percdamp: 0.01,
        }
    }
}

/// Quantizes one layer with GPTQ given its calibration Gram matrix
/// `H = Σ xᵀx` (as produced by
/// [`TransformerModel::collect_hessians`]).
///
/// # Panics
///
/// Panics if `hessian` is not `[in, in]`.
pub fn gptq_layer(linear: &Linear, hessian: &Matrix, cfg: &GptqConfig) -> QuantizedLinear {
    let w0 = &linear.weight.value;
    let (in_f, out_f) = w0.shape();
    assert_eq!(hessian.shape(), (in_f, in_f), "hessian shape mismatch");
    let qmax = ((1i16 << (cfg.bits - 1)) - 1) as f64;

    // Dampened Hessian in f64.
    let mut h = vec![0.0f64; in_f * in_f];
    let mut diag_mean = 0.0f64;
    for i in 0..in_f {
        diag_mean += hessian.at(i, i) as f64;
    }
    diag_mean /= in_f as f64;
    let damp = (cfg.percdamp * diag_mean).max(1e-8);
    for i in 0..in_f {
        for j in 0..in_f {
            h[i * in_f + j] = hessian.at(i, j) as f64;
        }
        // Dead channels get a unit pivot so the factorization stays SPD.
        if h[i * in_f + i] <= 0.0 {
            h[i * in_f + i] = 1.0;
        }
        h[i * in_f + i] += damp;
    }

    // U with H^{-1} = Uᵀ U; U upper triangular (the GPTQ "Cholesky trick").
    let hinv = invert_spd(&h, in_f).expect("dampened Hessian must be SPD");
    let u = cholesky_upper(&hinv, in_f).expect("H^-1 must be SPD");

    // Working copy of the weights in f64.
    let mut w: Vec<f64> = w0.iter().map(|&v| v as f64).collect();
    let mut q = vec![0i8; in_f * out_f];
    let n_groups = in_f.div_ceil(cfg.group_size);
    let mut scales = vec![1.0f32; n_groups * out_f];

    for i in 0..in_f {
        let g = i / cfg.group_size;
        if i % cfg.group_size == 0 {
            // Scale per column over the *current* (error-compensated)
            // weights of this group.
            let hi = ((g + 1) * cfg.group_size).min(in_f);
            for j in 0..out_f {
                let absmax = (i..hi)
                    .map(|r| w[r * out_f + j].abs())
                    .fold(0.0f64, f64::max);
                scales[g * out_f + j] = if absmax == 0.0 {
                    1.0
                } else {
                    (absmax / qmax) as f32
                };
            }
        }
        let d = u[i * in_f + i];
        // Quantize row i and compute the compensation coefficients.
        let mut errs = vec![0.0f64; out_f];
        for j in 0..out_f {
            let scale = scales[g * out_f + j] as f64;
            let wv = w[i * out_f + j];
            let qv = (wv / scale).round().clamp(-qmax, qmax);
            q[i * out_f + j] = qv as i8;
            let deq = qv * scale;
            errs[j] = (wv - deq) / d;
        }
        // Propagate the error into the remaining rows.
        for k in i + 1..in_f {
            let c = u[i * in_f + k];
            if c == 0.0 {
                continue;
            }
            for j in 0..out_f {
                w[k * out_f + j] -= errs[j] * c;
            }
        }
    }

    let bias = linear.bias.as_ref().map(|b| b.value.as_slice().to_vec());
    QuantizedLinear::new(
        q,
        in_f,
        out_f,
        cfg.bits,
        Granularity::Grouped {
            group_size: cfg.group_size,
        },
        scales,
        None,
        bias,
        ActQuant::None,
    )
}

/// Quantizes a whole model with GPTQ using Gram matrices collected from
/// `calibration` sequences.
pub fn gptq(
    model: &mut TransformerModel,
    calibration: &[Vec<u32>],
    cfg: &GptqConfig,
) -> QuantizedModel {
    let hessians = model.collect_hessians(calibration);
    QuantizedModel::quantize_with(model, "gptq-int4", |idx, lin| {
        gptq_layer(lin, &hessians[idx], cfg)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rtn::quantize_weight;
    use emmark_nanolm::config::ModelConfig;
    use emmark_nanolm::model::LogitsModel;
    use emmark_tensor::rng::Xoshiro256;

    /// Correlated calibration inputs: x = z A with a fixed mixing matrix,
    /// giving a non-diagonal Hessian — the regime where GPTQ's error
    /// compensation matters.
    fn correlated_inputs(rows: usize, dim: usize, seed: u64) -> Matrix {
        let mut rng = Xoshiro256::seed_from_u64(seed);
        let a = Matrix::from_fn(dim, dim, |i, j| {
            if i == j {
                1.0
            } else {
                0.35 * rng.normal_f32(0.0, 1.0)
            }
        });
        let z = Matrix::from_fn(rows, dim, |_, _| rng.normal_f32(0.0, 1.0));
        z.matmul(&a)
    }

    #[test]
    fn gptq_beats_rtn_in_task_space_on_correlated_data() {
        let mut rng = Xoshiro256::seed_from_u64(1);
        let dim = 24;
        let out = 12;
        let lin = Linear::new(dim, out, false, &mut rng);
        let x = correlated_inputs(200, dim, 2);
        let h = x.transa_matmul(&x);
        let cfg = GptqConfig {
            bits: 4,
            group_size: 8,
            percdamp: 0.01,
        };
        let gq = gptq_layer(&lin, &h, &cfg);
        let rq = quantize_weight(
            &lin.weight.value,
            4,
            Granularity::Grouped { group_size: 8 },
            None,
            None,
            ActQuant::None,
        );
        // Task-space error || X W - X W_q ||_F is what GPTQ minimizes.
        let y = x.matmul(&lin.weight.value);
        let err_gptq = y.sub(&x.matmul(&gq.dequantize())).frobenius_norm();
        let err_rtn = y.sub(&x.matmul(&rq.dequantize())).frobenius_norm();
        assert!(
            err_gptq < err_rtn,
            "GPTQ ({err_gptq}) should beat RTN ({err_rtn}) in task space"
        );
    }

    #[test]
    fn gptq_grid_respects_bit_range() {
        let mut rng = Xoshiro256::seed_from_u64(3);
        let lin = Linear::new(16, 8, false, &mut rng);
        let x = correlated_inputs(64, 16, 4);
        let h = x.transa_matmul(&x);
        let gq = gptq_layer(&lin, &h, &GptqConfig::default());
        assert!(gq.q_values().iter().all(|&q| (-7..=7).contains(&q)));
        assert_eq!(gq.bits(), 4);
    }

    #[test]
    fn degenerate_hessian_is_handled() {
        // All-zero Hessian (no calibration signal): GPTQ degrades to RTN
        // but must not crash or produce NaN scales.
        let mut rng = Xoshiro256::seed_from_u64(5);
        let lin = Linear::new(8, 4, false, &mut rng);
        let h = Matrix::zeros(8, 8);
        let gq = gptq_layer(
            &lin,
            &h,
            &GptqConfig {
                bits: 4,
                group_size: 4,
                percdamp: 0.01,
            },
        );
        let deq = gq.dequantize();
        assert!(deq.iter().all(|v| v.is_finite()));
        let err = deq.sub(&lin.weight.value).frobenius_norm();
        // With a diagonal (unit) Hessian GPTQ == RTN, so error is small.
        let rq = quantize_weight(
            &lin.weight.value,
            4,
            Granularity::Grouped { group_size: 4 },
            None,
            None,
            ActQuant::None,
        );
        let err_rtn = rq.dequantize().sub(&lin.weight.value).frobenius_norm();
        assert!(
            (err - err_rtn).abs() / err_rtn.max(1e-9) < 0.35,
            "{err} vs {err_rtn}"
        );
    }

    #[test]
    fn gptq_model_pipeline_runs() {
        let mut model = emmark_nanolm::TransformerModel::new(ModelConfig::tiny_test());
        let calib: Vec<Vec<u32>> = (0..3u32)
            .map(|s| (0..12u32).map(|i| (i * 5 + s) % 31).collect())
            .collect();
        let qm = gptq(&mut model, &calib, &GptqConfig::default());
        assert_eq!(qm.scheme, "gptq-int4");
        assert_eq!(qm.layer_count(), model.cfg.quant_layer_count());
        let logits = qm.logits(&[1, 2, 3]);
        assert!(logits.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn gptq_and_awq_produce_different_grids() {
        // Table 4 relies on GPTQ being a *different* quantizer: the
        // integer grids must differ from AWQ's for the same model.
        let mut model = emmark_nanolm::TransformerModel::new(ModelConfig::tiny_test());
        let calib = vec![vec![1u32, 2, 3, 4, 5, 6, 7, 8]];
        let stats = model.collect_activation_stats(&calib);
        let awq_m = crate::awq::awq(&model, &stats, &crate::awq::AwqConfig::default());
        let gptq_m = gptq(&mut model, &calib, &GptqConfig::default());
        assert!(!awq_m.same_weights(&gptq_m));
    }
}
