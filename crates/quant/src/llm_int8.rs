//! LLM.int8() (Dettmers et al., 2022) mixed-precision INT8 quantization.
//!
//! A small set of input channels carries activation outliers whose
//! magnitudes break symmetric INT8 activation quantization. LLM.int8()
//! decomposes the matmul: outlier channels run in full precision, the
//! rest in INT8. The paper uses LLM.int8() as the INT8 scheme for the
//! LLaMA-2 family.

use crate::qlinear::{ActQuant, Granularity, QuantizedLinear};
use crate::qmodel::QuantizedModel;
use crate::rtn::quantize_weight;
use emmark_nanolm::layers::Linear;
use emmark_nanolm::model::{ActivationStats, TransformerModel};
use emmark_tensor::Matrix;

/// How outlier channels are selected.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum OutlierCriterion {
    /// Channels whose max |activation| exceeds an absolute threshold
    /// (6.0 in the original paper).
    Absolute(f32),
    /// Channels whose max |activation| exceeds the given quantile of the
    /// layer's channel maxima — scale-free, which suits micro models
    /// whose absolute activation ranges differ from 100B-scale LLMs.
    Quantile(f64),
}

impl Default for OutlierCriterion {
    fn default() -> Self {
        OutlierCriterion::Quantile(0.97)
    }
}

/// Returns the sorted outlier channel set for one layer.
pub fn outlier_channels(act_max: &[f32], criterion: OutlierCriterion) -> Vec<usize> {
    let threshold = match criterion {
        OutlierCriterion::Absolute(t) => t,
        OutlierCriterion::Quantile(q) => {
            let xs: Vec<f64> = act_max.iter().map(|&v| v as f64).collect();
            emmark_tensor::stats::percentile(&xs, q * 100.0) as f32
        }
    };
    let mut rows: Vec<usize> = act_max
        .iter()
        .enumerate()
        .filter(|(_, &a)| a > threshold)
        .map(|(i, _)| i)
        .collect();
    rows.sort_unstable();
    rows
}

/// Quantizes one layer with LLM.int8() decomposition.
pub fn llm_int8_layer(
    linear: &Linear,
    act_max: &[f32],
    criterion: OutlierCriterion,
) -> QuantizedLinear {
    let bias = linear.bias.as_ref().map(|b| b.value.as_slice().to_vec());
    let mut ql = quantize_weight(
        &linear.weight.value,
        8,
        Granularity::PerOutChannel,
        None,
        bias,
        ActQuant::Int8PerToken,
    );
    let rows = outlier_channels(act_max, criterion);
    if !rows.is_empty() {
        let w = &linear.weight.value;
        let ow = Matrix::from_fn(rows.len(), w.cols(), |k, j| w.at(rows[k], j));
        ql.set_outliers(rows, ow);
    }
    ql
}

/// Quantizes a whole model with LLM.int8() (the paper's LLaMA-2-family
/// INT8 scheme).
///
/// # Panics
///
/// Panics if `stats` does not cover every quantizable layer.
pub fn llm_int8(
    model: &TransformerModel,
    stats: &ActivationStats,
    criterion: OutlierCriterion,
) -> QuantizedModel {
    assert_eq!(
        stats.layer_count(),
        model.cfg.quant_layer_count(),
        "activation stats do not match the model"
    );
    QuantizedModel::quantize_with(model, "llm-int8", |idx, lin| {
        llm_int8_layer(lin, &stats.per_layer[idx].max_abs, criterion)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use emmark_nanolm::config::ModelConfig;
    use emmark_nanolm::model::LogitsModel;
    use emmark_tensor::rng::Xoshiro256;

    #[test]
    fn absolute_criterion_picks_exceeding_channels() {
        let rows = outlier_channels(&[1.0, 7.0, 2.0, 9.0], OutlierCriterion::Absolute(6.0));
        assert_eq!(rows, vec![1, 3]);
    }

    #[test]
    fn quantile_criterion_picks_top_share() {
        let act: Vec<f32> = (0..100).map(|i| i as f32).collect();
        let rows = outlier_channels(&act, OutlierCriterion::Quantile(0.95));
        assert_eq!(rows.len(), 5);
        assert!(rows.contains(&99));
    }

    #[test]
    fn no_outliers_below_threshold() {
        let rows = outlier_channels(&[1.0, 2.0], OutlierCriterion::Absolute(10.0));
        assert!(rows.is_empty());
    }

    #[test]
    fn outlier_rows_reproduce_fp_weights_exactly() {
        let mut rng = Xoshiro256::seed_from_u64(1);
        let lin = Linear::new(6, 3, false, &mut rng);
        let act_max = [1.0f32, 1.0, 50.0, 1.0, 1.0, 1.0];
        let ql = llm_int8_layer(&lin, &act_max, OutlierCriterion::Absolute(6.0));
        assert_eq!(ql.outlier_rows(), &[2]);
        let deq = ql.dequantize();
        for j in 0..3 {
            assert_eq!(
                deq.at(2, j),
                lin.weight.value.at(2, j),
                "outlier row not exact"
            );
        }
    }

    #[test]
    fn decomposition_beats_plain_w8a8_on_outlier_model() {
        // With strong activation outliers, per-token INT8 activation
        // quantization destroys information; the mixed-precision path
        // should recover most of it.
        let mut cfg = ModelConfig::tiny_test();
        cfg.outliers = Some(emmark_nanolm::config::OutlierProfile {
            channels: 2,
            factor: 16.0,
            seed: 5,
        });
        let mut model = emmark_nanolm::TransformerModel::new(cfg);
        let calib: Vec<Vec<u32>> = (0..4u32)
            .map(|s| (0..16u32).map(|i| (i * 11 + s) % 31).collect())
            .collect();
        let stats = model.collect_activation_stats(&calib);

        let mixed = llm_int8(&model, &stats, OutlierCriterion::Quantile(0.9));
        let plain = QuantizedModel::quantize_with(&model, "plain-w8a8", |_, lin| {
            crate::rtn::quantize_linear_rtn(
                lin,
                8,
                Granularity::PerOutChannel,
                ActQuant::Int8PerToken,
            )
        });
        let tokens: Vec<u32> = (0..20u32).map(|i| (i * 3 + 2) % 31).collect();
        let fp = model.logits(&tokens);
        let err_mixed = fp.sub(&mixed.logits(&tokens)).frobenius_norm();
        let err_plain = fp.sub(&plain.logits(&tokens)).frobenius_norm();
        assert!(
            err_mixed <= err_plain,
            "decomposition ({err_mixed}) should not lose to plain W8A8 ({err_plain})"
        );
    }

    #[test]
    fn full_pipeline_marks_outlier_cells_unwatermarkable() {
        let mut cfg = ModelConfig::tiny_test();
        cfg.outliers = Some(emmark_nanolm::config::OutlierProfile {
            channels: 2,
            factor: 16.0,
            seed: 7,
        });
        let mut model = emmark_nanolm::TransformerModel::new(cfg);
        let calib = vec![vec![1u32, 2, 3, 4, 5, 6, 7, 8]];
        let stats = model.collect_activation_stats(&calib);
        let qm = llm_int8(&model, &stats, OutlierCriterion::Quantile(0.9));
        let with_outliers = qm
            .layers
            .iter()
            .filter(|l| !l.outlier_rows().is_empty())
            .count();
        assert!(with_outliers > 0, "no layer detected outliers");
        for layer in &qm.layers {
            for &r in layer.outlier_rows() {
                let f = r * layer.out_features();
                assert!(layer.is_outlier_flat(f));
                assert_eq!(layer.q_at_flat(f), 0);
            }
        }
    }
}
