//! QLoRA-style fine-tuning of a quantized model.
//!
//! The paper's fine-tuning argument (§3, §5.3): "fine-tuning quantized
//! model like QLoRA does not change quantized weights but adds
//! additional linear low-rank adaptators to learn new features. Such
//! methods … cannot be used to remove signatures." This module makes
//! the argument executable: a [`QloraModel`] wraps a frozen
//! [`QuantizedModel`] with a trainable low-rank head adapter, learns a
//! new token distribution, and — by construction — leaves every integer
//! weight (and therefore every watermark bit) untouched.

use crate::qmodel::QuantizedModel;
use emmark_nanolm::lora::LoraAdapter;
use emmark_nanolm::model::{cross_entropy, LogitsModel};
use emmark_tensor::rng::Xoshiro256;
use emmark_tensor::Matrix;

/// A frozen quantized model plus a trainable LoRA adapter on the LM
/// head.
#[derive(Debug, Clone)]
pub struct QloraModel {
    /// The frozen base — integer grids are never written.
    pub base: QuantizedModel,
    /// The trainable head adapter.
    pub adapter: LoraAdapter,
}

impl QloraModel {
    /// Wraps `base` with a rank-`rank` head adapter.
    pub fn new(base: QuantizedModel, rank: usize, seed: u64) -> Self {
        let head = base.layers.last().expect("head layer");
        let mut rng = Xoshiro256::seed_from_u64(seed);
        let adapter =
            LoraAdapter::new(head.in_features(), head.out_features(), rank, 1.0, &mut rng);
        Self { base, adapter }
    }

    /// One adapter-only training step on a token window; returns the
    /// mean NLL. Gradients flow only into the adapter (the base model's
    /// integer weights have no gradient path at all).
    ///
    /// # Panics
    ///
    /// Panics if `tokens.len() < 2`.
    pub fn train_step(&mut self, tokens: &[u32], lr: f32, step: u64) -> f64 {
        assert!(tokens.len() >= 2, "need at least two tokens");
        let inputs = &tokens[..tokens.len() - 1];
        let targets = &tokens[1..];
        let hidden = self.base.final_hidden(inputs);
        let base_logits = self.base.layers.last().expect("head").forward(&hidden);
        let adapter_out = self.adapter.forward(&hidden);
        let logits = base_logits.add(&adapter_out);
        let (loss, dlogits) = cross_entropy(&logits, targets);
        self.adapter.a.zero_grad();
        self.adapter.b.zero_grad();
        let _dhidden = self.adapter.backward(&dlogits);
        self.adapter.a.adam_step(lr, 0.9, 0.999, 1e-8, step);
        self.adapter.b.adam_step(lr, 0.9, 0.999, 1e-8, step);
        loss
    }

    /// Fine-tunes the adapter on a token stream.
    pub fn finetune(&mut self, stream: &[u32], steps: u64, window: usize, lr: f32, seed: u64) {
        let mut rng = Xoshiro256::seed_from_u64(seed);
        for step in 1..=steps {
            let start = rng.below(stream.len().saturating_sub(window + 1).max(1));
            let end = (start + window + 1).min(stream.len());
            self.train_step(&stream[start..end], lr, step);
        }
    }

    /// Folds the adapter into the frozen base and returns the resulting
    /// standalone quantized model — the *deployment* step of a
    /// fine-tuning attack. Serving a separate adapter keeps the integer
    /// grids untouched (the paper's §3 argument); an adversary who wants
    /// a single artifact must merge, and merging is where watermark bits
    /// are at risk: each head cell is re-rounded as
    /// `q' = round((q·scale + Δ·s_in) / scale)` on its original scale
    /// (clamped to the symmetric range), and outlier rows absorb the
    /// delta into their full-precision weights. Only the head layer can
    /// change — the adapter touches nothing else.
    pub fn merged_base(&self) -> QuantizedModel {
        let mut merged = self.base.clone();
        let head = merged.layers.last_mut().expect("head layer");
        let delta = self.adapter.delta_weight();
        assert_eq!(
            delta.shape(),
            (head.in_features(), head.out_features()),
            "adapter shape mismatch"
        );
        let qmax = head.qmax() as f32;
        let out_f = head.out_features();
        let mut q = head.q_values().to_vec();
        for i in 0..head.in_features() {
            if head.is_outlier_row(i) {
                continue;
            }
            let s_in = head.input_scale().map_or(1.0, |s| s[i]);
            for j in 0..out_f {
                let scale = head.scale_at(i, j);
                if scale == 0.0 {
                    continue;
                }
                let f = i * out_f + j;
                let w = q[f] as f32 * scale + delta.at(i, j) * s_in;
                q[f] = (w / scale).round().clamp(-qmax, qmax) as i8;
            }
        }
        let mut new_head = head.with_grid(q);
        if let Some(ow) = head.outlier_weights() {
            let rows = head.outlier_rows().to_vec();
            let merged_ow = Matrix::from_fn(rows.len(), out_f, |k, j| {
                let r = rows[k];
                let s_in = head.input_scale().map_or(1.0, |s| s[r]);
                ow.at(k, j) + delta.at(r, j) * s_in
            });
            new_head.set_outliers(rows, merged_ow);
        }
        *head = new_head;
        merged
    }
}

impl LogitsModel for QloraModel {
    fn logits(&self, tokens: &[u32]) -> Matrix {
        let hidden = self.base.final_hidden(tokens);
        let base_logits = self.base.layers.last().expect("head").forward(&hidden);
        base_logits.add(&self.adapter.infer(&hidden))
    }

    fn vocab_size(&self) -> usize {
        self.base.vocab_size()
    }

    fn max_seq(&self) -> usize {
        self.base.max_seq()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rtn::quantize_linear_rtn;
    use crate::{ActQuant, Granularity};
    use emmark_nanolm::config::ModelConfig;
    use emmark_nanolm::corpus::{Corpus, Grammar};
    use emmark_nanolm::model::stream_nll;
    use emmark_nanolm::train::{train, TrainConfig};
    use emmark_nanolm::TransformerModel;

    fn trained_quantized() -> (QuantizedModel, Corpus) {
        let corpus = Corpus::sample(Grammar::synwiki(41), 4000, 400, 600);
        let mut cfg = ModelConfig::tiny_test();
        cfg.vocab_size = corpus.grammar.vocab_size();
        let mut model = TransformerModel::new(cfg);
        train(&mut model, &corpus, &TrainConfig::tiny_test());
        let qm = QuantizedModel::quantize_with(&model, "rtn-int8", |_, lin| {
            quantize_linear_rtn(lin, 8, Granularity::PerOutChannel, ActQuant::None)
        });
        (qm, corpus)
    }

    #[test]
    fn fresh_qlora_matches_base_logits() {
        let (base, _) = trained_quantized();
        let qlora = QloraModel::new(base.clone(), 4, 1);
        let tokens = [1u32, 5, 9];
        let a = base.logits(&tokens);
        let b = qlora.logits(&tokens);
        for (x, y) in a.iter().zip(b.iter()) {
            assert!(
                (x - y).abs() < 1e-6,
                "zero-init adapter must be transparent"
            );
        }
    }

    #[test]
    fn qlora_adapts_to_a_new_distribution_without_touching_weights() {
        let (base, _) = trained_quantized();
        let frozen_reference = base.clone();
        let alpaca = Grammar::synalpaca(41).generate(4000);
        let mut qlora = QloraModel::new(base, 8, 2);
        let before = stream_nll(&qlora, &alpaca[..300], 16);
        qlora.finetune(&alpaca, 150, 16, 5e-3, 3);
        let after = stream_nll(&qlora, &alpaca[..300], 16);
        assert!(
            after < before,
            "adapter failed to adapt: {before} -> {after}"
        );
        // The paper's point: the quantized weights are bit-identical.
        assert!(qlora.base.same_weights(&frozen_reference));
    }
}
