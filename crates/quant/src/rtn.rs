//! Round-to-nearest (RTN) quantization — Eq. 1 of the paper:
//! `X̄ = Round(X / Δ)`, `Δ = max(|X|) / (2^{N−1} − 1)`.
//!
//! RTN is both a scheme in its own right (the paper's plain INT8 path)
//! and the kernel every other scheme (SmoothQuant, AWQ, LLM.int8) calls
//! after its own weight conditioning.

use crate::qlinear::{ActQuant, Granularity, QuantizedLinear};
use emmark_tensor::Matrix;

/// Quantizes one scale block of values symmetrically to `bits`.
///
/// Returns `(q, Δ)`. An all-zero block gets `Δ = 1.0` (any positive scale
/// is equivalent for zeros).
pub fn quantize_block(values: &[f32], bits: u8) -> (Vec<i8>, f32) {
    let qmax = ((1i16 << (bits - 1)) - 1) as f32;
    let absmax = values.iter().fold(0.0f32, |m, &v| m.max(v.abs()));
    if absmax == 0.0 {
        return (vec![0; values.len()], 1.0);
    }
    let delta = absmax / qmax;
    let q = values
        .iter()
        .map(|&v| (v / delta).round().clamp(-qmax, qmax) as i8)
        .collect();
    (q, delta)
}

/// Quantizes a weight matrix `[in, out]` with the given granularity.
///
/// `input_scale`, when provided, is stored for runtime activation
/// division — the caller is expected to have already multiplied the
/// weights by it (the SmoothQuant/AWQ migration identity).
pub fn quantize_weight(
    weight: &Matrix,
    bits: u8,
    granularity: Granularity,
    input_scale: Option<Vec<f32>>,
    bias: Option<Vec<f32>>,
    act_quant: ActQuant,
) -> QuantizedLinear {
    let (in_f, out_f) = weight.shape();
    let mut q = vec![0i8; in_f * out_f];
    let mut scales = Vec::new();
    match granularity {
        Granularity::PerTensor => {
            let (qs, delta) = quantize_block(weight.as_slice(), bits);
            q.copy_from_slice(&qs);
            scales.push(delta);
        }
        Granularity::PerOutChannel => {
            scales = vec![0.0; out_f];
            for j in 0..out_f {
                let col: Vec<f32> = (0..in_f).map(|i| weight.at(i, j)).collect();
                let (qs, delta) = quantize_block(&col, bits);
                scales[j] = delta;
                for (i, &qv) in qs.iter().enumerate() {
                    q[i * out_f + j] = qv;
                }
            }
        }
        Granularity::Grouped { group_size } => {
            let n_groups = in_f.div_ceil(group_size);
            scales = vec![0.0; n_groups * out_f];
            for g in 0..n_groups {
                let lo = g * group_size;
                let hi = ((g + 1) * group_size).min(in_f);
                for j in 0..out_f {
                    let blk: Vec<f32> = (lo..hi).map(|i| weight.at(i, j)).collect();
                    let (qs, delta) = quantize_block(&blk, bits);
                    scales[g * out_f + j] = delta;
                    for (k, &qv) in qs.iter().enumerate() {
                        q[(lo + k) * out_f + j] = qv;
                    }
                }
            }
        }
    }
    QuantizedLinear::new(
        q,
        in_f,
        out_f,
        bits,
        granularity,
        scales,
        input_scale,
        bias,
        act_quant,
    )
}

/// Quantizes an `emmark-nanolm` [`Linear`](emmark_nanolm::layers::Linear)
/// with plain RTN (no conditioning).
pub fn quantize_linear_rtn(
    linear: &emmark_nanolm::layers::Linear,
    bits: u8,
    granularity: Granularity,
    act_quant: ActQuant,
) -> QuantizedLinear {
    let bias = linear.bias.as_ref().map(|b| b.value.as_slice().to_vec());
    quantize_weight(
        &linear.weight.value,
        bits,
        granularity,
        None,
        bias,
        act_quant,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use emmark_tensor::rng::Xoshiro256;

    #[test]
    fn block_roundtrip_error_is_bounded_by_half_step() {
        let mut rng = Xoshiro256::seed_from_u64(1);
        for bits in [4u8, 8] {
            let vals: Vec<f32> = (0..256).map(|_| rng.normal_f32(0.0, 1.0)).collect();
            let (q, delta) = quantize_block(&vals, bits);
            for (&v, &qv) in vals.iter().zip(q.iter()) {
                let err = (v - qv as f32 * delta).abs();
                assert!(err <= delta / 2.0 + 1e-6, "err {err} > half step {delta}");
            }
        }
    }

    #[test]
    fn block_uses_full_range_at_extremes() {
        let vals = [3.0f32, -3.0, 0.0, 1.5];
        let (q, delta) = quantize_block(&vals, 4);
        assert_eq!(q[0], 7);
        assert_eq!(q[1], -7);
        assert_eq!(q[2], 0);
        assert!((delta - 3.0 / 7.0).abs() < 1e-7);
    }

    #[test]
    fn zero_block_is_stable() {
        let (q, delta) = quantize_block(&[0.0; 8], 8);
        assert!(q.iter().all(|&v| v == 0));
        assert_eq!(delta, 1.0);
    }

    #[test]
    fn per_out_channel_scales_are_independent() {
        let w = Matrix::from_rows(&[&[1.0, 100.0], &[-1.0, -50.0]]);
        let ql = quantize_weight(
            &w,
            8,
            Granularity::PerOutChannel,
            None,
            None,
            ActQuant::None,
        );
        let deq = ql.dequantize();
        // Column 0 has absmax 1 -> error <= 1/254; column 1 absmax 100.
        assert!((deq.at(0, 0) - 1.0).abs() < 1e-2);
        assert!((deq.at(0, 1) - 100.0).abs() < 0.5);
        assert!((deq.at(1, 1) + 50.0).abs() < 0.5);
    }

    #[test]
    fn grouped_quantization_reduces_error_vs_per_tensor() {
        // One huge region and one tiny region along the input dim: group
        // scales isolate them, per-tensor does not.
        let mut rng = Xoshiro256::seed_from_u64(2);
        let w = Matrix::from_fn(64, 4, |i, _| {
            if i < 32 {
                rng.normal_f32(0.0, 10.0)
            } else {
                rng.normal_f32(0.0, 0.05)
            }
        });
        let per_tensor = quantize_weight(&w, 4, Granularity::PerTensor, None, None, ActQuant::None);
        let grouped = quantize_weight(
            &w,
            4,
            Granularity::Grouped { group_size: 32 },
            None,
            None,
            ActQuant::None,
        );
        // The fine-structure region (rows 32..64) is where group scales
        // pay off: per-tensor Δ is set by the huge region and rounds the
        // small weights to zero.
        let fine_err = |ql: &QuantizedLinear| {
            let deq = ql.dequantize();
            deq.slice_rows(32, 64)
                .sub(&w.slice_rows(32, 64))
                .frobenius_norm()
        };
        assert!(
            fine_err(&grouped) < fine_err(&per_tensor) * 0.2,
            "grouped {} vs per-tensor {}",
            fine_err(&grouped),
            fine_err(&per_tensor)
        );
    }

    #[test]
    fn int4_grid_never_exceeds_seven() {
        let mut rng = Xoshiro256::seed_from_u64(3);
        let w = Matrix::from_fn(16, 16, |_, _| rng.normal_f32(0.0, 2.0));
        let ql = quantize_weight(
            &w,
            4,
            Granularity::Grouped { group_size: 8 },
            None,
            None,
            ActQuant::None,
        );
        assert!(ql.q_values().iter().all(|&q| (-7..=7).contains(&q)));
    }

    #[test]
    fn rtn_on_nanolm_linear_keeps_bias() {
        let mut rng = Xoshiro256::seed_from_u64(4);
        let mut lin = emmark_nanolm::layers::Linear::new(4, 3, true, &mut rng);
        lin.bias.as_mut().unwrap().value.set(0, 1, 2.5);
        let ql = quantize_linear_rtn(&lin, 8, Granularity::PerOutChannel, ActQuant::None);
        let x = Matrix::zeros(1, 4);
        let y = ql.forward(&x);
        assert_eq!(y.at(0, 1), 2.5);
    }
}
