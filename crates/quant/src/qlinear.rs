//! The quantized linear layer — the data structure EmMark watermarks.
//!
//! A [`QuantizedLinear`] stores the integer weight grid produced by Eq. 1
//! of the paper, the scale metadata of whichever quantizer produced it,
//! and (scheme-dependent) per-input-channel runtime scales, LLM.int8()
//! outlier rows, and activation fake-quantization. Watermark insertion is
//! a `±1` bump of one integer cell; everything else exists so that the
//! *consequences* of that bump on model quality are measured faithfully.

use emmark_nanolm::attention::MultiHeadAttention;
use emmark_tensor::Matrix;
use serde::{Deserialize, Serialize};

/// Scale granularity of the integer grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Granularity {
    /// One scale for the whole tensor.
    PerTensor,
    /// One scale per output channel (column).
    PerOutChannel,
    /// One scale per (input-group, output-channel) pair.
    Grouped {
        /// Input channels per group.
        group_size: usize,
    },
}

/// Runtime activation handling.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ActQuant {
    /// Activations stay full precision (W4A16-style).
    None,
    /// Symmetric per-token INT8 fake quantization (W8A8-style).
    Int8PerToken,
}

/// A linear layer with integer weights, `q: [in_features, out_features]`
/// row-major — input channel `i` is row `i`, matching the activation
/// statistics axis.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantizedLinear {
    q: Vec<i8>,
    in_features: usize,
    out_features: usize,
    bits: u8,
    granularity: Granularity,
    scales: Vec<f32>,
    /// Per-input-channel divisor applied to activations at runtime
    /// (SmoothQuant / AWQ migration: weights were multiplied by it before
    /// quantization).
    input_scale: Option<Vec<f32>>,
    /// Sorted input channels kept in full precision (LLM.int8()).
    outlier_rows: Vec<usize>,
    /// Full-precision weights of the outlier rows,
    /// `[outlier_rows.len(), out_features]`.
    outlier_weights: Option<Matrix>,
    bias: Option<Vec<f32>>,
    act_quant: ActQuant,
}

impl QuantizedLinear {
    /// Assembles a quantized layer from parts.
    ///
    /// # Panics
    ///
    /// Panics if buffer lengths are inconsistent with the shape,
    /// granularity, or bit width.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        q: Vec<i8>,
        in_features: usize,
        out_features: usize,
        bits: u8,
        granularity: Granularity,
        scales: Vec<f32>,
        input_scale: Option<Vec<f32>>,
        bias: Option<Vec<f32>>,
        act_quant: ActQuant,
    ) -> Self {
        assert_eq!(
            q.len(),
            in_features * out_features,
            "q buffer size mismatch"
        );
        assert!(bits == 4 || bits == 8, "only INT4 and INT8 are supported");
        let expected_scales = match granularity {
            Granularity::PerTensor => 1,
            Granularity::PerOutChannel => out_features,
            Granularity::Grouped { group_size } => {
                assert!(group_size > 0, "group size must be positive");
                in_features.div_ceil(group_size) * out_features
            }
        };
        assert_eq!(scales.len(), expected_scales, "scale buffer size mismatch");
        if let Some(s) = &input_scale {
            assert_eq!(s.len(), in_features, "input scale size mismatch");
        }
        if let Some(b) = &bias {
            assert_eq!(b.len(), out_features, "bias size mismatch");
        }
        let qmax = Self::qmax_for(bits);
        // The symmetric Eq. 1 grid spans [-qmax, qmax]; the storage type
        // additionally admits the two's-complement minimum (-qmax - 1),
        // which only wrap-around arithmetic (naive watermarking or
        // attacks) can produce.
        assert!(
            q.iter().all(|&v| v >= -qmax - 1 && v <= qmax),
            "quantized values exceed the {bits}-bit storage range"
        );
        Self {
            q,
            in_features,
            out_features,
            bits,
            granularity,
            scales,
            input_scale,
            outlier_rows: Vec::new(),
            outlier_weights: None,
            bias,
            act_quant,
        }
    }

    /// Marks `rows` (sorted, deduplicated internally) as full-precision
    /// outlier rows with the given weights; their integer cells are
    /// zeroed and become inert.
    ///
    /// # Panics
    ///
    /// Panics if `weights` shape does not match or a row is out of range.
    pub fn set_outliers(&mut self, mut rows: Vec<usize>, weights: Matrix) {
        rows.sort_unstable();
        rows.dedup();
        assert!(
            rows.iter().all(|&r| r < self.in_features),
            "outlier row out of range"
        );
        assert_eq!(
            weights.shape(),
            (rows.len(), self.out_features),
            "outlier weights shape"
        );
        for &r in &rows {
            for j in 0..self.out_features {
                self.q[r * self.out_features + j] = 0;
            }
        }
        self.outlier_rows = rows;
        self.outlier_weights = Some(weights);
    }

    /// Rebuilds the layer around a new integer grid, preserving every
    /// piece of scale metadata — granularity, scale buffers, input
    /// scale, outlier rows and weights, bias, activation handling. The
    /// re-quantization plumbing's workhorse: a round trip or a merge
    /// produces new integer values for the *same* scale structure, and
    /// this is the only way to install them without re-deriving (and
    /// silently changing) that structure.
    ///
    /// Outlier rows are re-zeroed in the new grid, maintaining the
    /// [`Self::set_outliers`] invariant that their integer storage is
    /// inert.
    ///
    /// # Panics
    ///
    /// Panics if `q` has the wrong length or leaves the storage range.
    pub fn with_grid(&self, q: Vec<i8>) -> Self {
        assert_eq!(q.len(), self.q.len(), "grid size mismatch");
        let qmax = self.qmax();
        assert!(
            q.iter().all(|&v| v >= -qmax - 1 && v <= qmax),
            "grid values exceed the {}-bit storage range",
            self.bits
        );
        let mut out = self.clone();
        out.q = q;
        for &r in &out.outlier_rows {
            for j in 0..out.out_features {
                out.q[r * out.out_features + j] = 0;
            }
        }
        out
    }

    fn qmax_for(bits: u8) -> i8 {
        ((1i16 << (bits - 1)) - 1) as i8
    }

    /// Largest representable magnitude (`2^{N-1} − 1`, Eq. 1).
    pub fn qmax(&self) -> i8 {
        Self::qmax_for(self.bits)
    }

    /// Bit width (4 or 8).
    pub fn bits(&self) -> u8 {
        self.bits
    }

    /// Input feature count.
    pub fn in_features(&self) -> usize {
        self.in_features
    }

    /// Output feature count.
    pub fn out_features(&self) -> usize {
        self.out_features
    }

    /// Number of weight cells.
    pub fn len(&self) -> usize {
        self.q.len()
    }

    /// Whether the layer has no weights.
    pub fn is_empty(&self) -> bool {
        self.q.is_empty()
    }

    /// Scale granularity.
    pub fn granularity(&self) -> Granularity {
        self.granularity
    }

    /// Activation handling.
    pub fn act_quant(&self) -> ActQuant {
        self.act_quant
    }

    /// The integer weight grid, row-major `[in, out]`.
    pub fn q_values(&self) -> &[i8] {
        &self.q
    }

    /// Integer value at flat index `f` (`row = f / out`, `col = f % out`).
    pub fn q_at_flat(&self, f: usize) -> i8 {
        self.q[f]
    }

    /// One input channel's contiguous slice of the grid
    /// (`out_features` cells) — the unit the scoring kernels walk, with
    /// the per-channel robustness term hoisted to the slice boundary.
    ///
    /// # Panics
    ///
    /// Panics if `r >= in_features`.
    pub fn q_row(&self, r: usize) -> &[i8] {
        &self.q[r * self.out_features..(r + 1) * self.out_features]
    }

    /// Whether input channel `r` is a full-precision outlier row — the
    /// row-granular form of [`Self::is_outlier_flat`].
    pub fn is_outlier_row(&self, r: usize) -> bool {
        self.outlier_rows.binary_search(&r).is_ok()
    }

    /// Overwrites the integer value at flat index `f`.
    ///
    /// # Panics
    ///
    /// Panics if the new value leaves the representable range — the
    /// watermarking layer is responsible for never clipping (the paper
    /// excludes min/max-level weights from selection for exactly this
    /// reason).
    pub fn set_q_flat(&mut self, f: usize, value: i8) {
        let qmax = self.qmax();
        assert!(
            (-qmax..=qmax).contains(&value),
            "value {value} out of {}-bit range",
            self.bits
        );
        self.q[f] = value;
    }

    /// Adds `delta` to the integer value at flat index `f`.
    ///
    /// # Panics
    ///
    /// Panics on overflow of the symmetric range — EmMark's selection
    /// rule (exclude min/max-level cells) guarantees this never fires for
    /// properly scored insertions.
    pub fn bump_q_flat(&mut self, f: usize, delta: i8) {
        let v = self.q[f] as i16 + delta as i16;
        self.set_q_flat(f, v as i8);
    }

    /// Adds `delta` with two's-complement wrap-around at the storage bit
    /// width — the behavior of raw integer arithmetic on deployed
    /// hardware. Naive schemes (RandomWM) and attacks that bump without
    /// EmMark's clamp-level exclusion go through this path; a wrap flips
    /// the largest-magnitude weight of a scale block to the most negative
    /// value, which is exactly the INT4 quality cliff Table 1 shows for
    /// RandomWM.
    pub fn bump_q_flat_wrapping(&mut self, f: usize, delta: i8) {
        let bits = self.bits as u32;
        let mask = (1i16 << bits) - 1;
        let half = 1i16 << (bits - 1);
        let mut v = (self.q[f] as i16 + delta as i16) & mask;
        if v >= half {
            v -= 1i16 << bits;
        }
        self.q[f] = v as i8;
    }

    /// Input channel (row) of a flat index.
    pub fn channel_of_flat(&self, f: usize) -> usize {
        f / self.out_features
    }

    /// Whether the cell sits at the minimum or maximum quantization
    /// level — the cells Eq. 3's scoring must exclude. The
    /// two's-complement minimum (`-qmax - 1`, reachable only by wrapped
    /// arithmetic) also counts as clamped.
    pub fn is_clamped_flat(&self, f: usize) -> bool {
        self.q[f] >= self.qmax() || self.q[f] <= -self.qmax()
    }

    /// Whether the cell belongs to a full-precision outlier row (inert
    /// integer storage; not watermarkable).
    pub fn is_outlier_flat(&self, f: usize) -> bool {
        self.outlier_rows
            .binary_search(&self.channel_of_flat(f))
            .is_ok()
    }

    /// Outlier rows (sorted).
    pub fn outlier_rows(&self) -> &[usize] {
        &self.outlier_rows
    }

    /// Per-input-channel runtime divisor, if the scheme migrated scales.
    pub fn input_scale(&self) -> Option<&[f32]> {
        self.input_scale.as_deref()
    }

    /// The raw scale buffer (layout depends on [`Self::granularity`]).
    pub fn scales(&self) -> &[f32] {
        &self.scales
    }

    /// The bias vector, if any.
    pub fn bias(&self) -> Option<&[f32]> {
        self.bias.as_deref()
    }

    /// Full-precision outlier weights, if any (`[outlier_rows.len(), out]`).
    pub fn outlier_weights(&self) -> Option<&Matrix> {
        self.outlier_weights.as_ref()
    }

    /// Scale applied to cell `(i, j)`.
    pub fn scale_at(&self, i: usize, j: usize) -> f32 {
        match self.granularity {
            Granularity::PerTensor => self.scales[0],
            Granularity::PerOutChannel => self.scales[j],
            Granularity::Grouped { group_size } => {
                self.scales[(i / group_size) * self.out_features + j]
            }
        }
    }

    /// Dequantizes the integer grid to `[in, out]`. Outlier rows come out
    /// as their stored full-precision weights. The result is the weight
    /// applied to *scaled* inputs; see [`Self::effective_weight`] for the
    /// raw-input view.
    pub fn dequantize(&self) -> Matrix {
        let mut w = Matrix::zeros(self.in_features, self.out_features);
        for i in 0..self.in_features {
            for j in 0..self.out_features {
                w.set(
                    i,
                    j,
                    self.q[i * self.out_features + j] as f32 * self.scale_at(i, j),
                );
            }
        }
        if let (Some(ow), rows) = (&self.outlier_weights, &self.outlier_rows) {
            for (k, &r) in rows.iter().enumerate() {
                for j in 0..self.out_features {
                    w.set(r, j, ow.at(k, j));
                }
            }
        }
        w
    }

    /// The weight matrix the layer effectively applies to *raw* inputs:
    /// dequantized values divided back by the input scale where one was
    /// migrated in. Useful for comparing against the original
    /// full-precision weights.
    pub fn effective_weight(&self) -> Matrix {
        let mut w = self.dequantize();
        if let Some(s) = &self.input_scale {
            #[allow(clippy::needless_range_loop)] // i indexes both s and w rows
            for i in 0..self.in_features {
                let inv = 1.0 / s[i];
                for v in w.row_mut(i) {
                    *v *= inv;
                }
            }
        }
        w
    }

    /// Forward pass `y = f(x) W_deq + bias` with the scheme's runtime
    /// behavior (input-scale division, per-token activation fake-quant,
    /// LLM.int8() mixed-precision decomposition).
    ///
    /// # Panics
    ///
    /// Panics if `x.cols() != in_features`.
    pub fn forward(&self, x: &Matrix) -> Matrix {
        assert_eq!(x.cols(), self.in_features, "input width mismatch");
        let mut xq = x.clone();
        if let Some(s) = &self.input_scale {
            for i in 0..xq.rows() {
                for (j, v) in xq.row_mut(i).iter_mut().enumerate() {
                    *v /= s[j];
                }
            }
        }
        // Outlier columns bypass activation quantization and the integer
        // grid entirely (their q rows are zero).
        if !self.outlier_rows.is_empty() {
            for i in 0..xq.rows() {
                for &r in &self.outlier_rows {
                    xq.set(i, r, 0.0);
                }
            }
        }
        if self.act_quant == ActQuant::Int8PerToken {
            fake_quant_rows_int8(&mut xq);
        }
        let w = self.int_grid_weight();
        let mut y = xq.matmul(&w);
        if let (Some(ow), rows) = (&self.outlier_weights, &self.outlier_rows) {
            // y += x[:, outliers] * W_out (full precision, raw x after
            // input scaling — LLM.int8 has no input scaling, but keep the
            // general contract: the outlier path sees the scaled input).
            let mut xs = x.clone();
            if let Some(s) = &self.input_scale {
                for i in 0..xs.rows() {
                    for (j, v) in xs.row_mut(i).iter_mut().enumerate() {
                        *v /= s[j];
                    }
                }
            }
            for i in 0..y.rows() {
                for (k, &r) in rows.iter().enumerate() {
                    let xv = xs.at(i, r);
                    if xv == 0.0 {
                        continue;
                    }
                    for j in 0..self.out_features {
                        let cur = y.at(i, j);
                        y.set(i, j, cur + xv * ow.at(k, j));
                    }
                }
            }
        }
        if let Some(b) = &self.bias {
            for i in 0..y.rows() {
                for (v, &bv) in y.row_mut(i).iter_mut().zip(b.iter()) {
                    *v += bv;
                }
            }
        }
        y
    }

    /// Dequantized integer grid only (outlier rows zero).
    fn int_grid_weight(&self) -> Matrix {
        let mut w = Matrix::zeros(self.in_features, self.out_features);
        for i in 0..self.in_features {
            if self.outlier_rows.binary_search(&i).is_ok() {
                continue;
            }
            for j in 0..self.out_features {
                w.set(
                    i,
                    j,
                    self.q[i * self.out_features + j] as f32 * self.scale_at(i, j),
                );
            }
        }
        w
    }

    /// Quantized projections for attention: convenience passthrough used
    /// by the quantized model runtime.
    pub fn attention_core(q: &Matrix, k: &Matrix, v: &Matrix, n_heads: usize) -> Matrix {
        MultiHeadAttention::attention_core(q, k, v, n_heads)
    }
}

/// Symmetric per-token (per-row) INT8 fake quantization in place.
pub fn fake_quant_rows_int8(x: &mut Matrix) {
    for i in 0..x.rows() {
        let absmax = x.row(i).iter().fold(0.0f32, |m, &v| m.max(v.abs()));
        if absmax == 0.0 {
            continue;
        }
        let delta = absmax / 127.0;
        for v in x.row_mut(i) {
            *v = (*v / delta).round() * delta;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simple_layer() -> QuantizedLinear {
        // 3x2 grid, per-out-channel scales [0.5, 2.0].
        QuantizedLinear::new(
            vec![1, -2, 3, 4, -5, 0],
            3,
            2,
            8,
            Granularity::PerOutChannel,
            vec![0.5, 2.0],
            None,
            None,
            ActQuant::None,
        )
    }

    #[test]
    fn dequantize_applies_per_channel_scales() {
        let l = simple_layer();
        let w = l.dequantize();
        assert_eq!(w.at(0, 0), 0.5);
        assert_eq!(w.at(0, 1), -4.0);
        assert_eq!(w.at(1, 0), 1.5);
        assert_eq!(w.at(2, 1), 0.0);
    }

    #[test]
    fn forward_matches_dequantized_matmul() {
        let l = simple_layer();
        let x = Matrix::from_rows(&[&[1.0, 2.0, -1.0]]);
        let y = l.forward(&x);
        let expect = x.matmul(&l.dequantize());
        assert_eq!(y, expect);
    }

    #[test]
    fn flat_indexing_and_channels() {
        let l = simple_layer();
        assert_eq!(l.q_at_flat(2), 3);
        assert_eq!(l.channel_of_flat(0), 0);
        assert_eq!(l.channel_of_flat(2), 1);
        assert_eq!(l.channel_of_flat(5), 2);
    }

    #[test]
    fn row_slices_cover_the_grid_in_order() {
        let l = simple_layer();
        assert_eq!(l.q_row(0), &[1, -2]);
        assert_eq!(l.q_row(1), &[3, 4]);
        assert_eq!(l.q_row(2), &[-5, 0]);
        let flat: Vec<i8> = (0..3).flat_map(|r| l.q_row(r).to_vec()).collect();
        assert_eq!(flat.as_slice(), l.q_values());
    }

    #[test]
    fn row_granular_outlier_mask_matches_flat() {
        let mut l = QuantizedLinear::new(
            vec![10, 20, 30],
            3,
            1,
            8,
            Granularity::PerTensor,
            vec![0.1],
            None,
            None,
            ActQuant::None,
        );
        l.set_outliers(vec![1], Matrix::from_rows(&[&[5.0]]));
        // out_features == 1, so flat index == row index.
        for r in 0..3 {
            assert_eq!(l.is_outlier_row(r), l.is_outlier_flat(r));
        }
        assert!(l.is_outlier_row(1));
        assert!(!l.is_outlier_row(2));
    }

    #[test]
    fn bump_and_clamp_detection() {
        let mut l = QuantizedLinear::new(
            vec![7, -7, 3, 0],
            2,
            2,
            4,
            Granularity::PerTensor,
            vec![1.0],
            None,
            None,
            ActQuant::None,
        );
        assert!(l.is_clamped_flat(0));
        assert!(l.is_clamped_flat(1));
        assert!(!l.is_clamped_flat(2));
        l.bump_q_flat(2, 1);
        assert_eq!(l.q_at_flat(2), 4);
        l.bump_q_flat(3, -1);
        assert_eq!(l.q_at_flat(3), -1);
    }

    #[test]
    fn wrapping_bump_matches_twos_complement() {
        let mut l = QuantizedLinear::new(
            vec![7, -7, 0, 5],
            2,
            2,
            4,
            Granularity::PerTensor,
            vec![1.0],
            None,
            None,
            ActQuant::None,
        );
        l.bump_q_flat_wrapping(0, 1); // 7 + 1 wraps to -8 in int4
        assert_eq!(l.q_at_flat(0), -8);
        assert!(l.is_clamped_flat(0));
        l.bump_q_flat_wrapping(1, -1); // -7 - 1 = -8, in range
        assert_eq!(l.q_at_flat(1), -8);
        l.bump_q_flat_wrapping(2, 1);
        assert_eq!(l.q_at_flat(2), 1);
        // int8 wrap: 127 + 1 -> -128.
        let mut l8 = QuantizedLinear::new(
            vec![127],
            1,
            1,
            8,
            Granularity::PerTensor,
            vec![1.0],
            None,
            None,
            ActQuant::None,
        );
        l8.bump_q_flat_wrapping(0, 1);
        assert_eq!(l8.q_at_flat(0), -128);
    }

    #[test]
    #[should_panic(expected = "out of 4-bit range")]
    fn bump_past_range_panics() {
        let mut l = QuantizedLinear::new(
            vec![7, 0, 0, 0],
            2,
            2,
            4,
            Granularity::PerTensor,
            vec![1.0],
            None,
            None,
            ActQuant::None,
        );
        l.bump_q_flat(0, 1);
    }

    #[test]
    fn grouped_scale_lookup() {
        // in=4, out=2, group=2 -> 2 groups x 2 cols = 4 scales.
        let l = QuantizedLinear::new(
            vec![1; 8],
            4,
            2,
            8,
            Granularity::Grouped { group_size: 2 },
            vec![0.1, 0.2, 0.3, 0.4],
            None,
            None,
            ActQuant::None,
        );
        assert_eq!(l.scale_at(0, 0), 0.1);
        assert_eq!(l.scale_at(1, 1), 0.2);
        assert_eq!(l.scale_at(2, 0), 0.3);
        assert_eq!(l.scale_at(3, 1), 0.4);
    }

    #[test]
    fn input_scale_divides_at_runtime() {
        let l = QuantizedLinear::new(
            vec![2, 4],
            2,
            1,
            8,
            Granularity::PerTensor,
            vec![1.0],
            Some(vec![2.0, 4.0]),
            None,
            ActQuant::None,
        );
        let x = Matrix::from_rows(&[&[2.0, 4.0]]);
        // (x / s) W = [1, 1] · [2, 4]^T = 6
        assert_eq!(l.forward(&x).at(0, 0), 6.0);
        // Effective weight = deq / s = [1, 1].
        let ew = l.effective_weight();
        assert_eq!(ew.at(0, 0), 1.0);
        assert_eq!(ew.at(1, 0), 1.0);
    }

    #[test]
    fn outlier_rows_take_full_precision_path() {
        let mut l = QuantizedLinear::new(
            vec![10, 20, 30],
            3,
            1,
            8,
            Granularity::PerTensor,
            vec![0.1],
            None,
            None,
            ActQuant::None,
        );
        l.set_outliers(vec![1], Matrix::from_rows(&[&[5.0]]));
        assert!(l.is_outlier_flat(1));
        assert!(!l.is_outlier_flat(0));
        // q row zeroed, deq shows fp value.
        assert_eq!(l.q_at_flat(1), 0);
        assert_eq!(l.dequantize().at(1, 0), 5.0);
        let x = Matrix::from_rows(&[&[1.0, 1.0, 1.0]]);
        // 10*0.1 + 5.0 + 30*0.1 = 9.0
        assert!((l.forward(&x).at(0, 0) - 9.0).abs() < 1e-6);
    }

    #[test]
    fn per_token_fake_quant_bounds_error() {
        let mut x = Matrix::from_rows(&[&[1.0, -0.5, 0.003, 127.0]]);
        let orig = x.clone();
        fake_quant_rows_int8(&mut x);
        let delta = 127.0 / 127.0;
        for (a, b) in x.iter().zip(orig.iter()) {
            assert!((a - b).abs() <= delta / 2.0 + 1e-6);
        }
        // Zero rows survive.
        let mut z = Matrix::zeros(1, 3);
        fake_quant_rows_int8(&mut z);
        assert!(z.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn bias_is_added() {
        let l = QuantizedLinear::new(
            vec![1, 1],
            2,
            1,
            8,
            Granularity::PerTensor,
            vec![1.0],
            None,
            Some(vec![10.0]),
            ActQuant::None,
        );
        let x = Matrix::from_rows(&[&[1.0, 1.0]]);
        assert_eq!(l.forward(&x).at(0, 0), 12.0);
    }

    #[test]
    #[should_panic(expected = "scale buffer size mismatch")]
    fn inconsistent_scales_panic() {
        let _ = QuantizedLinear::new(
            vec![0; 4],
            2,
            2,
            8,
            Granularity::PerOutChannel,
            vec![1.0],
            None,
            None,
            ActQuant::None,
        );
    }
}
