//! # emmark
//!
//! A full Rust reproduction of *EmMark: Robust Watermarks for IP
//! Protection of Embedded Quantized Large Language Models* (Zhang &
//! Koushanfar, DAC 2024) — the watermarking algorithm plus every
//! substrate it runs on, built from scratch:
//!
//! | Re-export | Crate | Contents |
//! |---|---|---|
//! | [`tensor`] | `emmark-tensor` | matrices, portable PRNG, DCT, Eq. 8 statistics |
//! | [`nanolm`] | `emmark-nanolm` | trainable micro-transformers, synthetic corpora, `A_f` capture |
//! | [`quant`] | `emmark-quant` | RTN, SmoothQuant, LLM.int8(), AWQ, GPTQ, quantized runtime |
//! | [`eval`] | `emmark-eval` | perplexity + zero-shot task suite |
//! | [`core`] | `emmark-core` | **EmMark** insertion/extraction, baselines, deploy codec |
//! | [`attacks`] | `emmark-attacks` | overwriting, re-watermarking, forging |
//!
//! See `README.md` for the quickstart, `DESIGN.md` for the substitution
//! map (what the paper used vs what is built here), and `EXPERIMENTS.md`
//! for paper-vs-measured results of every table and figure.
//!
//! # Examples
//!
//! The five-minute tour (also in `examples/quickstart.rs`):
//!
//! ```
//! use emmark::core::watermark::{OwnerSecrets, WatermarkConfig};
//! use emmark::nanolm::{config::ModelConfig, TransformerModel};
//! use emmark::quant::awq::{awq, AwqConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut model = TransformerModel::new(ModelConfig::tiny_test());
//! let calib = vec![vec![1u32, 2, 3, 4, 5, 6]];
//! let stats = model.collect_activation_stats(&calib);
//! let quantized = awq(&model, &stats, &AwqConfig::default());
//!
//! let cfg = WatermarkConfig { bits_per_layer: 4, pool_ratio: 10, ..Default::default() };
//! let secrets = OwnerSecrets::new(quantized, stats, cfg, 2024);
//! let deployed = secrets.watermark_for_deployment()?;
//! assert_eq!(secrets.verify(&deployed)?.wer(), 100.0);
//! # Ok(())
//! # }
//! ```

pub use emmark_attacks as attacks;
pub use emmark_core as core;
pub use emmark_eval as eval;
pub use emmark_nanolm as nanolm;
pub use emmark_quant as quant;
pub use emmark_tensor as tensor;
